package interproc

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/lang"
)

// Lint runs the interprocedural palint checks over precomputed facts:
//
//   - input-indep-branch: a reachable, loop-free conditional branch
//     whose outcome provably cannot depend on the program input. In a
//     deterministic VM such a branch resolves the same way on every
//     run, so the untaken side is dead in practice — usually a
//     forgotten debug toggle or a miswired condition.
//   - cmp-out-of-range: an equality comparison between a constant and
//     a value whose statically known range excludes it — the
//     comparison is decided before it runs.
//   - unreachable-func: a function no call chain from the entry ever
//     reaches.
//
// Like the intra-procedural checks, each finding is conservative: it
// holds on every execution. Branches lowered from literal constants
// are exempt (deliberate idioms), as are branches the interval
// analysis already decides (the const-branch check owns those).
func Lint(fs *Facts) []analysis.Finding {
	var out []analysis.Finding
	for fi, f := range fs.Prog.Funcs {
		if !fs.Reachable[fi] {
			if fi != fs.Entry {
				out = append(out, analysis.Finding{
					Check: "unreachable-func",
					Func:  f.Name,
					Pos:   f.Pos,
					Msg:   fmt.Sprintf("function %q is never called from the entry point", f.Name),
				})
			}
			continue
		}
		ff := fs.Fns[fi]
		for i := range ff.Branches {
			bf := &ff.Branches[i]
			blk := &f.Blocks[bf.Block]
			if bf.Dep {
				continue
			}
			if f.LoopDepth[bf.Block] != 0 {
				// Constant-bound loops branch input-independently by
				// design; only loop-free branches are suspicious.
				continue
			}
			if blk.Term.Then == blk.Term.Else {
				continue
			}
			if isLiteralConst(blk, len(blk.Instrs), blk.Term.Cond) {
				continue
			}
			if decidedIv(bf.CondIv) {
				continue // const-branch already reports it
			}
			out = append(out, analysis.Finding{
				Check: "input-indep-branch",
				Func:  f.Name,
				Pos:   bf.Pos,
				Msg:   "branch outcome cannot depend on program input (same side taken on every run)",
			})
		}
		for i := range ff.Cmps {
			cs := &ff.Cmps[i]
			if cs.Op != lang.EQ && cs.Op != lang.NE {
				continue
			}
			aSing, bSing := cs.AIv.Singleton(), cs.BIv.Singleton()
			if aSing == bSing {
				// Neither side constant (nothing to pin the report on),
				// or both constant (degenerate; decided trivially and
				// typically a deliberate dead-code idiom).
				continue
			}
			konst, rng := cs.AIv, cs.BIv
			if bSing {
				konst, rng = cs.BIv, cs.AIv
			}
			if rng.IsBottom() || rng.Contains(konst.Lo) {
				continue
			}
			verdict := "never true"
			if cs.Op == lang.NE {
				verdict = "always true"
			}
			out = append(out, analysis.Finding{
				Check: "cmp-out-of-range",
				Func:  f.Name,
				Pos:   cs.Pos,
				Msg: fmt.Sprintf("comparison with %d is %s: other operand is confined to %s",
					konst.Lo, verdict, ivString(rng)),
			})
		}
	}
	analysis.SortFindings(out)
	return out
}

// decidedIv reports whether the interval already fixes the branch
// direction (always false, always true, or unreachable).
func decidedIv(iv analysis.Interval) bool {
	if iv.IsBottom() {
		return true
	}
	return iv == (analysis.Interval{Lo: 0, Hi: 0}) || !iv.Contains(0)
}

// isLiteralConst mirrors the intra-procedural lint exemption: slot s is
// last written before instruction limit by a plain OpConst — the
// lowering of a source literal, whose constancy is deliberate.
func isLiteralConst(blk *cfg.Block, limit, s int) bool {
	lit := false
	for i := 0; i < limit && i < len(blk.Instrs); i++ {
		in := &blk.Instrs[i]
		if analysis.InstrDef(in) == s {
			lit = in.Op == cfg.OpConst
		}
	}
	return lit
}
