package fuzz

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/instrument"
	"repro/internal/telemetry"
)

// TestTelemetryDoesNotPerturb is the observability contract: attaching
// a recorder must not change a single campaign decision. Two same-seed
// campaigns, one instrumented, must produce identical reports.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	p := compileT(t, fig1)
	run := func(rec *telemetry.Recorder) *Report {
		f, err := New(p, Options{
			Feedback:  instrument.FeedbackPath,
			Seed:      11,
			MapSize:   1 << 12,
			Telemetry: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.AddSeed([]byte("hello"))
		f.AddSeed([]byte("abcd"))
		f.Fuzz(25000)
		return f.Report()
	}
	plain := run(nil)
	rec := telemetry.New(telemetry.Config{})
	instrumented := run(rec)

	if !reflect.DeepEqual(plain.Stats, instrumented.Stats) {
		t.Errorf("telemetry perturbed Stats:\nplain: %+v\nwith:  %+v", plain.Stats, instrumented.Stats)
	}
	if plain.QueueLen != instrumented.QueueLen || len(plain.Bugs) != len(instrumented.Bugs) {
		t.Errorf("telemetry perturbed campaign: queue %d vs %d, bugs %d vs %d",
			plain.QueueLen, instrumented.QueueLen, len(plain.Bugs), len(instrumented.Bugs))
	}

	// The published snapshot mirrors the final stats exactly.
	s := rec.Latest()
	if s == nil {
		t.Fatal("no snapshot published")
	}
	if s.Execs != instrumented.Stats.Execs || s.Timeouts != instrumented.Stats.Timeouts ||
		s.CrashExecs != instrumented.Stats.CrashExecs || s.Added != instrumented.Stats.Added {
		t.Errorf("snapshot %+v does not mirror stats %+v", s.Counters, instrumented.Stats)
	}
	if s.QueueLen != int64(instrumented.QueueLen) {
		t.Errorf("snapshot QueueLen = %d, report says %d", s.QueueLen, instrumented.QueueLen)
	}
	// Calibration and havoc spans were recorded.
	if aggs := rec.StageStats(); len(aggs) == 0 {
		t.Error("no stage spans recorded during campaign")
	}
}

// TestStageExecsPartitionExecs: every execution is attributed to
// exactly one stage, so the per-stage counters sum to the total.
func TestStageExecsPartitionExecs(t *testing.T) {
	p := compileT(t, fig1)
	f, err := New(p, Options{Feedback: instrument.FeedbackPath, Seed: 5, MapSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	f.AddSeed([]byte("hello"))
	f.Fuzz(30000)
	st := f.Report().Stats
	sum := st.SeedExecs + st.HavocExecs + st.SpliceExecs + st.CmplogExecs
	if sum != st.Execs {
		t.Errorf("stage execs %d+%d+%d+%d = %d, want total %d",
			st.SeedExecs, st.HavocExecs, st.SpliceExecs, st.CmplogExecs, sum, st.Execs)
	}
	if st.SeedExecs == 0 || st.HavocExecs == 0 {
		t.Errorf("expected nonzero seed (%d) and havoc (%d) execs", st.SeedExecs, st.HavocExecs)
	}
}

// TestStatusWallClockPacing: with a tiny period every boundary emits a
// line even when the exec fallback is unreachable.
func TestStatusWallClockPacing(t *testing.T) {
	p := compileT(t, fig1)
	var buf bytes.Buffer
	f, err := New(p, Options{
		Feedback:     instrument.FeedbackPath,
		Seed:         1,
		MapSize:      1 << 12,
		Status:       &buf,
		StatusPeriod: time.Nanosecond,
		StatusEvery:  1 << 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.AddSeed([]byte("hello"))
	f.Fuzz(5000)
	lines := strings.Count(buf.String(), "\n")
	if lines == 0 {
		t.Fatal("wall-clock pacing emitted no status lines")
	}
	if !strings.Contains(buf.String(), "[pafuzz] engine=") {
		t.Errorf("unexpected status format: %q", firstLine(buf.String()))
	}
}

// TestStatusExecFallback: with an unreachable period, the exec-count
// fallback still keeps the campaign talking.
func TestStatusExecFallback(t *testing.T) {
	p := compileT(t, fig1)
	var buf bytes.Buffer
	f, err := New(p, Options{
		Feedback:     instrument.FeedbackPath,
		Seed:         1,
		MapSize:      1 << 12,
		Status:       &buf,
		StatusPeriod: time.Hour,
		StatusEvery:  1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.AddSeed([]byte("hello"))
	f.Fuzz(10000)
	if strings.Count(buf.String(), "\n") == 0 {
		t.Fatal("exec-count fallback emitted no status lines")
	}
}

// TestStatusOutputIsDisplayOnly: enabling the status line must not
// change campaign results (it reads the clock, so this guards against
// accidental feedback into fuzzing decisions).
func TestStatusOutputIsDisplayOnly(t *testing.T) {
	p := compileT(t, fig1)
	run := func(status *bytes.Buffer) *Report {
		opts := Options{Feedback: instrument.FeedbackPath, Seed: 9, MapSize: 1 << 12}
		if status != nil {
			opts.Status = status
			opts.StatusPeriod = time.Nanosecond
		}
		f, err := New(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		f.AddSeed([]byte("hello"))
		f.Fuzz(15000)
		return f.Report()
	}
	plain := run(nil)
	var buf bytes.Buffer
	noisy := run(&buf)
	if !reflect.DeepEqual(plain.Stats, noisy.Stats) || plain.QueueLen != noisy.QueueLen {
		t.Errorf("status line perturbed the campaign:\nplain: %+v\nnoisy: %+v", plain.Stats, noisy.Stats)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
