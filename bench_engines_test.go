package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/coverage"
	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/strategy"
	"repro/internal/subjects"
	"repro/internal/vm"
)

// Engine comparison benchmarks: the reference interpreter vs the
// compiled bytecode engine on identical work. BenchmarkEngineExec
// measures bare execution throughput (one seed input, path feedback);
// BenchmarkEngineCampaign measures end-to-end campaign throughput
// (mutation, classification, and queue bookkeeping included).
// TestWriteBenchPR2 freezes both into BENCH_PR2.json.

// engineExecSubjects are the per-subject execution benches; a spread of
// control-flow shapes (parser-heavy, loop-heavy, call-heavy).
var engineExecSubjects = []string{"cflow", "flvmeta", "lame", "jq", "sqlite3"}

// engineCampaignBudget is the per-iteration campaign budget. Large
// enough that steady-state execution dominates setup, small enough for
// a CI smoke run at -benchtime 1x.
const engineCampaignBudget = 30000

func benchInput(sub *subjects.Subject) []byte {
	if len(sub.Seeds) > 0 {
		return sub.Seeds[0]
	}
	return []byte("seed")
}

func BenchmarkEngineExec(b *testing.B) {
	for _, name := range engineExecSubjects {
		sub := subjects.Get(name)
		prog, err := sub.Program()
		if err != nil {
			b.Fatal(err)
		}
		in := benchInput(sub)
		b.Run(name+"/interp", func(b *testing.B) {
			m := coverage.NewMap(1 << 13)
			tr, err := instrument.New(instrument.FeedbackPath, prog, m, instrument.Config{})
			if err != nil {
				b.Fatal(err)
			}
			lim := vm.DefaultLimits()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset()
				vm.Run(prog, "main", in, tr, lim)
			}
		})
		b.Run(name+"/bytecode", func(b *testing.B) {
			cp, ok := instrument.CompiledFor(instrument.FeedbackPath, prog, instrument.Config{})
			if !ok {
				b.Fatal("no lowering for path feedback")
			}
			m := coverage.NewMap(1 << 13)
			mach := bytecode.NewMachine(cp, m, vm.DefaultLimits())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset()
				mach.Run("main", in)
			}
		})
	}
}

// engineCampaign runs one fixed-budget path-feedback campaign per
// iteration and reports execs/sec.
func engineCampaign(b *testing.B, subject string, engine fuzz.Engine) {
	b.Helper()
	sub := subjects.Get(subject)
	prog, err := sub.Program()
	if err != nil {
		b.Fatal(err)
	}
	var execs int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := strategy.Run(strategy.Path, prog, strategy.Config{
			Opts:   fuzz.Options{Seed: int64(i + 1), MapSize: 1 << 13, Engine: engine},
			Budget: engineCampaignBudget,
			Seeds:  sub.Seeds,
		})
		if err != nil {
			b.Fatal(err)
		}
		execs += out.Report.Stats.Execs
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(execs)/s, "execs/s")
	}
}

func BenchmarkEngineCampaign(b *testing.B) {
	for _, subject := range []string{"cflow", "lame", "flvmeta"} {
		b.Run(subject+"/interp", func(b *testing.B) { engineCampaign(b, subject, fuzz.EngineInterp) })
		b.Run(subject+"/bytecode", func(b *testing.B) { engineCampaign(b, subject, fuzz.EngineAuto) })
	}
}

// benchPR2 is the persisted schema of BENCH_PR2.json.
type benchPR2 struct {
	Note     string                  `json:"note"`
	Exec     map[string]benchPR2Exec `json:"exec"`
	Campaign map[string]benchPR2Camp `json:"campaign"`
}

type benchPR2Exec struct {
	InterpNsPerExec    float64 `json:"interp_ns_per_exec"`
	BytecodeNsPerExec  float64 `json:"bytecode_ns_per_exec"`
	Speedup            float64 `json:"speedup"`
	InterpAllocsExec   float64 `json:"interp_allocs_per_exec"`
	BytecodeAllocsExec float64 `json:"bytecode_allocs_per_exec"`
}

type benchPR2Camp struct {
	InterpExecsPerSec   float64 `json:"interp_execs_per_sec"`
	BytecodeExecsPerSec float64 `json:"bytecode_execs_per_sec"`
	Speedup             float64 `json:"speedup"`
}

// medianNs runs bench three times and returns the median ns/op plus
// the allocs/op (deterministic across runs): on a single-core CI
// machine one sample can misstate a ratio by 30%+.
func medianNs(bench func(b *testing.B)) (float64, int64) {
	var ns []float64
	var allocs int64
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(bench)
		ns = append(ns, float64(r.NsPerOp()))
		allocs = r.AllocsPerOp()
	}
	sort.Float64s(ns)
	return ns[1], allocs
}

// TestWriteBenchPR2 regenerates BENCH_PR2.json. It is gated behind
// WRITE_BENCH_PR2=1 because it runs minutes of benchmarks:
//
//	WRITE_BENCH_PR2=1 go test -run TestWriteBenchPR2 -timeout 30m .
func TestWriteBenchPR2(t *testing.T) {
	if os.Getenv("WRITE_BENCH_PR2") == "" {
		t.Skip("set WRITE_BENCH_PR2=1 to regenerate BENCH_PR2.json")
	}
	out := benchPR2{
		Note:     "median of 3; single-core hosts show ±25% run-to-run variance. Regenerate with: WRITE_BENCH_PR2=1 go test -run TestWriteBenchPR2 -timeout 30m .",
		Exec:     map[string]benchPR2Exec{},
		Campaign: map[string]benchPR2Camp{},
	}
	for _, name := range engineExecSubjects {
		sub := subjects.Get(name)
		prog, err := sub.Program()
		if err != nil {
			t.Fatal(err)
		}
		in := benchInput(sub)
		lim := vm.DefaultLimits()

		iNs, iAllocs := medianNs(func(b *testing.B) {
			m := coverage.NewMap(1 << 13)
			tr, err := instrument.New(instrument.FeedbackPath, prog, m, instrument.Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Reset()
				vm.Run(prog, "main", in, tr, lim)
			}
		})
		bNs, bAllocs := medianNs(func(b *testing.B) {
			cp, _ := instrument.CompiledFor(instrument.FeedbackPath, prog, instrument.Config{})
			m := coverage.NewMap(1 << 13)
			mach := bytecode.NewMachine(cp, m, lim)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Reset()
				mach.Run("main", in)
			}
		})
		e := benchPR2Exec{
			InterpNsPerExec:    iNs,
			BytecodeNsPerExec:  bNs,
			InterpAllocsExec:   float64(iAllocs),
			BytecodeAllocsExec: float64(bAllocs),
		}
		if e.BytecodeNsPerExec > 0 {
			e.Speedup = e.InterpNsPerExec / e.BytecodeNsPerExec
		}
		out.Exec[name] = e
		t.Logf("exec %-10s interp %.0f ns  bytecode %.0f ns  speedup %.2fx  allocs %v -> %v",
			name, e.InterpNsPerExec, e.BytecodeNsPerExec, e.Speedup, iAllocs, bAllocs)
	}

	campaignRate := func(subject string, engine fuzz.Engine) float64 {
		sub := subjects.Get(subject)
		prog, err := sub.Program()
		if err != nil {
			t.Fatal(err)
		}
		ns, _ := medianNs(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := strategy.Run(strategy.Path, prog, strategy.Config{
					Opts:   fuzz.Options{Seed: int64(i + 1), MapSize: 1 << 13, Engine: engine},
					Budget: engineCampaignBudget,
					Seeds:  sub.Seeds,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		if ns > 0 {
			return float64(engineCampaignBudget) * 1e9 / ns
		}
		return 0
	}
	for _, subject := range []string{"cflow", "lame", "flvmeta"} {
		c := benchPR2Camp{
			InterpExecsPerSec:   campaignRate(subject, fuzz.EngineInterp),
			BytecodeExecsPerSec: campaignRate(subject, fuzz.EngineAuto),
		}
		if c.InterpExecsPerSec > 0 {
			c.Speedup = c.BytecodeExecsPerSec / c.InterpExecsPerSec
		}
		out.Campaign[subject] = c
		t.Logf("campaign %-10s interp %.0f execs/s  bytecode %.0f execs/s  speedup %.2fx",
			subject, c.InterpExecsPerSec, c.BytecodeExecsPerSec, c.Speedup)
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR2.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_PR2.json")
}
