package analysis

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/lang"
)

// Finding is one lint diagnostic.
type Finding struct {
	// Check is the rule that fired: unreachable, const-branch,
	// guaranteed-fault, or unused-var.
	Check string
	Func  string
	Pos   lang.Pos
	Msg   string
}

// String formats the finding as line:col: [check] msg (func name).
func (fd Finding) String() string {
	return fmt.Sprintf("%d:%d: [%s] %s (func %s)", fd.Pos.Line, fd.Pos.Col, fd.Check, fd.Msg, fd.Func)
}

// Lint runs the palint checks over one MiniC program: AST-level
// unreachable statements and unused variables, plus interval-analysis
// checks over the lowered CFG (always-true/false branches on derived
// conditions, interval-unreachable code, and guaranteed faults:
// division by zero, out-of-bounds indexing, negative allocation,
// failing asserts).
//
// Conditions and assertions that are literal constants in the source
// (while (1), assert(0)) are deliberate idioms and are not reported;
// only conditions the programmer probably did not know were constant
// are. Every check is conservative: a finding means the defect holds
// on every execution that reaches it, so the existing benchmark
// subjects — whose planted bugs are all input-dependent — must produce
// zero findings.
func Lint(ast *lang.Program, prog *cfg.Program) []Finding {
	var out []Finding
	for _, fd := range ast.Funcs {
		out = append(out, lintUnreachableStmts(fd)...)
		out = append(out, lintUnusedVars(fd)...)
	}
	for _, f := range prog.Funcs {
		out = append(out, lintIntervals(f)...)
	}
	SortFindings(out)
	return out
}

// SortFindings puts findings into the canonical diagnostic order:
// position first, then check name, then function, then message. The
// order is total over distinct findings, so any producer — including
// ones that accumulate via map iteration — emits byte-identical output
// across runs. Exported so tools that merge findings from several
// analyses (palint with the interprocedural checks) share the order.
func SortFindings(out []Finding) {
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Msg < b.Msg
	})
}

// stmtTerminates reports whether s never falls through to the next
// statement: return/break/continue, an if whose arms both terminate,
// or a call to the never-returning abort builtin.
func stmtTerminates(s lang.Stmt) bool {
	switch s := s.(type) {
	case *lang.ReturnStmt, *lang.BreakStmt, *lang.ContinueStmt:
		return true
	case *lang.ExprStmt:
		if call, ok := s.X.(*lang.CallExpr); ok && call.Name == "abort" {
			return true
		}
	case *lang.IfStmt:
		if s.Else == nil {
			return false
		}
		return blockTerminates(s.Then) && stmtTerminates(s.Else)
	case *lang.BlockStmt:
		return blockTerminates(s)
	}
	return false
}

func blockTerminates(b *lang.BlockStmt) bool {
	for _, s := range b.Stmts {
		if stmtTerminates(s) {
			return true
		}
	}
	return false
}

// lintUnreachableStmts flags statements following a terminating
// statement in the same block (one finding per block, to avoid
// cascades).
func lintUnreachableStmts(fd *lang.FuncDecl) []Finding {
	var out []Finding
	var walkBlock func(b *lang.BlockStmt)
	var walkStmt func(s lang.Stmt)
	walkBlock = func(b *lang.BlockStmt) {
		for i, s := range b.Stmts {
			if stmtTerminates(s) && i+1 < len(b.Stmts) {
				out = append(out, Finding{
					Check: "unreachable",
					Func:  fd.Name,
					Pos:   b.Stmts[i+1].NodePos(),
					Msg:   "unreachable code (preceding statement never falls through)",
				})
				// Still walk the dead region's children, then stop
				// reporting in this block.
				for _, d := range b.Stmts[i+1:] {
					walkStmt(d)
				}
				walkStmt(s)
				return
			}
			walkStmt(s)
		}
	}
	walkStmt = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.BlockStmt:
			walkBlock(s)
		case *lang.IfStmt:
			walkBlock(s.Then)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *lang.WhileStmt:
			walkBlock(s.Body)
		case *lang.ForStmt:
			walkBlock(s.Body)
		}
	}
	walkBlock(fd.Body)
	return out
}

// pureExpr reports whether evaluating e has no observable effect:
// no allocation, no call, no memory access, no faultable operator.
// Only a pure initializer makes deleting an unused declaration
// provably behavior-preserving.
func pureExpr(e lang.Expr) bool {
	switch e := e.(type) {
	case *lang.IntLit:
		return true
	case *lang.Ident:
		return true
	case *lang.UnaryExpr:
		return pureExpr(e.X)
	case *lang.BinaryExpr:
		if e.Op == lang.SLASH || e.Op == lang.PCT {
			return false // may fault on zero divisor
		}
		return pureExpr(e.X) && pureExpr(e.Y)
	}
	return false
}

// lintUnusedVars flags variables that are declared but never read.
// Assignments alone do not count as uses. Parameters are exempt, as
// are names declared more than once in the function (shadowing makes
// name-based attribution ambiguous) and declarations whose initializer
// is impure — `var name = input[pos];` consumes a format byte even if
// the name is never read again, so only effect-free declarations are
// certainly dead.
func lintUnusedVars(fd *lang.FuncDecl) []Finding {
	decls := map[string][]*lang.VarStmt{}
	reads := map[string]bool{}
	params := map[string]bool{}
	for _, p := range fd.Params {
		params[p] = true
	}
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.Ident:
			reads[e.Name] = true
		case *lang.IndexExpr:
			walkExpr(e.X)
			walkExpr(e.Idx)
		case *lang.CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *lang.UnaryExpr:
			walkExpr(e.X)
		case *lang.BinaryExpr:
			walkExpr(e.X)
			walkExpr(e.Y)
		}
	}
	var walkStmt func(s lang.Stmt)
	walkBlock := func(b *lang.BlockStmt) {
		for _, s := range b.Stmts {
			walkStmt(s)
		}
	}
	walkStmt = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.VarStmt:
			if !params[s.Name] && (s.Init == nil || pureExpr(s.Init)) {
				decls[s.Name] = append(decls[s.Name], s)
			}
			if s.Init != nil {
				walkExpr(s.Init)
			}
		case *lang.AssignStmt:
			walkExpr(s.Val)
		case *lang.StoreStmt:
			reads[s.Name] = true // indexing reads the array handle
			walkExpr(s.Idx)
			walkExpr(s.Val)
		case *lang.IfStmt:
			walkExpr(s.Cond)
			walkBlock(s.Then)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *lang.WhileStmt:
			walkExpr(s.Cond)
			walkBlock(s.Body)
		case *lang.ForStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			if s.Cond != nil {
				walkExpr(s.Cond)
			}
			if s.Post != nil {
				walkStmt(s.Post)
			}
			walkBlock(s.Body)
		case *lang.ReturnStmt:
			if s.Val != nil {
				walkExpr(s.Val)
			}
		case *lang.ExprStmt:
			walkExpr(s.X)
		case *lang.BlockStmt:
			walkBlock(s)
		}
	}
	walkBlock(fd.Body)
	var out []Finding
	for name, sites := range decls {
		if len(sites) != 1 || reads[name] {
			continue
		}
		out = append(out, Finding{
			Check: "unused-var",
			Func:  fd.Name,
			Pos:   sites[0].Pos,
			Msg:   fmt.Sprintf("variable %q is declared but never read", name),
		})
	}
	return out
}

// literalConst reports whether slot s is last written in blk (before
// instruction limit) by a plain OpConst — the lowering of a literal in
// the source, whose constancy the programmer chose deliberately.
func literalConst(blk *cfg.Block, limit, s int) bool {
	lit := false
	for i := 0; i < limit && i < len(blk.Instrs); i++ {
		in := &blk.Instrs[i]
		if InstrDef(in) == s {
			lit = in.Op == cfg.OpConst
		}
	}
	return lit
}

// lintIntervals runs the interval analysis over one lowered function
// and reports guaranteed faults, decided branch conditions, and
// interval-unreachable blocks.
func lintIntervals(f *cfg.Func) []Finding {
	ii := IntervalsOf(f)
	var out []Finding
	env := newEnv(f.FrameSize)
	for b := range f.Blocks {
		blk := &f.Blocks[b]
		if !ii.Reached[b] {
			// Only user code: skip bare structural blocks (e.g. the
			// implicit return block after an infinite loop).
			if len(blk.Instrs) > 0 {
				out = append(out, Finding{
					Check: "unreachable",
					Func:  f.Name,
					Pos:   blk.Instrs[0].Pos,
					Msg:   "unreachable code (no feasible path from function entry)",
				})
			}
			continue
		}
		env.copyFrom(&ii.In[b])
		faulted := false
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			fault := ii.stepInstr(&env, in)
			if fault == "" {
				continue
			}
			faulted = true
			// abort() and literal assert(0) are deliberate; everything
			// else is a guaranteed fault worth reporting.
			deliberate := fault == "abort" ||
				(in.Op == cfg.OpBuiltin && in.Callee == cfg.BAssert &&
					len(in.Args) > 0 && literalConst(blk, i, in.Args[0]))
			if !deliberate {
				out = append(out, Finding{
					Check: "guaranteed-fault",
					Func:  f.Name,
					Pos:   in.Pos,
					Msg:   fmt.Sprintf("%s on every execution reaching this point", fault),
				})
			}
			break
		}
		if faulted || blk.Term.Kind != cfg.TermBr {
			continue
		}
		cond := env.Val[blk.Term.Cond]
		if literalConst(blk, len(blk.Instrs), blk.Term.Cond) {
			continue // while (1) / if (0): deliberate idioms
		}
		switch {
		case cond == (Interval{0, 0}):
			out = append(out, Finding{
				Check: "const-branch",
				Func:  f.Name,
				Pos:   blk.Term.Pos,
				Msg:   "branch condition is always false",
			})
		case !cond.IsBottom() && !cond.Contains(0):
			out = append(out, Finding{
				Check: "const-branch",
				Func:  f.Name,
				Pos:   blk.Term.Pos,
				Msg:   "branch condition is always true",
			})
		}
	}
	return out
}
