package telemetry

import (
	"sync"
	"testing"
)

func TestAggregateSumsAndMaxes(t *testing.T) {
	a := Counters{Execs: 100, UniqueBugs: 2, QueueLen: 5, MaxDepth: 3, MapSize: 1 << 12}
	b := Counters{Execs: 50, UniqueBugs: 1, QueueLen: 7, MaxDepth: 9}
	got := Aggregate(a, b)
	if got.Execs != 150 || got.UniqueBugs != 3 || got.QueueLen != 12 {
		t.Fatalf("cumulative fields not summed: %+v", got)
	}
	if got.MaxDepth != 9 {
		t.Fatalf("MaxDepth = %d, want max(3, 9)", got.MaxDepth)
	}
	if got.MapSize != 1<<12 {
		t.Fatalf("MapSize = %d, want the first non-zero value", got.MapSize)
	}
}

// TestWorkerAggregateMonotone runs two concurrent per-worker
// publishers with monotonically increasing counters and a reader that
// continuously aggregates. Each worker's published Execs only ever
// grows, so the fleet aggregate must never be observed to decrease —
// the per-worker slots are independent atomics, and a torn aggregate
// (one worker's new value with another's stale one) is still a valid
// intermediate state. Run under -race this also proves the publish
// path is race-free against concurrent readers.
func TestWorkerAggregateMonotone(t *testing.T) {
	const steps = 2000
	r := New(Config{})

	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 1; i <= steps; i++ {
				r.PublishWorker(id, Counters{
					Execs:    int64(i),
					QueueLen: int64(i % 7),
					MaxDepth: int64(i % 5),
				})
			}
		}(id)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var last int64
	for {
		agg := r.AggregateWorkers()
		if agg.Execs < last {
			t.Errorf("aggregate Execs decreased: %d -> %d", last, agg.Execs)
			break
		}
		last = agg.Execs
		select {
		case <-done:
			wg.Wait()
			if got := r.AggregateWorkers().Execs; got != 2*steps {
				t.Fatalf("final aggregate Execs = %d, want %d", got, 2*steps)
			}
			if ws := r.Workers(); len(ws) != 2 || ws[0].ID != 0 || ws[1].ID != 1 {
				t.Fatalf("Workers() = %+v, want ids [0 1]", ws)
			}
			return
		default:
		}
	}
}
