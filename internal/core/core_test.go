package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/strategy"
	"repro/internal/vm"
)

const demo = `
func main(input) {
    if (len(input) >= 2 && input[0] == 'G' && input[1] == 'O') {
        abort();
    }
    return len(input);
}
`

func TestCompileAndExecute(t *testing.T) {
	target, err := core.Compile(demo)
	if err != nil {
		t.Fatal(err)
	}
	res := target.Execute([]byte("xy"))
	if res.Status != vm.StatusOK || res.Ret != 2 {
		t.Errorf("execute: %v ret=%d", res.Status, res.Ret)
	}
	res = target.Execute([]byte("GO"))
	if res.Status != vm.StatusCrash || res.Crash.Kind != vm.KindAbort {
		t.Errorf("crash input: %v", res.Status)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := core.Compile("func f(a) { return a; }"); err == nil || !strings.Contains(err.Error(), "main") {
		t.Errorf("missing main not diagnosed: %v", err)
	}
	if _, err := core.Compile("nonsense"); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestFuzzFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	target, err := core.Compile(demo)
	if err != nil {
		t.Fatal(err)
	}
	out, err := target.Fuzz(core.Campaign{
		Fuzzer: strategy.PCGuard,
		Budget: 20000,
		Seeds:  [][]byte{[]byte("hi")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Report.Bugs) == 0 {
		t.Errorf("magic-byte abort not found in %d execs", out.Report.Stats.Execs)
	}
}

func TestFuzzDefaults(t *testing.T) {
	target, err := core.Compile(demo)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-valued campaign: defaults kick in (path feedback, default
	// budget). Use a small budget to keep the test fast.
	out, err := target.Fuzz(core.Campaign{Budget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if out.Report.Stats.Execs < 2000 {
		t.Errorf("execs = %d", out.Report.Stats.Execs)
	}
}

func TestPathReport(t *testing.T) {
	target, err := core.Compile(`
func branchy(a) {
    if (a > 1) { a = a + 1; } else { a = a - 1; }
    if (a > 2) { a = a * 2; } else { a = a * 3; }
    return a;
}
func main(input) { return branchy(len(input)); }
`)
	if err != nil {
		t.Fatal(err)
	}
	stats := target.PathReport()
	if len(stats) != 2 {
		t.Fatalf("%d functions", len(stats))
	}
	for _, ps := range stats {
		if ps.Func == "branchy" {
			if ps.NumPaths != 4 {
				t.Errorf("branchy paths = %d, want 4", ps.NumPaths)
			}
			if ps.HashedFallback {
				t.Error("unexpected hash fallback")
			}
		}
	}
}

func TestPathProfilerFacade(t *testing.T) {
	target, err := core.Compile(demo)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := target.PathProfiler()
	if err != nil {
		t.Fatal(err)
	}
	prof.Profile("main", []byte("zz"), vm.DefaultLimits())
	if len(prof.Counts()) == 0 {
		t.Error("no paths profiled")
	}
}
