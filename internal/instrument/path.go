package instrument

import (
	"repro/internal/balllarus"
	"repro/internal/cfg"
	"repro/internal/coverage"
)

// pathRuntime is the flattened per-function runtime plan of the
// Ball-Larus instrumentation.
type pathRuntime struct {
	edgeInc []int64
	// backIdx maps edge indices to entries of backs (-1 for non-back
	// edges), avoiding a map lookup on the hot path.
	backIdx []int32
	backs   []balllarus.BackAction
	retInc  []int64
	// hashMode marks functions whose acyclic path count exceeded
	// balllarus.MaxPaths; they fall back to a rolling hash over edge
	// indices, trading the spatially optimal encoding for robustness.
	hashMode bool
	salt     uint32
	numPaths uint64
}

// PathTracer implements the paper's feedback: one word-sized register
// per activation accumulates Ball-Larus increments; completed acyclic
// paths (at returns and loop back edges) update the coverage map at
// index mix(path_id, function).
type PathTracer struct {
	m     *coverage.Map
	plans []pathRuntime
	mix   MixMode
	// regs is the register stack, parallel to the call stack.
	regs []uint64
	// fns mirrors regs with the active function IDs.
	fns []int
	// Records counts coverage map updates issued (path terminations),
	// exposed for the instrumentation-cost study.
	Records uint64
}

// NewPathTracer builds the Ball-Larus path feedback tracer. Functions
// whose path counts overflow fall back to hash mode rather than failing
// the whole program.
func NewPathTracer(p *cfg.Program, m *coverage.Map, cfg Config) (*PathTracer, error) {
	t := &PathTracer{m: m, plans: make([]pathRuntime, len(p.Funcs)), mix: cfg.Mix}
	for i, f := range p.Funcs {
		rt := &t.plans[i]
		rt.salt = fnSalt(i)
		enc, err := balllarus.Encode(f)
		if err != nil {
			rt.hashMode = true
			rt.backIdx = make([]int32, len(f.Edges))
			for e := range f.Edges {
				if f.BackEdge[e] {
					rt.backIdx[e] = 0 // any non-negative marks "back"
				} else {
					rt.backIdx[e] = -1
				}
			}
			continue
		}
		var plan balllarus.Plan
		if cfg.NaivePlacement {
			plan = enc.NaivePlan()
		} else {
			plan = enc.OptimizedPlan()
		}
		rt.edgeInc = plan.EdgeInc
		rt.retInc = plan.RetInc
		rt.numPaths = enc.NumPaths
		rt.backIdx = make([]int32, len(f.Edges))
		for e := range rt.backIdx {
			rt.backIdx[e] = -1
		}
		for e, act := range plan.Back {
			rt.backIdx[e] = int32(len(rt.backs))
			rt.backs = append(rt.backs, act)
		}
	}
	return t, nil
}

// NumPaths returns the acyclic path count of function fn (0 when the
// function is in hash mode).
func (t *PathTracer) NumPaths(fnID int) uint64 { return t.plans[fnID].numPaths }

// HashMode reports whether fn fell back to hashed path IDs.
func (t *PathTracer) HashMode(fnID int) bool { return t.plans[fnID].hashMode }

// Begin implements vm.Tracer.
func (t *PathTracer) Begin() {
	t.regs = t.regs[:0]
	t.fns = t.fns[:0]
}

// EnterFunc implements vm.Tracer.
func (t *PathTracer) EnterFunc(f *cfg.Func) {
	t.regs = append(t.regs, 0)
	t.fns = append(t.fns, f.ID)
}

func (t *PathTracer) record(fnID int, pathID uint64) {
	t.Records++
	var idx uint32
	switch t.mix {
	case MixXOR:
		// The paper's formula: (path_id ^ function) % map_size.
		idx = uint32(pathID) ^ t.plans[fnID].salt
	case MixHash:
		idx = uint32(splitmix64(pathID ^ (uint64(t.plans[fnID].salt) << 32)))
	}
	t.m.Add(idx)
}

// Edge implements vm.Tracer.
func (t *PathTracer) Edge(f *cfg.Func, e int) {
	rt := &t.plans[f.ID]
	top := len(t.regs) - 1
	if rt.hashMode {
		if rt.backIdx[e] >= 0 {
			t.record(f.ID, t.regs[top])
			t.regs[top] = 0
			return
		}
		t.regs[top] = splitmix64(t.regs[top] ^ uint64(e+1))
		return
	}
	if bi := rt.backIdx[e]; bi >= 0 {
		act := rt.backs[bi]
		t.record(f.ID, t.regs[top]+uint64(act.EndInc))
		t.regs[top] = uint64(act.StartVal)
		return
	}
	t.regs[top] += uint64(rt.edgeInc[e])
}

// Ret implements vm.Tracer.
func (t *PathTracer) Ret(f *cfg.Func, b int) {
	rt := &t.plans[f.ID]
	top := len(t.regs) - 1
	r := t.regs[top]
	if !rt.hashMode {
		r += uint64(rt.retInc[b])
	}
	t.record(f.ID, r)
	t.regs = t.regs[:top]
	t.fns = t.fns[:len(t.fns)-1]
}

// PathAFLTracer approximates PathAFL's feedback (Appendix C): classic
// edge coverage augmented with a rolling hash over a pruned
// whole-program sequence of function entries, recorded in bounded
// segments with coarse-grained identifiers. It deliberately reproduces
// the abstraction-level differences the paper discusses: partial
// instrumentation (small functions pruned), aggressive segment
// truncation, and hash-based (collision-prone) path identity.
type PathAFLTracer struct {
	m       *coverage.Map
	base    []uint32
	tracked []bool
	salt    []uint32
	segment int
	h       uint64
	n       int
}

// NewPathAFLTracer builds the PathAFL-like tracer.
func NewPathAFLTracer(p *cfg.Program, m *coverage.Map, cfg Config) *PathAFLTracer {
	t := &PathAFLTracer{
		m:       m,
		base:    edgeBase(p),
		tracked: make([]bool, len(p.Funcs)),
		salt:    make([]uint32, len(p.Funcs)),
		segment: cfg.PathAFLSegment,
	}
	for i, f := range p.Funcs {
		t.tracked[i] = len(f.Blocks) >= cfg.PathAFLMinBlocks
		t.salt[i] = fnSalt(i)
	}
	return t
}

// Begin implements vm.Tracer.
func (t *PathAFLTracer) Begin() {
	t.h = 0
	t.n = 0
}

func (t *PathAFLTracer) flush() {
	if t.n == 0 {
		return
	}
	// Coarse 16-bit path identifiers, as PathAFL's h-path hashing uses.
	t.m.Add(uint32(t.h) & 0xffff)
	t.h = 0
	t.n = 0
}

// EnterFunc implements vm.Tracer.
func (t *PathAFLTracer) EnterFunc(f *cfg.Func) {
	if !t.tracked[f.ID] {
		return
	}
	t.h = splitmix64(t.h ^ uint64(t.salt[f.ID]))
	t.n++
	if t.n >= t.segment {
		t.flush()
	}
}

// Edge implements vm.Tracer. PathAFL keeps AFL's edge coverage alongside
// its path hashes; both land in the same map here (edge IDs are exact,
// path hashes are masked to 16 bits).
func (t *PathAFLTracer) Edge(f *cfg.Func, e int) {
	t.m.Add(t.base[f.ID] + uint32(e))
}

// Ret implements vm.Tracer. Returning from a tracked function closes
// the current path segment, modelling PathAFL's recording of paths at
// call boundaries.
func (t *PathAFLTracer) Ret(f *cfg.Func, b int) {
	if t.tracked[f.ID] {
		t.flush()
	}
}
