package subjects

import "repro/internal/vm"

// mp42aac models an MP4-to-AAC extractor (the Bento4 tool): recursive
// box parsing, sample-table handling, and an esds decoder-config path
// that feeds an SBR extension table. Bugs mp-3 and mp-6 are
// path-dependent (the paper reports mp42aac zero-days found only by
// the path-aware fuzzers).
const mp42aacSrc = `
// mp42aac: MP4 box parser.
// Boxes: size(1) type(1) payload[size-2]; size includes the header.
// Types: 'm' = container (moov/trak/mdia), 's' = stsz sample sizes,
//        'e' = esds decoder config, 'c' = chunk offsets, 'h' = mvhd
//        timescale, 'p' = packet samples.

func parse_boxes(input, pos, end, st) {
    while (pos + 2 <= end && pos + 2 <= len(input)) {
        var size = input[pos];
        var t = input[pos + 1];
        if (size < 2) { return pos; }
        var body = pos + 2;
        var bend = min(pos + size, len(input));
        if (t == 'm') {
            parse_boxes(input, body, bend, st); // BUG mp-1: no nesting depth limit
        } else if (t == 's') {
            parse_stsz(input, body, bend, st);
        } else if (t == 'e') {
            parse_esds(input, body, bend, st);
        } else if (t == 'h') {
            parse_mvhd(input, body, bend, st);
        } else if (t == 'c') {
            parse_stco(input, body, bend, st);
        } else if (t == 'p') {
            decode_samples(input, body, bend, st);
        }
        pos = pos + size;
    }
    return pos;
}

func parse_stsz(input, pos, end, st) {
    if (pos >= end) { return 0; }
    var count = input[pos];
    var sizes = alloc(count * count * 32); // BUG mp-2: quadratic allocation
    var i = 0;
    while (i < count && pos + 1 + i < end) {
        sizes[i] = input[pos + 1 + i];
        st[3] = st[3] + sizes[i];
        i = i + 1;
    }
    return count;
}

func parse_esds(input, pos, end, st) {
    if (pos + 2 > end) { return 0; }
    var objtype = input[pos];
    var cfg = input[pos + 1];
    if (objtype == 64) {
        // AAC: profile in the top 3 bits.
        st[0] = cfg >> 5;
        if ((cfg & 1) == 1) {
            // BUG mp-3 (setup): only the explicit-SBR config path sets
            // the extension flag; decode trusts profile*2+ext.
            st[1] = 1;
        }
    } else {
        st[0] = 1;
        st[1] = 0;
    }
    return st[0];
}

func parse_mvhd(input, pos, end, st) {
    if (pos + 2 > end) { return 0; }
    var timescale = input[pos];
    var duration = input[pos + 1];
    out(duration * 1000 / timescale); // BUG mp-5: zero timescale
    return 0;
}

func parse_stco(input, pos, end, st) {
    if (pos >= end) { return 0; }
    var n = input[pos];
    var i = 0;
    while (i < n) {
        var off = input[pos + 1 + i]; // BUG mp-4: entry count unchecked against box end
        st[2] = st[2] + off;
        i = i + 1;
    }
    return n;
}

func decode_samples(input, pos, end, st) {
    var sbr_tab = alloc(16);
    var idx = st[0] * 2 + st[1];
    sbr_tab[idx] = 1; // BUG mp-3 (trigger): profile 7 with SBR ext gives 15... profile from
    // cfg>>5 is at most 7, so 7*2+1 = 15 fits; the REAL trigger is the
    // doubled index below for parametric stereo.
    var i = pos;
    while (i < end && i < len(input)) {
        if (input[i] == 0x21 && st[1] == 1) {
            // Parametric-stereo extension payload doubles the index.
            sbr_tab[idx * 2] = 2; // BUG mp-3: idx*2 up to 30 with the SBR path set
        }
        i = i + 1;
    }
    return idx;
}

func main(input) {
    if (len(input) < 4) { return 1; }
    if (input[0] != 'M' || input[1] != '4') { return 1; }
    var st = alloc(4);
    return parse_boxes(input, 2, len(input), st);
}
`

func init() {
	// mp-1 witness: deeply nested container boxes. Each 'm' box with
	// size covering the rest recurses once per level.
	mp1 := []byte{'M', '4'}
	for i := 0; i < 250; i++ {
		mp1 = append(mp1, 255, 'm')
	}

	// mp-3 witness: esds with AAC objtype 64, cfg = profile 7 <<5 | 1
	// (0xE1), then a 'p' box containing the 0x21 extension byte.
	mp3w := []byte{'M', '4',
		4, 'e', 64, 0xE1, // esds box: size 4
		3, 'p', 0x21} // packet box with PS extension marker

	register(&Subject{
		Name:      "mp42aac",
		TypeLabel: "C++",
		Source:    mp42aacSrc,
		Seeds: [][]byte{
			{'M', '4', 6, 'm', 4, 's', 2, 9, 4, 'h', 2, 10},
			{'M', '4', 4, 'e', 64, 0x40, 3, 'p', 5},
		},
		Bugs: []Bug{
			{
				ID:       "mp-1-box-recursion",
				Witness:  mp1,
				WantKind: vm.KindStackOverflow,
				WantFunc: "parse_boxes",
				Comment:  "container boxes recurse without a nesting limit",
			},
			{
				ID:       "mp-2-stsz-alloc",
				Witness:  []byte{'M', '4', 4, 's', 200, 0},
				WantKind: vm.KindBadAlloc,
				WantFunc: "parse_stsz",
				Comment:  "sample-size table allocation grows quadratically with the count byte",
			},
			{
				ID:            "mp-3-sbr-oob",
				Witness:       mp3w,
				WantKind:      vm.KindOOBWrite,
				WantFunc:      "decode_samples",
				PathDependent: true,
				Comment: "profile 7 + the explicit-SBR esds path + a parametric-stereo packet " +
					"index 30 into the 16-cell SBR table (mp42aac zero-day analogue)",
			},
			{
				ID:       "mp-4-stco-oob",
				Witness:  []byte{'M', '4', 3, 'c', 200},
				WantKind: vm.KindOOBRead,
				WantFunc: "parse_stco",
				Comment:  "chunk-offset count is not checked against the box payload",
			},
			{
				ID:       "mp-5-timescale-div",
				Witness:  []byte{'M', '4', 4, 'h', 0, 50},
				WantKind: vm.KindDivByZero,
				WantFunc: "parse_mvhd",
				Comment:  "zero movie timescale divides the duration report by zero",
			},
		},
	})
}
