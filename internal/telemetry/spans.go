package telemetry

import (
	"math/bits"
	"sync"
	"time"
)

// Stage identifies a fuzzer stage for span tracing. The set mirrors
// AFL's stage taxonomy; StageSplice and StageTrim exist for engines
// that run them as separate timed stages (this repo's fuzzer
// interleaves splice inside havoc and has no trim stage, so those two
// are attributed via exec counters rather than spans).
type Stage uint8

// Stages.
const (
	// StageCalibrate covers seed execution and first-run calibration.
	StageCalibrate Stage = iota
	// StageHavoc covers one queue entry's havoc/splice budget.
	StageHavoc
	// StageSplice is reserved for engines with a separate splice stage.
	StageSplice
	// StageCmplog covers the input-to-state stage of one entry.
	StageCmplog
	// StageTrim is reserved for engines with a trim stage.
	StageTrim
	// StageCheckpoint covers writing one campaign checkpoint.
	StageCheckpoint
	// StageRetrace covers the CGT engine's full-instrumentation
	// re-executions of suspected-novel or crashing inputs.
	StageRetrace
	numStages
)

var stageNames = [numStages]string{
	"calibrate", "havoc", "splice", "cmplog", "trim", "checkpoint", "retrace",
}

// String names the stage.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames lists every stage name in enum order.
func StageNames() []string { return stageNames[:] }

// histBuckets is the number of power-of-two latency buckets: bucket i
// counts spans with duration in [2^i, 2^(i+1)) nanoseconds. 40 buckets
// reach ~18 minutes, far beyond any stage. The idiom matches the
// coverage map's power-of-two hit-count bucketing.
const histBuckets = 40

// durBucket maps a duration to its power-of-two bucket index.
func durBucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	return time.Duration(1) << uint(i)
}

// SpanRec is one completed stage execution in the ring buffer.
type SpanRec struct {
	Stage Stage         `json:"-"`
	Name  string        `json:"stage"`
	At    time.Duration `json:"at_ns"`  // elapsed time when the span ended
	Dur   time.Duration `json:"dur_ns"` // span duration
}

// stageHist aggregates one stage's latencies.
type stageHist struct {
	count   int64
	totalNs int64
	minNs   int64
	maxNs   int64
	buckets [histBuckets]int64
}

// StageAgg is the exported aggregate view of one stage.
type StageAgg struct {
	Stage   string `json:"stage"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MinNs   int64  `json:"min_ns"`
	MaxNs   int64  `json:"max_ns"`
	// Buckets holds the non-empty power-of-two latency buckets.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket: spans with duration
// in [LowNs, 2*LowNs).
type BucketCount struct {
	LowNs int64 `json:"low_ns"`
	Count int64 `json:"count"`
}

// spanStore is the mutex-guarded span ring plus per-stage histograms.
// Spans are recorded at stage granularity (a handful per queue entry),
// so a mutex here never contends with the exec loop.
type spanStore struct {
	mu    sync.Mutex
	ring  []SpanRec
	next  int
	count int
	hist  [numStages]stageHist
}

func newSpanStore(capacity int) *spanStore {
	return &spanStore{ring: make([]SpanRec, capacity)}
}

func (st *spanStore) record(rec SpanRec) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.ring[st.next] = rec
	st.next = (st.next + 1) % len(st.ring)
	if st.count < len(st.ring) {
		st.count++
	}
	h := &st.hist[rec.Stage]
	ns := int64(rec.Dur)
	if h.count == 0 || ns < h.minNs {
		h.minNs = ns
	}
	if ns > h.maxNs {
		h.maxNs = ns
	}
	h.count++
	h.totalNs += ns
	h.buckets[durBucket(rec.Dur)]++
}

// Span records one completed stage execution of duration d.
func (r *Recorder) Span(stage Stage, d time.Duration) {
	if stage >= numStages {
		return
	}
	r.spans.record(SpanRec{Stage: stage, Name: stage.String(), At: r.Elapsed(), Dur: d})
}

// StartSpan starts timing a stage and returns the function that stops
// and records it:
//
//	defer rec.StartSpan(telemetry.StageHavoc)()
func (r *Recorder) StartSpan(stage Stage) func() {
	t0 := r.now()
	return func() { r.Span(stage, r.now().Sub(t0)) }
}

// Spans returns the retained span records, oldest first.
func (r *Recorder) Spans() []SpanRec {
	st := r.spans
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SpanRec, 0, st.count)
	start := st.next - st.count
	if start < 0 {
		start += len(st.ring)
	}
	for i := 0; i < st.count; i++ {
		out = append(out, st.ring[(start+i)%len(st.ring)])
	}
	return out
}

// StageStats returns per-stage latency aggregates in enum order,
// omitting stages that never ran.
func (r *Recorder) StageStats() []StageAgg {
	st := r.spans
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []StageAgg
	for s := Stage(0); s < numStages; s++ {
		h := &st.hist[s]
		if h.count == 0 {
			continue
		}
		agg := StageAgg{
			Stage:   s.String(),
			Count:   h.count,
			TotalNs: h.totalNs,
			MinNs:   h.minNs,
			MaxNs:   h.maxNs,
		}
		for i, c := range h.buckets {
			if c != 0 {
				agg.Buckets = append(agg.Buckets, BucketCount{LowNs: int64(BucketLow(i)), Count: c})
			}
		}
		out = append(out, agg)
	}
	return out
}
