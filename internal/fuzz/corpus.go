package fuzz

import (
	"sort"

	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/coverage"
	"repro/internal/instrument"
	"repro/internal/vm"
)

// edgeRunner returns an exec function replaying inputs under exact
// edge instrumentation into m. It runs on the bytecode engine (the
// compilation is cached process-wide), with the tracer interpreter as
// the defensive fallback; both are differentially identical, so corpus
// replay tooling is engine-agnostic.
func edgeRunner(prog *cfg.Program, m *coverage.Map, entry string, limits vm.Limits) func(in []byte) vm.Result {
	if cp, ok := instrument.CompiledFor(instrument.FeedbackEdge, prog, instrument.Config{}); ok {
		mach := bytecode.NewMachine(cp, m, limits)
		return func(in []byte) vm.Result { return mach.Run(entry, in) }
	}
	tr := instrument.NewEdgeTracer(prog, m)
	return func(in []byte) vm.Result { return vm.Run(prog, entry, in, tr, limits) }
}

// edgeMapSize returns the smallest power-of-two map that gives every
// CFG edge of prog a collision-free identity.
func edgeMapSize(prog *cfg.Program) int {
	n := prog.NumEdges()
	size := 1
	for size < n {
		size <<= 1
	}
	if size < 64 {
		size = 64
	}
	return size
}

// ShowMap replays a corpus under exact edge instrumentation and returns
// the set of global edge IDs it covers — the afl-showmap analogue used
// by the Table IV coverage study and by corpus minimisation.
func ShowMap(prog *cfg.Program, inputs [][]byte, entry string, limits vm.Limits) map[uint32]bool {
	if entry == "" {
		entry = "main"
	}
	if limits == (vm.Limits{}) {
		limits = vm.DefaultLimits()
	}
	m := coverage.NewMap(edgeMapSize(prog))
	run := edgeRunner(prog, m, entry, limits)
	covered := make(map[uint32]bool)
	for _, in := range inputs {
		m.Reset()
		run(in)
		for _, idx := range m.Indices() {
			covered[idx] = true
		}
	}
	return covered
}

// MinimizeCorpus returns a subset of inputs that preserves the corpus's
// total edge coverage, via the favored-corpus greedy set-cover
// approximation the paper uses as its culling criterion ("more
// efficient than afl-cmin, for equivalent results"). Inputs that crash
// or time out are dropped. The result preserves input order.
func MinimizeCorpus(prog *cfg.Program, inputs [][]byte, entry string, limits vm.Limits) [][]byte {
	if entry == "" {
		entry = "main"
	}
	if limits == (vm.Limits{}) {
		limits = vm.DefaultLimits()
	}
	m := coverage.NewMap(edgeMapSize(prog))
	run := edgeRunner(prog, m, entry, limits)

	type cand struct {
		pos   int
		data  []byte
		cov   []uint32
		score int64
	}
	var cands []cand
	topRated := make(map[uint32]int) // edge id -> index into cands
	for pos, in := range inputs {
		m.Reset()
		res := run(in)
		if res.Status != vm.StatusOK {
			continue
		}
		c := cand{pos: pos, data: in, cov: m.Indices(), score: res.Steps * int64(len(in)+1)}
		ci := len(cands)
		cands = append(cands, c)
		for _, idx := range c.cov {
			if cur, ok := topRated[idx]; !ok || c.score < cands[cur].score {
				topRated[idx] = ci
			}
		}
	}

	indices := make([]uint32, 0, len(topRated))
	for idx := range topRated {
		indices = append(indices, idx)
	}
	sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })

	covered := make(map[uint32]bool, len(indices))
	chosen := make(map[int]bool)
	for _, idx := range indices {
		if covered[idx] {
			continue
		}
		ci := topRated[idx]
		chosen[ci] = true
		for _, i := range cands[ci].cov {
			covered[i] = true
		}
	}

	var out [][]byte
	for ci := range cands {
		if chosen[ci] {
			out = append(out, cands[ci].data)
		}
	}
	return out
}

// StripCrashers removes inputs that crash or time out, as the
// opportunistic strategy requires before handing a pcguard queue to the
// path-aware stage.
func StripCrashers(prog *cfg.Program, inputs [][]byte, entry string, limits vm.Limits) [][]byte {
	if entry == "" {
		entry = "main"
	}
	if limits == (vm.Limits{}) {
		limits = vm.DefaultLimits()
	}
	var out [][]byte
	for _, in := range inputs {
		res := vm.Run(prog, entry, in, vm.NullTracer{}, limits)
		if res.Status == vm.StatusOK {
			out = append(out, in)
		}
	}
	return out
}

// MinimizeCorpusExact is the afl-cmin-style greedy set cover: it
// repeatedly picks the input covering the most still-uncovered edges.
// The paper reports using the favored-corpus construction
// (MinimizeCorpus) instead because it was "more efficient ... for
// equivalent results"; this function exists to back that comparison
// (see the corpus tests and BenchmarkAblationCullCriterion).
func MinimizeCorpusExact(prog *cfg.Program, inputs [][]byte, entry string, limits vm.Limits) [][]byte {
	if entry == "" {
		entry = "main"
	}
	if limits == (vm.Limits{}) {
		limits = vm.DefaultLimits()
	}
	m := coverage.NewMap(edgeMapSize(prog))
	run := edgeRunner(prog, m, entry, limits)

	type cand struct {
		data []byte
		cov  []uint32
	}
	var cands []cand
	for _, in := range inputs {
		m.Reset()
		res := run(in)
		if res.Status != vm.StatusOK {
			continue
		}
		cands = append(cands, cand{data: in, cov: m.Indices()})
	}
	covered := make(map[uint32]bool)
	taken := make([]bool, len(cands))
	var out [][]byte
	for {
		best, bestGain := -1, 0
		for i, c := range cands {
			if taken[i] {
				continue
			}
			gain := 0
			for _, idx := range c.cov {
				if !covered[idx] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return out
		}
		taken[best] = true
		out = append(out, cands[best].data)
		for _, idx := range cands[best].cov {
			covered[idx] = true
		}
	}
}
