package interproc

import (
	"math"

	"repro/internal/analysis"
	"repro/internal/balllarus"
	"repro/internal/cfg"
	"repro/internal/lang"
)

// simulateCap bounds the number of Ball-Larus acyclic paths a function
// may have for the per-path abstract walk (infeasibility + branch
// correlation) to run. Functions beyond it get no path facts — a sound
// omission, since infeasibility is under-approximated.
const simulateCap = 4096

// cellCap bounds NumPaths for the never-hit-cell computation: every
// function must be enumerable below it before any feedback cell can be
// proven dead (a non-enumerable function could hash anywhere).
const cellCap = 65536

// maxCorrelBranches bounds the branch blocks per function for pairwise
// implication mining (decision sets are stored as 64-bit masks).
const maxCorrelBranches = 64

// Implication is a proven pairwise branch correlation within one
// function: on every feasible acyclic path that decides branch block B1
// in direction D1 (true = then edge) and also decides B2, B2 goes D2.
// Witness counts the feasible paths deciding both.
type Implication struct {
	B1      int
	D1      bool
	B2      int
	D2      bool
	Witness int
}

// cmpRec is the relational shadow of one slot: the slot currently
// holds the boolean result of `a op b` (negated when neg), letting the
// path walker refine operand intervals at branches.
type cmpRec struct {
	op    lang.Kind
	a, b  int
	neg   bool
	valid bool
}

func isCmpKind(k lang.Kind) bool {
	switch k {
	case lang.EQ, lang.NE, lang.LT, lang.LE, lang.GT, lang.GE:
		return true
	}
	return false
}

func satInc(x int64) int64 {
	if x == math.MaxInt64 {
		return x
	}
	return x + 1
}

func satDec(x int64) int64 {
	if x == math.MinInt64 {
		return x
	}
	return x - 1
}

// pathWalker abstractly interprets one regenerated acyclic path,
// deciding whether the path can possibly execute (and record its ID).
type pathWalker struct {
	f   *cfg.Func
	ii  *analysis.Intervals
	env analysis.Env
	cmp []cmpRec
	// decisions taken along the current path, in step order.
	decBlocks []int
	decDirs   []bool
}

func newPathWalker(f *cfg.Func, ii *analysis.Intervals) *pathWalker {
	return &pathWalker{
		f:   f,
		ii:  ii,
		env: analysis.NewEnv(f.FrameSize),
		cmp: make([]cmpRec, f.FrameSize),
	}
}

// walk returns false when the path is proven infeasible: some step
// contradicts the accumulated interval constraints, or a guaranteed
// fault fires before the path's record point. On true, w.decBlocks /
// w.decDirs hold the branch decisions the path makes.
func (w *pathWalker) walk(steps []balllarus.PathStep) bool {
	w.decBlocks = w.decBlocks[:0]
	w.decDirs = w.decDirs[:0]
	for i := range w.cmp {
		w.cmp[i].valid = false
	}
	first := steps[0].Block
	if !w.ii.Reached[first] {
		return false
	}
	// Entry state: the fixpoint's join at the first block. For paths
	// entering via a back edge this is the loop header's join over all
	// iterations — a sound starting over-approximation.
	w.env.CopyFrom(&w.ii.In[first])
	for k, st := range steps {
		b := st.Block
		blk := &w.f.Blocks[b]
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if w.ii.StepInstr(&w.env, in) != "" {
				// Guaranteed fault: execution aborts before the path's
				// record point (back edge or return), so this ID can
				// never be recorded.
				return false
			}
			w.updateCmp(in)
		}
		if k+1 < len(steps) {
			if !w.takeBranch(b, steps[k+1].Block) {
				return false
			}
			continue
		}
		// Last step. For back-edge exits the direction is decided by
		// which successor edge is the back edge (when unambiguous); for
		// return blocks the terminator imposes nothing further.
		if st.ExitViaBackEdge && blk.Term.Kind == cfg.TermBr {
			thenBack := blk.EdgeThen >= 0 && w.f.BackEdge[blk.EdgeThen]
			elseBack := blk.EdgeElse >= 0 && w.f.BackEdge[blk.EdgeElse]
			if thenBack != elseBack {
				if !w.decide(b, thenBack) {
					return false
				}
			}
		}
	}
	return true
}

// takeBranch applies the terminator constraint of block b given that
// the path continues at next.
func (w *pathWalker) takeBranch(b, next int) bool {
	blk := &w.f.Blocks[b]
	if blk.Term.Kind != cfg.TermBr || blk.Term.Then == blk.Term.Else {
		return true
	}
	return w.decide(b, next == blk.Term.Then)
}

// decide records the branch decision and refines the environment with
// it; false means the direction contradicts the intervals.
func (w *pathWalker) decide(b int, dir bool) bool {
	blk := &w.f.Blocks[b]
	w.decBlocks = append(w.decBlocks, b)
	w.decDirs = append(w.decDirs, dir)
	cond := blk.Term.Cond
	cv := w.env.Val[cond]
	if cv.IsBottom() {
		return false
	}
	if dir {
		// Condition must be nonzero.
		if cv == (analysis.Interval{Lo: 0, Hi: 0}) {
			return false
		}
		if cv.Lo == 0 {
			cv.Lo = 1
		} else if cv.Hi == 0 {
			cv.Hi = -1
		}
	} else {
		if !cv.Contains(0) {
			return false
		}
		cv = analysis.Interval{Lo: 0, Hi: 0}
	}
	w.env.Val[cond] = cv
	if r := w.cmp[cond]; r.valid {
		truth := dir != r.neg
		if !w.refineOps(r.op, truth, r.a, r.b) {
			return false
		}
	}
	return true
}

// refineOps narrows the operand intervals of `a op b` knowing its
// truth value; false means the constraint is unsatisfiable.
func (w *pathWalker) refineOps(op lang.Kind, truth bool, a, b int) bool {
	if !truth {
		switch op {
		case lang.EQ:
			op = lang.NE
		case lang.NE:
			op = lang.EQ
		case lang.LT:
			op = lang.GE
		case lang.LE:
			op = lang.GT
		case lang.GT:
			op = lang.LE
		case lang.GE:
			op = lang.LT
		}
	}
	av, bv := w.env.Val[a], w.env.Val[b]
	if av.IsBottom() || bv.IsBottom() {
		return false
	}
	switch op {
	case lang.EQ:
		m := analysis.Interval{Lo: maxI64(av.Lo, bv.Lo), Hi: minI64(av.Hi, bv.Hi)}
		av, bv = m, m
	case lang.NE:
		if bv.Singleton() {
			if av.Lo == bv.Lo {
				av.Lo = satInc(av.Lo)
			}
			if av.Hi == bv.Lo {
				av.Hi = satDec(av.Hi)
			}
		}
		if av.Singleton() {
			if bv.Lo == av.Lo {
				bv.Lo = satInc(bv.Lo)
			}
			if bv.Hi == av.Lo {
				bv.Hi = satDec(bv.Hi)
			}
		}
	case lang.LT: // a < b
		av.Hi = minI64(av.Hi, satDec(bv.Hi))
		bv.Lo = maxI64(bv.Lo, satInc(av.Lo))
	case lang.LE: // a <= b
		av.Hi = minI64(av.Hi, bv.Hi)
		bv.Lo = maxI64(bv.Lo, av.Lo)
	case lang.GT: // a > b
		av.Lo = maxI64(av.Lo, satInc(bv.Lo))
		bv.Hi = minI64(bv.Hi, satDec(av.Hi))
	case lang.GE: // a >= b
		av.Lo = maxI64(av.Lo, bv.Lo)
		bv.Hi = minI64(bv.Hi, av.Hi)
	}
	if av.IsBottom() || bv.IsBottom() {
		return false
	}
	w.env.Val[a], w.env.Val[b] = av, bv
	return true
}

// updateCmp maintains the relational shadows after in executes.
func (w *pathWalker) updateCmp(in *cfg.Instr) {
	d := analysis.InstrDef(in)
	if d < 0 {
		return
	}
	// Capture possible sources before invalidation: a move/negation of
	// a shadowed slot transfers the relation.
	var src cmpRec
	switch {
	case in.Op == cfg.OpMove:
		src = w.cmp[in.A]
	case in.Op == cfg.OpUn && in.Sub == lang.NOT:
		src = w.cmp[in.A]
		src.neg = !src.neg
	}
	// Any shadow whose operands include the redefined slot is stale.
	for s := range w.cmp {
		if w.cmp[s].valid && (w.cmp[s].a == d || w.cmp[s].b == d) {
			w.cmp[s].valid = false
		}
	}
	switch {
	case in.Op == cfg.OpBin && isCmpKind(in.Sub) && in.A != d && in.B != d:
		w.cmp[d] = cmpRec{op: in.Sub, a: in.A, b: in.B, valid: true}
	case src.valid && src.a != d && src.b != d:
		w.cmp[d] = src
	default:
		w.cmp[d].valid = false
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// pathFacts is the outcome of the per-path walk over one function.
type pathFacts struct {
	numPaths   uint64
	encodeOK   bool
	walked     bool
	infeasible []uint64
	impls      []Implication
}

// walkPaths enumerates every acyclic path of f (when enumerable under
// simulateCap), classifies each as feasible / proven-infeasible, and
// mines pairwise branch implications from the feasible decision sets.
func walkPaths(f *cfg.Func, ii *analysis.Intervals) pathFacts {
	var pf pathFacts
	enc, err := balllarus.Encode(f)
	if err != nil {
		return pf
	}
	pf.encodeOK = true
	pf.numPaths = enc.NumPaths
	if enc.NumPaths > simulateCap {
		return pf
	}
	pf.walked = true

	// Branch blocks eligible for implication mining, in block order.
	var brBlocks []int
	brIdx := make(map[int]int)
	for b := range f.Blocks {
		if f.Blocks[b].Term.Kind == cfg.TermBr && f.Blocks[b].Term.Then != f.Blocks[b].Term.Else {
			brIdx[b] = len(brBlocks)
			brBlocks = append(brBlocks, b)
		}
	}
	mine := len(brBlocks) <= maxCorrelBranches

	w := newPathWalker(f, ii)
	type decSet struct{ decided, dir uint64 }
	var feas []decSet
	for id := uint64(0); id < enc.NumPaths; id++ {
		steps, err := enc.Regenerate(id)
		if err != nil || len(steps) == 0 {
			continue
		}
		if !w.walk(steps) {
			pf.infeasible = append(pf.infeasible, id)
			continue
		}
		if !mine {
			continue
		}
		var ds decSet
		for i, b := range w.decBlocks {
			bi, ok := brIdx[b]
			if !ok {
				continue
			}
			ds.decided |= 1 << uint(bi)
			if w.decDirs[i] {
				ds.dir |= 1 << uint(bi)
			}
		}
		feas = append(feas, ds)
	}
	if !mine || len(feas) == 0 {
		return pf
	}

	// Implication (b1,d1) => (b2,d2) holds when every feasible path
	// deciding b1=d1 and deciding b2 agrees on d2 — with at least one
	// witness, and only when b2 is not constant across all feasible
	// paths (constant branches yield vacuous implications).
	for i1, b1 := range brBlocks {
		m1 := uint64(1) << uint(i1)
		for _, d1 := range [2]bool{true, false} {
			for i2, b2 := range brBlocks {
				if i1 == i2 {
					continue
				}
				m2 := uint64(1) << uint(i2)
				// b2 constant over all feasible paths that decide it?
				seenT, seenF := false, false
				for _, ds := range feas {
					if ds.decided&m2 != 0 {
						if ds.dir&m2 != 0 {
							seenT = true
						} else {
							seenF = true
						}
					}
				}
				if !seenT || !seenF {
					continue
				}
				witness, holdsT, holdsF := 0, true, true
				for _, ds := range feas {
					if ds.decided&m1 == 0 || ds.decided&m2 == 0 {
						continue
					}
					if (ds.dir&m1 != 0) != d1 {
						continue
					}
					witness++
					if ds.dir&m2 != 0 {
						holdsF = false
					} else {
						holdsT = false
					}
				}
				if witness == 0 {
					continue
				}
				if holdsT {
					pf.impls = append(pf.impls, Implication{B1: b1, D1: d1, B2: b2, D2: true, Witness: witness})
				} else if holdsF {
					pf.impls = append(pf.impls, Implication{B1: b1, D1: d1, B2: b2, D2: false, Witness: witness})
				}
			}
		}
	}
	return pf
}
