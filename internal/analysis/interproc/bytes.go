package interproc

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// maxRanges caps the number of disjoint ranges a ByteSet keeps exact.
// Beyond it, neighbouring ranges are coalesced (an over-approximation),
// which bounds the lattice height and keeps the fixpoint cheap.
const maxRanges = 16

// offsetCap is the largest input offset tracked exactly. Interval
// bounds above it (typically widened loop indices) mean "any offset",
// so the set degrades to All instead of carrying astronomical ranges.
const offsetCap = 1 << 20

// ByteRange is an inclusive range of input byte offsets.
type ByteRange struct{ Lo, Hi int64 }

// ByteSet over-approximates a set of input byte offsets as sorted,
// disjoint, non-adjacent inclusive ranges, with All as the top element
// (every offset; used when offsets are statically unbounded). The zero
// value is the empty set.
type ByteSet struct {
	All bool
	R   []ByteRange
}

// Empty reports whether the set holds no offsets.
func (s *ByteSet) Empty() bool { return !s.All && len(s.R) == 0 }

// Contains reports whether offset o is in the set.
func (s *ByteSet) Contains(o int64) bool {
	if s.All {
		return true
	}
	for _, r := range s.R {
		if o < r.Lo {
			return false
		}
		if o <= r.Hi {
			return true
		}
	}
	return false
}

// AddRange unions the inclusive range [lo, hi] into s, reporting
// whether s changed. Negative lo is clamped to 0; hi beyond offsetCap
// (or an empty range) degrades to All / no-op as appropriate.
func (s *ByteSet) AddRange(lo, hi int64) bool {
	if s.All {
		return false
	}
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		return false
	}
	if hi >= offsetCap {
		s.All = true
		s.R = nil
		return true
	}
	// Merge with any overlapping or adjacent ranges. The result is a
	// fresh slice: TV values are copied structurally all over the
	// solver, and never mutating a shared backing array is what makes
	// those plain copies safe (copy-on-write).
	out := make([]ByteRange, 0, len(s.R)+1)
	inserted := false
	changed := true
	for _, r := range s.R {
		switch {
		case r.Hi+1 < lo:
			out = append(out, r)
		case hi+1 < r.Lo:
			if !inserted {
				out = append(out, ByteRange{lo, hi})
				inserted = true
			}
			out = append(out, r)
		default:
			// Overlap/adjacency: absorb into the pending range.
			if r.Lo <= lo && hi <= r.Hi {
				changed = false // already covered
			}
			if r.Lo < lo {
				lo = r.Lo
			}
			if r.Hi > hi {
				hi = r.Hi
			}
		}
	}
	if !inserted {
		out = append(out, ByteRange{lo, hi})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	s.R = out
	if len(s.R) > maxRanges {
		// Coalesce the pair with the smallest gap until under the cap:
		// a sound widening that keeps the tightest hull.
		for len(s.R) > maxRanges {
			best, bestGap := 0, int64(math.MaxInt64)
			for i := 0; i+1 < len(s.R); i++ {
				if g := s.R[i+1].Lo - s.R[i].Hi; g < bestGap {
					best, bestGap = i, g
				}
			}
			s.R[best].Hi = s.R[best+1].Hi
			s.R = append(s.R[:best+1], s.R[best+2:]...)
		}
	}
	return changed
}

// UnionWith adds o's offsets to s, reporting whether s changed.
func (s *ByteSet) UnionWith(o *ByteSet) bool {
	if s.All {
		return false
	}
	if o.All {
		s.All = true
		s.R = nil
		return true
	}
	changed := false
	for _, r := range o.R {
		if s.AddRange(r.Lo, r.Hi) {
			changed = true
		}
		if s.All {
			return true
		}
	}
	return changed
}

// FromInterval converts a statically-derived index interval into a
// byte set: bottom is empty, unbounded (or huge) tops are All.
func FromInterval(iv analysis.Interval) ByteSet {
	var s ByteSet
	if iv.IsBottom() {
		return s
	}
	s.AddRange(iv.Lo, iv.Hi)
	return s
}

// Count returns the number of offsets in the set, or -1 for All.
func (s *ByteSet) Count() int64 {
	if s.All {
		return -1
	}
	var n int64
	for _, r := range s.R {
		n += r.Hi - r.Lo + 1
	}
	return n
}

// String renders the set compactly: "*" for All, "-" for empty,
// otherwise "[0-3,8,12-15]".
func (s *ByteSet) String() string {
	if s.All {
		return "*"
	}
	if len(s.R) == 0 {
		return "-"
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, r := range s.R {
		if i > 0 {
			b.WriteByte(',')
		}
		if r.Lo == r.Hi {
			fmt.Fprintf(&b, "%d", r.Lo)
		} else {
			fmt.Fprintf(&b, "%d-%d", r.Lo, r.Hi)
		}
	}
	b.WriteByte(']')
	return b.String()
}
