package vm_test

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/vm"
)

func TestCrashKindNames(t *testing.T) {
	names := map[vm.CrashKind]string{
		vm.KindOOBRead:       "heap-out-of-bounds-read",
		vm.KindOOBWrite:      "heap-out-of-bounds-write",
		vm.KindNullDeref:     "null-dereference",
		vm.KindWildPointer:   "wild-pointer",
		vm.KindDivByZero:     "division-by-zero",
		vm.KindBadAlloc:      "bad-allocation",
		vm.KindOOM:           "out-of-memory",
		vm.KindAssertFail:    "assertion-failure",
		vm.KindAbort:         "abort",
		vm.KindStackOverflow: "stack-overflow",
		vm.KindTimeout:       "timeout",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d: %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(vm.CrashKind(99).String(), "99") {
		t.Error("unknown kind should render its number")
	}
}

func TestCrashRendering(t *testing.T) {
	c := &vm.Crash{
		Kind: vm.KindOOBWrite,
		Msg:  "index 9 out of bounds for length 4",
		Func: "inner",
		Pos:  lang.Pos{Line: 12, Col: 5},
		Stack: []vm.Frame{
			{Func: "inner", Pos: lang.Pos{Line: 12, Col: 5}},
			{Func: "main", Pos: lang.Pos{Line: 30, Col: 9}},
		},
	}
	s := c.String()
	for _, want := range []string{"heap-out-of-bounds-write", "inner", "12:5", "main", "30:9", "index 9"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered crash missing %q:\n%s", want, s)
		}
	}
	if c.BugKey() != "inner:12:heap-out-of-bounds-write" {
		t.Errorf("BugKey = %s", c.BugKey())
	}
}

func TestStackHashProperties(t *testing.T) {
	mk := func(fn string, line int, kind vm.CrashKind) *vm.Crash {
		return &vm.Crash{
			Kind: kind,
			Func: fn,
			Pos:  lang.Pos{Line: line, Col: 1},
			Stack: []vm.Frame{
				{Func: fn, Pos: lang.Pos{Line: line, Col: 1}},
				{Func: "main", Pos: lang.Pos{Line: 99, Col: 1}},
			},
		}
	}
	a := mk("f", 10, vm.KindAbort)
	b := mk("f", 10, vm.KindAbort)
	if a.StackHash(5) != b.StackHash(5) {
		t.Error("identical crashes hash differently")
	}
	if a.StackHash(5) == mk("g", 10, vm.KindAbort).StackHash(5) {
		t.Error("different functions collide")
	}
	if a.StackHash(5) == mk("f", 11, vm.KindAbort).StackHash(5) {
		t.Error("different lines collide")
	}
	if a.StackHash(5) == mk("f", 10, vm.KindOOBRead).StackHash(5) {
		t.Error("different kinds collide")
	}
	// Frames beyond the prefix do not matter (top-5 clustering).
	deep := mk("f", 10, vm.KindAbort)
	for i := 0; i < 10; i++ {
		deep.Stack = append(deep.Stack, vm.Frame{Func: "filler", Pos: lang.Pos{Line: i}})
	}
	short := mk("f", 10, vm.KindAbort)
	for i := 0; i < 10; i++ {
		short.Stack = append(short.Stack, vm.Frame{Func: "other", Pos: lang.Pos{Line: 50 + i}})
	}
	if deep.StackHash(2) != short.StackHash(2) {
		t.Error("frames beyond the prefix leaked into the hash")
	}
}

func TestStatusString(t *testing.T) {
	if vm.StatusOK.String() != "ok" || vm.StatusCrash.String() != "crash" || vm.StatusTimeout.String() != "timeout" {
		t.Error("status names wrong")
	}
}
