// Package core is the public facade of the reproduction: it wires the
// MiniC frontend, the Ball-Larus path instrumentation, the AFL++-like
// fuzzer, and the exploration-biasing strategies into a small API.
//
// Typical use:
//
//	t, err := core.Compile(src)
//	out, err := t.Fuzz(core.Campaign{Fuzzer: "cull", Budget: 200000})
//
// or, for the standalone path-profiling machinery of Figure 1:
//
//	prof, err := t.PathProfiler()
//	prof.Profile("main", input, vm.DefaultLimits())
package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/balllarus"
	"repro/internal/cfg"
	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/strategy"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Target is a compiled program under test.
type Target struct {
	// Prog is the lowered program.
	Prog *cfg.Program
	// Entry is the fuzzing entry point ("main").
	Entry string
}

// Compile parses, checks, and lowers MiniC source.
func Compile(src string) (*Target, error) {
	prog, err := cfg.Compile(src)
	if err != nil {
		return nil, err
	}
	t := &Target{Prog: prog, Entry: "main"}
	if prog.Func(t.Entry) == nil {
		return nil, fmt.Errorf("core: program has no %q function", t.Entry)
	}
	return t, nil
}

// FromProgram wraps an already-lowered program.
func FromProgram(prog *cfg.Program) *Target {
	return &Target{Prog: prog, Entry: "main"}
}

// Campaign configures a fuzzing campaign against a target.
type Campaign struct {
	// Fuzzer names the configuration: path, pcguard, cull, cull_r, opp,
	// pathafl, or afl (default path).
	Fuzzer strategy.Name
	// Budget is the execution budget (default 100000).
	Budget int64
	// RoundBudget overrides the culling round length (default
	// Budget/8).
	RoundBudget int64
	// Seeds is the initial corpus (a built-in fallback seed is used if
	// empty).
	Seeds [][]byte
	// Seed is the RNG seed (default 1).
	Seed int64
	// MapSize is the coverage map size (default
	// coverage.DefaultMapSize).
	MapSize int
	// Limits bounds individual executions.
	Limits vm.Limits
	// KeepCrashInputs retains the first crashing input per unique crash,
	// so callers can save or replay them.
	KeepCrashInputs bool
	// Engine selects the execution engine (fuzz.EngineAuto by default:
	// the compiled bytecode engine with interpreter fallback).
	Engine fuzz.Engine
	// Instr tunes instrumentation construction (analysis strictness,
	// optimizer toggle, mixing modes).
	Instr instrument.Config
	// ReachBoost enables the static crash-site reachability term in
	// the power schedule.
	ReachBoost bool
	// AnalysisGuide enables analysis-guided fuzzing (interprocedural
	// input-dependency facts steering mutation, scheduling, cmplog,
	// and CGT elision; see fuzz.Options.AnalysisGuide).
	AnalysisGuide bool
	// Status, when non-nil, receives periodic one-line campaign status
	// (engine, execs/sec, queue, coverage).
	Status io.Writer
	// StatusPeriod is the wall-clock interval between status lines
	// (default 1s when Status is set).
	StatusPeriod time.Duration
	// StatusEvery is the execution-count fallback between status lines.
	StatusEvery int64
	// Telemetry, when non-nil, receives counter snapshots and stage
	// spans from the campaign (observation only).
	Telemetry *telemetry.Recorder
}

// Outcome re-exports the strategy outcome.
type Outcome = strategy.Outcome

// Fuzz runs one campaign and returns its outcome.
func (t *Target) Fuzz(c Campaign) (*Outcome, error) {
	if c.Fuzzer == "" {
		c.Fuzzer = strategy.Path
	}
	if c.Budget <= 0 {
		c.Budget = 100000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	cfgr := strategy.Config{
		Opts: fuzz.Options{
			Seed:            c.Seed,
			MapSize:         c.MapSize,
			Entry:           t.Entry,
			Limits:          c.Limits,
			KeepCrashInputs: c.KeepCrashInputs,
			Engine:          c.Engine,
			Instr:           c.Instr,
			ReachBoost:      c.ReachBoost,
			AnalysisGuide:   c.AnalysisGuide,
			Status:          c.Status,
			StatusPeriod:    c.StatusPeriod,
			StatusEvery:     c.StatusEvery,
			Telemetry:       c.Telemetry,
		},
		Budget:      c.Budget,
		RoundBudget: c.RoundBudget,
		Seeds:       c.Seeds,
	}
	return strategy.Run(c.Fuzzer, t.Prog, cfgr)
}

// PathProfiler builds the standalone Ball-Larus profiler for the
// target.
func (t *Target) PathProfiler() (*instrument.Profiler, error) {
	return instrument.NewProfiler(t.Prog)
}

// Execute runs one input uninstrumented and returns the VM result
// (crash reports included).
func (t *Target) Execute(input []byte) vm.Result {
	return vm.Run(t.Prog, t.Entry, input, vm.NullTracer{}, vm.DefaultLimits())
}

// PathStats summarises the Ball-Larus numbering of one function.
type PathStats struct {
	Func           string
	Blocks         int
	Edges          int
	BackEdges      int
	NumPaths       uint64
	ProbesNaive    int
	ProbesOptimal  int
	HashedFallback bool
}

// PathReport returns per-function path statistics for the target — the
// data behind the paper's Figure 1 walkthrough.
func (t *Target) PathReport() []PathStats {
	var out []PathStats
	for _, f := range t.Prog.Funcs {
		ps := PathStats{
			Func:      f.Name,
			Blocks:    len(f.Blocks),
			Edges:     len(f.Edges),
			BackEdges: f.NumBackEdges(),
		}
		if enc, err := balllarus.Encode(f); err != nil {
			ps.HashedFallback = true
		} else {
			ps.NumPaths = enc.NumPaths
			ps.ProbesNaive = enc.NaivePlan().Probes
			ps.ProbesOptimal = enc.OptimizedPlan().Probes
		}
		out = append(out, ps)
	}
	return out
}
