package interproc

import (
	"testing"

	"repro/internal/analysis"
)

func TestByteSetAddRangeMerging(t *testing.T) {
	var s ByteSet
	if !s.Empty() {
		t.Fatal("zero value should be empty")
	}
	s.AddRange(0, 3)
	s.AddRange(8, 8)
	s.AddRange(12, 15)
	if got := s.String(); got != "[0-3,8,12-15]" {
		t.Fatalf("String = %q", got)
	}
	// Adjacency merges: 4 touches [0,3].
	s.AddRange(4, 5)
	if got := s.String(); got != "[0-5,8,12-15]" {
		t.Fatalf("after adjacency merge: %q", got)
	}
	// Overlap across several ranges collapses them.
	s.AddRange(5, 13)
	if got := s.String(); got != "[0-15]" {
		t.Fatalf("after overlap merge: %q", got)
	}
	if s.Count() != 16 {
		t.Fatalf("Count = %d", s.Count())
	}
	for _, o := range []int64{0, 7, 15} {
		if !s.Contains(o) {
			t.Errorf("Contains(%d) = false", o)
		}
	}
	if s.Contains(16) || s.Contains(-1) {
		t.Error("contains out-of-set offsets")
	}
}

func TestByteSetAddRangeChangeReporting(t *testing.T) {
	var s ByteSet
	if !s.AddRange(2, 4) {
		t.Error("first add should report change")
	}
	if s.AddRange(3, 3) {
		t.Error("covered add should report no change")
	}
	if s.AddRange(10, 5) {
		t.Error("empty range should report no change")
	}
	if !s.AddRange(-3, 1) {
		t.Error("clamped add extending the set should report change")
	}
	if s.Contains(-1) {
		t.Error("negative offsets must be clamped away")
	}
}

func TestByteSetCoalescingIsSound(t *testing.T) {
	var s ByteSet
	// maxRanges+4 widely separated singletons force coalescing.
	var offs []int64
	for i := 0; i < maxRanges+4; i++ {
		o := int64(i * 100)
		offs = append(offs, o)
		s.AddRange(o, o)
	}
	if len(s.R) > maxRanges {
		t.Fatalf("cap not enforced: %d ranges", len(s.R))
	}
	for _, o := range offs {
		if !s.Contains(o) {
			t.Errorf("coalescing dropped offset %d", o)
		}
	}
}

func TestByteSetDegradesToAll(t *testing.T) {
	var s ByteSet
	s.AddRange(0, offsetCap+5)
	if !s.All {
		t.Fatal("huge range should degrade to All")
	}
	if s.Count() != -1 || s.String() != "*" || !s.Contains(1<<40) {
		t.Error("All behavior wrong")
	}
	if s.AddRange(1, 2) {
		t.Error("adding to All should be a no-op")
	}
}

func TestByteSetUnionWith(t *testing.T) {
	var a, b ByteSet
	a.AddRange(0, 2)
	b.AddRange(10, 12)
	if !a.UnionWith(&b) {
		t.Error("union adding offsets should report change")
	}
	if a.UnionWith(&b) {
		t.Error("repeated union should be stable")
	}
	all := ByteSet{All: true}
	if !a.UnionWith(&all) || !a.All {
		t.Error("union with All should become All")
	}
}

func TestFromInterval(t *testing.T) {
	if s := FromInterval(analysis.Interval{Lo: 1, Hi: 0}); !s.Empty() {
		t.Error("bottom interval should give empty set")
	}
	s := FromInterval(analysis.Interval{Lo: 3, Hi: 7})
	if s.String() != "[3-7]" {
		t.Errorf("FromInterval = %s", s.String())
	}
	if s = FromInterval(analysis.Interval{Lo: -10, Hi: 2}); s.String() != "[0-2]" {
		t.Errorf("negative lo not clamped: %s", s.String())
	}
}
