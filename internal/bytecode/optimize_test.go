package bytecode_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/instrument"
	"repro/internal/subjects"
	"repro/internal/vm"
)

// TestDifferentialOptOff pins the unoptimized lowering (the ablation
// baseline) to the reference interpreter: disabling the optimizer must
// not change any observable either.
func TestDifferentialOptOff(t *testing.T) {
	for _, name := range []string{"cflow", "jq", "sqlite3"} {
		sub := subjects.Get(name)
		if sub == nil {
			t.Fatalf("unknown subject %s", name)
		}
		prog := sub.MustProgram()
		rng := rand.New(rand.NewSource(23))
		inputs := subjectInputs(sub, rng, 25)
		for _, fb := range allFeedbacks {
			d := newDiffPair(t, prog, fb, instrument.Config{NoOpt: true}, 1<<16, vm.DefaultLimits())
			for _, in := range inputs {
				d.check(t, name+"/noopt/"+fb.String(), in)
			}
		}
	}
}

// TestStrictVerifyAllSubjects is the acceptance check for the strict
// analysis mode: compiling every subject under every feedback with the
// IR verifier gating each optimization pass and the bytecode structural
// verifier gating the lowering reports zero violations — and the
// strict-mode build still matches the reference interpreter on live
// inputs.
func TestStrictVerifyAllSubjects(t *testing.T) {
	strict := instrument.Config{Analysis: "strict"}
	for _, sub := range subjects.All() {
		prog, err := sub.Program()
		if err != nil {
			t.Fatal(err)
		}
		for _, fb := range allFeedbacks {
			// CompiledFor panics (via Compile) on any verifier violation.
			if _, ok := instrument.CompiledFor(fb, prog, strict); !ok {
				t.Fatalf("%s/%s: no bytecode lowering", sub.Name, fb)
			}
		}
	}
	// Differential spot check under strict mode.
	sub := subjects.Get("flvmeta")
	prog := sub.MustProgram()
	rng := rand.New(rand.NewSource(31))
	inputs := subjectInputs(sub, rng, 15)
	for _, fb := range allFeedbacks {
		d := newDiffPair(t, prog, fb, strict, 1<<16, vm.DefaultLimits())
		for _, in := range inputs {
			d.check(t, "strict/"+fb.String(), in)
		}
	}
}

// TestOptimizationShrinksCode checks the passes actually fire: a
// program with a statically decided branch compiles to strictly less
// code with the optimizer on, and real subjects never grow.
func TestOptimizationShrinksCode(t *testing.T) {
	src := `
func main(input) {
    var n = 10;
    var m = n - 10;
    var live = 0;
    if (m) {
        live = live + 1;
        out(1);
    }
    var dead = n * 3;
    dead = dead + 1;
    if (len(input) > 0) {
        live = input[0];
    }
    return live;
}
`
	prog, err := cfg.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	spec := bytecode.Spec{Kind: bytecode.ProbeEdge, Verify: true}
	plain, err := bytecode.CompileChecked(prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Opt = true
	opt, err := bytecode.CompileChecked(prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumInstrs() >= plain.NumInstrs() {
		t.Fatalf("optimizer did not shrink decided-branch program: opt=%d plain=%d",
			opt.NumInstrs(), plain.NumInstrs())
	}
	for _, sub := range subjects.All() {
		prog, err := sub.Program()
		if err != nil {
			t.Fatal(err)
		}
		plain, err := bytecode.CompileChecked(prog, bytecode.Spec{Kind: bytecode.ProbeEdge, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := bytecode.CompileChecked(prog, bytecode.Spec{Kind: bytecode.ProbeEdge, Opt: true, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		if opt.NumInstrs() > plain.NumInstrs() {
			t.Fatalf("%s: optimizer grew code: opt=%d plain=%d", sub.Name, opt.NumInstrs(), plain.NumInstrs())
		}
		// NumNops (the telemetry measure of DSE effectiveness) must never
		// exceed the slot count and must be monotone under optimization.
		if n := opt.NumNops(); n > opt.NumInstrs() || n < plain.NumNops() {
			t.Fatalf("%s: NumNops inconsistent: opt %d/%d instrs, plain %d",
				sub.Name, n, opt.NumInstrs(), plain.NumNops())
		}
	}
}

// TestVerifierCatchesBrokenPass proves the verifier gate works end to
// end: a deliberately broken optimization pass (injected through the
// test seam) fails compilation with a diagnostic naming the pass, the
// function, the block, and the violated invariant — instead of
// producing silently wrong code.
func TestVerifierCatchesBrokenPass(t *testing.T) {
	prog := subjects.Get("cflow").MustProgram()
	cases := []struct {
		name    string
		mutate  func(f *cfg.Func)
		wantAll []string
	}{
		{
			name: "jump-target-out-of-range",
			mutate: func(f *cfg.Func) {
				for b := range f.Blocks {
					if f.Blocks[b].Term.Kind == cfg.TermJmp {
						f.Blocks[b].Term.Then = len(f.Blocks) + 7
						return
					}
				}
			},
			wantAll: []string{`after pass "constfold"`, `func "main"`, "block b"},
		},
		{
			name: "use-before-assignment",
			mutate: func(f *cfg.Func) {
				bad := cfg.Instr{Op: cfg.OpMove, Dst: 0, A: f.FrameSize - 1}
				f.Blocks[0].Instrs = append([]cfg.Instr{bad}, f.Blocks[0].Instrs...)
			},
			wantAll: []string{`after pass "constfold"`, `func "main"`, "block b0"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bytecode.SetTestBreakPass(func(pass string, f *cfg.Func) {
				if pass == "constfold" && f.Name == "main" {
					tc.mutate(f)
				}
			})
			defer bytecode.SetTestBreakPass(nil)
			_, err := bytecode.CompileChecked(prog, bytecode.Spec{Kind: bytecode.ProbeEdge, Opt: true, Verify: true})
			if err == nil {
				t.Fatal("broken pass compiled without a verifier diagnostic")
			}
			for _, want := range tc.wantAll {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("diagnostic %q does not mention %q", err, want)
				}
			}
		})
	}

	// The gate is the verifier, not the lowering: the same
	// use-before-assignment corruption with Verify off compiles without
	// complaint (to silently wrong code — which is exactly why tests
	// run strict).
	bytecode.SetTestBreakPass(func(pass string, f *cfg.Func) {
		if pass == "constfold" && f.Name == "main" {
			bad := cfg.Instr{Op: cfg.OpMove, Dst: 0, A: f.FrameSize - 1}
			f.Blocks[0].Instrs = append([]cfg.Instr{bad}, f.Blocks[0].Instrs...)
		}
	})
	defer bytecode.SetTestBreakPass(nil)
	if _, err := bytecode.CompileChecked(prog, bytecode.Spec{Kind: bytecode.ProbeEdge, Opt: true}); err != nil {
		t.Fatalf("corruption rejected even with Verify off: %v", err)
	}
}
