package fleet_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/journal"
)

func openJournalT(t *testing.T, dir string) *journal.Writer {
	t.Helper()
	w, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestFleetJournalDisplayOnly: a journaled fleet must merge to the same
// canonical report as an unjournaled one — the shared writer sits on
// the supervisor and every worker, so this exercises the display-only
// invariant across all of them at once.
func TestFleetJournalDisplayOnly(t *testing.T) {
	clean := runFleet(t, t.TempDir(), fleetOpts(2))
	if clean.Interrupted {
		t.Fatal("clean fleet interrupted")
	}
	want := canonical(t, clean.Merged)

	dir := t.TempDir()
	w := openJournalT(t, dir)
	opts := fleetOpts(2)
	opts.Journal = w
	res := runFleet(t, dir, opts)
	if res.Interrupted {
		t.Fatal("journaled fleet interrupted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := canonical(t, res.Merged); !bytes.Equal(got, want) {
		t.Fatalf("journaled fleet differs from plain fleet (%d vs %d canonical bytes)", len(got), len(want))
	}
}

// TestFleetSharedJournalConcurrency is the multi-publisher stress for
// the shared writer: two workers plus the supervisor emit into one
// journal concurrently (run under -race), and the result must be a
// single gapless stream with every publisher represented. Mirrors the
// two-publisher shape of the telemetry fleet test.
func TestFleetSharedJournalConcurrency(t *testing.T) {
	dir := t.TempDir()
	w := openJournalT(t, dir)
	opts := fleetOpts(2)
	opts.Journal = w
	res := runFleet(t, dir, opts)
	if res.Interrupted {
		t.Fatal("fleet interrupted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	events, diag, err := journal.ReadDir(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !diag.OK() {
		t.Fatalf("shared journal not OK: errors=%v gaps=%v", diag.Errors, diag.Gaps)
	}
	counts := journal.KindCounts(events)
	// Each worker opens its own campaign stream, and each sync epoch is
	// journaled by the supervisor (3 epochs x 2 workers at this cadence).
	if counts[journal.KindStart] != 2 {
		t.Fatalf("want one start per worker, got %d", counts[journal.KindStart])
	}
	if counts[journal.KindFinish] != 2 {
		t.Fatalf("want one finish per worker, got %d", counts[journal.KindFinish])
	}
	if counts[journal.KindSync] == 0 {
		t.Fatal("no sync events journaled")
	}
	workers := map[int]bool{}
	for _, ev := range events {
		workers[ev.Worker] = true
		if ev.Kind == journal.KindSync && ev.Epoch == 0 {
			t.Fatalf("sync event without an epoch: %+v", ev)
		}
	}
	if !workers[0] || !workers[1] {
		t.Fatalf("journal missing a worker's events: %v", workers)
	}
}

// TestFleetJournalChaosForensics injects a panic and a wedge and checks
// the forensic record: recycle and wedge events on the stream,
// quarantine events for the poison findings, and a flight-recorder dump
// next to each quarantined input.
func TestFleetJournalChaosForensics(t *testing.T) {
	dir := t.TempDir()
	w := openJournalT(t, dir)
	opts := fleetOpts(2)
	opts.Journal = w
	opts.Watchdog = 250 * time.Millisecond
	opts.Chaos = func(worker, gen int, execs int64) fleet.ChaosAction {
		switch {
		case worker == 1 && gen == 0 && execs >= 3000:
			return fleet.ChaosPanic
		case worker == 0 && gen == 0 && execs >= 9000:
			return fleet.ChaosWedge
		}
		return fleet.ChaosNone
	}
	res := runFleet(t, dir, opts)
	if res.Interrupted {
		t.Fatal("chaos fleet interrupted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) == 0 {
		t.Fatal("chaos produced no quarantine findings")
	}

	events, diag, err := journal.ReadDir(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !diag.OK() {
		t.Fatalf("chaos journal not OK: errors=%v gaps=%v", diag.Errors, diag.Gaps)
	}
	counts := journal.KindCounts(events)
	if counts[journal.KindRecycle] == 0 {
		t.Fatalf("no recycle events after worker restarts: %v", counts)
	}
	if counts[journal.KindWedge] == 0 {
		t.Fatalf("no wedge event after watchdog fired: %v", counts)
	}
	if counts[journal.KindQuarantine] != len(res.Quarantined) {
		t.Fatalf("%d quarantine events for %d quarantined findings", counts[journal.KindQuarantine], len(res.Quarantined))
	}
	for _, p := range res.Quarantined {
		name := journal.SanitizeName(fmt.Sprintf("poison-w%d-%s", p.Worker, journal.SanitizeName(p.Msg)))
		dump := filepath.Join(dir, "journal", journal.FlightDir, name+".jsonl")
		if _, err := os.Stat(dump); err != nil {
			t.Errorf("quarantined finding (worker %d, %q) has no flight dump: %v", p.Worker, p.Msg, err)
		}
	}
}
