// Analysis-guided fuzzing (Options.AnalysisGuide): the campaign-side
// consumers of the interprocedural input-dependency facts computed by
// package analysis/interproc. Guided mode is strictly opt-in — with the
// option off none of this state exists and campaigns are byte-identical
// to previous behaviour. Four guidance channels, each degrading
// gracefully when its precondition is absent:
//
//   - Mutation focus: havoc's positional byte mutations are restricted
//     to the dependency byte ranges of the rarest frontier branches the
//     entry sits next to (an input-dependent branch with exactly one
//     explored side). Needs an exact-index feedback (edge, block,
//     pathafl) to invert map indices back to branches.
//   - Power schedule: entries adjacent to statically-input-dependent
//     but unexplored branch sides get up to twice the havoc budget, the
//     analysis generalization of Options.ReachBoost.
//   - Cmplog skip: observed comparisons whose (operator, operand
//     intervals) signature matches only input-independent static sites
//     are skipped — value substitution there is provably fruitless.
//     Works under every feedback.
//   - Dead path cells: under the path feedback, map cells only
//     infeasible path IDs can write are marked consumed from the start,
//     so the CGT engine elides their probes earlier.
//
// All guide state is derived (static facts + virgin map + queue), never
// checkpointed: restore recomputes it exactly as cycle starts do.
package fuzz

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/interproc"
	"repro/internal/cfg"
	"repro/internal/instrument"
	"repro/internal/lang"
	"repro/internal/vm"
)

// maxGuideBranches bounds how many frontier branches contribute byte
// ranges to one entry's mutation mask; the rarest win.
const maxGuideBranches = 4

// guideWarmCycles is how many full queue cycles run before the mutation
// mask engages. In the opening burst almost any mutation finds coverage,
// so spending havoc on the dependency bytes of hard frontier branches
// only slows the campaign down; once the queue has been cycled the easy
// coverage is gone and focusing pays. Cycle counts are part of Stats
// (checkpointed), so the gate is a pure function of campaign state and
// resume-deterministic like the rest of the guide.
const guideWarmCycles = 2

// guideBranch is one statically input-dependent conditional branch
// projected onto the coverage map.
type guideBranch struct {
	// thenIdx/elseIdx are the masked map cells of the branch's two
	// successor sides under the campaign's feedback.
	thenIdx, elseIdx uint32
	// bytes is the full-closure dependency byte set (empty = length-only
	// dependency; All = unbounded). Only bounded non-empty sets can
	// focus mutations, but every branch participates in the frontier
	// weights.
	bytes interproc.ByteSet
	// thenVirgin/elseVirgin are frozen at guide-update boundaries (cycle
	// starts, restore), like the CGT patch plan.
	thenVirgin, elseVirgin bool
}

// guideCmp is the matching signature of one static comparison site.
type guideCmp struct {
	op       lang.Kind
	aIv, bIv analysis.Interval
	dep      bool
}

// guideState carries a guided campaign's derived analysis state.
type guideState struct {
	facts    *interproc.Facts
	branches []guideBranch
	cmps     []guideCmp
	// deadCells are the statically-dead path-feedback map cells ORed
	// into the CGT consumed set at every replan.
	deadCells []uint32
	// w maps coverage-map indices to frontier weights (how many
	// input-dependent unexplored branch sides border an entry covering
	// that index); wMax normalizes the energy boost.
	w    []int
	wMax int
}

// newGuide builds the guide state for a campaign. Branch projection
// needs an exact (non-hashed) index feedback, mirroring reachWeights;
// other feedbacks keep the cmplog-skip and dead-cell channels only.
func newGuide(prog *cfg.Program, facts *interproc.Facts, fb instrument.Feedback, mapSize int, ic instrument.Config) *guideState {
	g := &guideState{
		facts:     facts,
		deadCells: instrument.DeadPathCells(fb, facts, ic, mapSize),
	}
	for fi, ff := range facts.Fns {
		if !facts.Reachable[fi] {
			continue
		}
		for i := range ff.Cmps {
			cs := &ff.Cmps[i]
			g.cmps = append(g.cmps, guideCmp{op: cs.Op, aIv: cs.AIv, bIv: cs.BIv, dep: cs.Dep})
		}
	}
	var edgeIndexed bool
	switch fb {
	case instrument.FeedbackEdge, instrument.FeedbackPathAFL:
		edgeIndexed = true
	case instrument.FeedbackBlock:
		edgeIndexed = false
	default:
		return g
	}
	mask := uint32(mapSize - 1)
	var base uint32
	for fi, f := range prog.Funcs {
		ff := facts.Fns[fi]
		if facts.Reachable[fi] {
			for i := range ff.Branches {
				bf := &ff.Branches[i]
				if !bf.Dep {
					continue
				}
				blk := &f.Blocks[bf.Block]
				var ti, ei uint32
				if edgeIndexed {
					if blk.EdgeThen < 0 || blk.EdgeElse < 0 {
						continue
					}
					ti, ei = base+uint32(blk.EdgeThen), base+uint32(blk.EdgeElse)
				} else {
					ti, ei = base+uint32(blk.Term.Then), base+uint32(blk.Term.Else)
				}
				g.branches = append(g.branches, guideBranch{
					thenIdx: ti & mask,
					elseIdx: ei & mask,
					bytes:   bf.Bytes,
				})
			}
		}
		if edgeIndexed {
			base += uint32(len(f.Edges))
		} else {
			base += uint32(len(f.Blocks))
		}
	}
	return g
}

// updateGuide refreshes the virgin-derived guide state. Like replanCGT
// it runs only at deterministic boundaries — cycle starts and restore —
// so guided decisions are a pure function of campaign state there.
func (f *Fuzzer) updateGuide() {
	g := f.guide
	if g == nil {
		return
	}
	if g.w == nil {
		g.w = make([]int, f.cov.Len())
	} else {
		for i := range g.w {
			g.w[i] = 0
		}
	}
	g.wMax = 0
	for i := range g.branches {
		gb := &g.branches[i]
		gb.thenVirgin = f.virgin.Untouched(gb.thenIdx)
		gb.elseVirgin = f.virgin.Untouched(gb.elseIdx)
		// A frontier branch has exactly one explored side; weight lands
		// on the explored cell, so entries covering it get boosted.
		if gb.thenVirgin != gb.elseVirgin {
			covered := gb.thenIdx
			if gb.thenVirgin {
				covered = gb.elseIdx
			}
			g.w[covered]++
			if g.w[covered] > g.wMax {
				g.wMax = g.w[covered]
			}
		}
	}
}

// covHas reports whether the sorted sparse coverage set holds idx.
func covHas(cov []uint32, idx uint32) bool {
	i := sort.Search(len(cov), func(i int) bool { return cov[i] >= idx })
	return i < len(cov) && cov[i] == idx
}

// guideMaskFor computes the mutation byte mask for one queue entry: the
// union of dependency byte ranges of the rarest frontier branches whose
// explored side the entry covers. Rarity is the count of queue entries
// covering that side, so attention rotates to thinly-covered frontiers.
// A nil result (no usable candidate, or an unbounded union) leaves
// mutations unrestricted.
func (f *Fuzzer) guideMaskFor(e *Entry) ([]interproc.ByteRange, int64) {
	g := f.guide
	if g == nil || len(g.branches) == 0 || f.stats.Cycles < guideWarmCycles {
		return nil, 0
	}
	type cand struct {
		rarity int
		order  int
	}
	var cands []cand
	for i := range g.branches {
		gb := &g.branches[i]
		if gb.thenVirgin == gb.elseVirgin {
			continue
		}
		if gb.bytes.All || gb.bytes.Empty() {
			continue
		}
		covered := gb.thenIdx
		if gb.thenVirgin {
			covered = gb.elseIdx
		}
		if !covHas(e.Cov, covered) {
			continue
		}
		cands = append(cands, cand{rarity: f.covCount[covered], order: i})
	}
	if len(cands) == 0 {
		return nil, 0
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rarity != cands[j].rarity {
			return cands[i].rarity < cands[j].rarity
		}
		return cands[i].order < cands[j].order
	})
	if len(cands) > maxGuideBranches {
		cands = cands[:maxGuideBranches]
	}
	var set interproc.ByteSet
	for _, c := range cands {
		set.UnionWith(&g.branches[c.order].bytes)
	}
	if set.All || set.Empty() {
		return nil, 0
	}
	total := set.Count()
	return set.R, total
}

// skipCmp decides whether an observed comparison is provably not worth
// input-to-state substitution: at least one static input-independent
// site matches its (operator, operand-interval) signature and no
// input-dependent site does. Ambiguity defaults to not skipping —
// soundness of the skip follows from dependency over-approximation.
func (g *guideState) skipCmp(obs vm.CmpObs) bool {
	matched := false
	for i := range g.cmps {
		c := &g.cmps[i]
		if c.op != obs.Op || !c.aIv.Contains(obs.A) || !c.bIv.Contains(obs.B) {
			continue
		}
		if c.dep {
			return false
		}
		matched = true
	}
	return matched
}

// noteCov accumulates the per-cell queue coverage counts behind the
// rarity ordering; called wherever entries join the queue (enqueue and
// restore).
func (f *Fuzzer) noteCov(e *Entry) {
	if f.covCount == nil {
		return
	}
	for _, idx := range e.Cov {
		f.covCount[idx]++
	}
}
