// Package evalharness runs the paper's evaluation end to end: multi-run
// campaigns for every ⟨subject, fuzzer⟩ pair, with renderers that
// regenerate each table and figure of the paper from the collected
// data. Budgets are execution counts (the deterministic analogue of the
// paper's 48-hour runs); campaigns are independent and run in parallel
// across a worker pool, while each individual campaign is fully
// deterministic given its seed.
package evalharness

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/campaign"
	cfg2 "repro/internal/cfg"
	"repro/internal/fleet"
	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/strategy"
	"repro/internal/subjects"
	"repro/internal/triage"
	"repro/internal/vm"
)

// Config parameterises a suite run.
type Config struct {
	// Subjects to evaluate (default: all 18).
	Subjects []string
	// Fuzzers to evaluate (default: all 7 configurations).
	Fuzzers []strategy.Name
	// Runs per pair (the paper uses 10).
	Runs int
	// Budget is the per-run execution budget (the 48-hour analogue).
	Budget int64
	// RoundBudget is the culling round length (default Budget/8, the
	// 6-hours-of-48 analogue).
	RoundBudget int64
	// MapSize overrides the coverage map size.
	MapSize int
	// BaseSeed seeds run r of every campaign with BaseSeed+r.
	BaseSeed int64
	// Workers caps parallelism (default NumCPU).
	Workers int
	// Progress, when non-nil, receives one line per finished campaign.
	Progress io.Writer
	// StateDir, when non-empty, makes the suite durable: every finished
	// campaign is persisted under StateDir/runs/, and a restarted suite
	// reloads finished runs instead of recomputing them. Saved runs from
	// a different configuration (budget, seed, map size) are ignored.
	StateDir string
	// FS is the filesystem used for durable state (default campaign.OSFS;
	// tests inject fault filesystems).
	FS campaign.FS
	// Engine selects the execution engine for every campaign
	// (fuzz.EngineAuto by default: bytecode with interpreter fallback).
	Engine fuzz.Engine
	// Instr tunes instrumentation construction for every campaign
	// (analysis strictness, optimizer toggle).
	Instr instrument.Config
	// FleetWorkers, when > 1, runs every single-phase configuration as a
	// supervised fleet of that many workers (Budget is then per worker);
	// round-based configurations fall back to their usual single-process
	// run. Results stay deterministic: fleet corpus sync is exec-count
	// scheduled.
	FleetWorkers int
	// FleetSyncEvery is the fleet corpus-sync cadence in per-worker
	// execs (default Budget/5; 0 keeps the default).
	FleetSyncEvery int64
}

func (c Config) withDefaults() Config {
	if len(c.Subjects) == 0 {
		c.Subjects = subjects.Names()
	}
	if len(c.Fuzzers) == 0 {
		c.Fuzzers = strategy.AllNames
	}
	if c.Runs <= 0 {
		c.Runs = 10
	}
	if c.Budget <= 0 {
		c.Budget = 100000
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.FS == nil {
		c.FS = campaign.OSFS{}
	}
	return c
}

// RunResult is one finished campaign.
type RunResult struct {
	Subject string
	Fuzzer  strategy.Name
	Run     int
	Report  *fuzz.Report
	// Phase1 is the edge phase of an opp run (nil otherwise).
	Phase1 *fuzz.Report
	Rounds int
	// EdgeSet is the exact edge coverage of the final queue (the
	// afl-showmap replay).
	EdgeSet triage.Set[uint32]
}

// SuiteResult aggregates a full evaluation.
type SuiteResult struct {
	Cfg Config
	// Results[subject][fuzzer] has Cfg.Runs entries.
	Results map[string]map[strategy.Name][]*RunResult
	// Provenance: the toolchain and host the suite ran on, and its
	// wall-clock duration (restored runs make this smaller than the sum
	// of run durations).
	GoVersion string
	Host      string
	// Engine names the execution engine every campaign in the suite ran
	// on (part of run provenance: engines are observationally identical,
	// but throughput numbers are not comparable across them).
	Engine  string
	Elapsed time.Duration
}

// Runs returns the runs for one pair (nil if absent).
func (s *SuiteResult) Runs(subject string, f strategy.Name) []*RunResult {
	m, ok := s.Results[subject]
	if !ok {
		return nil
	}
	return m[f]
}

// CumulativeBugs unions the ground-truth bug sets across runs.
func (s *SuiteResult) CumulativeBugs(subject string, f strategy.Name) triage.Set[string] {
	out := triage.NewSet[string]()
	for _, rr := range s.Runs(subject, f) {
		for k := range triage.BugSet(rr.Report) {
			out.Add(k)
		}
	}
	return out
}

// CumulativeCrashes unions stack-hash crash sets across runs.
func (s *SuiteResult) CumulativeCrashes(subject string, f strategy.Name) triage.Set[uint64] {
	out := triage.NewSet[uint64]()
	for _, rr := range s.Runs(subject, f) {
		for k := range triage.CrashSet(rr.Report) {
			out.Add(k)
		}
	}
	return out
}

// CumulativeEdges unions exact edge coverage across runs.
func (s *SuiteResult) CumulativeEdges(subject string, f strategy.Name) triage.Set[uint32] {
	out := triage.NewSet[uint32]()
	for _, rr := range s.Runs(subject, f) {
		for k := range rr.EdgeSet {
			out.Add(k)
		}
	}
	return out
}

// AllBugs unions every fuzzer's cumulative bugs on a subject.
func (s *SuiteResult) AllBugs(subject string) triage.Set[string] {
	out := triage.NewSet[string]()
	for _, f := range s.Cfg.Fuzzers {
		for k := range s.CumulativeBugs(subject, f) {
			out.Add(k)
		}
	}
	return out
}

// RunSuite executes the configured campaigns.
func RunSuite(cfg Config) (*SuiteResult, error) {
	cfg = cfg.withDefaults()
	suiteStart := time.Now()
	host, _ := os.Hostname()
	sr := &SuiteResult{
		Cfg:       cfg,
		Results:   make(map[string]map[strategy.Name][]*RunResult),
		GoVersion: runtime.Version(),
		Host:      host,
		Engine:    cfg.Engine.String(),
	}

	type job struct {
		subject string
		fuzzer  strategy.Name
		run     int
	}
	var jobs []job
	for _, sub := range cfg.Subjects {
		if subjects.Get(sub) == nil {
			return nil, fmt.Errorf("evalharness: unknown subject %q", sub)
		}
		sr.Results[sub] = make(map[strategy.Name][]*RunResult)
		for _, f := range cfg.Fuzzers {
			sr.Results[sub][f] = make([]*RunResult, cfg.Runs)
			for r := 0; r < cfg.Runs; r++ {
				jobs = append(jobs, job{subject: sub, fuzzer: f, run: r})
			}
		}
	}

	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		firstEr error
		ch      = make(chan job)
	)
	worker := func() {
		defer wg.Done()
		for j := range ch {
			var (
				rr     *RunResult
				err    error
				how    = "done"
				saveEr error
			)
			if cfg.StateDir != "" {
				rr = loadRun(cfg, j.subject, j.fuzzer, j.run)
			}
			if rr != nil {
				how = "restored"
			} else {
				rr, err = runOne(cfg, j.subject, j.fuzzer, j.run)
				if err == nil && cfg.StateDir != "" {
					// A failed save costs durability for this one run, not
					// the suite.
					saveEr = saveRun(cfg, rr)
					if saveEr == nil {
						saveEr = saveCurve(cfg, rr)
					}
					if saveEr == nil {
						saveEr = saveProvenance(cfg, rr)
					}
					if saveEr == nil {
						saveEr = saveCovReport(cfg, rr)
					}
				}
			}
			mu.Lock()
			if err != nil && firstEr == nil {
				firstEr = err
			}
			if err == nil {
				sr.Results[j.subject][j.fuzzer][j.run] = rr
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "%s %-10s %-8s run %d: %d bugs, %d crashes, queue %d\n",
						how, j.subject, j.fuzzer, j.run, len(rr.Report.Bugs), len(rr.Report.Crashes), rr.Report.QueueLen)
					if saveEr != nil {
						fmt.Fprintf(cfg.Progress, "warning: persisting %s/%s run %d: %v\n", j.subject, j.fuzzer, j.run, saveEr)
					}
				}
			}
			mu.Unlock()
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go worker()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	sr.Elapsed = time.Since(suiteStart)
	return sr, nil
}

func runOne(cfg Config, subject string, f strategy.Name, run int) (*RunResult, error) {
	sub := subjects.Get(subject)
	prog, err := sub.Program()
	if err != nil {
		return nil, err
	}
	sc := strategy.Config{
		Opts: fuzz.Options{
			Seed:    cfg.BaseSeed + int64(run)*7919,
			MapSize: cfg.MapSize,
			Limits:  vm.DefaultLimits(),
			Engine:  cfg.Engine,
			Instr:   cfg.Instr,
		},
		Budget:      cfg.Budget,
		RoundBudget: cfg.RoundBudget,
		Seeds:       sub.Seeds,
	}
	rr := &RunResult{
		Subject: subject,
		Fuzzer:  f,
		Run:     run,
		EdgeSet: triage.NewSet[uint32](),
	}
	if fb, profile, ok := strategy.SingleConfig(f); ok && cfg.FleetWorkers > 1 {
		rep, err := runFleet(cfg, prog, fb, profile, f, sc)
		if err != nil {
			return nil, fmt.Errorf("%s/%s run %d (fleet): %w", subject, f, run, err)
		}
		rr.Report = rep
		rr.Rounds = 1
	} else {
		out, err := strategy.Run(f, prog, sc)
		if err != nil {
			return nil, fmt.Errorf("%s/%s run %d: %w", subject, f, run, err)
		}
		rr.Report = out.Report
		rr.Phase1 = out.Phase1
		rr.Rounds = out.Rounds
	}
	for id := range fuzz.ShowMap(prog, rr.Report.Queue, "main", vm.DefaultLimits()) {
		rr.EdgeSet.Add(id)
	}
	return rr, nil
}

// runFleet executes one evaluation campaign as a supervised worker
// fleet in a throwaway state directory. Budget is per worker; the
// merged report (cross-worker dedup, concatenated corpus) stands in
// for the single-fuzzer report, and stays deterministic because fleet
// corpus sync is exec-count scheduled.
func runFleet(cfg Config, prog *cfg2.Program, fb instrument.Feedback, profile fuzz.Profile, f strategy.Name, sc strategy.Config) (*fuzz.Report, error) {
	dir, err := os.MkdirTemp("", "pafuzz-fleet-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	syncEvery := cfg.FleetSyncEvery
	if syncEvery <= 0 {
		syncEvery = cfg.Budget / 5
	}
	opts := sc.Opts
	opts.Feedback = fb
	opts.Profile = profile
	opts.Entry = "main"
	s := fleet.New(dir, fleet.Options{
		Workers:   cfg.FleetWorkers,
		SyncEvery: syncEvery,
		CkptEvery: cfg.Budget, // checkpoint zero plus the final one: enough for a throwaway dir
	})
	meta := campaign.Meta{Fuzzer: string(f), Seed: opts.Seed, Budget: cfg.Budget, MapSize: opts.MapSize, Entry: "main"}
	if err := s.Start(prog, opts, meta, sc.Seeds); err != nil {
		return nil, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	if res.Interrupted {
		return nil, fmt.Errorf("fleet run interrupted unexpectedly")
	}
	return res.Merged, nil
}
