// Fleet manifest: the sealed, atomically rewritten file that composes
// per-worker campaign checkpoints into one resumable fleet. It records
// the fleet shape (worker count, sync cadence, restart budget), the
// corpus-sync publication board, quarantined poison inputs, and
// worker lifecycle flags. Together with each worker's own checkpoint
// directory it is everything Attach needs to resume a fleet — including
// one killed in the middle of a corpus sync: publications are persisted
// before any barrier release, so a replaying worker either finds its
// publication already on the board (and reuses it) or deterministically
// re-creates the identical one.
package fleet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/campaign"
	"repro/internal/fuzz"
)

// ManifestName is the fleet manifest filename under the fleet state
// directory.
const ManifestName = "fleet.pafm"

// Pub is one corpus-sync publication: the queue entries worker Worker
// added between its previous sync point and its arrival at Epoch.
// Publications are immutable once persisted — a worker replaying after
// a restart re-derives the identical inputs, so consumers may import a
// publication at any time after it appears.
type Pub struct {
	Worker int
	Epoch  int
	Inputs [][]byte
	// QLen is the publisher's queue length after the sync completed
	// (publication plus imports applied) — the publisher's next
	// publication starts at this index. Zero until the sync completes;
	// rewritten (to the same value, by determinism) on replay.
	QLen int
}

// Manifest is the fleet-level durable state.
type Manifest struct {
	// Fleet shape; Attach validates resumes against these rather than
	// trusting flags to be re-specified consistently.
	Workers     int
	SyncEvery   int64
	MaxRestarts int
	// Meta is the base campaign identity (Seed is the fleet seed;
	// per-worker seeds are derived from it, see WorkerSeed).
	Meta campaign.Meta
	// Seeded[i] is worker i's queue length after seed calibration — the
	// starting publication index.
	Seeded []int
	// Pubs is the publication board, sorted by (Epoch, Worker).
	Pubs []Pub
	// Quarantine lists poison-input findings, canonically sorted.
	Quarantine []fuzz.PoisonRec
	// Lifecycle counters and flags.
	Restarts int
	Wedges   int
	Retired  []bool
	Done     []bool
}

// Encode serializes the manifest into a sealed, checksummed frame
// (campaign.Seal), so torn manifest writes are detected on load.
func (m *Manifest) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, err
	}
	return campaign.Seal(buf.Bytes()), nil
}

// DecodeManifest validates and decodes a sealed manifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	payload, err := campaign.Open(data)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return nil, fmt.Errorf("fleet: manifest payload undecodable: %w", err)
	}
	if m.Workers <= 0 || len(m.Seeded) != m.Workers {
		return nil, fmt.Errorf("fleet: manifest inconsistent: %d workers, %d seed records", m.Workers, len(m.Seeded))
	}
	return &m, nil
}

// LoadManifest reads the fleet manifest under dir. The error wraps
// campaign.ErrNoCheckpoint semantics loosely: a missing file simply
// means "not a fleet state directory".
func LoadManifest(fs campaign.FS, dir string) (*Manifest, error) {
	data, err := fs.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	return DecodeManifest(data)
}

// HasManifest reports whether dir holds a fleet manifest (used by
// pafuzz -resume to pick fleet vs single-campaign resume).
func HasManifest(fs campaign.FS, dir string) bool {
	_, err := fs.ReadFile(filepath.Join(dir, ManifestName))
	return err == nil
}

// sortPubs orders the publication board canonically.
func sortPubs(pubs []Pub) {
	sort.Slice(pubs, func(i, j int) bool {
		if pubs[i].Epoch != pubs[j].Epoch {
			return pubs[i].Epoch < pubs[j].Epoch
		}
		return pubs[i].Worker < pubs[j].Worker
	})
}

// board is the in-memory publication board. All access is under the
// supervisor mutex.
type board struct {
	pubs map[[2]int]*Pub // (worker, epoch) -> publication
}

func newBoard() *board { return &board{pubs: make(map[[2]int]*Pub)} }

func boardFromManifest(m *Manifest) *board {
	b := newBoard()
	for i := range m.Pubs {
		p := m.Pubs[i]
		b.pubs[[2]int{p.Worker, p.Epoch}] = &p
	}
	return b
}

func (b *board) get(worker, epoch int) *Pub {
	return b.pubs[[2]int{worker, epoch}]
}

func (b *board) add(worker, epoch int, inputs [][]byte) *Pub {
	p := &Pub{Worker: worker, Epoch: epoch, Inputs: inputs}
	b.pubs[[2]int{worker, epoch}] = p
	return p
}

// imports returns the inputs worker should import when releasing from
// the barrier at epoch hi, having last synced at epoch lo: every other
// worker's publications with epoch in (lo, hi], in deterministic
// (epoch, worker) order.
func (b *board) imports(worker, lo, hi int) [][]byte {
	var recs []*Pub
	for _, p := range b.pubs {
		if p.Worker != worker && p.Epoch > lo && p.Epoch <= hi {
			recs = append(recs, p)
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Epoch != recs[j].Epoch {
			return recs[i].Epoch < recs[j].Epoch
		}
		return recs[i].Worker < recs[j].Worker
	})
	var out [][]byte
	for _, p := range recs {
		out = append(out, p.Inputs...)
	}
	return out
}

// list flattens the board into the manifest's canonical order.
func (b *board) list() []Pub {
	out := make([]Pub, 0, len(b.pubs))
	for _, p := range b.pubs {
		out = append(out, *p)
	}
	sortPubs(out)
	return out
}
