package interproc

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/lang"
)

// BranchFact is the input-dependency verdict for one conditional
// branch (a TermBr block), under the full dependency closure: the
// condition's own data taint joined with the control context deciding
// whether the block executes at all.
type BranchFact struct {
	Block int
	Pos   lang.Pos
	// Dep / Bytes: may input influence this branch's outcome (including
	// whether it executes), and through which content bytes. Dep with
	// empty Bytes means length-only dependency.
	Dep   bool
	Bytes ByteSet
	// DataDep / DataBytes: the condition value's own taint, excluding
	// control context — what cmp-style mutation of the condition sees.
	DataDep   bool
	DataBytes ByteSet
	// CondIv is the condition's interval at the branch; a decided
	// interval (never zero, or always zero) means the intra-procedural
	// analysis already resolves the branch.
	CondIv analysis.Interval
}

// CmpSite is one comparison instruction (OpBin with a relational
// operator) in a reachable block, with the statically known operand
// intervals and a Dep flag: may mutation change either operand's
// VALUE — a content-byte dependency or a direct length dependency.
// Presence-only dependency (the comparison runs under input-dependent
// control but always sees the same values, e.g. a constant-bound loop
// counter behind a length guard) leaves Dep false: solving such a
// comparison by value substitution is provably fruitless, which is
// what the cmplog skip list exploits.
type CmpSite struct {
	Block, Instr int
	Op           lang.Kind
	AIv, BIv     analysis.Interval
	Dep          bool
	Pos          lang.Pos
}

// FnFacts collects the per-function results.
type FnFacts struct {
	Name string
	// Branches holds one fact per reachable conditional branch,
	// ascending by block index.
	Branches []BranchFact
	// Cmps holds one site per comparison in a reachable block, in
	// (block, instr) order.
	Cmps []CmpSite
	// Ball-Larus path facts. EncodeOK means the function's acyclic
	// paths are numberable; Walked means every path was abstractly
	// interpreted (NumPaths within simulateCap), making Infeasible
	// meaningful: ascending IDs proven impossible to record.
	EncodeOK   bool
	Walked     bool
	NumPaths   uint64
	Infeasible []uint64
	// Implications are the proven pairwise branch correlations.
	Implications []Implication

	branchIdx map[int]int
}

// Branch returns the fact for branch block b, or nil.
func (ff *FnFacts) Branch(b int) *BranchFact {
	if i, ok := ff.branchIdx[b]; ok {
		return &ff.Branches[i]
	}
	return nil
}

// Facts is the whole-program interprocedural analysis result.
type Facts struct {
	Prog  *cfg.Program
	Entry int
	CG    *CallGraph
	// Reachable[f] marks functions reachable from the entry along call
	// edges.
	Reachable []bool
	Fns       []*FnFacts
	// AllEnumerable means every function's acyclic paths are numberable
	// with NumPaths <= cellCap, the precondition for proving feedback
	// map cells dead (see CellEnumerable consumers in instrument).
	AllEnumerable bool
}

// CellCap is the exported path-count bound under which AllEnumerable
// holds; feedback-cell consumers enumerate up to this many IDs per
// function.
const CellCap = cellCap

// factsKey memoizes For per (program, entry) pair.
type factsKey struct {
	prog  *cfg.Program
	entry int
}

var factsCache sync.Map // factsKey -> *Facts

// For computes (or returns the cached) interprocedural facts for prog
// with the given entry function index. The result is immutable and
// safe for concurrent use.
func For(prog *cfg.Program, entry int) *Facts {
	key := factsKey{prog, entry}
	if v, ok := factsCache.Load(key); ok {
		return v.(*Facts)
	}
	f := compute(prog, entry)
	if v, loaded := factsCache.LoadOrStore(key, f); loaded {
		return v.(*Facts)
	}
	return f
}

// ForProgram is For with the conventional "main" entry (falling back
// to function 0 when absent).
func ForProgram(prog *cfg.Program) *Facts {
	entry := 0
	if i, ok := prog.ByName["main"]; ok {
		entry = i
	}
	return For(prog, entry)
}

func compute(prog *cfg.Program, entry int) *Facts {
	cg := NewCallGraph(prog)
	t := newTaint(prog, cg, entry)
	t.Solve()

	out := &Facts{
		Prog:          prog,
		Entry:         entry,
		CG:            cg,
		Reachable:     cg.ReachableFrom(entry),
		Fns:           make([]*FnFacts, len(prog.Funcs)),
		AllEnumerable: len(prog.Funcs) > 0,
	}
	for fi, f := range prog.Funcs {
		ff := &FnFacts{Name: f.Name, branchIdx: map[int]int{}}
		out.Fns[fi] = ff
		ii := t.ivs[fi]
		env := analysis.NewEnv(f.FrameSize)
		cur := make([]TV, f.FrameSize)
		for b := range f.Blocks {
			if !ii.Reached[b] {
				continue
			}
			blk := &f.Blocks[b]
			// Replay the converged transfer through the block to read
			// per-instruction taints and intervals (the solver is at its
			// fixpoint, so the replay's summary joins are no-ops).
			ctrl := t.ctrlLocal(fi, b)
			ctrl.joinWith(&t.ctrlIn[fi])
			ctrl.LenVal, ctrl.MayInput, ctrl.MayArr = false, false, false
			copy(cur, t.tin[fi][b])
			env.CopyFrom(&ii.In[b])
			faulted := false
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				if in.Op == cfg.OpBin && isCmpKind(in.Sub) {
					dep := cur[in.A].ContentDep() || cur[in.B].ContentDep() ||
						cur[in.A].LenVal || cur[in.B].LenVal
					ff.Cmps = append(ff.Cmps, CmpSite{
						Block: b, Instr: i,
						Op:  in.Sub,
						AIv: env.Val[in.A], BIv: env.Val[in.B],
						Dep: dep,
						Pos: in.Pos,
					})
				}
				if !t.stepTaint(fi, cur, &env, in, &ctrl) {
					faulted = true
					break
				}
			}
			if faulted || blk.Term.Kind != cfg.TermBr {
				continue
			}
			data := cur[blk.Term.Cond]
			full := data
			full.joinWith(&ctrl)
			ff.branchIdx[b] = len(ff.Branches)
			ff.Branches = append(ff.Branches, BranchFact{
				Block: b,
				Pos:   blk.Term.Pos,
				Dep:   full.Dep, Bytes: full.Bytes,
				DataDep: data.Dep, DataBytes: data.Bytes,
				CondIv: env.Val[blk.Term.Cond],
			})
		}
		pf := walkPaths(f, ii)
		ff.EncodeOK = pf.encodeOK
		ff.Walked = pf.walked
		ff.NumPaths = pf.numPaths
		ff.Infeasible = pf.infeasible
		ff.Implications = pf.impls
		sort.Slice(ff.Implications, func(i, j int) bool {
			a, b := ff.Implications[i], ff.Implications[j]
			if a.B1 != b.B1 {
				return a.B1 < b.B1
			}
			if a.D1 != b.D1 {
				return a.D1 && !b.D1
			}
			if a.B2 != b.B2 {
				return a.B2 < b.B2
			}
			return a.D2 && !b.D2
		})
		if !ff.EncodeOK || ff.NumPaths > cellCap {
			out.AllEnumerable = false
		}
	}
	return out
}

// GuideBytes returns the full-closure dependency byte set for branch
// block b of function fn, with ok=false when the block is not a known
// (reachable) conditional branch. An input-dependent branch with an
// empty, non-All set depends on input length only.
func (fs *Facts) GuideBytes(fn, b int) (ByteSet, bool) {
	if fn < 0 || fn >= len(fs.Fns) {
		return ByteSet{}, false
	}
	bf := fs.Fns[fn].Branch(b)
	if bf == nil {
		return ByteSet{}, false
	}
	if bf.Dep && bf.Bytes.Empty() {
		return bf.Bytes, true
	}
	return bf.Bytes, true
}

// CmpSkipRatio returns (input-independent comparison sites, total
// comparison sites) across reachable functions — the static cmplog
// skip potential surfaced by paprof.
func (fs *Facts) CmpSkipRatio() (indep, total int) {
	for fi, ff := range fs.Fns {
		if !fs.Reachable[fi] {
			continue
		}
		for i := range ff.Cmps {
			total++
			if !ff.Cmps[i].Dep {
				indep++
			}
		}
	}
	return indep, total
}

// NumInfeasible sums the proven-infeasible path IDs program-wide.
func (fs *Facts) NumInfeasible() int {
	n := 0
	for _, ff := range fs.Fns {
		n += len(ff.Infeasible)
	}
	return n
}

// NumImplications sums the proven branch correlations program-wide.
func (fs *Facts) NumImplications() int {
	n := 0
	for _, ff := range fs.Fns {
		n += len(ff.Implications)
	}
	return n
}

// Dump writes a deterministic human-readable rendering of the facts —
// the backing of paprof -facts and its golden test.
func (fs *Facts) Dump(w io.Writer) {
	indep, total := fs.CmpSkipRatio()
	fmt.Fprintf(w, "entry: %s\n", fs.Prog.Funcs[fs.Entry].Name)
	fmt.Fprintf(w, "functions: %d reachable: %d\n", len(fs.Prog.Funcs), countTrue(fs.Reachable))
	fmt.Fprintf(w, "cmp sites: %d input-independent: %d\n", total, indep)
	fmt.Fprintf(w, "infeasible paths: %d implications: %d all-enumerable: %v\n",
		fs.NumInfeasible(), fs.NumImplications(), fs.AllEnumerable)
	for fi, f := range fs.Prog.Funcs {
		ff := fs.Fns[fi]
		if len(ff.Branches) == 0 && len(ff.Cmps) == 0 && !ff.EncodeOK {
			continue
		}
		reach := "unreachable"
		if fs.Reachable[fi] {
			reach = "reachable"
		}
		paths := "paths: not-numberable"
		if ff.EncodeOK {
			paths = fmt.Sprintf("paths: %d", ff.NumPaths)
			if ff.Walked {
				paths += fmt.Sprintf(" infeasible: %d", len(ff.Infeasible))
			}
		}
		fmt.Fprintf(w, "\nfunc %s (%s, %s)\n", f.Name, reach, paths)
		for i := range ff.Branches {
			bf := &ff.Branches[i]
			dep := "indep"
			if bf.Dep {
				dep = "dep " + bf.Bytes.String()
				if bf.Bytes.Empty() {
					dep = "dep len-only"
				}
			}
			fmt.Fprintf(w, "  branch b%d @%d:%d %s\n", bf.Block, bf.Pos.Line, bf.Pos.Col, dep)
		}
		for i := range ff.Cmps {
			cs := &ff.Cmps[i]
			dep := "indep"
			if cs.Dep {
				dep = "dep"
			}
			fmt.Fprintf(w, "  cmp b%d#%d @%d:%d %v %s a=%s b=%s\n",
				cs.Block, cs.Instr, cs.Pos.Line, cs.Pos.Col, cs.Op, dep,
				ivString(cs.AIv), ivString(cs.BIv))
		}
		for _, im := range ff.Implications {
			fmt.Fprintf(w, "  implies b%d=%s -> b%d=%s (witness %d)\n",
				im.B1, dirString(im.D1), im.B2, dirString(im.D2), im.Witness)
		}
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func dirString(d bool) string {
	if d {
		return "then"
	}
	return "else"
}

func ivString(iv analysis.Interval) string {
	if iv.IsBottom() {
		return "bot"
	}
	if iv.Lo == math.MinInt64 && iv.Hi == math.MaxInt64 {
		return "top"
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}
