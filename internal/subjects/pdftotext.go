package subjects

import "repro/internal/vm"

// pdftotext models a PDF text extractor (the xpdf tool): object soup
// with dictionaries, streams, arrays, an xref table and a text renderer
// driven by font state. It is the bug-richest subject, as in the paper
// (cull found 18 pdftotext bugs, its largest win), with two
// path-dependent bugs among plainly reachable ones.
const pdftotextSrc = `
// pdftotext: PDF-ish object parser.
// Layout: "%P" then records: kind(1) ...
//   'o' num(1) type(1): object header; type: 'd' dict, 's' stream,
//       'a' array, 'f' font.
//   'x' n(1) offsets[n]: xref table.
//   't' len(1) bytes: text to render with current font state.
//   'u' num(1) gen(1): incremental update record.
//   'e': trailer.

func parse_dict(input, pos, st) {
    if (pos >= len(input)) { return pos; }
    var nkeys = input[pos];
    pos = pos + 1;
    var keys = alloc(8);
    var i = 0;
    while (i < nkeys && pos + 1 < len(input)) {
        keys[i] = input[pos]; // BUG pd-1: key count unchecked against 8 slots
        pos = pos + 2;
        i = i + 1;
    }
    return pos;
}

func parse_stream(input, pos, st) {
    if (pos >= len(input)) { return pos; }
    var slen = input[pos] - 16; // stored biased by 16
    var buf = alloc(slen); // BUG pd-2: bias makes short lengths negative
    var i = 0;
    while (i < slen && pos + 1 + i < len(input)) {
        buf[i] = input[pos + 1 + i];
        i = i + 1;
    }
    return pos + 1 + max(slen, 0);
}

func parse_array(input, pos, depth) {
    // Nested arrays: 'a' n items, where an item of 255 opens a nested
    // array. BUG pd-3: no depth limit.
    if (pos >= len(input)) { return pos; }
    var n = input[pos];
    pos = pos + 1;
    var i = 0;
    while (i < n && pos < len(input)) {
        if (input[pos] == 255) {
            pos = parse_array(input, pos + 1, depth + 1);
        } else {
            pos = pos + 1;
        }
        i = i + 1;
    }
    return pos;
}

func parse_font(input, pos, st) {
    if (pos + 2 > len(input)) { return pos; }
    var ftype = input[pos];
    var flags = input[pos + 1];
    if (ftype == 1 && (flags & 8) != 0) {
        // BUG pd-4 (setup): Type1 fonts with the symbolic flag keep the
        // raw class byte; every other path clamps to 0..3.
        st[0] = flags >> 4;
    } else {
        st[0] = min(flags >> 4, 3);
    }
    return pos + 2;
}

func render_text(input, pos, n, st) {
    var widths = alloc(16);
    var total = 0;
    var i = 0;
    while (i < n && pos + i < len(input)) {
        var c = input[pos + i];
        var w = widths[st[0] * 4 + (c & 3)]; // BUG pd-4 (trigger): class > 3 via Type1 path
        total = total + w + c;
        i = i + 1;
    }
    out(total);
    return pos + n;
}

func parse_xref(input, pos, st) {
    if (pos >= len(input)) { return pos; }
    var n = input[pos];
    pos = pos + 1;
    var i = 0;
    while (i < n) {
        var off = input[pos + i]; // BUG pd-5: entry count unchecked against input
        st[2] = st[2] + off;
        i = i + 1;
    }
    return pos + n;
}

func apply_update(input, pos, st, gens) {
    if (pos + 2 > len(input)) { return pos; }
    var num = input[pos];
    var gen = input[pos + 1];
    if (gen > 0) {
        // BUG pd-6 (creep): each incremental update appends to the
        // generation journal without bounds.
        gens[st[1]] = num;
        st[1] = st[1] + 1;
    }
    return pos + 2;
}

func page_scale(input, pos) {
    if (pos + 2 > len(input)) { return 0; }
    var w = input[pos];
    var h = input[pos + 1];
    return (w * 72) / h; // BUG pd-7: zero media-box height
}

func main(input) {
    if (len(input) < 3) { return 1; }
    if (input[0] != '%' || input[1] != 'P') { return 1; }
    var st = alloc(3);
    var gens = alloc(12);
    var pos = 2;
    var objects = 0;
    while (pos < len(input)) {
        var k = input[pos];
        pos = pos + 1;
        if (k == 'o') {
            if (pos + 2 > len(input)) { return objects; }
            var typ = input[pos + 1];
            pos = pos + 2;
            if (typ == 'd') {
                pos = parse_dict(input, pos, st);
            } else if (typ == 's') {
                pos = parse_stream(input, pos, st);
            } else if (typ == 'a') {
                pos = parse_array(input, pos, 0);
            } else if (typ == 'f') {
                pos = parse_font(input, pos, st);
            }
            objects = objects + 1;
        } else if (k == 't') {
            if (pos < len(input)) {
                var n = input[pos];
                pos = render_text(input, pos + 1, n, st);
            }
        } else if (k == 'x') {
            pos = parse_xref(input, pos, st);
        } else if (k == 'u') {
            pos = apply_update(input, pos, st, gens);
        } else if (k == 'm') {
            out(page_scale(input, pos));
            pos = pos + 2;
        } else if (k == 'e') {
            if (objects == 0) {
                abort(); // BUG pd-8: trailer before any object
            }
            return objects;
        }
    }
    return objects;
}
`

func init() {
	// pd-3 witness: nested arrays, each 255 marker opening a level.
	pd3 := []byte{'%', 'P', 'o', 1, 'a', 3}
	for i := 0; i < 250; i++ {
		pd3 = append(pd3, 255, 3)
	}

	// pd-6 witness: 13 update records with nonzero generations.
	pd6 := []byte{'%', 'P'}
	for i := 0; i < 13; i++ {
		pd6 = append(pd6, 'u', byte(i), 2)
	}

	register(&Subject{
		Name:      "pdftotext",
		TypeLabel: "C/C++",
		Source:    pdftotextSrc,
		Seeds: [][]byte{
			{'%', 'P', 'o', 1, 'd', 2, 'K', 1, 'V', 2, 'o', 2, 'f', 1, 0x05, 't', 3, 'h', 'i', '!', 'e'},
			{'%', 'P', 'o', 1, 's', 20, 'd', 'a', 't', 'a', 'm', 4, 3, 'e'},
		},
		Bugs: []Bug{
			{
				ID:       "pd-1-dict-keys-oob",
				Witness:  append([]byte{'%', 'P', 'o', 1, 'd', 12}, make([]byte, 26)...),
				WantKind: vm.KindOOBWrite,
				WantFunc: "parse_dict",
				Comment:  "dictionary key count exceeds the fixed 8-slot key table",
			},
			{
				ID:       "pd-2-stream-neg-alloc",
				Witness:  []byte{'%', 'P', 'o', 1, 's', 2},
				WantKind: vm.KindBadAlloc,
				WantFunc: "parse_stream",
				Comment:  "biased stream length underflows to a negative allocation",
			},
			{
				ID:       "pd-3-array-recursion",
				Witness:  pd3,
				WantKind: vm.KindStackOverflow,
				WantFunc: "parse_array",
				Comment:  "nested array markers recurse without a depth limit",
			},
			{
				ID: "pd-4-font-class-oob",
				Witness: []byte{'%', 'P',
					'o', 1, 'f', 1, 0x78, // Type1 + symbolic flag (bit 3), class 7
					't', 2, 'a', 'b'},
				WantKind:      vm.KindOOBRead,
				WantFunc:      "render_text",
				PathDependent: true,
				Comment: "the Type1+symbolic font path skips the class clamp; text render " +
					"indexes widths[class*4] with class 7",
			},
			{
				ID:       "pd-5-xref-oob",
				Witness:  []byte{'%', 'P', 'x', 9, 1},
				WantKind: vm.KindOOBRead,
				WantFunc: "parse_xref",
				Comment:  "xref entry count is not checked against the input",
			},
			{
				ID:            "pd-6-gen-journal-creep",
				Witness:       pd6,
				WantKind:      vm.KindOOBWrite,
				WantFunc:      "apply_update",
				PathDependent: true,
				Comment: "each nonzero-generation update appends to a 12-entry journal " +
					"without bounds; 13 updates creep past it",
			},
			{
				ID:       "pd-7-media-div",
				Witness:  []byte{'%', 'P', 'm', 4, 0},
				WantKind: vm.KindDivByZero,
				WantFunc: "page_scale",
				Comment:  "zero media-box height divides the scale computation",
			},
			{
				ID:       "pd-8-early-trailer",
				Witness:  []byte{'%', 'P', 'e'},
				WantKind: vm.KindAbort,
				WantFunc: "main",
				Comment:  "trailer record before any object aborts",
			},
		},
	})
}
