package fuzz

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/instrument"
	"repro/internal/vm"
)

// fig1 is the paper's motivating example: the heap overflow at
// arr[len+j] triggers only when execution reaches the store via the
// "rare" block (len%4==0 && len>39) with an input starting with 'h'.
const fig1 = `
func foo(input, arr) {
    var j = 0;
    var l = len(input);
    if (l - 2 > 54 || l < 3) { return 0; }
    if (l % 4 == 0 && l > 39) {
        j = 3;
    } else {
        j = -2;
    }
    var c = input[0];
    if (c == 'h') {
        arr[l + j] = 7;
    } else {
        j = abs(j);
        arr[j] = 0;
    }
    return 0;
}

func main(input) {
    var arr = alloc(54);
    return foo(input, arr);
}
`

func compileT(t testing.TB, src string) *cfg.Program {
	t.Helper()
	p, err := cfg.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestFuzzerFindsSimpleCrash(t *testing.T) {
	// A shallow magic-byte bug any feedback finds quickly.
	p := compileT(t, `
func main(input) {
    if (len(input) < 2) { return 0; }
    if (input[0] == 'A' && input[1] == 'B') {
        abort();
    }
    return 0;
}`)
	f, err := New(p, Options{Feedback: instrument.FeedbackEdge, Seed: 1, MapSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	f.AddSeed([]byte("xx"))
	f.Fuzz(30000)
	rep := f.Report()
	if len(rep.Bugs) == 0 {
		t.Fatalf("edge fuzzer found no bugs in %d execs", rep.Stats.Execs)
	}
	t.Logf("bugs: %v after %d execs, queue %d", rep.BugKeys(), rep.Stats.Execs, rep.QueueLen)
}

func TestPathFeedbackFindsFig1Bug(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := compileT(t, fig1)
	seeds := [][]byte{[]byte("hello"), []byte("abcd")}
	const budget = 150000
	found := func(fb instrument.Feedback, seed int64) bool {
		f, err := New(p, Options{Feedback: fb, Seed: seed, MapSize: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range seeds {
			f.AddSeed(s)
		}
		f.Fuzz(budget)
		for k := range f.Report().Bugs {
			t.Logf("%v seed %d: %s", fb, seed, k)
			if containsOOB(k) {
				return true
			}
		}
		return false
	}
	pathHits := 0
	for seed := int64(1); seed <= 3; seed++ {
		if found(instrument.FeedbackPath, seed) {
			pathHits++
		}
	}
	if pathHits == 0 {
		t.Errorf("path feedback never triggered the Fig.1 overflow in 3 trials")
	}
	t.Logf("path feedback hit the overflow in %d/3 trials", pathHits)
}

func containsOOB(key string) bool {
	return len(key) > 0 && (contains(key, "out-of-bounds") || contains(key, "oob"))
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestDeterministicReplay(t *testing.T) {
	p := compileT(t, fig1)
	run := func() *Report {
		f, err := New(p, Options{Feedback: instrument.FeedbackPath, Seed: 42, MapSize: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		f.AddSeed([]byte("hello"))
		f.Fuzz(20000)
		return f.Report()
	}
	a, b := run(), run()
	if a.QueueLen != b.QueueLen || a.Stats.Execs != b.Stats.Execs || len(a.Bugs) != len(b.Bugs) {
		t.Errorf("campaign not deterministic: (%d,%d,%d) vs (%d,%d,%d)",
			a.QueueLen, a.Stats.Execs, len(a.Bugs), b.QueueLen, b.Stats.Execs, len(b.Bugs))
	}
}

func TestQueueGrowsMoreUnderPathFeedback(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	// Table I's phenomenon: path feedback retains more queue entries
	// than edge feedback. Acyclic paths truncate at back edges, so the
	// explosion driver is chains of branch diamonds (2^k paths for 2k
	// edges), the shape real parsers' header-validation code has.
	p := compileT(t, `
func main(input) {
    if (len(input) < 8) { return 0; }
    var s = 0;
    if (input[0] > 50) { s = s + 1; } else { s = s + 2; }
    if (input[1] > 50) { s = s * 2; } else { s = s + 3; }
    if (input[2] > 50) { s = s + 5; } else { s = s * 3; }
    if (input[3] > 50) { s = s ^ 9; } else { s = s + 7; }
    if (input[4] > 50) { s = s * 5; } else { s = s - 11; }
    if (input[5] > 50) { s = s + 13; } else { s = s ^ 21; }
    out(s);
    return s;
}`)
	qlen := func(fb instrument.Feedback) int {
		f, err := New(p, Options{Feedback: fb, Seed: 7, MapSize: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		f.AddSeed([]byte("abcDEF"))
		f.Fuzz(40000)
		return f.QueueLen()
	}
	edge, path := qlen(instrument.FeedbackEdge), qlen(instrument.FeedbackPath)
	if path <= edge {
		t.Errorf("queue sizes: path=%d edge=%d, want path > edge", path, edge)
	}
	t.Logf("queue sizes: edge=%d path=%d", edge, path)
}

func TestAddSeedBehaviour(t *testing.T) {
	p := compileT(t, `
func main(input) {
    if (len(input) > 0 && input[0] == 'X') { abort(); }
    return len(input);
}`)
	f, err := New(p, Options{Seed: 1, MapSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Crashing seeds are recorded but not queued (the opp strategy's
	// crash-strip requirement).
	f.AddSeed([]byte("Xcrash"))
	if f.QueueLen() != 0 {
		t.Error("crashing seed was queued")
	}
	rep := f.Report()
	if len(rep.Bugs) != 1 {
		t.Error("crashing seed's bug not recorded")
	}
	// A clean seed queues (the input-to-state stage may derive further
	// novel entries from it, e.g. a resized input, so the queue can
	// grow by more than one).
	f.AddSeed([]byte("ok"))
	after := f.QueueLen()
	if after < 1 {
		t.Fatalf("queue = %d", after)
	}
	queued := false
	for _, in := range f.QueueInputs() {
		if string(in) == "ok" {
			queued = true
		}
	}
	if !queued {
		t.Error("clean seed not in queue")
	}
	// A redundant seed (no novelty) is skipped.
	f.AddSeed([]byte("ok"))
	if f.QueueLen() != after {
		t.Error("duplicate seed queued")
	}
	// Over-long seeds are truncated to MaxInputLen.
	long := make([]byte, 4096)
	f.AddSeed(long)
	for _, in := range f.QueueInputs() {
		if len(in) > 512 {
			t.Errorf("queued input of %d bytes exceeds default cap", len(in))
		}
	}
}

func TestTimeoutsCounted(t *testing.T) {
	p := compileT(t, `
func main(input) {
    if (len(input) > 2 && input[0] == 'L') {
        while (1) { }
    }
    return 0;
}`)
	f, err := New(p, Options{Seed: 2, MapSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	f.AddSeed([]byte("Lxx")) // times out; recorded, not queued
	f.AddSeed([]byte("abc"))
	f.Fuzz(3000)
	rep := f.Report()
	if rep.Stats.Timeouts == 0 {
		t.Error("no timeouts counted")
	}
	if len(rep.Bugs) != 0 {
		t.Errorf("timeout misclassified as bug: %v", rep.BugKeys())
	}
}

func TestInitialDictionary(t *testing.T) {
	// A magic keyword that byte mutations essentially never assemble,
	// provided via Options.Dict, must be found quickly.
	p := compileT(t, `
func main(input) {
    if (len(input) < 8) { return 0; }
    if (input[0] == 'S' && input[1] == 'E' && input[2] == 'C' && input[3] == 'R'
        && input[4] == 'E' && input[5] == 'T' && input[6] == '!' && input[7] == '!') {
        abort();
    }
    return 1;
}`)
	f, err := New(p, Options{
		Seed:    3,
		MapSize: 1 << 10,
		Dict:    [][]byte{[]byte("SECRET!!")},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.AddSeed([]byte("aaaaaaaaaa"))
	f.Fuzz(30000)
	if len(f.Report().Bugs) == 0 {
		// cmplog would also find this; the dictionary should make it
		// nearly immediate.
		t.Error("dictionary token never reached the magic comparison")
	}
}

func TestCrashInputRetention(t *testing.T) {
	p := compileT(t, `
func main(input) {
    if (len(input) > 1 && input[0] == 'C') { abort(); }
    return 0;
}`)
	f, err := New(p, Options{Seed: 4, MapSize: 1 << 10, KeepCrashInputs: true})
	if err != nil {
		t.Fatal(err)
	}
	f.AddSeed([]byte("xy"))
	f.Fuzz(20000)
	rep := f.Report()
	if len(rep.Crashes) == 0 {
		t.Skip("crash not reached in budget")
	}
	for _, rec := range rep.Crashes {
		if len(rec.Input) == 0 {
			t.Error("crash input not retained")
		}
		res := vm.Run(p, "main", rec.Input, vm.NullTracer{}, vm.DefaultLimits())
		if res.Status != vm.StatusCrash {
			t.Error("retained crash input does not reproduce")
		}
	}
}

// TestEnergySchedule is a white-box check of the power schedule's
// ordering properties: deeper, faster, higher-coverage entries get more
// energy; everything stays within the clamp.
func TestEnergySchedule(t *testing.T) {
	p := compileT(t, `func main(input) { return len(input); }`)
	f, err := New(p, Options{Seed: 9, MapSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	f.AddSeed([]byte("abc"))
	base := &Entry{Steps: 100, Cov: make([]uint32, 10), Depth: 0, Data: []byte("x")}
	deep := &Entry{Steps: 100, Cov: make([]uint32, 10), Depth: 20, Data: []byte("x")}
	slow := &Entry{Steps: 100000, Cov: make([]uint32, 10), Depth: 0, Data: []byte("x")}
	f.sumSteps, f.sumCov = 100*int64(len(f.queue)+1), 10*int64(len(f.queue)+1)
	eBase, eDeep, eSlow := f.energy(base), f.energy(deep), f.energy(slow)
	if eDeep <= eBase {
		t.Errorf("depth bonus missing: base=%d deep=%d", eBase, eDeep)
	}
	if eSlow >= eBase {
		t.Errorf("slow entries not penalised: base=%d slow=%d", eBase, eSlow)
	}
	for _, e := range []int{eBase, eDeep, eSlow} {
		if e < 16 || e > 512 {
			t.Errorf("energy %d outside clamp [16,512]", e)
		}
	}
}

// TestSkipProbabilities is a statistical white-box check of AFL's
// queue-skipping constants.
func TestSkipProbabilities(t *testing.T) {
	p := compileT(t, `func main(input) { return len(input); }`)
	f, err := New(p, Options{Seed: 10, MapSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	count := func(e *Entry, pending int) int {
		f.pendingFavored = pending
		skips := 0
		for i := 0; i < 2000; i++ {
			if f.skip(e) {
				skips++
			}
		}
		return skips
	}
	favored := &Entry{Favored: true}
	if got := count(favored, 5); got != 0 {
		t.Errorf("favored entries skipped %d times", got)
	}
	// Non-favored with pending favorites: ~99%.
	nf := &Entry{}
	if got := count(nf, 5); got < 1900 {
		t.Errorf("pending-favored skip rate too low: %d/2000", got)
	}
	// Non-favored, already fuzzed, no pending: ~95%.
	nfOld := &Entry{WasFuzzed: true}
	if got := count(nfOld, 0); got < 1800 || got > 1980 {
		t.Errorf("old-entry skip rate off: %d/2000", got)
	}
	// Non-favored, fresh: ~75%.
	if got := count(nf, 0); got < 1350 || got > 1650 {
		t.Errorf("fresh-entry skip rate off: %d/2000", got)
	}
}

// TestReachBoostEnergy checks the static-reachability term of the
// power schedule: with ReachBoost on, an entry covering the dangerous
// function (many reachable crash sites past its blocks) earns more
// energy than one covering only safe code, and the boost never exceeds
// the documented 2x.
func TestReachBoostEnergy(t *testing.T) {
	p := compileT(t, `
func danger(input, arr) {
    var i = 0;
    while (i < len(input)) {
        arr[input[i]] = input[i] / (input[i] - 7);
        i = i + 1;
    }
    return arr[0];
}

func safe(x) {
    return x + 1;
}

func main(input) {
    if (len(input) < 1) { return safe(0); }
    if (input[0] == 'd') {
        var arr = alloc(8);
        return danger(input, arr);
    }
    return safe(1);
}`)
	f, err := New(p, Options{Feedback: instrument.FeedbackEdge, Seed: 3, MapSize: 1 << 12, ReachBoost: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.reachMax == 0 {
		t.Fatal("edge feedback should produce reach weights")
	}
	// Find a covered index with the maximum weight and one with zero.
	var hot, cold uint32
	foundHot, foundCold := false, false
	for i, w := range f.reachW {
		if w == f.reachMax && !foundHot {
			hot, foundHot = uint32(i), true
		}
		if w == 0 && !foundCold {
			cold, foundCold = uint32(i), true
		}
	}
	if !foundHot || !foundCold {
		t.Fatalf("expected both hot and cold indices (max=%d)", f.reachMax)
	}
	f.sumSteps, f.sumCov = 100, 1
	f.queue = append(f.queue, &Entry{})
	eHot := f.energy(&Entry{Steps: 100, Cov: []uint32{hot}, Data: []byte("x")})
	eCold := f.energy(&Entry{Steps: 100, Cov: []uint32{cold}, Data: []byte("x")})
	if eHot <= eCold {
		t.Errorf("reach boost missing: hot=%d cold=%d", eHot, eCold)
	}
	if eHot > 2*eCold {
		t.Errorf("reach boost exceeds 2x: hot=%d cold=%d", eHot, eCold)
	}

	// Hashed-index feedbacks cannot invert the map: the boost must be
	// silently disabled rather than wrong.
	fp, err := New(p, Options{Feedback: instrument.FeedbackPath, Seed: 3, MapSize: 1 << 12, ReachBoost: true})
	if err != nil {
		t.Fatal(err)
	}
	if fp.reachMax != 0 || fp.reachW != nil {
		t.Errorf("path feedback should not produce reach weights (max=%d)", fp.reachMax)
	}
}
