package covmap_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis/interproc"
	"repro/internal/campaign"
	"repro/internal/cfg"
	"repro/internal/coverage"
	"repro/internal/covmap"
	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/subjects"
)

// runCampaign runs a short deterministic campaign and returns the
// program plus the consumed virgin-map cells.
func runCampaign(t *testing.T, name string, fb instrument.Feedback, c instrument.Config, budget int64) (*cfg.Program, []coverage.VirginCell) {
	t.Helper()
	sub := subjects.Get(name)
	if sub == nil {
		t.Fatalf("unknown subject %q", name)
	}
	prog, err := sub.Program()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	f, err := fuzz.New(prog, fuzz.Options{Feedback: fb, Seed: 1, Instr: c})
	if err != nil {
		t.Fatalf("%s/%v: %v", name, fb, err)
	}
	for _, s := range sub.Seeds {
		f.AddSeed(s)
	}
	f.Fuzz(budget)
	return prog, f.VirginCells()
}

// TestEveryCampaignCellResolves is the cartography acceptance bar: for
// every subject and every feedback, every cell a real campaign's final
// virgin map has consumed must resolve to at least one program meaning
// (a source location or an explicitly-marked hash bucket). An
// unresolved cell would mean the offline reverse index disagrees with
// the runtime instrumentation's cell-index arithmetic.
func TestEveryCampaignCellResolves(t *testing.T) {
	feedbacks := []instrument.Feedback{
		instrument.FeedbackEdge,
		instrument.FeedbackPath,
		instrument.FeedbackBlock,
		instrument.FeedbackNGram,
		instrument.FeedbackPathAFL,
	}
	for _, name := range subjects.Names() {
		for _, fb := range feedbacks {
			prog, cells := runCampaign(t, name, fb, instrument.Config{}, 300)
			ix, err := covmap.New(prog, fb, instrument.Config{}, coverage.DefaultMapSize)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, fb, err)
			}
			obs := covmap.FromVirgin(cells)
			if len(obs) == 0 {
				t.Errorf("%s/%v: campaign consumed no cells", name, fb)
			}
			for _, o := range obs {
				if ms := ix.Resolve(o.Cell); len(ms) == 0 {
					t.Errorf("%s/%v: consumed cell %d unresolved", name, fb, o.Cell)
				}
			}
		}
	}
}

// TestDiscoveredPathsDecode checks, for both probe-placement variants,
// that every exact path meaning behind a cell a path-feedback campaign
// actually consumed decodes to a block sequence without error.
func TestDiscoveredPathsDecode(t *testing.T) {
	for _, noopt := range []bool{false, true} {
		c := instrument.Config{NoOpt: noopt}
		for _, name := range subjects.Names() {
			prog, cells := runCampaign(t, name, instrument.FeedbackPath, c, 200)
			ix, err := covmap.New(prog, instrument.FeedbackPath, c, coverage.DefaultMapSize)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			decoded := 0
			for _, o := range covmap.FromVirgin(cells) {
				for _, m := range ix.Resolve(o.Cell) {
					if m.Kind != covmap.KindPath {
						continue
					}
					steps, derr := ix.Decode(m)
					if derr != nil {
						t.Fatalf("%s noopt=%v: cell %d path %d: %v", name, noopt, o.Cell, m.PathID, derr)
					}
					if len(steps) == 0 {
						t.Fatalf("%s noopt=%v: cell %d path %d decoded empty", name, noopt, o.Cell, m.PathID)
					}
					decoded++
				}
			}
			if decoded == 0 {
				t.Errorf("%s noopt=%v: no exact path meanings decoded", name, noopt)
			}
		}
	}
}

// TestReportRendering drives the full report pipeline on one campaign
// and checks the artifacts: summary with the stable grep targets, a
// non-empty frontier with interproc byte attribution, annotated
// source, per-function path counts, and a well-formed HTML page.
func TestReportRendering(t *testing.T) {
	prog, cells := runCampaign(t, subjects.Names()[0], instrument.FeedbackPath, instrument.Config{}, 300)
	ix, err := covmap.New(prog, instrument.FeedbackPath, instrument.Config{}, coverage.DefaultMapSize)
	if err != nil {
		t.Fatal(err)
	}
	rep := ix.BuildReport(covmap.FromVirgin(cells), covmap.Options{
		Label: "test",
		Facts: interproc.ForProgram(prog),
	})
	var b strings.Builder
	rep.WriteText(&b)
	text := b.String()
	for _, want := range []string{"unresolved cells: 0", "frontier branches:", "annotated source", "paths seen"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	if len(rep.Unresolved) != 0 {
		t.Errorf("unresolved cells: %v", rep.Unresolved)
	}
	if len(rep.Frontier) == 0 {
		t.Error("short campaign left no frontier branches — implausible")
	}
	page := string(rep.WriteHTML("t"))
	if !strings.HasPrefix(page, "<!doctype html>") || !strings.HasSuffix(page, "</body></html>") {
		t.Errorf("HTML page not well-formed:\n%.120s", page)
	}
	if !strings.Contains(page, "frontier") {
		t.Error("HTML page missing frontier section")
	}
}

// TestCellLabelAndObs covers the small observation plumbing: duplicate
// virgin cells merge (fleet unions), FromCells dedupes, and CellLabel
// renders something human for resolvable cells and "unresolved"
// otherwise.
func TestCellLabelAndObs(t *testing.T) {
	obs := covmap.FromVirgin([]coverage.VirginCell{
		{Index: 7, Bits: 0xfe}, {Index: 7, Bits: 0xfd}, {Index: 3, Bits: 0x00},
	})
	if len(obs) != 2 || obs[0].Cell != 3 || obs[1].Cell != 7 || obs[1].Buckets != 0x03 {
		t.Fatalf("FromVirgin merge = %+v", obs)
	}
	if got := covmap.FromCells([]uint32{9, 2, 9}); len(got) != 2 || got[0].Cell != 2 {
		t.Fatalf("FromCells = %+v", got)
	}

	sub := subjects.Get(subjects.Names()[0])
	prog, err := sub.Program()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := covmap.New(prog, instrument.FeedbackEdge, instrument.Config{}, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	bases := instrument.EdgeBases(prog)
	if got := ix.CellLabel(bases[0]); got == "unresolved" || got == "" {
		t.Fatalf("CellLabel(first edge cell) = %q", got)
	}
	// Edge feedback leaves most of a 64k map unwritable; find one such
	// cell and check it reports honestly.
	found := false
	for c := uint32(0); c < 1<<16; c++ {
		if ix.Resolve(c) == nil {
			if got := ix.CellLabel(c); got != "unresolved" {
				t.Fatalf("CellLabel(unwritable %d) = %q", c, got)
			}
			found = true
			break
		}
	}
	if !found {
		t.Error("edge feedback claims every cell of a 64k map writable")
	}
}

// TestCartographyByteIdentity proves the display-only invariant end to
// end: a campaign whose cartography artifacts are generated (index
// built from the same live program, every consumed cell resolved, full
// report rendered) writes byte-identical checkpoints and an identical
// report to a campaign run without any of it.
func TestCartographyByteIdentity(t *testing.T) {
	sub := subjects.Get(subjects.Names()[0])
	prog1, err := sub.Program()
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := sub.Program()
	if err != nil {
		t.Fatal(err)
	}
	run := func(dir string, prog *cfg.Program, cartography bool) *fuzz.Report {
		opts := fuzz.Options{Feedback: instrument.FeedbackPath, Seed: 42}
		r := campaign.NewRunner(dir, campaign.Config{Interval: 100})
		if err := r.Start(prog, opts, campaign.Meta{Subject: sub.Name, Fuzzer: "path", Seed: 42, Budget: 300, Entry: "main"}, sub.Seeds); err != nil {
			t.Fatal(err)
		}
		var ix *covmap.Index
		if cartography {
			// Built from the live program while the campaign holds it —
			// the index must be a pure reader.
			ix, err = covmap.New(prog, instrument.FeedbackPath, instrument.Config{}, coverage.DefaultMapSize)
			if err != nil {
				t.Fatal(err)
			}
		}
		rep, interrupted, err := r.Run()
		if err != nil || interrupted {
			t.Fatalf("run: interrupted=%v err=%v", interrupted, err)
		}
		if cartography {
			obs := covmap.FromVirgin(r.Fuzzer().VirginCells())
			for _, o := range obs {
				_ = ix.CellLabel(o.Cell)
			}
			full := ix.BuildReport(obs, covmap.Options{Label: "x", Facts: interproc.ForProgram(prog)})
			var b strings.Builder
			full.WriteText(&b)
			_ = full.WriteHTML("x")
		}
		return rep
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	repA := run(dirA, prog1, false)
	repB := run(dirB, prog2, true)
	if !reflect.DeepEqual(repA, repB) {
		t.Error("reports differ between cartography-off and cartography-on runs")
	}
	ckptsA, _ := filepath.Glob(filepath.Join(dirA, "checkpoints", "*"))
	ckptsB, _ := filepath.Glob(filepath.Join(dirB, "checkpoints", "*"))
	if len(ckptsA) == 0 || len(ckptsA) != len(ckptsB) {
		t.Fatalf("checkpoint counts differ: %d vs %d", len(ckptsA), len(ckptsB))
	}
	for i := range ckptsA {
		if filepath.Base(ckptsA[i]) != filepath.Base(ckptsB[i]) {
			t.Fatalf("checkpoint names differ: %s vs %s", ckptsA[i], ckptsB[i])
		}
		a, err := os.ReadFile(ckptsA[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(ckptsB[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("checkpoint %s not byte-identical", filepath.Base(ckptsA[i]))
		}
	}
}
