package bytecode_test

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/coverage"
	"repro/internal/instrument"
	"repro/internal/vm"
)

// straightSrc exercises arithmetic, comparisons (cmp-observation
// recording), array loads, allocation, and output — every pooled
// resource in the machine — without loops or recursion.
const straightSrc = `
func main(input) {
    var n = len(input);
    var a = alloc(8);
    var x = 0;
    if (n > 2) {
        x = input[0] + input[1] * input[2];
    }
    a[0] = x;
    a[1] = x / 3;
    a[2] = x % 5;
    a[3] = min(x, 100);
    a[4] = max(x, -100);
    a[5] = abs(0 - x);
    out(a[0]);
    out(a[5]);
    return a[0] ^ a[1] ^ a[2] ^ a[3] ^ a[4] ^ a[5];
}
`

// TestZeroAllocSteadyState is the acceptance criterion for the pooled
// machine: after one warmup execution, running the straight-line
// program allocates nothing — for every supported feedback, map reset
// included.
func TestZeroAllocSteadyState(t *testing.T) {
	prog, err := cfg.Compile(straightSrc)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("zero-alloc probe")
	for _, fb := range allFeedbacks {
		cp, ok := instrument.CompiledFor(fb, prog, instrument.Config{})
		if !ok {
			t.Fatalf("no lowering for %v", fb)
		}
		m := coverage.NewMap(1 << 12)
		mach := bytecode.NewMachine(cp, m, vm.DefaultLimits())
		run := func() {
			m.Reset()
			r := mach.Run("main", in)
			if r.Status != vm.StatusOK {
				t.Fatalf("%v: status %v", fb, r.Status)
			}
		}
		run() // warmup: grows the pools to their high-water marks
		if avg := testing.AllocsPerRun(200, run); avg != 0 {
			t.Errorf("%v: %v allocs/exec in steady state, want 0", fb, avg)
		}
	}
}

// TestZeroAllocWithCalls extends the steady-state guarantee to call
// frames: recursion up to a fixed depth must also be allocation-free
// once the slot stack has grown.
func TestZeroAllocWithCalls(t *testing.T) {
	const src = `
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main(input) {
    var n = 10;
    if (len(input) > 0) { n = input[0] % 15; }
    return fib(abs(n));
}
`
	prog, err := cfg.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := instrument.CompiledFor(instrument.FeedbackPath, prog, instrument.Config{})
	if !ok {
		t.Fatal("no lowering for path feedback")
	}
	m := coverage.NewMap(1 << 12)
	mach := bytecode.NewMachine(cp, m, vm.DefaultLimits())
	in := []byte{14}
	run := func() {
		m.Reset()
		mach.Run("main", in)
	}
	run()
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Errorf("%v allocs/exec with recursion, want 0", avg)
	}
}
