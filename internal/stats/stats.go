// Package stats provides the small statistical helpers the evaluation
// tables need: medians, geometric means, and ratio formatting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// MedianInt returns the median of xs (the lower-middle element for even
// lengths, matching common fuzzing-paper practice of reporting an
// actual run). It returns 0 for empty input.
func MedianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int(nil), xs...)
	sort.Ints(s)
	return s[(len(s)-1)/2]
}

// MedianInt64 is MedianInt for int64.
func MedianInt64(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// MedianFloat returns the interpolated median.
func MedianFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// GeoMean returns the geometric mean of positive values; zero or
// negative entries are skipped (they would be undefined), and 0 is
// returned when nothing remains.
func GeoMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Ratio formats a ratio to two decimals, with "-" for non-positive
// denominators.
func Ratio(num, den float64) string {
	if den <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", num/den)
}

// Sum adds int64 values.
func Sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
