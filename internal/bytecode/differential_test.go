package bytecode_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/coverage"
	"repro/internal/instrument"
	"repro/internal/subjects"
	"repro/internal/vm"
)

// allFeedbacks are the bytecode-supported feedback mechanisms; the
// extension feedbacks (path2, selective) intentionally have no
// lowering and run on the reference interpreter.
var allFeedbacks = []instrument.Feedback{
	instrument.FeedbackEdge,
	instrument.FeedbackPath,
	instrument.FeedbackBlock,
	instrument.FeedbackNGram,
	instrument.FeedbackPathAFL,
}

// diffPair runs one input under the reference interpreter and the
// bytecode machine and asserts observational identity: status, return
// value, step count, output, comparison log, crash report, and the
// raw coverage map bytes.
type diffPair struct {
	prog *cfg.Program
	tr   vm.Tracer
	mach *bytecode.Machine
	m1   *coverage.Map
	m2   *coverage.Map
	lim  vm.Limits
}

func newDiffPair(t *testing.T, prog *cfg.Program, fb instrument.Feedback, c instrument.Config, mapSize int, lim vm.Limits) *diffPair {
	t.Helper()
	m1 := coverage.NewMap(mapSize)
	tr, err := instrument.New(fb, prog, m1, c)
	if err != nil {
		t.Fatalf("tracer: %v", err)
	}
	cp, ok := instrument.CompiledFor(fb, prog, c)
	if !ok {
		t.Fatalf("feedback %v has no bytecode lowering", fb)
	}
	m2 := coverage.NewMap(mapSize)
	return &diffPair{prog: prog, tr: tr, mach: bytecode.NewMachine(cp, m2, lim), m1: m1, m2: m2, lim: lim}
}

func (d *diffPair) check(t *testing.T, label string, input []byte) {
	t.Helper()
	d.m1.Reset()
	r1 := vm.Run(d.prog, "main", input, d.tr, d.lim)
	d.m2.Reset()
	r2 := d.mach.Run("main", input)

	if r1.Status != r2.Status {
		t.Fatalf("%s input %q: status interp=%v bytecode=%v", label, input, r1.Status, r2.Status)
	}
	if r1.Ret != r2.Ret {
		t.Fatalf("%s input %q: ret interp=%d bytecode=%d", label, input, r1.Ret, r2.Ret)
	}
	if r1.Steps != r2.Steps {
		t.Fatalf("%s input %q: steps interp=%d bytecode=%d", label, input, r1.Steps, r2.Steps)
	}
	if len(r1.Output) != len(r2.Output) {
		t.Fatalf("%s input %q: output len interp=%d bytecode=%d", label, input, len(r1.Output), len(r2.Output))
	}
	for i := range r1.Output {
		if r1.Output[i] != r2.Output[i] {
			t.Fatalf("%s input %q: output[%d] interp=%d bytecode=%d", label, input, i, r1.Output[i], r2.Output[i])
		}
	}
	if len(r1.Cmps) != len(r2.Cmps) {
		t.Fatalf("%s input %q: cmps len interp=%d bytecode=%d", label, input, len(r1.Cmps), len(r2.Cmps))
	}
	for i := range r1.Cmps {
		if r1.Cmps[i] != r2.Cmps[i] {
			t.Fatalf("%s input %q: cmps[%d] interp=%+v bytecode=%+v", label, input, i, r1.Cmps[i], r2.Cmps[i])
		}
	}
	if !reflect.DeepEqual(r1.Crash, r2.Crash) {
		t.Fatalf("%s input %q: crash mismatch\ninterp:   %+v\nbytecode: %+v", label, input, r1.Crash, r2.Crash)
	}
	if !bytes.Equal(d.m1.Bytes(), d.m2.Bytes()) {
		t.Fatalf("%s input %q: coverage maps differ", label, input)
	}
}

// subjectInputs builds the differential corpus for one subject: its
// seeds, every planted-bug witness (crash-path coverage), and
// deterministic random mutants of both.
func subjectInputs(sub *subjects.Subject, rng *rand.Rand, mutants int) [][]byte {
	var inputs [][]byte
	inputs = append(inputs, []byte{})
	inputs = append(inputs, sub.Seeds...)
	for _, bug := range sub.Bugs {
		inputs = append(inputs, bug.Witness)
	}
	base := append([][]byte(nil), inputs...)
	for i := 0; i < mutants; i++ {
		src := base[rng.Intn(len(base))]
		mut := append([]byte(nil), src...)
		switch rng.Intn(4) {
		case 0: // flip bytes
			for j := 0; j < 1+rng.Intn(4) && len(mut) > 0; j++ {
				mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			}
		case 1: // truncate
			if len(mut) > 1 {
				mut = mut[:rng.Intn(len(mut))]
			}
		case 2: // extend with random bytes
			for j := 0; j < 1+rng.Intn(16); j++ {
				mut = append(mut, byte(rng.Intn(256)))
			}
		case 3: // fully random
			mut = make([]byte, rng.Intn(64))
			rng.Read(mut)
		}
		inputs = append(inputs, mut)
	}
	return inputs
}

// TestDifferentialAllSubjects is the tentpole's correctness contract:
// every subject, under every supported feedback, across seeds, bug
// witnesses, and randomized mutants, produces byte-identical coverage
// maps, identical crash reports, and identical results under the
// reference interpreter and the bytecode engine.
func TestDifferentialAllSubjects(t *testing.T) {
	for _, sub := range subjects.All() {
		sub := sub
		t.Run(sub.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := sub.Program()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			inputs := subjectInputs(sub, rng, 40)
			for _, fb := range allFeedbacks {
				d := newDiffPair(t, prog, fb, instrument.Config{}, 1<<16, vm.DefaultLimits())
				for _, in := range inputs {
					d.check(t, fb.String(), in)
				}
			}
		})
	}
}

// TestDifferentialTightLimits exercises the resource-exhaustion crash
// paths (timeout, stack overflow, OOM, bad alloc, cmp-observation cap)
// under deliberately small limits.
func TestDifferentialTightLimits(t *testing.T) {
	tight := []vm.Limits{
		{MaxSteps: 100, MaxDepth: 64, MaxHeapCells: 1 << 22, MaxAlloc: 1 << 20, MaxCmpObs: 64},
		{MaxSteps: 1 << 20, MaxDepth: 3, MaxHeapCells: 1 << 22, MaxAlloc: 1 << 20, MaxCmpObs: 64},
		{MaxSteps: 1 << 20, MaxDepth: 64, MaxHeapCells: 70, MaxAlloc: 8, MaxCmpObs: 2},
		{MaxSteps: 333, MaxDepth: 5, MaxHeapCells: 256, MaxAlloc: 64, MaxCmpObs: 8},
	}
	for _, name := range []string{"cflow", "flvmeta", "lame"} {
		sub := subjects.Get(name)
		if sub == nil {
			t.Fatalf("unknown subject %s", name)
		}
		prog := sub.MustProgram()
		rng := rand.New(rand.NewSource(7))
		inputs := subjectInputs(sub, rng, 20)
		for li, lim := range tight {
			for _, fb := range allFeedbacks {
				d := newDiffPair(t, prog, fb, instrument.Config{}, 1<<14, lim)
				for _, in := range inputs {
					d.check(t, fmt.Sprintf("%s/lim%d/%s", name, li, fb), in)
				}
			}
		}
	}
}

// TestDifferentialConfigVariants pins the non-default instrumentation
// configurations: hash mixing, naive Ball-Larus placement, and
// alternative n-gram window lengths.
func TestDifferentialConfigVariants(t *testing.T) {
	configs := []instrument.Config{
		{Mix: instrument.MixHash},
		{NaivePlacement: true},
		{NGram: 2},
		{NGram: 8},
		{PathAFLMinBlocks: 2, PathAFLSegment: 4},
	}
	sub := subjects.Get("cflow")
	prog := sub.MustProgram()
	rng := rand.New(rand.NewSource(11))
	inputs := subjectInputs(sub, rng, 25)
	for ci, c := range configs {
		for _, fb := range allFeedbacks {
			d := newDiffPair(t, prog, fb, c, 1<<15, vm.DefaultLimits())
			for _, in := range inputs {
				d.check(t, fmt.Sprintf("cfg%d/%s", ci, fb), in)
			}
		}
	}
}

// hashModeSrc builds a function with more than 2^48 acyclic paths, so
// the path feedback's hash-mode fallback (including its back-edge
// behaviour) is exercised under both engines.
func hashModeSrc() string {
	var b strings.Builder
	b.WriteString("func wide(x) {\n    var acc = 0;\n")
	for i := 0; i < 52; i++ {
		fmt.Fprintf(&b, "    if (x & %d) { acc = acc + %d; } else { acc = acc - 1; }\n", 1<<(i%8), i+1)
	}
	b.WriteString(`
    var i = 0;
    while (i < 3) {
        if (x & 1) { acc = acc + i; }
        x = x / 2;
        i = i + 1;
    }
    return acc;
}
func main(input) {
    var x = 7;
    if (len(input) > 0) { x = input[0]; }
    if (len(input) > 1) { x = x * input[1]; }
    return wide(x);
}
`)
	return b.String()
}

func TestDifferentialHashModeFallback(t *testing.T) {
	prog, err := cfg.Compile(hashModeSrc())
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the wide function must actually be in hash mode.
	m := coverage.NewMap(1 << 12)
	pt, err := instrument.NewPathTracer(prog, m, instrument.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wide := prog.Func("wide")
	if wide == nil || !pt.HashMode(wide.ID) {
		t.Fatal("wide did not fall back to hash mode; widen the test program")
	}
	rng := rand.New(rand.NewSource(3))
	for _, mix := range []instrument.Config{{}, {Mix: instrument.MixHash}} {
		d := newDiffPair(t, prog, instrument.FeedbackPath, mix, 1<<12, vm.DefaultLimits())
		for i := 0; i < 50; i++ {
			in := make([]byte, rng.Intn(4))
			rng.Read(in)
			d.check(t, "hashmode", in)
		}
	}
}

// TestDifferentialInjectedFault pins the fault-injection panic: both
// engines must panic at the same step with the same message, so the
// campaign durability tests behave identically on either engine.
func TestDifferentialInjectedFault(t *testing.T) {
	sub := subjects.Get("cflow")
	prog := sub.MustProgram()
	lim := vm.DefaultLimits()
	lim.InjectPanicAtStep = 25
	capture := func(run func()) (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		run()
		return ""
	}
	in := sub.Seeds[0]
	m1 := coverage.NewMap(1 << 14)
	tr, err := instrument.New(instrument.FeedbackPath, prog, m1, instrument.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := instrument.CompiledFor(instrument.FeedbackPath, prog, instrument.Config{})
	if !ok {
		t.Fatal("no lowering for path feedback")
	}
	m2 := coverage.NewMap(1 << 14)
	mach := bytecode.NewMachine(cp, m2, lim)
	msg1 := capture(func() { vm.Run(prog, "main", in, tr, lim) })
	msg2 := capture(func() { mach.Run("main", in) })
	if msg1 == "" || msg1 != msg2 {
		t.Fatalf("injected fault mismatch: interp %q bytecode %q", msg1, msg2)
	}
}

// TestDifferentialMissingEntry pins the no-entry-function report.
func TestDifferentialMissingEntry(t *testing.T) {
	prog := subjects.Get("cflow").MustProgram()
	cp, _ := instrument.CompiledFor(instrument.FeedbackEdge, prog, instrument.Config{})
	m := coverage.NewMap(1 << 12)
	mach := bytecode.NewMachine(cp, m, vm.DefaultLimits())
	r1 := vm.Run(prog, "nosuch", nil, vm.NullTracer{}, vm.DefaultLimits())
	r2 := mach.Run("nosuch", nil)
	if r1.Status != r2.Status || !reflect.DeepEqual(r1.Crash, r2.Crash) {
		t.Fatalf("missing-entry mismatch: interp %+v bytecode %+v", r1.Crash, r2.Crash)
	}
}
