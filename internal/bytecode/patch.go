package bytecode

import (
	"fmt"

	"repro/internal/coverage"
)

// This file is the self-patching layer of the coverage-guided tracing
// (CGT) engine: a compiled program whose statically-indexed probes can
// be rewritten in place to non-probing fast variants once their
// coverage map cell is fully consumed.
//
// The elision rule follows coverage-preserving coverage-guided tracing
// (Nagy et al., "Same Coverage, Less Bloat"): a probe writes hit counts
// into one map cell; once every hit-count bucket bit of that cell has
// been observed (its virgin bits are all cleared), no future execution
// can produce novelty there, so the write — and for static sites the
// whole probe instruction — can be removed without changing any novelty
// decision the fuzzer will ever make.
//
// Three opcodes carry a static map cell (their imm field) and have a
// non-probing twin with the same operand layout:
//
//	opProbeAdd   -> opElide   (standalone probe: becomes a free nop)
//	opAddJmp     -> opJmp     (probe fused into a trampoline jump)
//	opStepAddJmp -> opStepJmp (probe fused into a block exit)
//
// On top of the opcode flips, Replan performs jump threading: every
// static branch or jump target is forwarded past elided code — opElide
// nops and elided trampolines (opAddJmp patched to a bare opJmp) — so
// that the hot conditional-branch path pays zero dispatches for an
// elided edge probe instead of still stepping through its trampoline.
// Threaded-over instructions have no effect at all (no probe, no step
// charge, no slot writes), so step counts, timeouts, injected-fault
// positions, and crash classifications stay bit-identical between the
// patched and pristine programs. Instruction positions never move and
// the pos table is shared untouched.
//
// Dynamic-index probes (Ball-Larus path records, PathAFL segment
// flushes, n-gram hashes) cannot be patched statically — their cell is
// computed at run time — so the machine handles them record-side: see
// Machine.SetElide.

// patchSite is one patchable probe: the instruction at pc writes map
// cell cell; slow is its pristine opcode, fast the non-probing twin.
type patchSite struct {
	pc   int32
	cell uint32
	slow uint8
	fast uint8
}

// Patchable pairs an immutable compiled Program with a privately cloned
// code array that Replan patches in place. The clone shares every cold
// side table (positions, string cells, arg slots, back values) with the
// pristine program; only the 24-byte instruction array is duplicated.
// A Patchable is single-threaded, like the Machine that executes it.
type Patchable struct {
	pristine *Program
	patched  *Program
	sites    []patchSite
	// plan[i] records whether site i was elided by the last Replan —
	// the reference Verify rebuilds expected code from.
	plan []bool
	// elidedJmp[pc] marks elided opAddJmp sites during a rebuild, so
	// the threading pass can tell an elided trampoline jump from a
	// pristine opJmp (which must keep executing exactly as compiled).
	elidedJmp []bool
	elided    int
	// mask is mapSize-1, the same index mask Map.Add applies.
	mask uint32
	// cellMask, when non-nil, holds the per-map-cell reachable-bucket
	// masks from the static hit-count bound analysis (CellHitBounds);
	// the planner then consumes a cell once all *reachable* buckets are
	// seen instead of all eight. Nil falls back to the baseline
	// full-consumption rule.
	cellMask []uint8
}

// NewPatchable builds a patchable clone of p for a coverage map of
// mapSize cells (a positive power of two — probe cells are masked
// exactly as Map.Add masks its index). The clone starts fully
// instrumented; Replan applies a patch plan.
func NewPatchable(p *Program, mapSize int) *Patchable {
	if mapSize <= 0 || mapSize&(mapSize-1) != 0 {
		panic("bytecode: patchable map size must be a positive power of two")
	}
	clone := *p
	clone.code = append([]instr(nil), p.code...)
	pp := &Patchable{
		pristine:  p,
		patched:   &clone,
		elidedJmp: make([]bool, len(p.code)),
		mask:      uint32(mapSize - 1),
	}
	mask := pp.mask
	for pc := range p.code {
		var fast uint8
		switch p.code[pc].op {
		case opProbeAdd:
			fast = opElide
		case opAddJmp:
			fast = opJmp
		case opStepAddJmp:
			fast = opStepJmp
		default:
			continue
		}
		pp.sites = append(pp.sites, patchSite{
			pc:   int32(pc),
			cell: uint32(p.code[pc].imm) & mask,
			slow: p.code[pc].op,
			fast: fast,
		})
	}
	pp.plan = make([]bool, len(pp.sites))
	return pp
}

// Program returns the patched program. The pointer is stable across
// Replan calls — patches land in the shared code array, so a Machine
// built over it sees every replan without rebuilding.
func (pp *Patchable) Program() *Program { return pp.patched }

// NumSites returns the number of statically patchable probe sites.
func (pp *Patchable) NumSites() int { return len(pp.sites) }

// Elided returns how many sites the last Replan patched out.
func (pp *Patchable) Elided() int { return pp.elided }

// SetHitBounds installs the per-raw-cell hit-count bounds of the
// static bound analysis (Program.CellHitBounds) and folds them into
// per-map-cell reachable-bucket masks: raw cells colliding under the
// map mask sum their bounds, since their counts add in one cell. A nil
// bounds map — the analysis declining dynamic-index feedbacks — keeps
// the baseline full-consumption rule. As a defense against an
// emission path the bound enumeration might miss, the masks are
// dropped entirely unless every patchable site's cell is accounted
// for.
func (pp *Patchable) SetHitBounds(bounds map[uint32]int) {
	pp.cellMask = nil
	if bounds == nil {
		return
	}
	n := int(pp.mask) + 1
	sum := make([]int, n)
	seen := make([]bool, n)
	for imm, b := range bounds {
		c := imm & pp.mask
		sum[c] = satAdd(sum[c], b)
		seen[c] = true
	}
	for i := range pp.sites {
		if !seen[pp.sites[i].cell] {
			return
		}
	}
	m := make([]uint8, n)
	for i := range m {
		if seen[i] {
			m[i] = reachableBuckets(sum[i])
		} else {
			// No static probe writes this cell; only full consumption
			// (impossible for a never-written cell) may consume it.
			m[i] = 0xff
		}
	}
	pp.cellMask = m
}

// CellMasks returns the per-map-cell reachable-bucket masks, or nil
// when the planner runs under the baseline full-consumption rule. The
// slice is the consumption criterion to pass to Virgin.ConsumedInto
// when deriving the consumed bitset Replan plans from.
func (pp *Patchable) CellMasks() []uint8 { return pp.cellMask }

// Replan rewrites every probe site whose map cell is set in consumed to
// its fast variant, restores every other site to its pristine opcode,
// and threads every static jump target past the elided code. The plan
// is a pure function of the consumed mask: replanning from the same
// mask always yields the same patched code, which is what makes the
// plan deterministic across checkpoint resume and fleet restarts (the
// mask is derived from the checkpointed virgin map). With an empty mask
// the patched code is byte-identical to the pristine code. Returns the
// number of elided sites.
func (pp *Patchable) Replan(consumed *coverage.Bitset) int {
	for i := range pp.sites {
		pp.plan[i] = consumed.Has(pp.sites[i].cell)
	}
	pp.elided = pp.rebuild(pp.patched.code)
	return pp.elided
}

// rebuild materialises the current plan into code (which must alias or
// match the pristine length): pristine copy, site opcode flips, then
// the jump-threading pass. Replan and Verify share it, so the expected
// code Verify checks against is by construction the code Replan emits.
func (pp *Patchable) rebuild(code []instr) int {
	copy(code, pp.pristine.code)
	clear(pp.elidedJmp)
	n := 0
	for i := range pp.sites {
		if !pp.plan[i] {
			continue
		}
		s := &pp.sites[i]
		code[s.pc].op = s.fast
		if s.slow == opAddJmp {
			pp.elidedJmp[s.pc] = true
		}
		n++
	}
	// Jump threading: forward every static target past elided code. The
	// scan covers dead slots left behind by superinstruction fusion too
	// — the fused compare-and-branch heads read their targets from the
	// trailing dead opStepBr slot, so those slots must thread as well.
	for pc := range code {
		in := &code[pc]
		switch in.op {
		case opJmp, opStepJmp, opAddJmp, opIncJmp, opStepAddJmp, opStepIncJmp:
			in.a = pp.thread(code, in.a)
		case opBackJmp, opStepBackJmp:
			in.dst = pp.thread(code, in.dst)
		case opBr, opStepBr:
			in.b = pp.thread(code, in.b)
			in.dst = pp.thread(code, in.dst)
		}
	}
	return n
}

// thread forwards target t past effect-free elided code: opElide nops
// (fall through to the next slot) and elided trampoline jumps (follow
// the jump). Pristine opJmp instructions are NOT threaded over, so with
// an empty plan threading is the identity. Every cycle in compiled code
// charges steps through an un-elidable instruction, so the walk always
// terminates; the hop cap is defensive.
func (pp *Patchable) thread(code []instr, t int32) int32 {
	for hops := 0; hops < len(code); hops++ {
		if t < 0 || int(t) >= len(code) {
			return t
		}
		switch in := code[t]; {
		case in.op == opElide:
			t++
		case in.op == opJmp && pp.elidedJmp[t]:
			t = in.a
		default:
			return t
		}
	}
	return t
}

// Verify checks the self-patching invariant: the patched code is
// exactly what rebuilding the last Replan's plan from the pristine
// code produces — site opcodes flipped per the plan, jump targets
// threaded per the plan, everything else untouched. It is the
// patched-program analogue of the compile-time structural verifier
// (which only ever sees pristine code).
func (pp *Patchable) Verify() error {
	if len(pp.patched.code) != len(pp.pristine.code) {
		return fmt.Errorf("bytecode: patched code length %d != pristine %d", len(pp.patched.code), len(pp.pristine.code))
	}
	expect := make([]instr, len(pp.pristine.code))
	pp.rebuild(expect)
	j := 0
	for pc := range pp.patched.code {
		var site *patchSite
		if j < len(pp.sites) && pp.sites[j].pc == int32(pc) {
			site = &pp.sites[j]
			j++
		}
		got, want := pp.patched.code[pc], expect[pc]
		if got == want {
			continue
		}
		if got.op != want.op {
			if site == nil {
				return fmt.Errorf("bytecode: patched instruction at pc %d is not a probe site", pc)
			}
			return fmt.Errorf("bytecode: probe site at pc %d patched to opcode %d, want %d", pc, got.op, want.op)
		}
		return fmt.Errorf("bytecode: instruction at pc %d deviates from the patch plan's operands", pc)
	}
	return nil
}
