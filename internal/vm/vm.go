// Package vm executes lowered MiniC programs under a memory sanitizer,
// reporting coverage events to a pluggable Tracer. It plays the role of
// the natively executed, ASAN-instrumented program under test in the
// paper's evaluation: deterministic, crash-reporting, and observable
// through exactly the hooks the instrumentation layer needs (function
// entry, edge traversal, return).
package vm

import (
	"math"

	"repro/internal/cfg"
	"repro/internal/lang"
)

// Tracer observes one execution. Implementations translate these events
// into coverage map updates; see package instrument.
type Tracer interface {
	// Begin is called once before the entry function starts.
	Begin()
	// EnterFunc is called when a frame for f is pushed.
	EnterFunc(f *cfg.Func)
	// Edge is called when CFG edge f.Edges[edge] is traversed.
	Edge(f *cfg.Func, edge int)
	// Ret is called when f returns from block b (before the frame pops).
	Ret(f *cfg.Func, b int)
}

// NullTracer ignores all events (uninstrumented execution).
type NullTracer struct{}

// Begin implements Tracer.
func (NullTracer) Begin() {}

// EnterFunc implements Tracer.
func (NullTracer) EnterFunc(*cfg.Func) {}

// Edge implements Tracer.
func (NullTracer) Edge(*cfg.Func, int) {}

// Ret implements Tracer.
func (NullTracer) Ret(*cfg.Func, int) {}

// Limits bounds one execution.
type Limits struct {
	// MaxSteps is the instruction budget (the timeout analogue).
	MaxSteps int64
	// MaxDepth is the call-depth budget; exceeding it is a
	// stack-overflow crash, as it would be natively.
	MaxDepth int
	// MaxHeapCells caps total live array cells; exceeding it is an OOM
	// crash.
	MaxHeapCells int64
	// MaxAlloc caps a single allocation; larger requests are
	// bad-allocation crashes.
	MaxAlloc int64
	// MaxCmpObs caps recorded comparison observations per execution
	// (the cmplog-lite channel).
	MaxCmpObs int
	// InjectPanicAtStep, when positive, makes the interpreter panic once
	// the step counter reaches it. It exists solely for the campaign
	// durability fault-injection tests, which use it to simulate an
	// interpreter defect mid-execution; the fuzz loop must quarantine
	// the panic instead of dying.
	InjectPanicAtStep int64
}

// DefaultLimits returns the limits used across the evaluation. The
// call-depth budget is deliberately modest: recursion bugs must sit
// within reach of the hit-count bucket gradient (buckets saturate at
// 128), the same reason native fuzzing setups shrink stack ulimits so
// runaway recursion faults promptly.
func DefaultLimits() Limits {
	return Limits{
		MaxSteps:     1 << 20,
		MaxDepth:     64,
		MaxHeapCells: 1 << 22,
		MaxAlloc:     1 << 20,
		MaxCmpObs:    64,
	}
}

// Status is the outcome of one execution.
type Status int

// Execution outcomes.
const (
	StatusOK Status = iota
	StatusCrash
	StatusTimeout
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusCrash:
		return "crash"
	case StatusTimeout:
		return "timeout"
	}
	return "unknown"
}

// CmpObs is one observed comparison (the cmplog-lite analogue of
// AFL++'s input-to-state correspondence channel).
type CmpObs struct {
	A, B  int64
	Op    lang.Kind
	Taken bool
}

// Result summarises one execution.
type Result struct {
	Status Status
	Ret    int64
	Crash  *Crash
	Steps  int64
	Output []int64
	Cmps   []CmpObs
}

type frameInfo struct {
	fn      *cfg.Func
	callPos lang.Pos
}

type exec struct {
	prog   *cfg.Program
	tr     Tracer
	lim    Limits
	heap   [][]int64
	cells  int64
	steps  int64
	output []int64
	cmps   []CmpObs
	frames []frameInfo
}

// Run executes prog starting at the named entry function. If the entry
// takes parameters, the first receives a handle to an array holding the
// input bytes and any further parameters receive 0.
func Run(prog *cfg.Program, entry string, input []byte, tr Tracer, lim Limits) Result {
	f := prog.Func(entry)
	if f == nil {
		return Result{Status: StatusCrash, Crash: &Crash{Kind: KindAbort, Msg: "no entry function " + entry, Func: entry}}
	}
	if tr == nil {
		tr = NullTracer{}
	}
	x := &exec{prog: prog, tr: tr, lim: lim}
	args := make([]int64, f.NParams)
	if f.NParams > 0 {
		in := make([]int64, len(input))
		for i, b := range input {
			in[i] = int64(b)
		}
		args[0] = x.newArray(in)
	}
	tr.Begin()
	ret, crash := x.call(f, args, f.Pos)
	res := Result{Ret: ret, Steps: x.steps, Output: x.output, Cmps: x.cmps}
	switch {
	case crash == nil:
		res.Status = StatusOK
	case crash.Kind == KindTimeout:
		res.Status = StatusTimeout
	default:
		res.Status = StatusCrash
		res.Crash = crash
	}
	return res
}

func (x *exec) newArray(cells []int64) int64 {
	x.heap = append(x.heap, cells)
	x.cells += int64(len(cells))
	return int64(len(x.heap))
}

// crash builds a report with the current call stack.
func (x *exec) crash(kind CrashKind, pos lang.Pos, msg string) *Crash {
	c := &Crash{Kind: kind, Msg: msg, Pos: pos}
	if n := len(x.frames); n > 0 {
		c.Func = x.frames[n-1].fn.Name
		c.Stack = append(c.Stack, Frame{Func: c.Func, Pos: pos})
		for i := n - 2; i >= 0; i-- {
			c.Stack = append(c.Stack, Frame{Func: x.frames[i].fn.Name, Pos: x.frames[i+1].callPos})
		}
	}
	return c
}

func (x *exec) arrayAt(h int64, pos lang.Pos, write bool) ([]int64, *Crash) {
	if h == 0 {
		return nil, x.crash(KindNullDeref, pos, "null array handle")
	}
	if h < 0 || h > int64(len(x.heap)) {
		return nil, x.crash(KindWildPointer, pos, "invalid array handle")
	}
	return x.heap[h-1], nil
}

func (x *exec) call(f *cfg.Func, args []int64, callPos lang.Pos) (int64, *Crash) {
	if len(x.frames) >= x.lim.MaxDepth {
		return 0, x.crash(KindStackOverflow, callPos, "call depth limit exceeded")
	}
	x.frames = append(x.frames, frameInfo{fn: f, callPos: callPos})
	defer func() { x.frames = x.frames[:len(x.frames)-1] }()
	x.tr.EnterFunc(f)

	slots := make([]int64, f.FrameSize)
	copy(slots, args)

	b := f.Entry()
	for {
		blk := &f.Blocks[b]
		for i := range blk.Instrs {
			if crash := x.instr(f, &blk.Instrs[i], slots); crash != nil {
				return 0, crash
			}
		}
		x.steps++
		if x.steps > x.lim.MaxSteps {
			return 0, x.crash(KindTimeout, blk.Term.Pos, "step budget exhausted")
		}
		if x.lim.InjectPanicAtStep > 0 && x.steps >= x.lim.InjectPanicAtStep {
			panic("vm: injected fault at step " + itoa(x.steps))
		}
		switch blk.Term.Kind {
		case TermJmpAlias:
			x.tr.Edge(f, blk.EdgeThen)
			b = blk.Term.Then
		case TermBrAlias:
			if slots[blk.Term.Cond] != 0 {
				x.tr.Edge(f, blk.EdgeThen)
				b = blk.Term.Then
			} else {
				x.tr.Edge(f, blk.EdgeElse)
				b = blk.Term.Else
			}
		case TermRetAlias:
			x.tr.Ret(f, b)
			if blk.Term.Val < 0 {
				return 0, nil
			}
			return slots[blk.Term.Val], nil
		}
	}
}

// Terminator kind aliases keep the switch above readable without
// importing the cfg constants at each use.
const (
	TermJmpAlias = cfg.TermJmp
	TermBrAlias  = cfg.TermBr
	TermRetAlias = cfg.TermRet
)

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (x *exec) instr(f *cfg.Func, in *cfg.Instr, slots []int64) *Crash {
	x.steps++
	if x.steps > x.lim.MaxSteps {
		return x.crash(KindTimeout, in.Pos, "step budget exhausted")
	}
	switch in.Op {
	case cfg.OpConst:
		slots[in.Dst] = in.Imm
	case cfg.OpStr:
		cells := make([]int64, len(in.Str))
		for i := 0; i < len(in.Str); i++ {
			cells[i] = int64(in.Str[i])
		}
		if x.cells+int64(len(cells)) > x.lim.MaxHeapCells {
			return x.crash(KindOOM, in.Pos, "heap limit exceeded")
		}
		slots[in.Dst] = x.newArray(cells)
	case cfg.OpMove:
		slots[in.Dst] = slots[in.A]
	case cfg.OpBin:
		v, crash := x.binop(in, slots[in.A], slots[in.B])
		if crash != nil {
			return crash
		}
		slots[in.Dst] = v
	case cfg.OpUn:
		a := slots[in.A]
		switch in.Sub {
		case lang.MINUS:
			slots[in.Dst] = -a
		case lang.NOT:
			slots[in.Dst] = boolToInt(a == 0)
		case lang.TILDE:
			slots[in.Dst] = ^a
		}
	case cfg.OpLoad:
		arr, crash := x.arrayAt(slots[in.A], in.Pos, false)
		if crash != nil {
			return crash
		}
		idx := slots[in.B]
		if idx < 0 || idx >= int64(len(arr)) {
			return x.crash(KindOOBRead, in.Pos, oobMsg(idx, len(arr)))
		}
		slots[in.Dst] = arr[idx]
	case cfg.OpStore:
		arr, crash := x.arrayAt(slots[in.A], in.Pos, true)
		if crash != nil {
			return crash
		}
		idx := slots[in.B]
		if idx < 0 || idx >= int64(len(arr)) {
			return x.crash(KindOOBWrite, in.Pos, oobMsg(idx, len(arr)))
		}
		arr[idx] = slots[in.C]
	case cfg.OpCall:
		callee := x.prog.Funcs[in.Callee]
		args := make([]int64, callee.NParams)
		for i := range in.Args {
			if i < len(args) {
				args[i] = slots[in.Args[i]]
			}
		}
		v, crash := x.call(callee, args, in.Pos)
		if crash != nil {
			return crash
		}
		slots[in.Dst] = v
	case cfg.OpBuiltin:
		return x.builtin(in, slots)
	}
	return nil
}

func oobMsg(idx int64, n int) string {
	return "index " + itoa(idx) + " out of bounds for length " + itoa(int64(n))
}

// itoa is a minimal int64 formatter; strconv would be fine but this
// keeps the hot path allocation-free for the common small values.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [21]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func (x *exec) binop(in *cfg.Instr, a, b int64) (int64, *Crash) {
	switch in.Sub {
	case lang.PLUS:
		return a + b, nil
	case lang.MINUS:
		return a - b, nil
	case lang.STAR:
		return a * b, nil
	case lang.SLASH:
		if b == 0 {
			return 0, x.crash(KindDivByZero, in.Pos, "division by zero")
		}
		if a == math.MinInt64 && b == -1 {
			return 0, x.crash(KindDivByZero, in.Pos, "integer division overflow")
		}
		return a / b, nil
	case lang.PCT:
		if b == 0 {
			return 0, x.crash(KindDivByZero, in.Pos, "modulo by zero")
		}
		if a == math.MinInt64 && b == -1 {
			return 0, x.crash(KindDivByZero, in.Pos, "integer modulo overflow")
		}
		return a % b, nil
	case lang.AMP:
		return a & b, nil
	case lang.PIPE:
		return a | b, nil
	case lang.CARET:
		return a ^ b, nil
	case lang.SHL:
		return a << (uint64(b) & 63), nil
	case lang.SHR:
		return a >> (uint64(b) & 63), nil
	case lang.EQ, lang.NE, lang.LT, lang.LE, lang.GT, lang.GE:
		var r bool
		switch in.Sub {
		case lang.EQ:
			r = a == b
		case lang.NE:
			r = a != b
		case lang.LT:
			r = a < b
		case lang.LE:
			r = a <= b
		case lang.GT:
			r = a > b
		case lang.GE:
			r = a >= b
		}
		if len(x.cmps) < x.lim.MaxCmpObs {
			x.cmps = append(x.cmps, CmpObs{A: a, B: b, Op: in.Sub, Taken: r})
		}
		return boolToInt(r), nil
	}
	return 0, x.crash(KindAbort, in.Pos, "unknown binary operator")
}

func (x *exec) builtin(in *cfg.Instr, slots []int64) *Crash {
	arg := func(i int) int64 { return slots[in.Args[i]] }
	switch in.Callee {
	case cfg.BLen:
		arr, crash := x.arrayAt(arg(0), in.Pos, false)
		if crash != nil {
			return crash
		}
		slots[in.Dst] = int64(len(arr))
	case cfg.BAlloc:
		n := arg(0)
		if n < 0 || n > x.lim.MaxAlloc {
			return x.crash(KindBadAlloc, in.Pos, "allocation of "+itoa(n)+" cells")
		}
		if x.cells+n > x.lim.MaxHeapCells {
			return x.crash(KindOOM, in.Pos, "heap limit exceeded")
		}
		slots[in.Dst] = x.newArray(make([]int64, n))
	case cfg.BAssert:
		if arg(0) == 0 {
			return x.crash(KindAssertFail, in.Pos, "assertion failed")
		}
		slots[in.Dst] = 0
	case cfg.BAbort:
		return x.crash(KindAbort, in.Pos, "abort called")
	case cfg.BAbs:
		v := arg(0)
		if v < 0 {
			v = -v
		}
		slots[in.Dst] = v
	case cfg.BMin:
		a, b := arg(0), arg(1)
		if b < a {
			a = b
		}
		slots[in.Dst] = a
	case cfg.BMax:
		a, b := arg(0), arg(1)
		if b > a {
			a = b
		}
		slots[in.Dst] = a
	case cfg.BOut:
		if len(x.output) < 4096 {
			x.output = append(x.output, arg(0))
		}
		slots[in.Dst] = 0
	}
	return nil
}
