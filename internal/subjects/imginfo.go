package subjects

import "repro/internal/vm"

// imginfo models a JPEG-2000-style codestream inspector (the jasper
// tool): SOC marker, SIZ segment with component precision/signedness,
// and tile headers. Bug im-3 is path-dependent: the sample-shift value
// is clamped on the unsigned decoding path but not on the signed one.
const imginfoSrc = `
// imginfo: JP2-style codestream inspector.
// Layout: FF 4F then boxes: type(1) blen(1) payload[blen].
// Box types: 'S' = SIZ (w h ncomp prec sgnd), 'T' = tile (idx), 'C' = comment.

func parse_siz(input, pos, blen) {
    if (blen < 5 || pos + 5 > len(input)) { return 0; }
    var w = input[pos];
    var h = input[pos + 1];
    var ncomp = input[pos + 2];
    var prec = input[pos + 3];
    var sgnd = input[pos + 4];
    var bits_total = w * h * prec / ncomp; // BUG im-1: zero components
    out(bits_total);
    if (prec > 8) {
        var shift = 0;
        if (sgnd == 1) {
            // BUG im-3 (setup): the signed path forgets the clamp.
            shift = prec - 8;
        } else {
            shift = min(prec - 8, 4);
        }
        var lut = alloc(17);
        lut[1 << shift] = 1; // BUG im-3 (trigger): shift > 4 only via the signed path
        out(lut[1 << shift]);
    }
    return w * h;
}

func parse_tile(input, pos, blen) {
    if (blen < 1 || pos >= len(input)) { return 0; }
    var tiles = alloc(4);
    tiles[0] = 10; tiles[1] = 20; tiles[2] = 30; tiles[3] = 40;
    var idx = input[pos];
    return tiles[idx]; // BUG im-2: tile index unchecked
}

func main(input) {
    if (len(input) < 4) { return 1; }
    if (input[0] != 255 || input[1] != 0x4F) { return 1; }
    var pos = 2;
    var boxes = 0;
    while (pos + 2 <= len(input)) {
        var t = input[pos];
        var blen = input[pos + 1];
        pos = pos + 2;
        if (t == 'S') {
            parse_siz(input, pos, blen);
        } else if (t == 'T') {
            parse_tile(input, pos, blen);
        }
        pos = pos + blen;
        boxes = boxes + 1;
    }
    return boxes;
}
`

func init() {
	register(&Subject{
		Name:      "imginfo",
		TypeLabel: "C",
		Source:    imginfoSrc,
		Seeds: [][]byte{
			{255, 0x4F, 'S', 5, 4, 4, 1, 8, 0},
			{255, 0x4F, 'T', 1, 2, 'C', 2, 7, 7},
		},
		Bugs: []Bug{
			{
				ID:       "im-1-ncomp-div-zero",
				Witness:  []byte{255, 0x4F, 'S', 5, 4, 4, 0, 8, 0},
				WantKind: vm.KindDivByZero,
				WantFunc: "parse_siz",
				Comment:  "zero-component SIZ divides the bit budget by zero",
			},
			{
				ID:       "im-2-tile-oob",
				Witness:  []byte{255, 0x4F, 'T', 1, 9},
				WantKind: vm.KindOOBRead,
				WantFunc: "parse_tile",
				Comment:  "tile index beyond the 4-entry tile table",
			},
			{
				ID:            "im-3-shift-oob",
				Witness:       []byte{255, 0x4F, 'S', 5, 4, 4, 1, 13, 1},
				WantKind:      vm.KindOOBWrite,
				WantFunc:      "parse_siz",
				PathDependent: true,
				Comment: "precision 13 with the signed flag takes the unclamped shift path; " +
					"1<<5 = 32 overflows the 17-entry LUT (the unsigned path clamps to 4)",
			},
		},
	})
}
