// Package fuzz implements the coverage-guided greybox fuzzer used
// throughout the reproduction: an AFL++-like engine (queue, virgin-bit
// novelty, favored corpus via greedy set cover, power schedule, havoc
// and splice mutators, and a cmplog-lite input-to-state stage) whose
// coverage feedback is pluggable — the single-component substitution
// the paper makes.
//
// Budgets are counted in executions rather than wall-clock time, the
// deterministic analogue of the paper's 48-hour campaigns, and all
// randomness flows from one seeded source so campaigns replay exactly.
package fuzz

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/interproc"
	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/coverage"
	"repro/internal/instrument"
	"repro/internal/journal"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Engine selects the execution engine for a campaign.
type Engine int

// Engines.
const (
	// EngineAuto (the default) runs the compiled bytecode engine when
	// the selected feedback has a lowering, and falls back to the
	// reference interpreter for the extension feedbacks that do not.
	EngineAuto Engine = iota
	// EngineBytecode requires the bytecode engine; New fails when the
	// feedback has no lowering.
	EngineBytecode
	// EngineInterp forces the reference CFG-walking interpreter.
	EngineInterp
	// EngineCGT runs the coverage-guided tracing engine: the compiled
	// bytecode engine plus self-patching probe elision with
	// coverage-preserving retrace (see cgt.go). Campaign results are
	// byte-identical to EngineBytecode; like it, New fails when the
	// feedback has no lowering.
	EngineCGT
)

// String names the engine selection.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineBytecode:
		return "bytecode"
	case EngineInterp:
		return "interp"
	case EngineCGT:
		return "cgt"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "bytecode":
		return EngineBytecode, nil
	case "interp", "interpreter":
		return EngineInterp, nil
	case "cgt":
		return EngineCGT, nil
	}
	return EngineAuto, fmt.Errorf("fuzz: unknown engine %q (want auto, bytecode, cgt, or interp)", s)
}

// Profile selects the base-fuzzer capability set.
type Profile int

// Profiles.
const (
	// ProfileAFLPlusPlus is the default: cmplog-lite, dictionaries,
	// wide interesting values, AFL++ skip probabilities.
	ProfileAFLPlusPlus Profile = iota
	// ProfileAFL models the older AFL 2.52b base PathAFL builds on: no
	// cmplog, no dictionary ops, more conservative energy.
	ProfileAFL
)

// Options configures a fuzzing campaign.
type Options struct {
	// Feedback selects the coverage feedback mechanism.
	Feedback instrument.Feedback
	// Instr tunes instrumentation construction.
	Instr instrument.Config
	// MapSize is the coverage map size (power of two);
	// coverage.DefaultMapSize when zero.
	MapSize int
	// Entry is the entry function name ("main" when empty).
	Entry string
	// Seed seeds the campaign's random source.
	Seed int64
	// Limits bounds each execution; vm.DefaultLimits() when zero.
	Limits vm.Limits
	// MaxInputLen caps generated inputs (default 512).
	MaxInputLen int
	// Profile selects AFL++ vs AFL behaviour.
	Profile Profile
	// Dict holds initial dictionary tokens.
	Dict [][]byte
	// HistorySamples is the number of (execs, queue-size) samples
	// recorded for the Figure 2 reproduction (default 64).
	HistorySamples int
	// KeepCrashInputs retains the first crashing input per unique
	// stack hash (default true via New).
	KeepCrashInputs bool
	// FaultInjector, when non-nil, is consulted before every execution
	// and simulates an interpreter panic when it returns true. It exists
	// for the campaign durability fault-injection tests; see also
	// vm.Limits.InjectPanicAtStep for panics injected mid-execution.
	FaultInjector func(execs int64, data []byte) bool
	// Engine selects the execution engine (EngineAuto by default: the
	// compiled bytecode engine with interpreter fallback).
	Engine Engine
	// AnalysisGuide enables analysis-guided fuzzing: interprocedural
	// input-dependency facts (package analysis/interproc) focus havoc's
	// byte mutations on the dependency ranges of rare frontier
	// branches, boost the power schedule toward input-dependent
	// unexplored branches (the analysis generalization of ReachBoost),
	// skip provably input-independent cmplog sites, and let the CGT
	// engine elide probes of statically-dead path cells. See guide.go.
	// Off by default; campaigns with it off are byte-identical to
	// previous behaviour.
	AnalysisGuide bool
	// ReachBoost enables the static crash-site reachability term in
	// the power schedule: entries whose coverage borders many
	// statically reachable crash sites get up to twice the havoc
	// budget (a PrescientFuzz-style prior). Only the exact-index
	// feedbacks (edge, block, pathafl's edge component) support the
	// map-index inversion; others silently skip the boost. The weights
	// are recomputed from the program on resume, so checkpoints are
	// unaffected.
	ReachBoost bool
	// Status, when non-nil, receives a periodic one-line campaign status
	// (engine, execs/sec, queue, coverage, crashes).
	Status io.Writer
	// StatusPeriod is the wall-clock interval between status lines
	// (default 1s when Status is set). Wall-clock pacing keeps slow or
	// tight-limit subjects from going silent; it is display-only and
	// never feeds back into campaign state.
	StatusPeriod time.Duration
	// StatusEvery is the exec-count fallback between status lines
	// (default 50000): a line is also emitted whenever this many
	// executions pass without one, so a stalled clock cannot silence
	// the campaign either.
	StatusEvery int64
	// Telemetry, when non-nil, receives counter snapshots and stage
	// spans. Publishing happens only at queue-entry boundaries (never
	// inside the exec loop) and is strictly observational: attaching a
	// recorder cannot change what the campaign does.
	Telemetry *telemetry.Recorder
	// Journal, when non-nil, receives structured campaign lifecycle
	// events (seed calibration, novelty, crashes, cycles, CGT replans).
	// Like Telemetry it is strictly observational: the emitted-event
	// counter advances whether or not a writer is attached, so
	// checkpoints — and therefore campaigns — are byte-identical with
	// journaling on or off.
	Journal *journal.Writer
	// JournalWorker and JournalGen tag emitted events with the fleet
	// worker id and attempt generation (both 0 for single campaigns).
	JournalWorker int
	JournalGen    int
	// JournalShared marks Journal as shared across fleet workers:
	// Restore then skips the resume tail-truncation (the supervisor
	// owns the stream; a worker restore must not rewrite other
	// workers' events).
	JournalShared bool
}

// Validate rejects misconfigured options before defaulting can mask
// them: negative sizes and budgets, a non-power-of-two map, dictionary
// tokens that can never fit the input cap, and out-of-range enum
// values. New calls it on the raw (pre-default) options, so a zero
// field still means "use the default" while a negative or contradictory
// one is an error instead of silent behaviour.
func (o Options) Validate() error {
	if o.MapSize < 0 {
		return fmt.Errorf("fuzz: MapSize %d is negative", o.MapSize)
	}
	if o.MapSize > 0 && o.MapSize&(o.MapSize-1) != 0 {
		return fmt.Errorf("fuzz: MapSize %d is not a power of two", o.MapSize)
	}
	if o.MaxInputLen < 0 {
		return fmt.Errorf("fuzz: MaxInputLen %d is negative", o.MaxInputLen)
	}
	if o.HistorySamples < 0 {
		return fmt.Errorf("fuzz: HistorySamples %d is negative", o.HistorySamples)
	}
	if o.StatusPeriod < 0 {
		return fmt.Errorf("fuzz: StatusPeriod %v is negative", o.StatusPeriod)
	}
	if o.StatusEvery < 0 {
		return fmt.Errorf("fuzz: StatusEvery %d is negative", o.StatusEvery)
	}
	if o.Engine < EngineAuto || o.Engine > EngineCGT {
		return fmt.Errorf("fuzz: unknown engine %d", int(o.Engine))
	}
	if o.Profile != ProfileAFLPlusPlus && o.Profile != ProfileAFL {
		return fmt.Errorf("fuzz: unknown profile %d", int(o.Profile))
	}
	if o.MaxInputLen > 0 {
		for i, tok := range o.Dict {
			if len(tok) > o.MaxInputLen {
				return fmt.Errorf("fuzz: dictionary token %d is %d bytes, exceeds MaxInputLen %d", i, len(tok), o.MaxInputLen)
			}
		}
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.MapSize == 0 {
		o.MapSize = coverage.DefaultMapSize
	}
	if o.Entry == "" {
		o.Entry = "main"
	}
	if o.Limits == (vm.Limits{}) {
		o.Limits = vm.DefaultLimits()
	}
	if o.MaxInputLen == 0 {
		o.MaxInputLen = 512
	}
	if o.HistorySamples == 0 {
		o.HistorySamples = 64
	}
	return o
}

// Entry is a queue entry: an interesting test case and its metadata.
type Entry struct {
	ID   int
	Data []byte
	// Cov is the sparse sorted set of classified coverage map indices
	// the input touches (the trace_mini analogue).
	Cov []uint32
	// Steps is the execution cost (the exec-time analogue).
	Steps int64
	// Depth is the mutation chain length from the seed corpus.
	Depth int
	// FoundAt is the campaign execution counter when the entry was
	// added.
	FoundAt int64
	// Handicap counts queue cycles completed before the entry arrived.
	Handicap int
	// Favored marks membership in the favored (set-cover) corpus.
	Favored   bool
	WasFuzzed bool
	// IsSeed marks initial corpus entries.
	IsSeed bool
	// Parent is the queue index of the entry the discovering mutation
	// started from (-1 for initial seeds) — the genealogy edge.
	Parent int
	// Stage is the mutation stage that produced the entry (the stage*
	// constants).
	Stage uint8
	// FirstCells lists the coverage-map cells this entry was first to
	// touch: the indices updateTopRated found without an incumbent
	// champion. Provenance is always recorded (not gated on the
	// journal), so reports are identical with journaling on or off.
	FirstCells []uint32
}

// CrashRec aggregates the crashes sharing one stack hash.
type CrashRec struct {
	Crash   *vm.Crash
	Input   []byte
	Count   int
	FoundAt int64
}

// HistPoint samples campaign progress over time.
type HistPoint struct {
	Execs     int64
	QueueLen  int
	CovCount  int
	Crashes   int64
	UniqBugs  int
	Favored   int
	PathCount int64 // entries ever added (paths_total analogue)
}

// Stats aggregates campaign counters.
type Stats struct {
	Execs      int64
	Timeouts   int64
	CrashExecs int64
	TotalSteps int64
	Cycles     int
	Added      int64
	// AFLUniqueCrashes counts crashes under AFL's original uniqueness
	// notion — a crash is "unique" if its execution covered at least
	// one new coverage tuple relative to prior crashes. The paper's
	// Appendix C (Table IX) contrasts this over-counting criterion with
	// stack-hash clustering.
	AFLUniqueCrashes int64
	// InternalFaults counts executions quarantined because the
	// interpreter (or instrumentation) panicked. These are harness
	// defects, not findings against the program under test; the campaign
	// survives them and records the triggering inputs.
	InternalFaults int64
	// Per-stage execution attribution: which stage issued each
	// execution. Deterministic (counts, not times), checkpointed with
	// the rest of Stats, and surfaced by the telemetry layer.
	SeedExecs   int64
	HavocExecs  int64
	SpliceExecs int64
	CmplogExecs int64
}

// Execution stages, for Stats attribution (internal; the telemetry
// package carries the exported stage taxonomy).
const (
	stageSeed uint8 = iota
	stageHavoc
	stageSplice
	stageCmplog
)

// stageName names a stage constant for provenance records and journal
// events.
func stageName(s uint8) string {
	switch s {
	case stageSeed:
		return "seed"
	case stageHavoc:
		return "havoc"
	case stageSplice:
		return "splice"
	case stageCmplog:
		return "cmplog"
	}
	return "?"
}

// InternalFault is one quarantined harness failure: a panic during
// vm.Run recovered by the fuzz loop instead of killing the campaign.
// Faults are deduplicated by message; Input is the first trigger.
type InternalFault struct {
	Msg     string
	Input   []byte
	FoundAt int64
	Count   int
}

// Fuzzer is one fuzzing campaign instance.
type Fuzzer struct {
	prog *cfg.Program
	opts Options
	rng  *rand.Rand
	// Exactly one of tracer/mach drives executions: mach is the compiled
	// bytecode engine (probes inlined, no tracer), tracer the reference
	// interpreter's instrumentation callback.
	tracer vm.Tracer
	mach   *bytecode.Machine
	// cgt, when non-nil, selects the coverage-guided tracing engine:
	// executions dispatch to its patched fast machine and mach becomes
	// the retrace (full-instrumentation) machine. See cgt.go.
	cgt    *cgtState
	cov    *coverage.Map
	virgin *coverage.Virgin
	// crashVirgin implements AFL's crash-uniqueness criterion.
	crashVirgin *coverage.Virgin
	mut         *mutator

	queue    []*Entry
	topRated map[uint32]*Entry
	// pendingFavored counts favored, not-yet-fuzzed entries.
	pendingFavored int

	// crashes dedups by stack hash (top-5 frames).
	crashes map[uint64]*CrashRec
	// bugs dedups by ground-truth bug key.
	bugs map[string]*CrashRec

	stats   Stats
	history []HistPoint
	// faults lists quarantined interpreter panics (capped; the full
	// count is in stats.InternalFaults).
	faults []InternalFault

	// avgSteps/avgCov track running means for the power schedule.
	sumSteps int64
	sumCov   int64

	// reachW maps coverage-map indices to static crash-site
	// reachability counts (Options.ReachBoost); reachMax is the
	// program-wide maximum, the boost's normalizer.
	reachW   []int
	reachMax int

	// guide holds the analysis-guided state (Options.AnalysisGuide;
	// nil otherwise), and covCount the per-cell queue coverage counts
	// behind its rarity ordering — derived state, rebuilt on restore.
	guide    *guideState
	covCount map[uint32]int

	dictSeen map[string]bool

	// scratch is the reusable candidate buffer of the cmplog stage
	// (substitution and resize variants); every retention path copies,
	// so the buffer is recycled across variants.
	scratch []byte

	// rngSrc is the counting source behind rng; snapshots record its
	// draw count so a resumed campaign can fast-forward a fresh source
	// to the exact same stream position.
	rngSrc *countingSource

	// Fuzz-loop position, promoted to fields so a checkpoint taken
	// between queue entries can resume mid-cycle: qi is the next queue
	// index to fuzz, qlen the cycle's frozen queue length, midCycle
	// whether a cycle is in flight.
	qi, qlen int
	midCycle bool
	// History sampling schedule; restored verbatim on resume so the
	// sample points of a resumed campaign match an uninterrupted one.
	sampleEvery, nextSample int64
	samplingRestored        bool

	// hook, when set, runs after every fuzzed queue entry — a
	// deterministic safe point where full state can be snapshotted.
	// Returning false stops Fuzz early (graceful shutdown).
	hook func(*Fuzzer) bool

	// Status-line pacing (display only; never feeds back into campaign
	// state, so determinism is unaffected).
	statusAt    time.Time
	statusExecs int64

	// curStage attributes executions to the stage that issued them
	// (stage counters in Stats); maxDepth tracks the deepest mutation
	// chain in the queue. Both are deterministic campaign state.
	curStage uint8
	maxDepth int

	// tel, when non-nil, receives counter snapshots and stage spans —
	// observation only, at queue-entry granularity. nextPublish paces
	// the snapshot copies (display only, like statusAt): the collector
	// samples at wall-clock intervals, so publishing every boundary
	// would pay the queue scans thousands of times per second for
	// snapshots nobody reads.
	tel         *telemetry.Recorder
	nextPublish int64

	// jrnl, when non-nil, receives structured lifecycle events; events
	// counts how many this campaign has emitted. The counter advances
	// even with no writer attached — it is checkpointed (so resume can
	// truncate the journal back to the checkpoint's event) and must not
	// depend on whether journaling happens to be on.
	jrnl   *journal.Writer
	events uint64
}

// New constructs a fuzzer for prog.
func New(prog *cfg.Program, opts Options) (*Fuzzer, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if prog.Func(opts.Entry) == nil {
		return nil, fmt.Errorf("fuzz: program has no entry function %q", opts.Entry)
	}
	var guide *guideState
	if opts.AnalysisGuide {
		// The facts ride along in the instrumentation config (where
		// guided consumers expect them) but never affect lowering, so
		// the compile below is shared with unguided campaigns.
		facts := interproc.For(prog, prog.ByName[opts.Entry])
		opts.Instr.Facts = facts
		guide = newGuide(prog, facts, opts.Feedback, opts.MapSize, opts.Instr)
	}
	m := coverage.NewMap(opts.MapSize)
	var mach *bytecode.Machine
	var cgt *cgtState
	if opts.Engine != EngineInterp {
		if cp, ok := instrument.CompiledFor(opts.Feedback, prog, opts.Instr); ok {
			mach = bytecode.NewMachine(cp, m, opts.Limits)
			if opts.Engine == EngineCGT {
				patch := bytecode.NewPatchable(cp, opts.MapSize)
				// Static hit-count bounds tighten the consumption rule
				// for feedbacks with compile-time cells (nil otherwise).
				patch.SetHitBounds(cp.CellHitBounds(opts.Entry))
				consumed := coverage.NewBitset(opts.MapSize)
				// The fast machine skips comparison-operand collection:
				// cmp observations are only ever consumed for inputs
				// that get queued, and every queued input was retraced
				// on the fully-instrumented machine, whose result
				// (cmps included) replaces the fast one. Recording has
				// no effect on execution, steps, or coverage.
				fastLim := opts.Limits
				fastLim.MaxCmpObs = 0
				fast := bytecode.NewMachine(patch.Program(), m, fastLim)
				fast.SetElide(consumed)
				cgt = &cgtState{patch: patch, fast: fast, consumed: consumed}
			}
		} else if opts.Engine != EngineAuto {
			return nil, fmt.Errorf("fuzz: feedback %v has no bytecode lowering (use -engine=interp or auto)", opts.Feedback)
		}
	}
	var tr vm.Tracer
	if mach == nil {
		var err error
		tr, err = instrument.New(opts.Feedback, prog, m, opts.Instr)
		if err != nil {
			return nil, err
		}
	}
	src := newCountingSource(opts.Seed)
	f := &Fuzzer{
		prog:        prog,
		opts:        opts,
		rng:         rand.New(src),
		rngSrc:      src,
		tracer:      tr,
		mach:        mach,
		cgt:         cgt,
		cov:         m,
		virgin:      coverage.NewVirgin(opts.MapSize),
		crashVirgin: coverage.NewVirgin(opts.MapSize),
		topRated:    make(map[uint32]*Entry),
		crashes:     make(map[uint64]*CrashRec),
		bugs:        make(map[string]*CrashRec),
		dictSeen:    make(map[string]bool),
		tel:         opts.Telemetry,
		jrnl:        opts.Journal,
		guide:       guide,
	}
	if guide != nil {
		f.covCount = make(map[uint32]int)
	}
	if opts.ReachBoost {
		f.reachW, f.reachMax = reachWeights(prog, opts.Feedback, opts.MapSize)
	}
	f.mut = &mutator{
		rng:    f.rng,
		maxLen: opts.MaxInputLen,
		rich:   opts.Profile == ProfileAFLPlusPlus,
	}
	for _, tok := range opts.Dict {
		f.addToken(tok)
	}
	return f, nil
}

// Program returns the program under test.
func (f *Fuzzer) Program() *cfg.Program { return f.prog }

// Execs returns the campaign execution counter.
func (f *Fuzzer) Execs() int64 { return f.stats.Execs }

// StatsSnapshot returns a copy of the campaign counters. Unlike Report
// it mutates nothing (Report re-culls the favored corpus), so it is
// safe to call from boundary hooks without perturbing determinism.
func (f *Fuzzer) StatsSnapshot() Stats { return f.stats }

// UniqueCrashes returns the number of unique crashes by stack hash.
func (f *Fuzzer) UniqueCrashes() int { return len(f.crashes) }

// UniqueBugs returns the number of unique ground-truth bugs found.
func (f *Fuzzer) UniqueBugs() int { return len(f.bugs) }

// QueueLen returns the current queue size.
func (f *Fuzzer) QueueLen() int { return len(f.queue) }

// QueueInputs returns copies of all queue inputs (the saved corpus).
func (f *Fuzzer) QueueInputs() [][]byte {
	return f.QueueInputsFrom(0)
}

// QueueInputsFrom returns copies of the queue inputs from index i on —
// the incremental publication set the fleet's corpus sync exchanges
// (entries added since the worker's previous sync point).
func (f *Fuzzer) QueueInputsFrom(i int) [][]byte {
	if i < 0 {
		i = 0
	}
	if i >= len(f.queue) {
		return nil
	}
	out := make([][]byte, 0, len(f.queue)-i)
	for _, e := range f.queue[i:] {
		out = append(out, append([]byte(nil), e.Data...))
	}
	return out
}

// CurrentInput returns a copy of the queue entry the fuzz loop most
// recently dispatched (nil outside a cycle). The fleet supervisor uses
// it to quarantine the poison input when a worker attempt panics; it
// must only be called from the goroutine running the fuzzer (the fuzz
// loop itself, its boundary hook, or a recover() above Fuzz).
func (f *Fuzzer) CurrentInput() []byte {
	if f.midCycle && f.qi-1 >= 0 && f.qi-1 < len(f.queue) {
		return append([]byte(nil), f.queue[f.qi-1].Data...)
	}
	return nil
}

func (f *Fuzzer) addToken(tok []byte) {
	if len(tok) == 0 || len(tok) > 32 || len(f.mut.dict) >= 512 {
		return
	}
	k := string(tok)
	if f.dictSeen[k] {
		return
	}
	f.dictSeen[k] = true
	f.mut.dict = append(f.mut.dict, append([]byte(nil), tok...))
}

// execOutcome describes one instrumented execution.
type execOutcome struct {
	res     vm.Result
	novelty coverage.Novelty
	cov     []uint32
}

// runProtected executes one input with panic isolation: a panic inside
// the interpreter or instrumentation (a harness defect, possibly
// injected by the fault harness) is recovered and reported via ok=false
// instead of unwinding through the fuzz loop and killing the campaign.
func (f *Fuzzer) runProtected(data []byte) (res vm.Result, faultMsg string, ok bool) {
	return f.runProtectedOn(f.mach, data, true)
}

// runProtectedOn is runProtected on an explicit machine (nil selects
// the reference interpreter); inject gates the fault-injection hook so
// the CGT engine's retrace re-execution does not consume a second
// injector decision for the same exec index.
func (f *Fuzzer) runProtectedOn(mach *bytecode.Machine, data []byte, inject bool) (res vm.Result, faultMsg string, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			faultMsg = fmt.Sprint(r)
			ok = false
		}
	}()
	if inject {
		if inj := f.opts.FaultInjector; inj != nil && inj(f.stats.Execs, data) {
			panic("fuzz: injected execution fault")
		}
	}
	if mach != nil {
		return mach.Run(f.opts.Entry, data), "", true
	}
	return vm.Run(f.prog, f.opts.Entry, data, f.tracer, f.opts.Limits), "", true
}

// EngineName reports which execution engine the campaign runs on.
func (f *Fuzzer) EngineName() string {
	if f.cgt != nil {
		return "cgt"
	}
	if f.mach != nil {
		return "bytecode"
	}
	return "interp"
}

// BytecodeInstrs returns the compiled program's flat instruction count
// (0 when the campaign runs on the reference interpreter).
func (f *Fuzzer) BytecodeInstrs() int {
	if f.mach != nil {
		return f.mach.Program().NumInstrs()
	}
	return 0
}

// BytecodeNops reports how many compiled instruction slots are counted
// nops (dead stores reclaimed by the optimizer); 0 for the interpreter.
func (f *Fuzzer) BytecodeNops() int {
	if f.mach != nil {
		return f.mach.Program().NumNops()
	}
	return 0
}

// recordFault quarantines one interpreter panic as an internal-fault
// finding, deduplicated by message.
func (f *Fuzzer) recordFault(data []byte, msg string) {
	f.stats.InternalFaults++
	for i := range f.faults {
		if f.faults[i].Msg == msg {
			f.faults[i].Count++
			return
		}
	}
	const maxFaultRecs = 64
	if len(f.faults) >= maxFaultRecs {
		return
	}
	f.faults = append(f.faults, InternalFault{
		Msg:     msg,
		Input:   append([]byte(nil), data...),
		FoundAt: f.stats.Execs,
		Count:   1,
	})
	f.emit(journal.Event{Kind: journal.KindFault, Stage: stageName(f.curStage), Msg: msg, Len: len(data)})
	if f.jrnl != nil {
		f.jrnl.DumpFlight("fault-"+journal.SanitizeName(msg), f.opts.JournalWorker)
	}
}

// execute runs one input and folds novelty into the virgin map.
func (f *Fuzzer) execute(data []byte) execOutcome {
	if f.cgt != nil {
		return f.executeCGT(data)
	}
	f.cov.Reset()
	res, faultMsg, ok := f.runProtected(data)
	f.stats.Execs++
	switch f.curStage {
	case stageSeed:
		f.stats.SeedExecs++
	case stageHavoc:
		f.stats.HavocExecs++
	case stageSplice:
		f.stats.SpliceExecs++
	case stageCmplog:
		f.stats.CmplogExecs++
	}
	if !ok {
		// The execution is quarantined: its (possibly partial) coverage
		// is discarded so the virgin maps and queue see a no-op, and the
		// input is kept as an internal-fault record.
		f.recordFault(data, faultMsg)
		f.cov.Reset()
		return execOutcome{res: vm.Result{Status: vm.StatusOK}}
	}
	f.stats.TotalSteps += res.Steps
	f.cov.ClassifySparse()
	nov := f.virgin.MergeSparse(f.cov)
	out := execOutcome{res: res, novelty: nov}
	if nov != coverage.NoNew {
		out.cov = f.cov.Indices()
	}
	switch res.Status {
	case vm.StatusTimeout:
		f.stats.Timeouts++
		if nov != coverage.NoNew {
			// A timeout that still produced map novelty is the rare
			// forensically interesting one (hangs usually re-cover known
			// cells); plain timeouts are counted, not journaled, so the
			// event volume stays bounded by the map.
			f.emit(journal.Event{Kind: journal.KindTimeout, Stage: stageName(f.curStage), Steps: res.Steps, Len: len(data)})
		}
	case vm.StatusCrash:
		f.stats.CrashExecs++
		if f.crashVirgin.MergeSparse(f.cov) != coverage.NoNew {
			f.stats.AFLUniqueCrashes++
		}
		f.recordCrash(data, res.Crash)
	}
	return out
}

func (f *Fuzzer) recordCrash(data []byte, c *vm.Crash) {
	h := c.StackHash(5)
	newHash := false
	if rec, ok := f.crashes[h]; ok {
		rec.Count++
	} else {
		newHash = true
		rec := &CrashRec{Crash: c, Count: 1, FoundAt: f.stats.Execs}
		if f.opts.KeepCrashInputs {
			rec.Input = append([]byte(nil), data...)
		}
		f.crashes[h] = rec
	}
	key := c.BugKey()
	newBug := false
	if rec, ok := f.bugs[key]; ok {
		rec.Count++
	} else {
		newBug = true
		rec := &CrashRec{Crash: c, Count: 1, FoundAt: f.stats.Execs}
		if f.opts.KeepCrashInputs {
			rec.Input = append([]byte(nil), data...)
		}
		f.bugs[key] = rec
	}
	if newHash || newBug {
		// Only first discoveries become events (re-crashes bump the
		// dedup counters silently), and each new bug ships with a
		// flight-recorder dump: the last-N-events context written next
		// to the crash input the findings directory keeps.
		f.emit(journal.Event{
			Kind:  journal.KindCrash,
			Stage: stageName(f.curStage),
			Hash:  crashHashName(h),
			Bug:   key,
			Len:   len(data),
		})
		if newBug && f.jrnl != nil {
			f.jrnl.DumpFlight("crash-"+journal.SanitizeName(key), f.opts.JournalWorker)
		}
	}
}

// AddSeed executes a seed input and enqueues it if it produced novelty
// (or unconditionally for the very first seed, so the queue is never
// empty).
func (f *Fuzzer) AddSeed(data []byte) {
	if f.tel != nil {
		defer f.tel.StartSpan(telemetry.StageCalibrate)()
		defer f.publishTelemetry()
	}
	if len(data) > f.opts.MaxInputLen {
		data = data[:f.opts.MaxInputLen]
	}
	f.curStage = stageSeed
	out := f.execute(data)
	// Calibration outcome is journaled whether or not the seed is
	// admitted (crashing and redundant seeds are forensic signal too).
	admitted := out.res.Status != vm.StatusCrash &&
		(out.novelty != coverage.NoNew || len(f.queue) == 0)
	f.emit(journal.Event{
		Kind:     journal.KindCalibrate,
		Stage:    stageName(stageSeed),
		Len:      len(data),
		Steps:    out.res.Steps,
		Status:   out.res.Status.String(),
		Admitted: admitted,
	})
	if !admitted {
		// The paper's opportunistic method strips crashing seeds; in
		// general a crashing or redundant seed is recorded but not
		// queued.
		return
	}
	cov := out.cov
	if cov == nil {
		cov = f.cov.Indices()
	}
	f.enqueue(data, cov, out.res.Steps, 0, -1, true)
	f.cmplogStage(f.queue[len(f.queue)-1], out.res.Cmps)
}

func (f *Fuzzer) enqueue(data []byte, cov []uint32, steps int64, depth, parent int, isSeed bool) *Entry {
	e := &Entry{
		ID:       len(f.queue),
		Data:     append([]byte(nil), data...),
		Cov:      cov,
		Steps:    steps,
		Depth:    depth,
		FoundAt:  f.stats.Execs,
		Handicap: f.stats.Cycles,
		IsSeed:   isSeed,
		Parent:   parent,
		Stage:    f.curStage,
	}
	f.queue = append(f.queue, e)
	f.stats.Added++
	f.sumSteps += steps
	f.sumCov += int64(len(cov))
	if depth > f.maxDepth {
		f.maxDepth = depth
	}
	f.updateTopRated(e)
	f.noteCov(e)
	f.emit(journal.Event{
		Kind:   journal.KindNovelty,
		Stage:  stageName(e.Stage),
		Entry:  journal.Int(e.ID),
		Parent: journal.Int(e.Parent),
		Depth:  e.Depth,
		Steps:  e.Steps,
		Len:    len(e.Data),
		Cov:    len(e.Cov),
		Cells:  e.FirstCells,
	})
	return e
}

// updateTopRated implements AFL's top_rated bookkeeping: for every map
// index the entry covers, it becomes the champion if it is
// faster-and-smaller (steps * len) than the incumbent. The favored
// corpus itself is recomputed lazily, once per queue cycle, as AFL's
// cull_queue does.
func (f *Fuzzer) updateTopRated(e *Entry) {
	score := e.Steps * int64(len(e.Data)+1)
	for _, idx := range e.Cov {
		cur, ok := f.topRated[idx]
		if !ok {
			// No incumbent champion: this entry is the first to touch
			// the cell — its discovery provenance. Recomputed the same
			// way on restore (entries replay in queue order), so the
			// sets are identical live and resumed.
			e.FirstCells = append(e.FirstCells, idx)
			f.topRated[idx] = e
		} else if score < cur.Steps*int64(len(cur.Data)+1) {
			f.topRated[idx] = e
		}
	}
}

// cullFavored recomputes the favored corpus: a greedy approximation of
// the minimal set of entries covering every known map index (the
// paper's "fast approximation fuzzers employ for the expensive set
// cover problem").
func (f *Fuzzer) cullFavored() {
	for _, e := range f.queue {
		e.Favored = false
	}
	indices := make([]uint32, 0, len(f.topRated))
	for idx := range f.topRated {
		indices = append(indices, idx)
	}
	sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })
	covered := make(map[uint32]bool, len(indices))
	f.pendingFavored = 0
	for _, idx := range indices {
		if covered[idx] {
			continue
		}
		e := f.topRated[idx]
		e.Favored = true
		for _, i := range e.Cov {
			covered[i] = true
		}
		if !e.WasFuzzed {
			f.pendingFavored++
		}
	}
}

// FavoredInputs returns the favored corpus inputs — the edge-preserving
// minimal queue the culling strategy retains.
func (f *Fuzzer) FavoredInputs() [][]byte {
	var out [][]byte
	for _, e := range f.queue {
		if e.Favored {
			out = append(out, append([]byte(nil), e.Data...))
		}
	}
	return out
}

// skipProbability mirrors AFL's queue-entry skipping constants.
func (f *Fuzzer) skip(e *Entry) bool {
	if e.Favored {
		return false
	}
	switch {
	case f.pendingFavored > 0:
		return f.rng.Intn(100) < 99
	case e.WasFuzzed:
		return f.rng.Intn(100) < 95
	default:
		return f.rng.Intn(100) < 75
	}
}

// energy computes the havoc iteration budget for an entry, a compact
// version of AFL's calculate_score.
func (f *Fuzzer) energy(e *Entry) int {
	score := 100.0
	if n := int64(len(f.queue)); n > 0 {
		avgSteps := float64(f.sumSteps) / float64(n)
		switch r := float64(e.Steps) / maxF(avgSteps, 1); {
		case r > 4:
			score *= 0.25
		case r > 2:
			score *= 0.5
		case r < 0.5:
			score *= 2
		}
		avgCov := float64(f.sumCov) / float64(n)
		switch r := float64(len(e.Cov)) / maxF(avgCov, 1); {
		case r > 1.5:
			score *= 1.5
		case r < 0.5:
			score *= 0.75
		}
	}
	switch {
	case e.Depth >= 14:
		score *= 3
	case e.Depth >= 8:
		score *= 2
	case e.Depth >= 4:
		score *= 1.5
	}
	if e.Handicap > 0 {
		score *= 1.5
	}
	if f.reachMax > 0 {
		// Static crash-site reachability prior: inputs whose coverage
		// borders the most reachable danger get up to 2x budget.
		best := 0
		for _, i := range e.Cov {
			if int(i) < len(f.reachW) && f.reachW[i] > best {
				best = f.reachW[i]
			}
		}
		score *= 1 + float64(best)/float64(f.reachMax)
	}
	if f.guide != nil && f.guide.wMax > 0 {
		// Analysis-guided frontier prior: inputs bordering the most
		// input-dependent unexplored branch sides get up to 2x budget
		// (the interprocedural generalization of the reach boost).
		best := 0
		for _, i := range e.Cov {
			if int(i) < len(f.guide.w) && f.guide.w[i] > best {
				best = f.guide.w[i]
			}
		}
		score *= 1 + float64(best)/float64(f.guide.wMax)
	}
	limit := 512.0
	if f.opts.Profile == ProfileAFL {
		limit = 384
	}
	if score > limit {
		score = limit
	}
	if score < 16 {
		score = 16
	}
	return int(score)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// reachWeights inverts the coverage-map index space back to program
// locations and annotates each with its static crash-site reachability
// count. Only feedbacks with exact (non-hashed) indices can be
// inverted: edge and pathafl use index = edgeBase(fn) + e, block uses
// index = blockBase(fn) + b, mirroring the instrument package's ID
// assignment. For other feedbacks it returns (nil, 0), disabling the
// boost. Colliding indices keep the larger count.
func reachWeights(prog *cfg.Program, fb instrument.Feedback, mapSize int) ([]int, int) {
	var edgeIndexed bool
	switch fb {
	case instrument.FeedbackEdge, instrument.FeedbackPathAFL:
		edgeIndexed = true
	case instrument.FeedbackBlock:
		edgeIndexed = false
	default:
		return nil, 0
	}
	r := analysis.NewReach(prog)
	w := make([]int, mapSize)
	mask := uint32(mapSize - 1)
	maxW := 0
	note := func(idx uint32, c int) {
		i := idx & mask
		if c > w[i] {
			w[i] = c
		}
		if c > maxW {
			maxW = c
		}
	}
	var base uint32
	for fi, f := range prog.Funcs {
		if edgeIndexed {
			for e := range f.Edges {
				note(base+uint32(e), r.Block(fi, f.Edges[e].To))
			}
			base += uint32(len(f.Edges))
		} else {
			for b := range f.Blocks {
				note(base+uint32(b), r.Block(fi, b))
			}
			base += uint32(len(f.Blocks))
		}
	}
	return w, maxW
}

// processNew enqueues a novel input produced during fuzzing; parent is
// the queue entry the mutation started from.
func (f *Fuzzer) processNew(data []byte, out execOutcome, depth, parent int) {
	if out.novelty == coverage.NoNew || out.res.Status != vm.StatusOK {
		return
	}
	e := f.enqueue(data, out.cov, out.res.Steps, depth, parent, false)
	f.cmplogStage(e, out.res.Cmps)
}

// SetCheckpointHook registers fn, called after every fuzzed queue entry
// — a deterministic safe point at which Snapshot captures complete
// campaign state. The hook must not mutate the fuzzer beyond taking
// snapshots; returning false makes Fuzz return early (graceful
// shutdown), leaving the campaign resumable from the last snapshot.
func (f *Fuzzer) SetCheckpointHook(fn func(*Fuzzer) bool) { f.hook = fn }

// Fuzz runs the campaign until the execution counter reaches budget.
// It can be called repeatedly with growing budgets: an in-flight queue
// cycle (including one restored by Restore) is continued, not
// restarted.
func (f *Fuzzer) Fuzz(budget int64) {
	if len(f.queue) == 0 {
		// Never fuzz an empty queue: synthesise a minimal seed.
		f.AddSeed([]byte("seed"))
		if len(f.queue) == 0 {
			// Even the fallback seed crashed; queue it blind so
			// mutation has a starting point.
			f.enqueue([]byte("seed"), nil, 1, 0, -1, true)
		}
	}
	if f.samplingRestored {
		// A resumed campaign keeps the original sampling schedule so its
		// history matches an uninterrupted run's exactly.
		f.samplingRestored = false
	} else {
		f.sampleEvery = budget / int64(f.opts.HistorySamples)
		if f.sampleEvery <= 0 {
			f.sampleEvery = 1
		}
		f.nextSample = f.stats.Execs + f.sampleEvery
	}
	for f.stats.Execs < budget {
		if !f.midCycle {
			f.cullFavored()
			f.emit(journal.Event{
				Kind:    journal.KindCycle,
				Cycle:   f.stats.Cycles,
				Queue:   len(f.queue),
				Cov:     len(f.topRated),
				Crashes: len(f.crashes),
				Bugs:    len(f.bugs),
			})
			// Cycle starts are the CGT engine's replan boundary: the
			// probe-elision plan is recomputed from the virgin map
			// here and nowhere else inside the loop, so the plan is a
			// deterministic function of cycle-start campaign state.
			// Guided campaigns refresh their frontier weights at the
			// same boundary, for the same determinism property.
			f.replanCGT()
			if f.cgt != nil {
				// Emitted here, not inside replanCGT: Restore replans
				// too, and a restore must not add events an
				// uninterrupted campaign would not have.
				f.emit(journal.Event{
					Kind:   journal.KindReplan,
					Cycle:  f.stats.Cycles,
					Elided: f.cgt.elided,
					Sites:  f.cgt.patch.NumSites(),
				})
			}
			f.updateGuide()
			f.qi, f.qlen = 0, len(f.queue)
			f.midCycle = true
		}
		for f.qi < f.qlen && f.stats.Execs < budget {
			e := f.queue[f.qi]
			f.qi++
			if f.skip(e) {
				continue
			}
			f.fuzzOne(e, budget)
			if e.Favored && !e.WasFuzzed {
				f.pendingFavored--
			}
			e.WasFuzzed = true
			for f.stats.Execs >= f.nextSample {
				f.sample()
				f.nextSample += f.sampleEvery
			}
			if f.opts.Status != nil {
				f.maybeStatus()
			}
			if f.tel != nil && f.stats.Execs >= f.nextPublish {
				f.publishTelemetry()
				f.nextPublish = f.stats.Execs + telemetryEvery
			}
			if f.hook != nil && !f.hook(f) {
				return
			}
		}
		f.stats.Cycles++
		if f.qi >= f.qlen {
			f.midCycle = false
		}
	}
	f.sample()
	f.publishTelemetry()
	// The finish event closes a completed budget; interrupted runs
	// (checkpoint hook returning false) return inside the loop without
	// one, and emit it when the resumed campaign completes — so an
	// uninterrupted and a resumed journal end identically. Its Execs
	// is the authoritative exec count the stats audit cross-checks
	// against fuzzer_stats.
	f.emit(journal.Event{
		Kind:    journal.KindFinish,
		Cycle:   f.stats.Cycles,
		Queue:   len(f.queue),
		Cov:     len(f.topRated),
		Crashes: len(f.crashes),
		Bugs:    len(f.bugs),
	})
	if f.jrnl != nil {
		f.jrnl.Flush()
	}
}

// maybeStatus emits the periodic status line: engine, execution count,
// measured execs/sec over the last interval, and campaign counters.
// Pacing is wall-clock first (StatusPeriod, default 1s) with an
// exec-count fallback (StatusEvery), so slow or tight-limit subjects
// report on time while fast ones cannot flood the terminal between
// clock reads. Display only: nothing here feeds back into campaign
// state.
func (f *Fuzzer) maybeStatus() {
	now := time.Now()
	if f.statusAt.IsZero() {
		f.statusAt, f.statusExecs = now, f.stats.Execs
		return
	}
	period := f.opts.StatusPeriod
	if period <= 0 {
		period = time.Second
	}
	every := f.opts.StatusEvery
	if every <= 0 {
		every = 50000
	}
	if now.Sub(f.statusAt) < period && f.stats.Execs-f.statusExecs < every {
		return
	}
	rate := 0.0
	if dt := now.Sub(f.statusAt).Seconds(); dt > 0 {
		rate = float64(f.stats.Execs-f.statusExecs) / dt
	}
	fmt.Fprintf(f.opts.Status, "[pafuzz] engine=%s execs=%d rate=%.0f/s queue=%d cov=%d crashes=%d bugs=%d\n",
		f.EngineName(), f.stats.Execs, rate, len(f.queue), f.coveredCount(), f.stats.CrashExecs, len(f.bugs))
	f.statusAt, f.statusExecs = now, f.stats.Execs
}

// Telemetry returns the attached recorder (nil when telemetry is off).
func (f *Fuzzer) Telemetry() *telemetry.Recorder { return f.tel }

// telemetryEvery is the minimum exec spacing between boundary
// publishes. Small enough that a 1s collector tick virtually always
// sees a fresh snapshot, large enough that the per-publish queue scans
// vanish from campaign cost. Fuzz still publishes unconditionally when
// the budget runs out, so the final snapshot is exact.
const telemetryEvery = 1000

// publishTelemetry copies the campaign counters into the recorder —
// one snapshot per queue-entry boundary, the only place the campaign
// touches the telemetry layer.
func (f *Fuzzer) publishTelemetry() {
	if f.tel == nil {
		return
	}
	pending := int64(0)
	for _, e := range f.queue {
		if !e.WasFuzzed {
			pending++
		}
	}
	var fastExecs, retraces, replans, elided, patchSites int64
	if f.cgt != nil {
		fastExecs = f.cgt.fastExecs
		retraces = f.cgt.retraces
		replans = f.cgt.replans
		elided = int64(f.cgt.elided)
		patchSites = int64(f.cgt.patch.NumSites())
	}
	f.tel.Publish(telemetry.Counters{
		Execs:            f.stats.Execs,
		Timeouts:         f.stats.Timeouts,
		CrashExecs:       f.stats.CrashExecs,
		TotalSteps:       f.stats.TotalSteps,
		Cycles:           int64(f.stats.Cycles),
		Added:            f.stats.Added,
		UniqueCrashes:    int64(len(f.crashes)),
		UniqueBugs:       int64(len(f.bugs)),
		AFLUniqueCrashes: f.stats.AFLUniqueCrashes,
		InternalFaults:   f.stats.InternalFaults,
		QueueLen:         int64(len(f.queue)),
		Favored:          int64(f.favoredCount()),
		PendingTotal:     pending,
		PendingFavored:   int64(f.pendingFavored),
		CurItem:          int64(f.qi - 1),
		MaxDepth:         int64(f.maxDepth),
		CoverageCount:    int64(len(f.topRated)),
		CoverageBits:     int64(f.virgin.Count()),
		MapSize:          int64(f.cov.Len()),
		SeedExecs:        f.stats.SeedExecs,
		HavocExecs:       f.stats.HavocExecs,
		SpliceExecs:      f.stats.SpliceExecs,
		CmplogExecs:      f.stats.CmplogExecs,
		FastExecs:        fastExecs,
		Retraces:         retraces,
		Replans:          replans,
		ElidedProbes:     elided,
		PatchSites:       patchSites,
	})
}

func (f *Fuzzer) sample() {
	f.history = append(f.history, HistPoint{
		Execs:     f.stats.Execs,
		QueueLen:  len(f.queue),
		CovCount:  f.coveredCount(),
		Crashes:   f.stats.CrashExecs,
		UniqBugs:  len(f.bugs),
		Favored:   f.favoredCount(),
		PathCount: f.stats.Added,
	})
}

func (f *Fuzzer) favoredCount() int {
	n := 0
	for _, e := range f.queue {
		if e.Favored {
			n++
		}
	}
	return n
}

func (f *Fuzzer) coveredCount() int {
	// Count consumed virgin entries indirectly via topRated keys.
	return len(f.topRated)
}

// fuzzOne runs the havoc/splice stages for one entry. The telemetry
// span covers the whole entry budget (nested cmplog stages triggered
// by novel finds record their own spans inside it); havoc vs splice
// executions are told apart via the deterministic stage counters.
func (f *Fuzzer) fuzzOne(e *Entry, budget int64) {
	if f.tel != nil {
		defer f.tel.StartSpan(telemetry.StageHavoc)()
	}
	var gMask []interproc.ByteRange
	var gTotal int64
	if f.guide != nil {
		gMask, gTotal = f.guideMaskFor(e)
	}
	iters := f.energy(e)
	for i := 0; i < iters && f.stats.Execs < budget; i++ {
		// The frontier mask focuses alternate iterations only: the even
		// ones hammer the dependency bytes of the rarest bordering
		// frontier branch, the odd ones keep the unrestricted havoc that
		// finds coverage the analysis did not point at. Focusing every
		// iteration measurably starves broad exploration on subjects
		// whose frontier branches resist flipping (flvmeta, imginfo).
		if gTotal > 0 && i%2 == 0 {
			f.mut.mask, f.mut.maskTotal = gMask, gTotal
		} else {
			f.mut.mask, f.mut.maskTotal = nil, 0
		}
		var cand []byte
		if len(f.queue) > 1 && f.rng.Intn(100) < 15 {
			other := f.queue[f.rng.Intn(len(f.queue))]
			cand = f.mut.splice(e.Data, other.Data)
			f.curStage = stageSplice
		} else {
			cand = f.mut.havoc(e.Data)
			f.curStage = stageHavoc
		}
		out := f.execute(cand)
		f.processNew(cand, out, e.Depth+1, e.ID)
	}
}

// cmplogStage is the input-to-state stage run once per new queue entry
// (AFL++'s cmplog/RedQueen analogue): observed comparison operands are
// located in the input and replaced with the other side, and compared
// constants feed the auto-dictionary.
func (f *Fuzzer) cmplogStage(e *Entry, cmps []vm.CmpObs) {
	if f.opts.Profile == ProfileAFL {
		return
	}
	if f.tel != nil {
		defer f.tel.StartSpan(telemetry.StageCmplog)()
	}
	prevStage := f.curStage
	f.curStage = stageCmplog
	defer func() { f.curStage = prevStage }()
	if f.mach != nil && len(cmps) > 0 {
		// The bytecode machine's Result.Cmps aliases its pooled buffer,
		// which the executions this stage performs would clobber mid-walk;
		// snapshot it first.
		cmps = append([]vm.CmpObs(nil), cmps...)
	}
	attempts := 0
	const maxAttempts = 48
	for _, obs := range cmps {
		if obs.A == obs.B {
			continue
		}
		if f.guide != nil && f.guide.skipCmp(obs) {
			// Every static site matching this observation's signature is
			// input-independent: substitution can never flip it.
			continue
		}
		// Auto-dictionary: constants under comparison become tokens.
		f.addTokenVal(obs.A)
		f.addTokenVal(obs.B)
		for _, dir := range [2][2]int64{{obs.A, obs.B}, {obs.B, obs.A}} {
			if attempts >= maxAttempts {
				return
			}
			find, repl := dir[0], dir[1]
			// Length-to-state: conditions on len(input) are satisfied
			// by resizing rather than byte search.
			if find == int64(len(e.Data)) && repl >= 0 && repl <= int64(f.opts.MaxInputLen) && find != repl {
				attempts++
				f.tryResize(e, int(repl))
				continue
			}
			attempts += f.trySubstitute(e, find, repl, maxAttempts-attempts)
		}
	}
}

func (f *Fuzzer) tryResize(e *Entry, n int) {
	data := f.scratchBuf(n)
	copy(data, e.Data)
	for i := len(e.Data); i < n; i++ {
		data[i] = byte(f.rng.Intn(256))
	}
	out := f.execute(data)
	f.processNew(data, out, e.Depth+1, e.ID)
}

// scratchBuf returns the pooled cmplog candidate buffer resized to n;
// contents are unspecified and callers overwrite every byte they use.
func (f *Fuzzer) scratchBuf(n int) []byte {
	if cap(f.scratch) < n {
		f.scratch = make([]byte, 0, n*2)
	}
	return f.scratch[:n]
}

// trySubstitute searches the 1/2/4/8-byte little- and big-endian
// encodings of find in the input and replaces them with repl, executing
// each variant. It returns the number of executions spent.
func (f *Fuzzer) trySubstitute(e *Entry, find, repl int64, allow int) int {
	spent := 0
	var feBuf, reBuf [8]byte
	for _, w := range []int{1, 2, 4, 8} {
		if spent >= allow {
			return spent
		}
		if !fitsWidth(find, w) || !fitsWidth(repl, w) {
			continue
		}
		fe := encodeWidthTo(&feBuf, find, w, false)
		re := encodeWidthTo(&reBuf, repl, w, false)
		for _, be := range []bool{false, true} {
			if w == 1 && be {
				continue
			}
			if be {
				fe = encodeWidthTo(&feBuf, find, w, true)
				re = encodeWidthTo(&reBuf, repl, w, true)
			}
			for p := 0; p+w <= len(e.Data) && spent < allow; p++ {
				if !bytesEq(e.Data[p:p+w], fe) {
					continue
				}
				data := f.scratchBuf(len(e.Data))
				copy(data, e.Data)
				copy(data[p:], re)
				out := f.execute(data)
				f.processNew(data, out, e.Depth+1, e.ID)
				spent++
			}
		}
	}
	return spent
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fitsWidth(v int64, w int) bool {
	switch w {
	case 1:
		return v >= -128 && v <= 255
	case 2:
		return v >= -32768 && v <= 65535
	case 4:
		return v >= -2147483648 && v <= 4294967295
	default:
		return true
	}
}

// encodeWidthTo writes the w-byte encoding of v into buf and returns
// the filled prefix; the hot cmplog paths use it to stay off the heap.
func encodeWidthTo(buf *[8]byte, v int64, w int, bigEndian bool) []byte {
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	out := buf[:w]
	if bigEndian {
		for i, j := 0, w-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

func encodeWidth(v int64, w int, bigEndian bool) []byte {
	var buf [8]byte
	return append([]byte(nil), encodeWidthTo(&buf, v, w, bigEndian)...)
}

// minWidth is the fewest bytes that hold v, for dictionary tokens.
func minWidth(v int64) int {
	switch {
	case v >= 0 && v <= 255:
		return 1
	case v >= -32768 && v <= 65535:
		return 2
	case v >= -2147483648 && v <= 4294967295:
		return 4
	default:
		return 8
	}
}

// encodeMin encodes v in the fewest bytes that hold it (little-endian),
// for dictionary tokens.
func encodeMin(v int64) []byte {
	return encodeWidth(v, minWidth(v), false)
}

// addTokenVal feeds v's minimal encoding to the auto-dictionary without
// allocating; addToken copies on actual insertion.
func (f *Fuzzer) addTokenVal(v int64) {
	var buf [8]byte
	f.addToken(encodeWidthTo(&buf, v, minWidth(v), false))
}
