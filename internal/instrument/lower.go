package instrument

import (
	"sync"

	"repro/internal/balllarus"
	"repro/internal/bytecode"
	"repro/internal/cfg"
)

// compileKey identifies one compiled (program, feedback, config)
// triple. Config is comparable (plain scalars plus the Facts pointer),
// so the whole key is; Facts is stripped before keying because it never
// affects lowering (guided and unguided campaigns share one compile).
type compileKey struct {
	prog *cfg.Program
	fb   Feedback
	cfg  Config
}

// compileCache memoizes bytecode compilation per process: subjects are
// compiled once and shared across every fuzzer, campaign resume, and
// evalharness worker that uses the same (program, feedback, config).
var compileCache sync.Map // compileKey -> *bytecode.Program

// CompiledFor lowers prog's fb instrumentation into a compiled
// bytecode program, memoized process-wide. ok is false when fb has no
// bytecode lowering (the extension feedbacks keep tracer-based
// semantics and run on the reference interpreter).
func CompiledFor(fb Feedback, prog *cfg.Program, c Config) (cp *bytecode.Program, ok bool) {
	c = c.withDefaults()
	kc := c
	kc.Facts = nil
	key := compileKey{prog: prog, fb: fb, cfg: kc}
	if v, hit := compileCache.Load(key); hit {
		return v.(*bytecode.Program), true
	}
	spec, ok := lowerSpec(fb, prog, c)
	if !ok {
		return nil, false
	}
	// Optimization is on by default; the differential tests pin its
	// observational equivalence against the reference interpreter.
	// Strict analysis adds the IR and bytecode verifiers to every
	// compile.
	spec.Opt = !c.NoOpt
	spec.Verify = c.Analysis == "strict"
	cp = bytecode.Compile(prog, spec)
	if v, raced := compileCache.LoadOrStore(key, cp); raced {
		// A concurrent caller won the store; use its program so pointer
		// identity holds process-wide.
		cp = v.(*bytecode.Program)
	}
	return cp, true
}

// lowerSpec builds the compile-time instrumentation spec mirroring the
// tracer the New dispatcher would construct for fb.
func lowerSpec(fb Feedback, prog *cfg.Program, c Config) (bytecode.Spec, bool) {
	switch fb {
	case FeedbackEdge:
		return bytecode.Spec{Kind: bytecode.ProbeEdge, Fns: baseFns(edgeBase(prog))}, true
	case FeedbackBlock:
		return bytecode.Spec{Kind: bytecode.ProbeBlock, Fns: baseFns(blockBase(prog))}, true
	case FeedbackNGram:
		return bytecode.Spec{Kind: bytecode.ProbeNGram, NGram: c.NGram, Fns: baseFns(blockBase(prog))}, true
	case FeedbackPath:
		return pathSpec(prog, c), true
	case FeedbackPathAFL:
		base := edgeBase(prog)
		fns := make([]bytecode.FnSpec, len(prog.Funcs))
		for i, f := range prog.Funcs {
			fns[i] = bytecode.FnSpec{
				Base:    base[i],
				Salt:    fnSalt(i),
				Tracked: len(f.Blocks) >= c.PathAFLMinBlocks,
			}
		}
		return bytecode.Spec{Kind: bytecode.ProbePathAFL, Segment: c.PathAFLSegment, Fns: fns}, true
	}
	return bytecode.Spec{}, false
}

func baseFns(base []uint32) []bytecode.FnSpec {
	fns := make([]bytecode.FnSpec, len(base))
	for i, b := range base {
		fns[i] = bytecode.FnSpec{Base: b}
	}
	return fns
}

// pathSpec mirrors NewPathTracer's plan construction, including the
// hash-mode fallback for functions whose path counts overflow.
func pathSpec(prog *cfg.Program, c Config) bytecode.Spec {
	spec := bytecode.Spec{
		Kind:    bytecode.ProbePath,
		MixHash: c.Mix == MixHash,
		Fns:     make([]bytecode.FnSpec, len(prog.Funcs)),
	}
	for i, f := range prog.Funcs {
		fs := &spec.Fns[i]
		fs.Salt = fnSalt(i)
		enc, err := balllarus.Encode(f)
		if err != nil {
			fs.HashMode = true
			continue
		}
		var plan balllarus.Plan
		if c.NaivePlacement {
			plan = enc.NaivePlan()
		} else {
			plan = enc.OptimizedPlan()
		}
		fs.EdgeInc = plan.EdgeInc
		fs.RetInc = plan.RetInc
		fs.Back = plan.Back
	}
	return spec
}
