package campaign

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/journal"
)

func gobSnap(t *testing.T, s *fuzz.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openJournalT(t *testing.T, dir string) *journal.Writer {
	t.Helper()
	w, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func journalSegBytes(t *testing.T, dir string) []byte {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "journal", "seg-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, s := range segs {
		b, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	return all
}

// TestJournalDisplayOnly: a durable campaign with a journal attached
// must produce a canonical report byte-identical to one without — the
// on/off acceptance invariant at the campaign layer, where checkpoints
// and the StopAfter machinery are also in play.
func TestJournalDisplayOnly(t *testing.T) {
	opts := testOpts()
	want := baseline(t, opts)

	dir := t.TempDir()
	w := openJournalT(t, dir)
	opts.Journal = w
	r := NewRunner(dir, Config{FS: OSFS{}, Interval: testInterval, Keep: 3})
	if err := r.Start(compileT(t), opts, testMeta(), testSeeds); err != nil {
		t.Fatal(err)
	}
	rep, interrupted, err := r.Run()
	if err != nil || interrupted || rep == nil {
		t.Fatalf("journaled run did not complete: err=%v interrupted=%v", err, interrupted)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := CanonicalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("journaling changed the canonical report (%d vs %d bytes)", len(got), len(want))
	}
}

// TestJournalResumeGapless: interrupting a journaled campaign and
// resuming it must leave a journal byte-identical to an uninterrupted
// journaled run's, with the resume truncation invisible in the stream —
// gapless seq, one start, one finish.
func TestJournalResumeGapless(t *testing.T) {
	opts := testOpts()

	// Uninterrupted journaled reference.
	dirA := t.TempDir()
	wA := openJournalT(t, dirA)
	oA := opts
	oA.Journal = wA
	rA := NewRunner(dirA, Config{FS: OSFS{}, Interval: testInterval, Keep: 3})
	if err := rA.Start(compileT(t), oA, testMeta(), testSeeds); err != nil {
		t.Fatal(err)
	}
	if rep, interrupted, err := rA.Run(); err != nil || interrupted || rep == nil {
		t.Fatalf("reference run did not complete: err=%v interrupted=%v", err, interrupted)
	}
	if err := wA.Close(); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: StopAfter kills it past the last checkpoint, so
	// the on-disk journal carries events the checkpoint never saw.
	dirB := t.TempDir()
	wB := openJournalT(t, dirB)
	oB := opts
	oB.Journal = wB
	rB := NewRunner(dirB, Config{FS: OSFS{}, Interval: testInterval, Keep: 3, StopAfter: testStop})
	if err := rB.Start(compileT(t), oB, testMeta(), testSeeds); err != nil {
		t.Fatal(err)
	}
	if _, interrupted, err := rB.Run(); err != nil || !interrupted {
		t.Fatalf("expected interruption: err=%v interrupted=%v", err, interrupted)
	}
	if err := wB.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume with a fresh writer over the same journal directory: Attach
	// → Restore truncates it to the checkpoint's JournalSeq and the
	// replay re-emits the tail.
	ck, warns, err := LoadLatest(OSFS{}, dirB)
	if err != nil {
		t.Fatalf("LoadLatest: %v (warnings %v)", err, warns)
	}
	wB2 := openJournalT(t, dirB)
	oB2 := opts
	oB2.Journal = wB2
	rB2 := NewRunner(dirB, Config{FS: OSFS{}, Interval: testInterval, Keep: 3})
	if err := rB2.Attach(compileT(t), oB2, ck); err != nil {
		t.Fatal(err)
	}
	if got := wB2.Seq(); got != ck.Snap.JournalSeq {
		t.Fatalf("attach truncated journal to seq %d, checkpoint says %d", got, ck.Snap.JournalSeq)
	}
	if rep, interrupted, err := rB2.Run(); err != nil || interrupted || rep == nil {
		t.Fatalf("resumed run did not complete: err=%v interrupted=%v", err, interrupted)
	}
	if err := wB2.Close(); err != nil {
		t.Fatal(err)
	}

	a, b := journalSegBytes(t, dirA), journalSegBytes(t, dirB)
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed journal differs from uninterrupted (%d vs %d bytes)", len(a), len(b))
	}

	events, diag, err := journal.ReadDir(filepath.Join(dirB, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !diag.OK() {
		t.Fatalf("resumed journal not OK: errors=%v gaps=%v", diag.Errors, diag.Gaps)
	}
	counts := journal.KindCounts(events)
	if counts[journal.KindStart] != 1 || counts[journal.KindFinish] != 1 {
		t.Fatalf("want exactly one start and one finish, got %v", counts)
	}

	// The crash findings have flight-recorder context: one dump per bug
	// key, sitting in the journal's flight directory under the same
	// sanitized name as the crash input in crashes/.
	crashNames, err := os.ReadDir(filepath.Join(dirB, "crashes"))
	if err != nil || len(crashNames) == 0 {
		t.Fatalf("no persisted crash inputs: %v", err)
	}
	for _, n := range crashNames {
		dump := filepath.Join(dirB, "journal", journal.FlightDir, "crash-"+n.Name()+".jsonl")
		if _, err := os.Stat(dump); err != nil {
			t.Errorf("crash input %s has no flight dump: %v", n.Name(), err)
		}
	}
}

// TestJournalTornSegmentRecovery: a campaign whose process died mid
// journal write (torn tail) must resume cleanly — the writer drops the
// torn line, and the resumed stream is still gapless.
func TestJournalTornSegmentRecovery(t *testing.T) {
	opts := testOpts()
	dir := t.TempDir()
	w := openJournalT(t, dir)
	o := opts
	o.Journal = w
	r := NewRunner(dir, Config{FS: OSFS{}, Interval: testInterval, Keep: 3, StopAfter: testStop})
	if err := r.Start(compileT(t), o, testMeta(), testSeeds); err != nil {
		t.Fatal(err)
	}
	if _, interrupted, err := r.Run(); err != nil || !interrupted {
		t.Fatalf("expected interruption: err=%v interrupted=%v", err, interrupted)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: a partial, newline-less event line
	// after the last durably flushed one. (Checkpointing flushes the
	// journal, so a real torn tail is always such an in-flight suffix,
	// never a flushed prefix byte.)
	segs, _ := filepath.Glob(filepath.Join(dir, "journal", "seg-*.jsonl"))
	if len(segs) == 0 {
		t.Fatal("no journal segments")
	}
	last := segs[len(segs)-1]
	fh, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteString(`{"seq":99999,"v":1,"kind":"novel`); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	ck, warns, err := LoadLatest(OSFS{}, dir)
	if err != nil {
		t.Fatalf("LoadLatest: %v (warnings %v)", err, warns)
	}
	w2 := openJournalT(t, dir)
	o2 := opts
	o2.Journal = w2
	r2 := NewRunner(dir, Config{FS: OSFS{}, Interval: testInterval, Keep: 3})
	if err := r2.Attach(compileT(t), o2, ck); err != nil {
		t.Fatal(err)
	}
	if rep, interrupted, err := r2.Run(); err != nil || interrupted || rep == nil {
		t.Fatalf("resume over torn journal did not complete: err=%v interrupted=%v", err, interrupted)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, diag, err := journal.ReadDir(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !diag.OK() {
		t.Fatalf("journal not OK after torn-tail resume: errors=%v gaps=%v", diag.Errors, diag.Gaps)
	}
}

// TestJournalCheckpointIdentical: checkpoints written with a journal
// attached must be byte-identical to ones written without — the
// emitted-event counter advances either way, so JournalSeq matches and
// nothing else in the snapshot may depend on the writer.
func TestJournalCheckpointIdentical(t *testing.T) {
	opts := testOpts()
	run := func(w *journal.Writer) *fuzz.Snapshot {
		o := opts
		o.Journal = w
		f, err := fuzz.New(compileT(t), o)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range testSeeds {
			f.AddSeed(s)
		}
		f.Fuzz(testStop)
		return f.Snapshot()
	}
	plain := run(nil)

	dir := t.TempDir()
	w := openJournalT(t, dir)
	journaled := run(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gobSnap(t, plain), gobSnap(t, journaled)) {
		t.Fatal("journaling changed the checkpoint bytes")
	}
}
