package journal

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"
)

// CorpusMeta is the provenance record of one corpus entry: who spawned
// it, which mutation stage produced it, when, and which coverage-map
// cells it discovered first. The fuzz package attaches a []CorpusMeta
// to every Report; the fleet merge concatenates them in (worker, id)
// order, so the merged view is deterministic.
type CorpusMeta struct {
	// Worker is the fleet worker id that found the entry (0 for single
	// campaigns; assigned by the fleet merge).
	Worker int `json:"worker"`
	// ID is the entry's queue index within its worker.
	ID int `json:"id"`
	// Parent is the queue index of the entry the mutation started from
	// (-1 for initial seeds).
	Parent int `json:"parent"`
	// Stage is the discovering mutation stage (seed|havoc|splice|cmplog).
	Stage string `json:"stage"`
	// Depth is the mutation-chain length from the seed corpus.
	Depth int `json:"depth"`
	// Steps is the entry's execution cost.
	Steps int64 `json:"steps"`
	// FoundAt is the campaign execution counter at admission.
	FoundAt int64 `json:"found_at"`
	// Len is the input length in bytes.
	Len int `json:"len"`
	// CovCount is the entry's sparse coverage size.
	CovCount int `json:"cov"`
	// FirstCells lists the map cells (edge ids / path ids, per the
	// campaign's feedback) this entry was first to touch.
	FirstCells []uint32 `json:"first_cells,omitempty"`
}

// Genealogy renders the corpus ancestry DAG as an indented text tree,
// one worker at a time: roots are seeds (parent -1), children sit
// under the entry whose mutation produced them.
func Genealogy(w io.Writer, corpus []CorpusMeta) {
	byWorker := splitWorkers(corpus)
	for _, wid := range workerIDs(byWorker) {
		entries := byWorker[wid]
		if len(byWorker) > 1 {
			fmt.Fprintf(w, "worker %d:\n", wid)
		}
		children := make(map[int][]int)
		var roots []int
		for i, m := range entries {
			if m.Parent < 0 {
				roots = append(roots, i)
			} else {
				children[m.Parent] = append(children[m.Parent], i)
			}
		}
		var walk func(i, depth int)
		seen := make(map[int]bool)
		walk = func(i, depth int) {
			if seen[i] {
				return
			}
			seen[i] = true
			m := entries[i]
			fmt.Fprintf(w, "%s#%-4d %-6s found@%-8d depth=%-2d cov=%-3d first=%-3d len=%d\n",
				strings.Repeat("  ", depth), m.ID, m.Stage, m.FoundAt, m.Depth, m.CovCount, len(m.FirstCells), m.Len)
			for _, c := range children[m.ID] {
				walk(c, depth+1)
			}
		}
		for _, r := range roots {
			walk(r, 0)
		}
		// Orphans (parent beyond the recorded corpus, e.g. a checkpoint
		// predating provenance) still print, flat.
		for i := range entries {
			walk(i, 0)
		}
	}
}

// splitWorkers groups corpus records by worker, each group sorted by
// entry id.
func splitWorkers(corpus []CorpusMeta) map[int][]CorpusMeta {
	out := make(map[int][]CorpusMeta)
	for _, m := range corpus {
		out[m.Worker] = append(out[m.Worker], m)
	}
	for wid := range out {
		g := out[wid]
		sort.Slice(g, func(i, j int) bool { return g[i].ID < g[j].ID })
	}
	return out
}

func workerIDs(m map[int][]CorpusMeta) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// stageOrder fixes the attribution table's row order.
var stageOrder = []string{"seed", "havoc", "splice", "cmplog"}

// stageRow is one line of the discovery-attribution table.
type stageRow struct {
	Stage      string
	Entries    int
	FirstCells int
}

// AttributionRows aggregates per-stage discovery attribution: how many
// corpus entries each mutation stage produced, and how many coverage
// cells those entries were first to discover.
func AttributionRows(corpus []CorpusMeta) []stageRow {
	agg := make(map[string]*stageRow)
	for _, m := range corpus {
		r := agg[m.Stage]
		if r == nil {
			r = &stageRow{Stage: m.Stage}
			agg[m.Stage] = r
		}
		r.Entries++
		r.FirstCells += len(m.FirstCells)
	}
	var rows []stageRow
	for _, s := range stageOrder {
		if r, ok := agg[s]; ok {
			rows = append(rows, *r)
			delete(agg, s)
		}
	}
	var rest []string
	for s := range agg {
		rest = append(rest, s)
	}
	sort.Strings(rest)
	for _, s := range rest {
		rows = append(rows, *agg[s])
	}
	return rows
}

// Attribution renders the per-stage discovery-attribution table: which
// stage found which share of the corpus and of first-discovered
// coverage (the per-feedback attribution the paper's analysis needs —
// cells are edge ids or path ids depending on the campaign feedback,
// named in the caller-supplied label).
func Attribution(w io.Writer, label string, corpus []CorpusMeta) {
	rows := AttributionRows(corpus)
	totalE, totalC := 0, 0
	for _, r := range rows {
		totalE += r.Entries
		totalC += r.FirstCells
	}
	fmt.Fprintf(w, "discovery attribution (%s):\n", label)
	fmt.Fprintf(w, "  %-8s %8s %8s %14s\n", "stage", "entries", "cells", "cell-share")
	for _, r := range rows {
		share := 0.0
		if totalC > 0 {
			share = 100 * float64(r.FirstCells) / float64(totalC)
		}
		fmt.Fprintf(w, "  %-8s %8d %8d %13.1f%%\n", r.Stage, r.Entries, r.FirstCells, share)
	}
	fmt.Fprintf(w, "  %-8s %8d %8d\n", "total", totalE, totalC)
}

// RarityBucket is one row of the path-rarity histogram: cells touched
// by [Lo, Hi] corpus entries.
type RarityBucket struct {
	Lo, Hi int
	Cells  int
}

// RarityBuckets computes the path-rarity histogram: for every covered
// map cell, how many corpus entries touch it, bucketed by powers of
// two. Cells in low buckets are rare paths — the coverage only a few
// inputs reach, the frontier path-sensitive feedback is supposed to
// protect.
func RarityBuckets(corpus []CorpusMeta, cellCount func(m CorpusMeta) []uint32) []RarityBucket {
	counts := make(map[uint32]int)
	for _, m := range corpus {
		for _, c := range cellCount(m) {
			counts[c]++
		}
	}
	var buckets []RarityBucket
	for lo := 1; ; lo *= 2 {
		hi := lo*2 - 1
		b := RarityBucket{Lo: lo, Hi: hi}
		for _, n := range counts {
			if n >= lo && n <= hi {
				b.Cells++
			}
		}
		if b.Cells > 0 {
			buckets = append(buckets, b)
		}
		over := 0
		for _, n := range counts {
			if n > hi {
				over++
			}
		}
		if over == 0 {
			break
		}
	}
	return buckets
}

// Rarity renders the path-rarity histogram over first-discovered cells.
func Rarity(w io.Writer, corpus []CorpusMeta) {
	// Rarity counts every entry that covers a cell; FirstCells only
	// credits the discoverer, so rebuild per-cell touch counts from the
	// recorded sparse coverage sizes we have: FirstCells is the
	// discovery set, the per-entry Cov the magnitude. Without full
	// per-entry coverage in the metadata the histogram uses the
	// discovery sets, which bounds rarity from below.
	buckets := RarityBuckets(corpus, func(m CorpusMeta) []uint32 { return m.FirstCells })
	fmt.Fprintf(w, "path-rarity histogram (entries touching each first-discovered cell):\n")
	if len(buckets) == 0 {
		fmt.Fprintf(w, "  (no cell provenance recorded)\n")
		return
	}
	max := 0
	for _, b := range buckets {
		if b.Cells > max {
			max = b.Cells
		}
	}
	for _, b := range buckets {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", 1+b.Cells*40/max)
		}
		rng := fmt.Sprintf("%d", b.Lo)
		if b.Hi != b.Lo {
			rng = fmt.Sprintf("%d-%d", b.Lo, b.Hi)
		}
		fmt.Fprintf(w, "  %8s %6d %s\n", rng, b.Cells, bar)
	}
}

// CellResolver maps a coverage-map cell to a human-readable program
// meaning ("edge main b2→b5 (line 14)"). Package covmap provides one
// per ⟨subject, feedback⟩; journal stays a leaf package and only
// renders what it is handed. A nil resolver renders raw cell indices.
type CellResolver func(cell uint32) string

// coverageDeltaCap bounds rendered novelty rows so a long campaign's
// report stays readable; the cap is reported, never silent.
const coverageDeltaCap = 500

// CoverageDelta renders the per-cycle coverage-delta attribution
// stream: which cells each novel input lit, grouped by queue cycle and
// resolved to source meaning via the resolver. The underlying data is
// the journaled novelty events' Cells payload — nothing here re-reads
// fuzzer state.
func CoverageDelta(w io.Writer, events []Event, resolve CellResolver) {
	fmt.Fprintf(w, "coverage-delta attribution (cells each novel input lit):\n")
	cycle := -1
	rows, skipped := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case KindCycle:
			cycle = ev.Cycle
		case KindNovelty:
			if rows >= coverageDeltaCap {
				skipped++
				continue
			}
			rows++
			if cycle >= 0 {
				fmt.Fprintf(w, "  cycle %d ", cycle)
			} else {
				fmt.Fprintf(w, "  warmup ")
			}
			entry := -1
			if ev.Entry != nil {
				entry = *ev.Entry
			}
			fmt.Fprintf(w, "exec %d %s entry #%d w%d: %d cells\n", ev.Execs, ev.Stage, entry, ev.Worker, len(ev.Cells))
			for i, c := range ev.Cells {
				if i >= 8 {
					fmt.Fprintf(w, "    … %d more\n", len(ev.Cells)-i)
					break
				}
				if resolve != nil {
					fmt.Fprintf(w, "    %05d %s\n", c, resolve(c))
				} else {
					fmt.Fprintf(w, "    %05d\n", c)
				}
			}
		}
	}
	if rows == 0 {
		fmt.Fprintf(w, "  (no novelty events)\n")
	}
	if skipped > 0 {
		fmt.Fprintf(w, "  … %d further novelty events omitted\n", skipped)
	}
}

// EventAttribution renders per-stage discovery counts straight from a
// journal stream (novelty and crash events), for `paprof -journal`
// where no checkpoint is at hand.
func EventAttribution(w io.Writer, events []Event) {
	type row struct{ novelty, cells, crashes int }
	agg := make(map[string]*row)
	get := func(stage string) *row {
		if stage == "" {
			stage = "?"
		}
		r := agg[stage]
		if r == nil {
			r = &row{}
			agg[stage] = r
		}
		return r
	}
	for _, ev := range events {
		switch ev.Kind {
		case KindNovelty:
			r := get(ev.Stage)
			r.novelty++
			r.cells += len(ev.Cells)
		case KindCrash:
			get(ev.Stage).crashes++
		}
	}
	fmt.Fprintf(w, "  %-8s %8s %8s %8s\n", "stage", "novelty", "cells", "crashes")
	var stages []string
	for _, s := range stageOrder {
		if _, ok := agg[s]; ok {
			stages = append(stages, s)
		}
	}
	var rest []string
	for s := range agg {
		seen := false
		for _, t := range stageOrder {
			if s == t {
				seen = true
			}
		}
		if !seen {
			rest = append(rest, s)
		}
	}
	sort.Strings(rest)
	stages = append(stages, rest...)
	for _, s := range stages {
		r := agg[s]
		fmt.Fprintf(w, "  %-8s %8d %8d %8d\n", s, r.novelty, r.cells, r.crashes)
	}
}

// ProvenanceCSV renders the corpus provenance as CSV — the per-run
// summary evalharness drops next to its coverage-curve files.
func ProvenanceCSV(corpus []CorpusMeta) []byte {
	var b strings.Builder
	b.WriteString("worker,id,parent,stage,depth,steps,found_at,len,cov,first_cells\n")
	for _, m := range corpus {
		fmt.Fprintf(&b, "%d,%d,%d,%s,%d,%d,%d,%d,%d,%d\n",
			m.Worker, m.ID, m.Parent, m.Stage, m.Depth, m.Steps, m.FoundAt, m.Len, m.CovCount, len(m.FirstCells))
	}
	return []byte(b.String())
}

// HTMLReport renders the genealogy, attribution, and rarity views as a
// self-contained HTML page (the telemetry dashboard's /genealogy).
// With a non-nil resolver and journaled events, a coverage-delta
// attribution section resolves each novel input's cells to source.
func HTMLReport(title, label string, corpus []CorpusMeta, events []Event, resolve CellResolver) []byte {
	var b strings.Builder
	b.WriteString("<!doctype html><html><head><meta charset=\"utf-8\"><title>")
	b.WriteString(html.EscapeString(title))
	b.WriteString(`</title><style>
body{font-family:monospace;background:#111;color:#ddd;margin:2em}
h1,h2{color:#8cf} table{border-collapse:collapse;margin:1em 0}
td,th{border:1px solid #444;padding:2px 10px;text-align:right}
th{color:#8cf} td.l,th.l{text-align:left} pre{color:#bbb}
</style></head><body>`)
	fmt.Fprintf(&b, "<h1>%s</h1>", html.EscapeString(title))

	b.WriteString("<h2>discovery attribution</h2><table><tr><th class=l>stage</th><th>entries</th><th>first cells</th></tr>")
	for _, r := range AttributionRows(corpus) {
		fmt.Fprintf(&b, "<tr><td class=l>%s</td><td>%d</td><td>%d</td></tr>", html.EscapeString(r.Stage), r.Entries, r.FirstCells)
	}
	b.WriteString("</table>")

	b.WriteString("<h2>path rarity</h2><pre>")
	var rb strings.Builder
	Rarity(&rb, corpus)
	b.WriteString(html.EscapeString(rb.String()))
	b.WriteString("</pre>")

	b.WriteString("<h2>genealogy</h2><pre>")
	var gb strings.Builder
	Genealogy(&gb, corpus)
	b.WriteString(html.EscapeString(gb.String()))
	b.WriteString("</pre>")

	if len(events) > 0 {
		fmt.Fprintf(&b, "<h2>journal (%d events)</h2><table><tr><th class=l>kind</th><th>count</th></tr>", len(events))
		counts := KindCounts(events)
		var kinds []string
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(&b, "<tr><td class=l>%s</td><td>%d</td></tr>", html.EscapeString(k), counts[k])
		}
		b.WriteString("</table><h2>journal attribution</h2><pre>")
		var eb strings.Builder
		EventAttribution(&eb, events)
		b.WriteString(html.EscapeString(eb.String()))
		b.WriteString("</pre>")

		b.WriteString("<h2>coverage-delta attribution</h2><pre>")
		var cb strings.Builder
		CoverageDelta(&cb, events, resolve)
		b.WriteString(html.EscapeString(cb.String()))
		b.WriteString("</pre>")
	}
	fmt.Fprintf(&b, "<p>%s</p>", html.EscapeString(label))
	b.WriteString("</body></html>")
	return []byte(b.String())
}
