package evalharness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/lang"
	"repro/internal/strategy"
	"repro/internal/triage"
	"repro/internal/vm"
)

// fabricate builds a SuiteResult from hand-written bug/crash/queue data
// so the table arithmetic can be tested without running campaigns.
func fabricate(t *testing.T) *SuiteResult {
	t.Helper()
	cfg := Config{
		Subjects: []string{"alpha", "beta"},
		Fuzzers:  []strategy.Name{strategy.Path, strategy.PCGuard, strategy.Cull, strategy.Opp, strategy.PathAFL, strategy.AFL, strategy.CullR},
		Runs:     2,
	}
	sr := &SuiteResult{Cfg: cfg, Results: map[string]map[strategy.Name][]*RunResult{}}
	mkCrash := func(fn string, line int) *vm.Crash {
		return &vm.Crash{
			Kind:  vm.KindAbort,
			Func:  fn,
			Pos:   lang.Pos{Line: line, Col: 1},
			Stack: []vm.Frame{{Func: fn, Pos: lang.Pos{Line: line, Col: 1}}},
		}
	}
	mkRun := func(queue int, edges []uint32, bugs ...string) *RunResult {
		rep := &fuzz.Report{
			QueueLen: queue,
			Bugs:     map[string]*fuzz.CrashRec{},
		}
		for _, b := range bugs {
			// The function name alone identifies a fabricated bug; a
			// fixed line keeps "bugC" the same key in every run.
			c := mkCrash(b, 1)
			rec := &fuzz.CrashRec{Crash: c, Count: 1}
			rep.Bugs[c.BugKey()] = rec
			rep.Crashes = append(rep.Crashes, rec)
		}
		rep.Stats.Execs = 100
		es := triage.NewSet[uint32]()
		for _, e := range edges {
			es.Add(e)
		}
		return &RunResult{Report: rep, EdgeSet: es}
	}
	for _, sub := range cfg.Subjects {
		sr.Results[sub] = map[strategy.Name][]*RunResult{}
		for _, f := range cfg.Fuzzers {
			sr.Results[sub][f] = []*RunResult{
				mkRun(10, []uint32{1, 2, 3}),
				mkRun(20, []uint32{2, 3, 4}),
			}
		}
	}
	// alpha: path finds bugA+bugB across runs, pcguard finds bugB+bugC.
	sr.Results["alpha"][strategy.Path][0] = mkRun(30, []uint32{1, 2}, "bugA")
	sr.Results["alpha"][strategy.Path][1] = mkRun(50, []uint32{2, 5}, "bugB")
	sr.Results["alpha"][strategy.PCGuard][0] = mkRun(10, []uint32{1, 2, 3}, "bugB", "bugC")
	sr.Results["alpha"][strategy.PCGuard][1] = mkRun(12, []uint32{1, 3}, "bugC")
	return sr
}

func TestCumulativeSetArithmetic(t *testing.T) {
	sr := fabricate(t)
	path := sr.CumulativeBugs("alpha", strategy.Path)
	pcg := sr.CumulativeBugs("alpha", strategy.PCGuard)
	if path.Len() != 2 || pcg.Len() != 2 {
		t.Fatalf("cumulative sizes: path=%d pcg=%d", path.Len(), pcg.Len())
	}
	if triage.Intersect(path, pcg).Len() != 1 {
		t.Errorf("intersection wrong")
	}
	if triage.Subtract(path, pcg).Len() != 1 || triage.Subtract(pcg, path).Len() != 1 {
		t.Errorf("subtractions wrong")
	}
	edges := sr.CumulativeEdges("alpha", strategy.Path)
	if edges.Len() != 3 { // {1,2} ∪ {2,5}
		t.Errorf("cumulative edges = %d", edges.Len())
	}
}

func TestMedianQueueLowerMiddle(t *testing.T) {
	sr := fabricate(t)
	// alpha/path queues are 30 and 50: even count reports the lower
	// middle (30).
	if q := sr.medianQueue("alpha", strategy.Path); q != 30 {
		t.Errorf("median queue = %d, want 30", q)
	}
}

func TestFabricatedTablesRender(t *testing.T) {
	sr := fabricate(t)
	var buf bytes.Buffer
	sr.Table2(&buf)
	sr.Table3(&buf)
	sr.Table4(&buf)
	sr.Table6(&buf)
	sr.Table7(&buf)
	sr.Table8(&buf)
	sr.Table9(&buf)
	sr.Table10(&buf)
	sr.Figure3(&buf)
	out := buf.String()
	// Table II row for alpha must contain path's "2 (2)" cell and the
	// pairwise subtraction "1 (...)" cells.
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2 (2)") {
		t.Errorf("Table II cells missing:\n%s", out)
	}
	// Figure 3's first Venn line: path-only 1 | common 1 | pcguard-only 1.
	if !strings.Contains(out, "path-only 1 | common 1 | pcguard-only 1") {
		t.Errorf("Figure 3 decomposition wrong:\n%s", out)
	}
}

func TestTotalBugsAcrossSubjects(t *testing.T) {
	sr := fabricate(t)
	if got := sr.TotalBugs(strategy.Path).Len(); got != 2 {
		t.Errorf("TotalBugs(path) = %d, want 2", got)
	}
	all := sr.AllBugs("alpha")
	if all.Len() != 3 { // bugA, bugB, bugC
		t.Errorf("AllBugs = %d, want 3", all.Len())
	}
}

func TestOppRecoveryArithmetic(t *testing.T) {
	sr := fabricate(t)
	// Give opp a phase-1 report with 2 bugs, one of which phase 2
	// rediscovers.
	p1 := &fuzz.Report{Bugs: map[string]*fuzz.CrashRec{}}
	for _, name := range []string{"x", "y"} {
		c := &vm.Crash{Kind: vm.KindAbort, Func: name, Pos: lang.Pos{Line: 1}}
		p1.Bugs[c.BugKey()] = &fuzz.CrashRec{Crash: c}
	}
	p2 := &fuzz.Report{Bugs: map[string]*fuzz.CrashRec{}, Stats: fuzz.Stats{Execs: 1}}
	cx := &vm.Crash{Kind: vm.KindAbort, Func: "x", Pos: lang.Pos{Line: 1}}
	p2.Bugs[cx.BugKey()] = &fuzz.CrashRec{Crash: cx}
	sr.Results["alpha"][strategy.Opp][0] = &RunResult{Report: p2, Phase1: p1, EdgeSet: triage.NewSet[uint32]()}
	phase1, rec := sr.OppRecovery()
	if phase1 != 2 || rec != 1 {
		t.Errorf("OppRecovery = (%d,%d), want (2,1)", phase1, rec)
	}
}
