package vm_test

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/langgen"
	"repro/internal/vm"
)

func run(t testing.TB, src string, input []byte) vm.Result {
	t.Helper()
	p, err := cfg.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return vm.Run(p, "main", input, vm.NullTracer{}, vm.DefaultLimits())
}

func expectRet(t *testing.T, src string, input []byte, want int64) {
	t.Helper()
	res := run(t, src, input)
	if res.Status != vm.StatusOK {
		t.Fatalf("status %v (crash: %v)", res.Status, res.Crash)
	}
	if res.Ret != want {
		t.Errorf("ret = %d, want %d", res.Ret, want)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 3", 3},
		{"10 % 3", 1},
		{"-7 / 2", -3}, // Go/C truncating division
		{"-7 % 2", -1},
		{"1 << 10", 1024},
		{"1024 >> 3", 128},
		{"6 & 3", 2},
		{"6 | 3", 7},
		{"6 ^ 3", 5},
		{"~0", -1},
		{"-(5)", -5},
		{"!0", 1},
		{"!7", 0},
		{"3 < 4", 1},
		{"4 <= 4", 1},
		{"5 > 6", 0},
		{"5 >= 6", 0},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 0", 0},
		{"0 || 9", 1},
		{"abs(-4)", 4},
		{"min(3, 9)", 3},
		{"max(3, 9)", 9},
	}
	for _, c := range cases {
		expectRet(t, "func main(input) { return "+c.expr+"; }", nil, c.want)
	}
}

func TestShortCircuitSkipsRHS(t *testing.T) {
	// If && evaluated its RHS eagerly this would crash on an empty
	// input.
	expectRet(t, `func main(input) {
        if (len(input) > 0 && input[0] == 'x') { return 1; }
        return 0;
    }`, nil, 0)
	expectRet(t, `func main(input) {
        if (len(input) == 0 || input[0] == 'x') { return 1; }
        return 0;
    }`, nil, 1)
}

func TestInputArrayAndStrings(t *testing.T) {
	expectRet(t, `func main(input) { return input[0] + input[2]; }`, []byte{10, 0, 32}, 42)
	expectRet(t, `func main(input) { var s = "AB"; return s[0] + s[1]; }`, nil, 'A'+'B')
	expectRet(t, `func main(input) { return len("hello"); }`, nil, 5)
	expectRet(t, `func main(input) { return len(input); }`, []byte("abc"), 3)
}

func TestArrays(t *testing.T) {
	expectRet(t, `func main(input) {
        var a = alloc(5);
        a[0] = 7; a[4] = 9;
        return a[0] + a[4] + a[2];
    }`, nil, 16)
}

func TestCallsAndRecursion(t *testing.T) {
	expectRet(t, `
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main(input) { return fib(12); }`, nil, 144)
}

func TestLoops(t *testing.T) {
	expectRet(t, `func main(input) {
        var s = 0;
        for (var i = 1; i <= 10; i = i + 1) { s = s + i; }
        return s;
    }`, nil, 55)
	expectRet(t, `func main(input) {
        var s = 0;
        var i = 0;
        while (1) {
            i = i + 1;
            if (i == 4) { continue; }
            if (i > 7) { break; }
            s = s + i;
        }
        return s;
    }`, nil, 1+2+3+5+6+7)
}

func TestOutput(t *testing.T) {
	res := run(t, `func main(input) { out(1); out(2); out(3); return 0; }`, nil)
	if len(res.Output) != 3 || res.Output[0] != 1 || res.Output[2] != 3 {
		t.Errorf("output = %v", res.Output)
	}
}

func expectCrash(t *testing.T, src string, input []byte, kind vm.CrashKind) *vm.Crash {
	t.Helper()
	res := run(t, src, input)
	if res.Status != vm.StatusCrash {
		t.Fatalf("status %v, want crash %v", res.Status, kind)
	}
	if res.Crash.Kind != kind {
		t.Fatalf("crash kind %v, want %v (%s)", res.Crash.Kind, kind, res.Crash)
	}
	return res.Crash
}

func TestSanitizerKinds(t *testing.T) {
	expectCrash(t, `func main(input) { var a = alloc(2); return a[2]; }`, nil, vm.KindOOBRead)
	expectCrash(t, `func main(input) { var a = alloc(2); return a[-1]; }`, nil, vm.KindOOBRead)
	expectCrash(t, `func main(input) { var a = alloc(2); a[5] = 1; return 0; }`, nil, vm.KindOOBWrite)
	expectCrash(t, `func main(input) { var a = 0; return a[0]; }`, nil, vm.KindNullDeref)
	expectCrash(t, `func main(input) { var a = 99; return a[0]; }`, nil, vm.KindWildPointer)
	expectCrash(t, `func main(input) { return 1 / (len(input) - len(input)); }`, nil, vm.KindDivByZero)
	expectCrash(t, `func main(input) { return 1 % (len(input) - len(input)); }`, nil, vm.KindDivByZero)
	expectCrash(t, `func main(input) { var x = 0 - 9223372036854775807 - 1; return x / -1; }`, nil, vm.KindDivByZero)
	expectCrash(t, `func main(input) { var a = alloc(-1); return 0; }`, nil, vm.KindBadAlloc)
	expectCrash(t, `func main(input) { var a = alloc(99999999); return 0; }`, nil, vm.KindBadAlloc)
	expectCrash(t, `func main(input) { assert(len(input) == 99); return 0; }`, nil, vm.KindAssertFail)
	expectCrash(t, `func main(input) { abort(); return 0; }`, nil, vm.KindAbort)
	expectCrash(t, `func f(n) { return f(n + 1); } func main(input) { return f(0); }`, nil, vm.KindStackOverflow)
	expectCrash(t, `func main(input) { return len(0); }`, nil, vm.KindNullDeref)
}

func TestOOMCrash(t *testing.T) {
	// Repeated allocations exceed the heap cap before the step budget.
	expectCrash(t, `func main(input) {
        var i = 0;
        while (1) {
            var a = alloc(1000000);
            i = i + 1;
        }
        return i;
    }`, nil, vm.KindOOM)
}

func TestTimeout(t *testing.T) {
	res := run(t, `func main(input) { while (1) { } return 0; }`, nil)
	if res.Status != vm.StatusTimeout {
		t.Fatalf("status %v, want timeout", res.Status)
	}
	if res.Crash != nil {
		t.Error("timeout must not be reported as a crash")
	}
}

func TestCrashReportDetails(t *testing.T) {
	c := expectCrash(t, `
func inner(a) { a[9] = 1; return 0; }
func outer(a) { return inner(a); }
func main(input) {
    var a = alloc(2);
    return outer(a);
}`, nil, vm.KindOOBWrite)
	if c.Func != "inner" {
		t.Errorf("crash func = %q", c.Func)
	}
	if len(c.Stack) != 3 {
		t.Fatalf("stack depth = %d, want 3: %s", len(c.Stack), c)
	}
	if c.Stack[0].Func != "inner" || c.Stack[1].Func != "outer" || c.Stack[2].Func != "main" {
		t.Errorf("stack order wrong: %s", c)
	}
	if c.BugKey() == "" || c.StackHash(5) == 0 {
		t.Error("identity helpers empty")
	}
	// Stack hash depends on depth prefix.
	if c.StackHash(1) == c.StackHash(3) {
		t.Error("stack hash ignores depth")
	}
}

func TestCmpObservations(t *testing.T) {
	res := run(t, `func main(input) {
        if (len(input) == 7) { return 1; }
        if (input[0] == 'Z') { return 2; }
        return 0;
    }`, []byte("ab"))
	found := false
	for _, c := range res.Cmps {
		if (c.A == 2 && c.B == 7) || (c.A == 7 && c.B == 2) {
			found = true
		}
	}
	if !found {
		t.Errorf("len comparison not captured: %v", res.Cmps)
	}
}

func TestDeterminism(t *testing.T) {
	src := `func main(input) {
        var s = 0;
        for (var i = 0; i < len(input); i = i + 1) {
            s = s * 31 + input[i];
        }
        return s;
    }`
	a := run(t, src, []byte("determinism"))
	b := run(t, src, []byte("determinism"))
	if a.Ret != b.Ret || a.Steps != b.Steps {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", a.Ret, a.Steps, b.Ret, b.Steps)
	}
}

func TestMissingEntry(t *testing.T) {
	p, err := cfg.Compile(`func f(a) { return a; }`)
	if err != nil {
		t.Fatal(err)
	}
	res := vm.Run(p, "main", nil, vm.NullTracer{}, vm.DefaultLimits())
	if res.Status != vm.StatusCrash {
		t.Error("missing entry should crash")
	}
}

func TestShiftMasking(t *testing.T) {
	// Out-of-range and negative shift amounts are defined (masked to
	// 0-63) rather than trapping.
	expectRet(t, `func main(input) { return 1 << 64; }`, nil, 1)
	expectRet(t, `func main(input) { return 1 << 65; }`, nil, 2)
	expectRet(t, `func main(input) { return 16 >> (0 - 63); }`, nil, 8)
}

// TestRandomProgramsNeverCrashVM is the VM property test: generated
// programs are crash-free by construction, so any sanitizer report or
// non-OK status indicates a frontend or VM defect. Timeouts are also
// forbidden (generated loops are bounded).
func TestRandomProgramsNeverCrashVM(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := langgen.Generate(rng, langgen.Default())
		p, err := cfg.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		input := make([]byte, rng.Intn(32))
		rng.Read(input)
		// Generated programs always terminate but nested bounded loops
		// with helper calls can exceed the default fuzzing step budget;
		// the property under test is crash-freedom, so give headroom.
		lim := vm.DefaultLimits()
		lim.MaxSteps = 1 << 26
		res := vm.Run(p, "main", input, vm.NullTracer{}, lim)
		if res.Status != vm.StatusOK {
			t.Fatalf("seed %d: status %v crash=%v\n%s", seed, res.Status, res.Crash, src)
		}
		// And deterministically so.
		res2 := vm.Run(p, "main", input, vm.NullTracer{}, lim)
		if res.Ret != res2.Ret || res.Steps != res2.Steps {
			t.Fatalf("seed %d: nondeterministic execution", seed)
		}
	}
}
