package subjects

import (
	"strings"
	"testing"

	"repro/internal/balllarus"
	"repro/internal/vm"
)

// TestInventoryTotals pins the documented inventory: DESIGN.md's
// subject table claims 71 witness-verified bugs, 19 path-dependent,
// 1 unreachable.
func TestInventoryTotals(t *testing.T) {
	total, pd, unreachable := 0, 0, 0
	for _, s := range All() {
		for _, b := range s.Bugs {
			total++
			if b.PathDependent {
				pd++
			}
			if b.Unreachable {
				unreachable++
			}
		}
	}
	if total != 71 || pd != 19 || unreachable != 1 {
		t.Errorf("inventory = (%d bugs, %d path-dependent, %d unreachable), DESIGN.md documents (71, 19, 1)",
			total, pd, unreachable)
	}
}

// TestBugMetadataComplete: every bug has an ID, a comment explaining
// the trigger, and consistent naming (subject prefix).
func TestBugMetadataComplete(t *testing.T) {
	for _, s := range All() {
		for _, b := range s.Bugs {
			if b.ID == "" {
				t.Errorf("%s: bug with empty ID", s.Name)
			}
			if b.Comment == "" {
				t.Errorf("%s/%s: no comment", s.Name, b.ID)
			}
			if b.WantFunc == "" {
				t.Errorf("%s/%s: no expected function", s.Name, b.ID)
			}
		}
	}
}

// TestSubjectsAreNumerable: every function of every subject must be
// Ball-Larus-numerable (no hash fallbacks in the benchmark suite), so
// the evaluation exercises the paper's encoding everywhere.
func TestSubjectsAreNumerable(t *testing.T) {
	for _, s := range All() {
		prog := s.MustProgram()
		for _, f := range prog.Funcs {
			if _, err := balllarus.Encode(f); err != nil {
				t.Errorf("%s/%s: %v", s.Name, f.Name, err)
			}
		}
	}
}

// TestSubjectsHaveLoops: queue-explosion dynamics need loops and branch
// density; every subject should have at least one back edge somewhere.
func TestSubjectsHaveLoops(t *testing.T) {
	for _, s := range All() {
		prog := s.MustProgram()
		back := 0
		for _, f := range prog.Funcs {
			back += f.NumBackEdges()
		}
		if back == 0 {
			t.Errorf("%s: no loops at all", s.Name)
		}
	}
}

// TestWitnessesAreMinimalish: witnesses should be small (they document
// the trigger; multi-kilobyte blobs would obscure it). The recursion
// witnesses are the legitimate exception.
func TestWitnessesAreMinimalish(t *testing.T) {
	for _, s := range All() {
		for _, b := range s.Bugs {
			if len(b.Witness) > 300 {
				if b.WantKind == vm.KindStackOverflow {
					continue
				}
				t.Errorf("%s/%s: witness is %d bytes", s.Name, b.ID, len(b.Witness))
			}
		}
	}
}

// TestTypeLabelsMatchPaper: the Table I language column.
func TestTypeLabelsMatchPaper(t *testing.T) {
	want := map[string]string{
		"cflow": "C", "exiv2": "C++", "ffmpeg": "C", "flvmeta": "C",
		"gdk": "C", "imginfo": "C", "infotocap": "C", "jhead": "C",
		"jq": "C", "lame": "C/C++", "mp3gain": "C", "mp42aac": "C++",
		"mujs": "C", "nm-new": "C", "objdump": "C", "pdftotext": "C/C++",
		"sqlite3": "C", "tiffsplit": "C",
	}
	for name, label := range want {
		s := Get(name)
		if s == nil {
			t.Errorf("missing subject %s", name)
			continue
		}
		if s.TypeLabel != label {
			t.Errorf("%s: label %q, want %q", name, s.TypeLabel, label)
		}
	}
}

// TestSourcesMentionBugs: each subject's MiniC source documents its
// planted bugs inline (BUG markers), keeping source and inventory in
// sync for readers.
func TestSourcesMentionBugs(t *testing.T) {
	for _, s := range All() {
		if !strings.Contains(s.Source, "BUG") {
			t.Errorf("%s: source has no BUG markers", s.Name)
		}
	}
}
