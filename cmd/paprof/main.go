// Command paprof is a standalone Ball-Larus path profiler for MiniC
// programs: it compiles a program, numbers the acyclic paths of every
// function, runs the provided inputs, and prints per-path execution
// frequencies with regenerated block sequences — the Figure 1 machinery
// as a tool.
//
// Usage:
//
//	paprof -subject flvmeta -input 'FLV...'
//	paprof -src prog.mc -input-file input.bin -stats
//	paprof -subject flvmeta -facts
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"repro/internal/analysis/interproc"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/subjects"
	"repro/internal/vm"
)

func main() {
	var (
		subjectName = flag.String("subject", "", "benchmark subject to profile")
		srcPath     = flag.String("src", "", "MiniC source file to profile")
		inputStr    = flag.String("input", "", "input bytes (literal)")
		inputFile   = flag.String("input-file", "", "file holding the input bytes")
		statsOnly   = flag.Bool("stats", false, "print per-function path statistics only")
		factsDump   = flag.Bool("facts", false, "print the interprocedural analysis facts (per-branch input-dependency byte ranges, branch correlations, infeasible paths, cmp skip ratio) and exit")
		topN        = flag.Int("top", 20, "show the N hottest paths")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile at exit to this file")
		tracePath   = flag.String("trace", "", "write a runtime execution trace of the run to this file (inspect with go tool trace)")
		engineName  = flag.String("engine", "", "also re-execute the input in a loop under this execution engine (bytecode|cgt|interp) so -cpuprofile/-memprofile capture engine hot paths")
		engineExecs = flag.Int("execs", 10000, "repeat count for the -engine profiling loop")
		journalDir  = flag.String("journal", "", "validate and summarise a campaign's event journal (state dir or journal dir) and exit; exit status 1 on gaps or schema errors")
		genealogy   = flag.String("genealogy", "", "render corpus genealogy, discovery attribution, and path rarity from a campaign (or fleet) state directory and exit")
		explainDir  = flag.String("explain", "", "print the source-level meaning of every observed coverage-map cell from a campaign (or fleet) state directory and exit; exit status 1 if any cell is unresolvable")
		covReport   = flag.String("coverage-report", "", "render the annotated-source coverage report, per-function path-discovery counts, and frontier explorer from a campaign (or fleet) state directory and exit; exit status 1 if any observed cell is unresolvable")
		htmlOut     = flag.String("html", "", "with -genealogy or -coverage-report: also write the report as a self-contained HTML page to this file")
	)
	flag.Parse()

	// The forensics modes work offline from a state directory — no
	// target, no execution — so they run before the -subject/-src check.
	if *journalDir != "" {
		runJournal(*journalDir)
		return
	}
	if *genealogy != "" {
		runGenealogy(*genealogy, *htmlOut)
		return
	}
	if *explainDir != "" {
		runExplain(*explainDir)
		return
	}
	if *covReport != "" {
		runCoverageReport(*covReport, *htmlOut)
		return
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatalf("trace: %v", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fatalf("trace: %v", err)
		}
		defer trace.Stop()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("memprofile: %v", err)
			}
		}()
	}

	var target *core.Target
	switch {
	case *subjectName != "":
		sub := subjects.Get(*subjectName)
		if sub == nil {
			fatalf("unknown subject %q", *subjectName)
		}
		prog, err := sub.Program()
		if err != nil {
			fatalf("%v", err)
		}
		target = core.FromProgram(prog)
	case *srcPath != "":
		src, err := os.ReadFile(*srcPath)
		if err != nil {
			fatalf("%v", err)
		}
		target, err = core.Compile(string(src))
		if err != nil {
			fatalf("compile: %v", err)
		}
	default:
		fatalf("one of -subject or -src is required")
	}

	if *factsDump {
		interproc.ForProgram(target.Prog).Dump(os.Stdout)
		return
	}

	fmt.Println("function            blocks edges back  acyclic-paths probes(naive/opt)")
	for _, ps := range target.PathReport() {
		if ps.HashedFallback {
			fmt.Printf("%-20s %5d %5d %4d  (hash fallback: too many paths)\n",
				ps.Func, ps.Blocks, ps.Edges, ps.BackEdges)
			continue
		}
		fmt.Printf("%-20s %5d %5d %4d  %12d  %d/%d\n",
			ps.Func, ps.Blocks, ps.Edges, ps.BackEdges, ps.NumPaths,
			ps.ProbesNaive, ps.ProbesOptimal)
	}
	if *statsOnly {
		return
	}

	var input []byte
	switch {
	case *inputFile != "":
		b, err := os.ReadFile(*inputFile)
		if err != nil {
			fatalf("%v", err)
		}
		input = b
	default:
		input = []byte(*inputStr)
	}

	prof, err := target.PathProfiler()
	if err != nil {
		fatalf("%v", err)
	}
	res := prof.Profile("main", input, vm.DefaultLimits())
	fmt.Printf("\nexecution: status=%v steps=%d ret=%d\n", res.Status, res.Steps, res.Ret)
	if res.Crash != nil {
		fmt.Printf("crash: %s\n", res.Crash)
	}
	fmt.Printf("\nhottest acyclic paths:\n")
	for i, pc := range prof.Counts() {
		if i >= *topN {
			break
		}
		var blocks []string
		for _, s := range pc.Blocks {
			b := fmt.Sprintf("b%d", s.Block)
			if s.EnterViaBackEdge {
				b = "↺" + b
			}
			if s.ExitViaBackEdge {
				b += "↺"
			}
			blocks = append(blocks, b)
		}
		fmt.Printf("  %-16s path %-6d x%-6d  %s\n", pc.Func, pc.PathID, pc.Count, strings.Join(blocks, "→"))
	}

	if *engineName != "" {
		runEngineLoop(target, *engineName, input, *engineExecs)
	}
}

// runEngineLoop re-executes the input under the selected engine so the
// process-level CPU/mem profiles capture the engine's hot paths rather
// than the path profiler's. For the CGT engine every map cell the
// warm-up run touched is marked consumed before patching: replaying a
// fixed input can never reproduce novelty past its first execution, so
// the patched run is the steady-state fast path a campaign would
// execute for this input.
func runEngineLoop(target *core.Target, engineName string, input []byte, execs int) {
	eng, err := fuzz.ParseEngine(engineName)
	if err != nil {
		fatalf("%v", err)
	}
	lim := vm.DefaultLimits()
	m := coverage.NewMap(coverage.DefaultMapSize)
	var run func() vm.Result
	switch eng {
	case fuzz.EngineInterp:
		tr, err := instrument.New(instrument.FeedbackPath, target.Prog, m, instrument.Config{})
		if err != nil {
			fatalf("%v", err)
		}
		run = func() vm.Result { return vm.Run(target.Prog, target.Entry, input, tr, lim) }
	default:
		cp, ok := instrument.CompiledFor(instrument.FeedbackPath, target.Prog, instrument.Config{})
		if !ok {
			fatalf("path feedback has no bytecode lowering")
		}
		if eng == fuzz.EngineCGT {
			patch := bytecode.NewPatchable(cp, m.Len())
			consumed := coverage.NewBitset(m.Len())
			full := bytecode.NewMachine(cp, m, lim)
			m.Reset()
			full.Run(target.Entry, input)
			m.ClassifySparse()
			for _, idx := range m.Indices() {
				consumed.Set(idx)
			}
			elided := patch.Replan(consumed)
			fast := bytecode.NewMachine(patch.Program(), m, lim)
			fast.SetElide(consumed)
			fmt.Printf("\nengine cgt: elided %d/%d static probe sites (%d consumed cells)\n",
				elided, patch.NumSites(), consumed.Count())
			run = func() vm.Result { return fast.Run(target.Entry, input) }
		} else {
			mach := bytecode.NewMachine(cp, m, lim)
			run = func() vm.Result { return mach.Run(target.Entry, input) }
		}
	}
	start := time.Now()
	var last vm.Result
	for i := 0; i < execs; i++ {
		m.Reset()
		last = run()
	}
	el := time.Since(start)
	fmt.Printf("engine %s: %d execs in %s (%.0f ns/exec), status=%v steps=%d\n",
		eng, execs, el.Round(time.Millisecond), float64(el.Nanoseconds())/float64(execs), last.Status, last.Steps)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paprof: "+format+"\n", args...)
	os.Exit(1)
}
