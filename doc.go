// Package repro reproduces "Towards Path-Aware Coverage-Guided Fuzzing"
// (CGO 2026) as a self-contained Go system: a MiniC compiler frontend,
// Ball-Larus acyclic-path instrumentation, a sanitizing interpreter VM,
// an AFL++-like coverage-guided fuzzer with pluggable feedback, the
// culling/opportunistic exploration-biasing strategies, 18
// UNIFUZZ-style benchmark subjects with ground-truth bug inventories,
// and an evaluation harness regenerating every table and figure of the
// paper.
//
// The root package holds the benchmark suite (bench_test.go); the
// library lives under internal/ (see internal/core for the facade) and
// the executables under cmd/.
package repro
