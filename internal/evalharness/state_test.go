package evalharness

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/campaign"
	"repro/internal/strategy"
)

// countFS counts Create calls so tests can assert a restarted suite
// recomputes nothing. The counter is atomic: suite workers save runs
// and curves concurrently.
type countFS struct {
	campaign.FS
	creates atomic.Int64
}

func (c *countFS) Create(name string) (campaign.File, error) {
	c.creates.Add(1)
	return c.FS.Create(name)
}

func durableCfg(dir string, fs campaign.FS) Config {
	return Config{
		Subjects: []string{"flvmeta"},
		Fuzzers:  []strategy.Name{strategy.Path, strategy.Cull},
		Runs:     2,
		Budget:   8000,
		MapSize:  1 << 13,
		BaseSeed: 3,
		Workers:  2,
		StateDir: dir,
		FS:       fs,
	}
}

// TestSuiteDurability runs a durable suite twice: the restart must
// reload every run from disk (zero new run files) and reproduce the
// first suite's results exactly.
func TestSuiteDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	dir := t.TempDir()

	first, err := RunSuite(durableCfg(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(filepath.Join(dir, runsDir))
	if err != nil || len(names) != 4 {
		t.Fatalf("want 4 persisted runs, got %d (%v)", len(names), err)
	}

	cfs := &countFS{FS: campaign.OSFS{}}
	var progress strings.Builder
	cfg := durableCfg(dir, cfs)
	cfg.Progress = &progress
	second, err := RunSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := cfs.creates.Load(); n != 0 {
		t.Errorf("restarted suite wrote %d files, want 0", n)
	}
	if !strings.Contains(progress.String(), "restored") {
		t.Errorf("progress does not mention restored runs:\n%s", progress.String())
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatal("restored suite differs from the original")
	}
}

// TestSuiteDurabilityRejectsStale verifies a corrupt run file and a
// changed configuration both fall back to recomputation.
func TestSuiteDurabilityRejectsStale(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	dir := t.TempDir()
	cfg := durableCfg(dir, nil)
	cfg.Fuzzers = []strategy.Name{strategy.Path}
	first, err := RunSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt one run file: that run is recomputed, results unchanged.
	path := filepath.Join(dir, runsDir, runFileName("flvmeta", strategy.Path, 0))
	if err := os.Truncate(path, 8); err != nil {
		t.Fatal(err)
	}
	second, err := RunSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatal("recomputed run differs after corruption")
	}

	// A different budget must not reuse saved runs.
	cfs := &countFS{FS: campaign.OSFS{}}
	cfg2 := cfg
	cfg2.Budget = 9000
	cfg2.FS = cfs
	if _, err := RunSuite(cfg2); err != nil {
		t.Fatal(err)
	}
	if cfs.creates.Load() == 0 {
		t.Error("changed-budget suite reused stale saved runs")
	}
}
