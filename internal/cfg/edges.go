package cfg

import (
	"errors"
	"fmt"
)

// analyze enumerates CFG edges, wires the per-block edge indices,
// detects loop back edges, and computes loop depths.
func analyze(f *Func) error {
	f.Edges = f.Edges[:0]
	for i := range f.Blocks {
		b := &f.Blocks[i]
		b.EdgeThen, b.EdgeElse = -1, -1
		switch b.Term.Kind {
		case TermJmp:
			b.EdgeThen = len(f.Edges)
			f.Edges = append(f.Edges, Edge{From: i, To: b.Term.Then})
		case TermBr:
			if b.Term.Then == b.Term.Else {
				return fmt.Errorf("block b%d: conditional branch with identical targets", i)
			}
			b.EdgeThen = len(f.Edges)
			f.Edges = append(f.Edges, Edge{From: i, To: b.Term.Then})
			b.EdgeElse = len(f.Edges)
			f.Edges = append(f.Edges, Edge{From: i, To: b.Term.Else})
		case TermRet:
		default:
			return errors.New("block with unknown terminator")
		}
	}
	markBackEdges(f)
	computeLoopDepths(f)
	return nil
}

// Successors returns the outgoing edge indices of block b (0, 1, or 2).
func (f *Func) Successors(b int) []int {
	blk := &f.Blocks[b]
	switch {
	case blk.EdgeThen < 0:
		return nil
	case blk.EdgeElse < 0:
		return []int{blk.EdgeThen}
	default:
		return []int{blk.EdgeThen, blk.EdgeElse}
	}
}

// markBackEdges labels edges whose target is on the DFS stack when
// first seen (the classic definition; for the reducible CFGs produced
// by MiniC's structured control flow these are exactly the loop back
// edges).
func markBackEdges(f *Func) {
	f.BackEdge = make([]bool, len(f.Edges))
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(f.Blocks))
	// Iterative DFS: each stack frame tracks which successor edge to
	// visit next.
	type frame struct {
		block int
		next  int
	}
	stack := []frame{{block: 0}}
	color[0] = grey
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		succ := f.Successors(top.block)
		if top.next >= len(succ) {
			color[top.block] = black
			stack = stack[:len(stack)-1]
			continue
		}
		eIdx := succ[top.next]
		top.next++
		to := f.Edges[eIdx].To
		switch color[to] {
		case grey:
			f.BackEdge[eIdx] = true
		case white:
			color[to] = grey
			stack = append(stack, frame{block: to})
		}
	}
}

// computeLoopDepths assigns each block the number of natural loops that
// contain it. For a back edge v->w the natural loop is {w} plus every
// block that reaches v without passing through w.
func computeLoopDepths(f *Func) {
	f.LoopDepth = make([]int, len(f.Blocks))
	preds := make([][]int, len(f.Blocks))
	for _, e := range f.Edges {
		preds[e.To] = append(preds[e.To], e.From)
	}
	for i, isBack := range f.BackEdge {
		if !isBack {
			continue
		}
		v, w := f.Edges[i].From, f.Edges[i].To
		in := make([]bool, len(f.Blocks))
		in[w] = true
		stack := []int{}
		if !in[v] {
			in[v] = true
			stack = append(stack, v)
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range preds[b] {
				if !in[p] {
					in[p] = true
					stack = append(stack, p)
				}
			}
		}
		for b, ok := range in {
			if ok {
				f.LoopDepth[b]++
			}
		}
	}
}

// TopoOrder returns a topological order of the blocks over the DAG
// obtained by ignoring back edges. It errors if a cycle remains (an
// irreducible region whose retreating edges were not all classified as
// back edges), which cannot happen for CFGs built from MiniC's
// structured statements but is guarded against for robustness.
func (f *Func) TopoOrder() ([]int, error) {
	indeg := make([]int, len(f.Blocks))
	for i, e := range f.Edges {
		if !f.BackEdge[i] {
			indeg[e.To]++
		}
	}
	var order []int
	var queue []int
	for b := range f.Blocks {
		if indeg[b] == 0 {
			queue = append(queue, b)
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		order = append(order, b)
		for _, eIdx := range f.Successors(b) {
			if f.BackEdge[eIdx] {
				continue
			}
			to := f.Edges[eIdx].To
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != len(f.Blocks) {
		return nil, fmt.Errorf("function %s: cycle remains after removing back edges", f.Name)
	}
	return order, nil
}
