package fuzz

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/instrument"
	"repro/internal/journal"
)

// journalOpts mirrors snapOpts with a writer attached.
func journalOpts(w *journal.Writer) Options {
	o := snapOpts()
	o.Journal = w
	return o
}

func openJournalT(t *testing.T, dir string) *journal.Writer {
	t.Helper()
	w, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// journalBytes concatenates the journal's segment files for
// byte-identity comparisons.
func journalBytes(t *testing.T, dir string) []byte {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, s := range segs {
		b, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	return all
}

// TestJournalOnOffIdentical is the display-only invariant: attaching a
// journal must not change a single observable of the campaign — report,
// event counter, coverage — because emission points advance f.events
// whether or not a writer does the I/O.
func TestJournalOnOffIdentical(t *testing.T) {
	const budget = 20000
	run := func(w *journal.Writer) (*Report, uint64) {
		f, err := New(compileT(t, fig1), journalOpts(w))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range snapSeeds {
			f.AddSeed(s)
		}
		f.Fuzz(budget)
		return f.Report(), f.JournalEvents()
	}
	plainRep, plainEvents := run(nil)

	dir := t.TempDir()
	w := openJournalT(t, dir)
	onRep, onEvents := run(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plainRep, onRep) {
		t.Fatalf("journaling changed the report:\n off: execs=%d queue=%d bugs=%v\n  on: execs=%d queue=%d bugs=%v",
			plainRep.Stats.Execs, plainRep.QueueLen, plainRep.BugKeys(),
			onRep.Stats.Execs, onRep.QueueLen, onRep.BugKeys())
	}
	if plainEvents != onEvents {
		t.Fatalf("event counter diverges: off=%d on=%d", plainEvents, onEvents)
	}

	// The stream itself: gapless, schema-clean, bracketed start..finish,
	// and the writer's seq equals the fuzzer's counter.
	events, diag, err := journal.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.OK() {
		t.Fatalf("journal not OK: errors=%v gaps=%v", diag.Errors, diag.Gaps)
	}
	if uint64(len(events)) != onEvents {
		t.Fatalf("journal has %d events, counter says %d", len(events), onEvents)
	}
	if events[0].Kind != journal.KindStart {
		t.Fatalf("first event %q, want start", events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != journal.KindFinish {
		t.Fatalf("last event %q, want finish", last.Kind)
	}
	if last.Execs != onRep.Stats.Execs {
		t.Fatalf("finish event execs %d, report says %d", last.Execs, onRep.Stats.Execs)
	}
}

// TestJournalResumeByteIdentical: interrupting at a checkpoint,
// truncating the journal to the snapshot's JournalSeq (what Restore
// does), and finishing the budget must leave the journal byte-identical
// to an uninterrupted run's — the forensic record has no memory of the
// interruption.
func TestJournalResumeByteIdentical(t *testing.T) {
	const budget = 20000

	runFull := func(dir string) {
		w := openJournalT(t, dir)
		f, err := New(compileT(t, fig1), journalOpts(w))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range snapSeeds {
			f.AddSeed(s)
		}
		f.Fuzz(budget)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	dirA := t.TempDir()
	runFull(dirA)

	// Interrupted run: the hook stops the campaign a third of the way
	// in, after the snapshot — so events past the checkpoint are already
	// on disk, and the resume must truncate them away.
	dirB := t.TempDir()
	w := openJournalT(t, dirB)
	f, err := New(compileT(t, fig1), journalOpts(w))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range snapSeeds {
		f.AddSeed(s)
	}
	var snap *Snapshot
	f.SetCheckpointHook(func(f *Fuzzer) bool {
		if snap == nil && f.Execs() >= budget/3 {
			snap = f.Snapshot()
		}
		// Keep running past the checkpoint so the on-disk journal grows
		// a stale tail, then die mid-campaign.
		return f.Execs() < budget/2
	})
	f.Fuzz(budget)
	if snap == nil {
		t.Fatal("hook never snapshotted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openJournalT(t, dirB)
	f2, err := Restore(f.prog, journalOpts(w2), snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Seq(); got != snap.JournalSeq {
		t.Fatalf("restore truncated journal to seq %d, snapshot says %d", got, snap.JournalSeq)
	}
	f2.Fuzz(budget)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	a, b := journalBytes(t, dirA), journalBytes(t, dirB)
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed journal differs from uninterrupted: %d vs %d bytes", len(a), len(b))
	}
}

// TestJournalCrashFlightDump: every new bug ships a flight-recorder
// dump named after the bug key, holding the events leading up to it.
func TestJournalCrashFlightDump(t *testing.T) {
	p := compileT(t, `
func main(input) {
    if (len(input) < 2) { return 0; }
    if (input[0] == 'A' && input[1] == 'B') {
        abort();
    }
    return 0;
}`)
	dir := t.TempDir()
	w := openJournalT(t, dir)
	f, err := New(p, Options{Feedback: instrument.FeedbackEdge, Seed: 1, MapSize: 1 << 12, Journal: w})
	if err != nil {
		t.Fatal(err)
	}
	f.AddSeed([]byte("xx"))
	f.Fuzz(30000)
	rep := f.Report()
	if len(rep.Bugs) == 0 {
		t.Fatalf("no bugs found in %d execs", rep.Stats.Execs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for key := range rep.Bugs {
		path := filepath.Join(dir, journal.FlightDir, "crash-"+journal.SanitizeName(key)+".jsonl")
		if _, err := os.Stat(path); err != nil {
			t.Errorf("bug %q has no flight dump: %v", key, err)
		}
	}
	// The crash is on the record too.
	events, _, err := journal.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if journal.KindCounts(events)[journal.KindCrash] == 0 {
		t.Fatal("no crash events journaled")
	}
}

// TestCorpusProvenance: the report's provenance must mirror the queue —
// seeds rooted at -1, every non-seed's parent a valid earlier entry,
// first-cell credit disjoint across entries.
func TestCorpusProvenance(t *testing.T) {
	f := newSnapFuzzer(t, 20000)
	corpus := f.CorpusProvenance()
	if len(corpus) != len(f.queue) {
		t.Fatalf("provenance has %d entries, queue %d", len(corpus), len(f.queue))
	}
	claimed := make(map[uint32]int)
	for i, m := range corpus {
		if m.ID != i {
			t.Fatalf("entry %d has ID %d", i, m.ID)
		}
		if m.Parent >= 0 && m.Parent >= m.ID {
			t.Fatalf("entry %d claims a later parent %d", m.ID, m.Parent)
		}
		if m.Parent < 0 && m.Stage != "seed" {
			t.Fatalf("rootless entry %d has stage %q", m.ID, m.Stage)
		}
		for _, c := range m.FirstCells {
			if prev, dup := claimed[c]; dup {
				t.Fatalf("cell %d claimed by entries %d and %d", c, prev, m.ID)
			}
			claimed[c] = m.ID
		}
	}

	// SnapshotProvenance over this campaign's checkpoint agrees exactly
	// (the paprof -genealogy path reads snapshots, not live fuzzers).
	fromSnap := SnapshotProvenance(f.Snapshot(), 0)
	if !reflect.DeepEqual(corpus, fromSnap) {
		t.Fatalf("snapshot provenance diverges from live provenance")
	}
	if SnapshotProvenance(nil, 0) != nil {
		t.Fatal("nil snapshot must yield nil provenance")
	}
}
