package bytecode

import (
	"fmt"
	"sort"
)

// The bytecode structural verifier checks the compiler's own output,
// complementing the IR verifier that guards the optimization passes.
// It runs twice when Spec.Verify is set: once after lowering (full
// segment-shape check) and once after fusion (jump-target check, since
// fusion moves targets into superinstruction operand fields).
//
// Pre-fusion invariants, per function:
//
//   - the code between the entry pc and the first block is probes only
//     (the EnterFunc event);
//   - every lowered block is [instructions, one opStepChk, probes,
//     terminator] in that order, with every instruction's slots inside
//     the function frame and every side-table index in range;
//   - every trampoline is probes followed by an opJmp;
//   - every jump target is a lowered block start or a trampoline start
//     of the same function.

// isProbe reports whether op is an inlined feedback probe.
func isProbe(op uint8) bool { return op >= opProbeAdd && op <= opProbePAFlush }

// verify checks the pre-fusion structural invariants of every lowered
// function.
func (c *compiler) verify() error {
	if len(c.out.pos) != len(c.out.code) {
		return fmt.Errorf("bytecode verify: pos table has %d entries for %d instructions",
			len(c.out.pos), len(c.out.code))
	}
	for fi := range c.out.fns {
		if err := c.verifyFn(fi); err != nil {
			return err
		}
	}
	return nil
}

// fnErrf builds the per-function diagnostic formatter: every message
// names the function so a verifier hit is actionable on its own.
func (c *compiler) fnErrf(fi int) func(format string, args ...any) error {
	name := c.out.fns[fi].name
	return func(format string, args ...any) error {
		return fmt.Errorf("bytecode verify func %q (#%d): "+format,
			append([]any{name, fi}, args...)...)
	}
}

// fnTargets returns the set of pcs that intra-function jumps may
// reference: lowered block starts and trampoline starts.
func (c *compiler) fnTargets(fi int) map[int32]bool {
	lay := &c.layouts[fi]
	targets := make(map[int32]bool, len(lay.blockStart)+len(lay.trampStart))
	for _, s := range lay.blockStart {
		if s >= 0 {
			targets[s] = true
		}
	}
	for _, s := range lay.trampStart {
		targets[s] = true
	}
	return targets
}

func (c *compiler) verifyFn(fi int) error {
	out := c.out
	fn := &out.fns[fi]
	lay := &c.layouts[fi]
	frame := fn.frameSize
	errf := c.fnErrf(fi)
	targets := c.fnTargets(fi)

	// Segments tile [entryPC, end): entry probes, then blocks and
	// trampolines, each identified by its recorded start pc.
	type seg struct {
		start int32
		block int // -1 for a trampoline
	}
	var segs []seg
	for b, s := range lay.blockStart {
		if s >= 0 {
			segs = append(segs, seg{s, b})
		}
	}
	for _, s := range lay.trampStart {
		segs = append(segs, seg{s, -1})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	if len(segs) == 0 {
		return errf("no lowered blocks")
	}

	// Entry probes.
	for pc := fn.entryPC; pc < segs[0].start; pc++ {
		if !isProbe(out.code[pc].op) {
			return errf("entry region: non-probe opcode %d at pc %d", out.code[pc].op, pc)
		}
		if err := c.checkProbe(errf, "entry region", pc); err != nil {
			return err
		}
	}

	for i, sg := range segs {
		end := lay.end
		if i+1 < len(segs) {
			end = segs[i+1].start
		}
		if sg.block < 0 {
			// Trampoline: probes, then an opJmp to a block start.
			if end-sg.start < 2 {
				return errf("trampoline @%d: only %d instructions", sg.start, end-sg.start)
			}
			where := fmt.Sprintf("trampoline @%d", sg.start)
			for pc := sg.start; pc < end-1; pc++ {
				if !isProbe(out.code[pc].op) {
					return errf("%s: non-probe opcode %d at pc %d", where, out.code[pc].op, pc)
				}
				if err := c.checkProbe(errf, where, pc); err != nil {
					return err
				}
			}
			if last := &out.code[end-1]; last.op != opJmp {
				return errf("%s: ends with opcode %d, not opJmp", where, last.op)
			} else if !targets[last.a] {
				return errf("%s: jmp target pc %d is not a block or trampoline start", where, last.a)
			}
			continue
		}

		b := sg.block
		seenChk := false
		for pc := sg.start; pc < end; pc++ {
			in := &out.code[pc]
			if pc == end-1 {
				if !seenChk {
					return errf("block b%d: no opStepChk before the terminator", b)
				}
				switch in.op {
				case opJmp:
					if !targets[in.a] {
						return errf("block b%d: jmp target pc %d is not a block or trampoline start", b, in.a)
					}
				case opBr:
					if in.a < 0 || in.a >= frame {
						return errf("block b%d: br condition slot s%d outside frame of %d", b, in.a, frame)
					}
					if !targets[in.b] {
						return errf("block b%d: br then-target pc %d is not a block or trampoline start", b, in.b)
					}
					if !targets[in.dst] {
						return errf("block b%d: br else-target pc %d is not a block or trampoline start", b, in.dst)
					}
				case opRet:
					if in.a >= frame {
						return errf("block b%d: ret slot s%d outside frame of %d", b, in.a, frame)
					}
				default:
					return errf("block b%d: ends with opcode %d, not a terminator", b, in.op)
				}
				continue
			}
			switch {
			case in.op == opStepChk:
				if seenChk {
					return errf("block b%d: more than one opStepChk", b)
				}
				seenChk = true
			case in.op < opStepChk:
				if seenChk {
					return errf("block b%d: instruction opcode %d after opStepChk", b, in.op)
				}
				if err := c.checkBody(errf, b, in, frame); err != nil {
					return err
				}
			case isProbe(in.op):
				if !seenChk {
					return errf("block b%d: probe opcode %d before opStepChk", b, in.op)
				}
				if err := c.checkProbe(errf, fmt.Sprintf("block b%d", b), pc); err != nil {
					return err
				}
			default:
				return errf("block b%d: unexpected opcode %d at pc %d", b, in.op, pc)
			}
		}
	}
	return nil
}

// checkBody validates one pre-fusion block-body instruction: slots in
// frame, side-table indices in range. Fused opcodes are rejected — they
// only exist after fusion.
func (c *compiler) checkBody(errf func(string, ...any) error, b int, in *instr, frame int32) error {
	slot := func(role string, s int32) error {
		if s < 0 || s >= frame {
			return errf("block b%d: %s slot s%d outside frame of %d", b, role, s, frame)
		}
		return nil
	}
	slots := func(pairs ...int32) error {
		roles := [3]string{"dst", "a", "b"}
		for i, s := range pairs {
			if err := slot(roles[i], s); err != nil {
				return err
			}
		}
		return nil
	}
	switch in.op {
	case opConst:
		return slot("dst", in.dst)
	case opStr:
		if in.imm < 0 || in.imm >= int64(len(c.out.strCells)) {
			return errf("block b%d: string literal index %d outside table of %d", b, in.imm, len(c.out.strCells))
		}
		return slot("dst", in.dst)
	case opMove, opNeg, opNot, opCompl, opLen, opAlloc, opAssert, opAbs, opOut:
		return slots(in.dst, in.a)
	case opAdd, opSub, opMul, opDiv, opMod, opBand, opBor, opBxor, opShl, opShr,
		opEq, opNe, opLt, opLe, opGt, opGe, opBadBin, opLoad, opStore, opMin, opMax:
		return slots(in.dst, in.a, in.b)
	case opCall:
		if in.imm < 0 || in.imm >= int64(len(c.out.fns)) {
			return errf("block b%d: call to function index %d outside table of %d", b, in.imm, len(c.out.fns))
		}
		if in.a < 0 || in.b < 0 || int(in.a)+int(in.b) > len(c.out.argSlots) {
			return errf("block b%d: call argument window [%d,%d) outside pool of %d", b, in.a, in.a+in.b, len(c.out.argSlots))
		}
		for _, s := range c.out.argSlots[in.a : in.a+in.b] {
			if s < 0 || s >= frame {
				return errf("block b%d: call argument slot s%d outside frame of %d", b, s, frame)
			}
		}
		return slot("dst", in.dst)
	case opAbort, opNop:
		return nil
	}
	return errf("block b%d: unexpected opcode %d in block body", b, in.op)
}

// checkProbe validates one probe's side-table reference.
func (c *compiler) checkProbe(errf func(string, ...any) error, where string, pc int32) error {
	in := &c.out.code[pc]
	if in.op == opProbeBack {
		if in.b < 0 || in.b >= int32(len(c.out.backVals)) {
			return errf("%s: opProbeBack restart index %d outside table of %d", where, in.b, len(c.out.backVals))
		}
	}
	return nil
}

// verifyFused re-checks jump targets after fusion: superinstructions
// carry targets in their own operand fields, while the consumed dead
// slots keep theirs, so a linear scan covers both. It also validates
// the opCallPush fold.
func (c *compiler) verifyFused() error {
	out := c.out
	for fi := range out.fns {
		fn := &out.fns[fi]
		lay := &c.layouts[fi]
		errf := c.fnErrf(fi)
		targets := c.fnTargets(fi)
		end := int(lay.end)
		for pc := int(fn.entryPC); pc < end; pc++ {
			in := &out.code[pc]
			var tgts []int32
			switch {
			case in.op == opJmp || in.op == opStepJmp || in.op == opStepAddJmp ||
				in.op == opStepIncJmp || in.op == opAddJmp || in.op == opIncJmp:
				tgts = []int32{in.a}
			case in.op == opBr || in.op == opStepBr:
				tgts = []int32{in.b, in.dst}
			case in.op == opStepBackJmp || in.op == opBackJmp:
				tgts = []int32{in.dst}
			case in.op >= opEqStepBr && in.op <= opGeStepBr:
				// Targets stay in the consumed opStepBr, which the scan
				// checks when it reaches it; here just prove it is there.
				if pc+1 >= end || out.code[pc+1].op != opStepBr {
					return errf("fused compare-branch at pc %d has no dead opStepBr slot", pc)
				}
			case in.op >= opConstEqStepBr && in.op <= opConstGeStepBr:
				if pc+2 >= end || out.code[pc+2].op != opStepBr {
					return errf("fused const-compare-branch at pc %d has no dead opStepBr slot", pc)
				}
			case in.op == opCall || in.op == opCallPush:
				if in.imm < 0 || in.imm >= int64(len(out.fns)) {
					return errf("pc %d: call to function index %d outside table of %d", pc, in.imm, len(out.fns))
				}
				if in.op == opCallPush && out.code[out.fns[in.imm].entryPC].op != opProbePush {
					return errf("pc %d: opCallPush callee %q does not start with opProbePush", pc, out.fns[in.imm].name)
				}
			}
			for _, t := range tgts {
				if !targets[t] {
					return errf("pc %d (opcode %d): jump target %d is not a block or trampoline start", pc, in.op, t)
				}
			}
		}
	}
	return nil
}
