package fuzz

import (
	"reflect"
	"testing"

	"repro/internal/instrument"
	"repro/internal/vm"
)

// cgtSrc mirrors the campaign durability test program — a shallow
// magic-byte abort plus a deeper out-of-bounds write — with an
// input-length loop in front: loop-edge hit counts spread across all
// hit-count buckets as mutation varies input lengths, which is what
// lets the virgin map fully consume cells and probe elision engage.
const cgtSrc = `
func main(input) {
    var i = 0;
    var acc = 0;
    while (i < len(input)) {
        acc = acc + input[i];
        i = i + 1;
    }
    if (len(input) < 4) { return acc; }
    if (input[0] == 'A' && input[1] == 'B') {
        abort();
    }
    var arr = alloc(16);
    if (input[2] == 'C') {
        arr[input[3] - 100] = 1;
    }
    return 0;
}`

func cgtOpts(engine Engine) Options {
	return Options{
		Feedback:        instrument.FeedbackEdge,
		Seed:            7,
		MapSize:         1 << 12,
		Entry:           "main",
		Limits:          vm.DefaultLimits(),
		KeepCrashInputs: true,
		Engine:          engine,
	}
}

var cgtSeeds = [][]byte{[]byte("xxxx"), []byte("good")}

func runCampaign(t *testing.T, opts Options, budget int64) (*Fuzzer, *Report) {
	t.Helper()
	f, err := New(compileT(t, cgtSrc), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range cgtSeeds {
		f.AddSeed(s)
	}
	f.Fuzz(budget)
	return f, f.Report()
}

func TestCGTEngineSelection(t *testing.T) {
	f, err := New(compileT(t, cgtSrc), cgtOpts(EngineCGT))
	if err != nil {
		t.Fatal(err)
	}
	if f.EngineName() != "cgt" {
		t.Fatalf("EngineName = %q, want cgt", f.EngineName())
	}
	if _, ok := f.CGTInfo(); !ok {
		t.Fatal("CGTInfo not available on the cgt engine")
	}
	fb, err := New(compileT(t, cgtSrc), cgtOpts(EngineBytecode))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fb.CGTInfo(); ok {
		t.Fatal("CGTInfo claims to exist on the bytecode engine")
	}
	// Extension feedbacks have no lowering, so like EngineBytecode the
	// CGT engine must refuse them at construction.
	opts := cgtOpts(EngineCGT)
	opts.Feedback = instrument.FeedbackPath2
	if _, err := New(compileT(t, cgtSrc), opts); err == nil {
		t.Fatal("EngineCGT accepted a feedback with no bytecode lowering")
	}
}

// TestCGTReportMatchesBytecode is the engine's in-package contract: a
// CGT campaign's final report — stats, queue, crashes, history, every
// field — is deeply identical to the same campaign on EngineBytecode,
// and the engine actually elides probes and avoids retraces while
// getting there.
func TestCGTReportMatchesBytecode(t *testing.T) {
	const budget = 20000
	_, want := runCampaign(t, cgtOpts(EngineBytecode), budget)
	if len(want.Bugs) == 0 {
		t.Fatalf("bytecode baseline found no bugs in %d execs", want.Stats.Execs)
	}
	f, got := runCampaign(t, cgtOpts(EngineCGT), budget)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cgt report differs from bytecode:\n got: execs=%d queue=%d bugs=%v\nwant: execs=%d queue=%d bugs=%v",
			got.Stats.Execs, got.QueueLen, got.BugKeys(), want.Stats.Execs, want.QueueLen, want.BugKeys())
	}
	info, ok := f.CGTInfo()
	if !ok {
		t.Fatal("no CGTInfo")
	}
	if info.FastExecs == 0 || info.Replans == 0 {
		t.Fatalf("engine never engaged: %+v", info)
	}
	if info.Retraces >= info.FastExecs {
		t.Fatalf("every execution retraced — elision is vacuous: %+v", info)
	}
	if info.ElidedSites == 0 || info.ConsumedCells == 0 {
		t.Fatalf("no probes elided after %d execs: %+v", budget, info)
	}
	t.Logf("cgt: %+v (retrace rate %.2f%%)", info, 100*float64(info.Retraces)/float64(info.FastExecs))
}

// TestCGTFaultInjectionParity pins quarantine behaviour: with both the
// pre-execution fault injector and a mid-run injected panic active, the
// CGT campaign must quarantine exactly the executions the bytecode
// campaign does and still produce an identical report.
func TestCGTFaultInjectionParity(t *testing.T) {
	mk := func(engine Engine) Options {
		opts := cgtOpts(engine)
		opts.FaultInjector = func(execs int64, data []byte) bool { return execs%997 == 0 && execs > 0 }
		// Mid-run injected panics: any execution reaching step 50 dies
		// inside the machine and must be quarantined identically.
		opts.Limits.InjectPanicAtStep = 50
		return opts
	}
	const budget = 12000
	_, want := runCampaign(t, mk(EngineBytecode), budget)
	if want.Stats.InternalFaults == 0 {
		t.Fatalf("fault injector never fired in %d execs", want.Stats.Execs)
	}
	_, got := runCampaign(t, mk(EngineCGT), budget)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cgt faulted report differs from bytecode: faults %d vs %d, execs %d vs %d",
			got.Stats.InternalFaults, want.Stats.InternalFaults, got.Stats.Execs, want.Stats.Execs)
	}
}

// TestCGTTightLimitsParity forces the timeout path (a step budget far
// below the program's honest cost) — timeouts without novelty are the
// one case the CGT engine must classify without retracing.
func TestCGTTightLimitsParity(t *testing.T) {
	mk := func(engine Engine) Options {
		opts := cgtOpts(engine)
		opts.Limits = vm.Limits{MaxSteps: 40, MaxDepth: 16, MaxHeapCells: 1 << 20, MaxAlloc: 1 << 16, MaxCmpObs: 32}
		return opts
	}
	const budget = 8000
	_, want := runCampaign(t, mk(EngineBytecode), budget)
	if want.Stats.Timeouts == 0 {
		t.Fatalf("tight limits produced no timeouts in %d execs", want.Stats.Execs)
	}
	f, got := runCampaign(t, mk(EngineCGT), budget)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cgt tight-limit report differs: timeouts %d vs %d",
			got.Stats.Timeouts, want.Stats.Timeouts)
	}
	if info, _ := f.CGTInfo(); info.Retraces >= info.FastExecs {
		t.Fatalf("timeout-heavy campaign retraced everything: %+v", info)
	}
}

// TestCGTSnapshotResumeByteIdentity: a CGT campaign interrupted
// mid-cycle and restored from its snapshot (which deliberately carries
// no patch-plan state — the plan is replanned from the restored virgin
// map) finishes with a report identical to the uninterrupted campaign.
func TestCGTSnapshotResumeByteIdentity(t *testing.T) {
	const budget = 20000
	_, want := runCampaign(t, cgtOpts(EngineCGT), budget)

	f, err := New(compileT(t, cgtSrc), cgtOpts(EngineCGT))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range cgtSeeds {
		f.AddSeed(s)
	}
	// Interrupt via the checkpoint hook inside a single Fuzz call, like
	// a real campaign: the sampling cadence stays comparable to the
	// uninterrupted baseline.
	var snap *Snapshot
	f.SetCheckpointHook(func(f *Fuzzer) bool {
		if f.Execs() >= budget/3 {
			snap = f.Snapshot()
			return false
		}
		return true
	})
	f.Fuzz(budget)
	if snap == nil {
		t.Fatal("checkpoint hook never fired")
	}
	f2, err := Restore(compileT(t, cgtSrc), cgtOpts(EngineCGT), snap)
	if err != nil {
		t.Fatal(err)
	}
	if info, _ := f2.CGTInfo(); info.Replans == 0 {
		t.Fatal("restore did not replan the patch plan from the restored virgin map")
	}
	f2.Fuzz(budget)
	got := f2.Report()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed cgt report differs from uninterrupted:\n got: execs=%d queue=%d bugs=%v\nwant: execs=%d queue=%d bugs=%v",
			got.Stats.Execs, got.QueueLen, got.BugKeys(), want.Stats.Execs, want.QueueLen, want.BugKeys())
	}
}
