// The campaign example runs a scaled-down version of the paper's main
// experiment on three benchmark subjects: the four fuzzer
// configurations of Table II compete under an equal execution budget,
// and the example prints per-subject bug counts plus the pairwise set
// relations the paper reports.
//
// Run with: go run ./examples/campaign
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/evalharness"
	"repro/internal/strategy"
)

func main() {
	cfg := evalharness.Config{
		Subjects: []string{"flvmeta", "jhead", "mp3gain"},
		Fuzzers: []strategy.Name{
			strategy.Path, strategy.PCGuard, strategy.Cull, strategy.Opp,
		},
		Runs:     2,
		Budget:   60000,
		BaseSeed: 11,
		Progress: os.Stderr,
	}
	sr, err := evalharness.RunSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	sr.Table2(os.Stdout)
	fmt.Println()
	sr.Table3(os.Stdout)
	fmt.Println()
	sr.Figure3(os.Stdout)

	fmt.Println("\nPath-dependent bugs found per fuzzer (the paper's headline effect):")
	for _, f := range cfg.Fuzzers {
		n := 0
		for _, sub := range cfg.Subjects {
			for key := range sr.CumulativeBugs(sub, f) {
				if isPathDependent(sub, key) {
					n++
				}
			}
		}
		fmt.Printf("  %-8s %d\n", f, n)
	}
}

// isPathDependent checks a found bug key against the subject's planted
// inventory.
func isPathDependent(subject, key string) bool {
	// Keys look like "func:line:kind"; the inventory records the
	// function and kind of each path-dependent bug. Matching on the
	// function name is sufficient for these subjects.
	pd := map[string][]string{
		"flvmeta": {"parse_script:37"},
		"mp3gain": {"histogram"},
	}
	for _, marker := range pd[subject] {
		if len(key) >= len(marker) && contains(key, marker) {
			return true
		}
	}
	return false
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
