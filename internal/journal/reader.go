package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Diag is the result of validating a journal directory: parse and
// schema errors, sequence gaps, and stream summary facts. A journal
// with a truncated final line is still OK (torn tails are the expected
// crash artifact and recovery truncates them); a gap or an unknown
// schema is not.
type Diag struct {
	Dir      string
	Segments int
	Events   int
	FirstSeq uint64
	LastSeq  uint64
	// Errors are schema violations: unparseable lines, unknown event
	// kinds, unsupported schema versions.
	Errors []string
	// Gaps are sequence discontinuities inside the stream. A stream
	// whose FirstSeq > 1 is not a gap: retention pruning trims the
	// head.
	Gaps []string
	// Torn notes segments whose tail was incomplete (informational).
	Torn []string
}

// OK reports whether the journal validates clean.
func (d *Diag) OK() bool { return len(d.Errors) == 0 && len(d.Gaps) == 0 }

// ReadDir reads every journal segment under dir in order, returning
// the event stream and a validation diagnosis. It never fails on
// malformed content — that lands in the Diag — and only returns an
// error when the directory itself is unreadable.
func ReadDir(dir string) ([]Event, *Diag, error) {
	d := &Diag{Dir: dir}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, d, fmt.Errorf("journal: %w", err)
	}
	var events []Event
	var prev uint64
	for _, name := range segs {
		d.Segments++
		data, rerr := os.ReadFile(filepath.Join(dir, name))
		if rerr != nil {
			d.Errors = append(d.Errors, fmt.Sprintf("%s: %v", name, rerr))
			continue
		}
		line := 0
		for len(data) > 0 {
			nl := bytes.IndexByte(data, '\n')
			if nl < 0 {
				d.Torn = append(d.Torn, fmt.Sprintf("%s: torn final line (%d bytes)", name, len(data)))
				break
			}
			line++
			raw := data[:nl]
			data = data[nl+1:]
			var ev Event
			if jerr := json.Unmarshal(raw, &ev); jerr != nil {
				d.Errors = append(d.Errors, fmt.Sprintf("%s:%d: not a journal event: %v", name, line, jerr))
				continue
			}
			if ev.V != SchemaVersion {
				d.Errors = append(d.Errors, fmt.Sprintf("%s:%d: schema version %d (want %d)", name, line, ev.V, SchemaVersion))
				continue
			}
			if !KnownKinds[ev.Kind] {
				d.Errors = append(d.Errors, fmt.Sprintf("%s:%d: unknown event kind %q", name, line, ev.Kind))
				continue
			}
			if prev != 0 && ev.Seq != prev+1 {
				d.Gaps = append(d.Gaps, fmt.Sprintf("%s:%d: seq %d follows %d", name, line, ev.Seq, prev))
			}
			if len(events) == 0 {
				d.FirstSeq = ev.Seq
			}
			prev = ev.Seq
			d.LastSeq = ev.Seq
			events = append(events, ev)
		}
	}
	d.Events = len(events)
	return events, d, nil
}

// KindCounts tallies the stream per event kind.
func KindCounts(events []Event) map[string]int {
	out := make(map[string]int)
	for _, ev := range events {
		out[ev.Kind]++
	}
	return out
}
