// The pathprofiler example uses the Ball-Larus machinery the way the
// performance-profiling literature does (and the way the paper's §VII
// discusses DDGF using it as an oracle): it profiles a tokenizer over a
// workload and prints the hottest intra-procedural acyclic paths with
// their regenerated block sequences — information edge profiles cannot
// provide.
//
// Run with: go run ./examples/pathprofiler
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/vm"
)

const tokenizer = `
// A CSV-ish record scanner with per-character classification.
func classify(c) {
    if (c == ',') { return 1; }
    if (c == 10) { return 2; }
    if (c >= '0' && c <= '9') { return 3; }
    if (c == '"') { return 4; }
    return 0;
}

func scan(input) {
    var fields = 0;
    var rows = 0;
    var digits = 0;
    var quoted = 0;
    var i = 0;
    while (i < len(input)) {
        var k = classify(input[i]);
        if (k == 1) {
            fields = fields + 1;
        } else if (k == 2) {
            rows = rows + 1;
            fields = fields + 1;
        } else if (k == 3) {
            digits = digits + 1;
        } else if (k == 4) {
            quoted = 1 - quoted;
        }
        i = i + 1;
    }
    out(fields);
    out(rows);
    return digits;
}

func main(input) {
    return scan(input);
}
`

func main() {
	target, err := core.Compile(tokenizer)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := target.PathProfiler()
	if err != nil {
		log.Fatal(err)
	}

	workload := []string{
		"a,b,c\n1,2,3\n44,55,66\n",
		`"quoted,comma",7,8` + "\n",
		"9999999999\n",
	}
	for _, w := range workload {
		res := prof.Profile("main", []byte(w), vm.DefaultLimits())
		fmt.Printf("profiled %-28q status=%v steps=%d\n", w, res.Status, res.Steps)
	}

	fmt.Println("\nhottest acyclic paths (function, path id, count, blocks):")
	for i, pc := range prof.Counts() {
		if i >= 12 {
			break
		}
		var blocks []string
		for _, s := range pc.Blocks {
			b := fmt.Sprintf("b%d", s.Block)
			if s.EnterViaBackEdge {
				b = "loop:" + b
			}
			blocks = append(blocks, b)
		}
		fmt.Printf("  %-10s #%-4d x%-5d %s\n", pc.Func, pc.PathID, pc.Count, strings.Join(blocks, "→"))
	}
	fmt.Println("\nEach distinct path through scan's classification ladder is counted")
	fmt.Println("separately; an edge profile would merge them all.")
}
