package fuzz

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newMut(seed int64, rich bool) *mutator {
	return &mutator{rng: rand.New(rand.NewSource(seed)), maxLen: 128, rich: rich}
}

func TestHavocRespectsMaxLen(t *testing.T) {
	m := newMut(1, true)
	data := make([]byte, 100)
	for i := 0; i < 2000; i++ {
		out := m.havoc(data)
		if len(out) > m.maxLen {
			t.Fatalf("havoc produced %d bytes, cap %d", len(out), m.maxLen)
		}
		if len(out) == 0 {
			t.Fatal("havoc produced an empty input")
		}
	}
}

func TestHavocDoesNotMutateArgument(t *testing.T) {
	m := newMut(2, true)
	data := []byte("immutable-argument")
	orig := append([]byte(nil), data...)
	for i := 0; i < 500; i++ {
		m.havoc(data)
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatal("havoc mutated its argument in place")
		}
	}
}

func TestHavocDeterministic(t *testing.T) {
	data := []byte("same seed same result")
	a := newMut(7, true).havoc(data)
	b := newMut(7, true).havoc(data)
	if string(a) != string(b) {
		t.Error("havoc not deterministic under a fixed seed")
	}
}

func TestHavocOnEmptyInput(t *testing.T) {
	m := newMut(3, true)
	out := m.havoc(nil)
	if len(out) == 0 {
		t.Error("empty input produced empty mutant")
	}
}

func TestSpliceProducesBoundedOutput(t *testing.T) {
	m := newMut(4, true)
	a := make([]byte, 100)
	b := make([]byte, 120)
	for i := 0; i < 1000; i++ {
		out := m.splice(a, b)
		if len(out) > m.maxLen {
			t.Fatalf("splice produced %d bytes, cap %d", len(out), m.maxLen)
		}
	}
	// Degenerate operands fall back to havoc.
	if len(m.splice(nil, b)) == 0 {
		t.Error("splice with empty left side produced nothing")
	}
}

func TestDictionaryOpsOnlyInRichProfile(t *testing.T) {
	tok := []byte("MAGIC")
	countTok := func(rich bool) int {
		m := newMut(5, rich)
		m.dict = [][]byte{tok}
		hits := 0
		data := make([]byte, 40)
		for i := 0; i < 4000; i++ {
			out := m.havoc(data)
			for j := 0; j+len(tok) <= len(out); j++ {
				if string(out[j:j+len(tok)]) == string(tok) {
					hits++
					break
				}
			}
		}
		return hits
	}
	richHits := countTok(true)
	aflHits := countTok(false)
	if richHits == 0 {
		t.Error("rich profile never inserted the dictionary token")
	}
	if aflHits > richHits/4 {
		t.Errorf("plain AFL profile used dictionary ops: %d vs rich %d", aflHits, richHits)
	}
}

// TestHavocChangesSomething: quick-check that havoc output differs from
// the input almost always (stacked mutations on non-trivial data).
func TestHavocChangesSomething(t *testing.T) {
	m := newMut(6, true)
	err := quick.Check(func(data []byte) bool {
		if len(data) < 4 {
			return true
		}
		if len(data) > 96 {
			data = data[:96]
		}
		same := 0
		for i := 0; i < 8; i++ {
			out := m.havoc(data)
			if string(out) == string(data) {
				same++
			}
		}
		return same < 8
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestEncodeHelpers(t *testing.T) {
	if got := encodeWidth(0x1122, 2, false); got[0] != 0x22 || got[1] != 0x11 {
		t.Errorf("LE encode: %x", got)
	}
	if got := encodeWidth(0x1122, 2, true); got[0] != 0x11 || got[1] != 0x22 {
		t.Errorf("BE encode: %x", got)
	}
	if len(encodeMin(7)) != 1 || len(encodeMin(300)) != 2 || len(encodeMin(1<<20)) != 4 || len(encodeMin(1<<40)) != 8 {
		t.Error("encodeMin widths wrong")
	}
	if !fitsWidth(255, 1) || fitsWidth(256, 1) || !fitsWidth(-128, 1) || fitsWidth(-129, 1) {
		t.Error("fitsWidth(1) wrong")
	}
	if !bytesEq([]byte{1, 2}, []byte{1, 2}) || bytesEq([]byte{1}, []byte{1, 2}) || bytesEq([]byte{1}, []byte{2}) {
		t.Error("bytesEq wrong")
	}
}
