package subjects

import "repro/internal/vm"

// mujs models a tiny JavaScript expression evaluator: recursive-descent
// expressions with precedence, unary chains, and a string-mode type
// dispatch. Bug mj-3 is path-dependent: the string-typing path sets an
// operand class that a later '+' dispatch indexes with.
const mujsSrc = `
// mujs: expression evaluator.
// Grammar: expr = term (('+'|'-') term)* ; term = factor (('*'|'/') factor)* ;
// factor = number | '(' expr ')' | '-' factor | '"' chars '"'.
// state[0]=pos, state[1]=string-mode class (0 num, set to 3 by strings).

func peek_ch(input, state) {
    if (state[0] < len(input)) { return input[state[0]]; }
    return -1;
}

func parse_factor(input, state) {
    var c = peek_ch(input, state);
    if (c == '(') {
        state[0] = state[0] + 1;
        var v = parse_expr(input, state); // BUG mj-1: unbounded recursion
        if (peek_ch(input, state) == ')') { state[0] = state[0] + 1; }
        return v;
    }
    if (c == '-') {
        state[0] = state[0] + 1;
        return -parse_factor(input, state);
    }
    if (c == '"') {
        state[0] = state[0] + 1;
        var n = 0;
        while (state[0] < len(input) && input[state[0]] != '"') {
            state[0] = state[0] + 1;
            n = n + 1;
        }
        state[0] = state[0] + 1;
        // BUG mj-3 (setup): string literals mark the operand class 3;
        // numeric paths use 0 or 1, which the dispatch table expects.
        state[1] = 3;
        return n;
    }
    var v = 0;
    var digits = 0;
    while (state[0] < len(input)) {
        var d = input[state[0]];
        if (d >= '0' && d <= '9') {
            v = v * 10 + (d - '0');
            state[0] = state[0] + 1;
            digits = digits + 1;
        } else {
            break;
        }
    }
    if (digits > 4) { state[1] = 1; } // wide numbers are class 1
    return v;
}

func apply_add(a, b, state) {
    // Type dispatch: 2x2 table for (left class, right class).
    var dispatch = alloc(4);
    dispatch[0] = 0; dispatch[1] = 1; dispatch[2] = 1; dispatch[3] = 2;
    var mode = dispatch[state[1] * 2 + state[2]]; // BUG mj-3 (trigger): class 3 -> index 6
    if (mode == 2) { return a + b + 1; }
    return a + b;
}

func parse_term(input, state) {
    var v = parse_factor(input, state);
    while (1) {
        var c = peek_ch(input, state);
        if (c == '*') {
            state[0] = state[0] + 1;
            v = v * parse_factor(input, state);
        } else if (c == '/') {
            state[0] = state[0] + 1;
            var d = parse_factor(input, state);
            v = v / d; // BUG mj-2: division by a zero factor
        } else {
            return v;
        }
    }
    return v;
}

func parse_expr(input, state) {
    var v = parse_term(input, state);
    while (1) {
        var c = peek_ch(input, state);
        if (c == '+') {
            state[0] = state[0] + 1;
            state[2] = 0;
            var saved = state[1];
            state[1] = 0;
            var r = parse_term(input, state);
            state[2] = state[1];
            state[1] = saved;
            v = apply_add(v, r, state);
        } else if (c == '-') {
            state[0] = state[0] + 1;
            v = v - parse_term(input, state);
        } else {
            return v;
        }
    }
    return v;
}

func main(input) {
    var state = alloc(3);
    var v = parse_expr(input, state);
    out(v);
    return v;
}
`

func init() {
	mj1 := make([]byte, 250)
	for i := range mj1 {
		mj1[i] = '('
	}
	register(&Subject{
		Name:      "mujs",
		TypeLabel: "C",
		Source:    mujsSrc,
		Seeds: [][]byte{
			[]byte(`(1+2)*34-5`),
			[]byte(`"ab"-12/4`),
		},
		Bugs: []Bug{
			{
				ID:       "mj-1-paren-recursion",
				Witness:  mj1,
				WantKind: vm.KindStackOverflow,
				WantFunc: "parse_factor",
				Comment:  "nested parentheses recurse without a depth limit",
			},
			{
				ID:       "mj-2-div-zero",
				Witness:  []byte("8/0"),
				WantKind: vm.KindDivByZero,
				WantFunc: "parse_term",
				Comment:  "constant folding divides by a zero factor",
			},
			{
				ID:            "mj-3-dispatch-oob",
				Witness:       []byte(`"ab"+1`),
				WantKind:      vm.KindOOBRead,
				WantFunc:      "apply_add",
				PathDependent: true,
				Comment: "the string-literal path marks operand class 3; the 2x2 '+' dispatch " +
					"table is indexed with class*2, reaching index 6",
			},
		},
	})
}
