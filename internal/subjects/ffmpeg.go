package subjects

import "repro/internal/vm"

// ffmpeg models a container demuxer + audio decoder: stream-header
// chunks configure codec state that packet-decode chunks consume. Its
// bugs are deep — the paper finds only 2-3 here and the opportunistic
// variant none — because triggering them requires a well-formed stream
// header followed by packets that exercise the configured code path.
const ffmpegSrc = `
// ffmpeg: chunked A/V container.
// Layout: "FM" then chunks: type(1) size(1) payload[size].
// Chunk types: 1=stream header (codec channels rate flags),
//              2=packet, 3=seek table.

func parse_header(input, pos, size, st) {
    if (size < 4 || pos + 4 > len(input)) { return 0; }
    st[0] = input[pos];     // codec id
    st[1] = input[pos + 1]; // channels
    st[2] = input[pos + 2]; // sample rate class
    st[3] = 0;              // planar layout flag
    if (st[0] == 7 && (input[pos + 3] & 4) != 0) {
        // BUG ff-2 (setup): only the codec-7 planar path sets this
        // flag; packet decode trusts it.
        st[3] = 1;
    }
    return 1;
}

func decode_packet(input, pos, size, st, ring) {
    if (st[0] == 0) { return 0; }
    var per_ch = size / st[1]; // BUG ff-1: zero-channel header
    if (st[3] == 1) {
        // Planar: deinterleave into the ring. st[4] is the write
        // cursor, never wrapped on the planar path.
        var i = 0;
        while (i < per_ch && pos + i < len(input)) {
            ring[st[4]] = input[pos + i]; // BUG ff-2: cursor creeps past the 32-cell ring
            st[4] = st[4] + 1;
            i = i + 1;
        }
    } else {
        var i = 0;
        while (i < size && pos + i < len(input)) {
            ring[(st[4] + i) % len(ring)] = input[pos + i];
            i = i + 1;
        }
        st[4] = (st[4] + size) % len(ring);
    }
    return per_ch;
}

func parse_seek(input, pos, size, st) {
    if (size < 1 || pos >= len(input)) { return 0; }
    var tbl = alloc(8);
    var n = input[pos];
    var i = 0;
    while (i < n && pos + 1 + i < len(input)) {
        var slot = input[pos + 1 + i];
        tbl[slot & 15] = i; // BUG ff-3: masked to 16 but the table has 8 cells
        i = i + 1;
    }
    return n;
}

func main(input) {
    if (len(input) < 4) { return 1; }
    if (input[0] != 'F' || input[1] != 'M') { return 1; }
    var st = alloc(5);
    var ring = alloc(32);
    var pos = 2;
    var chunks = 0;
    while (pos + 2 <= len(input)) {
        var t = input[pos];
        var size = input[pos + 1];
        pos = pos + 2;
        if (t == 1) {
            parse_header(input, pos, size, st);
        } else if (t == 2) {
            decode_packet(input, pos, size, st, ring);
        } else if (t == 3) {
            parse_seek(input, pos, size, st);
        }
        pos = pos + size;
        chunks = chunks + 1;
    }
    return chunks;
}
`

func init() {
	// ff-2 witness: codec-7 planar header (1 channel), then two 20-byte
	// packets: per_ch = 20 each, cursor reaches 32 inside the second.
	ff2 := []byte{'F', 'M', 1, 4, 7, 1, 0, 4}
	pkt := append([]byte{2, 20}, make([]byte, 20)...)
	ff2 = append(ff2, pkt...)
	ff2 = append(ff2, pkt...)

	register(&Subject{
		Name:      "ffmpeg",
		TypeLabel: "C",
		Source:    ffmpegSrc,
		Seeds: [][]byte{
			{'F', 'M', 1, 4, 3, 2, 1, 0, 2, 4, 9, 8, 7, 6, 3, 3, 2, 1, 5},
			{'F', 'M', 2, 2, 1, 2},
		},
		Bugs: []Bug{
			{
				ID:       "ff-1-zero-channels",
				Witness:  []byte{'F', 'M', 1, 4, 3, 0, 1, 0, 2, 4, 9, 8, 7, 6},
				WantKind: vm.KindDivByZero,
				WantFunc: "decode_packet",
				Comment:  "stream header with zero channels divides packet size by zero",
			},
			{
				ID:            "ff-2-ring-oob",
				Witness:       ff2,
				WantKind:      vm.KindOOBWrite,
				WantFunc:      "decode_packet",
				PathDependent: true,
				Comment: "the planar header path (codec 7 + layout flag) leaves the ring " +
					"cursor unwrapped; successive packets creep it past the 32-cell ring",
			},
			{
				ID:       "ff-3-seek-oob",
				Witness:  []byte{'F', 'M', 3, 2, 1, 12},
				WantKind: vm.KindOOBWrite,
				WantFunc: "parse_seek",
				Comment:  "seek slots are masked to 16 but the table has 8 cells",
			},
		},
	})
}
