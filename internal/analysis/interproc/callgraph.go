package interproc

import (
	"repro/internal/cfg"
)

// CallGraph is the static call graph of a lowered program: one node
// per function, an edge per distinct (caller, callee) pair. MiniC has
// no indirect calls, so the graph is exact.
type CallGraph struct {
	// Callees[f] lists the distinct functions f calls, ascending.
	Callees [][]int
	// Callers[f] lists the distinct functions calling f, ascending.
	Callers [][]int
	// SCCs lists the strongly connected components in bottom-up
	// (callee-first) order: every call from SCCs[i] lands in SCCs[j]
	// with j <= i. Each component's members are ascending.
	SCCs [][]int
	// SCCOf[f] is the index into SCCs of f's component.
	SCCOf []int
}

// NewCallGraph builds the call graph of p.
func NewCallGraph(p *cfg.Program) *CallGraph {
	n := len(p.Funcs)
	g := &CallGraph{
		Callees: make([][]int, n),
		Callers: make([][]int, n),
		SCCOf:   make([]int, n),
	}
	seen := make([]map[int]bool, n)
	for fi, f := range p.Funcs {
		seen[fi] = map[int]bool{}
		for b := range f.Blocks {
			for i := range f.Blocks[b].Instrs {
				in := &f.Blocks[b].Instrs[i]
				if in.Op != cfg.OpCall || in.Callee < 0 || in.Callee >= n {
					continue
				}
				if !seen[fi][in.Callee] {
					seen[fi][in.Callee] = true
					g.Callees[fi] = append(g.Callees[fi], in.Callee)
				}
			}
		}
	}
	// Callees were appended in instruction order; normalize to
	// ascending for deterministic iteration.
	for fi := range g.Callees {
		sortInts(g.Callees[fi])
	}
	for fi, cs := range g.Callees {
		for _, c := range cs {
			g.Callers[c] = append(g.Callers[c], fi)
		}
	}
	for c := range g.Callers {
		sortInts(g.Callers[c])
	}
	g.tarjan(n)
	return g
}

// tarjan computes SCCs with Tarjan's algorithm (iterative). Tarjan
// emits components in reverse topological order of the condensation —
// exactly the bottom-up (callee-first) order summary frameworks want —
// so SCCs needs no post-sort.
func (g *CallGraph) tarjan(n int) {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	next := 0

	type frame struct {
		v, ci int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		work := []frame{{v: root}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			v := fr.v
			if fr.ci == 0 {
				index[v], low[v] = next, next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for fr.ci < len(g.Callees[v]) {
				w := g.Callees[v][fr.ci]
				fr.ci++
				if index[w] == unvisited {
					work = append(work, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					g.SCCOf[w] = len(g.SCCs)
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sortInts(comp)
				g.SCCs = append(g.SCCs, comp)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
}

// ReachableFrom marks the functions reachable from entry (inclusive)
// along call edges.
func (g *CallGraph) ReachableFrom(entry int) []bool {
	reach := make([]bool, len(g.Callees))
	if entry < 0 || entry >= len(reach) {
		return reach
	}
	stack := []int{entry}
	reach[entry] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Callees[v] {
			if !reach[w] {
				reach[w] = true
				stack = append(stack, w)
			}
		}
	}
	return reach
}

// Recursive reports whether f can call itself (directly or through a
// cycle): its SCC has more than one member or a self edge.
func (g *CallGraph) Recursive(f int) bool {
	if len(g.SCCs[g.SCCOf[f]]) > 1 {
		return true
	}
	for _, c := range g.Callees[f] {
		if c == f {
			return true
		}
	}
	return false
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
