package subjects

import "repro/internal/vm"

// sqlite3 models a SQL front end: keyword tokenizer, statement parser
// for CREATE/INSERT/SELECT, and a tiny expression evaluator. Its
// grammar is deep and sequential — progress requires matching whole
// keywords before any interesting code unlocks — which is why the
// paper's pcguard out-performs the baseline path fuzzer here (9 bugs vs
// 5): fast coverage growth matters more than path discrimination.
const sqlite3Src = `
// sqlite3: SQL front end.
// Statements: C name ncols coltypes... | I name nvals vals... |
//             S name col op val | V.
// (Single-letter keywords keep inputs small; the structure after the
// keyword is what gates the bugs.)

func type_affinity(t, st) {
    // Column type codes: 1=INT 2=TEXT 3=REAL 4=BLOB.
    if (t == 4 && st[1] == 1) {
        // BUG sq-1 (setup): BLOB columns after a REAL column keep the
        // raw code; every other path normalises to 0..3.
        st[0] = t + st[1] * 2;
    } else {
        st[0] = min(t, 3);
    }
    if (t == 3) { st[1] = 1; } else { st[1] = 0; }
    return st[0];
}

func create_table(input, pos, st, schema) {
    if (pos + 2 > len(input)) { return pos; }
    var name = input[pos];
    var ncols = input[pos + 1];
    pos = pos + 2;
    var i = 0;
    while (i < ncols && pos < len(input)) {
        var t = input[pos];
        pos = pos + 1;
        schema[i] = type_affinity(t, st); // BUG sq-2: ncols unchecked against 16 slots
        i = i + 1;
    }
    st[2] = ncols;
    return pos;
}

func insert_row(input, pos, st, schema) {
    if (pos + 2 > len(input)) { return pos; }
    var nvals = input[pos + 1];
    pos = pos + 2;
    var afftab = alloc(4);
    afftab[0] = 1; afftab[1] = 1; afftab[2] = 2; afftab[3] = 4;
    var i = 0;
    while (i < nvals && pos < len(input)) {
        var v = input[pos];
        pos = pos + 1;
        var conv = afftab[st[0]]; // BUG sq-1 (trigger): affinity 6 only via the BLOB-after-REAL path
        out(v * conv);
        i = i + 1;
    }
    return pos;
}

func eval_where(input, pos, st) {
    if (pos + 3 > len(input)) { return 0; }
    var col = input[pos];
    var op = input[pos + 1];
    var val = input[pos + 2];
    if (op == '%') {
        return col % val; // BUG sq-3: modulo by a zero literal
    }
    if (op == '(') {
        // Nested subquery condition.
        return eval_where(input, pos + 1, st); // BUG sq-4: no nesting limit
    }
    if (op == '=') { return bool_to_int(col == val); }
    if (op == '<') { return bool_to_int(col < val); }
    return 0;
}

func bool_to_int(b) {
    if (b) { return 1; }
    return 0;
}

func select_rows(input, pos, st) {
    if (pos + 1 > len(input)) { return pos; }
    var r = eval_where(input, pos + 1, st);
    out(r);
    return pos + 4;
}

func main(input) {
    if (len(input) < 2) { return 1; }
    var st = alloc(3);
    var schema = alloc(16);
    var pos = 0;
    var stmts = 0;
    while (pos < len(input)) {
        var k = input[pos];
        pos = pos + 1;
        if (k == 'C') {
            pos = create_table(input, pos, st, schema);
        } else if (k == 'I') {
            pos = insert_row(input, pos, st, schema);
        } else if (k == 'S') {
            pos = select_rows(input, pos, st);
        } else if (k == 'V') {
            if (st[2] == 0) {
                abort(); // BUG sq-5: VACUUM without a schema aborts
            }
        } else if (k == ';') {
            stmts = stmts + 1;
        } else {
            return stmts;
        }
    }
    return stmts;
}
`

func init() {
	// sq-4 witness: deeply nested '(' conditions — every byte after the
	// SELECT keyword is '(' so each recursion level sees another one.
	sq4 := []byte{'S'}
	for i := 0; i < 250; i++ {
		sq4 = append(sq4, '(')
	}

	register(&Subject{
		Name:      "sqlite3",
		TypeLabel: "C",
		Source:    sqlite3Src,
		Seeds: [][]byte{
			{'C', 't', 2, 1, 2, ';', 'I', 't', 2, 10, 20, ';', 'S', 't', 5, '=', 5, ';'},
			{'C', 'u', 1, 3, ';', 'V', ';'},
		},
		Bugs: []Bug{
			{
				ID: "sq-1-affinity-oob",
				// CREATE with a REAL column then a BLOB column takes the
				// unnormalised path: affinity 4+2 = 6; the next INSERT
				// indexes the 4-entry afftab with it.
				Witness:       []byte{'C', 't', 2, 3, 4, 'I', 't', 1, 7},
				WantKind:      vm.KindOOBRead,
				WantFunc:      "insert_row",
				PathDependent: true,
				Comment: "BLOB-after-REAL column ordering keeps an unnormalised affinity (6) " +
					"that the INSERT conversion table (4 entries) is indexed with",
			},
			{
				ID:       "sq-2-schema-oob",
				Witness:  append([]byte{'C', 't', 20}, make([]byte, 20)...),
				WantKind: vm.KindOOBWrite,
				WantFunc: "create_table",
				Comment:  "column count exceeds the 16-slot schema",
			},
			{
				ID:       "sq-3-mod-zero",
				Witness:  []byte{'S', 't', 7, '%', 0},
				WantKind: vm.KindDivByZero,
				WantFunc: "eval_where",
				Comment:  "WHERE col % 0 divides by zero",
			},
			{
				ID:       "sq-4-subquery-recursion",
				Witness:  sq4,
				WantKind: vm.KindStackOverflow,
				WantFunc: "eval_where",
				Comment:  "nested subquery conditions recurse without a limit",
			},
			{
				ID:       "sq-5-vacuum-abort",
				Witness:  []byte{'V', ';'},
				WantKind: vm.KindAbort,
				WantFunc: "main",
				Comment:  "VACUUM with no schema aborts",
			},
		},
	})
}
