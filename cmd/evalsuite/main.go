// Command evalsuite reproduces the paper's evaluation: it runs
// multi-run campaigns for every ⟨subject, fuzzer⟩ pair and regenerates
// each table and figure. Budgets are execution counts, the
// deterministic analogue of the paper's 48-hour runs.
//
// Usage:
//
//	evalsuite                        # everything, default scale
//	evalsuite -table 2 -runs 10 -budget 400000
//	evalsuite -figure 3 -subjects flvmeta,jhead
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/evalharness"
	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/strategy"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate only this table (1-10); 0 = all")
		figure    = flag.Int("figure", 0, "regenerate only this figure (2 or 3); 0 = all")
		runs      = flag.Int("runs", 3, "runs per subject/fuzzer pair (paper: 10)")
		budget    = flag.Int64("budget", 120000, "execution budget per run (48-hour analogue)")
		round     = flag.Int64("round", 0, "culling round budget (default budget/8)")
		subjectsF = flag.String("subjects", "", "comma-separated subject subset (default all 18)")
		seed      = flag.Int64("seed", 1, "base seed")
		quiet     = flag.Bool("quiet", false, "suppress per-campaign progress")
		fig2Sub   = flag.String("fig2-subject", "lame", "subject for the Figure 2 series")
		stateDir  = flag.String("state", "", "persist finished runs here; a restarted suite reloads them instead of recomputing")
		engineF   = flag.String("engine", "bytecode", "execution engine: bytecode|cgt|interp")
		analysisF = flag.String("analysis", "", "static-analysis strictness: strict verifies IR and bytecode on every compile")
		optF      = flag.Bool("opt", true, "enable verified bytecode optimization passes")
	)
	flag.Parse()

	if *analysisF != "" && *analysisF != "strict" {
		fmt.Fprintf(os.Stderr, "evalsuite: unknown -analysis level %q (want strict or empty)\n", *analysisF)
		os.Exit(1)
	}

	engine := fuzz.EngineAuto
	switch *engineF {
	case "bytecode", "auto", "":
	case "cgt":
		engine = fuzz.EngineCGT
	case "interp", "interpreter":
		engine = fuzz.EngineInterp
	default:
		fmt.Fprintf(os.Stderr, "evalsuite: unknown -engine %q (want bytecode, cgt, or interp)\n", *engineF)
		os.Exit(1)
	}

	cfg := evalharness.Config{
		Runs:        *runs,
		Budget:      *budget,
		RoundBudget: *round,
		BaseSeed:    *seed,
		StateDir:    *stateDir,
		Engine:      engine,
		Instr:       instrument.Config{Analysis: *analysisF, NoOpt: !*optF},
	}
	if *subjectsF != "" {
		cfg.Subjects = strings.Split(*subjectsF, ",")
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	// Restrict fuzzers to what the requested outputs need.
	need := map[strategy.Name]bool{}
	addAll := func(fs ...strategy.Name) {
		for _, f := range fs {
			need[f] = true
		}
	}
	wantTable := func(n int) bool { return (*table == 0 && *figure == 0) || *table == n }
	wantFigure := func(n int) bool { return (*table == 0 && *figure == 0) || *figure == n }
	if wantTable(1) || wantTable(3) || wantTable(4) || wantTable(5) {
		addAll(strategy.Path, strategy.PCGuard, strategy.Cull, strategy.Opp)
	}
	if wantTable(2) || wantTable(6) || wantFigure(3) {
		addAll(strategy.Path, strategy.PCGuard, strategy.Cull, strategy.Opp)
	}
	if wantTable(7) {
		addAll(strategy.Path, strategy.Cull, strategy.Opp, strategy.PathAFL)
	}
	if wantTable(8) || wantTable(9) {
		addAll(strategy.PathAFL, strategy.AFL)
	}
	if wantTable(10) {
		addAll(strategy.Path, strategy.CullR, strategy.Cull)
	}
	if wantFigure(2) {
		addAll(strategy.Path, strategy.PCGuard, strategy.Cull, strategy.Opp)
	}
	for f := range need {
		cfg.Fuzzers = append(cfg.Fuzzers, f)
	}

	fmt.Fprintf(os.Stderr, "running suite: %d subjects x %d fuzzers x %d runs, budget %d\n",
		lenOrAll(cfg.Subjects), len(cfg.Fuzzers), cfg.Runs, cfg.Budget)
	sr, err := evalharness.RunSuite(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evalsuite: %v\n", err)
		os.Exit(1)
	}

	// With -state the rendered tables also land in the state directory
	// (eval_output.txt) next to the curves, provenance, and coverage
	// reports, so a durable suite's artifacts are self-contained.
	var out io.Writer = os.Stdout
	if *stateDir != "" {
		path := filepath.Join(*stateDir, "eval_output.txt")
		if f, err := os.Create(path); err != nil {
			fmt.Fprintf(os.Stderr, "evalsuite: cannot tee output: %v\n", err)
		} else {
			defer f.Close()
			out = io.MultiWriter(os.Stdout, f)
		}
	}
	emit := func(n int, f func()) {
		if wantTable(n) {
			f()
			fmt.Fprintln(out)
		}
	}
	emit(1, func() { sr.Table1(out) })
	emit(2, func() { sr.Table2(out) })
	emit(3, func() { sr.Table3(out) })
	emit(4, func() { sr.Table4(out) })
	emit(5, func() { sr.Table5(out) })
	emit(6, func() { sr.Table6(out) })
	emit(7, func() { sr.Table7(out) })
	emit(8, func() { sr.Table8(out) })
	emit(9, func() { sr.Table9(out) })
	emit(10, func() { sr.Table10(out) })
	if wantFigure(2) {
		sub := *fig2Sub
		if len(cfg.Subjects) > 0 && !containsStr(cfg.Subjects, sub) {
			sub = cfg.Subjects[0]
		}
		sr.Figure2(out, sub)
		fmt.Fprintln(out)
	}
	if wantFigure(3) {
		sr.Figure3(out)
		fmt.Fprintln(out)
	}
	if *table == 0 && *figure == 0 {
		sr.Trajectory(out)
		fmt.Fprintln(out)
		sr.Summary(out)
	}
}

func lenOrAll(s []string) int {
	if len(s) == 0 {
		return 18
	}
	return len(s)
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
