package coverage_test

import (
	"testing"
	"testing/quick"

	"repro/internal/coverage"
)

func TestMapBasics(t *testing.T) {
	m := coverage.NewMap(64)
	if m.Len() != 64 {
		t.Fatalf("len = %d", m.Len())
	}
	m.Add(3)
	m.Add(3)
	m.Add(64 + 3) // wraps
	m.Add(10)
	if m.Bytes()[3] != 3 {
		t.Errorf("entry 3 = %d, want 3 (wrapping add)", m.Bytes()[3])
	}
	if m.CountNonZero() != 2 {
		t.Errorf("nonzero = %d", m.CountNonZero())
	}
	idx := m.Indices()
	if len(idx) != 2 || idx[0] != 3 || idx[1] != 10 {
		t.Errorf("indices = %v", idx)
	}
	m.Reset()
	if m.CountNonZero() != 0 {
		t.Error("reset failed")
	}
}

func TestMapSaturates(t *testing.T) {
	m := coverage.NewMap(64)
	for i := 0; i < 1000; i++ {
		m.Add(0)
	}
	if m.Bytes()[0] != 255 {
		t.Errorf("saturation: %d", m.Bytes()[0])
	}
}

func TestMapSizeValidation(t *testing.T) {
	for _, bad := range []int{0, -4, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMap(%d) did not panic", bad)
				}
			}()
			coverage.NewMap(bad)
		}()
	}
}

func TestClassifyBuckets(t *testing.T) {
	cases := map[uint8]uint8{
		0: 0, 1: 1, 2: 2, 3: 4, 4: 8, 7: 8, 8: 16, 15: 16,
		16: 32, 31: 32, 32: 64, 127: 64, 128: 128, 255: 128,
	}
	for in, want := range cases {
		bits := []uint8{in}
		coverage.Classify(bits)
		if bits[0] != want {
			t.Errorf("classify(%d) = %d, want %d", in, bits[0], want)
		}
	}
}

func TestClassifyProperties(t *testing.T) {
	// Bucketing is monotone-ish in powers and produces single-bit
	// masks.
	err := quick.Check(func(c uint8) bool {
		bits := []uint8{c}
		coverage.Classify(bits)
		b := bits[0]
		if c == 0 {
			return b == 0
		}
		// Exactly one bit set.
		return b != 0 && b&(b-1) == 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestVirginMerge(t *testing.T) {
	v := coverage.NewVirgin(8)
	trace := make([]uint8, 8)
	trace[1] = 1
	if nov := v.Merge(trace); nov != coverage.NewTuples {
		t.Fatalf("first merge: %v", nov)
	}
	if nov := v.Merge(trace); nov != coverage.NoNew {
		t.Fatalf("repeat merge: %v", nov)
	}
	// Same entry, new bucket: counts as NewCounts.
	trace[1] = 2
	if nov := v.Merge(trace); nov != coverage.NewCounts {
		t.Fatalf("new bucket: %v", nov)
	}
	// New entry beats new count.
	trace2 := make([]uint8, 8)
	trace2[1] = 4
	trace2[5] = 1
	if nov := v.Merge(trace2); nov != coverage.NewTuples {
		t.Fatalf("mixed: %v", nov)
	}
}

func TestVirginPeekDoesNotConsume(t *testing.T) {
	v := coverage.NewVirgin(8)
	trace := make([]uint8, 8)
	trace[2] = 1
	if v.Peek(trace) != coverage.NewTuples {
		t.Fatal("peek novelty")
	}
	if v.Peek(trace) != coverage.NewTuples {
		t.Fatal("peek consumed")
	}
	v.Merge(trace)
	if v.Peek(trace) != coverage.NoNew {
		t.Fatal("merge did not consume")
	}
}

// TestVirginMergeIdempotent is the novelty-consumption property: after
// any merge, re-merging the same classified trace reports NoNew.
func TestVirginMergeIdempotent(t *testing.T) {
	err := quick.Check(func(raw []uint8) bool {
		size := 64
		v := coverage.NewVirgin(size)
		trace := make([]uint8, size)
		for i, b := range raw {
			trace[i%size] = b
		}
		coverage.Classify(trace)
		v.Merge(trace)
		return v.Merge(trace) == coverage.NoNew
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// TestVirginMonotone: merging a superset trace after its subset yields
// novelty exactly when the superset adds entries or buckets.
func TestVirginMonotone(t *testing.T) {
	v := coverage.NewVirgin(16)
	a := make([]uint8, 16)
	a[3] = 1
	v.Merge(a)
	b := make([]uint8, 16)
	b[3] = 1
	b[7] = 1
	if v.Merge(b) != coverage.NewTuples {
		t.Error("superset not novel")
	}
	if v.Merge(b) != coverage.NoNew {
		t.Error("second superset merge novel")
	}
}

func TestHashes(t *testing.T) {
	a := make([]uint8, 32)
	b := make([]uint8, 32)
	if coverage.Hash64(a) != coverage.Hash64(b) {
		t.Error("equal traces hash differently")
	}
	if coverage.SparseHash64(a) != coverage.SparseHash64(b) {
		t.Error("equal traces sparse-hash differently")
	}
	b[5] = 3
	if coverage.Hash64(a) == coverage.Hash64(b) {
		t.Error("different traces collide (Hash64)")
	}
	if coverage.SparseHash64(a) == coverage.SparseHash64(b) {
		t.Error("different traces collide (SparseHash64)")
	}
	// Sparse and dense agree on discrimination for position swaps.
	c := make([]uint8, 32)
	c[6] = 3
	if coverage.SparseHash64(b) == coverage.SparseHash64(c) {
		t.Error("position not mixed into sparse hash")
	}
}

// TestSparseMatchesDense: the sparse classify/merge fast path must be
// observationally identical to the dense one for any access pattern.
func TestSparseMatchesDense(t *testing.T) {
	err := quick.Check(func(indices []uint16, repeats uint8) bool {
		size := 1 << 10
		sparse := coverage.NewMap(size)
		dense := make([]uint8, size)
		for r := 0; r <= int(repeats%4); r++ {
			for _, raw := range indices {
				i := uint32(raw) % uint32(size)
				sparse.Add(i)
				if dense[i] != 255 {
					dense[i]++
				}
			}
		}
		coverage.Classify(dense)
		sparse.ClassifySparse()
		sb := sparse.Bytes()
		for i := range dense {
			if sb[i] != dense[i] {
				return false
			}
		}
		// Novelty agreement.
		v1 := coverage.NewVirgin(size)
		v2 := coverage.NewVirgin(size)
		if v1.Merge(dense) != v2.MergeSparse(sparse) {
			return false
		}
		// And idempotence of the sparse path.
		return v2.MergeSparse(sparse) == coverage.NoNew
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

func TestDirtyTracking(t *testing.T) {
	m := coverage.NewMap(64)
	m.Add(5)
	m.Add(5)
	m.Add(9)
	if len(m.Dirty()) != 2 {
		t.Errorf("dirty = %v", m.Dirty())
	}
	m.Reset()
	if len(m.Dirty()) != 0 || m.Bytes()[5] != 0 || m.Bytes()[9] != 0 {
		t.Error("reset did not clear dirty entries")
	}
	// Saturation does not duplicate dirty entries.
	for i := 0; i < 300; i++ {
		m.Add(7)
	}
	if len(m.Dirty()) != 1 || m.Bytes()[7] != 255 {
		t.Errorf("saturating adds: dirty=%v val=%d", m.Dirty(), m.Bytes()[7])
	}
}

// TestVirginCount pins the incremental consumed counter: Count must
// equal the number of cells with bits != 0xff after any mix of dense
// merges, bucket upgrades, and checkpoint round-trips.
func TestVirginCount(t *testing.T) {
	v := coverage.NewVirgin(16)
	if v.Count() != 0 {
		t.Fatal("fresh map should count 0")
	}
	trace := make([]uint8, 16)
	trace[2] = 1
	trace[9] = 1
	v.Merge(trace)
	if v.Count() != 2 {
		t.Fatalf("Count = %d after 2 new cells, want 2", v.Count())
	}
	// Re-merging and upgrading a bucket touch no new cells.
	v.Merge(trace)
	trace[2] = 4
	v.Merge(trace)
	if v.Count() != 2 {
		t.Fatalf("Count = %d after re-merge/bucket upgrade, want 2", v.Count())
	}
	// A genuinely new cell increments.
	trace[14] = 1
	v.Merge(trace)
	if v.Count() != 3 {
		t.Fatalf("Count = %d after third cell, want 3", v.Count())
	}

	// Sparse path counts identically.
	m := coverage.NewMap(16)
	m.Add(2)
	m.Add(7)
	m.ClassifySparse()
	v.MergeSparse(m)
	if v.Count() != 4 {
		t.Fatalf("Count = %d after sparse merge, want 4", v.Count())
	}

	// Checkpoint round-trip preserves the count.
	cells := v.Cells()
	if len(cells) != v.Count() {
		t.Fatalf("Cells len %d != Count %d", len(cells), v.Count())
	}
	v2 := coverage.NewVirgin(16)
	if err := v2.SetCells(cells); err != nil {
		t.Fatal(err)
	}
	if v2.Count() != v.Count() {
		t.Fatalf("restored Count = %d, want %d", v2.Count(), v.Count())
	}
	if err := v2.SetCells(nil); err != nil {
		t.Fatal(err)
	}
	if v2.Count() != 0 {
		t.Fatalf("SetCells(nil) Count = %d, want 0", v2.Count())
	}
}

// TestVirginCountMatchesCells is the property form: after arbitrary
// merges the incremental counter equals len(Cells()).
func TestVirginCountMatchesCells(t *testing.T) {
	err := quick.Check(func(raw []uint8) bool {
		size := 32
		v := coverage.NewVirgin(size)
		trace := make([]uint8, size)
		for i, b := range raw {
			trace[i%size] = b
			if i%7 == 6 {
				coverage.Classify(trace)
				v.Merge(trace)
			}
		}
		coverage.Classify(trace)
		v.Merge(trace)
		return v.Count() == len(v.Cells())
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
