package stats_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestMedians(t *testing.T) {
	if stats.MedianInt(nil) != 0 {
		t.Error("empty median")
	}
	if stats.MedianInt([]int{5}) != 5 {
		t.Error("singleton")
	}
	if stats.MedianInt([]int{3, 1, 2}) != 2 {
		t.Error("odd")
	}
	// Even lengths report the lower-middle (an actual run's value).
	if stats.MedianInt([]int{4, 1, 3, 2}) != 2 {
		t.Error("even")
	}
	if stats.MedianInt64([]int64{10, 30, 20}) != 20 {
		t.Error("int64")
	}
	if got := stats.MedianFloat([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("float median = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := stats.GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %v", got)
	}
	if got := stats.GeoMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("geomean(ones) = %v", got)
	}
	// Zeros and negatives are skipped.
	if got := stats.GeoMean([]float64{0, -3, 4}); math.Abs(got-4) > 1e-9 {
		t.Errorf("geomean with junk = %v", got)
	}
	if stats.GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
}

func TestMeanSumRatio(t *testing.T) {
	if stats.Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
	if stats.Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if stats.Sum([]int64{1, 2, 3}) != 6 {
		t.Error("sum")
	}
	if stats.Ratio(1, 0) != "-" {
		t.Error("ratio zero denominator")
	}
	if stats.Ratio(3, 2) != "1.50" {
		t.Errorf("ratio = %s", stats.Ratio(3, 2))
	}
}

func TestMedianProperties(t *testing.T) {
	// The median is always an element of the (non-empty) input and does
	// not mutate its argument.
	err := quick.Check(func(xs []int) bool {
		if len(xs) == 0 {
			return stats.MedianInt(xs) == 0
		}
		orig := append([]int(nil), xs...)
		m := stats.MedianInt(xs)
		for i := range xs {
			if xs[i] != orig[i] {
				return false
			}
		}
		for _, x := range xs {
			if x == m {
				return true
			}
		}
		return false
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// Geomean of positive values lies between min and max.
	err := quick.Check(func(raw []uint16) bool {
		var xs []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r) + 1
			xs = append(xs, v)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		if len(xs) == 0 {
			return true
		}
		g := stats.GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}
