// Package bytecode is the compiled execution engine of the
// reproduction: it lowers a cfg.Program once into a flat, pre-resolved
// instruction array with the coverage instrumentation inlined as
// direct map writes, and executes it on a pooled, allocation-free
// machine.
//
// The reference semantics remain package vm's CFG-walking interpreter;
// the bytecode engine is required to be observationally identical to
// it — same results, same crash reports, same step accounting, same
// coverage map contents for every feedback it supports. The
// differential tests enforce this equivalence on every benchmark
// subject.
//
// The design mirrors what coverage-guided tracing work (Nagy et al.)
// and Angora identify as the highest-leverage fuzzing optimisation:
// per-execution dispatch and tracing overhead. Three costs of the
// interpreter are removed here:
//
//   - block/instruction re-resolution: jump targets, callee entry
//     points, and builtin identities are resolved at compile time into
//     absolute program counters and specialised opcodes;
//   - tracer interface dispatch: each feedback mechanism (edge, block,
//     n-gram, Ball-Larus path, PathAFL-like) is lowered at compile
//     time to probe instructions placed exactly where its events fire,
//     writing straight into the coverage map;
//   - hot-loop allocation: frames carve slots from one reusable stack,
//     arrays are carved from a reusable arena, and the comparison /
//     output buffers are reset rather than reallocated, so steady-state
//     executions allocate nothing.
package bytecode

import (
	"repro/internal/balllarus"
	"repro/internal/cfg"
	"repro/internal/coverage"
	"repro/internal/lang"
)

// ProbeKind selects the feedback mechanism whose probes are inlined at
// compile time. It deliberately mirrors the instrument package's
// feedback set; the lowering from instrument.Feedback lives there (see
// instrument.CompiledFor) so this package stays independent of it.
type ProbeKind int

// Probe kinds.
const (
	// ProbeNone compiles an uninstrumented program (the NullTracer
	// analogue).
	ProbeNone ProbeKind = iota
	// ProbeEdge inlines exact global-edge-ID hit counts (pcguard).
	ProbeEdge
	// ProbeBlock inlines basic-block hit counts.
	ProbeBlock
	// ProbeNGram inlines the n-gram window hash feedback.
	ProbeNGram
	// ProbePath inlines Ball-Larus path-register increments and
	// record-at-termination probes (the paper's feedback).
	ProbePath
	// ProbePathAFL inlines edge counts plus the pruned whole-program
	// path-hash segments of the PathAFL-like feedback.
	ProbePathAFL
)

// FnSpec is the per-function instrumentation plan a Spec carries. Which
// fields are meaningful depends on the Spec's Kind.
type FnSpec struct {
	// Salt is the function's stable pseudo-random identifier
	// (ProbePath, ProbePathAFL).
	Salt uint32
	// Base offsets the function's IDs in the global ID space: its first
	// edge (ProbeEdge, ProbePathAFL) or its first block (ProbeBlock,
	// ProbeNGram).
	Base uint32
	// Tracked marks functions included in the whole-program path hash
	// (ProbePathAFL's partial instrumentation).
	Tracked bool
	// HashMode marks functions whose acyclic path count overflowed;
	// they fall back to a rolling hash over edge indices (ProbePath).
	HashMode bool
	// EdgeInc, Back, and RetInc are the Ball-Larus runtime plan
	// (ProbePath, non-hash mode).
	EdgeInc []int64
	Back    map[int]balllarus.BackAction
	RetInc  []int64
}

// Spec is a compile-time instrumentation specification: everything the
// compiler needs to inline one feedback mechanism's probes.
type Spec struct {
	Kind ProbeKind
	// MixHash selects the hash-mixing map-index mode for ProbePath
	// (instrument.MixHash); false is the paper's XOR formula.
	MixHash bool
	// NGram is the window length for ProbeNGram.
	NGram int
	// Segment bounds hashed path-segment length for ProbePathAFL.
	Segment int
	// Opt enables the IR optimization passes (constant folding,
	// dead-store elimination) and lowering-time branch folding and
	// dead-block elimination. All passes preserve observational
	// equivalence with the reference interpreter, including exact step
	// counts and coverage bytes.
	Opt bool
	// Verify runs the IR verifier after every optimization pass and the
	// bytecode structural verifier after lowering and fusion; a
	// violation fails compilation with a diagnostic naming the
	// function, block, and invariant.
	Verify bool
	// Fns has one entry per program function.
	Fns []FnSpec
}

// Opcodes. The order is semantic: every opcode below opStepChk was
// lowered from a cfg.Instr and is charged one step by the reference
// interpreter, so the dispatch loop does step accounting for exactly
// the range [0, opStepChk). Everything from opStepChk on is control
// flow or instrumentation and runs free of per-instruction accounting
// (opStepChk itself implements the interpreter's per-block charge).
const (
	opConst  uint8 = iota // dst = imm
	opStr                 // dst = new array holding strs[imm]
	opMove                // dst = slot a
	opAdd                 // dst = a + b
	opSub                 // dst = a - b
	opMul                 // dst = a * b
	opDiv                 // dst = a / b (checked)
	opMod                 // dst = a % b (checked)
	opBand                // dst = a & b
	opBor                 // dst = a | b
	opBxor                // dst = a ^ b
	opShl                 // dst = a << (b & 63)
	opShr                 // dst = a >> (b & 63)
	opEq                  // dst = a == b, records CmpObs (imm = lang.Kind)
	opNe                  // dst = a != b, records CmpObs
	opLt                  // dst = a < b, records CmpObs
	opLe                  // dst = a <= b, records CmpObs
	opGt                  // dst = a > b, records CmpObs
	opGe                  // dst = a >= b, records CmpObs
	opBadBin              // unknown binary operator: aborts when executed
	opNeg                 // dst = -a
	opNot                 // dst = (a == 0)
	opCompl               // dst = ^a
	opLoad                // dst = heap[a][b] (checked)
	opStore               // heap[a][b] = dst (checked; dst is the value slot)
	opCall                // dst = call fns[imm](argSlots[a : a+b]...)
	opLen                 // dst = len(heap[a]) (checked)
	opAlloc               // dst = handle of fresh zeroed array of a cells (checked)
	opAssert              // crash unless a != 0; dst = 0
	opAbort               // crash: abort called
	opAbs                 // dst = |a|
	opMin                 // dst = min(a, b)
	opMax                 // dst = max(a, b)
	opOut                 // append a to output (capped); dst = 0
	opNop                 // unknown op/builtin: counts a step, does nothing

	// Fused const+ALU superinstructions: a two-slot opConst feeding the
	// next instruction. The head slot carries the constant (dst = the
	// const's slot, imm = its value, a = the variable operand for
	// add/sub); the second slot keeps the original consumer untouched,
	// both for its operands and so the pos table stays per-pc exact.
	// They sit below opStepChk because the head charges the const's
	// step; the handler charges the consumer's step itself.
	opConstEq   // const b; eq dst = a == b
	opConstNe   // const b; ne dst = a != b
	opConstLt   // const b; lt dst = a < b
	opConstLe   // const b; le dst = a <= b
	opConstGt   // const b; gt dst = a > b
	opConstGe   // const b; ge dst = a >= b
	opConstAdd  // const c; add dst = a + c (either operand order)
	opConstSub  // const c; sub dst = a - c
	opConstLoad // const idx; load dst = heap[a][idx] (checked)

	// Compare-and-branch superinstructions: a comparison whose result
	// immediately feeds the block's fused opStepChk+opBr exit. The
	// head is the comparison (so the dispatch header charges its
	// step); the handler then performs the block-exit accounting and
	// branches on the just-computed result. opEqStepBr..opGeStepBr
	// read their operands from the head; the opConst* variants span
	// three live slots (const head, dead compare, dead opStepBr).
	opEqStepBr
	opNeStepBr
	opLtStepBr
	opLeStepBr
	opGtStepBr
	opGeStepBr
	opConstEqStepBr
	opConstNeStepBr
	opConstLtStepBr
	opConstLeStepBr
	opConstGtStepBr
	opConstGeStepBr

	// opCallPush is an opCall whose callee's entry instruction is
	// ProbePath's opProbePush: the push happens during the call and
	// the callee is entered one instruction in.
	opCallPush

	// opStepChk is the per-block accounting the interpreter performs
	// after a block's instructions: one step, the timeout check, and
	// the fault-injection hook. It must appear exactly once per
	// lowered block, before its terminator.
	opStepChk
	opJmp // pc = a
	opBr  // pc = (slot a != 0) ? b : dst

	opRet // return slot a (a < 0 means return 0)

	// Probe opcodes: the inlined feedback instrumentation.
	opProbeAdd      // m.Add(uint32(imm))
	opProbePush     // path: push a fresh path register
	opProbeInc      // path: reg += imm
	opProbeBack     // path: record(reg + imm, salt a); reg = backVals[b]
	opProbeRetPath  // path: record(reg + imm, salt a); pop the register
	opProbeHashEdge // path hash fallback: reg = splitmix64(reg ^ imm)
	opProbeVisit    // ngram: slide the window to location imm and hash
	opProbePAEnter  // pathafl: fold salt imm into the rolling segment hash
	opProbePAFlush  // pathafl: close the current path segment

	// Fused block-exit superinstructions: opStepChk folded into the
	// terminator (and the single probe between them, when present).
	// Operands are copied from the consumed slots at fuse time; the
	// consumed slots stay in place, dead, so jump targets and the pos
	// table never move. All are ≥ opStepChk: the handlers do the step
	// charge, timeout check, and fault-injection hook themselves, in
	// opStepChk's order.
	opStepBr         // stepchk; br
	opStepJmp        // stepchk; jmp a
	opStepRet        // stepchk; ret a
	opStepAddJmp     // stepchk; m.Add(imm); jmp a
	opStepIncJmp     // stepchk; reg += imm; jmp a
	opStepBackJmp    // stepchk; back(salt a, inc imm, restart b); jmp dst
	opStepRetPathRet // stepchk; retpath(salt a, inc imm); ret b
	opStepFlushRet   // stepchk; paflush; ret a

	// Trampoline superinstructions: a probe folded into its jmp.
	opAddJmp  // m.Add(imm); jmp a
	opIncJmp  // reg += imm; jmp a
	opBackJmp // back(salt a, inc imm, restart b); jmp dst

	// opElide is the patched-out form of opProbeAdd: the coverage-guided
	// tracing planner rewrites a probe to it once the probe's map cell
	// is fully consumed (see Patchable). It does nothing and — like
	// every probe — charges no step, so a patched program's step counts,
	// timeouts, and injected-fault positions are identical to the
	// pristine program's. It sits outside the [opProbeAdd, opProbePAFlush]
	// probe range on purpose: the structural verifier only ever sees
	// pristine code, and Patchable.Verify checks patched code instead.
	opElide
)

// instr is one flat instruction; operand meaning is per-opcode (see the
// opcode comments). The struct is deliberately 24 bytes — the dispatch
// loop is bound by instruction-fetch cache density, so cold payloads
// live in Program side tables instead: source positions (crash reports
// only) in Program.pos, and opProbeBack's restart value in
// Program.backVals.
type instr struct {
	op  uint8
	dst int32
	a   int32
	b   int32
	imm int64
}

// fnInfo is the per-function header of a compiled program.
type fnInfo struct {
	name      string
	entryPC   int32
	frameSize int32
	nparams   int32
	pos       lang.Pos
}

// Program is a compiled program: one flat code array plus the side
// tables the machine needs. It is immutable after Compile and safe to
// share across machines (and goroutines).
type Program struct {
	src  *cfg.Program
	spec Spec
	code []instr
	fns  []fnInfo
	// argSlots is the flattened pool of call-argument slot indices;
	// opCall's a/b fields select a window into it.
	argSlots []int32
	// strCells holds the pre-decoded cell contents of string literals;
	// opStr's imm indexes it.
	strCells [][]int64
	// pos holds the source position of code[i] at pos[i]. It is only
	// consulted on crash paths, keeping the hot code array dense.
	pos []lang.Pos
	// backVals holds opProbeBack's path-register restart values,
	// indexed by the instruction's b field.
	backVals []int64
}

// Source returns the cfg program this was compiled from.
func (p *Program) Source() *cfg.Program { return p.src }

// NumInstrs returns the flat instruction count (probes included).
func (p *Program) NumInstrs() int { return len(p.code) }

// NumNops returns how many instruction slots hold counted nops — dead
// stores reclaimed by the verified optimization passes (step parity
// forbids deleting the slots outright). Telemetry reports it next to
// NumInstrs so optimizer effectiveness is visible per subject.
func (p *Program) NumNops() int {
	n := 0
	for i := range p.code {
		if p.code[i].op == opNop {
			n++
		}
	}
	return n
}

// splitmix64 is the 64-bit finalizer shared with the instrument
// package; the differential tests pin the two to identical outputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ngramHash computes the n-gram window hash exactly as the instrument
// tracer does (including its FNV offset constant).
func ngramHash(hist []uint32, pos int) uint64 {
	var h uint64 = 1469598103934665603
	n := len(hist)
	for i := 0; i < n; i++ {
		h ^= uint64(hist[(pos+i)%n])
		h *= 1099511628211
	}
	return h
}

// ngramVisit writes the n-gram window hash into m.
func ngramVisit(m *coverage.Map, hist []uint32, pos int) {
	m.Add(uint32(ngramHash(hist, pos)))
}
