package interproc

import "testing"

// TestEqualityChainRefinement: taking `x == 5` pins x to the singleton
// [5,5], so a later `x == 9` comparison on the same slot can only go
// the else way — the both-then path is infeasible and the implication
// (first=then => second=else) must be emitted.
func TestEqualityChainRefinement(t *testing.T) {
	fs := mustFacts(t, `
func main(input) {
    if (len(input) < 1) { return 0; }
    var x = input[0];
    var r = 0;
    if (x == 5) { r = 1; }
    if (x == 9) { r = r + 2; }
    return r;
}
`)
	mi := fs.Prog.ByName["main"]
	ff := fs.Fns[mi]
	if !ff.Walked {
		t.Fatal("main should be path-enumerable")
	}
	if len(ff.Infeasible) == 0 {
		t.Fatal("x==5 then x==9 both-then path not proven infeasible")
	}
	b1 := branchAt(t, fs, "main", 6).Block
	b2 := branchAt(t, fs, "main", 7).Block
	found := false
	for _, im := range ff.Implications {
		if im.B1 == b1 && im.D1 && im.B2 == b2 && !im.D2 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing implication (x==5 then) => (x==9 else); have %+v", ff.Implications)
	}
}

// TestEqualityRefinementStopsAtJoin: refinement from an equality test
// must not leak past a join that merges the refined and unrefined
// states — x is only [5,5] inside the then-arm, not after the if.
func TestEqualityRefinementStopsAtJoin(t *testing.T) {
	fs := mustFacts(t, `
func main(input) {
    if (len(input) < 2) { return 0; }
    var x = input[0];
    if (x == 5) { x = input[1]; }
    if (x == 9) { return 1; }
    return 2;
}
`)
	mi := fs.Prog.ByName["main"]
	ff := fs.Fns[mi]
	if !ff.Walked {
		t.Fatal("main should be path-enumerable")
	}
	// After the reassignment x is unconstrained on the then side and
	// [≠5-refined or anything] on the else side, so both outcomes of
	// `x == 9` are possible on every suffix: no implication may claim
	// the second branch is decided by the first.
	b1 := branchAt(t, fs, "main", 5).Block
	b2 := branchAt(t, fs, "main", 6).Block
	for _, im := range ff.Implications {
		if im.B1 == b1 && im.B2 == b2 && im.D1 {
			t.Errorf("unsound implication across reassignment: %+v", im)
		}
	}
}

// TestNegatedEqualityRefinement: the else side of an equality test
// shaves the matched endpoint off a tight interval, deciding a
// follow-up comparison. A comparison result is confined to [0,1], so
// x != 1 (else of ==1) forces x == 0 and vice versa.
func TestNegatedEqualityRefinement(t *testing.T) {
	fs := mustFacts(t, `
func main(input) {
    if (len(input) < 1) { return 0; }
    var x = input[0] > 50;
    var r = 0;
    if (x == 1) { r = 1; }
    if (x == 0) { r = r + 2; }
    return r;
}
`)
	mi := fs.Prog.ByName["main"]
	ff := fs.Fns[mi]
	if !ff.Walked {
		t.Fatal("main should be path-enumerable")
	}
	b1 := branchAt(t, fs, "main", 6).Block
	b2 := branchAt(t, fs, "main", 7).Block
	// x ∈ [0,1]: taking x==1 forces x!=0 (then => else), and skipping
	// x==1 forces x==0 (else => then).
	wantThen, wantElse := false, false
	for _, im := range ff.Implications {
		if im.B1 == b1 && im.B2 == b2 {
			if im.D1 && !im.D2 {
				wantThen = true
			}
			if !im.D1 && im.D2 {
				wantElse = true
			}
		}
	}
	if !wantThen {
		t.Errorf("missing (x==1 then) => (x==0 else); have %+v", ff.Implications)
	}
	if !wantElse {
		t.Errorf("missing (x==1 else) => (x==0 then); have %+v", ff.Implications)
	}
}
