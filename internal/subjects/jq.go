package subjects

import "repro/internal/vm"

// jq models a JSON parser: a complete recursive-descent grammar over
// objects, arrays, strings, numbers and literals. Its single bug (the
// paper finds exactly one in jq, by every fuzzer) is unbounded
// recursion on nested containers.
const jqSrc = `
// jq: recursive-descent JSON subset parser.
// state[0] = cursor position.

func skip_ws(input, state) {
    while (state[0] < len(input)) {
        var c = input[state[0]];
        if (c == ' ' || c == 9 || c == 10 || c == 13) {
            state[0] = state[0] + 1;
        } else {
            return 0;
        }
    }
    return 0;
}

func peek(input, state) {
    if (state[0] < len(input)) { return input[state[0]]; }
    return -1;
}

func parse_string(input, state) {
    state[0] = state[0] + 1; // opening quote
    var n = 0;
    while (state[0] < len(input)) {
        var c = input[state[0]];
        state[0] = state[0] + 1;
        if (c == '"') { return n; }
        if (c == 92) { // backslash escape
            state[0] = state[0] + 1;
        }
        n = n + 1;
    }
    return -1; // unterminated
}

func parse_number(input, state) {
    var v = 0;
    var negate = 0;
    if (peek(input, state) == '-') {
        negate = 1;
        state[0] = state[0] + 1;
    }
    while (state[0] < len(input)) {
        var c = input[state[0]];
        if (c >= '0' && c <= '9') {
            v = v * 10 + (c - '0');
            state[0] = state[0] + 1;
        } else {
            break;
        }
    }
    if (negate == 1) { v = -v; }
    return v;
}

func parse_literal(input, state, first) {
    // true / false / null: checked by first letter, consumed greedily.
    while (state[0] < len(input)) {
        var c = input[state[0]];
        if (c >= 'a' && c <= 'z') {
            state[0] = state[0] + 1;
        } else {
            break;
        }
    }
    if (first == 't') { return 1; }
    return 0;
}

// parse_value recurses for containers. BUG jq-1: no depth limit, so
// deeply nested arrays/objects overflow the stack.
func parse_value(input, state) {
    skip_ws(input, state);
    var c = peek(input, state);
    if (c == '{') { return parse_object(input, state); }
    if (c == '[') { return parse_array(input, state); }
    if (c == '"') { return parse_string(input, state); }
    if (c == '-' || (c >= '0' && c <= '9')) { return parse_number(input, state); }
    if (c >= 'a' && c <= 'z') { return parse_literal(input, state, c); }
    return -2; // syntax error
}

func parse_array(input, state) {
    state[0] = state[0] + 1; // '['
    var n = 0;
    skip_ws(input, state);
    if (peek(input, state) == ']') {
        state[0] = state[0] + 1;
        return 0;
    }
    while (1) {
        var v = parse_value(input, state);
        if (v == -2) { return -2; }
        n = n + 1;
        skip_ws(input, state);
        var c = peek(input, state);
        if (c == ',') {
            state[0] = state[0] + 1;
        } else if (c == ']') {
            state[0] = state[0] + 1;
            return n;
        } else {
            return -2;
        }
    }
    return n;
}

func parse_object(input, state) {
    state[0] = state[0] + 1; // '{'
    var n = 0;
    skip_ws(input, state);
    if (peek(input, state) == '}') {
        state[0] = state[0] + 1;
        return 0;
    }
    while (1) {
        skip_ws(input, state);
        if (peek(input, state) != '"') { return -2; }
        parse_string(input, state);
        skip_ws(input, state);
        if (peek(input, state) != ':') { return -2; }
        state[0] = state[0] + 1;
        var v = parse_value(input, state);
        if (v == -2) { return -2; }
        n = n + 1;
        skip_ws(input, state);
        var c = peek(input, state);
        if (c == ',') {
            state[0] = state[0] + 1;
        } else if (c == '}') {
            state[0] = state[0] + 1;
            return n;
        } else {
            return -2;
        }
    }
    return n;
}

func main(input) {
    var state = alloc(1);
    var v = parse_value(input, state);
    skip_ws(input, state);
    if (v != -2 && state[0] == len(input)) {
        out(1); // valid document
    }
    return v;
}
`

func init() {
	nested := make([]byte, 250)
	for i := range nested {
		nested[i] = '['
	}
	register(&Subject{
		Name:      "jq",
		TypeLabel: "C",
		Source:    jqSrc,
		Seeds: [][]byte{
			[]byte(`{"a": [1, 2, {"b": true}], "c": "hi"}`),
			[]byte(`[-12, "x", null]`),
		},
		Bugs: []Bug{
			{
				ID:       "jq-1-stack-overflow",
				Witness:  nested,
				WantKind: vm.KindStackOverflow,
				WantFunc: "parse_value",
				Comment:  "unbounded parse_value recursion on nested arrays",
			},
		},
	})
}
