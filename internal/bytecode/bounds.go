package bytecode

import "repro/internal/cfg"

// Static hit-count bound analysis for the CGT patch planner.
//
// The baseline elision rule waits for every hit-count bucket of a map
// cell to be observed before patching its probes out. That is far too
// conservative for the many probes that cannot reach the high buckets
// at all: an edge outside every loop of a function that is called once
// per execution fires at most once, so only the count==1 bucket is
// reachable and the other seven virgin bits can never clear. This file
// computes, per static probe cell, an upper bound on the hit count any
// single execution can produce, from which the planner derives the set
// of reachable buckets and consumes a cell as soon as all reachable
// buckets — rather than all eight — have been seen.
//
// The bound for one probe occurrence is the product of two factors:
//
//   - invocations: how many times its function can be entered per
//     execution, computed as a saturating fixpoint over the call
//     graph (the entry function contributes 1; a call site whose
//     block lies on a CFG cycle, or any recursion, saturates);
//   - traversals per invocation: 1, unless the probed edge lies on an
//     intra-function cycle (its target can reach its source), in
//     which case it saturates.
//
// Cells written by several probes (block feedback funnels every
// in-edge of a block into one cell, and map-size masking may collide
// arbitrary cells) take the sum of their writers' bounds, since the
// hit counts add within one execution. Saturation caps everything at
// boundCap, whose bucket mask is already all eight bits, so imprecise
// code only ever falls back to the baseline rule — never below it.
//
// Both factors are computed on the source CFG, not the optimized one
// the bytecode implements: the optimization passes share the edge set
// ("the passes never change the CFG shape") and only ever remove
// executions (branch folding, dead-block elimination), so source-CFG
// bounds remain valid upper bounds for the lowered code.

// boundCap saturates the bound arithmetic. Any value >= 128 already
// makes every bucket reachable, so the cap only needs headroom for
// intermediate sums.
const boundCap = 1 << 20

func satAdd(a, b int) int {
	if s := a + b; s < boundCap {
		return s
	}
	return boundCap
}

func satMul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a >= boundCap || b >= boundCap || a > boundCap/b {
		return boundCap
	}
	return a * b
}

// reachableBuckets maps a per-execution hit-count bound to the set of
// AFL bucket bits a probe with that bound can ever produce. The
// thresholds are the lower ends of coverage.bucket's classes.
func reachableBuckets(n int) uint8 {
	var m uint8
	for i, t := range [8]int{1, 2, 3, 4, 8, 16, 32, 128} {
		if n >= t {
			m |= 1 << i
		}
	}
	return m
}

// funcReach computes per-block forward reachability over f's edge set:
// reach[b][c] reports a path of at least one edge from b to c (so
// reach[b][b] means b lies on a cycle).
func funcReach(f *cfg.Func) [][]bool {
	succ := make([][]int, len(f.Blocks))
	for _, e := range f.Edges {
		succ[e.From] = append(succ[e.From], e.To)
	}
	reach := make([][]bool, len(f.Blocks))
	for b := range f.Blocks {
		seen := make([]bool, len(f.Blocks))
		stack := append([]int(nil), succ[b]...)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[x] {
				continue
			}
			seen[x] = true
			stack = append(stack, succ[x]...)
		}
		reach[b] = seen
	}
	return reach
}

// fnInvocationBounds returns, per function, an upper bound on how many
// times it can be invoked in one execution entered at entry, or nil if
// entry does not exist. Unreachable functions get bound 0 — their
// probes can never fire, so their cells are consumable immediately.
func fnInvocationBounds(g *cfg.Program, entry string) []int {
	ei, ok := g.ByName[entry]
	if !ok {
		return nil
	}
	type call struct{ caller, callee, mult int }
	var calls []call
	for fi, f := range g.Funcs {
		reach := funcReach(f)
		for bi := range f.Blocks {
			for _, in := range f.Blocks[bi].Instrs {
				if in.Op != cfg.OpCall {
					continue
				}
				mult := 1
				if reach[bi][bi] {
					mult = boundCap
				}
				calls = append(calls, call{fi, in.Callee, mult})
			}
		}
	}
	// Kleene iteration: bounds grow monotonically and saturate, so the
	// recomputation reaches a fixpoint (recursion cycles pump their
	// members up to the cap and stop there).
	b := make([]int, len(g.Funcs))
	for changed := true; changed; {
		changed = false
		nb := make([]int, len(b))
		nb[ei] = 1
		for _, c := range calls {
			nb[c.callee] = satAdd(nb[c.callee], satMul(b[c.caller], c.mult))
		}
		for i := range nb {
			if nb[i] > b[i] {
				b[i] = nb[i]
				changed = true
			}
		}
	}
	return b
}

// CellHitBounds returns, per raw (pre-mask) map cell, an upper bound
// on the hit count one execution entered at entry can accumulate
// there. It is defined only for feedbacks whose probes all carry
// compile-time map indices — edge and block coverage — and returns nil
// otherwise (or when entry is unknown), which disables the refinement.
// The cell enumeration mirrors the compiler's probe lowering: edge
// feedback writes Base+edge per CFG edge; block feedback writes Base
// at function entry and Base+target per CFG edge.
func (p *Program) CellHitBounds(entry string) map[uint32]int {
	if p.src == nil || (p.spec.Kind != ProbeEdge && p.spec.Kind != ProbeBlock) {
		return nil
	}
	fb := fnInvocationBounds(p.src, entry)
	if fb == nil {
		return nil
	}
	out := make(map[uint32]int)
	add := func(cell uint32, n int) { out[cell] = satAdd(out[cell], n) }
	for fi, f := range p.src.Funcs {
		var fs FnSpec
		if fi < len(p.spec.Fns) {
			fs = p.spec.Fns[fi]
		}
		reach := funcReach(f)
		if p.spec.Kind == ProbeBlock {
			add(fs.Base, fb[fi])
		}
		for e, ed := range f.Edges {
			n := fb[fi]
			if reach[ed.To][ed.From] {
				n = satMul(n, boundCap)
			}
			if p.spec.Kind == ProbeBlock {
				add(fs.Base+uint32(ed.To), n)
			} else {
				add(fs.Base+uint32(e), n)
			}
		}
	}
	return out
}
