// Package triage implements the crash- and bug-deduplication machinery
// the paper's evaluation rests on, plus the set algebra behind its
// tables: unique crashes via stack-trace hashing (top 5 frames), unique
// bugs via ground-truth crash sites (standing in for the paper's manual
// root-cause analysis), and pairwise set intersections/subtractions.
package triage

import (
	"sort"

	"repro/internal/fuzz"
)

// Set is a generic finite set with the operations the tables need.
type Set[T comparable] map[T]struct{}

// NewSet builds a set from items.
func NewSet[T comparable](items ...T) Set[T] {
	s := make(Set[T], len(items))
	for _, it := range items {
		s[it] = struct{}{}
	}
	return s
}

// Add inserts an item.
func (s Set[T]) Add(item T) { s[item] = struct{}{} }

// Has reports membership.
func (s Set[T]) Has(item T) bool {
	_, ok := s[item]
	return ok
}

// Len returns the cardinality.
func (s Set[T]) Len() int { return len(s) }

// Union returns a ∪ b.
func Union[T comparable](a, b Set[T]) Set[T] {
	out := make(Set[T], len(a)+len(b))
	for k := range a {
		out[k] = struct{}{}
	}
	for k := range b {
		out[k] = struct{}{}
	}
	return out
}

// Intersect returns a ∩ b.
func Intersect[T comparable](a, b Set[T]) Set[T] {
	out := make(Set[T])
	for k := range a {
		if _, ok := b[k]; ok {
			out[k] = struct{}{}
		}
	}
	return out
}

// Subtract returns a \ b.
func Subtract[T comparable](a, b Set[T]) Set[T] {
	out := make(Set[T])
	for k := range a {
		if _, ok := b[k]; !ok {
			out[k] = struct{}{}
		}
	}
	return out
}

// UnionAll folds many sets.
func UnionAll[T comparable](sets ...Set[T]) Set[T] {
	out := make(Set[T])
	for _, s := range sets {
		for k := range s {
			out[k] = struct{}{}
		}
	}
	return out
}

// BugSet extracts the ground-truth unique bug identities from a report.
func BugSet(r *fuzz.Report) Set[string] {
	out := make(Set[string], len(r.Bugs))
	for k := range r.Bugs {
		out[k] = struct{}{}
	}
	return out
}

// CrashSet extracts the stack-hash unique crash identities from a
// report.
func CrashSet(r *fuzz.Report) Set[uint64] {
	out := make(Set[uint64], len(r.Crashes))
	for _, rec := range r.Crashes {
		out[rec.Crash.StackHash(5)] = struct{}{}
	}
	return out
}

// Sorted returns the set's elements in sorted order (for deterministic
// rendering).
func Sorted[T interface {
	comparable
	~string | ~uint64 | ~int
}](s Set[T]) []T {
	out := make([]T, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VennCounts describes the three-region decomposition of two sets, as
// rendered in the paper's Figure 3.
type VennCounts struct {
	OnlyA  int
	Common int
	OnlyB  int
}

// Venn computes the two-set decomposition.
func Venn[T comparable](a, b Set[T]) VennCounts {
	return VennCounts{
		OnlyA:  Subtract(a, b).Len(),
		Common: Intersect(a, b).Len(),
		OnlyB:  Subtract(b, a).Len(),
	}
}

// Venn3Counts decomposes three sets into the seven Venn regions.
type Venn3Counts struct {
	OnlyA, OnlyB, OnlyC    int
	AB, AC, BC             int // pairwise-only intersections
	ABC                    int
	TotalA, TotalB, TotalC int
}

// Venn3 computes the three-set decomposition.
func Venn3[T comparable](a, b, c Set[T]) Venn3Counts {
	var v Venn3Counts
	v.TotalA, v.TotalB, v.TotalC = a.Len(), b.Len(), c.Len()
	for k := range UnionAll(a, b, c) {
		inA, inB, inC := a.Has(k), b.Has(k), c.Has(k)
		switch {
		case inA && inB && inC:
			v.ABC++
		case inA && inB:
			v.AB++
		case inA && inC:
			v.AC++
		case inB && inC:
			v.BC++
		case inA:
			v.OnlyA++
		case inB:
			v.OnlyB++
		default:
			v.OnlyC++
		}
	}
	return v
}
