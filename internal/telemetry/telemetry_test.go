package telemetry

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is the injectable clock behind deterministic tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestPublishLatest(t *testing.T) {
	clk := newFakeClock()
	r := New(Config{Now: clk.now})
	if r.Latest() != nil {
		t.Fatal("Latest before any Publish should be nil")
	}
	clk.advance(3 * time.Second)
	r.Publish(Counters{Execs: 100, CoverageCount: 4, MapSize: 16})
	s := r.Latest()
	if s == nil || s.Execs != 100 {
		t.Fatalf("Latest = %+v, want Execs 100", s)
	}
	if s.Elapsed != 3*time.Second {
		t.Errorf("Elapsed = %v, want 3s", s.Elapsed)
	}
	if got := s.MapDensity(); got != 0.25 {
		t.Errorf("MapDensity = %v, want 0.25", got)
	}
	if (&Snapshot{}).MapDensity() != 0 {
		t.Error("MapDensity with zero MapSize should be 0")
	}
}

func TestElapsedBase(t *testing.T) {
	clk := newFakeClock()
	r := New(Config{Now: clk.now, ElapsedBase: time.Minute})
	clk.advance(time.Second)
	if got := r.Elapsed(); got != time.Minute+time.Second {
		t.Fatalf("Elapsed = %v, want 1m1s", got)
	}
}

// TestSampleRates pins the rate derivation: the first sample rates over
// the whole elapsed time, later samples over the inter-sample delta,
// and sampling without progress is skipped.
func TestSampleRates(t *testing.T) {
	clk := newFakeClock()
	r := New(Config{Now: clk.now})

	if _, ok := r.Sample(); ok {
		t.Fatal("Sample before any Publish should report ok=false")
	}

	clk.advance(2 * time.Second)
	r.Publish(Counters{Execs: 1000, Added: 10, CrashExecs: 4, Timeouts: 2})
	p, ok := r.Sample()
	if !ok {
		t.Fatal("first sample not taken")
	}
	if p.ExecsPerSec != 500 || p.NoveltyPerSec != 5 || p.CrashesPerSec != 2 || p.TimeoutsPerSec != 1 {
		t.Errorf("first-sample rates = %v/%v/%v/%v, want 500/5/2/1",
			p.ExecsPerSec, p.NoveltyPerSec, p.CrashesPerSec, p.TimeoutsPerSec)
	}

	// No new publish: skipped.
	if _, ok := r.Sample(); ok {
		t.Fatal("sample without progress should be skipped")
	}

	clk.advance(1 * time.Second)
	r.Publish(Counters{Execs: 3000, Added: 10, CrashExecs: 4, Timeouts: 2})
	p, ok = r.Sample()
	if !ok {
		t.Fatal("second sample not taken")
	}
	if p.ExecsPerSec != 2000 || p.NoveltyPerSec != 0 {
		t.Errorf("second-sample rates = %v/%v, want 2000/0", p.ExecsPerSec, p.NoveltyPerSec)
	}
	if pts := r.Points(); len(pts) != 2 {
		t.Fatalf("Points = %d entries, want 2", len(pts))
	}
	if last, ok := r.LastPoint(); !ok || last.Execs != 3000 {
		t.Errorf("LastPoint = %+v ok=%v, want Execs 3000", last, ok)
	}
}

// TestSeriesRing verifies the sample ring drops the oldest points.
func TestSeriesRing(t *testing.T) {
	clk := newFakeClock()
	r := New(Config{Now: clk.now, SeriesCap: 4})
	for i := 1; i <= 6; i++ {
		clk.advance(time.Second)
		r.Publish(Counters{Execs: int64(i * 100)})
		if _, ok := r.Sample(); !ok {
			t.Fatalf("sample %d skipped", i)
		}
	}
	pts := r.Points()
	if len(pts) != 4 {
		t.Fatalf("ring retained %d points, want 4", len(pts))
	}
	for i, want := range []int64{300, 400, 500, 600} {
		if pts[i].Execs != want {
			t.Errorf("point %d Execs = %d, want %d", i, pts[i].Execs, want)
		}
	}
}

func TestSetInfo(t *testing.T) {
	r := New(Config{Info: Info{Banner: "a/b", Seed: 3}})
	if r.Info().GoVersion == "" {
		t.Error("New should default GoVersion")
	}
	info := r.Info()
	info.Engine = "bytecode"
	r.SetInfo(info)
	got := r.Info()
	if got.Engine != "bytecode" || got.Banner != "a/b" || got.GoVersion == "" {
		t.Errorf("Info after SetInfo = %+v", got)
	}
}

func TestSpanHistogram(t *testing.T) {
	clk := newFakeClock()
	r := New(Config{Now: clk.now, SpanCap: 8})

	r.Span(StageHavoc, 100*time.Nanosecond)
	r.Span(StageHavoc, 100*time.Nanosecond)
	r.Span(StageHavoc, 5*time.Microsecond)
	r.Span(StageCmplog, time.Millisecond)

	aggs := r.StageStats()
	if len(aggs) != 2 {
		t.Fatalf("StageStats has %d stages, want 2 (havoc, cmplog)", len(aggs))
	}
	havoc := aggs[0]
	if havoc.Stage != "havoc" || havoc.Count != 3 {
		t.Fatalf("first agg = %+v, want havoc x3", havoc)
	}
	if havoc.MinNs != 100 || havoc.MaxNs != 5000 || havoc.TotalNs != 5200 {
		t.Errorf("havoc min/max/total = %d/%d/%d, want 100/5000/5200", havoc.MinNs, havoc.MaxNs, havoc.TotalNs)
	}
	// 100ns lands in bucket [64, 128), 5µs in [4096, 8192).
	var total int64
	for _, b := range havoc.Buckets {
		total += b.Count
		if b.LowNs != 64 && b.LowNs != 4096 {
			t.Errorf("unexpected havoc bucket low %d", b.LowNs)
		}
		if b.LowNs == 64 && b.Count != 2 {
			t.Errorf("bucket [64,128) count = %d, want 2", b.Count)
		}
	}
	if total != 3 {
		t.Errorf("bucket counts sum to %d, want 3", total)
	}

	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("Spans retained %d, want 4", len(spans))
	}
	if spans[0].Name != "havoc" || spans[3].Name != "cmplog" {
		t.Errorf("span order wrong: %v ... %v", spans[0].Name, spans[3].Name)
	}
}

func TestSpanRingWraps(t *testing.T) {
	r := New(Config{SpanCap: 4})
	for i := 0; i < 10; i++ {
		r.Span(StageHavoc, time.Duration(i+1)*time.Microsecond)
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	if spans[0].Dur != 7*time.Microsecond || spans[3].Dur != 10*time.Microsecond {
		t.Errorf("ring kept %v..%v, want 7µs..10µs", spans[0].Dur, spans[3].Dur)
	}
	if agg := r.StageStats(); agg[0].Count != 10 {
		t.Errorf("histogram count = %d, want 10 (histograms never drop)", agg[0].Count)
	}
}

func TestStartSpan(t *testing.T) {
	clk := newFakeClock()
	r := New(Config{Now: clk.now})
	stop := r.StartSpan(StageCalibrate)
	clk.advance(42 * time.Millisecond)
	stop()
	aggs := r.StageStats()
	if len(aggs) != 1 || aggs[0].Stage != "calibrate" {
		t.Fatalf("StageStats = %+v", aggs)
	}
	if aggs[0].TotalNs != int64(42*time.Millisecond) {
		t.Errorf("span duration = %dns, want 42ms", aggs[0].TotalNs)
	}
}

func TestDurBucket(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0}, {-5, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
	}
	for _, c := range cases {
		if got := durBucket(c.d); got != c.want {
			t.Errorf("durBucket(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	if durBucket(time.Duration(1)<<62) != histBuckets-1 {
		t.Error("huge durations must clamp to the last bucket")
	}
	if BucketLow(0) != 0 || BucketLow(10) != 1024 {
		t.Error("BucketLow bounds wrong")
	}
}

func TestStageNames(t *testing.T) {
	names := StageNames()
	if len(names) != int(numStages) {
		t.Fatalf("StageNames has %d entries, want %d", len(names), numStages)
	}
	if StageCheckpoint.String() != "checkpoint" || Stage(200).String() != "unknown" {
		t.Error("Stage.String misbehaves")
	}
}

// TestCollectorConcurrency drives the collector goroutine, the HTTP
// aggregation reads, and a publisher concurrently — the test exists to
// run under -race, pinning the lock-free publish contract.
func TestCollectorConcurrency(t *testing.T) {
	r := New(Config{})
	r.StartCollector(time.Millisecond)
	r.StartCollector(time.Millisecond) // second start is a no-op

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(1); i <= 2000; i++ {
			r.Publish(Counters{Execs: i, Added: i / 10})
			r.Span(StageHavoc, time.Microsecond)
		}
	}()
	for i := 0; i < 50; i++ {
		r.Latest()
		r.Points()
		r.StageStats()
		r.promMetrics()
	}
	<-done
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Close takes a final sample, so the last publish is always visible.
	if last, ok := r.LastPoint(); !ok || last.Execs != 2000 {
		t.Fatalf("LastPoint after Close = %+v ok=%v, want Execs 2000", last, ok)
	}
	if err := r.Close(); err != nil {
		t.Fatal("second Close should be a no-op, got", err)
	}
}
