package evalharness

import (
	"fmt"
	"path/filepath"

	"repro/internal/campaign"
	"repro/internal/journal"
	"repro/internal/strategy"
)

// provenanceDir is the StateDir subdirectory holding per-run corpus
// provenance summaries: one CSV per campaign (parent lineage, discovery
// stage, exec index, first-discovered cells), written next to the
// coverage curves so discovery-attribution plots can be regenerated
// without re-running anything.
const provenanceDir = "provenance"

func provenanceFileName(subject string, f strategy.Name, run int) string {
	return fmt.Sprintf("%s_%s_%03d_prov.csv", campaign.SanitizeName(subject), campaign.SanitizeName(string(f)), run)
}

// saveProvenance persists one run's corpus provenance under
// StateDir/provenance. Runs whose report carries no provenance (legacy
// multi-round strategies merge queues without it) write a header-only
// file — presence still marks the run as covered.
func saveProvenance(cfg Config, rr *RunResult) error {
	dir := filepath.Join(cfg.StateDir, provenanceDir)
	if err := cfg.FS.MkdirAll(dir); err != nil {
		return err
	}
	var corpus []journal.CorpusMeta
	if rr.Report != nil {
		corpus = rr.Report.Corpus
	}
	path := filepath.Join(dir, provenanceFileName(rr.Subject, rr.Fuzzer, rr.Run))
	return campaign.WriteFileAtomic(cfg.FS, path, journal.ProvenanceCSV(corpus))
}
