package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/fuzz"
	"repro/internal/strategy"
	"repro/internal/subjects"
	"repro/internal/telemetry"
)

// Telemetry overhead benchmarks. The observability layer promises to be
// effectively free: counters live as plain fields in the fuzz loop and
// are only copied out at queue-entry boundaries, so an attached
// recorder (with its collector goroutine sampling at 1s) must not cost
// campaign throughput. BenchmarkCampaignTelemetry measures both arms;
// TestWriteBenchPR4 freezes the overhead ratio into BENCH_PR4.json.

const telemetryCampaignBudget = 30000

// telemetryCampaign runs one fixed-budget path-feedback campaign per
// iteration, optionally with a live recorder + collector attached.
func telemetryCampaign(b *testing.B, subject string, withTelemetry bool) {
	b.Helper()
	sub := subjects.Get(subject)
	prog, err := sub.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fixed seed makes every iteration deterministic and
		// identical across both arms, so the comparison measures the
		// telemetry layer and nothing else.
		opts := fuzz.Options{Seed: 1, MapSize: 1 << 13}
		var rec *telemetry.Recorder
		if withTelemetry {
			rec = telemetry.New(telemetry.Config{})
			rec.StartCollector(time.Second)
			opts.Telemetry = rec
		}
		_, err := strategy.Run(strategy.Path, prog, strategy.Config{
			Opts:   opts,
			Budget: telemetryCampaignBudget,
			Seeds:  sub.Seeds,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rec != nil {
			if err := rec.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCampaignTelemetry(b *testing.B) {
	for _, subject := range []string{"cflow", "flvmeta"} {
		b.Run(subject+"/off", func(b *testing.B) { telemetryCampaign(b, subject, false) })
		b.Run(subject+"/on", func(b *testing.B) { telemetryCampaign(b, subject, true) })
	}
}

// BenchmarkTelemetryPublish measures one boundary publish: the counter
// copy plus the atomic snapshot swap.
func BenchmarkTelemetryPublish(b *testing.B) {
	rec := telemetry.New(telemetry.Config{})
	var c telemetry.Counters
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Execs = int64(i)
		rec.Publish(c)
	}
}

// benchPR4 is the persisted schema of BENCH_PR4.json.
type benchPR4 struct {
	Note     string                  `json:"note"`
	Campaign map[string]benchPR4Camp `json:"campaign"`
	Publish  benchPR4Pub             `json:"publish"`
}

type benchPR4Camp struct {
	PlainNsPerCampaign     float64 `json:"plain_ns_per_campaign"`
	TelemetryNsPerCampaign float64 `json:"telemetry_ns_per_campaign"`
	OverheadPct            float64 `json:"overhead_pct"`
}

type benchPR4Pub struct {
	NsPerPublish     float64 `json:"ns_per_publish"`
	AllocsPerPublish float64 `json:"allocs_per_publish"`
}

// TestWriteBenchPR4 regenerates BENCH_PR4.json, the telemetry overhead
// record: attaching a recorder must stay under 2% campaign slowdown.
// Gated because it runs minutes of benchmarks:
//
//	WRITE_BENCH_PR4=1 go test -run TestWriteBenchPR4 -timeout 30m .
func TestWriteBenchPR4(t *testing.T) {
	if os.Getenv("WRITE_BENCH_PR4") == "" {
		t.Skip("set WRITE_BENCH_PR4=1 to regenerate BENCH_PR4.json")
	}
	out := benchPR4{
		Note:     "median of 5 interleaved plain/telemetry pairs (paired ratios cancel host drift); telemetry arm includes a live collector goroutine at 1s. Regenerate with: WRITE_BENCH_PR4=1 go test -run TestWriteBenchPR4 -timeout 30m .",
		Campaign: map[string]benchPR4Camp{},
	}
	worst := 0.0
	for _, subject := range []string{"cflow", "flvmeta"} {
		// Interleave the arms: a plain/telemetry pair measured back to
		// back shares the host's momentary load, so the per-pair ratio
		// is far more stable than two independently-timed medians.
		var ratios, plains, tels []float64
		for i := 0; i < 5; i++ {
			p := float64(testing.Benchmark(func(b *testing.B) { telemetryCampaign(b, subject, false) }).NsPerOp())
			q := float64(testing.Benchmark(func(b *testing.B) { telemetryCampaign(b, subject, true) }).NsPerOp())
			plains, tels, ratios = append(plains, p), append(tels, q), append(ratios, q/p)
		}
		sort.Float64s(ratios)
		sort.Float64s(plains)
		sort.Float64s(tels)
		c := benchPR4Camp{
			PlainNsPerCampaign:     plains[2],
			TelemetryNsPerCampaign: tels[2],
			OverheadPct:            (ratios[2] - 1) * 100,
		}
		out.Campaign[subject] = c
		if c.OverheadPct > worst {
			worst = c.OverheadPct
		}
		t.Logf("campaign %-10s plain %.0f ns  telemetry %.0f ns  overhead %+.2f%% (ratio spread %+.2f%%..%+.2f%%)",
			subject, c.PlainNsPerCampaign, c.TelemetryNsPerCampaign, c.OverheadPct,
			(ratios[0]-1)*100, (ratios[4]-1)*100)
	}
	pubNs, pubAllocs := medianNs(func(b *testing.B) {
		rec := telemetry.New(telemetry.Config{})
		var c telemetry.Counters
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Execs = int64(i)
			rec.Publish(c)
		}
	})
	out.Publish = benchPR4Pub{NsPerPublish: pubNs, AllocsPerPublish: float64(pubAllocs)}
	t.Logf("publish %.0f ns/op, %v allocs/op", pubNs, pubAllocs)

	if worst > 2.0 {
		t.Errorf("telemetry overhead %.2f%% exceeds the 2%% budget", worst)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR4.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_PR4.json")
}
