package telemetry

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// AFL-compatible emitters: fuzzer_stats and plot_data files in the
// formats AFL++'s afl-plot and afl-whatsup consume, so existing
// plotting tooling works against pafuzz state directories unmodified.
//
// plot_data is append-only with one header line; fuzzer_stats is
// rewritten atomically (temp file + rename) on every sample. On a
// resumed campaign the plot file is opened in append mode and the last
// row's relative_time becomes the new base, so the series stays
// gapless and monotone across the checkpoint boundary.

// PlotHeader is the AFL++ plot_data column header.
const PlotHeader = "# relative_time, cycles_done, cur_item, corpus_count, pending_total, pending_favs, map_size, saved_crashes, saved_hangs, max_depth, execs_per_sec, total_execs, edges_found"

// FormatPlotRow renders one plot_data row. relSec is the campaign's
// relative time in seconds; rate is the sampled execs/sec.
func FormatPlotRow(s *Snapshot, rate float64, relSec int64) string {
	return fmt.Sprintf("%d, %d, %d, %d, %d, %d, %.2f%%, %d, %d, %d, %.2f, %d, %d",
		relSec, s.Cycles, s.CurItem, s.QueueLen, s.PendingTotal, s.PendingFavored,
		100*s.MapDensity(), s.UniqueBugs, s.Timeouts, s.MaxDepth,
		rate, s.Execs, s.CoverageCount)
}

// FormatFuzzerStats renders a fuzzer_stats file. startUnix/nowUnix are
// wall-clock unix seconds (injected so golden tests are deterministic).
func FormatFuzzerStats(s *Snapshot, info Info, rate float64, startUnix, nowUnix int64) []byte {
	var b strings.Builder
	line := func(k string, v any) {
		fmt.Fprintf(&b, "%-18s: %v\n", k, v)
	}
	runTime := nowUnix - startUnix
	if runTime < 0 {
		runTime = 0
	}
	line("start_time", startUnix)
	line("last_update", nowUnix)
	line("run_time", runTime)
	line("fuzzer_pid", info.PID)
	line("cycles_done", s.Cycles)
	line("execs_done", s.Execs)
	line("execs_per_sec", strconv.FormatFloat(rate, 'f', 2, 64))
	line("total_steps", s.TotalSteps)
	line("corpus_count", s.QueueLen)
	line("corpus_favored", s.Favored)
	line("pending_total", s.PendingTotal)
	line("pending_favs", s.PendingFavored)
	line("cur_item", s.CurItem)
	line("max_depth", s.MaxDepth)
	line("map_density", fmt.Sprintf("%.2f%%", 100*s.MapDensity()))
	line("bitmap_cvg", fmt.Sprintf("%.2f%%", 100*s.MapDensity()))
	line("edges_found", s.CoverageCount)
	line("coverage_bits", s.CoverageBits)
	line("saved_crashes", s.UniqueBugs)
	line("unique_crashes", s.UniqueCrashes)
	line("afl_crashes", s.AFLUniqueCrashes)
	line("saved_hangs", s.Timeouts)
	line("total_crashes", s.CrashExecs)
	line("internal_faults", s.InternalFaults)
	line("execs_seed", s.SeedExecs)
	line("execs_havoc", s.HavocExecs)
	line("execs_splice", s.SpliceExecs)
	line("execs_cmplog", s.CmplogExecs)
	line("exec_budget", info.Budget)
	line("rng_seed", info.Seed)
	line("target_mode", info.Engine)
	line("feedback", info.Feedback)
	line("bytecode_instrs", info.Instrs)
	line("bytecode_nops", info.Nops)
	line("go_version", info.GoVersion)
	line("afl_version", "pafuzz-"+Version)
	line("afl_banner", info.Banner)
	return []byte(b.String())
}

// Version tags the telemetry schema in fuzzer_stats.
const Version = "4.0"

// AFLOutput manages the fuzzer_stats and plot_data files of one state
// directory.
type AFLOutput struct {
	dir     string
	plot    *os.File
	w       *bufio.Writer
	lastRel int64 // last relative_time written (or resumed past)
	hasRows bool  // plot file already holds data rows
	// startUnix anchors fuzzer_stats run_time. On a fresh campaign it
	// is stamped at open; on resume it is shifted back by the resumed
	// base so run_time stays cumulative.
	startUnix int64
}

// OpenAFLOutput creates dir if needed and opens plot_data for
// appending. When the file already holds rows (a resumed campaign),
// the last row's relative_time is carried forward as the base for new
// rows — the gapless-resume contract.
func OpenAFLOutput(dir string) (*AFLOutput, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "plot_data")
	base, hasRows := lastPlotRel(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	o := &AFLOutput{
		dir:       dir,
		plot:      f,
		w:         bufio.NewWriter(f),
		lastRel:   base,
		hasRows:   hasRows,
		startUnix: time.Now().Unix() - base,
	}
	if !hasRows {
		fmt.Fprintln(o.w, PlotHeader)
	}
	return o, nil
}

// lastPlotRel scans an existing plot_data file for its final row's
// relative_time. Missing, empty, or malformed files yield (0, false).
func lastPlotRel(path string) (int64, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	var last string
	for _, ln := range strings.Split(string(data), "\n") {
		ln = strings.TrimSpace(ln)
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		last = ln
	}
	if last == "" {
		return 0, false
	}
	fields := strings.SplitN(last, ",", 2)
	rel, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
	if err != nil {
		return 0, false
	}
	return rel, true
}

// RelSec maps a snapshot to its plot relative time: elapsed seconds,
// clamped monotone against rows already written (including rows from
// before a resume).
func (o *AFLOutput) RelSec(s *Snapshot) int64 {
	rel := int64(s.Elapsed.Seconds())
	if o.hasRows && rel <= o.lastRel {
		rel = o.lastRel + 1
	}
	return rel
}

// Append writes one plot_data row and rewrites fuzzer_stats.
func (o *AFLOutput) Append(s *Snapshot, p Point, info Info) error {
	rel := o.RelSec(s)
	if _, err := fmt.Fprintln(o.w, FormatPlotRow(s, p.ExecsPerSec, rel)); err != nil {
		return err
	}
	o.lastRel, o.hasRows = rel, true
	if err := o.w.Flush(); err != nil {
		return err
	}
	return o.WriteStats(FormatFuzzerStats(s, info, p.ExecsPerSec, o.startUnix, time.Now().Unix()))
}

// WriteStats atomically replaces the fuzzer_stats file.
func (o *AFLOutput) WriteStats(data []byte) error {
	path := filepath.Join(o.dir, "fuzzer_stats")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Close flushes and closes the plot file.
func (o *AFLOutput) Close() error {
	if err := o.w.Flush(); err != nil {
		o.plot.Close()
		return err
	}
	return o.plot.Close()
}
