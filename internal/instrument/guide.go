package instrument

import (
	"sort"

	"repro/internal/analysis/interproc"
)

// This file is the static-analysis side of guided fuzzing: helpers
// that project interprocedural facts (package analysis/interproc) onto
// the coverage map's index space. Nothing here changes instrumentation
// semantics — consumers are strictly opt-in (fuzz.Options.AnalysisGuide).

// PathCellIndex returns the coverage-map cell that a completed
// Ball-Larus path ID of function fnID lands in under the path feedback,
// replicating the tracer's mixing formula and Map.Add's index masking
// (the bytecode lowering uses the same formula, so the three agree).
// mapSize must be the campaign's power-of-two map size.
func PathCellIndex(c Config, fnID int, pathID uint64, mapSize int) uint32 {
	mask := uint32(mapSize - 1)
	salt := fnSalt(fnID)
	if c.Mix == MixHash {
		return uint32(splitmix64(pathID^(uint64(salt)<<32))) & mask
	}
	return (uint32(pathID) ^ salt) & mask
}

// DeadPathCells returns the sorted coverage-map cells that, under the
// path feedback, only statically-infeasible path IDs can ever write:
// every feasible ID of every function maps elsewhere, so no execution
// touches these cells and their probes can be elided from the start
// (the analysis-guided tightening of the CGT consumption rule).
//
// The computation is collision-safe — a cell shared between an
// infeasible ID and any feasible ID (of any function) stays live — and
// requires facts.AllEnumerable, which guarantees every function's path
// space is numberable and small enough (<= interproc.CellCap) to
// enumerate exhaustively. It returns nil for other feedbacks, nil
// facts, or non-enumerable programs; infeasibility is under-approximated
// (see the interproc package doc), so an empty result is always sound.
func DeadPathCells(fb Feedback, facts *interproc.Facts, c Config, mapSize int) []uint32 {
	if fb != FeedbackPath || facts == nil || !facts.AllEnumerable {
		return nil
	}
	live := make([]bool, mapSize)
	dead := make(map[uint32]bool)
	for fi := range facts.Fns {
		ff := facts.Fns[fi]
		inf := make(map[uint64]bool, len(ff.Infeasible))
		if ff.Walked {
			for _, id := range ff.Infeasible {
				inf[id] = true
			}
		}
		for id := uint64(0); id < ff.NumPaths; id++ {
			cell := PathCellIndex(c, fi, id, mapSize)
			if inf[id] {
				dead[cell] = true
			} else {
				live[cell] = true
			}
		}
	}
	var out []uint32
	for cell := range dead {
		if !live[cell] {
			out = append(out, cell)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
