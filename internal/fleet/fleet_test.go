package fleet_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/cfg"
	"repro/internal/fleet"
	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/vm"
)

// testSrc has a shallow magic-byte abort plus a deeper out-of-bounds
// write — the same program the campaign durability tests fuzz.
const testSrc = `
func main(input) {
    if (len(input) < 4) { return 0; }
    if (input[0] == 'A' && input[1] == 'B') {
        abort();
    }
    var arr = alloc(16);
    if (input[2] == 'C') {
        arr[input[3] - 100] = 1;
    }
    return 0;
}`

const (
	testBudget = 20000 // per-worker execution budget
	testSync   = 6000  // sync epochs at 6k, 12k, 18k execs
	testCkpt   = 2500
)

var testSeeds = [][]byte{[]byte("xxxx"), []byte("good")}

func compileT(t testing.TB) *cfg.Program {
	t.Helper()
	p, err := cfg.Compile(testSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func testOpts() fuzz.Options {
	return fuzz.Options{
		Feedback:        instrument.FeedbackPath,
		Seed:            7,
		MapSize:         1 << 12,
		Entry:           "main",
		Limits:          vm.DefaultLimits(),
		KeepCrashInputs: true,
	}
}

func testMeta() campaign.Meta {
	return campaign.Meta{Fuzzer: "path", Seed: 7, Budget: testBudget, MapSize: 1 << 12, Entry: "main"}
}

// fleetOpts is the baseline supervisor configuration for tests: real
// sync and checkpoint cadence, no wall-clock sleeps.
func fleetOpts(workers int) fleet.Options {
	return fleet.Options{
		Workers:   workers,
		SyncEvery: testSync,
		CkptEvery: testCkpt,
		Sleep:     func(time.Duration) {},
	}
}

// runFleet starts a fresh fleet in dir and runs it to its end state.
func runFleet(t *testing.T, dir string, opts fleet.Options) *fleet.Result {
	t.Helper()
	s := fleet.New(dir, opts)
	if err := s.Start(compileT(t), testOpts(), testMeta(), testSeeds); err != nil {
		t.Fatalf("fleet start: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	return res
}

// canonical returns the report's canonical bytes with the poison
// quarantine stripped — chaos-vs-clean comparisons are over the
// fuzzing outcome, which injected faults must not perturb.
func canonical(t *testing.T, rep *fuzz.Report) []byte {
	t.Helper()
	if rep == nil {
		t.Fatal("nil report")
	}
	cp := *rep
	cp.Poison = nil
	data, err := campaign.CanonicalReport(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestWorkerSeed(t *testing.T) {
	if got := fleet.WorkerSeed(7, 0); got != 7 {
		t.Fatalf("worker 0 seed = %d, want the fleet seed unchanged", got)
	}
	seen := map[int64]int{7: 0}
	for i := 1; i < 16; i++ {
		s := fleet.WorkerSeed(7, i)
		if s < 0 {
			t.Fatalf("worker %d seed negative: %d", i, s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("workers %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
		if again := fleet.WorkerSeed(7, i); again != s {
			t.Fatalf("worker %d seed not deterministic: %d vs %d", i, s, again)
		}
	}
}

// TestSingleWorkerByteIdentity is the fleet's base determinism anchor:
// a 1-worker fleet — supervisor, checkpoints, sync machinery and all —
// produces a final report byte-identical to a plain single fuzzer with
// the same seed and budget.
func TestSingleWorkerByteIdentity(t *testing.T) {
	f, err := fuzz.New(compileT(t), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range testSeeds {
		f.AddSeed(s)
	}
	f.Fuzz(testBudget)
	rep := f.Report()
	if len(rep.Bugs) == 0 {
		t.Fatalf("baseline found no bugs in %d execs; the test program is too hard", rep.Stats.Execs)
	}
	want := canonical(t, rep)

	res := runFleet(t, t.TempDir(), fleetOpts(1))
	if res.Interrupted {
		t.Fatal("1-worker fleet reported interrupted")
	}
	if got := canonical(t, res.Merged); !bytes.Equal(got, want) {
		t.Fatalf("1-worker fleet differs from plain fuzzer (%d vs %d canonical bytes)", len(got), len(want))
	}
	if res.Restarts != 0 || len(res.Quarantined) != 0 {
		t.Fatalf("clean 1-worker fleet recorded restarts=%d quarantined=%d", res.Restarts, len(res.Quarantined))
	}
}

// TestFleetChaosDeterminism injects a worker panic and a worker wedge
// and asserts full containment: the fleet restarts both workers from
// their checkpoints, quarantines the poison inputs, and the final
// merged report is byte-identical to an unfaulted run of the same
// fleet — the replayed generations land in exactly the state the lost
// ones would have reached.
func TestFleetChaosDeterminism(t *testing.T) {
	clean := runFleet(t, t.TempDir(), fleetOpts(2))
	if clean.Interrupted {
		t.Fatal("clean fleet interrupted")
	}
	want := canonical(t, clean.Merged)
	if len(clean.Merged.Bugs) == 0 {
		t.Fatal("clean fleet found no bugs; the test program is too hard")
	}

	opts := fleetOpts(2)
	opts.Watchdog = 250 * time.Millisecond
	// Generation-keyed faults: fire once on the first attempt, never on
	// the replay.
	opts.Chaos = func(worker, gen int, execs int64) fleet.ChaosAction {
		switch {
		case worker == 1 && gen == 0 && execs >= 3000:
			return fleet.ChaosPanic
		case worker == 0 && gen == 0 && execs >= 9000:
			return fleet.ChaosWedge
		}
		return fleet.ChaosNone
	}
	res := runFleet(t, t.TempDir(), opts)
	if res.Interrupted {
		t.Fatal("chaos fleet interrupted")
	}
	if got := canonical(t, res.Merged); !bytes.Equal(got, want) {
		t.Fatalf("chaos fleet differs from clean fleet (%d vs %d canonical bytes)", len(got), len(want))
	}
	if res.Restarts < 2 {
		t.Fatalf("restarts = %d, want >= 2 (one panic, one wedge)", res.Restarts)
	}
	if res.Wedges < 1 {
		t.Fatalf("wedges = %d, want >= 1", res.Wedges)
	}
	var sawPanic, sawWedge bool
	for _, p := range res.Quarantined {
		switch {
		case p.Worker == 1 && strings.Contains(p.Msg, "injected worker panic"):
			sawPanic = true
		case p.Worker == 0 && strings.Contains(p.Msg, "watchdog"):
			sawWedge = true
		}
	}
	if !sawPanic || !sawWedge {
		t.Fatalf("quarantine missing expected findings (panic=%v wedge=%v): %+v", sawPanic, sawWedge, res.Quarantined)
	}
	// The merged report carries the quarantine for evaluation output.
	if len(res.Merged.Poison) == 0 {
		t.Fatal("merged report has no poison findings attached")
	}
	if len(res.Retired) != 0 {
		t.Fatalf("chaos fleet retired workers %v; faults should have been absorbed by restarts", res.Retired)
	}
}

// TestFleetRetirementHarvest drives one worker into a crash loop with
// no durable progress between failures: after MaxRestarts consecutive
// failures it is retired, the rest of the fleet completes (the sync
// barrier must release past a retired worker), and the retired
// worker's last checkpoint is harvested into the merged report so its
// corpus and findings are not lost.
func TestFleetRetirementHarvest(t *testing.T) {
	opts := fleetOpts(2)
	opts.MaxRestarts = 2
	opts.CkptEvery = 1 << 40 // only checkpoint zero: no durable progress, ever
	opts.Chaos = func(worker, gen int, execs int64) fleet.ChaosAction {
		if worker == 1 && execs >= 500 { // every generation: a true crash loop
			return fleet.ChaosPanic
		}
		return fleet.ChaosNone
	}
	res := runFleet(t, t.TempDir(), opts)
	if res.Interrupted {
		t.Fatal("fleet interrupted")
	}
	if len(res.Retired) != 1 || res.Retired[0] != 1 {
		t.Fatalf("retired = %v, want [1]", res.Retired)
	}
	if res.Restarts < opts.MaxRestarts {
		t.Fatalf("restarts = %d, want >= %d", res.Restarts, opts.MaxRestarts)
	}
	if res.Workers[0] == nil || res.Workers[0].Stats.Execs < testBudget {
		t.Fatal("worker 0 did not complete its budget despite worker 1 retiring")
	}
	if res.Workers[1] == nil {
		t.Fatal("retired worker 1 was not harvested")
	}
	// Harvest recovered the checkpointed corpus: the merged queue holds
	// worker 0's full corpus plus worker 1's seeded entries.
	if len(res.Merged.Queue) <= len(res.Workers[0].Queue) {
		t.Fatalf("merged queue (%d entries) does not extend worker 0's (%d): retired corpus lost",
			len(res.Merged.Queue), len(res.Workers[0].Queue))
	}
	var quarantined bool
	for _, p := range res.Quarantined {
		if p.Worker == 1 && strings.Contains(p.Msg, "injected worker panic") {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("crash-loop input not quarantined: %+v", res.Quarantined)
	}
}

// resumeFleet loads the manifest in dir and drives the fleet to
// completion.
func resumeFleet(t *testing.T, dir string, opts fleet.Options) *fleet.Result {
	t.Helper()
	man, err := fleet.LoadManifest(campaign.OSFS{}, dir)
	if err != nil {
		t.Fatalf("load manifest: %v", err)
	}
	s := fleet.New(dir, opts)
	if err := s.Attach(compileT(t), testOpts(), man); err != nil {
		t.Fatalf("attach: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	return res
}

// TestFleetResumeDeterminism interrupts a fleet exactly at a sync
// epoch boundary (the boundary hook completes the sync, then the stop
// lands), resumes it from the manifest plus per-worker checkpoints,
// and asserts the final merged report is byte-identical to the same
// fleet run uninterrupted.
func TestFleetResumeDeterminism(t *testing.T) {
	clean := runFleet(t, t.TempDir(), fleetOpts(2))
	want := canonical(t, clean.Merged)

	dir := t.TempDir()
	opts := fleetOpts(2)
	opts.StopAfter = 2 * testSync // lands on the epoch-2 sync boundary itself
	res := runFleet(t, dir, opts)
	if !res.Interrupted {
		t.Fatal("StopAfter did not interrupt the fleet")
	}

	resumed := resumeFleet(t, dir, fleetOpts(2))
	if resumed.Interrupted {
		t.Fatal("resumed fleet interrupted again")
	}
	if got := canonical(t, resumed.Merged); !bytes.Equal(got, want) {
		t.Fatalf("resumed fleet differs from uninterrupted fleet (%d vs %d canonical bytes)", len(got), len(want))
	}
}

// TestFleetStopAnywhereResumes stops the fleet from another goroutine
// at an arbitrary wall-clock moment — possibly mid-sync, with one
// worker parked at the barrier and the other importing — and asserts
// resume still converges to the uninterrupted result. This is the
// kill-during-sync consistency guarantee: publications are persisted
// before any barrier release, and a worker stopped with a sync pending
// falls back to its pre-epoch checkpoint and replays the sync.
func TestFleetStopAnywhereResumes(t *testing.T) {
	clean := runFleet(t, t.TempDir(), fleetOpts(2))
	want := canonical(t, clean.Merged)

	dir := t.TempDir()
	s := fleet.New(dir, fleetOpts(2))
	if err := s.Start(compileT(t), testOpts(), testMeta(), testSeeds); err != nil {
		t.Fatal(err)
	}
	timer := time.AfterFunc(30*time.Millisecond, s.Stop)
	defer timer.Stop()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	final := res
	if res.Interrupted {
		final = resumeFleet(t, dir, fleetOpts(2))
		if final.Interrupted {
			t.Fatal("resumed fleet interrupted without a stop request")
		}
	}
	if got := canonical(t, final.Merged); !bytes.Equal(got, want) {
		t.Fatalf("fleet stopped at an arbitrary point resumed to a different report (%d vs %d canonical bytes)", len(got), len(want))
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &fleet.Manifest{
		Workers:     2,
		SyncEvery:   testSync,
		MaxRestarts: 3,
		Meta:        testMeta(),
		Seeded:      []int{2, 2},
		Pubs: []fleet.Pub{
			{Worker: 0, Epoch: 1, Inputs: [][]byte{[]byte("pub")}, QLen: 3},
		},
		Quarantine: []fuzz.PoisonRec{{Worker: 1, Msg: "boom", Input: []byte("bad"), Execs: 42, Count: 1}},
		Restarts:   1,
		Retired:    []bool{false, false},
		Done:       []bool{false, true},
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := fleet.DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workers != 2 || got.SyncEvery != testSync || len(got.Pubs) != 1 ||
		got.Pubs[0].QLen != 3 || len(got.Quarantine) != 1 || !got.Done[1] {
		t.Fatalf("round trip mangled manifest: %+v", got)
	}

	// A torn write must be detected, not half-decoded.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := fleet.DecodeManifest(corrupt); err == nil {
		t.Fatal("corrupted manifest decoded without error")
	}
	if _, err := fleet.DecodeManifest(data[:len(data)-3]); err == nil {
		t.Fatal("truncated manifest decoded without error")
	}
}
