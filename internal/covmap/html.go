package covmap

import (
	"fmt"
	"html"
	"strings"
)

// WriteHTML renders the report as a self-contained HTML page (the
// /coverage dashboard page and the `paprof -coverage-report -html`
// artifact), styled like the genealogy report.
func (r *Report) WriteHTML(title string) []byte {
	var b strings.Builder
	b.WriteString("<!doctype html><html><head><meta charset=\"utf-8\"><title>")
	b.WriteString(html.EscapeString(title))
	b.WriteString(`</title><style>
body{font-family:monospace;background:#111;color:#ddd;margin:2em}
h1,h2{color:#8cf} table{border-collapse:collapse;margin:1em 0}
td,th{border:1px solid #444;padding:2px 10px;text-align:right}
th{color:#8cf} td.l,th.l{text-align:left} pre{color:#bbb}
.cov{background:#132} .miss{background:#311} .amb{background:#331}
.num{color:#666;user-select:none}
</style></head><body>`)
	fmt.Fprintf(&b, "<h1>%s</h1>", html.EscapeString(title))
	fmt.Fprintf(&b, "<p>%s · feedback=%s · map=%d</p>", html.EscapeString(r.Label), html.EscapeString(r.Feedback), r.MapSize)

	fmt.Fprintf(&b, "<h2>summary</h2><table><tr><th>observed</th><th>resolved</th><th>exact</th><th>ambiguous</th><th>hash-bucket</th><th>collisions</th><th>unresolved</th></tr>")
	fmt.Fprintf(&b, "<tr><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr></table>",
		r.Observed, r.Resolved, r.Exact, r.Ambiguous, r.BucketOnly, r.Collisions, len(r.Unresolved))

	b.WriteString("<h2>per-function coverage</h2><table><tr><th class=l>function</th><th>blocks</th><th>edges</th><th class=l>paths</th></tr>")
	for _, fc := range r.Funcs {
		paths := ""
		switch fc.PathMode {
		case "exact":
			paths = fmt.Sprintf("%d of %d seen", fc.PathsSeen, fc.NumPaths)
			if fc.PathsAmbiguous > 0 {
				paths += fmt.Sprintf(" (+%d ambiguous)", fc.PathsAmbiguous)
			}
		case "hash":
			paths = "hash mode (buckets only)"
		case "overflow":
			paths = fmt.Sprintf("%d: beyond enumeration cap", fc.NumPaths)
		}
		fmt.Fprintf(&b, "<tr><td class=l>%s</td><td>%d/%d</td><td>%d/%d</td><td class=l>%s</td></tr>",
			html.EscapeString(fc.Name), fc.BlocksCovered, fc.Blocks, fc.EdgesCovered, fc.Edges, html.EscapeString(paths))
	}
	b.WriteString("</table>")

	fmt.Fprintf(&b, "<h2>frontier (%d reached-but-unexplored branches)</h2>", len(r.Frontier))
	if r.FrontierNote != "" {
		fmt.Fprintf(&b, "<p>%s</p>", html.EscapeString(r.FrontierNote))
	}
	if len(r.Frontier) > 0 {
		b.WriteString("<table><tr><th>rarity</th><th class=l>function</th><th>block</th><th>line</th><th class=l>unexplored</th><th>@line</th><th class=l>input bytes</th></tr>")
		for _, fr := range r.Frontier {
			rar := "?"
			if fr.Rarity > 0 {
				rar = fmt.Sprintf("b%d", fr.Rarity)
			}
			fmt.Fprintf(&b, "<tr><td>%s</td><td class=l>%s</td><td>b%d</td><td>%d</td><td class=l>%s</td><td>%d</td><td class=l>%s</td></tr>",
				rar, html.EscapeString(fr.FnName), fr.Block, fr.Line, fr.Unexplored, fr.UnexploredLine, html.EscapeString(fr.Dep))
		}
		b.WriteString("</table>")
	}

	b.WriteString("<h2>annotated source</h2><pre>")
	for _, l := range r.Lines {
		cls := ""
		if l.Executable {
			switch l.Covered {
			case 0:
				cls = "miss"
			case 1:
				cls = "amb"
			default:
				cls = "cov"
			}
		}
		line := fmt.Sprintf("<span class=num>%5d %s|</span> %s", l.No, l.marker(), html.EscapeString(l.Text))
		if cls != "" {
			line = fmt.Sprintf("<span class=%s>%s</span>", cls, line)
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteString("</pre></body></html>")
	return []byte(b.String())
}
