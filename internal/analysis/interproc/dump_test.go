package interproc

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/subjects"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files under testdata/")

// TestDumpGolden pins the complete facts dump for one subject. The dump
// is what `paprof -facts` prints: per-branch dependency byte ranges,
// comparison sites with intervals, branch implications, and the
// infeasible-path/skip-ratio header. Any analysis change that shifts
// these facts must consciously regenerate the golden
// (go test ./internal/analysis/interproc -run DumpGolden -update-golden).
func TestDumpGolden(t *testing.T) {
	sub := subjects.Get("flvmeta")
	if sub == nil {
		t.Fatal("flvmeta subject missing")
	}
	prog, err := sub.Program()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ForProgram(prog).Dump(&buf)
	got := buf.Bytes()

	path := filepath.Join("testdata", "flvmeta_facts.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("facts dump drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// lintAll reproduces palint's combined diagnostic pipeline: AST+interval
// checks, interprocedural checks, one total order.
func lintAll(t *testing.T, src string) []analysis.Finding {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	fds := analysis.Lint(ast, prog)
	fds = append(fds, Lint(ForProgram(prog))...)
	analysis.SortFindings(fds)
	return fds
}

// TestLintDeterministicOrdering runs the combined lint pipeline twice
// over every benchmark subject plus a defect-seeded program, and
// requires byte-identical diagnostics in a total order (position first,
// then check name). This is the property that makes palint output
// stable across runs and machines.
func TestLintDeterministicOrdering(t *testing.T) {
	// A program that trips all three interprocedural checks plus the
	// intra-procedural ones, so the ordering requirement is exercised on
	// a findings-rich unit, not only on clean subjects.
	const seeded = `
func orphan(x) { return x * 2; }
func gate(m) {
    if (m > 3) { return 1; }
    return 0;
}
func main(input) {
    var mode = 0;
    if (len(input) > 0) { mode = input[0] % 3; }
    if (mode == 7) { return 9; }
    var dbg = 1 - 1;
    if (dbg > 0) { return 8; }
    return gate(mode);
}
`
	units := map[string]string{"seeded": seeded}
	for _, sub := range subjects.All() {
		units[sub.Name] = sub.Source
	}
	for name, src := range units {
		a := lintAll(t, src)
		b := lintAll(t, src)
		ra, rb := renderFindings(a), renderFindings(b)
		if ra != rb {
			t.Errorf("%s: lint output differs between runs:\n%s\nvs\n%s", name, ra, rb)
		}
		for i := 1; i < len(a); i++ {
			p, q := a[i-1], a[i]
			if p.Pos.Line > q.Pos.Line ||
				(p.Pos.Line == q.Pos.Line && p.Pos.Col > q.Pos.Col) ||
				(p.Pos == q.Pos && p.Check > q.Check) {
				t.Errorf("%s: findings out of order at %d: %v before %v", name, i, p, q)
			}
		}
		if name == "seeded" && len(a) == 0 {
			t.Error("seeded program produced no findings")
		}
	}
}

func renderFindings(fds []analysis.Finding) string {
	var buf bytes.Buffer
	for _, fd := range fds {
		fmt.Fprintf(&buf, "%v\n", fd)
	}
	return buf.String()
}
