package bytecode_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/coverage"
	"repro/internal/instrument"
	"repro/internal/subjects"
	"repro/internal/vm"
)

// cgtPair runs the same inputs through the pristine fully-instrumented
// machine and a patched fast machine whose elision plan is periodically
// recomputed from the canonical virgin map, and asserts the
// coverage-preserving contract: identical results, identical novelty
// verdicts, and identical virgin-map evolution, with fast-map writes to
// consumed cells provably gone.
type cgtPair struct {
	patch      *bytecode.Patchable
	consumed   *coverage.Bitset
	machFull   *bytecode.Machine
	machFast   *bytecode.Machine
	mFull      *coverage.Map
	mFast      *coverage.Map
	virgin     *coverage.Virgin // merged from the full machine (canonical)
	virginFast *coverage.Virgin // merged from the fast machine (must track it)
	mapSize    int
}

func newCGTPair(t *testing.T, sub *subjects.Subject, fb instrument.Feedback, c instrument.Config, mapSize int, lim vm.Limits) *cgtPair {
	t.Helper()
	prog, err := sub.Program()
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := instrument.CompiledFor(fb, prog, c)
	if !ok {
		t.Fatalf("feedback %v has no bytecode lowering", fb)
	}
	p := &cgtPair{
		patch:      bytecode.NewPatchable(cp, mapSize),
		consumed:   coverage.NewBitset(mapSize),
		mFull:      coverage.NewMap(mapSize),
		mFast:      coverage.NewMap(mapSize),
		virgin:     coverage.NewVirgin(mapSize),
		virginFast: coverage.NewVirgin(mapSize),
		mapSize:    mapSize,
	}
	p.machFull = bytecode.NewMachine(cp, p.mFull, lim)
	p.machFast = bytecode.NewMachine(p.patch.Program(), p.mFast, lim)
	p.machFast.SetElide(p.consumed)
	return p
}

// replan recomputes the elision plan from the canonical virgin map,
// exactly as the fuzzer does at culling boundaries.
func (p *cgtPair) replan(t *testing.T) {
	t.Helper()
	p.virgin.FullyConsumedInto(p.consumed)
	n := p.patch.Replan(p.consumed)
	if n != p.patch.Elided() {
		t.Fatalf("Replan returned %d, Elided says %d", n, p.patch.Elided())
	}
	if err := p.patch.Verify(); err != nil {
		t.Fatalf("patched program failed verification: %v", err)
	}
}

func (p *cgtPair) check(t *testing.T, label string, input []byte) {
	t.Helper()
	p.mFull.Reset()
	r1 := p.machFull.Run("main", input)
	p.mFull.ClassifySparse()
	nov1 := p.virgin.MergeSparse(p.mFull)

	p.mFast.Reset()
	r2 := p.machFast.Run("main", input)
	p.mFast.ClassifySparse()
	nov2 := p.virginFast.MergeSparse(p.mFast)

	if r1.Status != r2.Status || r1.Ret != r2.Ret || r1.Steps != r2.Steps {
		t.Fatalf("%s input %q: result diverged\nfull: %+v\nfast: %+v", label, input, r1, r2)
	}
	if nov1 != nov2 {
		t.Fatalf("%s input %q: novelty diverged: full=%v fast=%v", label, input, nov1, nov2)
	}
	full, fast := p.mFull.Bytes(), p.mFast.Bytes()
	for i := 0; i < p.mapSize; i++ {
		if p.consumed.Has(uint32(i)) {
			if fast[i] != 0 {
				t.Fatalf("%s input %q: fast map wrote consumed cell %d = %d", label, input, i, fast[i])
			}
		} else if full[i] != fast[i] {
			t.Fatalf("%s input %q: live cell %d differs: full=%d fast=%d", label, input, i, full[i], fast[i])
		}
	}
	if !reflect.DeepEqual(p.virgin.Cells(), p.virginFast.Cells()) {
		t.Fatalf("%s input %q: virgin maps diverged after merge", label, input)
	}
}

// TestPatchableCoveragePreservation is the CGT engine's core contract
// at the machine level: under every supported feedback, a machine
// running the patched program (with record-side elision for dynamic
// probes) yields the same results, the same novelty verdicts, and the
// same virgin-map evolution as the fully instrumented machine, while
// never writing a consumed cell. The plan is replanned from the virgin
// map every few inputs so elision actually engages mid-corpus.
func TestPatchableCoveragePreservation(t *testing.T) {
	feedbacks := []instrument.Feedback{
		instrument.FeedbackEdge,
		instrument.FeedbackPath,
		instrument.FeedbackBlock,
		instrument.FeedbackNGram,
		instrument.FeedbackPathAFL,
	}
	for _, name := range []string{"cflow", "jq", "flvmeta", "mujs"} {
		sub := subjects.Get(name)
		if sub == nil {
			t.Fatalf("unknown subject %s", name)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(1234))
			inputs := subjectInputs(sub, rng, 60)
			for _, fb := range feedbacks {
				// A small map makes cells consume quickly, so elision
				// engages within the test corpus.
				p := newCGTPair(t, sub, fb, instrument.Config{}, 1<<10, vm.DefaultLimits())
				for i, in := range inputs {
					if i%8 == 0 {
						p.replan(t)
					}
					p.check(t, fb.String(), in)
				}
				if p.patch.NumSites() == 0 && fb == instrument.FeedbackEdge {
					t.Fatalf("%s/%v: no patchable sites found", name, fb)
				}
			}
		})
	}
}

// TestPatchableElisionEngages pins that the mechanism is not vacuous:
// after hammering one subject's seeds, replanning from the virgin map
// actually elides a nontrivial number of static probe sites.
func TestPatchableElisionEngages(t *testing.T) {
	sub := subjects.Get("cflow")
	p := newCGTPair(t, sub, instrument.FeedbackEdge, instrument.Config{}, 1<<10, vm.DefaultLimits())
	rng := rand.New(rand.NewSource(99))
	inputs := subjectInputs(sub, rng, 120)
	for _, in := range inputs {
		p.check(t, "warm", in)
	}
	p.replan(t)
	if p.patch.Elided() == 0 {
		t.Fatalf("no sites elided after %d inputs (%d sites, %d consumed cells)",
			len(inputs), p.patch.NumSites(), p.consumed.Count())
	}
	t.Logf("elided %d/%d sites, %d consumed cells", p.patch.Elided(), p.patch.NumSites(), p.consumed.Count())
}

// TestPatchableReplanDeterminism pins the patch plan as a pure function
// of the consumed mask: two Patchables over the same program, replanned
// from the same mask reconstructed via the virgin cell snapshot (the
// checkpoint/fleet-sync path), elide identical site sets and their
// machines produce byte-identical runs.
func TestPatchableReplanDeterminism(t *testing.T) {
	sub := subjects.Get("jq")
	const mapSize = 1 << 12
	lim := vm.DefaultLimits()

	a := newCGTPair(t, sub, instrument.FeedbackEdge, instrument.Config{}, mapSize, lim)
	rng := rand.New(rand.NewSource(5))
	inputs := subjectInputs(sub, rng, 40)
	for _, in := range inputs {
		a.check(t, "warm", in)
	}
	a.replan(t)

	// Rebuild the virgin from its serialized cells — the checkpoint
	// round trip — and replan an independent Patchable from it.
	b := newCGTPair(t, sub, instrument.FeedbackEdge, instrument.Config{}, mapSize, lim)
	if err := b.virgin.SetCells(a.virgin.Cells()); err != nil {
		t.Fatal(err)
	}
	if err := b.virginFast.SetCells(a.virgin.Cells()); err != nil {
		t.Fatal(err)
	}
	b.replan(t)
	if a.patch.Elided() != b.patch.Elided() {
		t.Fatalf("replan from restored virgin elided %d sites, original %d", b.patch.Elided(), a.patch.Elided())
	}
	for i := 0; i < mapSize; i++ {
		if a.consumed.Has(uint32(i)) != b.consumed.Has(uint32(i)) {
			t.Fatalf("consumed mask differs at cell %d", i)
		}
	}
	for _, in := range inputs {
		a.mFast.Reset()
		r1 := a.machFast.Run("main", in)
		b.mFast.Reset()
		r2 := b.machFast.Run("main", in)
		if r1.Status != r2.Status || r1.Ret != r2.Ret || r1.Steps != r2.Steps {
			t.Fatalf("input %q: restored-plan machine diverged: %+v vs %+v", in, r1, r2)
		}
		for i := range a.mFast.Bytes() {
			if a.mFast.Bytes()[i] != b.mFast.Bytes()[i] {
				t.Fatalf("input %q: maps differ at cell %d", in, i)
			}
		}
	}
}

// TestPatchableFullElision drives the limit case — every map cell
// consumed — and checks the fast machine still produces identical
// results with a completely silent map.
func TestPatchableFullElision(t *testing.T) {
	sub := subjects.Get("flvmeta")
	const mapSize = 1 << 12
	for _, fb := range []instrument.Feedback{instrument.FeedbackEdge, instrument.FeedbackPath, instrument.FeedbackPathAFL} {
		p := newCGTPair(t, sub, fb, instrument.Config{}, mapSize, vm.DefaultLimits())
		for i := 0; i < mapSize; i++ {
			p.consumed.Set(uint32(i))
		}
		if n := p.patch.Replan(p.consumed); n != p.patch.NumSites() {
			t.Fatalf("%v: full mask elided %d of %d sites", fb, n, p.patch.NumSites())
		}
		if err := p.patch.Verify(); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for _, in := range subjectInputs(sub, rng, 20) {
			p.mFull.Reset()
			r1 := p.machFull.Run("main", in)
			p.mFast.Reset()
			r2 := p.machFast.Run("main", in)
			if r1.Status != r2.Status || r1.Ret != r2.Ret || r1.Steps != r2.Steps {
				t.Fatalf("%v input %q: diverged under full elision: %+v vs %+v", fb, in, r1, r2)
			}
			for i, v := range p.mFast.Bytes() {
				if v != 0 {
					t.Fatalf("%v input %q: fully elided machine wrote cell %d", fb, in, i)
				}
			}
		}
		// Un-replanning must restore pristine behaviour byte-for-byte.
		p.consumed.Clear()
		if n := p.patch.Replan(p.consumed); n != 0 {
			t.Fatalf("%v: empty mask left %d sites elided", fb, n)
		}
		rng = rand.New(rand.NewSource(3))
		for _, in := range subjectInputs(sub, rng, 20) {
			p.check(t, fmt.Sprintf("restored/%v", fb), in)
		}
	}
}

// TestPatchableTightLimits pins step/timeout/fault parity of the
// patched opcodes: under brutal limits and fault injection the patched
// machine must fail at exactly the same step as the pristine one.
func TestPatchableTightLimits(t *testing.T) {
	sub := subjects.Get("cflow")
	lims := []vm.Limits{
		{MaxSteps: 100, MaxDepth: 64, MaxHeapCells: 1 << 22, MaxAlloc: 1 << 20, MaxCmpObs: 64},
		{MaxSteps: 333, MaxDepth: 5, MaxHeapCells: 256, MaxAlloc: 64, MaxCmpObs: 8},
		func() vm.Limits {
			l := vm.DefaultLimits()
			l.InjectPanicAtStep = 57
			return l
		}(),
	}
	// Injected faults panic by design (the fuzzer's protected runner
	// recovers them); capture matches the pattern in the engine's own
	// fault-injection differential test.
	capture := func(run func()) (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		run()
		return ""
	}
	for li, lim := range lims {
		p := newCGTPair(t, sub, instrument.FeedbackEdge, instrument.Config{}, 1<<10, lim)
		// Elide everything so the fast path is maximally different.
		for i := 0; i < 1<<10; i++ {
			p.consumed.Set(uint32(i))
		}
		p.patch.Replan(p.consumed)
		rng := rand.New(rand.NewSource(13))
		for _, in := range subjectInputs(sub, rng, 20) {
			var r1, r2 vm.Result
			p.mFull.Reset()
			msg1 := capture(func() { r1 = p.machFull.Run("main", in) })
			p.mFast.Reset()
			msg2 := capture(func() { r2 = p.machFast.Run("main", in) })
			if msg1 != msg2 {
				t.Fatalf("lim%d input %q: injected fault mismatch: full %q fast %q", li, in, msg1, msg2)
			}
			if msg1 != "" {
				continue
			}
			if r1.Status != r2.Status || r1.Ret != r2.Ret || r1.Steps != r2.Steps {
				t.Fatalf("lim%d input %q: diverged: full=%+v fast=%+v", li, in, r1, r2)
			}
			if !reflect.DeepEqual(r1.Crash, r2.Crash) {
				t.Fatalf("lim%d input %q: crash mismatch\nfull: %+v\nfast: %+v", li, in, r1.Crash, r2.Crash)
			}
		}
	}
}
