package analysis

import (
	"repro/internal/cfg"
	"repro/internal/lang"
)

// Site is one static crash site: an instruction that can fault at run
// time (out-of-bounds load/store, checked division/modulo, assert,
// abort, allocation).
type Site struct {
	Fn    int
	Block int
	Instr int
	Kind  string
	Pos   lang.Pos
}

// siteKind classifies in as a potential crash site ("" when it cannot
// fault).
func siteKind(in *cfg.Instr) string {
	switch in.Op {
	case cfg.OpLoad:
		return "load"
	case cfg.OpStore:
		return "store"
	case cfg.OpBin:
		if in.Sub == lang.SLASH || in.Sub == lang.PCT {
			return "div"
		}
	case cfg.OpBuiltin:
		switch in.Callee {
		case cfg.BAssert:
			return "assert"
		case cfg.BAbort:
			return "abort"
		case cfg.BAlloc:
			return "alloc"
		}
	}
	return ""
}

// CrashSites enumerates the crash sites of f (fn is the function index
// recorded in the sites).
func CrashSites(fn int, f *cfg.Func) []Site {
	var out []Site
	for b := range f.Blocks {
		for i := range f.Blocks[b].Instrs {
			if k := siteKind(&f.Blocks[b].Instrs[i]); k != "" {
				out = append(out, Site{Fn: fn, Block: b, Instr: i, Kind: k, Pos: f.Blocks[b].Instrs[i].Pos})
			}
		}
	}
	return out
}

// Reach is the whole-program crash-site reachability analysis: for
// every basic block, the set of static crash sites reachable from its
// start, following CFG successors within a function and entering
// callees at call instructions (a PrescientFuzz-style "how much danger
// lies past this point" metric). The fuzzer's power schedule uses the
// counts to favour frontier inputs whose coverage borders many
// unexplored crash sites.
type Reach struct {
	prog *cfg.Program
	// sites is the global crash-site table; siteID orders it.
	sites []Site
	// blockSet[fn][b] is the bitset (over sites) reachable from the
	// start of block b of function fn.
	blockSet [][]BitSet
	// counts caches popcounts of blockSet.
	counts [][]int
}

// NewReach computes the reachability closure (a fixpoint over the call
// graph, so recursion and loops are handled).
func NewReach(p *cfg.Program) *Reach {
	r := &Reach{prog: p}
	// Global site numbering, per (fn, block, instr).
	siteAt := make([]map[[2]int]int, len(p.Funcs))
	for fi, f := range p.Funcs {
		siteAt[fi] = make(map[[2]int]int)
		for _, s := range CrashSites(fi, f) {
			siteAt[fi][[2]int{s.Block, s.Instr}] = len(r.sites)
			r.sites = append(r.sites, s)
		}
	}
	n := len(r.sites)
	r.blockSet = make([][]BitSet, len(p.Funcs))
	for fi, f := range p.Funcs {
		r.blockSet[fi] = make([]BitSet, len(f.Blocks))
		for b := range f.Blocks {
			r.blockSet[fi][b] = NewBitSet(n)
		}
	}
	// Fixpoint: a block reaches its own sites, its callees' entry sets,
	// and everything its successors reach. Iterate functions until the
	// whole program stabilises (callee entry sets grow monotonically).
	for changed := true; changed; {
		changed = false
		for fi, f := range p.Funcs {
			// Within a function, propagate in reverse RPO so intra-
			// procedural chains settle in one sweep.
			rpo := ReversePostorder(f)
			for i := len(rpo) - 1; i >= 0; i-- {
				b := rpo[i]
				set := r.blockSet[fi][b]
				blk := &f.Blocks[b]
				for ii := range blk.Instrs {
					in := &blk.Instrs[ii]
					if id, ok := siteAt[fi][[2]int{b, ii}]; ok {
						if !set.Has(id) {
							set.Set(id)
							changed = true
						}
					}
					if in.Op == cfg.OpCall && in.Callee >= 0 && in.Callee < len(p.Funcs) {
						callee := p.Funcs[in.Callee]
						if len(callee.Blocks) > 0 && set.UnionWith(r.blockSet[in.Callee][callee.Entry()]) {
							changed = true
						}
					}
				}
				for _, e := range f.Successors(b) {
					if set.UnionWith(r.blockSet[fi][f.Edges[e].To]) {
						changed = true
					}
				}
			}
		}
	}
	r.counts = make([][]int, len(p.Funcs))
	for fi, f := range p.Funcs {
		r.counts[fi] = make([]int, len(f.Blocks))
		for b := range f.Blocks {
			n := 0
			for _, w := range r.blockSet[fi][b] {
				for ; w != 0; w &= w - 1 {
					n++
				}
			}
			r.counts[fi][b] = n
		}
	}
	return r
}

// NumSites returns the program's total crash-site count.
func (r *Reach) NumSites() int { return len(r.sites) }

// Sites returns the global crash-site table.
func (r *Reach) Sites() []Site { return r.sites }

// Block returns the number of crash sites reachable from the start of
// block b of function fn.
func (r *Reach) Block(fn, b int) int { return r.counts[fn][b] }

// Func returns the number of crash sites reachable from fn's entry.
func (r *Reach) Func(fn int) int {
	if len(r.counts[fn]) == 0 {
		return 0
	}
	return r.counts[fn][r.prog.Funcs[fn].Entry()]
}
