package instrument

import (
	"sync"
	"testing"

	"repro/internal/subjects"
)

// TestCompiledForMemoized asserts the compile-once contract: repeated
// and concurrent lookups for the same (program, feedback, config)
// return the identical *bytecode.Program, so a process compiles each
// subject at most once per feedback no matter how many fuzzers,
// resumes, or eval workers share it.
func TestCompiledForMemoized(t *testing.T) {
	prog, err := subjects.Get("cflow").Program()
	if err != nil {
		t.Fatal(err)
	}
	for _, fb := range []Feedback{FeedbackEdge, FeedbackPath, FeedbackBlock, FeedbackNGram, FeedbackPathAFL} {
		first, ok := CompiledFor(fb, prog, Config{})
		if !ok {
			t.Fatalf("%v: no lowering", fb)
		}
		var wg sync.WaitGroup
		ptrs := make([]interface{}, 16)
		for i := range ptrs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cp, _ := CompiledFor(fb, prog, Config{})
				ptrs[i] = cp
			}(i)
		}
		wg.Wait()
		for i, p := range ptrs {
			if p != interface{}(first) {
				t.Fatalf("%v: call %d returned a different compiled program pointer", fb, i)
			}
		}
	}
}

// TestCompiledForKeyedByConfig asserts distinct configs get distinct
// compilations (and that an explicit default config hits the same
// entry as the zero config after normalization).
func TestCompiledForKeyedByConfig(t *testing.T) {
	prog, err := subjects.Get("cflow").Program()
	if err != nil {
		t.Fatal(err)
	}
	base, _ := CompiledFor(FeedbackPath, prog, Config{})
	naive, _ := CompiledFor(FeedbackPath, prog, Config{NaivePlacement: true})
	if base == naive {
		t.Fatal("naive-placement config shares the optimized compilation")
	}
	norm, _ := CompiledFor(FeedbackPath, prog, Config{}.withDefaults())
	if base != norm {
		t.Fatal("normalized default config missed the cache entry for the zero config")
	}
}

// TestCompiledForExtensionsFallBack pins that the extension feedbacks
// report no lowering, forcing engine selection back to the reference
// interpreter rather than silently mis-instrumenting.
func TestCompiledForExtensionsFallBack(t *testing.T) {
	prog, err := subjects.Get("cflow").Program()
	if err != nil {
		t.Fatal(err)
	}
	for _, fb := range []Feedback{FeedbackPath2, FeedbackSelective} {
		if cp, ok := CompiledFor(fb, prog, Config{}); ok || cp != nil {
			t.Fatalf("%v: expected no bytecode lowering", fb)
		}
	}
}
