// The cartography modes of paprof: `-explain` inverts a campaign's
// final coverage map cell by cell (every observed cell → its program
// meaning), `-coverage-report` renders the annotated-source coverage
// report, per-function path-discovery counts, and the frontier
// explorer. Both reconstruct the instrumentation layout offline from
// checkpoint metadata — the campaign itself is never re-executed.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis/interproc"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/covmap"
	"repro/internal/fleet"
	"repro/internal/instrument"
	"repro/internal/strategy"
	"repro/internal/subjects"
)

// explainMeaningCap bounds per-cell meaning listings in -explain: a
// heavily aliased path cell can carry hundreds of candidate paths, and
// the count matters more than the full enumeration.
const explainMeaningCap = 4

// loadCampaignState reads the newest checkpoint(s) under dir — every
// worker-N/ subdirectory for fleet state directories, the directory
// itself otherwise — and returns the campaign metadata plus the union
// of the final virgin-map cells.
func loadCampaignState(dir string) (meta campaign.Meta, virgin []coverage.VirginCell, label string) {
	fs := campaign.OSFS{}
	if fleet.HasManifest(fs, dir) {
		man, err := fleet.LoadManifest(fs, dir)
		if err != nil {
			fatalf("fleet manifest: %v", err)
		}
		for i := 0; i < man.Workers; i++ {
			wdir := filepath.Join(dir, fmt.Sprintf("worker-%d", i))
			ck, warns, err := campaign.LoadLatest(fs, wdir)
			for _, w := range warns {
				fmt.Fprintf(os.Stderr, "paprof: worker %d: %s\n", i, w)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "paprof: worker %d: %v\n", i, err)
				continue
			}
			virgin = append(virgin, ck.Snap.Virgin...)
		}
		return man.Meta, virgin, metaLabel(man.Meta) + " (fleet)"
	}
	ck, warns, err := campaign.LoadLatest(fs, dir)
	for _, w := range warns {
		fmt.Fprintf(os.Stderr, "paprof: %s\n", w)
	}
	if err != nil {
		fatalf("%v", err)
	}
	return ck.Meta, ck.Snap.Virgin, metaLabel(ck.Meta)
}

// cartographyTarget reconstructs the fuzzed program from checkpoint
// metadata, refusing drifted sources: a reverse index built against
// different code would attribute cells to the wrong lines.
func cartographyTarget(meta campaign.Meta) (*core.Target, error) {
	switch {
	case meta.Subject != "":
		sub := subjects.Get(meta.Subject)
		if sub == nil {
			return nil, fmt.Errorf("checkpoint references unknown subject %q", meta.Subject)
		}
		prog, err := sub.Program()
		if err != nil {
			return nil, err
		}
		return core.FromProgram(prog), nil
	case meta.Source != "":
		src, err := os.ReadFile(meta.Source)
		if err != nil {
			return nil, fmt.Errorf("checkpointed source: %v", err)
		}
		sum := sha256.Sum256(src)
		if got := hex.EncodeToString(sum[:]); got != meta.SourceSum {
			return nil, fmt.Errorf("source %s changed since the campaign started (sha256 %s, checkpoint has %s); the map layout no longer matches", meta.Source, got, meta.SourceSum)
		}
		target, err := core.Compile(string(src))
		if err != nil {
			return nil, fmt.Errorf("compile: %v", err)
		}
		return target, nil
	}
	return nil, fmt.Errorf("checkpoint names neither a subject nor a source file")
}

// cartographyIndex builds the reverse coverage-map index for a
// campaign's exact instrumentation layout.
func cartographyIndex(meta campaign.Meta) (*covmap.Index, error) {
	fb, _, ok := strategy.SingleConfig(strategy.Name(meta.Fuzzer))
	if !ok {
		return nil, fmt.Errorf("configuration %q is not a single-feedback campaign; cartography needs one fixed map layout", meta.Fuzzer)
	}
	target, err := cartographyTarget(meta)
	if err != nil {
		return nil, err
	}
	mapSize := meta.MapSize
	if mapSize == 0 {
		mapSize = coverage.DefaultMapSize
	}
	return covmap.New(target.Prog, fb, instrument.Config{}, mapSize)
}

// runExplain prints the program meaning of every cell the campaign's
// final virgin map has consumed. Exit status 1 if any observed cell
// fails to resolve — that would mean the reverse index disagrees with
// the runtime instrumentation.
func runExplain(dir string) {
	meta, virgin, label := loadCampaignState(dir)
	ix, err := cartographyIndex(meta)
	if err != nil {
		fatalf("%v", err)
	}
	obs := covmap.FromVirgin(virgin)
	fmt.Printf("coverage map explanation: %s (feedback %s, map size %d)\n\n",
		label, ix.Feedback, ix.MapSize)
	unresolved := 0
	for _, o := range obs {
		ms := ix.Resolve(o.Cell)
		if len(ms) == 0 {
			unresolved++
			fmt.Printf("%6d  buckets %08b  UNRESOLVED\n", o.Cell, o.Buckets)
			continue
		}
		fmt.Printf("%6d  buckets %08b\n", o.Cell, o.Buckets)
		for i, m := range ms {
			if i == explainMeaningCap {
				fmt.Printf("          … %d more candidate meanings\n", len(ms)-i)
				break
			}
			fmt.Printf("          %s\n", ix.String(m))
		}
	}
	fmt.Printf("\n%d cells observed, %d unresolved\n", len(obs), unresolved)
	if unresolved > 0 {
		os.Exit(1)
	}
}

// runCoverageReport renders the full cartography report: summary,
// per-function table (including path-discovery counts), frontier
// explorer, and annotated source. With htmlOut the same report is also
// written as a self-contained HTML page. Exit status 1 if any observed
// cell is unresolvable.
func runCoverageReport(dir, htmlOut string) {
	meta, virgin, label := loadCampaignState(dir)
	ix, err := cartographyIndex(meta)
	if err != nil {
		fatalf("%v", err)
	}
	obs := covmap.FromVirgin(virgin)
	rep := ix.BuildReport(obs, covmap.Options{
		Label: label,
		Facts: interproc.ForProgram(ix.Prog),
	})
	rep.WriteText(os.Stdout)
	if htmlOut != "" {
		page := rep.WriteHTML("paprof coverage report")
		if werr := os.WriteFile(htmlOut, page, 0o644); werr != nil {
			fatalf("writing %s: %v", htmlOut, werr)
		}
		fmt.Printf("\nHTML report: %s\n", htmlOut)
	}
	if len(rep.Unresolved) > 0 {
		os.Exit(1)
	}
}
