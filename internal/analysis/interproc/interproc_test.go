package interproc

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/subjects"
)

func mustFacts(t *testing.T, src string) *Facts {
	t.Helper()
	prog, err := cfg.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return ForProgram(prog)
}

// branchAt finds the branch fact whose source line matches.
func branchAt(t *testing.T, fs *Facts, fn string, line int) *BranchFact {
	t.Helper()
	fi, ok := fs.Prog.ByName[fn]
	if !ok {
		t.Fatalf("no function %q", fn)
	}
	for i := range fs.Fns[fi].Branches {
		if fs.Fns[fi].Branches[i].Pos.Line == line {
			return &fs.Fns[fi].Branches[i]
		}
	}
	t.Fatalf("no branch fact at %s:%d (have %+v)", fn, line, fs.Fns[fi].Branches)
	return nil
}

func TestTaintDirectByteDependency(t *testing.T) {
	fs := mustFacts(t, `
func main(input) {
    if (len(input) < 4) { return 0; }
    var x = input[1];
    if (x > 10) { return 1; }
    return 2;
}
`)
	lenBr := branchAt(t, fs, "main", 3)
	if !lenBr.Dep || !lenBr.Bytes.Empty() {
		t.Errorf("len branch: want length-only dependency, got dep=%v bytes=%s",
			lenBr.Dep, lenBr.Bytes.String())
	}
	xBr := branchAt(t, fs, "main", 5)
	if !xBr.Dep || !xBr.Bytes.Contains(1) {
		t.Errorf("x branch: want dep on byte 1, got dep=%v bytes=%s", xBr.Dep, xBr.Bytes.String())
	}
	if xBr.Bytes.All || xBr.Bytes.Contains(3) {
		t.Errorf("x branch mask too wide: %s", xBr.Bytes.String())
	}
}

func TestTaintInputIndependentBranch(t *testing.T) {
	fs := mustFacts(t, `
func main(input) {
    var c = 0;
    var i = 0;
    while (i < 4) { c = c + 2; i = i + 1; }
    if (c > 5) { c = c - 1; }
    if (len(input) < 1) { return c; }
    return input[0];
}
`)
	if br := branchAt(t, fs, "main", 6); br.Dep {
		t.Errorf("c branch should be input-independent, got bytes=%s", br.Bytes.String())
	}
	if br := branchAt(t, fs, "main", 5); br.Dep {
		t.Errorf("loop branch should be input-independent, got bytes=%s", br.Bytes.String())
	}
}

func TestTaintInterproceduralFlow(t *testing.T) {
	fs := mustFacts(t, `
func get(input, i) {
    return input[i];
}
func main(input) {
    if (len(input) < 9) { return 0; }
    var v = get(input, 8);
    if (v == 65) { return 1; }
    return 2;
}
`)
	// Context-insensitivity: inside get the index interval is unknown,
	// so the dependency widens to all bytes — but it must be there.
	br := branchAt(t, fs, "main", 8)
	if !br.Dep || br.Bytes.Empty() {
		t.Errorf("call-returned value should be input-dependent, got dep=%v bytes=%s",
			br.Dep, br.Bytes.String())
	}
}

func TestTaintImplicitFlow(t *testing.T) {
	fs := mustFacts(t, `
func main(input) {
    if (len(input) < 2) { return 0; }
    var flag = 0;
    if (input[0] == 65) { flag = 1; }
    if (flag == 1) { return 1; }
    return 0;
}
`)
	// flag is only ever assigned constants; its dependency on input[0]
	// is purely implicit (which assignment executed).
	br := branchAt(t, fs, "main", 6)
	if !br.Dep || !br.Bytes.Contains(0) {
		t.Errorf("implicit flow missed: dep=%v bytes=%s", br.Dep, br.Bytes.String())
	}
}

func TestTaintThroughHeapStore(t *testing.T) {
	fs := mustFacts(t, `
func main(input) {
    if (len(input) < 3) { return 0; }
    var buf = alloc(4);
    buf[0] = input[2];
    var z = buf[0];
    if (z == 9) { return 1; }
    return 0;
}
`)
	br := branchAt(t, fs, "main", 7)
	if !br.Dep || !br.Bytes.Contains(2) {
		t.Errorf("store/load through heap lost taint: dep=%v bytes=%s", br.Dep, br.Bytes.String())
	}
}

func TestTaintRecursionConverges(t *testing.T) {
	fs := mustFacts(t, `
func walk(input, pos, depth) {
    if (depth > 8) { return 0; }
    if (pos >= len(input)) { return 0; }
    if (input[pos] == 40) {
        return 1 + walk(input, pos + 1, depth + 1);
    }
    return 0;
}
func main(input) {
    if (len(input) < 1) { return 0; }
    var d = walk(input, 0, 0);
    if (d > 3) { return 1; }
    return 0;
}
`)
	wi := fs.Prog.ByName["walk"]
	if !fs.CG.Recursive(wi) {
		t.Fatal("walk should be recursive")
	}
	br := branchAt(t, fs, "main", 13)
	if !br.Dep {
		t.Error("recursion depth result should be input-dependent")
	}
}

func TestInfeasiblePathsAndImplications(t *testing.T) {
	fs := mustFacts(t, `
func main(input) {
    if (len(input) < 1) { return 0; }
    var x = input[0];
    var r = 0;
    if (x > 100) { r = 1; }
    if (x < 50) { r = r + 2; }
    return r;
}
`)
	mi := fs.Prog.ByName["main"]
	ff := fs.Fns[mi]
	if !ff.Walked {
		t.Fatal("main should be path-enumerable")
	}
	// Exactly one acyclic path takes both then-edges (x > 100 && x < 50)
	// and the relational refinement proves it contradictory.
	if len(ff.Infeasible) != 1 {
		t.Fatalf("infeasible = %v, want exactly 1", ff.Infeasible)
	}
	b1 := branchAt(t, fs, "main", 6).Block
	b2 := branchAt(t, fs, "main", 7).Block
	found := false
	for _, im := range ff.Implications {
		if im.B1 == b1 && im.D1 && im.B2 == b2 && !im.D2 {
			found = true
			if im.Witness < 1 {
				t.Errorf("implication without witness: %+v", im)
			}
		}
	}
	if !found {
		t.Errorf("missing implication (x>100 then) => (x<50 else); have %+v", ff.Implications)
	}
}

func TestInfeasiblePathsAreConservative(t *testing.T) {
	// Both branch orders are genuinely reachable: nothing may be
	// reported infeasible.
	fs := mustFacts(t, `
func main(input) {
    if (len(input) < 2) { return 0; }
    var r = 0;
    if (input[0] > 10) { r = 1; }
    if (input[1] > 10) { r = r + 2; }
    return r;
}
`)
	if n := fs.NumInfeasible(); n != 0 {
		t.Errorf("independent branches produced %d infeasible paths", n)
	}
}

func TestCmpSkipRatio(t *testing.T) {
	fs := mustFacts(t, `
func main(input) {
    if (len(input) < 1) { return 0; }
    var i = 0;
    var s = 0;
    while (i < 3) { s = s + i; i = i + 1; }
    if (input[0] == 7) { s = s + 1; }
    return s;
}
`)
	indep, total := fs.CmpSkipRatio()
	if total != 3 {
		t.Fatalf("total cmp sites = %d, want 3", total)
	}
	if indep != 1 {
		t.Fatalf("indep cmp sites = %d, want 1 (the loop bound)", indep)
	}
}

func TestLintSeededDefects(t *testing.T) {
	prog, err := cfg.Compile(`
func dead(x) {
    return x + 1;
}
func main(input) {
    var c = 0;
    var i = 0;
    while (i < 4) { c = c + 2; i = i + 1; }
    if (c > 5) { c = c - 1; }
    if (len(input) < 2) { return c; }
    var a = input[0];
    var v = min(max(a, 0), 255);
    if (v == 300) { return 9; }
    return c;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	fds := Lint(ForProgram(prog))
	var checks []string
	for _, fd := range fds {
		checks = append(checks, fd.Check)
	}
	want := []string{"unreachable-func", "input-indep-branch", "cmp-out-of-range"}
	if len(fds) != len(want) {
		t.Fatalf("findings = %v, want checks %v", fds, want)
	}
	for i, w := range want {
		if checks[i] != w {
			t.Errorf("finding %d = %s, want %s (%s)", i, checks[i], w, fds[i])
		}
	}
}

func TestLintSubjectsClean(t *testing.T) {
	for _, s := range subjects.All() {
		prog, err := cfg.Compile(s.Source)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, fd := range Lint(ForProgram(prog)) {
			t.Errorf("%s: unexpected finding: %s", s.Name, fd)
		}
	}
}

func TestFactsDeterministic(t *testing.T) {
	for _, name := range []string{"mp3gain", "cflow", "jq"} {
		s := subjects.Get(name)
		dump := func() string {
			prog, err := cfg.Compile(s.Source)
			if err != nil {
				t.Fatal(err)
			}
			var b bytes.Buffer
			ForProgram(prog).Dump(&b)
			return b.String()
		}
		if a, b := dump(), dump(); a != b {
			t.Errorf("%s: facts dump differs between independent computations", name)
		}
	}
}

func TestForMemoizes(t *testing.T) {
	prog, err := cfg.Compile("func main(input) { return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	if For(prog, 0) != For(prog, 0) {
		t.Error("For should return the cached instance for the same program")
	}
}

func TestDumpMentionsKeySections(t *testing.T) {
	fs := mustFacts(t, `
func main(input) {
    if (len(input) < 1) { return 0; }
    if (input[0] > 4) { return 1; }
    return 2;
}
`)
	var b bytes.Buffer
	fs.Dump(&b)
	out := b.String()
	for _, want := range []string{"entry: main", "cmp sites:", "infeasible paths:", "func main", "branch b"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}
