package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/coverage"
	"repro/internal/instrument"
	"repro/internal/subjects"
	"repro/internal/vm"
)

// Optimizer benchmarks: the compiled bytecode engine with the verified
// optimization passes (constant folding, dead-block elimination, dead
// store elimination) against the same engine with -opt=false.
// BenchmarkEngineOptExec is the CI smoke view; TestWriteBenchPR3
// freezes the comparison into BENCH_PR3.json.

func BenchmarkEngineOptExec(b *testing.B) {
	for _, name := range engineExecSubjects {
		sub := subjects.Get(name)
		prog, err := sub.Program()
		if err != nil {
			b.Fatal(err)
		}
		in := benchInput(sub)
		for _, variant := range []struct {
			label string
			cfg   instrument.Config
		}{
			{"opt", instrument.Config{}},
			{"noopt", instrument.Config{NoOpt: true}},
		} {
			b.Run(name+"/"+variant.label, func(b *testing.B) {
				cp, ok := instrument.CompiledFor(instrument.FeedbackPath, prog, variant.cfg)
				if !ok {
					b.Fatal("no lowering for path feedback")
				}
				m := coverage.NewMap(1 << 13)
				mach := bytecode.NewMachine(cp, m, vm.DefaultLimits())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Reset()
					mach.Run("main", in)
				}
			})
		}
	}
}

// benchPR3 is the persisted schema of BENCH_PR3.json.
type benchPR3 struct {
	Note string                  `json:"note"`
	Exec map[string]benchPR3Exec `json:"exec"`
}

type benchPR3Exec struct {
	NoOptNsPerExec   float64 `json:"noopt_ns_per_exec"`
	OptNsPerExec     float64 `json:"opt_ns_per_exec"`
	NoOptExecsPerSec float64 `json:"noopt_execs_per_sec"`
	OptExecsPerSec   float64 `json:"opt_execs_per_sec"`
	Speedup          float64 `json:"speedup"`
	NoOptInstrs      int     `json:"noopt_instrs"`
	OptInstrs        int     `json:"opt_instrs"`
}

// TestWriteBenchPR3 regenerates BENCH_PR3.json: bytecode execution
// throughput with the verified optimization passes on (the default)
// versus off, per subject, plus the static code-size delta. Gated
// behind WRITE_BENCH_PR3=1 because it runs minutes of benchmarks:
//
//	WRITE_BENCH_PR3=1 go test -run TestWriteBenchPR3 -timeout 30m .
func TestWriteBenchPR3(t *testing.T) {
	if os.Getenv("WRITE_BENCH_PR3") == "" {
		t.Skip("set WRITE_BENCH_PR3=1 to regenerate BENCH_PR3.json")
	}
	out := benchPR3{
		Note: "median of 3; single-core hosts show ±25% run-to-run variance. The passes are throughput-neutral within noise on the benchmark subjects: exact step parity with the interpreter requires dead stores to become counted nops rather than deletions, so the optimizer's value is dead-block elimination, code-size reduction, and the machine-checked equivalence guarantee. Regenerate with: WRITE_BENCH_PR3=1 go test -run TestWriteBenchPR3 -timeout 30m .",
		Exec: map[string]benchPR3Exec{},
	}
	for _, name := range engineExecSubjects {
		sub := subjects.Get(name)
		prog, err := sub.Program()
		if err != nil {
			t.Fatal(err)
		}
		in := benchInput(sub)
		lim := vm.DefaultLimits()

		rate := func(cfg instrument.Config) (float64, int) {
			cp, ok := instrument.CompiledFor(instrument.FeedbackPath, prog, cfg)
			if !ok {
				t.Fatal("no lowering for path feedback")
			}
			ns, _ := medianNs(func(b *testing.B) {
				m := coverage.NewMap(1 << 13)
				mach := bytecode.NewMachine(cp, m, lim)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m.Reset()
					mach.Run("main", in)
				}
			})
			return ns, cp.NumInstrs()
		}

		nNs, nInstrs := rate(instrument.Config{NoOpt: true})
		oNs, oInstrs := rate(instrument.Config{})
		e := benchPR3Exec{
			NoOptNsPerExec: nNs,
			OptNsPerExec:   oNs,
			NoOptInstrs:    nInstrs,
			OptInstrs:      oInstrs,
		}
		if nNs > 0 {
			e.NoOptExecsPerSec = 1e9 / nNs
		}
		if oNs > 0 {
			e.OptExecsPerSec = 1e9 / oNs
			e.Speedup = nNs / oNs
		}
		out.Exec[name] = e
		t.Logf("exec %-10s noopt %.0f ns  opt %.0f ns  speedup %.2fx  instrs %d -> %d",
			name, nNs, oNs, e.Speedup, nInstrs, oInstrs)
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR3.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_PR3.json")
}
