package journal

import (
	"fmt"
	"strings"
	"testing"
)

// sampleCorpus is a two-worker corpus with a seed → havoc → splice
// lineage on worker 0 and a lone seed on worker 1.
func sampleCorpus() []CorpusMeta {
	return []CorpusMeta{
		{Worker: 0, ID: 0, Parent: -1, Stage: "seed", FoundAt: 0, Len: 4, CovCount: 3, FirstCells: []uint32{1, 2, 3}},
		{Worker: 0, ID: 1, Parent: 0, Stage: "havoc", Depth: 1, FoundAt: 100, Len: 6, CovCount: 4, FirstCells: []uint32{4}},
		{Worker: 0, ID: 2, Parent: 1, Stage: "splice", Depth: 2, FoundAt: 250, Len: 9, CovCount: 5, FirstCells: []uint32{5, 6}},
		{Worker: 1, ID: 0, Parent: -1, Stage: "seed", FoundAt: 0, Len: 4, CovCount: 3, FirstCells: []uint32{1, 7}},
	}
}

func TestGenealogyTree(t *testing.T) {
	var b strings.Builder
	Genealogy(&b, sampleCorpus())
	out := b.String()
	if !strings.Contains(out, "worker 0:") || !strings.Contains(out, "worker 1:") {
		t.Fatalf("missing worker headers:\n%s", out)
	}
	// The splice entry is two mutations deep: indented under its havoc
	// parent, which is indented under the seed root.
	if !strings.Contains(out, "    #2    splice") {
		t.Fatalf("splice entry not nested at depth 2:\n%s", out)
	}
	// Each entry prints exactly once despite the orphan sweep.
	if n := strings.Count(out, "#2    splice"); n != 1 {
		t.Fatalf("splice entry printed %d times:\n%s", n, out)
	}
}

func TestAttributionRows(t *testing.T) {
	rows := AttributionRows(sampleCorpus())
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rows), rows)
	}
	// Row order follows stageOrder, not alphabetical.
	if rows[0].Stage != "seed" || rows[1].Stage != "havoc" || rows[2].Stage != "splice" {
		t.Fatalf("row order wrong: %+v", rows)
	}
	if rows[0].Entries != 2 || rows[0].FirstCells != 5 {
		t.Fatalf("seed row %+v, want 2 entries / 5 cells", rows[0])
	}

	var b strings.Builder
	Attribution(&b, "flvmeta/path", sampleCorpus())
	out := b.String()
	if !strings.Contains(out, "discovery attribution (flvmeta/path):") {
		t.Fatalf("missing label header:\n%s", out)
	}
	if !strings.Contains(out, "total") {
		t.Fatalf("missing total row:\n%s", out)
	}
}

func TestRarityBuckets(t *testing.T) {
	// Cell 1 is touched by two entries (bucket 2-3); everything else by
	// one (bucket 1).
	buckets := RarityBuckets(sampleCorpus(), func(m CorpusMeta) []uint32 { return m.FirstCells })
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets, want 2: %+v", len(buckets), buckets)
	}
	if buckets[0].Lo != 1 || buckets[0].Cells != 6 {
		t.Fatalf("singleton bucket %+v, want Lo=1 Cells=6", buckets[0])
	}
	if buckets[1].Lo != 2 || buckets[1].Cells != 1 {
		t.Fatalf("shared bucket %+v, want Lo=2 Cells=1", buckets[1])
	}

	var b strings.Builder
	Rarity(&b, nil)
	if !strings.Contains(b.String(), "(no cell provenance recorded)") {
		t.Fatalf("empty corpus rarity:\n%s", b.String())
	}
}

func TestEventAttribution(t *testing.T) {
	events := []Event{
		{Kind: KindNovelty, Stage: "havoc", Cells: []uint32{1, 2}},
		{Kind: KindNovelty, Stage: "havoc", Cells: []uint32{3}},
		{Kind: KindNovelty, Stage: "splice"},
		{Kind: KindCrash, Stage: "havoc"},
		{Kind: KindCrash}, // stageless crash lands in the "?" row
		{Kind: KindCycle}, // non-discovery kinds are ignored
	}
	var b strings.Builder
	EventAttribution(&b, events)
	out := b.String()
	if !strings.Contains(out, "havoc") || !strings.Contains(out, "splice") || !strings.Contains(out, "?") {
		t.Fatalf("missing stage rows:\n%s", out)
	}
	havocLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "havoc") {
			havocLine = line
		}
	}
	if fields := strings.Fields(havocLine); len(fields) != 4 ||
		fields[1] != "2" || fields[2] != "3" || fields[3] != "1" {
		t.Fatalf("havoc row %q, want novelty=2 cells=3 crashes=1", havocLine)
	}
}

func TestProvenanceCSV(t *testing.T) {
	data := ProvenanceCSV(sampleCorpus())
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if lines[0] != "worker,id,parent,stage,depth,steps,found_at,len,cov,first_cells" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("got %d data rows, want 4", len(lines)-1)
	}
	if lines[1] != "0,0,-1,seed,0,0,0,4,3,3" {
		t.Fatalf("first row %q", lines[1])
	}
	// Empty corpus still yields the header (evalharness marker files).
	if got := string(ProvenanceCSV(nil)); got != lines[0]+"\n" {
		t.Fatalf("empty-corpus CSV %q", got)
	}
}

func TestHTMLReport(t *testing.T) {
	events := []Event{{Kind: KindNovelty, Stage: "havoc", Cells: []uint32{1}}}
	page := string(HTMLReport("t<b>itle", "subj/fuzzer", sampleCorpus(), events, nil))
	if !strings.HasPrefix(page, "<!doctype html>") || !strings.HasSuffix(page, "</body></html>") {
		t.Fatalf("page not well-formed:\n%.120s...", page)
	}
	// Title is escaped, never interpolated raw.
	if strings.Contains(page, "t<b>itle") || !strings.Contains(page, "t&lt;b&gt;itle") {
		t.Fatal("title not HTML-escaped")
	}
	for _, want := range []string{"discovery attribution", "path rarity", "genealogy", "journal (1 events)", "subj/fuzzer"} {
		if !strings.Contains(page, want) {
			t.Fatalf("page missing %q", want)
		}
	}
	// Without events the journal sections are omitted entirely.
	bare := string(HTMLReport("t", "l", sampleCorpus(), nil, nil))
	if strings.Contains(bare, "journal (") {
		t.Fatal("event sections rendered with no events")
	}
}

func TestCoverageDelta(t *testing.T) {
	e3 := 3
	events := []Event{
		{Kind: KindNovelty, Stage: "seed", Execs: 1, Cells: []uint32{7}},
		{Kind: KindCycle, Cycle: 2},
		{Kind: KindNovelty, Stage: "havoc", Execs: 40, Entry: &e3, Worker: 1,
			Cells: []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	var b strings.Builder
	CoverageDelta(&b, events, func(c uint32) string { return fmt.Sprintf("meaning-%d", c) })
	out := b.String()
	for _, want := range []string{
		"warmup exec 1 seed entry #-1 w0: 1 cells",
		"00007 meaning-7",
		"cycle 2 exec 40 havoc entry #3 w1: 10 cells",
		"… 2 more",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CoverageDelta missing %q:\n%s", want, out)
		}
	}
	// nil resolver renders raw indices; no events renders the marker.
	b.Reset()
	CoverageDelta(&b, events[:1], nil)
	if !strings.Contains(b.String(), "    00007\n") {
		t.Errorf("nil-resolver output:\n%s", b.String())
	}
	b.Reset()
	CoverageDelta(&b, nil, nil)
	if !strings.Contains(b.String(), "(no novelty events)") {
		t.Errorf("empty output:\n%s", b.String())
	}
}
