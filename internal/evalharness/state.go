package evalharness

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/campaign"
	"repro/internal/strategy"
	"repro/internal/triage"
)

// runsDir is the StateDir subdirectory holding persisted run results.
const runsDir = "runs"

// savedRun is the on-disk form of a RunResult, sealed with the campaign
// checkpoint framing so truncation and corruption are detected on load.
// EdgeSet flattens to a sorted slice (gob cannot encode set maps), and
// the budget fields pin the configuration the run was produced under: a
// saved run from a different configuration is treated as a miss, never
// silently reused.
type savedRun struct {
	Subject string
	Fuzzer  strategy.Name
	Run     int
	Result  RunResult
	Edges   []uint32

	Budget      int64
	RoundBudget int64
	MapSize     int
	BaseSeed    int64
}

func runFileName(subject string, f strategy.Name, run int) string {
	return fmt.Sprintf("%s_%s_%03d.run", campaign.SanitizeName(subject), campaign.SanitizeName(string(f)), run)
}

func runFilePath(dir, subject string, f strategy.Name, run int) string {
	return filepath.Join(dir, runsDir, runFileName(subject, f, run))
}

// saveRun persists one finished campaign under cfg.StateDir.
func saveRun(cfg Config, rr *RunResult) error {
	sv := savedRun{
		Subject:     rr.Subject,
		Fuzzer:      rr.Fuzzer,
		Run:         rr.Run,
		Result:      *rr,
		Budget:      cfg.Budget,
		RoundBudget: cfg.RoundBudget,
		MapSize:     cfg.MapSize,
		BaseSeed:    cfg.BaseSeed,
	}
	sv.Result.EdgeSet = nil
	for e := range rr.EdgeSet {
		sv.Edges = append(sv.Edges, e)
	}
	sort.Slice(sv.Edges, func(i, j int) bool { return sv.Edges[i] < sv.Edges[j] })

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&sv); err != nil {
		return err
	}
	if err := cfg.FS.MkdirAll(filepath.Join(cfg.StateDir, runsDir)); err != nil {
		return err
	}
	path := runFilePath(cfg.StateDir, rr.Subject, rr.Fuzzer, rr.Run)
	return campaign.WriteFileAtomic(cfg.FS, path, campaign.Seal(buf.Bytes()))
}

// loadRun returns the persisted result for one campaign, or nil if it
// is absent, unreadable, corrupt, or from a different configuration —
// every miss means "run it again", so a damaged state dir degrades to
// recomputation, never to wrong results.
func loadRun(cfg Config, subject string, f strategy.Name, run int) *RunResult {
	data, err := cfg.FS.ReadFile(runFilePath(cfg.StateDir, subject, f, run))
	if err != nil {
		return nil
	}
	payload, err := campaign.Open(data)
	if err != nil {
		return nil
	}
	var sv savedRun
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&sv); err != nil {
		return nil
	}
	if sv.Subject != subject || sv.Fuzzer != f || sv.Run != run ||
		sv.Budget != cfg.Budget || sv.RoundBudget != cfg.RoundBudget ||
		sv.MapSize != cfg.MapSize || sv.BaseSeed != cfg.BaseSeed ||
		sv.Result.Report == nil {
		return nil
	}
	rr := sv.Result
	rr.EdgeSet = triage.NewSet[uint32](sv.Edges...)
	return &rr
}
