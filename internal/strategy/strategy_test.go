package strategy_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/fuzz"
	"repro/internal/strategy"
	"repro/internal/subjects"
)

func flvProg(t testing.TB) *cfg.Program {
	t.Helper()
	sub := subjects.Get("flvmeta")
	p, err := sub.Program()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func baseConfig(budget int64) strategy.Config {
	return strategy.Config{
		Opts:   fuzz.Options{Seed: 5, MapSize: 1 << 12},
		Budget: budget,
		Seeds:  subjects.Get("flvmeta").Seeds,
	}
}

func TestRunAllConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := flvProg(t)
	for _, name := range strategy.AllNames {
		out, err := strategy.Run(name, p, baseConfig(15000))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Report.Stats.Execs == 0 {
			t.Errorf("%s: no executions", name)
		}
		if out.Report.QueueLen == 0 {
			t.Errorf("%s: empty final queue", name)
		}
		t.Logf("%-8s execs=%d queue=%d bugs=%d rounds=%d",
			name, out.Report.Stats.Execs, out.Report.QueueLen, len(out.Report.Bugs), out.Rounds)
	}
}

func TestUnknownName(t *testing.T) {
	p := flvProg(t)
	if _, err := strategy.Run("bogus", p, baseConfig(100)); err == nil {
		t.Error("unknown configuration accepted")
	}
}

func TestCullRunsMultipleRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := flvProg(t)
	cfgr := baseConfig(40000)
	cfgr.RoundBudget = 10000
	out, err := strategy.RunCull(p, cfgr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds < 3 {
		t.Errorf("rounds = %d, want >= 3", out.Rounds)
	}
	// Budget accounting: total executions (including culling replays)
	// must not exceed the budget by more than one round's slack.
	total := out.Report.Stats.Execs + out.CullCost
	if total > cfgr.Budget+cfgr.Budget/4 {
		t.Errorf("budget overrun: %d execs + %d cull vs %d budget", out.Report.Stats.Execs, out.CullCost, cfgr.Budget)
	}
}

func TestCullReducesQueueVsPath(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	// Use a branch-dense subject where path's queue explodes.
	sub := subjects.Get("lame")
	p, err := sub.Program()
	if err != nil {
		t.Fatal(err)
	}
	cfgr := strategy.Config{
		Opts:   fuzz.Options{Seed: 2, MapSize: 1 << 12},
		Budget: 40000,
		Seeds:  sub.Seeds,
	}
	pathOut, err := strategy.Run(strategy.Path, p, cfgr)
	if err != nil {
		t.Fatal(err)
	}
	cullOut, err := strategy.Run(strategy.Cull, p, cfgr)
	if err != nil {
		t.Fatal(err)
	}
	if cullOut.Report.QueueLen >= pathOut.Report.QueueLen {
		t.Errorf("cull queue %d not smaller than path queue %d",
			cullOut.Report.QueueLen, pathOut.Report.QueueLen)
	}
	t.Logf("queues: path=%d cull=%d", pathOut.Report.QueueLen, cullOut.Report.QueueLen)
}

func TestOpportunisticPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := flvProg(t)
	out, err := strategy.RunOpportunistic(p, baseConfig(30000))
	if err != nil {
		t.Fatal(err)
	}
	if out.Phase1 == nil {
		t.Fatal("no phase-1 report")
	}
	if out.Phase1.Stats.Execs == 0 || out.Report.Stats.Execs == 0 {
		t.Error("one phase did not run")
	}
	// Phase budgets roughly split the total.
	if out.Phase1.Stats.Execs < 10000 || out.Phase1.Stats.Execs > 20000 {
		t.Errorf("phase-1 execs = %d, want ~15000", out.Phase1.Stats.Execs)
	}
	// opp's credited report must not include phase-1 crashes: bugs
	// found in phase 2 were rediscovered by the path-aware stage.
	t.Logf("phase1 bugs=%d, opp-credited bugs=%d", len(out.Phase1.Bugs), len(out.Report.Bugs))
}

func TestCullRandomDiffersFromCull(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := flvProg(t)
	cfgr := baseConfig(30000)
	cfgr.RoundBudget = 8000
	a, err := strategy.RunCull(p, cfgr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := strategy.RunCullRandom(p, cfgr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds < 2 || b.Rounds < 2 {
		t.Errorf("rounds: cull=%d cull_r=%d", a.Rounds, b.Rounds)
	}
	// Random culling replays nothing, so its cull cost is zero.
	if b.CullCost != 0 {
		t.Errorf("cull_r charged %d cull execs", b.CullCost)
	}
	if a.CullCost == 0 {
		t.Error("cull charged no culling cost")
	}
}

func TestStrategyDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := flvProg(t)
	run := func() (int, int) {
		out, err := strategy.Run(strategy.Cull, p, baseConfig(20000))
		if err != nil {
			t.Fatal(err)
		}
		return out.Report.QueueLen, len(out.Report.Bugs)
	}
	q1, b1 := run()
	q2, b2 := run()
	if q1 != q2 || b1 != b2 {
		t.Errorf("cull nondeterministic: (%d,%d) vs (%d,%d)", q1, b1, q2, b2)
	}
}

func TestExtensionConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := flvProg(t)
	for _, name := range strategy.ExtensionNames {
		out, err := strategy.RunExtension(name, p, baseConfig(15000))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Report.Stats.Execs == 0 || out.Report.QueueLen == 0 {
			t.Errorf("%s: empty campaign", name)
		}
		t.Logf("%-10s execs=%d queue=%d bugs=%d rounds=%d",
			name, out.Report.Stats.Execs, out.Report.QueueLen, len(out.Report.Bugs), out.Rounds)
	}
	// RunExtension must also accept standard names.
	if _, err := strategy.RunExtension(strategy.Path, p, baseConfig(3000)); err != nil {
		t.Errorf("standard name via RunExtension: %v", err)
	}
}

func TestInterleaveAlternates(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	p := flvProg(t)
	cfgr := baseConfig(30000)
	cfgr.RoundBudget = 8000
	out, err := strategy.RunInterleave(p, cfgr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds < 3 {
		t.Errorf("rounds = %d, want >= 3 (alternation needs several rounds)", out.Rounds)
	}
	if out.CullCost == 0 {
		t.Error("interleave did not charge culling costs")
	}
}
