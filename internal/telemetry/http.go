package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/journal"
)

// Handler returns the live-metrics endpoint:
//
//	/            minimal self-contained HTML dashboard
//	/metrics     Prometheus text exposition (version 0.0.4)
//	/snapshot.json  full JSON snapshot (counters, rates, series, stages)
//	/healthz     liveness probe (JSON; 503 when publishing has stalled)
//	/genealogy   provenance report rendered from the on-disk journal
//
// All handlers read only published snapshots, locked aggregates, and
// (for /genealogy) on-disk journal files, so serving them never touches
// campaign state.
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", r.serveMetrics)
	mux.HandleFunc("/snapshot.json", r.serveJSON)
	mux.HandleFunc("/healthz", r.serveHealthz)
	mux.HandleFunc("/genealogy", r.serveGenealogy)
	mux.HandleFunc("/coverage", r.serveCoverage)
	mux.HandleFunc("/", r.serveDashboard)
	return mux
}

// healthStale is how old the newest published snapshot may grow before
// /healthz flips to 503: a fuzzing campaign publishes at every queue
// boundary, so a minute of silence means the process is wedged, not
// merely slow.
const healthStale = 60 * time.Second

// WorkerHealth is one worker's liveness row in the /healthz document.
type WorkerHealth struct {
	ID      int     `json:"id"`
	Execs   int64   `json:"execs"`
	AgeSecs float64 `json:"age_secs"`
	Stale   bool    `json:"stale"`
}

// Health is the /healthz response document.
type Health struct {
	OK          bool    `json:"ok"`
	ElapsedSecs float64 `json:"elapsed_secs"`
	// PublishAgeSecs is the age of the newest published snapshot
	// (campaign-level or any worker's); negative when nothing has been
	// published yet.
	PublishAgeSecs float64 `json:"publish_age_secs"`
	Execs          int64   `json:"execs"`
	// Checkpoint liveness: age of the last durable checkpoint and the
	// exec counter it captured. Absent for non-durable campaigns.
	CheckpointAgeSecs  float64        `json:"checkpoint_age_secs,omitempty"`
	CheckpointExecs    int64          `json:"checkpoint_execs,omitempty"`
	CheckpointRecorded bool           `json:"checkpoint_recorded"`
	Workers            []WorkerHealth `json:"workers,omitempty"`
}

// health assembles the liveness document. A campaign is healthy when
// someone — the single fuzzer or at least one fleet worker — has
// published within healthStale. Individual stale workers are flagged
// but do not fail the probe: the supervisor recycles them, and the
// fleet as a whole is still making progress.
func (r *Recorder) health() Health {
	now := r.now()
	h := Health{ElapsedSecs: r.Elapsed().Seconds(), PublishAgeSecs: -1}
	freshest := time.Time{}
	if s := r.Latest(); s != nil {
		freshest = s.When
		h.Execs = s.Execs
	}
	for _, w := range r.Workers() {
		age := now.Sub(w.When)
		h.Workers = append(h.Workers, WorkerHealth{
			ID:      w.ID,
			Execs:   w.Execs,
			AgeSecs: age.Seconds(),
			Stale:   age > healthStale,
		})
		if w.When.After(freshest) {
			freshest = w.When
		}
	}
	if len(h.Workers) > 0 {
		h.Execs = r.AggregateWorkers().Execs
	}
	if !freshest.IsZero() {
		h.PublishAgeSecs = now.Sub(freshest).Seconds()
	}
	if when, execs, ok := r.LastCheckpoint(); ok {
		h.CheckpointRecorded = true
		h.CheckpointAgeSecs = now.Sub(when).Seconds()
		h.CheckpointExecs = execs
	}
	h.OK = !freshest.IsZero() && now.Sub(freshest) <= healthStale
	return h
}

func (r *Recorder) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	h := r.health()
	w.Header().Set("Content-Type", "application/json")
	if !h.OK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h)
}

// serveGenealogy renders the provenance report from the on-disk journal
// registered via SetJournalDir. Rendering from files — not live fuzzer
// state — keeps the handler race-free against the fuzz goroutine; the
// page is as fresh as the writer's last flush.
func (r *Recorder) serveGenealogy(w http.ResponseWriter, _ *http.Request) {
	dir := r.JournalDir()
	if dir == "" {
		http.Error(w, "no journal attached (run with -journal)", http.StatusNotFound)
		return
	}
	events, diag, err := journal.ReadDir(dir)
	if err != nil {
		http.Error(w, fmt.Sprintf("reading journal: %v", err), http.StatusInternalServerError)
		return
	}
	corpus := corpusFromEvents(events)
	title := "pafuzz genealogy"
	if info := r.Info(); info.Banner != "" {
		title += " · " + info.Banner
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(journal.HTMLReport(title, diag.Dir, corpus, events, r.resolver()))
}

// serveCoverage renders the coverage-cartography page through the
// renderer registered via SetCoveragePage, feeding it the on-disk
// journal's events (the same atomic snapshot/flush path /genealogy
// reads). Display-only by construction: the handler touches files and
// the offline reverse index, never the fuzz goroutine's state.
func (r *Recorder) serveCoverage(w http.ResponseWriter, _ *http.Request) {
	page := r.coverage()
	if page == nil {
		http.Error(w, "no coverage cartography attached (subject campaigns register it automatically)", http.StatusNotFound)
		return
	}
	dir := r.JournalDir()
	if dir == "" {
		http.Error(w, "no journal attached (run with -journal)", http.StatusNotFound)
		return
	}
	events, _, err := journal.ReadDir(dir)
	if err != nil {
		http.Error(w, fmt.Sprintf("reading journal: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := page(w, events); err != nil {
		http.Error(w, fmt.Sprintf("rendering coverage: %v", err), http.StatusInternalServerError)
	}
}

// corpusFromEvents reconstructs corpus provenance from the journal's
// novelty events — the live-dashboard path, where the queue itself is
// owned by the fuzz goroutine and cannot be read safely.
func corpusFromEvents(events []journal.Event) []journal.CorpusMeta {
	var out []journal.CorpusMeta
	for _, ev := range events {
		if ev.Kind != journal.KindNovelty || ev.Entry == nil {
			continue
		}
		m := journal.CorpusMeta{
			Worker:     ev.Worker,
			ID:         *ev.Entry,
			Parent:     -1,
			Stage:      ev.Stage,
			Depth:      ev.Depth,
			Steps:      ev.Steps,
			FoundAt:    ev.Execs,
			Len:        ev.Len,
			CovCount:   ev.Cov,
			FirstCells: ev.Cells,
		}
		if ev.Parent != nil {
			m.Parent = *ev.Parent
		}
		out = append(out, m)
	}
	return out
}

// promMetric is one exposition entry.
type promMetric struct {
	name, help, typ string
	value           float64
}

// promMetrics flattens the latest snapshot into the exposition set.
func (r *Recorder) promMetrics() []promMetric {
	s := r.Latest()
	if s == nil {
		s = &Snapshot{}
	}
	p, _ := r.LastPoint()
	c := func(name, help string, v int64) promMetric {
		return promMetric{name: name, help: help, typ: "counter", value: float64(v)}
	}
	g := func(name, help string, v float64) promMetric {
		return promMetric{name: name, help: help, typ: "gauge", value: v}
	}
	return []promMetric{
		c("pafuzz_execs_total", "Total target executions.", s.Execs),
		c("pafuzz_timeouts_total", "Executions ended by the step limit.", s.Timeouts),
		c("pafuzz_crash_execs_total", "Executions that crashed.", s.CrashExecs),
		c("pafuzz_steps_total", "Total interpreter/bytecode steps.", s.TotalSteps),
		c("pafuzz_queue_added_total", "Queue entries ever added (novelty events).", s.Added),
		c("pafuzz_cycles_total", "Completed queue cycles.", s.Cycles),
		c("pafuzz_unique_crashes_total", "Unique crashes by stack hash.", s.UniqueCrashes),
		c("pafuzz_unique_bugs_total", "Unique ground-truth bugs.", s.UniqueBugs),
		c("pafuzz_internal_faults_total", "Quarantined harness panics.", s.InternalFaults),
		c("pafuzz_stage_execs_total_seed", "Executions spent on seed calibration.", s.SeedExecs),
		c("pafuzz_stage_execs_total_havoc", "Executions spent in havoc mutations.", s.HavocExecs),
		c("pafuzz_stage_execs_total_splice", "Executions spent in splice mutations.", s.SpliceExecs),
		c("pafuzz_stage_execs_total_cmplog", "Executions spent in the cmplog stage.", s.CmplogExecs),
		g("pafuzz_queue_depth", "Current queue size.", float64(s.QueueLen)),
		g("pafuzz_queue_favored", "Favored (set-cover) corpus size.", float64(s.Favored)),
		g("pafuzz_queue_pending", "Queue entries never fuzzed.", float64(s.PendingTotal)),
		g("pafuzz_queue_pending_favored", "Favored entries never fuzzed.", float64(s.PendingFavored)),
		g("pafuzz_queue_max_depth", "Deepest mutation chain in the queue.", float64(s.MaxDepth)),
		g("pafuzz_coverage_count", "Coverage map indices ever touched.", float64(s.CoverageCount)),
		g("pafuzz_coverage_bits", "Consumed virgin map cells.", float64(s.CoverageBits)),
		g("pafuzz_map_density", "Touched fraction of the coverage map.", s.MapDensity()),
		g("pafuzz_execs_per_sec", "Sampled execution rate.", p.ExecsPerSec),
		g("pafuzz_novelty_per_sec", "Sampled novelty (queue-add) rate.", p.NoveltyPerSec),
		g("pafuzz_crashes_per_sec", "Sampled crash rate.", p.CrashesPerSec),
		g("pafuzz_timeouts_per_sec", "Sampled timeout rate.", p.TimeoutsPerSec),
		g("pafuzz_fleet_workers", "Configured fleet worker count (0 for single campaigns).", float64(s.FleetWorkers)),
		g("pafuzz_fleet_active", "Fleet workers currently running or parked at a sync barrier.", float64(s.FleetActive)),
		c("pafuzz_fleet_restarts_total", "Fleet worker restarts (panic or wedge recoveries).", s.FleetRestarts),
		c("pafuzz_fleet_wedges_total", "Watchdog wedge declarations.", s.FleetWedges),
		c("pafuzz_fleet_retired_total", "Workers retired after repeated failures.", s.FleetRetired),
		c("pafuzz_fleet_quarantined_total", "Poison inputs quarantined by the fleet supervisor.", s.FleetQuarantined),
	}
}

func (r *Recorder) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	for _, m := range r.promMetrics() {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", m.name, m.help, m.name, m.typ, m.name, m.value)
	}
	// Per-worker series for fleet campaigns, labeled by worker id.
	if ws := r.Workers(); len(ws) > 0 {
		for _, m := range []struct {
			name, help, typ string
			val             func(Counters) int64
		}{
			{"pafuzz_worker_execs_total", "Per-worker target executions.", "counter", func(c Counters) int64 { return c.Execs }},
			{"pafuzz_worker_queue_depth", "Per-worker queue size.", "gauge", func(c Counters) int64 { return c.QueueLen }},
			{"pafuzz_worker_crash_execs_total", "Per-worker crashing executions.", "counter", func(c Counters) int64 { return c.CrashExecs }},
			{"pafuzz_worker_unique_bugs_total", "Per-worker unique ground-truth bugs.", "counter", func(c Counters) int64 { return c.UniqueBugs }},
		} {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
			for _, w := range ws {
				fmt.Fprintf(&b, "%s{worker=\"%d\"} %d\n", m.name, w.ID, m.val(w.Counters))
			}
		}
	}
	// Stage latency histograms in Prometheus histogram form: le labels
	// are the power-of-two bucket upper bounds in seconds, cumulative.
	for _, agg := range r.StageStats() {
		name := "pafuzz_stage_duration_seconds"
		fmt.Fprintf(&b, "# HELP %s Stage span latency.\n# TYPE %s histogram\n", name, name)
		sort.Slice(agg.Buckets, func(i, j int) bool { return agg.Buckets[i].LowNs < agg.Buckets[j].LowNs })
		cum := int64(0)
		for _, bk := range agg.Buckets {
			cum += bk.Count
			le := float64(2*bk.LowNs) / 1e9
			if bk.LowNs == 0 {
				le = 2.0 / 1e9
			}
			fmt.Fprintf(&b, "%s_bucket{stage=%q,le=%q} %d\n", name, agg.Stage, formatLE(le), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", name, agg.Stage, agg.Count)
		fmt.Fprintf(&b, "%s_sum{stage=%q} %g\n", name, agg.Stage, float64(agg.TotalNs)/1e9)
		fmt.Fprintf(&b, "%s_count{stage=%q} %d\n", name, agg.Stage, agg.Count)
	}
	fmt.Fprint(w, b.String())
}

func formatLE(v float64) string { return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0") }

// JSONSnapshot is the /snapshot.json document.
type JSONSnapshot struct {
	Info     Info       `json:"info"`
	Elapsed  int64      `json:"elapsed_ns"`
	Snapshot *Snapshot  `json:"counters,omitempty"`
	Latest   *Point     `json:"latest,omitempty"`
	Series   []Point    `json:"series"`
	Stages   []StageAgg `json:"stages"`
}

// snapshotJSON assembles the full JSON document.
func (r *Recorder) snapshotJSON() JSONSnapshot {
	doc := JSONSnapshot{
		Info:    r.Info(),
		Elapsed: int64(r.Elapsed()),
		Series:  r.Points(),
		Stages:  r.StageStats(),
	}
	doc.Snapshot = r.Latest()
	if p, ok := r.LastPoint(); ok {
		doc.Latest = &p
	}
	return doc
}

func (r *Recorder) serveJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.snapshotJSON())
}

func (r *Recorder) serveDashboard(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardHTML)
}

// dashboardHTML is the self-contained live dashboard: it polls
// /snapshot.json once a second and renders headline numbers plus an
// execs/sec + coverage sparkline on a canvas. No external assets.
const dashboardHTML = `<!doctype html>
<html><head><meta charset="utf-8"><title>pafuzz live</title>
<style>
body{font:14px/1.5 system-ui,sans-serif;background:#14161a;color:#e6e6e6;margin:2rem}
h1{font-size:1.1rem;font-weight:600}h1 small{color:#8a8f98;font-weight:400}
.grid{display:grid;grid-template-columns:repeat(auto-fill,minmax(160px,1fr));gap:10px;margin:1rem 0}
.card{background:#1d2026;border:1px solid #2a2e36;border-radius:8px;padding:10px 12px}
.card .k{color:#8a8f98;font-size:11px;text-transform:uppercase;letter-spacing:.05em}
.card .v{font-size:20px;font-variant-numeric:tabular-nums;margin-top:2px}
canvas{width:100%;height:140px;background:#1d2026;border:1px solid #2a2e36;border-radius:8px}
table{border-collapse:collapse;margin-top:1rem;font-variant-numeric:tabular-nums}
td,th{padding:3px 12px;text-align:right;border-bottom:1px solid #2a2e36}
th{color:#8a8f98;font-weight:500}td:first-child,th:first-child{text-align:left}
</style></head><body>
<h1>pafuzz <small id="banner"></small>
<small><a href="genealogy" style="color:#8a8f98">genealogy</a> · <a href="coverage" style="color:#8a8f98">coverage</a></small></h1>
<div class="grid" id="cards"></div>
<canvas id="spark" width="900" height="140"></canvas>
<table id="stages"><thead><tr><th>stage</th><th>count</th><th>total</th><th>mean</th><th>max</th></tr></thead><tbody></tbody></table>
<script>
const fmt=n=>n>=1e9?(n/1e9).toFixed(2)+"G":n>=1e6?(n/1e6).toFixed(2)+"M":n>=1e3?(n/1e3).toFixed(1)+"k":(+n).toFixed(n%1?2:0);
const ms=ns=>ns>=1e9?(ns/1e9).toFixed(2)+"s":ns>=1e6?(ns/1e6).toFixed(1)+"ms":(ns/1e3).toFixed(0)+"µs";
async function tick(){
 try{
  const d=await (await fetch("snapshot.json")).json();
  const c=d.counters||{},p=d.latest||{};
  document.getElementById("banner").textContent=(d.info.Banner||"")+" · "+(d.info.Engine||"")+" · "+(d.info.Feedback||"");
  const cards=[["execs",fmt(c.Execs||0)],["execs/s",fmt(p.execs_per_sec||0)],
   ["queue",fmt(c.QueueLen||0)],["favored",fmt(c.Favored||0)],
   ["coverage",fmt(c.CoverageCount||0)],["map density",((p.map_density||0)*100).toFixed(2)+"%"],
   ["bugs",fmt(c.UniqueBugs||0)],["crashes",fmt(c.CrashExecs||0)],
   ["timeouts",fmt(c.Timeouts||0)],["novelty/s",fmt(p.novelty_per_sec||0)],
   ["cycles",fmt(c.Cycles||0)],["max depth",fmt(c.MaxDepth||0)]];
  document.getElementById("cards").innerHTML=cards.map(([k,v])=>
   '<div class="card"><div class="k">'+k+'</div><div class="v">'+v+"</div></div>").join("");
  const tb=document.querySelector("#stages tbody");
  tb.innerHTML=(d.stages||[]).map(s=>"<tr><td>"+s.stage+"</td><td>"+fmt(s.count)+"</td><td>"+
   ms(s.total_ns)+"</td><td>"+ms(s.total_ns/Math.max(1,s.count))+"</td><td>"+ms(s.max_ns)+"</td></tr>").join("");
  draw(d.series||[]);
 }catch(e){}
 setTimeout(tick,1000);
}
function draw(S){
 const cv=document.getElementById("spark"),g=cv.getContext("2d");
 g.clearRect(0,0,cv.width,cv.height);
 if(S.length<2)return;
 const plot=(key,color,h0,h1)=>{
  const vs=S.map(s=>s[key]||0),max=Math.max(...vs,1e-9);
  g.strokeStyle=color;g.lineWidth=1.5;g.beginPath();
  vs.forEach((v,i)=>{const x=i/(S.length-1)*(cv.width-8)+4,y=h1-(v/max)*(h1-h0);
   i?g.lineTo(x,y):g.moveTo(x,y)});
  g.stroke();
 };
 plot("execs_per_sec","#5ab0f6",8,66);
 plot("coverage_count","#7bd88f",78,134);
}
tick();
</script></body></html>
`
