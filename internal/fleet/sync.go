// The fleet boundary hook: heartbeat, chaos injection, stale-attempt
// abandonment, and the deterministic corpus-sync barrier. Runs on each
// worker's own goroutine at every queue-entry boundary, before the
// campaign runner's checkpoint logic (campaign.Config.Boundary), which
// yields the ordering invariant the resume derivations rest on: a
// checkpoint at execs X implies every sync epoch up to floor(X /
// SyncEvery) has completed — publication persisted, imports applied —
// because crossing an epoch boundary always syncs before the runner
// gets a chance to checkpoint.
package fleet

import (
	"fmt"
	"time"

	"repro/internal/fuzz"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// syncState is one attempt's local sync bookkeeping, derived on resume
// (never persisted in the worker checkpoint):
//
//	lastSynced = floor(checkpointExecs / SyncEvery)
//	pubIndex   = publication watermark of epoch lastSynced (or the
//	             seeded queue length before any sync)
type syncState struct {
	lastSynced int
	pubIndex   int
}

// boundary is the fleet's campaign.Config.Boundary hook for one worker
// attempt. Returning false abandons the attempt without a checkpoint.
func (s *Supervisor) boundary(w *worker, gen int, st *syncState, f *fuzz.Fuzzer) bool {
	// Heartbeat for the watchdog, and the poison-input stash the
	// watchdog quarantines if this boundary never returns.
	w.beat.Store(time.Now().UnixNano())
	w.beatExecs.Store(f.Execs())
	if in := f.CurrentInput(); in != nil {
		w.curInput.Store(&in)
	}

	if chaos := s.opts.Chaos; chaos != nil {
		switch chaos(w.id, gen, f.Execs()) {
		case ChaosPanic:
			panic(fmt.Sprintf("fleet: injected worker panic (worker %d gen %d at %d execs)", w.id, gen, f.Execs()))
		case ChaosWedge:
			s.wedgeBlock(w, gen)
		}
	}

	return s.syncPoint(w, gen, st, f)
}

// wedgeBlock simulates a hung worker: it blocks until the watchdog
// abandons this generation (or the fleet stops). On return the caller
// proceeds to syncPoint, whose stale-generation check ends the attempt.
func (s *Supervisor) wedgeBlock(w *worker, gen int) {
	s.mu.Lock()
	if w.gen != gen {
		s.mu.Unlock()
		return
	}
	abandon := w.abandon
	s.mu.Unlock()
	select {
	case <-abandon:
	case <-s.stopCh:
	}
}

// syncPoint applies the stale-generation and stop checks, then runs as
// many sync epochs as the worker has crossed. The loop matters:
// imports consume executions (AddSeed executes each imported input, by
// design — import cost is part of the deterministic exec budget), so a
// large import can push the counter across the next epoch boundary,
// which must sync too before the runner may checkpoint.
func (s *Supervisor) syncPoint(w *worker, gen int, st *syncState, f *fuzz.Fuzzer) bool {
	S := s.opts.SyncEvery
	for {
		s.mu.Lock()
		if w.gen != gen {
			// Abandoned: a replacement generation owns the state dir; do
			// not checkpoint over it.
			s.mu.Unlock()
			return false
		}
		if s.stopping {
			// Safe to let the runner write the shutdown checkpoint only
			// when no sync is pending — a checkpoint past an unsynced
			// epoch boundary would violate the resume derivation.
			pending := S > 0 && int(f.Execs()/S) > st.lastSynced
			s.mu.Unlock()
			return !pending
		}
		if S <= 0 {
			s.mu.Unlock()
			if execs := f.Execs(); execs-w.lastTelem.Load() >= 1000 {
				w.lastTelem.Store(execs)
				s.publishWorkerTelemetry(w, f)
			}
			return true
		}
		e := int(f.Execs() / S)
		if e <= st.lastSynced {
			s.mu.Unlock()
			// Telemetry at a paced cadence, not every boundary — the
			// aggregate publish takes the supervisor lock.
			if execs := f.Execs(); execs-w.lastTelem.Load() >= 1000 {
				w.lastTelem.Store(execs)
				s.publishWorkerTelemetry(w, f)
			}
			return true
		}

		// Publish the entries added since the previous sync. A replaying
		// attempt finds its (deterministic, identical) publication already
		// on the board and reuses it.
		pub := s.board.get(w.id, e)
		if pub == nil {
			pub = s.board.add(w.id, e, f.QueueInputsFrom(st.pubIndex))
			if err := s.persistManifestLocked(); err != nil {
				// Durability degrades (a crash now could forget this pub);
				// the sync itself proceeds — in-memory state is consistent.
				s.logf("fleet: manifest at worker %d epoch %d: %v", w.id, e, err)
			}
		}
		if e > w.arrived {
			w.arrived = e
		}
		s.cond.Broadcast()

		// Park until every live worker has arrived at (or passed) this
		// epoch. Parked workers are watchdog-exempt: waiting on a slow
		// peer is not a wedge.
		w.parked.Store(true)
		for !s.releasedLocked(e) && !s.stopping && w.gen == gen {
			s.cond.Wait()
		}
		w.parked.Store(false)
		if w.gen != gen {
			s.mu.Unlock()
			return false
		}
		if s.stopping {
			// Imports not applied; abandon to the last checkpoint, which
			// predates this epoch and will replay the sync on resume.
			s.mu.Unlock()
			return false
		}
		imports := s.board.imports(w.id, st.lastSynced, e)
		s.mu.Unlock()

		// Import and re-calibrate outside the lock: AddSeed executes each
		// input, dedups by novelty, and enqueues only what this worker's
		// corpus lacks.
		for _, in := range imports {
			w.beat.Store(time.Now().UnixNano())
			f.AddSeed(in)
		}

		s.mu.Lock()
		st.lastSynced = e
		st.pubIndex = f.QueueLen()
		pub.QLen = st.pubIndex
		err := s.persistManifestLocked()
		s.emit(journal.Event{
			Kind: journal.KindSync, Worker: w.id, Gen: gen,
			Execs: f.Execs(), Epoch: e,
			Published: len(pub.Inputs), Imported: len(imports),
		})
		s.mu.Unlock()
		if err != nil {
			s.logf("fleet: manifest after worker %d sync %d: %v", w.id, e, err)
		}
		// Loop: imports may have crossed the next epoch boundary.
	}
}

// releasedLocked reports whether the barrier at epoch e is open: every
// worker has either arrived at (or passed) e, or permanently left the
// sync protocol (done before reaching e, or retired). Workers mid-
// restart hold the barrier — their replay arrives deterministically.
func (s *Supervisor) releasedLocked(e int) bool {
	for _, w := range s.workers {
		if w.arrived >= e {
			continue
		}
		if w.state == stDone || w.state == stRetired || w.state == stStopped {
			continue
		}
		return false
	}
	return true
}

// publishWorkerTelemetry pushes this worker's counters and a fleet
// aggregate to the recorder. Observation only, at sync-point cadence.
func (s *Supervisor) publishWorkerTelemetry(w *worker, f *fuzz.Fuzzer) {
	rec := s.opts.Telemetry
	if rec == nil {
		return
	}
	st := f.StatsSnapshot()
	rec.PublishWorker(w.id, telemetry.Counters{
		Execs:            st.Execs,
		Timeouts:         st.Timeouts,
		CrashExecs:       st.CrashExecs,
		TotalSteps:       st.TotalSteps,
		Cycles:           int64(st.Cycles),
		Added:            st.Added,
		UniqueCrashes:    int64(f.UniqueCrashes()),
		UniqueBugs:       int64(f.UniqueBugs()),
		AFLUniqueCrashes: st.AFLUniqueCrashes,
		InternalFaults:   st.InternalFaults,
		QueueLen:         int64(f.QueueLen()),
		SeedExecs:        st.SeedExecs,
		HavocExecs:       st.HavocExecs,
		SpliceExecs:      st.SpliceExecs,
		CmplogExecs:      st.CmplogExecs,
	})
	s.mu.Lock()
	s.publishAggregateLocked()
	s.mu.Unlock()
}

// publishAggregateLocked publishes the fleet-wide snapshot: summed
// worker counters plus the supervision counters.
func (s *Supervisor) publishAggregateLocked() {
	rec := s.opts.Telemetry
	if rec == nil {
		return
	}
	agg := rec.AggregateWorkers()
	agg.FleetWorkers = int64(len(s.workers))
	var active, retired int64
	for _, w := range s.workers {
		switch w.state {
		case stRunning, stBackoff:
			active++
		case stRetired:
			retired++
		}
	}
	agg.FleetActive = active
	agg.FleetRetired = retired
	agg.FleetRestarts = int64(s.restarts)
	agg.FleetWedges = int64(s.wedges)
	agg.FleetQuarantined = int64(len(s.quar))
	rec.Publish(agg)
}
