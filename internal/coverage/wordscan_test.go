package coverage

import (
	"bytes"
	"math/rand"
	"testing"
)

// Scalar reference implementations of the word-at-a-time scans. The
// randomized tests below pin the optimized versions to these.

func classifyRef(bits []uint8) {
	for i, b := range bits {
		if b != 0 {
			bits[i] = bucketLUT[b]
		}
	}
}

func mergeRef(virgin, classified []uint8) Novelty {
	ret := NoNew
	for i, c := range classified {
		if c == 0 {
			continue
		}
		vb := virgin[i]
		if vb&c != 0 {
			if vb == 0xff {
				ret = NewTuples
			} else if ret < NewCounts {
				ret = NewCounts
			}
			virgin[i] = vb &^ c
		}
	}
	return ret
}

func peekRef(virgin, classified []uint8) Novelty {
	ret := NoNew
	for i, c := range classified {
		if c == 0 {
			continue
		}
		vb := virgin[i]
		if vb&c != 0 {
			if vb == 0xff {
				return NewTuples
			}
			ret = NewCounts
		}
	}
	return ret
}

// fillMap populates bits with a sparsity profile resembling real
// traces: mostly zero, occasional runs of counts, a few saturated and
// word-boundary-straddling entries.
func fillMap(rng *rand.Rand, bits []uint8) {
	for i := range bits {
		bits[i] = 0
	}
	touched := rng.Intn(len(bits)/4 + 1)
	for t := 0; t < touched; t++ {
		i := rng.Intn(len(bits))
		switch rng.Intn(4) {
		case 0:
			bits[i] = uint8(1 + rng.Intn(255))
		case 1:
			bits[i] = uint8(1 << rng.Intn(8))
		case 2:
			bits[i] = 255
		case 3: // short run crossing word boundaries
			for j := i; j < len(bits) && j < i+3+rng.Intn(12); j++ {
				bits[j] = uint8(1 + rng.Intn(255))
			}
		}
	}
}

func TestClassifyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 7, 8, 9, 63, 64, 100, 1 << 12, 1 << 16} {
		for trial := 0; trial < 25; trial++ {
			a := make([]uint8, size)
			fillMap(rng, a)
			b := append([]uint8(nil), a...)
			Classify(a)
			classifyRef(b)
			if !bytes.Equal(a, b) {
				t.Fatalf("size %d trial %d: word classify diverges from scalar", size, trial)
			}
		}
	}
}

func TestClassifyExhaustiveBytes(t *testing.T) {
	// Every count value in every lane of a word.
	for lane := 0; lane < 8; lane++ {
		for c := 0; c < 256; c++ {
			a := make([]uint8, 16)
			a[lane] = uint8(c)
			b := append([]uint8(nil), a...)
			Classify(a)
			classifyRef(b)
			if !bytes.Equal(a, b) {
				t.Fatalf("lane %d count %d: got %v want %v", lane, c, a[lane], b[lane])
			}
		}
	}
}

func TestMergeMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, size := range []int{8, 64, 1 << 10, 1 << 16} {
		v := NewVirgin(size)
		ref := make([]uint8, size)
		for i := range ref {
			ref[i] = 0xff
		}
		trace := make([]uint8, size)
		// Repeated merges against the SAME evolving virgin state: later
		// rounds exercise the partially-consumed (NewCounts) paths.
		for trial := 0; trial < 60; trial++ {
			fillMap(rng, trace)
			Classify(trace)
			got := v.Merge(trace)
			want := mergeRef(ref, trace)
			if got != want {
				t.Fatalf("size %d trial %d: novelty %v want %v", size, trial, got, want)
			}
			if !bytes.Equal(v.bits, ref) {
				t.Fatalf("size %d trial %d: virgin state diverges from scalar", size, trial)
			}
		}
	}
}

func TestPeekMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, size := range []int{8, 64, 1 << 10, 1 << 14} {
		v := NewVirgin(size)
		ref := make([]uint8, size)
		for i := range ref {
			ref[i] = 0xff
		}
		trace := make([]uint8, size)
		for trial := 0; trial < 60; trial++ {
			fillMap(rng, trace)
			Classify(trace)
			if got, want := v.Peek(trace), peekRef(ref, trace); got != want {
				t.Fatalf("size %d trial %d: peek %v want %v", size, trial, got, want)
			}
			before := append([]uint8(nil), v.bits...)
			v.Peek(trace)
			if !bytes.Equal(before, v.bits) {
				t.Fatalf("size %d trial %d: Peek mutated the virgin map", size, trial)
			}
			// Consume some state so later peeks see partial virginity.
			if trial%3 == 0 {
				v.Merge(trace)
				mergeRef(ref, trace)
			}
		}
	}
}

func TestBucketLUT16Consistent(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		want := uint16(bucketLUT[i&0xff]) | uint16(bucketLUT[i>>8])<<8
		if bucketLUT16[i] != want {
			t.Fatalf("bucketLUT16[%#x] = %#x, want %#x", i, bucketLUT16[i], want)
		}
	}
}
