package campaign

import "errors"

// ErrInjected is the error returned by every fault FaultFS injects, so
// tests can distinguish injected failures from real ones.
var ErrInjected = errors.New("campaign: injected filesystem fault")

// FaultFS wraps an FS and injects deterministic failures. All counters
// are plain state mutated in order of the operations performed, so a
// given campaign + fault plan always fails at exactly the same point —
// the property the recovery tests need to be reproducible.
//
// The zero value with only Inner set injects nothing.
type FaultFS struct {
	Inner FS

	// WriteBudget, when >= 0, is the total number of bytes subsequent
	// Write calls may produce across all files; the write that would
	// cross it is short (the allowed prefix is written) and returns
	// ErrInjected. -1 disables the limit.
	WriteBudget int64
	// FailCreates / FailSyncs / FailRenames fail the next N calls of
	// the corresponding operation (decrementing per failure).
	FailCreates int
	FailSyncs   int
	FailRenames int

	// Op counters, for assertions.
	Creates, Renames, Removes int
}

// NewFaultFS returns a FaultFS over inner with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{Inner: inner, WriteBudget: -1}
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.Inner.MkdirAll(dir) }

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	f.Creates++
	if f.FailCreates > 0 {
		f.FailCreates--
		return nil, ErrInjected
	}
	file, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, file: file}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	f.Renames++
	if f.FailRenames > 0 {
		f.FailRenames--
		return ErrInjected
	}
	return f.Inner.Rename(oldname, newname)
}

// ReadFile implements FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.Inner.ReadFile(name) }

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.Inner.ReadDir(dir) }

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	f.Removes++
	return f.Inner.Remove(name)
}

// faultFile charges writes against the shared budget and injects sync
// failures.
type faultFile struct {
	fs   *FaultFS
	file File
}

func (w *faultFile) Write(p []byte) (int, error) {
	if w.fs.WriteBudget < 0 {
		return w.file.Write(p)
	}
	if int64(len(p)) <= w.fs.WriteBudget {
		w.fs.WriteBudget -= int64(len(p))
		return w.file.Write(p)
	}
	// Short write: emit the allowed prefix, then fail. The budget stays
	// at zero so every later write fails too, modeling a full disk.
	allowed := int(w.fs.WriteBudget)
	w.fs.WriteBudget = 0
	if allowed > 0 {
		if n, err := w.file.Write(p[:allowed]); err != nil {
			return n, err
		}
	}
	return allowed, ErrInjected
}

func (w *faultFile) Sync() error {
	if w.fs.FailSyncs > 0 {
		w.fs.FailSyncs--
		return ErrInjected
	}
	return w.file.Sync()
}

func (w *faultFile) Close() error { return w.file.Close() }
