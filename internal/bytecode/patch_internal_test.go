package bytecode

import (
	"strings"
	"testing"

	"repro/internal/coverage"
)

// tamperProg builds a minimal hand-rolled program containing all three
// patchable shapes plus a dynamic probe that must never be touched.
func tamperProg() *Program {
	return &Program{
		code: []instr{
			{op: opProbeAdd, imm: 5},
			{op: opStepChk},
			{op: opAddJmp, a: 3, imm: 9},
			{op: opStepAddJmp, a: 4, imm: 5},
			{op: opProbePAFlush},
			{op: opStepRet, a: -1},
		},
	}
}

func TestPatchableSiteScan(t *testing.T) {
	pp := NewPatchable(tamperProg(), 8)
	if pp.NumSites() != 3 {
		t.Fatalf("NumSites = %d, want 3", pp.NumSites())
	}
	// imm 9 masked into an 8-cell map is cell 1; imm 5 stays 5.
	want := []patchSite{
		{pc: 0, cell: 5, slow: opProbeAdd, fast: opElide},
		{pc: 2, cell: 1, slow: opAddJmp, fast: opJmp},
		{pc: 3, cell: 5, slow: opStepAddJmp, fast: opStepJmp},
	}
	for i, s := range pp.sites {
		if s != want[i] {
			t.Fatalf("site %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestPatchableReplanRewrites(t *testing.T) {
	pp := NewPatchable(tamperProg(), 8)
	bs := coverage.NewBitset(8)
	bs.Set(5)
	if n := pp.Replan(bs); n != 2 {
		t.Fatalf("Replan elided %d sites, want 2 (both cell-5 sites)", n)
	}
	code := pp.patched.code
	if code[0].op != opElide || code[3].op != opStepJmp || code[2].op != opAddJmp {
		t.Fatalf("wrong opcodes after replan: %d %d %d", code[0].op, code[2].op, code[3].op)
	}
	if err := pp.Verify(); err != nil {
		t.Fatal(err)
	}
	// Operands must be untouched so jump targets survive patching.
	if code[3].a != 4 || code[3].imm != 5 {
		t.Fatalf("patching disturbed operands: %+v", code[3])
	}
	// Shrinking the mask restores the pristine opcodes.
	bs.Clear()
	if n := pp.Replan(bs); n != 0 {
		t.Fatalf("empty replan left %d elided", n)
	}
	for i := range code {
		if code[i] != pp.pristine.code[i] {
			t.Fatalf("pc %d not restored: %+v vs %+v", i, code[i], pp.pristine.code[i])
		}
	}
}

func TestPatchableVerifyCatchesTampering(t *testing.T) {
	// Patching a non-site instruction is caught.
	pp := NewPatchable(tamperProg(), 8)
	pp.patched.code[4].op = opElide
	if err := pp.Verify(); err == nil || !strings.Contains(err.Error(), "not a probe site") {
		t.Fatalf("tampered non-site not caught: %v", err)
	}

	// Patching a site to the wrong fast variant is caught.
	pp = NewPatchable(tamperProg(), 8)
	pp.patched.code[0].op = opJmp
	if err := pp.Verify(); err == nil || !strings.Contains(err.Error(), "patched to opcode") {
		t.Fatalf("wrong fast variant not caught: %v", err)
	}

	// Disturbing operands beyond what the plan's threading dictates is
	// caught: elide the trampoline site legitimately, then bend its
	// jump target off-plan.
	pp = NewPatchable(tamperProg(), 8)
	bs := coverage.NewBitset(8)
	bs.Set(1)
	if n := pp.Replan(bs); n != 1 {
		t.Fatalf("Replan elided %d sites, want 1", n)
	}
	pp.patched.code[2].a = 1
	if err := pp.Verify(); err == nil || !strings.Contains(err.Error(), "operands") {
		t.Fatalf("operand change not caught: %v", err)
	}
}

// threadProg builds a branch whose then-edge goes through a probe
// trampoline and whose else-edge falls through a standalone probe —
// the two shapes jump threading must forward past once elided.
func threadProg() *Program {
	return &Program{
		code: []instr{
			{op: opStepBr, a: 0, b: 1, dst: 3},
			{op: opAddJmp, imm: 9, a: 5}, // then-edge trampoline -> 5
			{op: opJmp, a: 5},            // pristine jump: never threaded over
			{op: opProbeAdd, imm: 5},     // else-edge inline probe
			{op: opStepChk},
			{op: opStepRet, a: -1},
		},
	}
}

func TestPatchableJumpThreading(t *testing.T) {
	pp := NewPatchable(threadProg(), 8)
	bs := coverage.NewBitset(8)
	bs.Set(1) // imm 9 & 7
	bs.Set(5)
	if n := pp.Replan(bs); n != 2 {
		t.Fatalf("Replan elided %d sites, want 2", n)
	}
	code := pp.patched.code
	// The branch now bypasses the elided trampoline (b: 1 -> 5) and the
	// elided standalone probe (dst: 3 -> 4).
	if code[0].b != 5 || code[0].dst != 4 {
		t.Fatalf("branch targets not threaded: b=%d dst=%d, want 5, 4", code[0].b, code[0].dst)
	}
	// The pristine opJmp at pc 2 keeps its target: threading forwards
	// past elided code only.
	if code[2] != pp.pristine.code[2] {
		t.Fatalf("pristine jump disturbed: %+v", code[2])
	}
	if err := pp.Verify(); err != nil {
		t.Fatal(err)
	}
	// An empty plan restores byte-identical pristine code, targets
	// included.
	bs.Clear()
	if n := pp.Replan(bs); n != 0 {
		t.Fatalf("empty replan left %d elided", n)
	}
	for i := range code {
		if code[i] != pp.pristine.code[i] {
			t.Fatalf("pc %d not restored: %+v vs %+v", i, code[i], pp.pristine.code[i])
		}
	}
	if err := pp.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPatchableRejectsBadMapSize(t *testing.T) {
	for _, n := range []int{0, -4, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPatchable(mapSize=%d) did not panic", n)
				}
			}()
			NewPatchable(tamperProg(), n)
		}()
	}
}
