package fleet_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/fuzz"
)

// startFleet is runFleet with caller-chosen fuzzer options, for tests
// that run the fleet on a non-default execution engine.
func startFleet(t *testing.T, dir string, opts fleet.Options, fopts fuzz.Options) *fleet.Result {
	t.Helper()
	s := fleet.New(dir, opts)
	if err := s.Start(compileT(t), fopts, testMeta(), testSeeds); err != nil {
		t.Fatalf("fleet start: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	return res
}

// TestCGTFleetChaosByteIdentity stacks every determinism layer at once:
// a 1-worker fleet on the self-patching CGT engine, with an injected
// worker panic forcing a checkpoint restore (and hence a patch replan
// from the restored virgin map), must merge to a report byte-identical
// to a plain EngineBytecode fuzzer run with no fleet and no chaos.
func TestCGTFleetChaosByteIdentity(t *testing.T) {
	fopts := testOpts()
	fopts.Engine = fuzz.EngineBytecode
	f, err := fuzz.New(compileT(t), fopts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range testSeeds {
		f.AddSeed(s)
	}
	f.Fuzz(testBudget)
	rep := f.Report()
	if len(rep.Bugs) == 0 {
		t.Fatalf("bytecode baseline found no bugs in %d execs", rep.Stats.Execs)
	}
	want := canonical(t, rep)

	cgtOpts := testOpts()
	cgtOpts.Engine = fuzz.EngineCGT
	opts := fleetOpts(1)
	opts.Watchdog = 250 * time.Millisecond
	// Generation-keyed: the panic fires once on the first attempt and
	// never on the replay, so the restarted worker re-runs the lost
	// generation clean from its checkpoint.
	opts.Chaos = func(worker, gen int, execs int64) fleet.ChaosAction {
		if gen == 0 && execs >= 3000 {
			return fleet.ChaosPanic
		}
		return fleet.ChaosNone
	}
	res := startFleet(t, t.TempDir(), opts, cgtOpts)
	if res.Interrupted {
		t.Fatal("cgt chaos fleet interrupted")
	}
	if res.Restarts < 1 {
		t.Fatalf("restarts = %d, want >= 1 (the injected panic)", res.Restarts)
	}
	var sawPanic bool
	for _, p := range res.Quarantined {
		if strings.Contains(p.Msg, "injected worker panic") {
			sawPanic = true
		}
	}
	if !sawPanic {
		t.Fatalf("injected panic not quarantined: %+v", res.Quarantined)
	}
	if got := canonical(t, res.Merged); !bytes.Equal(got, want) {
		t.Fatalf("cgt chaos fleet differs from clean bytecode fuzzer (%d vs %d canonical bytes)", len(got), len(want))
	}
}
