// Command pafuzz fuzzes a MiniC program (a benchmark subject or a .mc
// source file) with a chosen feedback/strategy configuration — the
// afl-fuzz analogue of this reproduction.
//
// Usage:
//
//	pafuzz -subject flvmeta -fuzzer cull -budget 200000
//	pafuzz -src prog.mc -fuzzer path -seed-input seeds.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/strategy"
	"repro/internal/subjects"
)

func main() {
	var (
		subjectName = flag.String("subject", "", "benchmark subject to fuzz (see -list)")
		srcPath     = flag.String("src", "", "MiniC source file to fuzz instead of a subject")
		fuzzerName  = flag.String("fuzzer", "path", "configuration: path|pcguard|cull|cull_r|opp|pathafl|afl")
		budget      = flag.Int64("budget", 200000, "execution budget (the wall-clock analogue)")
		roundBudget = flag.Int64("round", 0, "culling round budget (default budget/8)")
		seed        = flag.Int64("seed", 1, "campaign RNG seed")
		list        = flag.Bool("list", false, "list benchmark subjects and exit")
		showCrash   = flag.Bool("crashes", false, "print full reports for unique crashes")
	)
	flag.Parse()

	if *list {
		for _, s := range subjects.All() {
			fmt.Printf("%-10s %-6s %d planted bugs, %d seeds\n", s.Name, s.TypeLabel, len(s.Bugs), len(s.Seeds))
		}
		return
	}

	var (
		target *core.Target
		seeds  [][]byte
		err    error
	)
	switch {
	case *subjectName != "":
		sub := subjects.Get(*subjectName)
		if sub == nil {
			fatalf("unknown subject %q (use -list)", *subjectName)
		}
		prog, perr := sub.Program()
		if perr != nil {
			fatalf("%v", perr)
		}
		target = core.FromProgram(prog)
		seeds = sub.Seeds
	case *srcPath != "":
		src, rerr := os.ReadFile(*srcPath)
		if rerr != nil {
			fatalf("%v", rerr)
		}
		target, err = core.Compile(string(src))
		if err != nil {
			fatalf("compile: %v", err)
		}
		seeds = [][]byte{[]byte("seed")}
	default:
		fatalf("one of -subject or -src is required (or -list)")
	}

	out, err := target.Fuzz(core.Campaign{
		Fuzzer:      strategy.Name(*fuzzerName),
		Budget:      *budget,
		RoundBudget: *roundBudget,
		Seeds:       seeds,
		Seed:        *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}

	rep := out.Report
	fmt.Printf("fuzzer=%s execs=%d queue=%d favored=%d timeouts=%d crashes=%d rounds=%d\n",
		*fuzzerName, rep.Stats.Execs, rep.QueueLen, rep.FavoredLen,
		rep.Stats.Timeouts, rep.Stats.CrashExecs, out.Rounds)
	fmt.Printf("unique crashes (stack hash): %d\n", len(rep.Crashes))
	keys := rep.BugKeys()
	fmt.Printf("unique bugs (ground truth): %d\n", len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		rec := rep.Bugs[k]
		fmt.Printf("  %-40s x%d (first at exec %d)\n", k, rec.Count, rec.FoundAt)
	}
	if *showCrash {
		for _, rec := range rep.Crashes {
			fmt.Printf("\n%s\n  input: %q\n", rec.Crash, rec.Input)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pafuzz: "+format+"\n", args...)
	os.Exit(1)
}
