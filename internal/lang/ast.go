package lang

// Node is implemented by every AST node.
type Node interface {
	// NodePos returns the source position of the node's first token.
	NodePos() Pos
}

// Program is a parsed MiniC compilation unit.
type Program struct {
	Funcs []*FuncDecl
}

// Func returns the declared function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FuncDecl is a function declaration.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []string
	Body   *BlockStmt

	// NumSlots is filled in by semantic analysis: the number of local
	// variable slots (params + vars) the function needs at run time.
	NumSlots int
}

// NodePos implements Node.
func (f *FuncDecl) NodePos() Pos { return f.Pos }

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a braced statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// VarStmt declares a local variable with an optional initialiser
// (defaulting to 0).
type VarStmt struct {
	Pos  Pos
	Name string
	Init Expr // may be nil

	// Slot is assigned by semantic analysis.
	Slot int
}

// AssignStmt assigns to a variable.
type AssignStmt struct {
	Pos  Pos
	Name string
	Val  Expr

	// Slot is assigned by semantic analysis.
	Slot int
}

// StoreStmt assigns to an array element: name[idx] = val.
type StoreStmt struct {
	Pos  Pos
	Name string
	Idx  Expr
	Val  Expr

	// Slot is assigned by semantic analysis.
	Slot int
}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is a pre-test loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is a C-style for loop. Init and Post may be nil; a nil Cond
// means "true".
type ForStmt struct {
	Pos  Pos
	Init Stmt // *VarStmt, *AssignStmt, *StoreStmt, *ExprStmt, or nil
	Cond Expr // may be nil
	Post Stmt // may be nil
	Body *BlockStmt
}

// ReturnStmt returns from the enclosing function, with an optional value
// (defaulting to 0).
type ReturnStmt struct {
	Pos Pos
	Val Expr // may be nil
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// NodePos implementations for statements.
func (s *BlockStmt) NodePos() Pos    { return s.Pos }
func (s *VarStmt) NodePos() Pos      { return s.Pos }
func (s *AssignStmt) NodePos() Pos   { return s.Pos }
func (s *StoreStmt) NodePos() Pos    { return s.Pos }
func (s *IfStmt) NodePos() Pos       { return s.Pos }
func (s *WhileStmt) NodePos() Pos    { return s.Pos }
func (s *ForStmt) NodePos() Pos      { return s.Pos }
func (s *ReturnStmt) NodePos() Pos   { return s.Pos }
func (s *BreakStmt) NodePos() Pos    { return s.Pos }
func (s *ContinueStmt) NodePos() Pos { return s.Pos }
func (s *ExprStmt) NodePos() Pos     { return s.Pos }

func (*BlockStmt) stmtNode()    {}
func (*VarStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*StoreStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer (or character) literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// StrLit is a string literal; it evaluates to a fresh array holding the
// bytes of the string.
type StrLit struct {
	Pos Pos
	Val string
}

// Ident references a variable.
type Ident struct {
	Pos  Pos
	Name string

	// Slot is assigned by semantic analysis.
	Slot int
}

// IndexExpr loads an array element: x[idx].
type IndexExpr struct {
	Pos Pos
	X   Expr
	Idx Expr
}

// CallExpr calls a declared function or builtin.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// UnaryExpr applies a prefix operator: one of MINUS, NOT, TILDE.
type UnaryExpr struct {
	Pos Pos
	Op  Kind
	X   Expr
}

// BinaryExpr applies a binary operator. LAND and LOR short-circuit and
// are lowered to control flow by the CFG builder.
type BinaryExpr struct {
	Pos Pos
	Op  Kind
	X   Expr
	Y   Expr
}

// NodePos implementations for expressions.
func (e *IntLit) NodePos() Pos     { return e.Pos }
func (e *StrLit) NodePos() Pos     { return e.Pos }
func (e *Ident) NodePos() Pos      { return e.Pos }
func (e *IndexExpr) NodePos() Pos  { return e.Pos }
func (e *CallExpr) NodePos() Pos   { return e.Pos }
func (e *UnaryExpr) NodePos() Pos  { return e.Pos }
func (e *BinaryExpr) NodePos() Pos { return e.Pos }

func (*IntLit) exprNode()     {}
func (*StrLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
