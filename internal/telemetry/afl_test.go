package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files under testdata/")

// goldenSnapshot is the fixed campaign state behind the format goldens.
func goldenSnapshot() *Snapshot {
	return &Snapshot{
		Counters: Counters{
			Execs: 12345, Timeouts: 7, CrashExecs: 99, TotalSteps: 4242,
			Cycles: 3, Added: 50, UniqueCrashes: 2, UniqueBugs: 1,
			AFLUniqueCrashes: 5, InternalFaults: 0,
			QueueLen: 40, Favored: 12, PendingTotal: 20, PendingFavored: 2,
			CurItem: 16, MaxDepth: 9,
			CoverageCount: 25, CoverageBits: 30, MapSize: 65536,
			SeedExecs: 10, HavocExecs: 10000, SpliceExecs: 1335, CmplogExecs: 1000,
		},
		Elapsed: 90 * time.Second,
	}
}

func goldenInfo() Info {
	return Info{
		Banner: "flvmeta/path", Engine: "bytecode", Feedback: "path",
		Instrs: 238, Nops: 6, Seed: 1, Budget: 200000, GoVersion: "go1.24.0", PID: 4242,
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestFuzzerStatsGolden(t *testing.T) {
	got := FormatFuzzerStats(goldenSnapshot(), goldenInfo(), 137.25, 1700000000, 1700000090)
	checkGolden(t, "fuzzer_stats.golden", got)
}

func TestPlotRowGolden(t *testing.T) {
	row := FormatPlotRow(goldenSnapshot(), 137.25, 90)
	checkGolden(t, "plot_row.golden", []byte(PlotHeader+"\n"+row+"\n"))
}

// TestPlotRowShape pins the AFL++ column contract independent of the
// golden bytes: 13 comma-separated fields, integer relative time first,
// total execs in column 12.
func TestPlotRowShape(t *testing.T) {
	row := FormatPlotRow(goldenSnapshot(), 137.25, 90)
	fields := strings.Split(row, ", ")
	if len(fields) != 13 {
		t.Fatalf("plot row has %d fields, want 13: %q", len(fields), row)
	}
	if fields[0] != "90" || fields[11] != "12345" {
		t.Errorf("relative_time/total_execs = %s/%s, want 90/12345", fields[0], fields[11])
	}
	if len(strings.Split(PlotHeader, ",")) != 13 {
		t.Error("header column count drifted from 13")
	}
}

// TestAFLOutputFresh verifies a fresh state dir gets one header and
// monotone rows, and fuzzer_stats appears atomically alongside.
func TestAFLOutputFresh(t *testing.T) {
	dir := t.TempDir()
	out, err := OpenAFLOutput(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := goldenSnapshot()
	s.Elapsed = 0
	if err := out.Append(s, Point{ExecsPerSec: 10}, goldenInfo()); err != nil {
		t.Fatal(err)
	}
	s2 := goldenSnapshot()
	s2.Elapsed = 2 * time.Second
	s2.Execs = 20000
	if err := out.Append(s2, Point{ExecsPerSec: 20}, goldenInfo()); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}

	plot := readLines(t, filepath.Join(dir, "plot_data"))
	if len(plot) != 3 || !strings.HasPrefix(plot[0], "#") {
		t.Fatalf("plot_data = %q, want header + 2 rows", plot)
	}
	if !strings.HasPrefix(plot[1], "0, ") || !strings.HasPrefix(plot[2], "2, ") {
		t.Errorf("row times = %q, %q, want 0 and 2", plot[1], plot[2])
	}
	stats, err := os.ReadFile(filepath.Join(dir, "fuzzer_stats"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stats), "execs_done        : 20000") {
		t.Errorf("fuzzer_stats does not reflect the last sample:\n%s", stats)
	}
	if _, err := os.Stat(filepath.Join(dir, "fuzzer_stats.tmp")); !os.IsNotExist(err) {
		t.Error("temp stats file left behind")
	}
}

// TestAFLOutputGaplessResume is the resume contract: reopening a state
// dir appends rows after the old ones — single header, monotone
// relative_time, no gap reset to zero — and a recorder that attaches to
// it adopts the carried base.
func TestAFLOutputGaplessResume(t *testing.T) {
	dir := t.TempDir()

	// First session: rows at 0s and 5s.
	out, err := OpenAFLOutput(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range []int{0, 5} {
		s := goldenSnapshot()
		s.Elapsed = time.Duration(sec) * time.Second
		if err := out.Append(s, Point{}, goldenInfo()); err != nil {
			t.Fatal(err)
		}
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}

	// Second session: a resumed recorder whose own clock restarts at 0.
	clk := newFakeClock()
	r := New(Config{Now: clk.now})
	if err := r.AttachAFLOutput(dir); err != nil {
		t.Fatal(err)
	}
	if r.Elapsed() != 5*time.Second {
		t.Fatalf("resumed recorder base = %v, want 5s (adopted from plot_data)", r.Elapsed())
	}
	clk.advance(2 * time.Second)
	r.Publish(Counters{Execs: 99999})
	if _, ok := r.Sample(); !ok {
		t.Fatal("resumed sample skipped")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	plot := readLines(t, filepath.Join(dir, "plot_data"))
	var rows []string
	headers := 0
	for _, ln := range plot {
		if strings.HasPrefix(ln, "#") {
			headers++
			continue
		}
		rows = append(rows, ln)
	}
	if headers != 1 {
		t.Errorf("plot_data has %d headers, want 1", headers)
	}
	last := int64(-1)
	for _, row := range rows {
		rel, err := strconv.ParseInt(strings.TrimSpace(strings.SplitN(row, ",", 2)[0]), 10, 64)
		if err != nil {
			t.Fatalf("bad row %q: %v", row, err)
		}
		if rel <= last {
			t.Fatalf("relative_time not strictly monotone: %d after %d in %q", rel, last, rows)
		}
		last = rel
	}
	if len(rows) != 3 || last != 7 {
		t.Errorf("rows = %q (last rel %d), want 3 rows ending at 7", rows, last)
	}
}

// TestRelSecClampsStale covers the clamp: a snapshot whose elapsed
// rounds to an already-written second still produces a monotone row.
func TestRelSecClampsStale(t *testing.T) {
	o := &AFLOutput{lastRel: 4, hasRows: true}
	if got := o.RelSec(&Snapshot{Elapsed: 4 * time.Second}); got != 5 {
		t.Errorf("RelSec = %d, want clamp to 5", got)
	}
	if got := o.RelSec(&Snapshot{Elapsed: 9 * time.Second}); got != 9 {
		t.Errorf("RelSec = %d, want 9", got)
	}
}

func TestLastPlotRelMalformed(t *testing.T) {
	dir := t.TempDir()
	if rel, ok := lastPlotRel(filepath.Join(dir, "missing")); ok || rel != 0 {
		t.Error("missing file should yield (0, false)")
	}
	bad := filepath.Join(dir, "plot_data")
	os.WriteFile(bad, []byte("# header only\n\n"), 0o644)
	if rel, ok := lastPlotRel(bad); ok || rel != 0 {
		t.Error("header-only file should yield (0, false)")
	}
	os.WriteFile(bad, []byte("# h\ngarbage, row\n"), 0o644)
	if _, ok := lastPlotRel(bad); ok {
		t.Error("malformed row should yield ok=false")
	}
}

func readLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, ln := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(ln) != "" {
			out = append(out, ln)
		}
	}
	return out
}
