package cfg_test

import (
	"strings"
	"testing"

	"repro/internal/cfg"
)

func TestFuncString(t *testing.T) {
	p := compile(t, `
func main(input) {
    var x = 1;
    if (len(input) > 0) { x = input[0]; } else { x = alloc(4); }
    out(x);
    return x;
}`)
	s := p.Func("main").String()
	for _, want := range []string{"func main", "b0:", "br s", "jmp b", "ret", "builtin#", "= 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("CFG dump missing %q:\n%s", want, s)
		}
	}
}

// TestFuncStringGolden pins the full rendering of a loop: predecessor
// lists and terminator kind on each block header, and the back-edge
// marker on the loop's closing jump.
func TestFuncStringGolden(t *testing.T) {
	p := compile(t, `
func main(input) {
    var i = 0;
    while (i < len(input)) {
        i = i + 1;
    }
    return i;
}`)
	want := `func main #0 params=1 frame=6
  b0: ; preds=[] term=jmp
    s2 = 0
    s1 = s2
    jmp b1
  b1: ; preds=[b0 b2] term=br
    s2 = builtin#0 [0]
    s3 = s1 < s2
    br s3 ? b2 : b3
  b2: ; preds=[b1] term=jmp
    s4 = 1
    s5 = s1 + s4
    s1 = s5
    jmp b1 ; back
  b3: ; preds=[b1] term=ret
    ret s1
`
	if got := p.Func("main").String(); got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   cfg.Instr
		want string
	}{
		{cfg.Instr{Op: cfg.OpConst, Dst: 1, Imm: 42}, "s1 = 42"},
		{cfg.Instr{Op: cfg.OpStr, Dst: 2, Str: "hi"}, `s2 = "hi"`},
		{cfg.Instr{Op: cfg.OpMove, Dst: 3, A: 4}, "s3 = s4"},
		{cfg.Instr{Op: cfg.OpLoad, Dst: 1, A: 2, B: 3}, "s1 = s2[s3]"},
		{cfg.Instr{Op: cfg.OpStore, A: 1, B: 2, C: 3}, "s1[s2] = s3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestRetBlocks(t *testing.T) {
	p := compile(t, `
func main(input) {
    if (len(input) > 0) { return 1; }
    return 2;
}`)
	f := p.Func("main")
	if got := len(f.RetBlocks()); got != 2 {
		t.Errorf("ret blocks = %d, want 2", got)
	}
	for _, b := range f.RetBlocks() {
		if f.Blocks[b].Term.Kind != cfg.TermRet {
			t.Errorf("b%d is not a return block", b)
		}
	}
}

func TestBuiltinLoweringIDs(t *testing.T) {
	p := compile(t, `func main(input) {
        var a = alloc(3);
        assert(len(a) == 3);
        out(abs(min(max(1, 2), 0 - 3)));
        return 0;
    }`)
	seen := map[int]bool{}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == cfg.OpBuiltin {
					seen[in.Callee] = true
				}
			}
		}
	}
	for _, id := range []int{cfg.BAlloc, cfg.BLen, cfg.BAssert, cfg.BOut, cfg.BAbs, cfg.BMin, cfg.BMax} {
		if !seen[id] {
			t.Errorf("builtin id %d not lowered", id)
		}
	}
}
