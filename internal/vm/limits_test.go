package vm_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/vm"
)

// TestCustomLimits exercises each Limits knob independently.
func TestCustomLimits(t *testing.T) {
	p, err := cfg.Compile(`
func spin(n) {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
}
func deep(n) {
    if (n == 0) { return 0; }
    return deep(n - 1);
}
func main(input) {
    if (len(input) < 1) { return 0; }
    if (input[0] == 1) { return spin(100000); }
    if (input[0] == 2) { return deep(40); }
    if (input[0] == 3) { var a = alloc(5000); return len(a); }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}

	tight := vm.DefaultLimits()
	tight.MaxSteps = 1000
	if res := vm.Run(p, "main", []byte{1}, vm.NullTracer{}, tight); res.Status != vm.StatusTimeout {
		t.Errorf("step limit: %v", res.Status)
	}

	shallow := vm.DefaultLimits()
	shallow.MaxDepth = 10
	if res := vm.Run(p, "main", []byte{2}, vm.NullTracer{}, shallow); res.Status != vm.StatusCrash || res.Crash.Kind != vm.KindStackOverflow {
		t.Errorf("depth limit: %v", res.Status)
	}
	roomy := vm.DefaultLimits()
	roomy.MaxDepth = 100
	if res := vm.Run(p, "main", []byte{2}, vm.NullTracer{}, roomy); res.Status != vm.StatusOK {
		t.Errorf("depth 40 under limit 100: %v %v", res.Status, res.Crash)
	}

	smallAlloc := vm.DefaultLimits()
	smallAlloc.MaxAlloc = 1024
	if res := vm.Run(p, "main", []byte{3}, vm.NullTracer{}, smallAlloc); res.Status != vm.StatusCrash || res.Crash.Kind != vm.KindBadAlloc {
		t.Errorf("alloc cap: %v", res.Status)
	}

	smallHeap := vm.DefaultLimits()
	smallHeap.MaxHeapCells = 4096
	if res := vm.Run(p, "main", []byte{3}, vm.NullTracer{}, smallHeap); res.Status != vm.StatusCrash || res.Crash.Kind != vm.KindOOM {
		t.Errorf("heap cap: %v", res.Status)
	}
}

// TestCmpObsCap: comparison capture respects MaxCmpObs.
func TestCmpObsCap(t *testing.T) {
	p, err := cfg.Compile(`
func main(input) {
    var s = 0;
    for (var i = 0; i < 100; i = i + 1) {
        if (i == 55) { s = s + 1; }
    }
    return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	lim := vm.DefaultLimits()
	lim.MaxCmpObs = 10
	res := vm.Run(p, "main", nil, vm.NullTracer{}, lim)
	if len(res.Cmps) > 10 {
		t.Errorf("captured %d comparisons, cap 10", len(res.Cmps))
	}
	if len(res.Cmps) == 0 {
		t.Error("no comparisons captured")
	}
}

// TestOutputCap: the out() log is bounded.
func TestOutputCap(t *testing.T) {
	p, err := cfg.Compile(`
func main(input) {
    for (var i = 0; i < 10000; i = i + 1) { out(i); }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	res := vm.Run(p, "main", nil, vm.NullTracer{}, vm.DefaultLimits())
	if len(res.Output) > 4096 {
		t.Errorf("output log grew to %d entries", len(res.Output))
	}
}
