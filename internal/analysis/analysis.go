// Package analysis is a reusable static-analysis layer over the cfg
// IR: graph utilities (predecessors, reverse postorder, dominator and
// post-dominator trees), a generic bit-vector dataflow solver with the
// classic instances (liveness, reaching definitions, definite
// assignment), interval/constant propagation, static crash-site
// reachability, and an IR verifier.
//
// The paper's contribution lives entirely in per-function CFG
// transformations (DAG conversion, Ball-Larus numbering, probe
// placement); this package is what proves those transformations
// preserve the invariants they depend on. The verifier runs after
// every instrumentation and bytecode-compile pass under
// -analysis=strict (on by default in tests), the reachability analysis
// seeds the fuzzer's power schedule (the PrescientFuzz observation),
// and the interval analysis backs the palint subject linter.
package analysis

import "repro/internal/cfg"

// BitSet is a fixed-width bit vector. The width is chosen at
// allocation; all binary operations require equal widths.
type BitSet []uint64

// NewBitSet returns an empty set able to hold n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Has reports whether bit i is set.
func (s BitSet) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (s BitSet) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Unset clears bit i.
func (s BitSet) Unset(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// SetFirstN sets bits [0, n).
func (s BitSet) SetFirstN(n int) {
	for i := 0; i < n; i++ {
		s.Set(i)
	}
}

// CopyFrom overwrites s with t.
func (s BitSet) CopyFrom(t BitSet) { copy(s, t) }

// UnionWith adds t's bits to s, reporting whether s changed.
func (s BitSet) UnionWith(t BitSet) bool {
	changed := false
	for i, w := range t {
		if nw := s[i] | w; nw != s[i] {
			s[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith removes bits absent from t, reporting whether s
// changed.
func (s BitSet) IntersectWith(t BitSet) bool {
	changed := false
	for i, w := range t {
		if nw := s[i] & w; nw != s[i] {
			s[i] = nw
			changed = true
		}
	}
	return changed
}

// Equal reports whether s and t hold the same bits.
func (s BitSet) Equal(t BitSet) bool {
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Preds returns, per block, the list of predecessor block indices in
// edge-enumeration order. Duplicate predecessors cannot occur: the cfg
// builder rejects conditional branches with identical targets.
func Preds(f *cfg.Func) [][]int {
	preds := make([][]int, len(f.Blocks))
	for _, e := range f.Edges {
		preds[e.To] = append(preds[e.To], e.From)
	}
	return preds
}

// Succs returns, per block, the list of successor block indices in
// edge order (Then before Else).
func Succs(f *cfg.Func) [][]int {
	succs := make([][]int, len(f.Blocks))
	for b := range f.Blocks {
		for _, e := range f.Successors(b) {
			succs[b] = append(succs[b], f.Edges[e].To)
		}
	}
	return succs
}

// ReversePostorder returns the blocks reachable from the entry in
// reverse postorder of a DFS that visits successors in edge order.
// Forward dataflow problems converge fastest in this order; Postorder
// is its reverse for backward problems.
func ReversePostorder(f *cfg.Func) []int {
	return reversePostorder(len(f.Blocks), 0, Succs(f))
}

func reversePostorder(n, entry int, succs [][]int) []int {
	if n == 0 {
		return nil
	}
	seen := make([]bool, n)
	post := make([]int, 0, n)
	// Iterative DFS; each frame tracks the next successor to visit.
	type frame struct {
		node int
		next int
	}
	stack := []frame{{node: entry}}
	seen[entry] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		ss := succs[top.node]
		if top.next >= len(ss) {
			post = append(post, top.node)
			stack = stack[:len(stack)-1]
			continue
		}
		to := ss[top.next]
		top.next++
		if !seen[to] {
			seen[to] = true
			stack = append(stack, frame{node: to})
		}
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes the immediate-dominator tree with the
// Cooper-Harvey-Kennedy iterative algorithm. idom[entry] == entry;
// blocks unreachable from the entry get idom -1. (The cfg builder
// prunes unreachable blocks, so -1 only appears on hand-built or
// corrupted functions — which is exactly when the verifier needs the
// tree to stay well defined.)
func Dominators(f *cfg.Func) []int {
	return idomTree(len(f.Blocks), 0, Preds(f), ReversePostorder(f))
}

// PostDominators computes the immediate post-dominator tree over the
// reverse CFG with a virtual exit node (index len(f.Blocks)) that every
// return block flows into. Blocks that cannot reach any return (e.g.
// bodies of infinite loops) get ipdom -1; the virtual exit is its own
// post-dominator.
func PostDominators(f *cfg.Func) []int {
	n := len(f.Blocks)
	exit := n
	// Reverse graph: "successors" are CFG predecessors, plus exit->ret.
	rsuccs := make([][]int, n+1)
	for _, e := range f.Edges {
		rsuccs[e.To] = append(rsuccs[e.To], e.From)
	}
	rpreds := make([][]int, n+1)
	for b := range f.Blocks {
		if f.Blocks[b].Term.Kind == cfg.TermRet {
			rsuccs[exit] = append(rsuccs[exit], b)
		}
	}
	for from, ss := range rsuccs {
		for _, to := range ss {
			rpreds[to] = append(rpreds[to], from)
		}
	}
	return idomTree(n+1, exit, rpreds, reversePostorder(n+1, exit, rsuccs))
}

// idomTree is the generic Cooper-Harvey-Kennedy fixpoint: rpo must be a
// reverse postorder of the nodes reachable from entry.
func idomTree(n, entry int, preds [][]int, rpo []int) []int {
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[entry] = entry
	rpoIndex := make([]int, n)
	for i := range rpoIndex {
		rpoIndex[i] = -1
	}
	for i, b := range rpo {
		rpoIndex[b] = i
	}
	intersect := func(a, b int) int {
		for a != b {
			for rpoIndex[a] > rpoIndex[b] {
				a = idom[a]
			}
			for rpoIndex[b] > rpoIndex[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if idom[p] < 0 {
					continue // not yet processed or unreachable
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under the given
// idom tree (reflexive: every block dominates itself).
func Dominates(idom []int, a, b int) bool {
	if idom[b] < 0 {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == b || next < 0 {
			return a == b
		}
		b = next
	}
}
