// The venn example reproduces the paper's Figure 3 analysis on a single
// subject: it fuzzes gdk with the baseline path-aware feedback and the
// pcguard edge baseline, prints the Venn decomposition of the unique
// bugs, and lists which concrete bugs each side found exclusively —
// making the "more pervasive exploration of already-covered code"
// effect tangible.
//
// Run with: go run ./examples/venn
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/strategy"
	"repro/internal/subjects"
	"repro/internal/triage"
)

func main() {
	sub := subjects.Get("gdk")
	prog, err := sub.Program()
	if err != nil {
		log.Fatal(err)
	}
	target := core.FromProgram(prog)

	const runs = 3
	const budget = 80000
	bugsOf := func(name strategy.Name) triage.Set[string] {
		all := triage.NewSet[string]()
		for seed := int64(1); seed <= runs; seed++ {
			out, err := target.Fuzz(core.Campaign{
				Fuzzer: name,
				Budget: budget,
				Seeds:  sub.Seeds,
				Seed:   seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			for k := range out.Report.Bugs {
				all.Add(k)
			}
		}
		return all
	}

	fmt.Printf("fuzzing %s with %d runs x %d execs per configuration...\n", sub.Name, runs, budget)
	path := bugsOf(strategy.Path)
	pcg := bugsOf(strategy.PCGuard)

	v := triage.Venn(path, pcg)
	fmt.Printf("\nVenn (unique bugs): path-only %d | common %d | pcguard-only %d\n",
		v.OnlyA, v.Common, v.OnlyB)

	fmt.Println("\nbugs only the path-aware fuzzer found:")
	for _, k := range triage.Sorted(triage.Subtract(path, pcg)) {
		fmt.Printf("  %s%s\n", k, pathDepNote(sub, k))
	}
	fmt.Println("bugs only pcguard found:")
	for _, k := range triage.Sorted(triage.Subtract(pcg, path)) {
		fmt.Printf("  %s\n", k)
	}
	fmt.Println("bugs both found:")
	for _, k := range triage.Sorted(triage.Intersect(path, pcg)) {
		fmt.Printf("  %s\n", k)
	}
}

// pathDepNote annotates keys that correspond to planted path-dependent
// bugs.
func pathDepNote(sub *subjects.Subject, key string) string {
	for _, b := range sub.Bugs {
		if b.PathDependent && containsStr(key, b.WantFunc) {
			return "   <- planted as path-dependent (" + b.ID + ")"
		}
	}
	return ""
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
