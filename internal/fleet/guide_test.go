package fleet_test

import (
	"bytes"
	"testing"

	"repro/internal/campaign"
	"repro/internal/fleet"
	"repro/internal/fuzz"
)

func guidedOpts() fuzz.Options {
	opts := testOpts()
	opts.AnalysisGuide = true
	return opts
}

func guidedMeta() campaign.Meta {
	meta := testMeta()
	meta.Guide = true
	return meta
}

// TestGuidedFleetSingleWorkerByteIdentity anchors guided fleet
// determinism: a 1-worker guided fleet equals a plain guided fuzzer
// with the same seed and budget, byte for byte.
func TestGuidedFleetSingleWorkerByteIdentity(t *testing.T) {
	f, err := fuzz.New(compileT(t), guidedOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range testSeeds {
		f.AddSeed(s)
	}
	f.Fuzz(testBudget)
	want := canonical(t, f.Report())

	s := fleet.New(t.TempDir(), fleetOpts(1))
	if err := s.Start(compileT(t), guidedOpts(), guidedMeta(), testSeeds); err != nil {
		t.Fatalf("fleet start: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if got := canonical(t, res.Merged); !bytes.Equal(got, want) {
		t.Fatalf("guided 1-worker fleet differs from plain guided fuzzer (%d vs %d canonical bytes)", len(got), len(want))
	}
}

// TestGuidedFleetResumeDeterminism: a 2-worker guided fleet stopped
// mid-flight and re-attached from its manifest finishes with the same
// merged report as an unstopped run — the guided state is derived, so
// nothing about it may leak into checkpoints or sync artifacts.
func TestGuidedFleetResumeDeterminism(t *testing.T) {
	clean := func() []byte {
		s := fleet.New(t.TempDir(), fleetOpts(2))
		if err := s.Start(compileT(t), guidedOpts(), guidedMeta(), testSeeds); err != nil {
			t.Fatalf("fleet start: %v", err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("fleet run: %v", err)
		}
		return canonical(t, res.Merged)
	}()

	dir := t.TempDir()
	opts := fleetOpts(2)
	opts.StopAfter = 2 * testSync
	s := fleet.New(dir, opts)
	if err := s.Start(compileT(t), guidedOpts(), guidedMeta(), testSeeds); err != nil {
		t.Fatalf("fleet start: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("interrupted fleet run: %v", err)
	}
	if !res.Interrupted {
		t.Fatal("fleet was not interrupted")
	}

	man, err := fleet.LoadManifest(campaign.OSFS{}, dir)
	if err != nil {
		t.Fatalf("load manifest: %v", err)
	}
	s2 := fleet.New(dir, fleetOpts(2))
	if err := s2.Attach(compileT(t), guidedOpts(), man); err != nil {
		t.Fatalf("fleet attach: %v", err)
	}
	res2, err := s2.Run()
	if err != nil {
		t.Fatalf("resumed fleet run: %v", err)
	}
	if res2.Interrupted {
		t.Fatal("resumed guided fleet interrupted again")
	}
	if got := canonical(t, res2.Merged); !bytes.Equal(got, clean) {
		t.Fatalf("resumed guided fleet differs from clean guided fleet (%d vs %d canonical bytes)", len(got), len(clean))
	}
}
