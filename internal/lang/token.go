// Package lang implements the frontend for MiniC, the small C-like
// language used as the program-under-test substrate in this reproduction.
//
// MiniC is deliberately tiny but expressive enough to write realistic
// format parsers: 64-bit integer scalars, heap arrays, functions,
// structured control flow (if/else, while, for, break/continue),
// short-circuit boolean operators (which lower to control flow and thus
// create intra-procedural path diversity, exactly the phenomenon the
// paper studies), character and string literals, and a handful of
// builtins (alloc, len, assert, abort, ...).
//
// The pipeline is Lex -> Parse -> (sema.Check) -> (cfg.Build).
package lang

import "fmt"

// Kind enumerates lexical token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	ILLEGAL

	// Literals and identifiers.
	IDENT // foo
	INT   // 42, 0x2a, 'h'
	STR   // "RIFF"

	// Keywords.
	FUNC
	VAR
	IF
	ELSE
	WHILE
	FOR
	RETURN
	BREAK
	CONTINUE

	// Punctuation.
	LPAREN // (
	RPAREN // )
	LBRACE // {
	RBRACE // }
	LBRACK // [
	RBRACK // ]
	COMMA  // ,
	SEMI   // ;

	// Operators.
	ASSIGN // =
	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	PCT    // %
	AMP    // &
	PIPE   // |
	CARET  // ^
	SHL    // <<
	SHR    // >>
	LAND   // &&
	LOR    // ||
	NOT    // !
	TILDE  // ~
	EQ     // ==
	NE     // !=
	LT     // <
	LE     // <=
	GT     // >
	GE     // >=
)

var kindNames = map[Kind]string{
	EOF:      "EOF",
	ILLEGAL:  "ILLEGAL",
	IDENT:    "IDENT",
	INT:      "INT",
	STR:      "STR",
	FUNC:     "func",
	VAR:      "var",
	IF:       "if",
	ELSE:     "else",
	WHILE:    "while",
	FOR:      "for",
	RETURN:   "return",
	BREAK:    "break",
	CONTINUE: "continue",
	LPAREN:   "(",
	RPAREN:   ")",
	LBRACE:   "{",
	RBRACE:   "}",
	LBRACK:   "[",
	RBRACK:   "]",
	COMMA:    ",",
	SEMI:     ";",
	ASSIGN:   "=",
	PLUS:     "+",
	MINUS:    "-",
	STAR:     "*",
	SLASH:    "/",
	PCT:      "%",
	AMP:      "&",
	PIPE:     "|",
	CARET:    "^",
	SHL:      "<<",
	SHR:      ">>",
	LAND:     "&&",
	LOR:      "||",
	NOT:      "!",
	TILDE:    "~",
	EQ:       "==",
	NE:       "!=",
	LT:       "<",
	LE:       "<=",
	GT:       ">",
	GE:       ">=",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"func":     FUNC,
	"var":      VAR,
	"if":       IF,
	"else":     ELSE,
	"while":    WHILE,
	"for":      FOR,
	"return":   RETURN,
	"break":    BREAK,
	"continue": CONTINUE,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // raw text for IDENT and STR; literal text for INT
	Val  int64  // decoded value for INT
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, STR:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	case INT:
		return fmt.Sprintf("INT(%d)", t.Val)
	default:
		return t.Kind.String()
	}
}
