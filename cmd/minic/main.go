// Command minic is the standalone MiniC compiler driver: it parses,
// checks, lowers, and optionally runs MiniC programs, with dump stages
// for every compiler phase (tokens, AST pretty-print, CFG, Ball-Larus
// numbering). It is the debugging companion to the fuzzing tools.
//
// Usage:
//
//	minic -src prog.mc -run -input 'bytes'
//	minic -src prog.mc -dump cfg
//	minic -subject gdk -dump paths
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/balllarus"
	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/subjects"
	"repro/internal/vm"
)

func main() {
	var (
		srcPath     = flag.String("src", "", "MiniC source file")
		subjectName = flag.String("subject", "", "benchmark subject instead of -src")
		dump        = flag.String("dump", "", "dump stage: tokens|ast|cfg|paths")
		run         = flag.Bool("run", false, "execute main(input)")
		inputStr    = flag.String("input", "", "input bytes for -run")
	)
	flag.Parse()

	var src string
	switch {
	case *subjectName != "":
		sub := subjects.Get(*subjectName)
		if sub == nil {
			fatalf("unknown subject %q", *subjectName)
		}
		src = sub.Source
	case *srcPath != "":
		b, err := os.ReadFile(*srcPath)
		if err != nil {
			fatalf("%v", err)
		}
		src = string(b)
	default:
		fatalf("one of -src or -subject is required")
	}

	switch *dump {
	case "tokens":
		toks, errs := lang.LexAll(src)
		for _, tok := range toks {
			fmt.Printf("%-8s %s\n", tok.Pos, tok)
		}
		for _, err := range errs {
			fmt.Fprintln(os.Stderr, err)
		}
		return
	case "ast":
		prog, err := lang.Parse(src)
		if err != nil {
			fatalf("parse: %v", err)
		}
		fmt.Print(lang.Print(prog))
		return
	}

	prog, err := cfg.Compile(src)
	if err != nil {
		fatalf("compile: %v", err)
	}

	switch *dump {
	case "cfg":
		for _, f := range prog.Funcs {
			fmt.Print(f.String())
			for i, e := range f.Edges {
				back := ""
				if f.BackEdge[i] {
					back = " (back)"
				}
				fmt.Printf("    edge %d: b%d -> b%d%s\n", i, e.From, e.To, back)
			}
		}
		return
	case "paths":
		for _, f := range prog.Funcs {
			enc, err := balllarus.Encode(f)
			if err != nil {
				fmt.Printf("%-20s (hash fallback: %v)\n", f.Name, err)
				continue
			}
			fmt.Printf("%-20s %d acyclic paths\n", f.Name, enc.NumPaths)
			if enc.NumPaths <= 32 {
				for id := uint64(0); id < enc.NumPaths; id++ {
					steps, err := enc.Regenerate(id)
					if err != nil {
						fatalf("regenerate: %v", err)
					}
					fmt.Printf("    path %2d:", id)
					for _, s := range steps {
						tag := ""
						if s.EnterViaBackEdge {
							tag = "^"
						}
						if s.ExitViaBackEdge {
							tag += "$"
						}
						fmt.Printf(" b%d%s", s.Block, tag)
					}
					fmt.Println()
				}
			}
		}
		return
	case "":
	default:
		fatalf("unknown dump stage %q", *dump)
	}

	if *run {
		res := vm.Run(prog, "main", []byte(*inputStr), vm.NullTracer{}, vm.DefaultLimits())
		fmt.Printf("status=%v ret=%d steps=%d\n", res.Status, res.Ret, res.Steps)
		for _, v := range res.Output {
			fmt.Printf("out: %d\n", v)
		}
		if res.Crash != nil {
			fmt.Println(res.Crash)
			os.Exit(2)
		}
		return
	}
	fmt.Printf("ok: %d functions, %d blocks, %d edges\n",
		len(prog.Funcs), prog.NumBlocks(), prog.NumEdges())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "minic: "+format+"\n", args...)
	os.Exit(1)
}
