package evalharness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuiteWritesProvenance: a durable suite drops one provenance CSV
// per campaign next to its coverage curves, with the shared header and
// one row per corpus entry.
func TestSuiteWritesProvenance(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	dir := t.TempDir()
	sr, err := RunSuite(durableCfg(dir, nil))
	if err != nil {
		t.Fatal(err)
	}

	names, err := os.ReadDir(filepath.Join(dir, provenanceDir))
	if err != nil {
		t.Fatalf("provenance dir: %v", err)
	}
	if len(names) != 4 { // 1 subject x 2 fuzzers x 2 runs
		t.Fatalf("want 4 provenance files, got %d", len(names))
	}

	cfg := durableCfg(dir, nil)
	for _, f := range cfg.Fuzzers {
		for run := 0; run < cfg.Runs; run++ {
			path := filepath.Join(dir, provenanceDir, provenanceFileName("flvmeta", f, run))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing provenance for %s run %d: %v", f, run, err)
			}
			lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
			if lines[0] != "worker,id,parent,stage,depth,steps,found_at,len,cov,first_cells" {
				t.Fatalf("%s: header %q", path, lines[0])
			}
			rr := sr.Runs("flvmeta", f)[run]
			if want := len(rr.Report.Corpus); len(lines)-1 != want {
				t.Errorf("%s: %d rows for %d corpus entries", path, len(lines)-1, want)
			}
		}
	}
}
