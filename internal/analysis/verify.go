package analysis

import (
	"fmt"

	"repro/internal/balllarus"
	"repro/internal/cfg"
)

// maxEnumPaths bounds the exhaustive Ball-Larus path enumeration; a
// function with more acyclic paths is checked algebraically plus by
// sampled path walks instead.
const maxEnumPaths = 2048

// Verify checks every structural invariant of a lowered program that
// the instrumentation and bytecode layers depend on. It returns the
// first violation found, with a diagnostic naming the function, block,
// and invariant. A nil error is the contract the -analysis=strict mode
// enforces after every instrumentation and compile pass.
func Verify(p *cfg.Program) error {
	for name, idx := range p.ByName {
		if idx < 0 || idx >= len(p.Funcs) {
			return fmt.Errorf("verify: ByName[%q] = %d out of range [0,%d)", name, idx, len(p.Funcs))
		}
		if p.Funcs[idx].Name != name {
			return fmt.Errorf("verify: ByName[%q] = #%d, but that function is named %q", name, idx, p.Funcs[idx].Name)
		}
	}
	for i, f := range p.Funcs {
		if f.ID != i {
			return fmt.Errorf("verify: func %q at index %d has ID %d", f.Name, i, f.ID)
		}
		if err := verifyCalls(p, f); err != nil {
			return err
		}
		if err := VerifyFunc(f); err != nil {
			return err
		}
	}
	return nil
}

// verifyCalls checks cross-function invariants of f's call sites.
func verifyCalls(p *cfg.Program, f *cfg.Func) error {
	v := &verifier{f: f}
	for b := range f.Blocks {
		for i := range f.Blocks[b].Instrs {
			in := &f.Blocks[b].Instrs[i]
			if in.Op != cfg.OpCall {
				continue
			}
			if in.Callee < 0 || in.Callee >= len(p.Funcs) {
				return v.errf(b, "call at instr %d: callee #%d out of range [0,%d)", i, in.Callee, len(p.Funcs))
			}
		}
	}
	return nil
}

// VerifyFunc checks the single-function invariants: well-formed
// terminators and operands, the canonical edge enumeration, back-edge
// classification, loop depths, entry reachability, acyclicity of the
// DAG conversion, definite assignment of every slot use, and the
// Ball-Larus numbering (each acyclic path gets a unique ID in
// [0, NumPaths), and the optimized chord placement agrees with the
// naive one on every path).
func VerifyFunc(f *cfg.Func) error {
	v := &verifier{f: f}
	for _, step := range []func() error{
		v.shape,
		v.edges,
		v.backEdges,
		v.loopDepths,
		v.reachable,
		v.definiteAssignment,
		v.ballLarus,
	} {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

type verifier struct {
	f *cfg.Func
}

func (v *verifier) errf(block int, format string, args ...any) error {
	return fmt.Errorf("verify func %q (#%d): block b%d: %s",
		v.f.Name, v.f.ID, block, fmt.Sprintf(format, args...))
}

// shape checks terminators and instruction operands block by block.
func (v *verifier) shape() error {
	f := v.f
	if len(f.Blocks) == 0 {
		return fmt.Errorf("verify func %q (#%d): function has no blocks", f.Name, f.ID)
	}
	if f.NParams < 0 || f.NParams > f.NumSlots || f.NumSlots > f.FrameSize {
		return fmt.Errorf("verify func %q (#%d): inconsistent frame: params=%d slots=%d frame=%d",
			f.Name, f.ID, f.NParams, f.NumSlots, f.FrameSize)
	}
	slotOK := func(s int) bool { return s >= 0 && s < f.FrameSize }
	var buf []int
	for b := range f.Blocks {
		blk := &f.Blocks[b]
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			buf = InstrUses(in, buf[:0])
			if d := InstrDef(in); d >= 0 {
				buf = append(buf, d)
			}
			for _, s := range buf {
				if !slotOK(s) {
					return v.errf(b, "instr %d (%s): slot s%d out of frame [0,%d)", i, in.String(), s, f.FrameSize)
				}
			}
		}
		t := &blk.Term
		switch t.Kind {
		case cfg.TermJmp:
			if t.Then < 0 || t.Then >= len(f.Blocks) {
				return v.errf(b, "jmp target b%d out of range [0,%d)", t.Then, len(f.Blocks))
			}
		case cfg.TermBr:
			if t.Then < 0 || t.Then >= len(f.Blocks) {
				return v.errf(b, "br then-target b%d out of range [0,%d)", t.Then, len(f.Blocks))
			}
			if t.Else < 0 || t.Else >= len(f.Blocks) {
				return v.errf(b, "br else-target b%d out of range [0,%d)", t.Else, len(f.Blocks))
			}
			if t.Then == t.Else {
				return v.errf(b, "conditional branch with identical targets b%d", t.Then)
			}
			if !slotOK(t.Cond) {
				return v.errf(b, "br condition slot s%d out of frame [0,%d)", t.Cond, f.FrameSize)
			}
		case cfg.TermRet:
			if t.Val >= f.FrameSize {
				return v.errf(b, "ret slot s%d out of frame [0,%d)", t.Val, f.FrameSize)
			}
		default:
			return v.errf(b, "block ends in unknown terminator kind %d (must end in exactly one of jmp/br/ret)", t.Kind)
		}
	}
	return nil
}

// edges checks that Func.Edges is exactly the canonical enumeration
// (block order, Then before Else) and that the per-block edge indices
// agree with it.
func (v *verifier) edges() error {
	f := v.f
	idx := 0
	expect := func(b int, e cfg.Edge, which string, got int) error {
		if idx >= len(f.Edges) {
			return v.errf(b, "edge list too short: missing %s edge (have %d edges)", which, len(f.Edges))
		}
		if f.Edges[idx] != e {
			return v.errf(b, "edge e%d is %v, want canonical %v", idx, f.Edges[idx], e)
		}
		if got != idx {
			return v.errf(b, "Edge%s index is %d, want e%d", which, got, idx)
		}
		idx++
		return nil
	}
	for b := range f.Blocks {
		blk := &f.Blocks[b]
		switch blk.Term.Kind {
		case cfg.TermJmp:
			if err := expect(b, cfg.Edge{From: b, To: blk.Term.Then}, "Then", blk.EdgeThen); err != nil {
				return err
			}
			if blk.EdgeElse != -1 {
				return v.errf(b, "jmp block has EdgeElse %d, want -1", blk.EdgeElse)
			}
		case cfg.TermBr:
			if err := expect(b, cfg.Edge{From: b, To: blk.Term.Then}, "Then", blk.EdgeThen); err != nil {
				return err
			}
			if err := expect(b, cfg.Edge{From: b, To: blk.Term.Else}, "Else", blk.EdgeElse); err != nil {
				return err
			}
		case cfg.TermRet:
			if blk.EdgeThen != -1 || blk.EdgeElse != -1 {
				return v.errf(b, "ret block has edge indices (%d,%d), want (-1,-1)", blk.EdgeThen, blk.EdgeElse)
			}
		}
	}
	if idx != len(f.Edges) {
		return v.errf(len(f.Blocks)-1, "edge list has %d entries, canonical enumeration has %d", len(f.Edges), idx)
	}
	return nil
}

// backEdges re-runs the grey-stack DFS classification and compares it
// with Func.BackEdge, then checks the DAG conversion is acyclic.
func (v *verifier) backEdges() error {
	f := v.f
	if len(f.BackEdge) != len(f.Edges) {
		return v.errf(0, "BackEdge has %d entries for %d edges", len(f.BackEdge), len(f.Edges))
	}
	want := recomputeBackEdges(f)
	for e := range want {
		if want[e] != f.BackEdge[e] {
			return v.errf(f.Edges[e].From, "edge e%d (b%d->b%d) back-edge flag is %v, DFS classification says %v",
				e, f.Edges[e].From, f.Edges[e].To, f.BackEdge[e], want[e])
		}
	}
	if _, err := f.TopoOrder(); err != nil {
		return v.errf(0, "DAG conversion is cyclic: %v", err)
	}
	return nil
}

// recomputeBackEdges is the classification the cfg builder performs:
// an edge is a back edge iff its target is on the DFS stack when the
// edge is first traversed from the entry (successors in edge order).
func recomputeBackEdges(f *cfg.Func) []bool {
	back := make([]bool, len(f.Edges))
	if len(f.Blocks) == 0 {
		return back
	}
	const (
		white = iota
		grey
		black
	)
	color := make([]int, len(f.Blocks))
	type frame struct {
		block int
		next  int
	}
	stack := []frame{{block: 0}}
	color[0] = grey
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		succ := f.Successors(top.block)
		if top.next >= len(succ) {
			color[top.block] = black
			stack = stack[:len(stack)-1]
			continue
		}
		e := succ[top.next]
		top.next++
		to := f.Edges[e].To
		switch color[to] {
		case grey:
			back[e] = true
		case white:
			color[to] = grey
			stack = append(stack, frame{block: to})
		}
	}
	return back
}

// loopDepths recomputes natural-loop nesting depths and compares.
func (v *verifier) loopDepths() error {
	f := v.f
	if len(f.LoopDepth) != len(f.Blocks) {
		return v.errf(0, "LoopDepth has %d entries for %d blocks", len(f.LoopDepth), len(f.Blocks))
	}
	depth := make([]int, len(f.Blocks))
	preds := Preds(f)
	for e, isBack := range f.BackEdge {
		if !isBack {
			continue
		}
		from, to := f.Edges[e].From, f.Edges[e].To
		in := make([]bool, len(f.Blocks))
		in[to] = true
		stack := []int{}
		if !in[from] {
			in[from] = true
			stack = append(stack, from)
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range preds[b] {
				if !in[p] {
					in[p] = true
					stack = append(stack, p)
				}
			}
		}
		for b, ok := range in {
			if ok {
				depth[b]++
			}
		}
	}
	for b := range depth {
		if depth[b] != f.LoopDepth[b] {
			return v.errf(b, "loop depth is %d, natural-loop recomputation says %d", f.LoopDepth[b], depth[b])
		}
	}
	return nil
}

// reachable checks that every block is reachable from the entry (the
// cfg builder prunes unreachable blocks; instrumentation plans assume
// the pruned form).
func (v *verifier) reachable() error {
	f := v.f
	rpo := ReversePostorder(f)
	if len(rpo) == len(f.Blocks) {
		return nil
	}
	seen := make([]bool, len(f.Blocks))
	for _, b := range rpo {
		seen[b] = true
	}
	for b, ok := range seen {
		if !ok {
			return v.errf(b, "block unreachable from entry (cfg lowering prunes unreachable blocks)")
		}
	}
	return nil
}

// definiteAssignment checks every slot read is preceded by a write on
// every path from the entry (with parameters written at entry). This
// is the sound phrasing of "defs dominate uses" for this IR: a slot
// may have several defs on branching paths (e.g. the short-circuit
// lowering writes its result temp in both arms), none of which
// individually dominates the join-point use.
func (v *verifier) definiteAssignment() error {
	f := v.f
	in := definitelyAssigned(f)
	assigned := NewBitSet(f.FrameSize)
	var buf []int
	for b := range f.Blocks {
		assigned.CopyFrom(in[b])
		blk := &f.Blocks[b]
		check := func(what string, i int) error {
			for _, s := range buf {
				if s >= 0 && s < f.FrameSize && !assigned.Has(s) {
					return v.errf(b, "%s reads slot s%d, which is not definitely assigned on every path from entry (instr %d)", what, s, i)
				}
			}
			return nil
		}
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			buf = InstrUses(in, buf[:0])
			if err := check(in.String(), i); err != nil {
				return err
			}
			if d := InstrDef(in); d >= 0 {
				assigned.Set(d)
			}
		}
		buf = TermUses(&blk.Term, buf[:0])
		if err := check("terminator", len(blk.Instrs)); err != nil {
			return err
		}
	}
	return nil
}

// ballLarus checks the path-numbering invariants: the DAG conversion
// provides exactly one BackStart/BackEnd pseudo-edge pair per back
// edge and one Real edge per forward edge; both instrumentation plans
// cover every edge; and the increments assign each acyclic path a
// unique ID in [0, NumPaths) — verified by exhaustive enumeration on
// small functions and by algebraic recomputation plus sampled path
// walks on large ones. Functions whose path count overflows MaxPaths
// use the hash fallback and carry no plan to verify.
func (v *verifier) ballLarus() error {
	f := v.f
	enc, err := balllarus.Encode(f)
	if err != nil {
		return nil // hash-mode fallback: no numbering to verify
	}
	// DAG conversion accounting.
	var nReal, nRet int
	starts := make(map[int]int)
	ends := make(map[int]int)
	for _, de := range enc.Dag {
		switch de.Kind {
		case balllarus.Real:
			if f.BackEdge[de.Ref] {
				return v.errf(f.Edges[de.Ref].From, "back edge e%d appears as a Real DAG edge", de.Ref)
			}
			nReal++
		case balllarus.BackStart:
			starts[de.Ref]++
		case balllarus.BackEnd:
			ends[de.Ref]++
		case balllarus.RetEdge:
			nRet++
		}
	}
	for e, isBack := range f.BackEdge {
		if isBack && (starts[e] != 1 || ends[e] != 1) {
			return v.errf(f.Edges[e].From, "back edge e%d has %d BackStart / %d BackEnd pseudo edges, want exactly 1 of each",
				e, starts[e], ends[e])
		}
	}
	if wantReal := len(f.Edges) - f.NumBackEdges(); nReal != wantReal {
		return v.errf(0, "DAG has %d Real edges for %d forward CFG edges", nReal, wantReal)
	}
	if wantRet := len(f.RetBlocks()); nRet != wantRet {
		return v.errf(0, "DAG has %d RetEdges for %d return blocks", nRet, wantRet)
	}

	naive := enc.NaivePlan()
	opt := enc.OptimizedPlan()
	for _, plan := range []*balllarus.Plan{&naive, &opt} {
		if len(plan.EdgeInc) != len(f.Edges) {
			return v.errf(0, "plan EdgeInc has %d entries for %d edges", len(plan.EdgeInc), len(f.Edges))
		}
		if len(plan.RetInc) != len(f.Blocks) {
			return v.errf(0, "plan RetInc has %d entries for %d blocks", len(plan.RetInc), len(f.Blocks))
		}
		for e, isBack := range f.BackEdge {
			_, hasAct := plan.Back[e]
			if isBack && !hasAct {
				return v.errf(f.Edges[e].From, "back edge e%d has no record/reset action in the plan", e)
			}
			if !isBack && hasAct {
				return v.errf(f.Edges[e].From, "forward edge e%d carries a back-edge action", e)
			}
		}
	}

	if err := v.checkPathCounts(enc); err != nil {
		return err
	}
	if enc.NumPaths <= maxEnumPaths {
		return v.enumeratePaths(enc, &naive, &opt)
	}
	return v.samplePaths(enc, &naive, &opt)
}

// dagOut rebuilds the per-node ordered out-edge lists (Dag order is
// the deterministic order Val assignment used).
func dagOut(enc *balllarus.Encoding, exit int) [][]int {
	out := make([][]int, exit+1)
	for i := range enc.Dag {
		out[enc.Dag[i].From] = append(out[enc.Dag[i].From], i)
	}
	return out
}

// checkPathCounts independently recomputes the per-node path counts
// and checks the Ball-Larus Val property: each node's outgoing Vals
// are the prefix sums of its successors' path counts. Together with
// acyclicity this is the algebraic proof that valSum is a bijection
// from ENTRY→EXIT paths onto [0, NumPaths).
func (v *verifier) checkPathCounts(enc *balllarus.Encoding) error {
	f := v.f
	exit := len(f.Blocks)
	out := dagOut(enc, exit)
	order, err := f.TopoOrder()
	if err != nil {
		return v.errf(0, "DAG conversion is cyclic: %v", err)
	}
	paths := make([]uint64, exit+1)
	paths[exit] = 1
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		var sum uint64
		for _, ei := range out[n] {
			sum += paths[enc.Dag[ei].To]
		}
		paths[n] = sum
	}
	if paths[0] != enc.NumPaths {
		return v.errf(0, "NumPaths is %d, independent recomputation says %d", enc.NumPaths, paths[0])
	}
	for n := 0; n <= exit; n++ {
		var prefix uint64
		for _, ei := range out[n] {
			de := &enc.Dag[ei]
			if uint64(de.Val) != prefix {
				from := n
				if from == exit {
					from = 0
				}
				return v.errf(from, "DAG edge to %d has Val %d, want prefix sum %d (Ball-Larus numbering violated)",
					de.To, de.Val, prefix)
			}
			prefix += paths[de.To]
		}
	}
	return nil
}

// simulate runs the runtime instrumentation plan over one DAG path
// (edge-index sequence), returning the recorded path ID.
func simulate(enc *balllarus.Encoding, plan *balllarus.Plan, path []int) (int64, error) {
	var r int64
	for step, ei := range path {
		de := &enc.Dag[ei]
		switch de.Kind {
		case balllarus.BackStart:
			if step != 0 {
				return 0, fmt.Errorf("BackStart pseudo edge at path step %d (must be first)", step)
			}
			r = plan.Back[de.Ref].StartVal
		case balllarus.Real:
			r += plan.EdgeInc[de.Ref]
		case balllarus.BackEnd:
			return r + plan.Back[de.Ref].EndInc, nil
		case balllarus.RetEdge:
			return r + plan.RetInc[de.Ref], nil
		}
	}
	return 0, fmt.Errorf("path did not end in a BackEnd or RetEdge")
}

// checkPath verifies one DAG path: both plans must record the path's
// Val sum, which must lie in [0, NumPaths).
func (v *verifier) checkPath(enc *balllarus.Encoding, naive, opt *balllarus.Plan, path []int) (int64, error) {
	var valSum int64
	for _, ei := range path {
		valSum += enc.Dag[ei].Val
	}
	if valSum < 0 || uint64(valSum) >= enc.NumPaths {
		return 0, v.errf(0, "acyclic path has ID %d outside [0,%d)", valSum, enc.NumPaths)
	}
	for name, plan := range map[string]*balllarus.Plan{"naive": naive, "optimized": opt} {
		got, err := simulate(enc, plan, path)
		if err != nil {
			return 0, v.errf(0, "%s plan: %v", name, err)
		}
		if got != valSum {
			return 0, v.errf(0, "%s plan records path ID %d, numbering assigns %d", name, got, valSum)
		}
	}
	return valSum, nil
}

// enumeratePaths exhaustively walks every ENTRY→EXIT DAG path and
// checks the recorded IDs form exactly the set [0, NumPaths).
func (v *verifier) enumeratePaths(enc *balllarus.Encoding, naive, opt *balllarus.Plan) error {
	exit := len(v.f.Blocks)
	out := dagOut(enc, exit)
	seen := make([]bool, enc.NumPaths)
	count := uint64(0)
	var path []int
	var walk func(node int) error
	walk = func(node int) error {
		if node == exit {
			id, err := v.checkPath(enc, naive, opt, path)
			if err != nil {
				return err
			}
			if seen[id] {
				return v.errf(0, "two acyclic paths share ID %d (numbering is not injective)", id)
			}
			seen[id] = true
			count++
			if count > enc.NumPaths {
				return v.errf(0, "more than NumPaths=%d ENTRY→EXIT paths exist", enc.NumPaths)
			}
			return nil
		}
		for _, ei := range out[node] {
			path = append(path, ei)
			if err := walk(enc.Dag[ei].To); err != nil {
				return err
			}
			path = path[:len(path)-1]
		}
		return nil
	}
	if err := walk(0); err != nil {
		return err
	}
	if count != enc.NumPaths {
		return v.errf(0, "enumeration found %d acyclic paths, NumPaths says %d", count, enc.NumPaths)
	}
	return nil
}

// samplePaths spot-checks large functions: 64 deterministic pseudo-
// random ENTRY→EXIT walks, each verified against both plans. Combined
// with checkPathCounts (the algebraic bijection proof) this covers
// functions whose path count makes enumeration infeasible.
func (v *verifier) samplePaths(enc *balllarus.Encoding, naive, opt *balllarus.Plan) error {
	exit := len(v.f.Blocks)
	out := dagOut(enc, exit)
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		x := rng
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return x ^ (x >> 31)
	}
	for walk := 0; walk < 64; walk++ {
		var path []int
		node := 0
		for node != exit {
			choices := out[node]
			if len(choices) == 0 {
				return v.errf(node, "DAG node has no outgoing edges but is not EXIT")
			}
			ei := choices[int(next()%uint64(len(choices)))]
			path = append(path, ei)
			node = enc.Dag[ei].To
			if len(path) > len(enc.Dag)+1 {
				return v.errf(0, "sampled walk exceeds DAG size (cycle?)")
			}
		}
		if _, err := v.checkPath(enc, naive, opt, path); err != nil {
			return err
		}
	}
	return nil
}
