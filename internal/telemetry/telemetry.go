// Package telemetry is the campaign observability subsystem: a typed
// counter registry with a lock-free hot path, time-series samplers for
// the trajectory metrics the paper's evaluation is built on (execs/s,
// coverage bits, map density, queue depth, novelty rate), per-stage
// span tracing with power-of-two latency histograms, AFL-compatible
// fuzzer_stats/plot_data emitters, and an HTTP endpoint serving a
// Prometheus text exposition, a JSON snapshot, and a live dashboard.
//
// The design keeps observation strictly out of the execution hot path:
// the fuzz loop maintains plain (non-atomic) int64 counters exactly as
// before, and at coarse safe points — queue-entry boundaries — copies
// them into a Counters value and Publishes it with a single atomic
// pointer store. A collector goroutine samples the published snapshot
// on a wall-clock cadence, derives rates from consecutive samples, and
// feeds the series, files, and endpoint. Telemetry therefore never
// feeds back into campaign state, never contends with the exec loop,
// and adds no work per execution — the invariant the <2% overhead
// budget (BENCH_PR4.json) and the determinism tests pin down.
package telemetry

import (
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
)

// Counters is the typed registry of campaign counters a fuzzer
// publishes. All fields are cumulative totals (rates are derived by
// the collector from consecutive snapshots); gauge-like fields
// (QueueLen, Favored, ...) carry the value at publish time.
type Counters struct {
	// Execution totals.
	Execs      int64
	Timeouts   int64
	CrashExecs int64
	TotalSteps int64
	Cycles     int64
	// Added counts queue entries ever added — the novelty event count
	// behind the novelty-rate sampler.
	Added            int64
	UniqueCrashes    int64
	UniqueBugs       int64
	AFLUniqueCrashes int64
	InternalFaults   int64

	// Queue gauges.
	QueueLen       int64
	Favored        int64
	PendingTotal   int64 // queue entries never fuzzed
	PendingFavored int64 // favored entries never fuzzed (pending calibration analogue)
	CurItem        int64 // queue index currently being fuzzed
	MaxDepth       int64 // deepest mutation chain in the queue

	// Coverage gauges. CoverageCount is the number of map indices ever
	// touched; CoverageBits is the number of consumed virgin cells
	// (AFL's bitmap coverage); MapSize normalizes both into densities.
	CoverageCount int64
	CoverageBits  int64
	MapSize       int64

	// Per-stage execution attribution (counts, not times — these stay
	// deterministic and are checkpointed with the campaign's Stats).
	SeedExecs   int64
	HavocExecs  int64
	SpliceExecs int64
	CmplogExecs int64

	// Coverage-guided tracing engine counters (zero for the other
	// engines). FastExecs/Retraces/Replans are cumulative; ElidedProbes
	// and PatchSites are gauges describing the current patch plan.
	FastExecs    int64
	Retraces     int64
	Replans      int64
	ElidedProbes int64
	PatchSites   int64

	// Fleet supervision counters (zero for single-fuzzer campaigns).
	// The fleet supervisor fills these on the aggregate snapshot it
	// publishes; per-worker snapshots leave them zero.
	FleetWorkers     int64 // configured worker count
	FleetActive      int64 // workers currently running or parked at a sync barrier
	FleetRestarts    int64 // worker restarts (panic or wedge recoveries)
	FleetWedges      int64 // watchdog wedge declarations
	FleetRetired     int64 // workers retired after K consecutive failures
	FleetQuarantined int64 // poison inputs quarantined
}

// Aggregate sums counter sets across fleet workers: cumulative totals
// and gauge fields alike are added (the fleet-wide queue depth is the
// sum of per-worker queues), except MaxDepth and CurItem which take the
// maximum, and MapSize which is per-worker identical so the first
// non-zero value is kept.
func Aggregate(cs ...Counters) Counters {
	var out Counters
	for _, c := range cs {
		out.Execs += c.Execs
		out.Timeouts += c.Timeouts
		out.CrashExecs += c.CrashExecs
		out.TotalSteps += c.TotalSteps
		out.Cycles += c.Cycles
		out.Added += c.Added
		out.UniqueCrashes += c.UniqueCrashes
		out.UniqueBugs += c.UniqueBugs
		out.AFLUniqueCrashes += c.AFLUniqueCrashes
		out.InternalFaults += c.InternalFaults
		out.QueueLen += c.QueueLen
		out.Favored += c.Favored
		out.PendingTotal += c.PendingTotal
		out.PendingFavored += c.PendingFavored
		out.CoverageCount += c.CoverageCount
		out.CoverageBits += c.CoverageBits
		out.SeedExecs += c.SeedExecs
		out.HavocExecs += c.HavocExecs
		out.SpliceExecs += c.SpliceExecs
		out.CmplogExecs += c.CmplogExecs
		out.FastExecs += c.FastExecs
		out.Retraces += c.Retraces
		out.Replans += c.Replans
		out.ElidedProbes += c.ElidedProbes
		out.PatchSites += c.PatchSites
		out.FleetWorkers += c.FleetWorkers
		out.FleetActive += c.FleetActive
		out.FleetRestarts += c.FleetRestarts
		out.FleetWedges += c.FleetWedges
		out.FleetRetired += c.FleetRetired
		out.FleetQuarantined += c.FleetQuarantined
		if c.MaxDepth > out.MaxDepth {
			out.MaxDepth = c.MaxDepth
		}
		if c.CurItem > out.CurItem {
			out.CurItem = c.CurItem
		}
		if out.MapSize == 0 {
			out.MapSize = c.MapSize
		}
	}
	return out
}

// Snapshot is one published, immutable view of the counters.
type Snapshot struct {
	Counters
	// When is the wall-clock publish time; Elapsed is time since the
	// recorder started (plus any carried base from a resumed campaign).
	When    time.Time
	Elapsed time.Duration
}

// MapDensity returns the touched-index fraction of the coverage map.
func (s *Snapshot) MapDensity() float64 {
	if s.MapSize == 0 {
		return 0
	}
	return float64(s.CoverageCount) / float64(s.MapSize)
}

// Info is the static campaign identity surfaced in fuzzer_stats and
// the endpoint. Fields unknown at construction (the resolved engine,
// the compiled instruction count) may be filled in later via SetInfo.
type Info struct {
	// Banner identifies the campaign, e.g. "flvmeta/cull".
	Banner string
	// Engine is the resolved execution engine ("bytecode" or "interp").
	Engine string
	// Feedback names the coverage feedback mechanism.
	Feedback string
	// Instrs is the compiled bytecode instruction count (0 for interp);
	// Nops is how many of those slots the verified optimization passes
	// reduced to counted nops.
	Instrs int
	Nops   int
	Seed   int64
	Budget int64
	// GoVersion and PID are recorded for reproducibility.
	GoVersion string
	PID       int
}

// Config tunes a Recorder.
type Config struct {
	Info Info
	// Now injects a clock for deterministic tests (time.Now if nil).
	Now func() time.Time
	// SeriesCap bounds the sample ring (default 1024 points).
	SeriesCap int
	// SpanCap bounds the span ring (default 4096 spans).
	SpanCap int
	// ElapsedBase offsets Elapsed, carrying wall-clock lineage across a
	// checkpoint/resume boundary so plot_data stays gapless.
	ElapsedBase time.Duration
}

// Recorder is the campaign-side telemetry hub. The publishing side
// (the fuzz loop) and the consuming side (collector goroutine, HTTP
// handlers) share it; only Publish is on the campaign's path and it
// performs one allocation and one atomic store per call.
type Recorder struct {
	now   func() time.Time
	start time.Time
	base  time.Duration
	cur   atomic.Pointer[Snapshot]

	mu     sync.Mutex
	info   Info
	series *series
	spans  *spanStore
	prev   *Snapshot // last sampled snapshot, for rate derivation
	afl    *AFLOutput
	// Last durable checkpoint (NoteCheckpoint), surfaced by /healthz:
	// a durable campaign whose checkpoint age grows without bound is
	// unhealthy even while its exec counter moves.
	ckptWhen  time.Time
	ckptExecs int64
	// journalDir, when set, points /genealogy at the on-disk journal;
	// the dashboard renders from files rather than live fuzzer state,
	// which would race the fuzz goroutine.
	journalDir string
	// Coverage cartography hooks (display-only): cellResolver resolves
	// journaled cells to source meaning on /genealogy; coveragePage
	// renders the /coverage report from journaled events. Both are
	// closures over offline state (program + reverse index), never live
	// fuzzer internals.
	cellResolver func(uint32) string
	coveragePage func(w io.Writer, events []journal.Event) error

	// Per-worker snapshot slots for fleet campaigns. The map is guarded
	// by wmu (slots are created once per worker); each slot is an atomic
	// pointer, so the per-worker publish path is lock-free after the
	// first call, and readers never block publishers.
	wmu     sync.Mutex
	workers map[int]*atomic.Pointer[Snapshot]

	collectDone chan struct{}
	collectStop chan struct{}
}

// New builds a recorder. The zero Config is usable.
func New(cfg Config) *Recorder {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	if cfg.SeriesCap <= 0 {
		cfg.SeriesCap = 1024
	}
	if cfg.SpanCap <= 0 {
		cfg.SpanCap = 4096
	}
	info := cfg.Info
	if info.GoVersion == "" {
		info.GoVersion = runtime.Version()
	}
	return &Recorder{
		now:    now,
		start:  now(),
		base:   cfg.ElapsedBase,
		info:   info,
		series: newSeries(cfg.SeriesCap),
		spans:  newSpanStore(cfg.SpanCap),
	}
}

// Publish stores a new counter snapshot. It is the only telemetry call
// on the campaign's path: one allocation, one atomic pointer store, no
// locks. Safe to call concurrently with every consumer.
func (r *Recorder) Publish(c Counters) {
	now := r.now()
	r.cur.Store(&Snapshot{Counters: c, When: now, Elapsed: r.base + now.Sub(r.start)})
}

// Latest returns the most recently published snapshot (nil before the
// first Publish).
func (r *Recorder) Latest() *Snapshot { return r.cur.Load() }

// PublishWorker stores a per-worker counter snapshot (fleet campaigns).
// Safe to call concurrently from any number of worker publishers; each
// worker id has its own slot, so publishers never clobber each other.
func (r *Recorder) PublishWorker(id int, c Counters) {
	r.wmu.Lock()
	if r.workers == nil {
		r.workers = make(map[int]*atomic.Pointer[Snapshot])
	}
	slot, ok := r.workers[id]
	if !ok {
		slot = new(atomic.Pointer[Snapshot])
		r.workers[id] = slot
	}
	r.wmu.Unlock()
	now := r.now()
	slot.Store(&Snapshot{Counters: c, When: now, Elapsed: r.base + now.Sub(r.start)})
}

// WorkerSnapshot pairs a worker id with its latest published snapshot.
type WorkerSnapshot struct {
	ID int
	*Snapshot
}

// Workers returns the latest snapshot of every fleet worker that has
// published, sorted by worker id.
func (r *Recorder) Workers() []WorkerSnapshot {
	r.wmu.Lock()
	ids := make([]int, 0, len(r.workers))
	slots := make([]*atomic.Pointer[Snapshot], 0, len(r.workers))
	for id := range r.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		slots = append(slots, r.workers[id])
	}
	r.wmu.Unlock()
	out := make([]WorkerSnapshot, 0, len(ids))
	for i, id := range ids {
		if s := slots[i].Load(); s != nil {
			out = append(out, WorkerSnapshot{ID: id, Snapshot: s})
		}
	}
	return out
}

// AggregateWorkers sums the latest per-worker snapshots into one
// fleet-wide counter set. Because each worker's counters are cumulative
// and its slot only ever advances, the aggregate is monotone: no
// interleaving of publishes and reads can make a later aggregate
// smaller than an earlier one.
func (r *Recorder) AggregateWorkers() Counters {
	ws := r.Workers()
	cs := make([]Counters, len(ws))
	for i, w := range ws {
		cs[i] = w.Counters
	}
	return Aggregate(cs...)
}

// SetInfo replaces the campaign identity (e.g. once the resolved
// engine is known).
func (r *Recorder) SetInfo(info Info) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if info.GoVersion == "" {
		info.GoVersion = runtime.Version()
	}
	r.info = info
}

// Info returns the campaign identity.
func (r *Recorder) Info() Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.info
}

// Elapsed returns wall-clock time since the recorder started, offset
// by any resumed base.
func (r *Recorder) Elapsed() time.Duration { return r.base + r.now().Sub(r.start) }

// NoteCheckpoint records that a durable checkpoint landed at the given
// execution count. The campaign runner calls it after every successful
// checkpoint write; /healthz reports the age.
func (r *Recorder) NoteCheckpoint(execs int64) {
	now := r.now()
	r.mu.Lock()
	r.ckptWhen, r.ckptExecs = now, execs
	r.mu.Unlock()
}

// LastCheckpoint returns the most recent checkpoint note (ok=false
// before the first one).
func (r *Recorder) LastCheckpoint() (when time.Time, execs int64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ckptWhen, r.ckptExecs, !r.ckptWhen.IsZero()
}

// SetJournalDir points the HTTP layer's /genealogy page at an on-disk
// journal directory.
func (r *Recorder) SetJournalDir(dir string) {
	r.mu.Lock()
	r.journalDir = dir
	r.mu.Unlock()
}

// JournalDir returns the registered journal directory ("" when none).
func (r *Recorder) JournalDir() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.journalDir
}

// SetCellResolver registers a coverage-cartography resolver used by
// /genealogy (and /coverage) to render journaled map cells as source
// meanings. The resolver must be a pure function over offline state
// (program + reverse index), never live fuzzer internals.
func (r *Recorder) SetCellResolver(f func(uint32) string) {
	r.mu.Lock()
	r.cellResolver = f
	r.mu.Unlock()
}

func (r *Recorder) resolver() journal.CellResolver {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cellResolver
}

// SetCoveragePage registers the /coverage page renderer: a closure that
// receives the on-disk journal's events and writes a self-contained
// HTML coverage report. Keeping the closure on the caller's side means
// telemetry never depends on the cartography index directly.
func (r *Recorder) SetCoveragePage(f func(w io.Writer, events []journal.Event) error) {
	r.mu.Lock()
	r.coveragePage = f
	r.mu.Unlock()
}

func (r *Recorder) coverage() func(w io.Writer, events []journal.Event) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.coveragePage
}

// AttachAFLOutput opens (or resumes) the AFL-compatible fuzzer_stats
// and plot_data files under dir; subsequent Sample calls append rows.
// When the plot file already holds rows (a resumed campaign), their
// final relative_time is adopted as the recorder's elapsed base so the
// series continues gaplessly. Call before the campaign starts
// publishing (the base is read lock-free on the publish path).
func (r *Recorder) AttachAFLOutput(dir string) error {
	out, err := OpenAFLOutput(dir)
	if err != nil {
		return err
	}
	if carried := time.Duration(out.lastRel) * time.Second; out.hasRows && r.base < carried {
		r.base = carried
	}
	r.mu.Lock()
	r.afl = out
	r.mu.Unlock()
	return nil
}

// Sample takes one collector tick: it loads the latest snapshot,
// derives rates against the previous sample, appends a series point,
// and — when an AFL output is attached — writes a plot_data row and
// rewrites fuzzer_stats. It is what the collector goroutine runs on
// its cadence, and what tests call directly for determinism. It
// returns the point recorded, or ok=false when nothing has been
// published yet or the counters have not advanced.
func (r *Recorder) Sample() (Point, bool) {
	s := r.Latest()
	if s == nil {
		return Point{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.prev != nil && r.prev.Elapsed == s.Elapsed && r.prev.Execs == s.Execs {
		return Point{}, false
	}
	p := derivePoint(r.prev, s)
	r.series.push(p)
	r.prev = s
	if r.afl != nil {
		r.afl.Append(s, p, r.info)
	}
	return p, true
}

// Points returns the recorded series, oldest first.
func (r *Recorder) Points() []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series.points()
}

// LastPoint returns the most recent series point.
func (r *Recorder) LastPoint() (Point, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series.last()
}

// StartCollector spawns the sampling goroutine on the given cadence
// (default 1s when non-positive). Stop it with Close. Starting twice
// is a no-op.
func (r *Recorder) StartCollector(every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	r.mu.Lock()
	if r.collectStop != nil {
		r.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	r.collectStop, r.collectDone = stop, done
	r.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Sample()
			case <-stop:
				return
			}
		}
	}()
}

// Close stops the collector (if running), takes a final sample so the
// last counters always reach the series and files, and closes the AFL
// output. Safe to call multiple times.
func (r *Recorder) Close() error {
	r.mu.Lock()
	stop, done := r.collectStop, r.collectDone
	r.collectStop, r.collectDone = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	r.Sample()
	r.mu.Lock()
	afl := r.afl
	r.afl = nil
	r.mu.Unlock()
	if afl != nil {
		return afl.Close()
	}
	return nil
}
