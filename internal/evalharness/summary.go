package evalharness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/stats"
	"repro/internal/strategy"
	"repro/internal/triage"
)

// TotalBugs unions cumulative bugs across every subject for one fuzzer.
func (s *SuiteResult) TotalBugs(f strategy.Name) triage.Set[string] {
	out := triage.NewSet[string]()
	for _, sub := range s.Cfg.Subjects {
		for k := range s.CumulativeBugs(sub, f) {
			out.Add(k)
		}
	}
	return out
}

// OppRecovery reports the paper's §V-A statistic: how many of the bugs
// the edge phase (phase 1) found were re-discovered by the path-aware
// phase, which starts from a crash-stripped queue.
func (s *SuiteResult) OppRecovery() (phase1, recovered int) {
	p1 := triage.NewSet[string]()
	p2 := triage.NewSet[string]()
	for _, sub := range s.Cfg.Subjects {
		for _, rr := range s.Runs(sub, strategy.Opp) {
			if rr == nil || rr.Phase1 == nil {
				continue
			}
			for k := range rr.Phase1.Bugs {
				p1.Add(k)
			}
			for k := range rr.Report.Bugs {
				p2.Add(k)
			}
		}
	}
	return p1.Len(), triage.Intersect(p1, p2).Len()
}

// has reports whether the suite ran fuzzer f.
func (s *SuiteResult) has(f strategy.Name) bool {
	for _, g := range s.Cfg.Fuzzers {
		if g == f {
			return true
		}
	}
	return false
}

// Summary prints the paper's headline claims next to the measured
// values, in the order §V-A reports them. It degrades gracefully when a
// fuzzer was not part of the run.
func (s *SuiteResult) Summary(w io.Writer) {
	fmt.Fprintln(w, "SUMMARY — headline claims (paper §V) vs this run")
	if s.GoVersion != "" {
		host := s.Host
		if host == "" {
			host = "unknown-host"
		}
		engine := s.Engine
		if engine == "" {
			engine = "unknown-engine"
		}
		fmt.Fprintf(w, "  environment: %s on %s, engine %s, suite wall-clock %s\n",
			s.GoVersion, host, engine, s.Elapsed.Round(time.Millisecond))
	}
	get := func(f strategy.Name) triage.Set[string] { return s.TotalBugs(f) }
	pct := func(a, b int) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(a)/float64(b))
	}

	if s.has(strategy.Path) && s.has(strategy.PCGuard) {
		path, pcg := get(strategy.Path), get(strategy.PCGuard)
		onlyPath := triage.Subtract(path, pcg).Len()
		fmt.Fprintf(w, "  path total %d vs pcguard %d; path-only %d (%s of path's; paper: 14 = 18.2%%)\n",
			path.Len(), pcg.Len(), onlyPath, pct(onlyPath, path.Len()))
	}
	if s.has(strategy.Cull) && s.has(strategy.PCGuard) {
		cull, pcg := get(strategy.Cull), get(strategy.PCGuard)
		onlyCull := triage.Subtract(cull, pcg).Len()
		delta := "-"
		if pcg.Len() > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*float64(cull.Len()-pcg.Len())/float64(pcg.Len()))
		}
		fmt.Fprintf(w, "  cull total %d vs pcguard %d (%s; paper: +10.1%%); cull-only %d (%s; paper: 27.5%%)\n",
			cull.Len(), pcg.Len(), delta, onlyCull, pct(onlyCull, cull.Len()))
	}
	if s.has(strategy.Opp) && s.has(strategy.PCGuard) {
		opp, pcg := get(strategy.Opp), get(strategy.PCGuard)
		onlyOpp := triage.Subtract(opp, pcg).Len()
		fmt.Fprintf(w, "  opp total %d vs pcguard %d; opp-only %d (%s; paper: 19.3%%)\n",
			opp.Len(), pcg.Len(), onlyOpp, pct(onlyOpp, opp.Len()))
		p1, rec := s.OppRecovery()
		fmt.Fprintf(w, "  opp recovered %d of %d phase-1 bugs (%s; paper: 85.5%%)\n", rec, p1, pct(rec, p1))
	}
	if s.has(strategy.PathAFL) && s.has(strategy.Cull) {
		pa, cull := get(strategy.PathAFL), get(strategy.Cull)
		fmt.Fprintf(w, "  pathafl total %d = %s of cull's %d (paper: 29.5%%)\n",
			pa.Len(), pct(pa.Len(), cull.Len()), cull.Len())
	}
	if s.has(strategy.Path) && s.has(strategy.PCGuard) {
		// Queue explosion geomeans (Table III headline).
		var rp []float64
		for _, sub := range s.Cfg.Subjects {
			qg := s.medianQueue(sub, strategy.PCGuard)
			if qg > 0 {
				rp = append(rp, float64(s.medianQueue(sub, strategy.Path))/float64(qg))
			}
		}
		fmt.Fprintf(w, "  queue growth geomean path/pcguard %.2fx (paper: 4.46x)\n", stats.GeoMean(rp))
	}
	if s.has(strategy.Cull) && s.has(strategy.PCGuard) {
		var rc []float64
		for _, sub := range s.Cfg.Subjects {
			qg := s.medianQueue(sub, strategy.PCGuard)
			if qg > 0 {
				rc = append(rc, float64(s.medianQueue(sub, strategy.Cull))/float64(qg))
			}
		}
		fmt.Fprintf(w, "  queue growth geomean cull/pcguard %.2fx (paper: 2.22x)\n", stats.GeoMean(rc))
	}
	if s.has(strategy.Path) && s.has(strategy.PCGuard) {
		// Edge coverage totals (Table IV headline: path ~87% of pcguard).
		tp, tg := 0, 0
		for _, sub := range s.Cfg.Subjects {
			tp += s.CumulativeEdges(sub, strategy.Path).Len()
			tg += s.CumulativeEdges(sub, strategy.PCGuard).Len()
		}
		fmt.Fprintf(w, "  edge coverage: path total %d = %s of pcguard's %d (paper: 87.3%%)\n",
			tp, pct(tp, tg), tg)
	}
}
