// The fleet watchdog: a single goroutine that scans worker heartbeats
// on a fraction of the wedge deadline and recycles workers that have
// stopped reaching queue-entry boundaries. Goroutines cannot be killed
// in Go, so "recycling" is abandonment: the watchdog bumps the worker's
// generation — the stale attempt's next boundary check makes it exit
// without checkpointing — releases any chaos wedge block, quarantines
// the input the worker was executing, and wakes the manage loop to
// restart from the last checkpoint. A genuinely unbounded execution
// that never returns to a boundary leaks its goroutine; the fleet
// still makes progress on the replacement.
package fleet

import (
	"fmt"
	"time"

	"repro/internal/fuzz"
	"repro/internal/journal"
)

// startWatchdog launches the heartbeat scanner (no-op when the
// watchdog deadline is zero).
func (s *Supervisor) startWatchdog() {
	if s.opts.Watchdog <= 0 {
		return
	}
	tick := s.opts.Watchdog / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	s.watchStop = make(chan struct{})
	s.watchDone = make(chan struct{})
	go func() {
		defer close(s.watchDone)
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-s.watchStop:
				return
			case <-t.C:
			}
			deadline := time.Now().Add(-s.opts.Watchdog).UnixNano()
			s.mu.Lock()
			for _, w := range s.workers {
				if w.state != stRunning || w.parked.Load() {
					continue
				}
				// beat == 0: the attempt is still starting up (restoring its
				// checkpoint), a phase whose length scales with prior
				// campaign progress — exempt. Execution itself is bounded by
				// per-run step limits, so a wedge can only appear between
				// boundaries, where the beat is armed.
				if beat := w.beat.Load(); beat > 0 && beat < deadline {
					s.declareWedgedLocked(w)
				}
			}
			s.mu.Unlock()
		}
	}()
}

func (s *Supervisor) stopWatchdog() {
	if s.watchStop == nil {
		return
	}
	close(s.watchStop)
	<-s.watchDone
	s.watchStop, s.watchDone = nil, nil
}

// declareWedgedLocked recycles a wedged worker: quarantine the input it
// was last dispatched, abandon the attempt's generation, and wake its
// manage loop. The manage loop applies failure accounting and backoff.
func (s *Supervisor) declareWedgedLocked(w *worker) {
	s.wedges++
	var input []byte
	if p := w.curInput.Load(); p != nil {
		input = append([]byte(nil), *p...)
	}
	s.emit(journal.Event{
		Kind: journal.KindWedge, Worker: w.id, Gen: w.gen,
		Execs: w.beatExecs.Load(),
		Msg:   fmt.Sprintf("no boundary heartbeat for %v", s.opts.Watchdog),
	})
	s.addPoisonLocked(fuzz.PoisonRec{
		Worker: w.id,
		Gen:    w.gen,
		Msg:    fmt.Sprintf("fleet: watchdog: no boundary heartbeat for %v", s.opts.Watchdog),
		Input:  input,
		Execs:  w.beatExecs.Load(),
		Count:  1,
	})
	w.gen++
	if w.abandon != nil {
		close(w.abandon)
		w.abandon = nil
	}
	if w.wedged != nil {
		close(w.wedged)
		w.wedged = nil
	}
	s.cond.Broadcast()
	s.logf("fleet: worker %d wedged (no heartbeat for %v); restarting from last checkpoint", w.id, s.opts.Watchdog)
}
