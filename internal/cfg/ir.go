// Package cfg lowers checked MiniC ASTs into a control-flow-graph
// intermediate representation: per-function basic blocks of simple
// register (slot) instructions with explicit terminators and an
// enumerated edge set.
//
// The edge set is the contract with the instrumentation layer: every
// feedback mechanism (edge coverage, Ball-Larus path profiling, n-gram,
// PathAFL-like) observes execution exclusively through edge traversals,
// function entries, and returns.
package cfg

import (
	"fmt"
	"strings"

	"repro/internal/lang"
)

// Op enumerates instruction opcodes.
type Op int

// Instruction opcodes.
const (
	OpConst   Op = iota // Dst = Imm
	OpStr               // Dst = new array holding bytes of Str
	OpMove              // Dst = slot A
	OpBin               // Dst = A <Sub> B
	OpUn                // Dst = <Sub> A
	OpLoad              // Dst = A[B]
	OpStore             // A[B] = C
	OpCall              // Dst = call Funcs[Callee](Args...)
	OpBuiltin           // Dst = builtin Callee applied to Args...
	OpNop               // no operation; still charged one step
)

// Builtin identifiers for OpBuiltin's Callee field.
const (
	BLen = iota
	BAlloc
	BAssert
	BAbort
	BAbs
	BMin
	BMax
	BOut
)

// BuiltinIDs maps builtin names to OpBuiltin Callee values.
var BuiltinIDs = map[string]int{
	"len":    BLen,
	"alloc":  BAlloc,
	"assert": BAssert,
	"abort":  BAbort,
	"abs":    BAbs,
	"min":    BMin,
	"max":    BMax,
	"out":    BOut,
}

// Instr is a single non-terminator instruction. Operand slots index the
// executing frame; Sub holds the operator for OpBin/OpUn.
type Instr struct {
	Op   Op
	Pos  lang.Pos
	Dst  int
	A    int
	B    int
	C    int
	Imm  int64
	Sub  lang.Kind
	Str  string
	Args []int
	// Callee: function index (OpCall) or builtin id (OpBuiltin).
	Callee int
}

// TermKind enumerates block terminators.
type TermKind int

// Terminator kinds.
const (
	TermJmp TermKind = iota // unconditional branch to Then
	TermBr                  // branch to Then if slot Cond != 0, else Else
	TermRet                 // return slot Val (or 0 when Val < 0)
)

// Term is a basic-block terminator.
type Term struct {
	Kind TermKind
	Pos  lang.Pos
	Cond int
	Then int
	Else int
	Val  int // return slot; -1 means "return 0"
}

// Block is a basic block: straight-line instructions plus a terminator.
type Block struct {
	Instrs []Instr
	Term   Term

	// EdgeThen and EdgeElse index Func.Edges for the outgoing edges of
	// this block's terminator (-1 when absent). They let the VM report
	// traversed edges in O(1).
	EdgeThen int
	EdgeElse int
}

// Edge is a directed CFG edge between block indices.
type Edge struct {
	From int
	To   int
}

// Func is a lowered function.
type Func struct {
	ID      int // index in Program.Funcs
	Name    string
	NParams int
	// NumSlots counts named local slots (params + vars); FrameSize adds
	// the expression temporaries.
	NumSlots  int
	FrameSize int
	Pos       lang.Pos

	Blocks []Block
	// Edges enumerates the CFG edges in a stable order (block order,
	// Then before Else).
	Edges []Edge
	// BackEdge[i] reports whether Edges[i] is a loop back edge (target
	// on the DFS stack when the edge is first traversed from the entry
	// block).
	BackEdge []bool
	// LoopDepth[b] is the number of natural loops containing block b;
	// used by spanning-tree probe placement as a frequency estimate.
	LoopDepth []int
}

// Entry returns the entry block index (always 0 after pruning).
func (f *Func) Entry() int { return 0 }

// NumBackEdges counts loop back edges.
func (f *Func) NumBackEdges() int {
	n := 0
	for _, b := range f.BackEdge {
		if b {
			n++
		}
	}
	return n
}

// RetBlocks returns the indices of blocks terminated by a return.
func (f *Func) RetBlocks() []int {
	var out []int
	for i := range f.Blocks {
		if f.Blocks[i].Term.Kind == TermRet {
			out = append(out, i)
		}
	}
	return out
}

// Program is a fully lowered MiniC program.
type Program struct {
	Funcs []*Func
	// ByName maps function names to Funcs indices.
	ByName map[string]int
	// Source retains the original text for diagnostics.
	Source string
}

// Func returns the lowered function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	if i, ok := p.ByName[name]; ok {
		return p.Funcs[i]
	}
	return nil
}

// NumEdges returns the total number of CFG edges across all functions.
func (p *Program) NumEdges() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Edges)
	}
	return n
}

// NumBlocks returns the total number of basic blocks across functions.
func (p *Program) NumBlocks() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Blocks)
	}
	return n
}

// String names the terminator kind.
func (k TermKind) String() string {
	switch k {
	case TermJmp:
		return "jmp"
	case TermBr:
		return "br"
	case TermRet:
		return "ret"
	}
	return fmt.Sprintf("term%d", int(k))
}

// String renders the function CFG in a compact textual form, mainly for
// tests and debugging. Each block header carries its predecessor list
// and terminator kind; back edges are marked on the terminator line.
func (f *Func) String() string {
	preds := make([][]int, len(f.Blocks))
	for _, e := range f.Edges {
		preds[e.To] = append(preds[e.To], e.From)
	}
	// back marks rendered (From, To) pairs that are loop back edges.
	back := func(ei int) string {
		if ei >= 0 && ei < len(f.BackEdge) && f.BackEdge[ei] {
			return " ; back"
		}
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "func %s #%d params=%d frame=%d\n", f.Name, f.ID, f.NParams, f.FrameSize)
	for i := range f.Blocks {
		blk := &f.Blocks[i]
		fmt.Fprintf(&b, "  b%d: ; preds=[", i)
		for j, p := range preds[i] {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "b%d", p)
		}
		fmt.Fprintf(&b, "] term=%s\n", blk.Term.Kind)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "    %s\n", in.String())
		}
		switch blk.Term.Kind {
		case TermJmp:
			fmt.Fprintf(&b, "    jmp b%d%s\n", blk.Term.Then, back(blk.EdgeThen))
		case TermBr:
			fmt.Fprintf(&b, "    br s%d ? b%d : b%d%s%s\n",
				blk.Term.Cond, blk.Term.Then, blk.Term.Else, back(blk.EdgeThen), back(blk.EdgeElse))
		case TermRet:
			if blk.Term.Val < 0 {
				b.WriteString("    ret\n")
			} else {
				fmt.Fprintf(&b, "    ret s%d\n", blk.Term.Val)
			}
		}
	}
	return b.String()
}

// String renders one instruction.
func (in *Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("s%d = %d", in.Dst, in.Imm)
	case OpStr:
		return fmt.Sprintf("s%d = %q", in.Dst, in.Str)
	case OpMove:
		return fmt.Sprintf("s%d = s%d", in.Dst, in.A)
	case OpBin:
		return fmt.Sprintf("s%d = s%d %s s%d", in.Dst, in.A, in.Sub, in.B)
	case OpUn:
		return fmt.Sprintf("s%d = %s s%d", in.Dst, in.Sub, in.A)
	case OpLoad:
		return fmt.Sprintf("s%d = s%d[s%d]", in.Dst, in.A, in.B)
	case OpStore:
		return fmt.Sprintf("s%d[s%d] = s%d", in.A, in.B, in.C)
	case OpCall:
		return fmt.Sprintf("s%d = call #%d %v", in.Dst, in.Callee, in.Args)
	case OpBuiltin:
		return fmt.Sprintf("s%d = builtin#%d %v", in.Dst, in.Callee, in.Args)
	case OpNop:
		return "nop"
	}
	return fmt.Sprintf("op%d", in.Op)
}
