package campaign

import (
	"bytes"
	"testing"
)

// TestGuidedResumeDeterminism extends the durability guarantee to
// analysis-guided campaigns: Meta.Guide round-trips through the sealed
// checkpoint, and a guided campaign interrupted mid-run and resumed
// with the recorded flag reproduces the uninterrupted guided run
// byte-for-byte.
func TestGuidedResumeDeterminism(t *testing.T) {
	opts := testOpts()
	opts.AnalysisGuide = true
	meta := testMeta()
	meta.Guide = true
	want := baseline(t, opts)

	dir := t.TempDir()
	r := NewRunner(dir, Config{FS: OSFS{}, Interval: testInterval, Keep: 3, StopAfter: testStop})
	if err := r.Start(compileT(t), opts, meta, testSeeds); err != nil {
		t.Fatal(err)
	}
	if _, interrupted, err := r.Run(); err != nil || !interrupted {
		t.Fatalf("expected interruption: interrupted=%v err=%v", interrupted, err)
	}

	ck, warns, err := LoadLatest(OSFS{}, dir)
	if err != nil {
		t.Fatalf("LoadLatest: %v (warnings: %v)", err, warns)
	}
	if !ck.Meta.Guide {
		t.Fatal("Meta.Guide lost in the checkpoint round-trip")
	}

	// Resume the way pafuzz does: the guided flag comes from the
	// checkpoint meta, not from flags.
	resumeOpts := testOpts()
	resumeOpts.AnalysisGuide = ck.Meta.Guide
	r2 := NewRunner(dir, Config{FS: OSFS{}, Interval: testInterval, Keep: 3})
	if err := r2.Attach(compileT(t), resumeOpts, ck); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	rep, interrupted, err := r2.Run()
	if err != nil || interrupted || rep == nil {
		t.Fatalf("resumed run did not complete: interrupted=%v err=%v", interrupted, err)
	}
	got, err := CanonicalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("guided resumed report differs from uninterrupted baseline (%d vs %d canonical bytes)", len(got), len(want))
	}
}
