package lang

import (
	"fmt"
	"strconv"
)

// Error is a frontend diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer turns MiniC source text into a token stream.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the diagnostics accumulated while scanning.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(pos Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next scans and returns the next token. At end of input it returns an
// EOF token (repeatedly, if called again).
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Pos: pos, Text: text}
		}
		return Token{Kind: IDENT, Pos: pos, Text: text}
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '\'':
		return l.scanChar(pos)
	case c == '"':
		return l.scanString(pos)
	}
	l.advance()
	two := func(k Kind) Token {
		l.advance()
		return Token{Kind: k, Pos: pos}
	}
	one := func(k Kind) Token { return Token{Kind: k, Pos: pos} }
	switch c {
	case '(':
		return one(LPAREN)
	case ')':
		return one(RPAREN)
	case '{':
		return one(LBRACE)
	case '}':
		return one(RBRACE)
	case '[':
		return one(LBRACK)
	case ']':
		return one(RBRACK)
	case ',':
		return one(COMMA)
	case ';':
		return one(SEMI)
	case '+':
		return one(PLUS)
	case '-':
		return one(MINUS)
	case '*':
		return one(STAR)
	case '/':
		return one(SLASH)
	case '%':
		return one(PCT)
	case '~':
		return one(TILDE)
	case '^':
		return one(CARET)
	case '&':
		if l.peek() == '&' {
			return two(LAND)
		}
		return one(AMP)
	case '|':
		if l.peek() == '|' {
			return two(LOR)
		}
		return one(PIPE)
	case '=':
		if l.peek() == '=' {
			return two(EQ)
		}
		return one(ASSIGN)
	case '!':
		if l.peek() == '=' {
			return two(NE)
		}
		return one(NOT)
	case '<':
		if l.peek() == '=' {
			return two(LE)
		}
		if l.peek() == '<' {
			return two(SHL)
		}
		return one(LT)
	case '>':
		if l.peek() == '=' {
			return two(GE)
		}
		if l.peek() == '>' {
			return two(SHR)
		}
		return one(GT)
	}
	l.errorf(pos, "illegal character %q", string(c))
	return Token{Kind: ILLEGAL, Pos: pos, Text: string(c)}
}

func (l *Lexer) scanNumber(pos Pos) Token {
	start := l.off
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	text := l.src[start:l.off]
	v, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		// Out-of-range literals are diagnosed but tokenised so parsing
		// can continue.
		l.errorf(pos, "invalid integer literal %q", text)
	}
	return Token{Kind: INT, Pos: pos, Text: text, Val: v}
}

func (l *Lexer) scanChar(pos Pos) Token {
	l.advance() // opening quote
	if l.off >= len(l.src) {
		l.errorf(pos, "unterminated character literal")
		return Token{Kind: ILLEGAL, Pos: pos}
	}
	var v int64
	c := l.advance()
	if c == '\\' {
		if l.off >= len(l.src) {
			l.errorf(pos, "unterminated character literal")
			return Token{Kind: ILLEGAL, Pos: pos}
		}
		e, ok := unescape(l.advance())
		if !ok {
			l.errorf(pos, "unknown escape in character literal")
		}
		v = int64(e)
	} else {
		v = int64(c)
	}
	if l.off >= len(l.src) || l.peek() != '\'' {
		l.errorf(pos, "unterminated character literal")
		return Token{Kind: ILLEGAL, Pos: pos}
	}
	l.advance() // closing quote
	return Token{Kind: INT, Pos: pos, Text: "'" + string(byte(v)) + "'", Val: v}
}

func (l *Lexer) scanString(pos Pos) Token {
	l.advance() // opening quote
	var buf []byte
	for {
		if l.off >= len(l.src) || l.peek() == '\n' {
			l.errorf(pos, "unterminated string literal")
			return Token{Kind: ILLEGAL, Pos: pos}
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if l.off >= len(l.src) {
				l.errorf(pos, "unterminated string literal")
				return Token{Kind: ILLEGAL, Pos: pos}
			}
			e, ok := unescape(l.advance())
			if !ok {
				l.errorf(pos, "unknown escape in string literal")
			}
			buf = append(buf, e)
			continue
		}
		buf = append(buf, c)
	}
	return Token{Kind: STR, Pos: pos, Text: string(buf)}
}

func unescape(c byte) (byte, bool) {
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	}
	return c, false
}

// LexAll scans the entire input, returning every token up to and
// including EOF. It is a convenience for tests and tools.
func LexAll(src string) ([]Token, []error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, l.Errors()
		}
	}
}
