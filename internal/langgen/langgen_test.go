package langgen_test

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/langgen"
)

func TestGenerateDeterministic(t *testing.T) {
	a := langgen.Generate(rand.New(rand.NewSource(9)), langgen.Default())
	b := langgen.Generate(rand.New(rand.NewSource(9)), langgen.Default())
	if a != b {
		t.Error("same seed produced different programs")
	}
	c := langgen.Generate(rand.New(rand.NewSource(10)), langgen.Default())
	if a == c {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		src := langgen.Generate(rand.New(rand.NewSource(seed)), langgen.Default())
		if _, err := cfg.Compile(src); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

func TestGeneratedProgramsHaveMain(t *testing.T) {
	src := langgen.Generate(rand.New(rand.NewSource(1)), langgen.Default())
	p, err := cfg.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Func("main") == nil {
		t.Error("no main function")
	}
	if p.Func("safe_load") == nil {
		t.Error("prelude missing")
	}
}

func TestConfigShapes(t *testing.T) {
	// A bigger config yields (typically) bigger programs.
	small := langgen.Generate(rand.New(rand.NewSource(3)),
		langgen.Config{MaxFuncs: 0, MaxStmts: 1, MaxDepth: 1, MaxExprDepth: 1})
	big := langgen.Generate(rand.New(rand.NewSource(3)),
		langgen.Config{MaxFuncs: 4, MaxStmts: 8, MaxDepth: 4, MaxExprDepth: 4})
	if len(big) <= len(small) {
		t.Errorf("config has no effect on size: %d vs %d", len(small), len(big))
	}
}
