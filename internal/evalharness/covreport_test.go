package evalharness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/strategy"
)

// TestSuiteWritesCovReports: a durable suite drops one coverage
// cartography report per single-phase campaign, every cell resolved;
// round-based strategies (no fixed map layout) are skipped.
func TestSuiteWritesCovReports(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	dir := t.TempDir()
	if _, err := RunSuite(durableCfg(dir, nil)); err != nil {
		t.Fatal(err)
	}

	names, err := os.ReadDir(filepath.Join(dir, covReportDir))
	if err != nil {
		t.Fatalf("covreports dir: %v", err)
	}
	if len(names) != 2 { // 1 subject x {path} x 2 runs; cull has no fixed layout
		t.Fatalf("want 2 coverage reports, got %d", len(names))
	}
	for run := 0; run < 2; run++ {
		path := filepath.Join(dir, covReportDir, covReportFileName("flvmeta", strategy.Path, run))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing coverage report for run %d: %v", run, err)
		}
		text := string(data)
		for _, want := range []string{"unresolved cells: 0", "frontier branches:", "annotated source"} {
			if !strings.Contains(text, want) {
				t.Errorf("%s missing %q", path, want)
			}
		}
	}
}
