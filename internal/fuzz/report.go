package fuzz

import (
	"bytes"
	"sort"

	"repro/internal/journal"
)

// PoisonRec is one quarantined poison-input finding: an input whose
// execution (or the queue-entry boundary right after it) took a worker
// down hard enough that the fleet supervisor had to kill or recycle the
// worker — a panic that escaped the fuzzer's own quarantine, or a wedge
// the watchdog declared. These are fleet-level findings (package fleet
// records them); they live on Report so MergeReports can fold them
// across workers and the evaluation output stays deterministic.
type PoisonRec struct {
	// Worker and Gen identify which worker attempt the input poisoned.
	Worker int
	Gen    int
	// Msg describes the failure ("injected worker panic", "watchdog:
	// wedged 2s", ...). Records are deduplicated by (Msg, Input).
	Msg string
	// Input is the poison input (the entry being fuzzed at failure time).
	Input []byte
	// Execs is the worker execution counter when the input was
	// quarantined; Count how many times the same (Msg, Input) recurred.
	Execs int64
	Count int
}

// Report summarises a finished campaign.
type Report struct {
	// Stats holds the raw counters.
	Stats Stats
	// QueueLen is the final queue size.
	QueueLen int
	// Queue holds the final queue inputs.
	Queue [][]byte
	// FavoredLen is the size of the favored (edge-preserving minimal)
	// corpus at the end of the run.
	FavoredLen int
	// Crashes lists unique crashes (stack-hash top-5 clustering),
	// ordered by discovery.
	Crashes []*CrashRec
	// Bugs maps ground-truth bug keys (site+kind) to a representative
	// crash — the analogue of the paper's manually deduplicated unique
	// bugs.
	Bugs map[string]*CrashRec
	// History samples campaign progress (for the Figure 2
	// reproduction).
	History []HistPoint
	// MapCount is the number of coverage map indices ever touched.
	MapCount int
	// Faults lists quarantined internal faults (interpreter panics the
	// campaign survived); the total count is Stats.InternalFaults.
	Faults []InternalFault
	// Poison lists quarantined poison-input findings (fleet-level worker
	// kills; empty for single-fuzzer campaigns). Canonically sorted by
	// (Worker, Execs, Msg).
	Poison []PoisonRec
	// Corpus lists per-entry provenance (parent lineage, discovery
	// stage, exec index, first-discovered cells) in queue order —
	// always recorded, never gated on journaling, so reports are
	// identical with a journal attached or not. Fleet merges stamp
	// each record's Worker and concatenate in worker order.
	Corpus []journal.CorpusMeta
}

// Report snapshots the campaign state.
func (f *Fuzzer) Report() *Report {
	f.cullFavored()
	r := &Report{
		Stats:      f.stats,
		QueueLen:   len(f.queue),
		Queue:      f.QueueInputs(),
		FavoredLen: f.favoredCount(),
		Bugs:       make(map[string]*CrashRec, len(f.bugs)),
		History:    append([]HistPoint(nil), f.history...),
		MapCount:   len(f.topRated),
		Faults:     append([]InternalFault(nil), f.faults...),
		Corpus:     f.CorpusProvenance(),
	}
	for _, rec := range f.crashes {
		r.Crashes = append(r.Crashes, rec)
	}
	sort.Slice(r.Crashes, func(i, j int) bool { return r.Crashes[i].FoundAt < r.Crashes[j].FoundAt })
	for k, rec := range f.bugs {
		r.Bugs[k] = rec
	}
	return r
}

// BugKeys returns the sorted ground-truth bug keys found. A nil report
// (e.g. an empty or failed campaign) yields nil.
func (r *Report) BugKeys() []string {
	if r == nil || len(r.Bugs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(r.Bugs))
	for k := range r.Bugs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MergeReports folds multiple campaign reports (e.g. the rounds of a
// culling run, or repeated trials) into cumulative crash/bug views.
// Queue/history fields are taken from the last report. Nil reports —
// an empty campaign, a round that never ran — are skipped, and crash
// records without a report attached are ignored rather than
// dereferenced, so merging a degenerate campaign cannot panic.
func MergeReports(reports ...*Report) *Report {
	out := &Report{Bugs: make(map[string]*CrashRec)}
	crashByHash := make(map[uint64]*CrashRec)
	var last *Report
	for _, r := range reports {
		if r == nil {
			continue
		}
		last = r
		out.Stats.Execs += r.Stats.Execs
		out.Stats.Timeouts += r.Stats.Timeouts
		out.Stats.CrashExecs += r.Stats.CrashExecs
		out.Stats.TotalSteps += r.Stats.TotalSteps
		out.Stats.Cycles += r.Stats.Cycles
		out.Stats.Added += r.Stats.Added
		out.Stats.AFLUniqueCrashes += r.Stats.AFLUniqueCrashes
		out.Stats.InternalFaults += r.Stats.InternalFaults
		out.Stats.SeedExecs += r.Stats.SeedExecs
		out.Stats.HavocExecs += r.Stats.HavocExecs
		out.Stats.SpliceExecs += r.Stats.SpliceExecs
		out.Stats.CmplogExecs += r.Stats.CmplogExecs
		for _, rec := range r.Crashes {
			if rec == nil || rec.Crash == nil {
				continue
			}
			h := rec.Crash.StackHash(5)
			if cur, ok := crashByHash[h]; ok {
				cur.Count += rec.Count
			} else {
				cp := *rec
				crashByHash[h] = &cp
			}
		}
		for k, rec := range r.Bugs {
			if rec == nil {
				continue
			}
			if cur, ok := out.Bugs[k]; ok {
				cur.Count += rec.Count
			} else {
				cp := *rec
				out.Bugs[k] = &cp
			}
		}
		for _, fr := range r.Faults {
			merged := false
			for i := range out.Faults {
				if out.Faults[i].Msg == fr.Msg {
					out.Faults[i].Count += fr.Count
					merged = true
					break
				}
			}
			if !merged {
				out.Faults = append(out.Faults, fr)
			}
		}
		for _, pr := range r.Poison {
			merged := false
			for i := range out.Poison {
				if out.Poison[i].Msg == pr.Msg && bytes.Equal(out.Poison[i].Input, pr.Input) {
					out.Poison[i].Count += pr.Count
					merged = true
					break
				}
			}
			if !merged {
				out.Poison = append(out.Poison, pr)
			}
		}
		// Provenance concatenates in input order; fleet callers pass
		// worker reports in worker-id order with Worker stamped, so the
		// merged corpus is canonically (worker, id)-ordered and the
		// merge is deterministic.
		out.Corpus = append(out.Corpus, r.Corpus...)
	}
	// Poison findings sort canonically so fleet-mode evaluation output
	// (eval_output.txt regeneration) is deterministic regardless of the
	// order worker reports were merged in.
	sort.Slice(out.Poison, func(i, j int) bool {
		a, b := out.Poison[i], out.Poison[j]
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		if a.Execs != b.Execs {
			return a.Execs < b.Execs
		}
		return a.Msg < b.Msg
	})
	for _, rec := range crashByHash {
		out.Crashes = append(out.Crashes, rec)
	}
	sort.Slice(out.Crashes, func(i, j int) bool { return out.Crashes[i].FoundAt < out.Crashes[j].FoundAt })
	if last != nil {
		out.QueueLen = last.QueueLen
		out.Queue = last.Queue
		out.FavoredLen = last.FavoredLen
		out.MapCount = last.MapCount
	}
	// Histories concatenate with execution counters made cumulative.
	var base int64
	for _, r := range reports {
		if r == nil {
			continue
		}
		for _, h := range r.History {
			h.Execs += base
			out.History = append(out.History, h)
		}
		if n := len(r.History); n > 0 {
			base += r.History[n-1].Execs
		}
	}
	return out
}
