// Package journal implements the campaign forensics layer: a bounded,
// append-only structured event journal (JSONL segments with schema
// versioning, atomic rotation, and resume-gapless sequence numbers), a
// crash flight recorder (a fixed-size ring of recent events per worker,
// dumped next to each finding), and the corpus-provenance vocabulary
// (CorpusMeta) shared by the fuzzer's reports, paprof's genealogy
// renderers, and the telemetry dashboard.
//
// The package is a leaf: it depends only on the standard library, so
// internal/fuzz can import it without cycles. Everything here is
// display-only — events describe campaign decisions after the fact and
// never feed back into them; a campaign with a journal attached is
// byte-identical to one without.
//
// Events carry no wall-clock timestamps. Campaigns are deterministic in
// execution count, and an event stream keyed by (seq, execs) lets a
// resumed campaign replay to an identical journal tail — a timestamp
// would differ on every run and break the byte-comparison the resume
// determinism suite performs.
package journal

// SchemaVersion is the journal event schema version. Every event line
// records it; readers reject lines with a version they do not know.
const SchemaVersion = 1

// Event kinds. The set mirrors the campaign lifecycle: fuzzer-level
// events (start through finish) are emitted at queue-entry granularity
// by the fuzz loop, fleet-level events (sync through quarantine) by the
// supervisor.
const (
	// KindStart opens a campaign's event stream: feedback, engine, and
	// seed. Emitted once per campaign (never re-emitted on resume).
	KindStart = "start"
	// KindCalibrate records one seed execution (admitted or not).
	KindCalibrate = "calibrate"
	// KindNovelty records a queue admission: the entry id, its parent,
	// the discovering stage, and the map cells it discovered first.
	KindNovelty = "novelty"
	// KindCrash records a new unique crash (new stack hash or new
	// ground-truth bug key); deduplicated re-crashes are not events.
	KindCrash = "crash"
	// KindTimeout records a timeout execution that produced coverage
	// novelty (plain timeouts are counted, not journaled).
	KindTimeout = "timeout"
	// KindFault records a new quarantined internal fault (interpreter
	// panic survived by the campaign).
	KindFault = "fault"
	// KindCycle marks a queue-cycle start.
	KindCycle = "cycle"
	// KindReplan records a CGT probe-elision replan at a cycle start.
	KindReplan = "replan"
	// KindFinish closes a completed campaign (budget reached).
	KindFinish = "finish"
	// KindSync records one fleet corpus-sync epoch for one worker.
	KindSync = "sync"
	// KindRecycle records a worker restart after a failed attempt.
	KindRecycle = "recycle"
	// KindRetire records a worker retirement (restart budget exhausted).
	KindRetire = "retire"
	// KindWedge records a watchdog wedge declaration.
	KindWedge = "wedge"
	// KindQuarantine records a poison-input quarantine.
	KindQuarantine = "quarantine"
)

// KnownKinds is the schema's event-kind vocabulary, used by Validate.
var KnownKinds = map[string]bool{
	KindStart: true, KindCalibrate: true, KindNovelty: true,
	KindCrash: true, KindTimeout: true, KindFault: true,
	KindCycle: true, KindReplan: true, KindFinish: true,
	KindSync: true, KindRecycle: true, KindRetire: true,
	KindWedge: true, KindQuarantine: true,
}

// Event is one journal line. The schema is flat: a fixed header (Seq,
// V, Kind, Worker, Execs) plus per-kind payload fields that marshal
// only when set, so every kind shares one Go type and the JSONL stays
// self-describing. Deliberately no time.Time anywhere (see the package
// comment).
type Event struct {
	// Seq is the journal-assigned sequence number: strictly increasing
	// by one across segment rotations and resumes (gapless).
	Seq uint64 `json:"seq"`
	// V is the schema version (SchemaVersion at write time).
	V int `json:"v"`
	// Kind is one of the Kind constants.
	Kind string `json:"kind"`
	// Worker is the fleet worker id (0 for single campaigns).
	Worker int `json:"worker"`
	// Gen is the worker attempt generation (fleet recycles bump it).
	Gen int `json:"gen,omitempty"`
	// Execs is the emitting campaign's execution counter.
	Execs int64 `json:"execs"`

	// Stage attributes the event to the mutation stage that issued the
	// triggering execution (seed|havoc|splice|cmplog).
	Stage string `json:"stage,omitempty"`
	// Entry is the queue entry id a novelty event admitted.
	Entry *int `json:"entry,omitempty"`
	// Parent is the admitted entry's parent id (-1 for seeds).
	Parent *int `json:"parent,omitempty"`
	// Depth is the entry's mutation-chain depth.
	Depth int `json:"depth,omitempty"`
	// Steps is the execution cost of the triggering run.
	Steps int64 `json:"steps,omitempty"`
	// Len is the input length involved, in bytes.
	Len int `json:"len,omitempty"`
	// Cells lists the coverage-map cells this entry discovered first
	// (the feedback-kind-specific map cell / path ids).
	Cells []uint32 `json:"cells,omitempty"`
	// Cov is a coverage count (entry sparse-cov size, or the campaign
	// covered-cell total on cycle/finish events).
	Cov int `json:"cov,omitempty"`
	// Queue is the queue length at emission.
	Queue int `json:"queue,omitempty"`
	// Cycle is the queue-cycle ordinal.
	Cycle int `json:"cycle,omitempty"`
	// Crashes / Bugs are unique-crash and unique-bug totals.
	Crashes int `json:"crashes,omitempty"`
	Bugs    int `json:"bugs,omitempty"`
	// Hash is the crash stack hash (hex).
	Hash string `json:"hash,omitempty"`
	// Bug is the ground-truth bug key.
	Bug string `json:"bug,omitempty"`
	// Msg carries free-form detail (fault/wedge/recycle reasons,
	// calibration status).
	Msg string `json:"msg,omitempty"`
	// Epoch / Published / Imported describe one fleet sync point.
	Epoch     int `json:"epoch,omitempty"`
	Published int `json:"published,omitempty"`
	Imported  int `json:"imported,omitempty"`
	// Elided / Sites describe a CGT replan (elided probe sites out of
	// the patchable total).
	Elided int `json:"elided,omitempty"`
	Sites  int `json:"sites,omitempty"`
	// Feedback / Engine / Seed identify the campaign on start events.
	Feedback string `json:"feedback,omitempty"`
	Engine   string `json:"engine,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	// Status is the execution status string on calibrate events.
	Status string `json:"status,omitempty"`
	// Admitted marks calibrate events whose seed entered the queue.
	Admitted bool `json:"admitted,omitempty"`
}

// Int returns a pointer to v, for the optional id fields (Entry,
// Parent) where 0 and -1 are meaningful values that omitempty would
// otherwise swallow.
func Int(v int) *int { return &v }

// SanitizeName maps an arbitrary key to a safe filename: characters
// outside [a-zA-Z0-9._-] become '_', and the result is capped at 128
// bytes. Mirrors the campaign findings-directory convention so flight
// dumps sit next to their crash inputs under matching names.
func SanitizeName(s string) string {
	if s == "" {
		return "x"
	}
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_':
		default:
			b[i] = '_'
		}
	}
	if len(b) > 128 {
		b = b[:128]
	}
	return string(b)
}
