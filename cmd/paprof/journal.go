// The forensics modes of paprof: `-journal` validates and summarises a
// campaign's structured event journal; `-genealogy` renders corpus
// provenance (genealogy DAG, per-stage discovery attribution, path
// rarity) from a campaign's checkpoints. Both work offline from the
// state directory alone — no target compilation, no re-execution.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/campaign"
	"repro/internal/fleet"
	"repro/internal/fuzz"
	"repro/internal/journal"
)

// resolveJournalDir accepts either a campaign state directory or the
// journal directory itself.
func resolveJournalDir(dir string) string {
	if _, err := os.Stat(filepath.Join(dir, "journal")); err == nil {
		return filepath.Join(dir, "journal")
	}
	return dir
}

// runJournal reads, validates, and summarises a journal directory. The
// exit code is the validation verdict — the CI smoke job greps nothing,
// it just runs this and checks the status.
func runJournal(dir string) {
	jdir := resolveJournalDir(dir)
	events, diag, err := journal.ReadDir(jdir)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("journal %s: %d segments, %d events, seq %d..%d\n",
		diag.Dir, diag.Segments, diag.Events, diag.FirstSeq, diag.LastSeq)
	for _, t := range diag.Torn {
		fmt.Printf("  torn (recoverable): %s\n", t)
	}
	counts := journal.KindCounts(events)
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-12s %d\n", k, counts[k])
	}
	if len(events) > 0 {
		fmt.Println()
		journal.EventAttribution(os.Stdout, events)
	}
	if flights, _ := filepath.Glob(filepath.Join(jdir, journal.FlightDir, "*.jsonl")); len(flights) > 0 {
		fmt.Printf("\nflight-recorder dumps:\n")
		for _, f := range flights {
			fmt.Printf("  %s\n", f)
		}
	}
	if !diag.OK() {
		for _, e := range diag.Errors {
			fmt.Fprintf(os.Stderr, "paprof: journal error: %s\n", e)
		}
		for _, g := range diag.Gaps {
			fmt.Fprintf(os.Stderr, "paprof: journal gap: %s\n", g)
		}
		os.Exit(1)
	}
	fmt.Println("\njournal OK (gapless, schema-clean)")
}

// runGenealogy loads corpus provenance from a campaign (or fleet) state
// directory's checkpoints and renders the genealogy DAG, per-stage
// discovery-attribution table, and path-rarity histogram. With htmlOut
// the same report is written as a self-contained HTML page.
func runGenealogy(dir, htmlOut string) {
	corpus, meta, label := loadProvenance(dir)
	if len(corpus) == 0 {
		fatalf("no corpus provenance under %s (no usable checkpoint?)", dir)
	}
	// The journal stream is optional garnish here: provenance lives in
	// the checkpoints, but event-based attribution is shown when a
	// journal is present.
	var events []journal.Event
	if jdir := filepath.Join(dir, "journal"); dirExists(jdir) {
		events, _, _ = journal.ReadDir(jdir)
	}
	// The cell resolver is best-effort: genealogy must keep working for
	// campaigns whose map layout cannot be reconstructed (multi-phase
	// strategies, drifted sources) — those just render raw cell indices.
	var resolve journal.CellResolver
	if ix, err := cartographyIndex(meta); err == nil {
		resolve = ix.CellLabel
	} else {
		fmt.Fprintf(os.Stderr, "paprof: no cell attribution: %v\n", err)
	}
	journal.Attribution(os.Stdout, label, corpus)
	fmt.Println()
	journal.Rarity(os.Stdout, corpus)
	fmt.Println()
	journal.Genealogy(os.Stdout, corpus)
	if len(events) > 0 {
		fmt.Println()
		journal.EventAttribution(os.Stdout, events)
		fmt.Println()
		journal.CoverageDelta(os.Stdout, events, resolve)
	}
	if htmlOut != "" {
		page := journal.HTMLReport("paprof genealogy", label, corpus, events, resolve)
		if err := os.WriteFile(htmlOut, page, 0o644); err != nil {
			fatalf("writing %s: %v", htmlOut, err)
		}
		fmt.Printf("\nHTML report: %s\n", htmlOut)
	}
}

// loadProvenance reads corpus provenance from the newest checkpoint(s)
// under dir: every worker-N/ subdirectory for fleet state directories,
// the directory itself otherwise. The campaign metadata rides along so
// callers can reconstruct the coverage-map layout.
func loadProvenance(dir string) (corpus []journal.CorpusMeta, meta campaign.Meta, label string) {
	fs := campaign.OSFS{}
	if fleet.HasManifest(fs, dir) {
		man, err := fleet.LoadManifest(fs, dir)
		if err != nil {
			fatalf("fleet manifest: %v", err)
		}
		for i := 0; i < man.Workers; i++ {
			wdir := filepath.Join(dir, fmt.Sprintf("worker-%d", i))
			ck, warns, err := campaign.LoadLatest(fs, wdir)
			for _, w := range warns {
				fmt.Fprintf(os.Stderr, "paprof: worker %d: %s\n", i, w)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "paprof: worker %d: %v\n", i, err)
				continue
			}
			corpus = append(corpus, fuzz.SnapshotProvenance(ck.Snap, i)...)
		}
		return corpus, man.Meta, metaLabel(man.Meta) + " (fleet)"
	}
	ck, warns, err := campaign.LoadLatest(fs, dir)
	for _, w := range warns {
		fmt.Fprintf(os.Stderr, "paprof: %s\n", w)
	}
	if err != nil {
		fatalf("%v", err)
	}
	return fuzz.SnapshotProvenance(ck.Snap, 0), ck.Meta, metaLabel(ck.Meta)
}

func metaLabel(meta campaign.Meta) string {
	name := meta.Subject
	if name == "" {
		name = filepath.Base(meta.Source)
	}
	return name + "/" + meta.Fuzzer
}

func dirExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
