package strategy

import (
	"repro/internal/cfg"
	"repro/internal/fuzz"
	"repro/internal/instrument"
)

// Extension configurations implementing the future-work directions the
// paper sketches but does not evaluate. They are not part of AllNames
// (the paper's seven configurations) but run through the same driver
// machinery and are exercised by the ablation benches.
const (
	// Interleave alternates edge-based "exploration" rounds with
	// path-aware "exploitation" rounds (§V-C future work), carrying an
	// edge-preserving minimal queue across round boundaries.
	Interleave Name = "interleave"
	// Path2 runs the baseline driver with the 2-grams-of-paths
	// feedback (§VII future work).
	Path2 Name = "path2"
	// Selective runs the baseline driver with per-function selective
	// path sensitivity (§VI).
	Selective Name = "selective"
)

// ExtensionNames lists the extension configurations.
var ExtensionNames = []Name{Interleave, Path2, Selective}

// RunExtension dispatches an extension configuration; it also accepts
// the standard names, so callers can treat the union uniformly.
func RunExtension(name Name, prog *cfg.Program, cfgr Config) (*Outcome, error) {
	switch name {
	case Interleave:
		return RunInterleave(prog, cfgr)
	case Path2:
		cfgr.Opts.Feedback = instrument.FeedbackPath2
		return runSingle(prog, cfgr)
	case Selective:
		cfgr.Opts.Feedback = instrument.FeedbackSelective
		return runSingle(prog, cfgr)
	default:
		return Run(name, prog, cfgr)
	}
}

// RunInterleave alternates exploration (edge) and exploitation (path)
// rounds. Between rounds the queue is culled edge-preservingly, exactly
// as the culling driver does, so each stage starts from a compact
// corpus that still covers everything known.
func RunInterleave(prog *cfg.Program, c Config) (*Outcome, error) {
	remaining := c.Budget
	rb := c.roundBudget()
	seeds := c.Seeds
	var reports []*fuzz.Report
	var cullCost int64
	rounds := 0
	for remaining > 0 {
		budget := rb
		if budget > remaining || remaining-budget < rb/2 {
			budget = remaining
		}
		opts := c.Opts
		if rounds%2 == 0 {
			opts.Feedback = instrument.FeedbackEdge
		} else {
			opts.Feedback = instrument.FeedbackPath
		}
		opts.Seed = c.Opts.Seed*31 + int64(rounds)
		f, err := newFuzzer(prog, opts, seeds)
		if err != nil {
			return nil, err
		}
		f.Fuzz(budget)
		rep := f.Report()
		reports = append(reports, rep)
		rounds++
		remaining -= rep.Stats.Execs
		if remaining <= 0 {
			break
		}
		queue := f.QueueInputs()
		culled := fuzz.MinimizeCorpus(prog, queue, c.Opts.Entry, c.Opts.Limits)
		cullCost += int64(len(queue))
		remaining -= int64(len(queue))
		if len(culled) == 0 {
			culled = seeds
		}
		seeds = culled
	}
	return &Outcome{Report: fuzz.MergeReports(reports...), Rounds: rounds, CullCost: cullCost}, nil
}
