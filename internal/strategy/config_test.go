package strategy

import "testing"

func TestRoundBudgetDefaults(t *testing.T) {
	// Explicit round budget wins.
	c := Config{Budget: 1000, RoundBudget: 100}
	if c.roundBudget() != 100 {
		t.Errorf("explicit round budget ignored")
	}
	// Default is budget/8 (the 6-hours-of-48 analogue).
	c = Config{Budget: 800}
	if c.roundBudget() != 100 {
		t.Errorf("default round budget = %d, want 100", c.roundBudget())
	}
	// Tiny budgets degenerate to a single round.
	c = Config{Budget: 4}
	if c.roundBudget() != 4 {
		t.Errorf("tiny budget round = %d, want 4", c.roundBudget())
	}
}

func TestAllNamesStable(t *testing.T) {
	want := []Name{Path, PCGuard, Cull, Opp, CullR, PathAFL, AFL}
	if len(AllNames) != len(want) {
		t.Fatalf("AllNames has %d entries", len(AllNames))
	}
	for i, n := range want {
		if AllNames[i] != n {
			t.Errorf("AllNames[%d] = %s, want %s", i, AllNames[i], n)
		}
	}
	// Extensions stay out of the paper's configuration list.
	for _, ext := range ExtensionNames {
		for _, n := range AllNames {
			if ext == n {
				t.Errorf("extension %s leaked into AllNames", ext)
			}
		}
	}
}

func TestUnknownNameError(t *testing.T) {
	err := &UnknownNameError{Name: "wat"}
	if err.Error() == "" || err.Error() == "wat" {
		t.Errorf("error text: %q", err.Error())
	}
}
