// Package interproc is the interprocedural layer over the analysis
// package: a call-graph-based summary framework (bottom-up SCC order,
// context-insensitive function summaries, whole-program fixpoint over
// recursive components) with two concrete analyses — input-dependency
// (taint) tracking which values derive from which input bytes, and
// branch correlation proving some Ball-Larus acyclic paths infeasible.
//
// The facts it produces feed three consumers: the fuzzer's opt-in
// analysis-guided mode (mutation byte masks, power-schedule boosts,
// cmplog skip lists, never-hit path cells for CGT elision), three
// palint checks, and the paprof -facts inspection dump.
//
// Soundness contract: dependency is OVER-approximated (every byte that
// can influence a branch outcome at runtime is in the branch's static
// byte set) and infeasibility is UNDER-approximated (a path is
// reported infeasible only when no execution can record its ID). The
// fuzz-level soundness suites pin both directions.
package interproc

import (
	"repro/internal/analysis"
	"repro/internal/cfg"
)

// TV is the input-dependency lattice value of one abstract value.
//
// Dep says the value may be influenced by the input in ANY way —
// content, length, or merely which control path produced it. Bytes
// narrows the content part: the input byte offsets the value may
// derive from (so Dep with empty Bytes means the influence flows only
// through the input's length or through control decisions, which
// length-preserving byte mutations cannot exploit). LenVal marks a
// direct data-flow dependency on len(input); unlike Dep it does NOT
// propagate through control context, so a loop counter that merely
// runs under a length guard stays LenVal-free while len(input) itself
// and arithmetic over it carry the bit. MayInput/MayArr track whether
// the value may hold the input array handle / any other array handle,
// which decides how loads and stores through it move taint.
type TV struct {
	Dep      bool
	Bytes    ByteSet
	LenVal   bool
	MayInput bool
	MayArr   bool
}

// joinWith folds o into v, reporting whether v changed.
func (v *TV) joinWith(o *TV) bool {
	changed := false
	if o.Dep && !v.Dep {
		v.Dep = true
		changed = true
	}
	if v.Bytes.UnionWith(&o.Bytes) {
		v.Dep = true
		changed = true
	}
	if o.LenVal && !v.LenVal {
		v.LenVal = true
		changed = true
	}
	if o.MayInput && !v.MayInput {
		v.MayInput = true
		changed = true
	}
	if o.MayArr && !v.MayArr {
		v.MayArr = true
		changed = true
	}
	return changed
}

// ContentDep reports whether the value may derive from input CONTENT
// (some byte offset), as opposed to length or control presence only.
func (v *TV) ContentDep() bool { return !v.Bytes.Empty() }

// taint is the whole-program input-dependency solver: a block-level
// flow-sensitive dataflow inside each function (expression temporaries
// are heavily reused across slots, so flow-insensitive slot summaries
// would smear unrelated taints together), composed with flow-
// insensitive context-insensitive function summaries across calls.
type taint struct {
	prog    *cfg.Program
	cg      *CallGraph
	entryID int
	// ivs caches the per-function interval analyses; index intervals at
	// load sites translate into byte ranges.
	ivs []*analysis.Intervals
	// cdep[fn][b] over-approximates the branch blocks b is (transitively)
	// control-dependent on: branches from which b is reachable and which
	// b does not post-dominate.
	cdep [][][]int

	// tin[fn][b] is the per-slot taint state at block b's entry.
	tin [][][]TV
	// condTV[fn][b] is the branch condition's taint at block b's
	// terminator (TermBr blocks only), the input to control contexts.
	condTV [][]TV
	// param[fn][i] joins the argument taints over every call site of fn.
	param [][]TV
	// ret[fn] summarizes fn's return value, including the implicit
	// dependency on which return statement executed.
	ret []TV
	// ctrlIn[fn] joins the callers' control contexts at fn's call
	// sites: input bytes that decide whether an activation of fn happens
	// at all.
	ctrlIn []TV

	// heap summarizes every value stored into any non-input array
	// (single-cell heap model); inputStored summarizes values possibly
	// stored INTO the input array (so input loads stay sound when the
	// program overwrites its input); allocLen summarizes dynamic
	// allocation sizes (what len() of a non-input array may depend on).
	heap        TV
	inputStored TV
	allocLen    TV

	changed bool
}

func newTaint(p *cfg.Program, cg *CallGraph, entryID int) *taint {
	t := &taint{prog: p, cg: cg, entryID: entryID}
	t.ivs = make([]*analysis.Intervals, len(p.Funcs))
	t.cdep = make([][][]int, len(p.Funcs))
	t.tin = make([][][]TV, len(p.Funcs))
	t.condTV = make([][]TV, len(p.Funcs))
	t.param = make([][]TV, len(p.Funcs))
	t.ret = make([]TV, len(p.Funcs))
	t.ctrlIn = make([]TV, len(p.Funcs))
	for fi, f := range p.Funcs {
		t.ivs[fi] = analysis.IntervalsOf(f)
		t.cdep[fi] = controlDeps(f)
		t.tin[fi] = make([][]TV, len(f.Blocks))
		for b := range f.Blocks {
			t.tin[fi][b] = make([]TV, f.FrameSize)
		}
		t.condTV[fi] = make([]TV, len(f.Blocks))
		t.param[fi] = make([]TV, f.NParams)
	}
	if entryID >= 0 && len(t.param[entryID]) > 0 {
		// The entry function's first parameter is the input array.
		t.param[entryID][0].MayInput = true
	}
	return t
}

// controlDeps over-approximates transitive control dependence: block b
// depends on branch u when b is reachable from u and does not
// post-dominate it. (Exact control dependence is a subset; the
// over-approximation is sound for dependency masks and cheap to
// compute from forward reachability plus the post-dominator tree.)
func controlDeps(f *cfg.Func) [][]int {
	n := len(f.Blocks)
	out := make([][]int, n)
	if n == 0 {
		return out
	}
	pdom := analysis.PostDominators(f)
	succs := analysis.Succs(f)
	// reach[u] = blocks reachable from u (excluding u unless cyclic).
	reach := make([]analysis.BitSet, n)
	for u := 0; u < n; u++ {
		reach[u] = analysis.NewBitSet(n)
		stack := []int{u}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range succs[v] {
				if !reach[u].Has(w) {
					reach[u].Set(w)
					stack = append(stack, w)
				}
			}
		}
	}
	for b := 0; b < n; b++ {
		for u := 0; u < n; u++ {
			if f.Blocks[u].Term.Kind != cfg.TermBr {
				continue
			}
			if (u == b || reach[u].Has(b)) && !analysis.Dominates(pdom, b, u) {
				out[b] = append(out[b], u)
			}
		}
	}
	return out
}

// join folds o into dst, recording global change.
func (t *taint) join(dst *TV, o *TV) {
	if dst.joinWith(o) {
		t.changed = true
	}
}

// ctrlLocal joins the condition taints of every branch block b is
// control-dependent on (intra-procedural part only). Control context
// carries Dep and content Bytes — which values a def takes can be
// selected by the condition — but not LenVal (a def under a length
// guard does not become length-valued) and not the handle bits.
func (t *taint) ctrlLocal(fi, b int) TV {
	var out TV
	for _, u := range t.cdep[fi][b] {
		out.joinWith(&t.condTV[fi][u])
	}
	out.LenVal = false
	out.MayInput = false
	out.MayArr = false
	return out
}

// Solve runs the whole-program fixpoint: functions in bottom-up SCC
// order per round, rounds until nothing changes. All lattice moves are
// monotone over finite domains (ByteSet range lists are capped), so
// termination is structural; the round cap is a defensive backstop.
func (t *taint) Solve() {
	for round := 0; round < 10000; round++ {
		t.changed = false
		for _, scc := range t.cg.SCCs {
			for _, fi := range scc {
				t.doFunc(fi)
			}
		}
		if !t.changed {
			return
		}
	}
}

// doFunc applies one flow-sensitive sweep over fn's reachable blocks,
// propagating entry states along interval-feasible edges.
func (t *taint) doFunc(fi int) {
	f := t.prog.Funcs[fi]
	ii := t.ivs[fi]
	entry := t.tin[fi][f.Entry()]
	for s := 0; s < f.NParams && s < len(entry); s++ {
		t.join(&entry[s], &t.param[fi][s])
	}
	env := analysis.NewEnv(f.FrameSize)
	cur := make([]TV, f.FrameSize)
	for _, b := range analysis.ReversePostorder(f) {
		if !ii.Reached[b] {
			continue
		}
		blk := &f.Blocks[b]
		ctrl := t.ctrlLocal(fi, b)
		ctrl.joinWith(&t.ctrlIn[fi])
		ctrl.LenVal, ctrl.MayInput, ctrl.MayArr = false, false, false
		copy(cur, t.tin[fi][b])
		env.CopyFrom(&ii.In[b])
		faulted := false
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if !t.stepTaint(fi, cur, &env, in, &ctrl) {
				// Guaranteed fault: the rest of the block (and its
				// terminator) never runs.
				faulted = true
				break
			}
		}
		if faulted {
			continue
		}
		switch blk.Term.Kind {
		case cfg.TermBr:
			t.join(&t.condTV[fi][b], &cur[blk.Term.Cond])
			if blk.EdgeThen >= 0 && ii.EdgeFeasible[blk.EdgeThen] {
				t.flowInto(fi, blk.Term.Then, cur)
			}
			if blk.EdgeElse >= 0 && ii.EdgeFeasible[blk.EdgeElse] {
				t.flowInto(fi, blk.Term.Else, cur)
			}
		case cfg.TermJmp:
			t.flowInto(fi, blk.Term.Then, cur)
		case cfg.TermRet:
			rv := t.ctrlLocal(fi, b)
			if blk.Term.Val >= 0 {
				rv.joinWith(&cur[blk.Term.Val])
			}
			t.join(&t.ret[fi], &rv)
		}
	}
}

// flowInto joins the block-exit state into a successor's entry state.
func (t *taint) flowInto(fi, succ int, cur []TV) {
	dst := t.tin[fi][succ]
	for i := range cur {
		t.join(&dst[i], &cur[i])
	}
}

// stepTaint applies one instruction's taint transfer to cur (and
// advances the interval environment). It returns false when the
// instruction is a guaranteed fault.
func (t *taint) stepTaint(fi int, cur []TV, env *analysis.Env, in *cfg.Instr, ctrl *TV) bool {
	switch in.Op {
	case cfg.OpConst:
		cur[in.Dst] = *ctrl
	case cfg.OpStr:
		v := TV{MayArr: true}
		v.joinWith(ctrl)
		cur[in.Dst] = v
	case cfg.OpMove:
		v := cur[in.A]
		v.joinWith(ctrl)
		cur[in.Dst] = v
	case cfg.OpBin:
		v := cur[in.A]
		v.joinWith(&cur[in.B])
		v.joinWith(ctrl)
		v.MayInput, v.MayArr = false, false
		cur[in.Dst] = v
	case cfg.OpUn:
		v := cur[in.A]
		v.joinWith(ctrl)
		v.MayInput, v.MayArr = false, false
		cur[in.Dst] = v
	case cfg.OpLoad:
		// Which cell is read depends on the index and on the handle, so
		// both taints flow into the result.
		h := cur[in.A]
		v := cur[in.B]
		v.joinWith(&h)
		v.joinWith(ctrl)
		v.MayInput, v.MayArr, v.LenVal = false, false, cur[in.B].LenVal
		if h.MayInput {
			bs := FromInterval(env.Val[in.B])
			w := TV{Dep: !bs.Empty(), Bytes: bs}
			v.joinWith(&w)
			// If the program may have overwritten its input array, the
			// loaded value also carries whatever was stored there.
			v.joinWith(&t.inputStored)
		}
		if h.MayArr {
			v.joinWith(&t.heap)
		}
		cur[in.Dst] = v
	case cfg.OpStore:
		v := cur[in.C]
		v.joinWith(&cur[in.B])
		v.joinWith(&cur[in.A])
		v.joinWith(ctrl)
		v.MayInput, v.MayArr = false, false
		h := &cur[in.A]
		if h.MayArr || !h.MayInput {
			// Unknown handles default to the heap summary.
			t.join(&t.heap, &v)
		}
		if h.MayInput {
			t.join(&t.inputStored, &v)
		}
	case cfg.OpCall:
		if in.Callee >= 0 && in.Callee < len(t.prog.Funcs) {
			callee := in.Callee
			for i, a := range in.Args {
				if i < len(t.param[callee]) {
					// Arguments carry their data taint plus the caller's
					// control context: input may select WHICH call site
					// (and thus which argument value) executes.
					av := cur[a]
					av.joinWith(ctrl)
					t.join(&t.param[callee][i], &av)
				}
			}
			t.join(&t.ctrlIn[callee], ctrl)
			v := t.ret[callee]
			v.joinWith(ctrl)
			cur[in.Dst] = v
		} else {
			v := *ctrl
			v.Dep, v.Bytes, v.LenVal = true, ByteSet{All: true}, true
			cur[in.Dst] = v
		}
	case cfg.OpBuiltin:
		var v TV
		v.joinWith(ctrl)
		for _, a := range in.Args {
			v.joinWith(&cur[a])
		}
		v.MayInput, v.MayArr = false, false
		switch in.Callee {
		case cfg.BLen:
			if len(in.Args) > 0 {
				h := cur[in.Args[0]]
				if h.MayInput {
					// len(input): dependent through length only.
					w := TV{Dep: true, LenVal: true}
					v.joinWith(&w)
				}
				if h.MayArr {
					v.joinWith(&t.allocLen)
				}
			}
		case cfg.BAlloc:
			t.join(&t.allocLen, &v)
			v.MayArr = true
		}
		cur[in.Dst] = v
	}
	return t.ivs[fi].StepInstr(env, in) == ""
}
