// Package evalharness runs the paper's evaluation end to end: multi-run
// campaigns for every ⟨subject, fuzzer⟩ pair, with renderers that
// regenerate each table and figure of the paper from the collected
// data. Budgets are execution counts (the deterministic analogue of the
// paper's 48-hour runs); campaigns are independent and run in parallel
// across a worker pool, while each individual campaign is fully
// deterministic given its seed.
package evalharness

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/strategy"
	"repro/internal/subjects"
	"repro/internal/triage"
	"repro/internal/vm"
)

// Config parameterises a suite run.
type Config struct {
	// Subjects to evaluate (default: all 18).
	Subjects []string
	// Fuzzers to evaluate (default: all 7 configurations).
	Fuzzers []strategy.Name
	// Runs per pair (the paper uses 10).
	Runs int
	// Budget is the per-run execution budget (the 48-hour analogue).
	Budget int64
	// RoundBudget is the culling round length (default Budget/8, the
	// 6-hours-of-48 analogue).
	RoundBudget int64
	// MapSize overrides the coverage map size.
	MapSize int
	// BaseSeed seeds run r of every campaign with BaseSeed+r.
	BaseSeed int64
	// Workers caps parallelism (default NumCPU).
	Workers int
	// Progress, when non-nil, receives one line per finished campaign.
	Progress io.Writer
	// StateDir, when non-empty, makes the suite durable: every finished
	// campaign is persisted under StateDir/runs/, and a restarted suite
	// reloads finished runs instead of recomputing them. Saved runs from
	// a different configuration (budget, seed, map size) are ignored.
	StateDir string
	// FS is the filesystem used for durable state (default campaign.OSFS;
	// tests inject fault filesystems).
	FS campaign.FS
	// Engine selects the execution engine for every campaign
	// (fuzz.EngineAuto by default: bytecode with interpreter fallback).
	Engine fuzz.Engine
	// Instr tunes instrumentation construction for every campaign
	// (analysis strictness, optimizer toggle).
	Instr instrument.Config
}

func (c Config) withDefaults() Config {
	if len(c.Subjects) == 0 {
		c.Subjects = subjects.Names()
	}
	if len(c.Fuzzers) == 0 {
		c.Fuzzers = strategy.AllNames
	}
	if c.Runs <= 0 {
		c.Runs = 10
	}
	if c.Budget <= 0 {
		c.Budget = 100000
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.FS == nil {
		c.FS = campaign.OSFS{}
	}
	return c
}

// RunResult is one finished campaign.
type RunResult struct {
	Subject string
	Fuzzer  strategy.Name
	Run     int
	Report  *fuzz.Report
	// Phase1 is the edge phase of an opp run (nil otherwise).
	Phase1 *fuzz.Report
	Rounds int
	// EdgeSet is the exact edge coverage of the final queue (the
	// afl-showmap replay).
	EdgeSet triage.Set[uint32]
}

// SuiteResult aggregates a full evaluation.
type SuiteResult struct {
	Cfg Config
	// Results[subject][fuzzer] has Cfg.Runs entries.
	Results map[string]map[strategy.Name][]*RunResult
	// Provenance: the toolchain and host the suite ran on, and its
	// wall-clock duration (restored runs make this smaller than the sum
	// of run durations).
	GoVersion string
	Host      string
	Elapsed   time.Duration
}

// Runs returns the runs for one pair (nil if absent).
func (s *SuiteResult) Runs(subject string, f strategy.Name) []*RunResult {
	m, ok := s.Results[subject]
	if !ok {
		return nil
	}
	return m[f]
}

// CumulativeBugs unions the ground-truth bug sets across runs.
func (s *SuiteResult) CumulativeBugs(subject string, f strategy.Name) triage.Set[string] {
	out := triage.NewSet[string]()
	for _, rr := range s.Runs(subject, f) {
		for k := range triage.BugSet(rr.Report) {
			out.Add(k)
		}
	}
	return out
}

// CumulativeCrashes unions stack-hash crash sets across runs.
func (s *SuiteResult) CumulativeCrashes(subject string, f strategy.Name) triage.Set[uint64] {
	out := triage.NewSet[uint64]()
	for _, rr := range s.Runs(subject, f) {
		for k := range triage.CrashSet(rr.Report) {
			out.Add(k)
		}
	}
	return out
}

// CumulativeEdges unions exact edge coverage across runs.
func (s *SuiteResult) CumulativeEdges(subject string, f strategy.Name) triage.Set[uint32] {
	out := triage.NewSet[uint32]()
	for _, rr := range s.Runs(subject, f) {
		for k := range rr.EdgeSet {
			out.Add(k)
		}
	}
	return out
}

// AllBugs unions every fuzzer's cumulative bugs on a subject.
func (s *SuiteResult) AllBugs(subject string) triage.Set[string] {
	out := triage.NewSet[string]()
	for _, f := range s.Cfg.Fuzzers {
		for k := range s.CumulativeBugs(subject, f) {
			out.Add(k)
		}
	}
	return out
}

// RunSuite executes the configured campaigns.
func RunSuite(cfg Config) (*SuiteResult, error) {
	cfg = cfg.withDefaults()
	suiteStart := time.Now()
	host, _ := os.Hostname()
	sr := &SuiteResult{
		Cfg:       cfg,
		Results:   make(map[string]map[strategy.Name][]*RunResult),
		GoVersion: runtime.Version(),
		Host:      host,
	}

	type job struct {
		subject string
		fuzzer  strategy.Name
		run     int
	}
	var jobs []job
	for _, sub := range cfg.Subjects {
		if subjects.Get(sub) == nil {
			return nil, fmt.Errorf("evalharness: unknown subject %q", sub)
		}
		sr.Results[sub] = make(map[strategy.Name][]*RunResult)
		for _, f := range cfg.Fuzzers {
			sr.Results[sub][f] = make([]*RunResult, cfg.Runs)
			for r := 0; r < cfg.Runs; r++ {
				jobs = append(jobs, job{subject: sub, fuzzer: f, run: r})
			}
		}
	}

	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		firstEr error
		ch      = make(chan job)
	)
	worker := func() {
		defer wg.Done()
		for j := range ch {
			var (
				rr     *RunResult
				err    error
				how    = "done"
				saveEr error
			)
			if cfg.StateDir != "" {
				rr = loadRun(cfg, j.subject, j.fuzzer, j.run)
			}
			if rr != nil {
				how = "restored"
			} else {
				rr, err = runOne(cfg, j.subject, j.fuzzer, j.run)
				if err == nil && cfg.StateDir != "" {
					// A failed save costs durability for this one run, not
					// the suite.
					saveEr = saveRun(cfg, rr)
					if saveEr == nil {
						saveEr = saveCurve(cfg, rr)
					}
				}
			}
			mu.Lock()
			if err != nil && firstEr == nil {
				firstEr = err
			}
			if err == nil {
				sr.Results[j.subject][j.fuzzer][j.run] = rr
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "%s %-10s %-8s run %d: %d bugs, %d crashes, queue %d\n",
						how, j.subject, j.fuzzer, j.run, len(rr.Report.Bugs), len(rr.Report.Crashes), rr.Report.QueueLen)
					if saveEr != nil {
						fmt.Fprintf(cfg.Progress, "warning: persisting %s/%s run %d: %v\n", j.subject, j.fuzzer, j.run, saveEr)
					}
				}
			}
			mu.Unlock()
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go worker()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	sr.Elapsed = time.Since(suiteStart)
	return sr, nil
}

func runOne(cfg Config, subject string, f strategy.Name, run int) (*RunResult, error) {
	sub := subjects.Get(subject)
	prog, err := sub.Program()
	if err != nil {
		return nil, err
	}
	sc := strategy.Config{
		Opts: fuzz.Options{
			Seed:    cfg.BaseSeed + int64(run)*7919,
			MapSize: cfg.MapSize,
			Limits:  vm.DefaultLimits(),
			Engine:  cfg.Engine,
			Instr:   cfg.Instr,
		},
		Budget:      cfg.Budget,
		RoundBudget: cfg.RoundBudget,
		Seeds:       sub.Seeds,
	}
	out, err := strategy.Run(f, prog, sc)
	if err != nil {
		return nil, fmt.Errorf("%s/%s run %d: %w", subject, f, run, err)
	}
	rr := &RunResult{
		Subject: subject,
		Fuzzer:  f,
		Run:     run,
		Report:  out.Report,
		Phase1:  out.Phase1,
		Rounds:  out.Rounds,
		EdgeSet: triage.NewSet[uint32](),
	}
	for id := range fuzz.ShowMap(prog, out.Report.Queue, "main", vm.DefaultLimits()) {
		rr.EdgeSet.Add(id)
	}
	return rr, nil
}
