package fuzz

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/instrument"
)

func snapOpts() Options {
	return Options{Feedback: instrument.FeedbackPath, Seed: 3, MapSize: 1 << 12, KeepCrashInputs: true}
}

// snapSeeds gives the corpus some shape before snapshotting.
var snapSeeds = [][]byte{[]byte("xx"), []byte("hello world"), []byte("AAAA")}

func newSnapFuzzer(t *testing.T, budget int64) *Fuzzer {
	t.Helper()
	f, err := New(compileT(t, fig1), snapOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range snapSeeds {
		f.AddSeed(s)
	}
	if budget > 0 {
		f.Fuzz(budget)
	}
	return f
}

func encodeSnap(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRestoreRoundTrip: restoring a snapshot and snapshotting
// again must produce byte-identical state.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	f := newSnapFuzzer(t, 8000)
	snap := f.Snapshot()
	f2, err := Restore(f.prog, snapOpts(), snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := encodeSnap(t, f2.Snapshot()), encodeSnap(t, snap); !bytes.Equal(got, want) {
		t.Fatalf("snapshot not stable across restore: %d vs %d bytes", len(got), len(want))
	}
}

// TestRestoreFavoredInvariants checks the culling invariants the resume
// path must preserve: the favored set is identical entry-for-entry, the
// queue has no duplicates, and re-culling the restored corpus is a
// no-op relative to the original.
func TestRestoreFavoredInvariants(t *testing.T) {
	f := newSnapFuzzer(t, 8000)
	f2, err := Restore(f.prog, snapOpts(), f.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	if len(f2.queue) != len(f.queue) {
		t.Fatalf("queue length changed: %d -> %d", len(f.queue), len(f2.queue))
	}
	seen := make(map[string]bool)
	for i := range f.queue {
		a, b := f.queue[i], f2.queue[i]
		if !bytes.Equal(a.Data, b.Data) {
			t.Fatalf("entry %d data differs", i)
		}
		if a.Favored != b.Favored {
			t.Fatalf("entry %d favored %v -> %v", i, a.Favored, b.Favored)
		}
		if seen[string(b.Data)] {
			t.Fatalf("duplicate queue entry after restore: %q", b.Data)
		}
		seen[string(b.Data)] = true
	}
	if f2.pendingFavored != f.pendingFavored {
		t.Fatalf("pendingFavored %d -> %d", f.pendingFavored, f2.pendingFavored)
	}

	// topRated champions must be recalibrated to the same entries.
	if len(f2.topRated) != len(f.topRated) {
		t.Fatalf("topRated size %d -> %d", len(f.topRated), len(f2.topRated))
	}
	for idx, e := range f.topRated {
		e2, ok := f2.topRated[idx]
		if !ok || !bytes.Equal(e.Data, e2.Data) {
			t.Fatalf("topRated[%d] champion differs after restore", idx)
		}
	}

	// Re-culling both must mark the same favored set (cullFavored is
	// deterministic in queue order, so the sets stay aligned).
	f.cullFavored()
	f2.cullFavored()
	for i := range f.queue {
		if f.queue[i].Favored != f2.queue[i].Favored {
			t.Fatalf("favored set diverges at entry %d after re-cull", i)
		}
	}
}

// TestRestoredRunMatchesUninterrupted is the in-package determinism
// check: interrupting via the checkpoint hook, restoring from the
// snapshot, and finishing the budget must equal one uninterrupted run.
func TestRestoredRunMatchesUninterrupted(t *testing.T) {
	const budget = 20000

	base := newSnapFuzzer(t, 0)
	base.Fuzz(budget)
	want := base.Report()

	f := newSnapFuzzer(t, 0)
	var snap *Snapshot
	f.SetCheckpointHook(func(f *Fuzzer) bool {
		if f.Execs() >= budget/3 {
			snap = f.Snapshot()
			return false
		}
		return true
	})
	f.Fuzz(budget)
	if snap == nil {
		t.Fatal("hook never fired")
	}
	if f.Execs() >= budget {
		t.Fatalf("hook failed to interrupt: %d execs", f.Execs())
	}

	f2, err := Restore(f.prog, snapOpts(), snap)
	if err != nil {
		t.Fatal(err)
	}
	f2.Fuzz(budget)
	got := f2.Report()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed report differs from uninterrupted run:\n got: execs=%d queue=%d bugs=%v hist=%d\nwant: execs=%d queue=%d bugs=%v hist=%d",
			got.Stats.Execs, got.QueueLen, got.BugKeys(), len(got.History),
			want.Stats.Execs, want.QueueLen, want.BugKeys(), len(want.History))
	}
}

// TestRestoreRejectsBadSnapshots: validation failures must surface as
// errors, not corrupt fuzzers.
func TestRestoreRejectsBadSnapshots(t *testing.T) {
	f := newSnapFuzzer(t, 3000)

	snap := f.Snapshot()
	snap.Virgin = snap.Virgin[:0]
	snap.Entries[0].Cov = []uint32{1 << 30} // out of range for MapSize 1<<12
	if _, err := Restore(f.prog, snapOpts(), snap); err == nil {
		t.Error("out-of-range coverage index accepted")
	}

	snap = f.Snapshot()
	snap.NextIndex = len(snap.Entries) + 5
	if _, err := Restore(f.prog, snapOpts(), snap); err == nil {
		t.Error("out-of-range cycle position accepted")
	}

	if _, err := Restore(f.prog, snapOpts(), nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

// TestCountingSourceSkipTo: fast-forwarding a fresh source must land on
// the same stream position as drawing live.
func TestCountingSourceSkipTo(t *testing.T) {
	a := newCountingSource(99)
	for i := 0; i < 1000; i++ {
		if i%3 == 0 {
			a.Uint64()
		} else {
			a.Int63()
		}
	}
	b := newCountingSource(99)
	b.skipTo(a.draws)
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}
