package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/journal"
	"repro/internal/strategy"
	"repro/internal/subjects"
)

// Journal overhead benchmarks. The forensics layer promises the same
// deal telemetry made in PR4: the emitted-event counter always runs,
// but events are sparse (novelty, cycles, crashes — never the exec
// loop), buffered, and written append-only, so an attached journal must
// not cost campaign throughput. BenchmarkCampaignJournal measures both
// arms; TestWriteBenchPR9 freezes the overhead ratio into
// BENCH_PR9.json.

const journalCampaignBudget = 30000

// journalCampaign runs one fixed-budget path-feedback campaign per
// iteration, optionally with a journal writer on a real on-disk
// directory (I/O included — that is the cost being measured).
func journalCampaign(b *testing.B, subject string, withJournal bool) {
	b.Helper()
	sub := subjects.Get(subject)
	prog, err := sub.Program()
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := fuzz.Options{Seed: 1, MapSize: 1 << 13}
		var w *journal.Writer
		if withJournal {
			w, err = journal.Open(filepath.Join(dir, fmt.Sprintf("j%d", i)), journal.Options{})
			if err != nil {
				b.Fatal(err)
			}
			opts.Journal = w
		}
		_, err := strategy.Run(strategy.Path, prog, strategy.Config{
			Opts:   opts,
			Budget: journalCampaignBudget,
			Seeds:  sub.Seeds,
		})
		if err != nil {
			b.Fatal(err)
		}
		if w != nil {
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCampaignJournal(b *testing.B) {
	for _, subject := range []string{"cflow", "flvmeta"} {
		b.Run(subject+"/off", func(b *testing.B) { journalCampaign(b, subject, false) })
		b.Run(subject+"/on", func(b *testing.B) { journalCampaign(b, subject, true) })
	}
}

// BenchmarkJournalEmit measures one buffered event emission: JSON
// encode plus ring insert, no flush.
func BenchmarkJournalEmit(b *testing.B) {
	w, err := journal.Open(b.TempDir(), journal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	ev := journal.Event{Kind: journal.KindNovelty, Stage: "havoc",
		Entry: journal.Int(7), Parent: journal.Int(3), Cells: []uint32{11, 12}, Cov: 40}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Execs = int64(i)
		w.Emit(ev)
	}
}

// benchPR9 is the persisted schema of BENCH_PR9.json.
type benchPR9 struct {
	Note     string                  `json:"note"`
	Campaign map[string]benchPR9Camp `json:"campaign"`
	Emit     benchPR9Emit            `json:"emit"`
}

type benchPR9Camp struct {
	PlainNsPerCampaign   float64 `json:"plain_ns_per_campaign"`
	JournalNsPerCampaign float64 `json:"journal_ns_per_campaign"`
	OverheadPct          float64 `json:"overhead_pct"`
}

type benchPR9Emit struct {
	NsPerEmit     float64 `json:"ns_per_emit"`
	AllocsPerEmit float64 `json:"allocs_per_emit"`
}

// TestWriteBenchPR9 regenerates BENCH_PR9.json, the journaling overhead
// record: attaching a journal writer (real disk I/O included) must stay
// under 2% campaign slowdown. Gated because it runs minutes of
// benchmarks:
//
//	WRITE_BENCH_PR9=1 go test -run TestWriteBenchPR9 -benchtime 2s -timeout 30m .
func TestWriteBenchPR9(t *testing.T) {
	if os.Getenv("WRITE_BENCH_PR9") == "" {
		t.Skip("set WRITE_BENCH_PR9=1 to regenerate BENCH_PR9.json")
	}
	out := benchPR9{
		Note:     "min over 9 interleaved plain/journal measurements per arm, alternating arm order with a GC barrier per measurement (scheduler noise is additive-positive, so the per-arm minimum is the robust cost estimate); journal arm writes real segment files. Regenerate with: WRITE_BENCH_PR9=1 go test -run TestWriteBenchPR9 -benchtime 2s -timeout 30m .",
		Campaign: map[string]benchPR9Camp{},
	}
	worst := 0.0
	const pairs = 9
	for _, subject := range []string{"cflow", "flvmeta"} {
		// Interleaved measurements with alternating arm order (and a GC
		// barrier before each) so host drift and collector debt cannot
		// systematically favour one arm. Scheduler interference on a
		// shared host only ever *adds* time, so the per-arm minimum is
		// the robust estimate of true campaign cost; the journal's real
		// per-campaign work is ~150 buffered events, so any overhead
		// past noise level indicates a regression.
		var plains, jrnls []float64
		measure := func(withJournal bool) float64 {
			runtime.GC()
			return float64(testing.Benchmark(func(b *testing.B) { journalCampaign(b, subject, withJournal) }).NsPerOp())
		}
		for i := 0; i < pairs; i++ {
			if i%2 == 0 {
				plains = append(plains, measure(false))
				jrnls = append(jrnls, measure(true))
			} else {
				jrnls = append(jrnls, measure(true))
				plains = append(plains, measure(false))
			}
		}
		sort.Float64s(plains)
		sort.Float64s(jrnls)
		c := benchPR9Camp{
			PlainNsPerCampaign:   plains[0],
			JournalNsPerCampaign: jrnls[0],
			OverheadPct:          (jrnls[0]/plains[0] - 1) * 100,
		}
		out.Campaign[subject] = c
		if c.OverheadPct > worst {
			worst = c.OverheadPct
		}
		t.Logf("campaign %-10s plain %.0f ns  journal %.0f ns  overhead %+.2f%% (arm spread: plain %.0f..%.0f, journal %.0f..%.0f)",
			subject, c.PlainNsPerCampaign, c.JournalNsPerCampaign, c.OverheadPct,
			plains[0], plains[pairs-1], jrnls[0], jrnls[pairs-1])
	}
	emitNs, emitAllocs := medianNs(func(b *testing.B) {
		w, err := journal.Open(b.TempDir(), journal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		ev := journal.Event{Kind: journal.KindNovelty, Stage: "havoc",
			Entry: journal.Int(7), Parent: journal.Int(3), Cells: []uint32{11, 12}, Cov: 40}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev.Execs = int64(i)
			w.Emit(ev)
		}
	})
	out.Emit = benchPR9Emit{NsPerEmit: emitNs, AllocsPerEmit: float64(emitAllocs)}
	t.Logf("emit %.0f ns/op, %v allocs/op", emitNs, emitAllocs)

	if worst > 2.0 {
		t.Errorf("journaling overhead %.2f%% exceeds the 2%% budget", worst)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR9.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_PR9.json")
}
