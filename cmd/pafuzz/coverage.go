// Live coverage-cartography wiring: durable single-configuration
// campaigns register display-only hooks on the telemetry recorder so
// the metrics endpoint can resolve journaled map cells to source
// meaning (/genealogy) and render the live coverage report
// (/coverage). The index is built lazily on first request, entirely
// outside the fuzzing loop — campaigns with and without a metrics
// endpoint execute byte-identically.
package main

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/analysis/interproc"
	"repro/internal/cfg"
	"repro/internal/coverage"
	"repro/internal/covmap"
	"repro/internal/instrument"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// attachCartography registers the cell resolver and /coverage page on
// the recorder. Failures degrade to raw cell indices / an error page —
// cartography is garnish, never a reason to stop a campaign.
func attachCartography(rec *telemetry.Recorder, prog *cfg.Program, fb instrument.Feedback, mapSize int, label string) {
	if rec == nil {
		return
	}
	if mapSize == 0 {
		mapSize = coverage.DefaultMapSize
	}
	var (
		once  sync.Once
		ix    *covmap.Index
		ixErr error
	)
	index := func() (*covmap.Index, error) {
		once.Do(func() { ix, ixErr = covmap.New(prog, fb, instrument.Config{}, mapSize) })
		return ix, ixErr
	}
	rec.SetCellResolver(func(cell uint32) string {
		ix, err := index()
		if err != nil {
			return fmt.Sprintf("cell %d", cell)
		}
		return ix.CellLabel(cell)
	})
	rec.SetCoveragePage(func(w io.Writer, events []journal.Event) error {
		ix, err := index()
		if err != nil {
			return err
		}
		var cells []uint32
		for _, ev := range events {
			if ev.Kind == journal.KindNovelty {
				cells = append(cells, ev.Cells...)
			}
		}
		rep := ix.BuildReport(covmap.FromCells(cells), covmap.Options{
			Label: label,
			Facts: interproc.ForProgram(prog),
		})
		_, werr := w.Write(rep.WriteHTML("live coverage — " + label))
		return werr
	})
}
