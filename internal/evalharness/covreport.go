package evalharness

import (
	"bytes"
	"fmt"
	"path/filepath"

	"repro/internal/analysis/interproc"
	"repro/internal/campaign"
	"repro/internal/coverage"
	"repro/internal/covmap"
	"repro/internal/strategy"
	"repro/internal/subjects"
)

// covReportDir is the StateDir subdirectory holding per-run coverage
// cartography reports: annotated source, per-function path-discovery
// counts, and the frontier of reached-but-unexplored branches, one
// text file per campaign. Like the curves and provenance CSVs they are
// regenerated artifacts — the checkpointed run data stays the source
// of truth.
const covReportDir = "covreports"

func covReportFileName(subject string, f strategy.Name, run int) string {
	return fmt.Sprintf("%s_%s_%03d_cov.txt", campaign.SanitizeName(subject), campaign.SanitizeName(string(f)), run)
}

// saveCovReport persists one run's coverage cartography report under
// StateDir/covreports. Only single-phase configurations have a fixed
// map layout to invert; round-based strategies are skipped without
// error.
func saveCovReport(cfg Config, rr *RunResult) error {
	fb, _, ok := strategy.SingleConfig(rr.Fuzzer)
	if !ok {
		return nil
	}
	sub := subjects.Get(rr.Subject)
	if sub == nil {
		return fmt.Errorf("evalharness: unknown subject %q", rr.Subject)
	}
	prog, err := sub.Program()
	if err != nil {
		return err
	}
	mapSize := cfg.MapSize
	if mapSize == 0 {
		mapSize = coverage.DefaultMapSize
	}
	ix, err := covmap.New(prog, fb, cfg.Instr, mapSize)
	if err != nil {
		return err
	}
	var cells []uint32
	if rr.Report != nil {
		for _, cm := range rr.Report.Corpus {
			cells = append(cells, cm.FirstCells...)
		}
	}
	rep := ix.BuildReport(covmap.FromCells(cells), covmap.Options{
		Label: fmt.Sprintf("%s/%s run %d", rr.Subject, rr.Fuzzer, rr.Run),
		Facts: interproc.ForProgram(prog),
	})
	var buf bytes.Buffer
	rep.WriteText(&buf)
	dir := filepath.Join(cfg.StateDir, covReportDir)
	if err := cfg.FS.MkdirAll(dir); err != nil {
		return err
	}
	path := filepath.Join(dir, covReportFileName(rr.Subject, rr.Fuzzer, rr.Run))
	return campaign.WriteFileAtomic(cfg.FS, path, buf.Bytes())
}
