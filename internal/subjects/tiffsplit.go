package subjects

import "repro/internal/vm"

// tiffsplit models a TIFF splitter: IFD walking plus a per-strip
// processing loop whose sample classifier is branch-dense — the shape
// behind tiffsplit's 22x queue growth in the paper's Table I. Bug tf-3
// is path-dependent (LZW compression path leaves the predictor
// unclamped).
const tiffsplitSrc = `
// tiffsplit: TIFF splitter.
// Layout: "T*" then IFD: count(1) entries: tag(1) val(1).
// Tags: 1=width 2=height 3=bits 4=compression 5=predictor 6=strip_off
//       7=strip_count 8=process-strips trigger.

// classify_pixel is branch-dense on purpose: six independent tests.
func classify_pixel(v) {
    var c = 0;
    if (v > 128) { c = c + 1; } else { c = c + 2; }
    if ((v & 1) != 0) { c = c * 2; } else { c = c + 5; }
    if (v > 64 && v < 192) { c = c ^ 3; } else { c = c + 7; }
    if ((v & 8) != 0) { c = c + 11; } else { c = c * 3; }
    if (v < 16) { c = c - 1; } else { c = c + 4; }
    if ((v & 32) != 0) { c = c ^ 6; } else { c = c + 9; }
    return c;
}

func set_compression(hdr, val) {
    hdr[3] = val;
    if (val == 5) {
        // BUG tf-3 (setup): the LZW path trusts the predictor tag
        // value stored earlier; the other paths reset it to 1.
    } else {
        hdr[4] = 1;
    }
    return 0;
}

func process_strips(input, hdr) {
    var w = hdr[0];
    var h = hdr[1];
    var bits = hdr[2];
    if (w == 0 || h == 0) { return 0; }
    var bytes_per_row = w * bits / 8; // BUG tf-1: zero bits makes rows empty...
    var rows = alloc(w * h * bits); // BUG tf-2: unchecked product allocation
    var off = hdr[5];
    var n = hdr[6];
    var i = 0;
    while (i < n) {
        var v = input[off + i]; // BUG tf-4: strip offset unchecked against input
        var c = classify_pixel(v);
        var slot = c & 31;
        if (slot < w * h * bits) {
            rows[slot] = v;
        }
        i = i + 1;
    }
    // Predictor pass: horizontal differencing with stride hdr[4].
    var ptab = alloc(4);
    ptab[1] = 1; ptab[2] = 2; ptab[3] = 3;
    var stride = ptab[hdr[4]]; // BUG tf-3 (trigger): predictor > 3 only via the LZW path
    var chunks = bytes_per_row / stride; // BUG tf-5: zero row bytes (bits<8) divide later
    out(chunks);
    return n;
}

func main(input) {
    if (len(input) < 3) { return 1; }
    if (input[0] != 'T' || input[1] != '*') { return 1; }
    var hdr = alloc(7); // w h bits comp predictor strip_off strip_count
    hdr[2] = 8;
    hdr[4] = 1;
    var count = input[2];
    var pos = 3;
    var i = 0;
    while (i < count && pos + 2 <= len(input)) {
        var tag = input[pos];
        var val = input[pos + 1];
        pos = pos + 2;
        if (tag == 1) { hdr[0] = val; }
        else if (tag == 2) { hdr[1] = val; }
        else if (tag == 3) { hdr[2] = val; }
        else if (tag == 4) { set_compression(hdr, val); }
        else if (tag == 5) { hdr[4] = val; }
        else if (tag == 6) { hdr[5] = val; }
        else if (tag == 7) { hdr[6] = val; }
        else if (tag == 8) { process_strips(input, hdr); }
        i = i + 1;
    }
    return i;
}
`

func init() {
	register(&Subject{
		Name:      "tiffsplit",
		TypeLabel: "C",
		Source:    tiffsplitSrc,
		Seeds: [][]byte{
			{'T', '*', 5, 1, 2, 2, 2, 3, 8, 7, 4, 8, 0, 10, 20, 30, 40},
			{'T', '*', 3, 1, 1, 2, 1, 8, 0},
		},
		Bugs: []Bug{
			{
				ID: "tf-2-rows-alloc",
				// w=255 h=255 bits=255: 255^3 > allocator cap.
				Witness:  []byte{'T', '*', 4, 1, 255, 2, 255, 3, 255, 8, 0},
				WantKind: vm.KindBadAlloc,
				WantFunc: "process_strips",
				Comment:  "row buffer allocation w*h*bits is unchecked",
			},
			{
				ID: "tf-4-strip-oob",
				// strip_off 200 with 1 strip byte reads input[200].
				Witness:  []byte{'T', '*', 5, 1, 1, 2, 1, 6, 200, 7, 1, 8, 0},
				WantKind: vm.KindOOBRead,
				WantFunc: "process_strips",
				Comment:  "strip offset tag points past the input",
			},
			{
				ID: "tf-3-predictor-oob",
				// predictor tag 9, then LZW compression (keeps it), then
				// process.
				Witness:       []byte{'T', '*', 5, 1, 1, 2, 1, 5, 9, 4, 5, 8, 0},
				WantKind:      vm.KindOOBRead,
				WantFunc:      "process_strips",
				PathDependent: true,
				Comment: "every compression path resets the predictor except LZW; a raw " +
					"predictor of 9 indexes the 4-entry stride table",
			},
			{
				ID: "tf-5-stride-div",
				// predictor 0: ptab[0] = 0 -> chunks division by zero.
				Witness:       []byte{'T', '*', 5, 1, 1, 2, 1, 5, 0, 4, 5, 8, 0},
				WantKind:      vm.KindDivByZero,
				WantFunc:      "process_strips",
				PathDependent: true,
				Comment: "predictor 0 survives only the LZW path and selects the zero " +
					"stride table entry",
			},
		},
	})
}
