package vm

import (
	"fmt"
	"strings"

	"repro/internal/lang"
)

// CrashKind classifies sanitizer-detected faults, the analogue of the
// ASAN/UBSAN report types in the paper's evaluation.
type CrashKind int

// Crash kinds.
const (
	KindOOBRead CrashKind = iota
	KindOOBWrite
	KindNullDeref
	KindWildPointer
	KindDivByZero
	KindBadAlloc
	KindOOM
	KindAssertFail
	KindAbort
	KindStackOverflow
	// KindTimeout is internal: it propagates step-budget exhaustion and
	// is reported as StatusTimeout, not as a crash.
	KindTimeout
)

var crashKindNames = map[CrashKind]string{
	KindOOBRead:       "heap-out-of-bounds-read",
	KindOOBWrite:      "heap-out-of-bounds-write",
	KindNullDeref:     "null-dereference",
	KindWildPointer:   "wild-pointer",
	KindDivByZero:     "division-by-zero",
	KindBadAlloc:      "bad-allocation",
	KindOOM:           "out-of-memory",
	KindAssertFail:    "assertion-failure",
	KindAbort:         "abort",
	KindStackOverflow: "stack-overflow",
	KindTimeout:       "timeout",
}

// String returns the sanitizer-style name of the crash kind.
func (k CrashKind) String() string {
	if s, ok := crashKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("crash-kind-%d", int(k))
}

// Frame is one entry of a crash call stack.
type Frame struct {
	Func string
	Pos  lang.Pos
}

// Crash is a sanitizer report for one faulting execution.
type Crash struct {
	Kind CrashKind
	// Msg carries fault details (index, bound, operands).
	Msg string
	// Func and Pos identify the faulting instruction.
	Func string
	Pos  lang.Pos
	// Stack is the call stack, innermost frame first.
	Stack []Frame
}

// BugKey returns the ground-truth bug identity: the faulting site and
// fault kind. Two crashes with the same BugKey are manifestations of
// the same planted bug — this plays the role of the paper's manual bug
// deduplication.
func (c *Crash) BugKey() string {
	return fmt.Sprintf("%s:%d:%s", c.Func, c.Pos.Line, c.Kind)
}

// StackHash returns an FNV-1a hash of the top n stack frames
// (function name and line), reproducing the paper's "unique crash"
// clustering criterion (top 5 frames).
func (c *Crash) StackHash(n int) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(s string, line int) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= uint64(line)
		h *= prime
	}
	mix(c.Kind.String(), 0)
	for i, f := range c.Stack {
		if i >= n {
			break
		}
		mix(f.Func, f.Pos.Line)
	}
	return h
}

// String formats the crash like a compact sanitizer report.
func (c *Crash) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s at %s:%s", c.Kind, c.Func, c.Pos)
	if c.Msg != "" {
		fmt.Fprintf(&b, " (%s)", c.Msg)
	}
	for _, f := range c.Stack {
		fmt.Fprintf(&b, "\n  #%s %s", f.Pos, f.Func)
	}
	return b.String()
}
