package instrument_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/coverage"
	"repro/internal/instrument"
	"repro/internal/langgen"
	"repro/internal/vm"
)

func compile(t testing.TB, src string) *cfg.Program {
	t.Helper()
	p, err := cfg.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

const loopy = `
func classify(c) {
    if (c > 128) { return 2; }
    if (c > 64) { return 1; }
    return 0;
}
func main(input) {
    var s = 0;
    for (var i = 0; i < len(input); i = i + 1) {
        var k = classify(input[i]);
        if (k == 2) { s = s + 3; } else {
            if (k == 1) { s = s + 1; } else { s = s - 1; }
        }
    }
    out(s);
    return s;
}
`

func runWith(t testing.TB, p *cfg.Program, fb instrument.Feedback, cfgI instrument.Config, input []byte) *coverage.Map {
	t.Helper()
	m := coverage.NewMap(1 << 12)
	tr, err := instrument.New(fb, p, m, cfgI)
	if err != nil {
		t.Fatal(err)
	}
	res := vm.Run(p, "main", input, tr, vm.DefaultLimits())
	if res.Status != vm.StatusOK {
		t.Fatalf("execution failed: %v %v", res.Status, res.Crash)
	}
	return m
}

// TestNaiveAndOptimizedPlansAgree is the central Ball-Larus runtime
// property: for arbitrary programs and inputs, the naive per-edge-Val
// placement and the spanning-tree chord placement must produce
// IDENTICAL coverage maps (same path IDs recorded the same number of
// times).
func TestNaiveAndOptimizedPlansAgree(t *testing.T) {
	progs := []*cfg.Program{compile(t, loopy)}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		progs = append(progs, compile(t, langgen.Generate(rng, langgen.Default())))
	}
	rng := rand.New(rand.NewSource(999))
	for pi, p := range progs {
		for trial := 0; trial < 5; trial++ {
			input := make([]byte, rng.Intn(40))
			rng.Read(input)
			lim := vm.DefaultLimits()
			lim.MaxSteps = 1 << 26

			run := func(naive bool) []byte {
				m := coverage.NewMap(1 << 12)
				tr, err := instrument.NewPathTracer(p, m, instrument.Config{NaivePlacement: naive})
				if err != nil {
					t.Fatal(err)
				}
				vm.Run(p, "main", input, tr, lim)
				return append([]byte(nil), m.Bytes()...)
			}
			if !bytes.Equal(run(true), run(false)) {
				t.Fatalf("program %d trial %d: naive and optimized path maps differ", pi, trial)
			}
		}
	}
}

// TestSensitivityLadder verifies block < edge <= ngram and that path
// feedback distinguishes executions edge coverage merges (the paper's
// motivating property).
func TestSensitivityLadder(t *testing.T) {
	p := compile(t, `
func main(input) {
    if (len(input) < 2) { return 0; }
    var x = 0;
    if (input[0] > 100) { x = 1; } else { x = 2; }
    if (input[1] > 100) { x = x * 2; } else { x = x + 7; }
    return x;
}`)
	// Four inputs driving the four branch combinations.
	inputs := [][]byte{{200, 200}, {200, 0}, {0, 200}, {0, 0}}

	distinct := func(fb instrument.Feedback) int {
		seen := make(map[uint64]bool)
		m := coverage.NewMap(1 << 12)
		tr, err := instrument.New(fb, p, m, instrument.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range inputs {
			m.Reset()
			vm.Run(p, "main", in, tr, vm.DefaultLimits())
			seen[coverage.SparseHash64(m.Bytes())] = true
		}
		return len(seen)
	}

	path := distinct(instrument.FeedbackPath)
	edge := distinct(instrument.FeedbackEdge)
	block := distinct(instrument.FeedbackBlock)
	ngram := distinct(instrument.FeedbackNGram)
	if path != 4 {
		t.Errorf("path distinguishes %d/4 executions", path)
	}
	if edge != 4 {
		// Each combination takes a distinct edge set here, so edge
		// should also distinguish 4; the difference shows in
		// TestPathDistinguishesWhatEdgeMerges.
		t.Logf("edge distinguishes %d/4 (acceptable)", edge)
	}
	if block > edge || edge > ngram && ngram != 0 {
		t.Errorf("sensitivity ladder violated: block=%d edge=%d ngram=%d path=%d", block, edge, ngram, path)
	}
}

// TestPathDistinguishesWhatEdgeMerges reproduces §II-B exactly: two
// executions that traverse the SAME edges with the SAME hit counts but
// along different branch combinations are identical to edge coverage
// and distinct to path coverage. f runs twice per execution; one input
// exercises the (then,else)/(else,then) combinations, the other
// (then,then)/(else,else) — every edge runs once either way.
func TestPathDistinguishesWhatEdgeMerges(t *testing.T) {
	p := compile(t, `
func f(a, b) {
    var x = 0;
    if (a > 0) { x = x + 1; } else { x = x + 2; }
    if (b > 0) { x = x * 2; } else { x = x * 3; }
    return x;
}
func main(input) {
    if (len(input) < 2) { return 0; }
    f(input[0], input[1]);
    f(1 - input[0], 1 - input[1]);
    return 0;
}`)
	hash := func(fb instrument.Feedback, in []byte) uint64 {
		m := coverage.NewMap(1 << 12)
		tr, err := instrument.New(fb, p, m, instrument.Config{})
		if err != nil {
			t.Fatal(err)
		}
		vm.Run(p, "main", in, tr, vm.DefaultLimits())
		coverage.Classify(m.Bytes())
		return coverage.SparseHash64(m.Bytes())
	}
	mixed := []byte{1, 0}   // f(1,0) then f(0,1): paths TE, ET
	aligned := []byte{1, 1} // f(1,1) then f(0,0): paths TT, EE
	if hash(instrument.FeedbackEdge, mixed) != hash(instrument.FeedbackEdge, aligned) {
		t.Fatalf("edge coverage distinguishes the calibration inputs — test premise broken")
	}
	if hash(instrument.FeedbackPath, mixed) == hash(instrument.FeedbackPath, aligned) {
		t.Errorf("path coverage failed to distinguish branch combinations (the paper's core claim)")
	}
}

func TestBlockTracerCoversEntry(t *testing.T) {
	p := compile(t, `func main(input) { return 1; }`)
	m := runWith(t, p, instrument.FeedbackBlock, instrument.Config{}, nil)
	if m.CountNonZero() == 0 {
		t.Error("straight-line function produced no block coverage")
	}
}

func TestEdgeTracerExactIDs(t *testing.T) {
	p := compile(t, loopy)
	m := coverage.NewMap(1 << 12)
	tr := instrument.NewEdgeTracer(p, m)
	vm.Run(p, "main", []byte("abc"), tr, vm.DefaultLimits())
	total := p.NumEdges()
	for _, idx := range m.Indices() {
		if int(idx) >= total {
			t.Errorf("edge index %d out of range (%d edges)", idx, total)
		}
	}
}

func TestNGramWindowMatters(t *testing.T) {
	p := compile(t, loopy)
	m2 := runWith(t, p, instrument.FeedbackNGram, instrument.Config{NGram: 2}, []byte("aZaZ"))
	m8 := runWith(t, p, instrument.FeedbackNGram, instrument.Config{NGram: 8}, []byte("aZaZ"))
	if coverage.SparseHash64(m2.Bytes()) == coverage.SparseHash64(m8.Bytes()) {
		t.Error("n-gram window size has no effect")
	}
}

func TestPathAFLTracerRecords(t *testing.T) {
	p := compile(t, loopy)
	m := runWith(t, p, instrument.FeedbackPathAFL, instrument.Config{}, []byte("hello"))
	if m.CountNonZero() == 0 {
		t.Error("pathafl produced no coverage")
	}
	// PathAFL includes exact edge coverage; its map should touch at
	// least as many entries as the pure edge tracer.
	me := runWith(t, p, instrument.FeedbackEdge, instrument.Config{}, []byte("hello"))
	if m.CountNonZero() < me.CountNonZero() {
		t.Errorf("pathafl coverage (%d) below edge coverage (%d)", m.CountNonZero(), me.CountNonZero())
	}
}

func TestParseFeedback(t *testing.T) {
	for _, name := range []string{"edge", "path", "block", "ngram", "pathafl"} {
		fb, err := instrument.ParseFeedback(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if fb.String() != name {
			t.Errorf("round trip %s -> %s", name, fb)
		}
	}
	if _, err := instrument.ParseFeedback("bogus"); err == nil {
		t.Error("bogus feedback accepted")
	}
}

// TestMixModesCollisionRate compares the paper's XOR map indexing with
// hashed mixing, the design choice DESIGN.md calls out: both must work;
// hashing should not be worse.
func TestMixModesCollisionRate(t *testing.T) {
	p := compile(t, loopy)
	rng := rand.New(rand.NewSource(5))
	collisions := func(mode instrument.MixMode) int {
		m := coverage.NewMap(1 << 10)
		tr, err := instrument.NewPathTracer(p, m, instrument.Config{Mix: mode})
		if err != nil {
			t.Fatal(err)
		}
		records := uint64(0)
		for i := 0; i < 200; i++ {
			in := make([]byte, rng.Intn(24))
			rng.Read(in)
			vm.Run(p, "main", in, tr, vm.DefaultLimits())
			records = tr.Records
		}
		// Collisions are not directly observable; approximate by
		// comparing touched entries against total records (saturated
		// map entries absorb collisions).
		_ = records
		return m.CountNonZero()
	}
	xor := collisions(instrument.MixXOR)
	hash := collisions(instrument.MixHash)
	if xor == 0 || hash == 0 {
		t.Fatal("no coverage recorded")
	}
	t.Logf("distinct map entries: xor=%d hash=%d", xor, hash)
}

func TestProfilerCountsAndRegeneration(t *testing.T) {
	p := compile(t, loopy)
	prof, err := instrument.NewProfiler(p)
	if err != nil {
		t.Fatal(err)
	}
	res := prof.Profile("main", []byte{200, 100, 10, 200}, vm.DefaultLimits())
	if res.Status != vm.StatusOK {
		t.Fatalf("profile run failed: %v", res.Status)
	}
	counts := prof.Counts()
	if len(counts) == 0 {
		t.Fatal("no paths recorded")
	}
	// classify ran 4 times; its path counts must sum to 4.
	var classifyTotal uint64
	for _, pc := range counts {
		if pc.Func == "classify" {
			classifyTotal += pc.Count
			if len(pc.Blocks) == 0 {
				t.Errorf("path %d has no regenerated blocks", pc.PathID)
			}
		}
	}
	if classifyTotal != 4 {
		t.Errorf("classify path counts sum to %d, want 4", classifyTotal)
	}
	prof.Reset()
	if len(prof.Counts()) != 0 {
		t.Error("reset did not clear counts")
	}
}

// TestProfilerMatchesDirectEnumeration: profiling the same input twice
// doubles every count.
func TestProfilerDoubling(t *testing.T) {
	p := compile(t, loopy)
	prof, err := instrument.NewProfiler(p)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("abcXYZ")
	prof.Profile("main", in, vm.DefaultLimits())
	once := prof.Counts()
	prof.Profile("main", in, vm.DefaultLimits())
	twice := prof.Counts()
	if len(once) != len(twice) {
		t.Fatalf("path set changed: %d vs %d", len(once), len(twice))
	}
	for i := range once {
		if twice[i].Count != 2*once[i].Count {
			t.Errorf("path %s/%d: %d != 2*%d", once[i].Func, once[i].PathID, twice[i].Count, once[i].Count)
		}
	}
}

// TestHashFallbackForHugeFunctions: a function whose acyclic path count
// exceeds balllarus.MaxPaths must still be traceable — the path tracer
// falls back to hashed path IDs and keeps distinguishing executions.
func TestHashFallbackForHugeFunctions(t *testing.T) {
	src := "func main(input) {\n    var s = 0;\n    if (len(input) < 60) { return 0; }\n"
	for i := 0; i < 55; i++ {
		src += "    if (input[" + itoa(i) + "] > 128) { s = s + 1; } else { s = s - 1; }\n"
	}
	src += "    return s;\n}\n"
	p := compile(t, src)
	m := coverage.NewMap(1 << 12)
	tr, err := instrument.NewPathTracer(p, m, instrument.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mainID := p.ByName["main"]
	if !tr.HashMode(mainID) {
		t.Fatal("2^55-path function not in hash mode")
	}
	in1 := make([]byte, 64)
	in2 := make([]byte, 64)
	in2[10] = 255
	hash := func(in []byte) uint64 {
		m.Reset()
		vm.Run(p, "main", in, tr, vm.DefaultLimits())
		return coverage.SparseHash64(m.Bytes())
	}
	if hash(in1) == hash(in2) {
		t.Error("hash-mode path tracer does not distinguish different paths")
	}
	if hash(in1) != hash(in1) {
		t.Error("hash-mode path tracer is nondeterministic")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// TestProfilerRejectsHugeFunctions: the exact profiler (unlike the
// fuzzing tracer) must refuse overflow rather than silently hash.
func TestProfilerRejectsHugeFunctions(t *testing.T) {
	src := "func main(input) {\n    var s = 0;\n"
	for i := 0; i < 55; i++ {
		src += "    if (len(input) > " + itoa(i) + ") { s = s + 1; } else { s = s - 1; }\n"
	}
	src += "    return s;\n}\n"
	p := compile(t, src)
	if _, err := instrument.NewProfiler(p); err == nil {
		t.Error("profiler accepted an un-numberable function")
	}
}

// TestPath2DistinguishesPathSequences: the 2-gram extension separates
// executions whose multiset of acyclic paths is identical but whose
// ORDER differs — one notch above plain path feedback, as §VII
// sketches.
func TestPath2DistinguishesPathSequences(t *testing.T) {
	p := compile(t, `
func main(input) {
    var s = 0;
    for (var i = 0; i < len(input); i = i + 1) {
        if (input[i] == 'A') { s = s + 1; } else { s = s - 1; }
    }
    return s;
}`)
	hash := func(fb instrument.Feedback, in string) uint64 {
		m := coverage.NewMap(1 << 12)
		tr, err := instrument.New(fb, p, m, instrument.Config{})
		if err != nil {
			t.Fatal(err)
		}
		vm.Run(p, "main", []byte(in), tr, vm.DefaultLimits())
		coverage.Classify(m.Bytes())
		return coverage.SparseHash64(m.Bytes())
	}
	// "AABB" vs "ABAB": same iteration-path multiset {A,A,B,B}; plain
	// path feedback cannot tell them apart, 2-grams can (AA,AB,BB vs
	// AB,BA,AB).
	if hash(instrument.FeedbackPath, "AABB") != hash(instrument.FeedbackPath, "ABAB") {
		t.Fatal("plain path feedback distinguishes the calibration pair — premise broken")
	}
	if hash(instrument.FeedbackPath2, "AABB") == hash(instrument.FeedbackPath2, "ABAB") {
		t.Error("path 2-grams failed to distinguish path orderings")
	}
}

// TestSelectiveThreshold: with a tiny threshold, branchy functions fall
// back to edge feedback while simple ones keep path feedback.
func TestSelectiveThreshold(t *testing.T) {
	p := compile(t, `
func simple(a) { return a + 1; }
func branchy(a) {
    var s = 0;
    if (a > 1) { s = s + 1; } else { s = s - 1; }
    if (a > 2) { s = s * 2; } else { s = s * 3; }
    if (a > 3) { s = s ^ 5; } else { s = s + 7; }
    return s;
}
func main(input) { return branchy(len(input)) + simple(len(input)); }`)
	m := coverage.NewMap(1 << 12)
	tr, err := instrument.NewSelectivePathTracer(p, m, instrument.Config{SelectiveMaxPaths: 4})
	if err != nil {
		t.Fatal(err)
	}
	// simple (1 path) and main qualify; branchy (8 paths) does not.
	if tr.Selected == 0 || tr.Selected == len(p.Funcs) {
		t.Errorf("selected %d of %d functions, want a strict subset", tr.Selected, len(p.Funcs))
	}
	// Execution must stay consistent (register stack aligned) across
	// mixed functions.
	res := vm.Run(p, "main", []byte("abc"), tr, vm.DefaultLimits())
	if res.Status != vm.StatusOK {
		t.Fatalf("mixed-mode execution failed: %v", res.Status)
	}
	if m.CountNonZero() == 0 {
		t.Error("no coverage recorded")
	}
}

// TestSelectiveQueuePressureReduction: on a program dominated by a
// high-path-count function, selective feedback produces coarser maps
// than full path feedback. f has 8 acyclic paths (> threshold 4), so
// selective demotes it to edge coverage; main calls it twice with
// complementary arguments, so every execution covers every edge of f
// exactly once — the edge view is constant while the path view
// distinguishes the branch-combination pairs.
func TestSelectiveQueuePressureReduction(t *testing.T) {
	p := compile(t, `
func f(a, b, c) {
    var s = 0;
    if (a > 0) { s = s + 1; } else { s = s + 2; }
    if (b > 0) { s = s * 2; } else { s = s + 3; }
    if (c > 0) { s = s ^ 5; } else { s = s + 7; }
    return s;
}
func main(input) {
    if (len(input) < 3) { return 0; }
    var a = input[0] & 1;
    var b = input[1] & 1;
    var c = input[2] & 1;
    f(a, b, c);
    f(1 - a, 1 - b, 1 - c);
    return 0;
}`)
	distinct := func(fb instrument.Feedback) int {
		m := coverage.NewMap(1 << 12)
		tr, err := instrument.New(fb, p, m, instrument.Config{SelectiveMaxPaths: 4})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint64]bool)
		for bits := 0; bits < 8; bits++ {
			in := []byte{byte(bits & 1), byte(bits >> 1 & 1), byte(bits >> 2 & 1)}
			m.Reset()
			vm.Run(p, "main", in, tr, vm.DefaultLimits())
			seen[coverage.SparseHash64(m.Bytes())] = true
		}
		return len(seen)
	}
	full := distinct(instrument.FeedbackPath)
	sel := distinct(instrument.FeedbackSelective)
	if sel >= full {
		t.Errorf("selective (%d distinct maps) not coarser than path (%d)", sel, full)
	}
	t.Logf("distinct maps: path=%d selective=%d", full, sel)
}
