package triage_test

import (
	"testing"
	"testing/quick"

	"repro/internal/triage"
)

func TestSetOps(t *testing.T) {
	a := triage.NewSet("x", "y", "z")
	b := triage.NewSet("y", "z", "w")
	if got := triage.Intersect(a, b).Len(); got != 2 {
		t.Errorf("intersect = %d", got)
	}
	if got := triage.Subtract(a, b).Len(); got != 1 {
		t.Errorf("a\\b = %d", got)
	}
	if got := triage.Subtract(b, a).Len(); got != 1 {
		t.Errorf("b\\a = %d", got)
	}
	if got := triage.Union(a, b).Len(); got != 4 {
		t.Errorf("union = %d", got)
	}
	if got := triage.UnionAll(a, b, triage.NewSet("q")).Len(); got != 5 {
		t.Errorf("unionAll = %d", got)
	}
	if !a.Has("x") || a.Has("w") {
		t.Error("Has wrong")
	}
	a.Add("w")
	if !a.Has("w") {
		t.Error("Add failed")
	}
}

func TestSorted(t *testing.T) {
	s := triage.NewSet("b", "a", "c")
	got := triage.Sorted(s)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("sorted = %v", got)
	}
}

func TestVenn(t *testing.T) {
	a := triage.NewSet(1, 2, 3, 4)
	b := triage.NewSet(3, 4, 5)
	v := triage.Venn(a, b)
	if v.OnlyA != 2 || v.Common != 2 || v.OnlyB != 1 {
		t.Errorf("venn = %+v", v)
	}
}

func TestVenn3(t *testing.T) {
	a := triage.NewSet("a", "ab", "ac", "abc")
	b := triage.NewSet("b", "ab", "bc", "abc")
	c := triage.NewSet("c", "ac", "bc", "abc")
	v := triage.Venn3(a, b, c)
	if v.OnlyA != 1 || v.OnlyB != 1 || v.OnlyC != 1 {
		t.Errorf("onlies: %+v", v)
	}
	if v.AB != 1 || v.AC != 1 || v.BC != 1 || v.ABC != 1 {
		t.Errorf("intersections: %+v", v)
	}
	if v.TotalA != 4 || v.TotalB != 4 || v.TotalC != 4 {
		t.Errorf("totals: %+v", v)
	}
}

// TestSetAlgebraProperties checks the identities the tables rely on:
// |A| = |A∩B| + |A\B| and the Venn regions partition the union.
func TestSetAlgebraProperties(t *testing.T) {
	mk := func(xs []uint8) triage.Set[uint8] {
		s := triage.NewSet[uint8]()
		for _, x := range xs {
			s.Add(x % 32)
		}
		return s
	}
	err := quick.Check(func(xa, xb []uint8) bool {
		a, b := mk(xa), mk(xb)
		if a.Len() != triage.Intersect(a, b).Len()+triage.Subtract(a, b).Len() {
			return false
		}
		v := triage.Venn(a, b)
		return v.OnlyA+v.Common+v.OnlyB == triage.Union(a, b).Len()
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
	err = quick.Check(func(xa, xb, xc []uint8) bool {
		a, b, c := mk(xa), mk(xb), mk(xc)
		v := triage.Venn3(a, b, c)
		return v.OnlyA+v.OnlyB+v.OnlyC+v.AB+v.AC+v.BC+v.ABC == triage.UnionAll(a, b, c).Len()
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
