package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/subjects"
	"repro/internal/vm"
)

// CGT steady-state benchmarks: the self-patching probe-elision engine
// vs plain EngineBytecode on the same campaign continuation. Both
// engines execute the identical deterministic input sequence (same
// seed, same budget), and the measurement interleaves the two engines
// in alternating slices of the same wall-clock window, so slow host
// drift hits both sides of the ratio equally.
// BenchmarkEngineCGTSteadyState is the CI smoke view; TestWriteBenchPR7
// freezes the numbers into BENCH_PR7.json.

const (
	// benchPR7Warm is the warm-up budget: long enough for the reachable
	// hit-count buckets to saturate and the patch planner to reach a
	// steady elision plan on the probe-dense subjects. The hot loop-edge
	// probes are the last to saturate (they elide only once some input
	// drives them past the 128+ bucket) and the most valuable to elide,
	// so steady state is worth waiting for: cflow's elision plan stops
	// growing between 400k and 800k execs.
	benchPR7Warm = 600000
	// benchPR7Measure is the total timed continuation after warm-up,
	// split into benchPR7Slices alternating slices per engine.
	benchPR7Measure = 48000
	benchPR7Slices  = 6
)

// benchPR7Subjects are the per-subject steady-state benches; the first
// few are the probe-dense acceptance subjects, the rest give breadth.
var benchPR7Subjects = []string{"cflow", "exiv2", "tiffsplit", "jq", "nm-new", "flvmeta"}

func benchPR7Opts(engine fuzz.Engine, seed int64) fuzz.Options {
	return fuzz.Options{
		Feedback: instrument.FeedbackEdge,
		Seed:     seed,
		MapSize:  1 << 12,
		Entry:    "main",
		Limits:   vm.DefaultLimits(),
		Engine:   engine,
		// The default 512-byte input cap structurally starves the top
		// hit-count buckets (a loop edge needs 128+ hits in ONE exec to
		// saturate its cell), which blocks elision for input-scanning
		// loops no matter how long the campaign runs — an artifact of
		// the toy input scale, not of the technique. 4096 lets buckets
		// saturate the way they do on real-scale targets.
		MaxInputLen: 4096,
	}
}

// warmFuzzer builds a fuzzer on the subject and runs it to the warm-up
// budget, returning it poised at steady state.
func warmFuzzer(tb testing.TB, subject string, engine fuzz.Engine, seed int64) *fuzz.Fuzzer {
	tb.Helper()
	sub := subjects.Get(subject)
	prog, err := sub.Program()
	if err != nil {
		tb.Fatal(err)
	}
	f, err := fuzz.New(prog, benchPR7Opts(engine, seed))
	if err != nil {
		tb.Fatal(err)
	}
	for _, s := range sub.Seeds {
		f.AddSeed(s)
	}
	f.Fuzz(benchPR7Warm)
	return f
}

// steadyStatePair warms one fuzzer per engine, then times them over
// alternating slices of the post-warm-up continuation: engine A runs a
// slice, engine B runs a slice, repeated. Host-load drift on the
// minutes scale lands on both accumulators; the ratio is what
// survives. Returns per-engine ns/exec plus the CGT window telemetry.
func steadyStatePair(tb testing.TB, subject string, seed int64) (bNs, cNs, retraceRate, elidedFrac float64, consumed int) {
	tb.Helper()
	fb := warmFuzzer(tb, subject, fuzz.EngineBytecode, seed)
	fc := warmFuzzer(tb, subject, fuzz.EngineCGT, seed)
	pre, _ := fc.CGTInfo()
	const slice = benchPR7Measure / benchPR7Slices
	var bTot, cTot time.Duration
	budget := int64(benchPR7Warm)
	for i := 0; i < benchPR7Slices; i++ {
		budget += slice
		t0 := time.Now()
		fb.Fuzz(budget)
		t1 := time.Now()
		fc.Fuzz(budget)
		bTot += t1.Sub(t0)
		cTot += time.Since(t1)
	}
	bNs = float64(bTot.Nanoseconds()) / float64(benchPR7Measure)
	cNs = float64(cTot.Nanoseconds()) / float64(benchPR7Measure)
	if post, ok := fc.CGTInfo(); ok {
		if dFast := post.FastExecs - pre.FastExecs; dFast > 0 {
			retraceRate = float64(post.Retraces-pre.Retraces) / float64(dFast)
		}
		if post.PatchSites > 0 {
			elidedFrac = float64(post.ElidedSites) / float64(post.PatchSites)
		}
		consumed = post.ConsumedCells
	}
	return
}

func BenchmarkEngineCGTSteadyState(b *testing.B) {
	engines := []struct {
		name string
		e    fuzz.Engine
	}{
		{"bytecode", fuzz.EngineBytecode},
		{"cgt", fuzz.EngineCGT},
	}
	for _, subject := range []string{"cflow", "jq"} {
		for _, eng := range engines {
			b.Run(subject+"/"+eng.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					f := warmFuzzer(b, subject, eng.e, int64(i+1))
					b.StartTimer()
					f.Fuzz(benchPR7Warm + benchPR7Measure)
				}
				totalNs := float64(b.Elapsed().Nanoseconds())
				b.ReportMetric(totalNs/float64(b.N)/float64(benchPR7Measure), "ns/exec")
			})
		}
	}
}

// benchPR7 is the persisted schema of BENCH_PR7.json.
type benchPR7 struct {
	Note     string                 `json:"note"`
	Warmup   int64                  `json:"warmup_execs"`
	Measure  int64                  `json:"measure_execs"`
	Subjects map[string]benchPR7Sub `json:"subjects"`
}

type benchPR7Sub struct {
	BytecodeNsPerExec   float64 `json:"bytecode_ns_per_exec"`
	CGTNsPerExec        float64 `json:"cgt_ns_per_exec"`
	Speedup             float64 `json:"speedup"`
	RetraceRate         float64 `json:"retrace_rate"`
	ElidedProbeFraction float64 `json:"elided_probe_fraction"`
	ConsumedCells       int     `json:"consumed_cells"`
}

// medianOf3 runs the interleaved paired measurement on three seeds and
// returns the median-speedup sample: taking the median sample (not
// per-field medians) keeps the reported ns/exec, retrace rate, and
// elision fraction from one coherent run.
func medianOf3(t *testing.T, subject string) benchPR7Sub {
	t.Helper()
	var samples []benchPR7Sub
	for seed := int64(1); seed <= 3; seed++ {
		bNs, cNs, rr, ef, cc := steadyStatePair(t, subject, seed)
		s := benchPR7Sub{
			BytecodeNsPerExec:   bNs,
			CGTNsPerExec:        cNs,
			RetraceRate:         rr,
			ElidedProbeFraction: ef,
			ConsumedCells:       cc,
		}
		if cNs > 0 {
			s.Speedup = bNs / cNs
		}
		samples = append(samples, s)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].Speedup < samples[j].Speedup })
	return samples[1]
}

// TestWriteBenchPR7 regenerates BENCH_PR7.json: steady-state campaign
// throughput of the CGT engine vs EngineBytecode, with the engine's
// retrace rate and elided-probe fraction over the measured window. It
// is gated behind WRITE_BENCH_PR7=1 because it runs minutes of paired
// campaigns:
//
//	WRITE_BENCH_PR7=1 go test -run TestWriteBenchPR7 -timeout 30m .
func TestWriteBenchPR7(t *testing.T) {
	if os.Getenv("WRITE_BENCH_PR7") == "" {
		t.Skip("set WRITE_BENCH_PR7=1 to regenerate BENCH_PR7.json")
	}
	out := benchPR7{
		Note:     "median-speedup sample of 3 seeds; per seed, both engines replay the identical deterministic exec sequence in alternating timed slices of the same wall-clock window, so the ratio is robust to host-load drift. Retrace rate and elision fraction are measured over the post-warm-up window. The speedup tracks the probe share of a subject's execution cost: probe-dense cflow gains the most; jq (recursive descent, nearly every edge on an unbounded cycle) keeps most probes live by design — a coverage-preserving planner may not elide a cell whose high hit-count buckets are still reachable. A forced-full-elision experiment puts cflow's campaign-level ceiling at ~1.41x. Regenerate with: WRITE_BENCH_PR7=1 go test -run TestWriteBenchPR7 -timeout 40m .",
		Warmup:   benchPR7Warm,
		Measure:  benchPR7Measure,
		Subjects: map[string]benchPR7Sub{},
	}
	for _, subject := range benchPR7Subjects {
		s := medianOf3(t, subject)
		out.Subjects[subject] = s
		t.Logf("%-10s bytecode %.0f ns/exec  cgt %.0f ns/exec  speedup %.2fx  retrace %.2f%%  elided %.1f%%  consumed %d",
			subject, s.BytecodeNsPerExec, s.CGTNsPerExec, s.Speedup, 100*s.RetraceRate, 100*s.ElidedProbeFraction, s.ConsumedCells)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR7.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_PR7.json")
}
