package sema_test

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/sema"
)

func check(t *testing.T, src string) error {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sema.Check(prog)
}

func TestCheckOK(t *testing.T) {
	err := check(t, `
func f(a, b) {
    var x = a + b;
    { var x = 2; out(x); } // shadowing in an inner block is legal
    return x;
}
func main(input) {
    for (var i = 0; i < len(input); i = i + 1) {
        if (input[i] > 0) { continue; }
        break;
    }
    return f(1, 2);
}`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undefined var", `func main(input) { return x; }`, "undefined variable"},
		{"undefined assign", `func main(input) { x = 1; return 0; }`, "undefined variable"},
		{"undefined store", `func main(input) { x[0] = 1; return 0; }`, "undefined variable"},
		{"undefined func", `func main(input) { return g(); }`, "undefined function"},
		{"arity", `func f(a) { return a; } func main(input) { return f(1, 2); }`, "takes 1 argument"},
		{"builtin arity", `func main(input) { return len(); }`, "takes 1 argument"},
		{"redeclared func", `func f(a) { return 0; } func f(b) { return 1; } func main(input) { return 0; }`, "redeclared"},
		{"redeclared var", `func main(input) { var x = 1; var x = 2; return x; }`, "redeclared in this scope"},
		{"shadow builtin", `func len(a) { return 0; } func main(input) { return 0; }`, "shadows a builtin"},
		{"break outside", `func main(input) { break; }`, "break outside loop"},
		{"continue outside", `func main(input) { continue; }`, "continue outside loop"},
		{"init before decl", `func main(input) { var x = x; return 0; }`, "undefined variable"},
		{"scope exit", `func main(input) { if (1) { var y = 1; out(y); } return y; }`, "undefined variable"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := check(t, c.src)
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestSlotAssignment(t *testing.T) {
	src := `
func main(input) {
    var a = 1;
    var b = 2;
    { var c = 3; out(c); }
    { var d = 4; out(d); }
    return a + b;
}`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	// input, a, b occupy 0..2; c and d reuse slot 3 (sibling scopes).
	if f.NumSlots != 4 {
		t.Errorf("NumSlots = %d, want 4 (sibling scopes share slots)", f.NumSlots)
	}
}

func TestForClauseScope(t *testing.T) {
	// The for-init variable is scoped to the loop; reuse after is an
	// error.
	err := check(t, `
func main(input) {
    for (var i = 0; i < 3; i = i + 1) { out(i); }
    return i;
}`)
	if err == nil || !strings.Contains(err.Error(), "undefined variable") {
		t.Errorf("for-scope leak: %v", err)
	}
}

func TestIsBuiltin(t *testing.T) {
	if !sema.IsBuiltin("len") || !sema.IsBuiltin("abort") {
		t.Error("builtins missing")
	}
	if sema.IsBuiltin("main") {
		t.Error("main is not a builtin")
	}
}
