package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Options tunes a journal Writer. Zero values select defaults.
type Options struct {
	// MaxSegmentBytes rotates the active segment once it grows past
	// this size (default 4 MiB).
	MaxSegmentBytes int64
	// MaxSegments caps retained segments; the oldest are pruned after
	// rotation (default 64). Pruning trims the stream's head, never its
	// tail, so the surviving suffix stays gapless.
	MaxSegments int
	// RingSize is the per-worker flight-recorder capacity (default 64
	// events).
	RingSize int
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 64
	}
	if o.RingSize <= 0 {
		o.RingSize = 64
	}
	return o
}

const (
	segPrefix = "seg-"
	segSuffix = ".jsonl"
	// FlightDir is the journal subdirectory holding flight-recorder
	// dumps.
	FlightDir = "flight"
)

func segName(i int) string { return fmt.Sprintf("%s%06d%s", segPrefix, i, segSuffix) }

func segIndex(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(name[len(segPrefix) : len(name)-len(segSuffix)])
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// Writer is an append-only JSONL event journal. It is safe for
// concurrent use: a fleet's workers and supervisor share one Writer,
// which assigns the global gapless sequence. All methods are nil-safe,
// so callers thread an optional *Writer without guarding every call.
//
// Write errors are sticky: the first failure (disk full, permission
// lost) silently degrades the journal to a no-op rather than killing
// the campaign — journaling is forensics, never control flow. Err
// reports the degradation.
type Writer struct {
	mu   sync.Mutex
	dir  string
	opts Options

	seq      uint64 // last assigned sequence number
	segIdx   int    // active segment ordinal (1-based)
	segBytes int64
	f        *os.File
	buf      *bytes.Buffer
	err      error

	// rings holds the per-worker flight recorders: the last RingSize
	// events tagged with each worker id (supervisor events about a
	// worker land in that worker's ring too).
	rings map[int]*flightRing
}

// Open creates or re-opens the journal under dir. Re-opening validates
// the newest segment line by line and truncates any torn or corrupt
// tail (the analogue of the checkpoint loader's corrupt-skip fallback),
// then continues the sequence from the last intact event — the
// mechanism behind resume-gapless numbering.
func Open(dir string, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{dir: dir, opts: opts, buf: &bytes.Buffer{}, rings: make(map[int]*flightRing)}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	// Walk segments newest-first until one yields an intact event; torn
	// tails are truncated in place so the appended stream stays valid
	// JSONL. An entirely-corrupt newer segment is emptied (not deleted)
	// and writing resumes in it, keeping segment ordinals monotone.
	for i := len(segs) - 1; i >= 0; i-- {
		idx, _ := segIndex(segs[i])
		path := filepath.Join(dir, segs[i])
		valid, lastSeq, n, serr := scanSegment(path)
		if serr != nil {
			return nil, fmt.Errorf("journal: %w", serr)
		}
		if fi, ferr := os.Stat(path); ferr == nil && fi.Size() > valid {
			if terr := os.Truncate(path, valid); terr != nil {
				return nil, fmt.Errorf("journal: recovering %s: %w", segs[i], terr)
			}
		}
		if n > 0 {
			w.seq = lastSeq
			w.segIdx = idx
			w.segBytes = valid
			break
		}
		if i == len(segs)-1 {
			// Keep the (now empty) newest segment as the active one.
			w.segIdx = idx
			w.segBytes = 0
		}
	}
	if w.segIdx == 0 {
		w.segIdx = 1
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(w.segIdx)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w.f = f
	return w, nil
}

// listSegments returns segment filenames under dir in ascending ordinal
// order.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if _, ok := segIndex(e.Name()); ok && !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// scanSegment reads one segment and returns the byte length of its
// valid line prefix, the last valid event's sequence number, and the
// valid event count. A line that is torn (no trailing newline), not
// JSON, or not a known-schema event ends the valid prefix: everything
// after it is unrecoverable because the sequence chain is broken.
func scanSegment(path string) (validBytes int64, lastSeq uint64, n int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, 0, nil
		}
		return 0, 0, 0, err
	}
	off := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail
		}
		var ev Event
		if jerr := json.Unmarshal(data[:nl], &ev); jerr != nil || ev.Seq == 0 || ev.Kind == "" {
			break
		}
		off += int64(nl + 1)
		lastSeq = ev.Seq
		n++
		data = data[nl+1:]
	}
	return off, lastSeq, n, nil
}

// Emit appends one event, assigning its sequence number and schema
// version. Display-only by construction: the caller's event value is
// copied, and emission failures degrade silently (sticky error).
func (w *Writer) Emit(ev Event) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	w.seq++
	ev.Seq = w.seq
	ev.V = SchemaVersion
	line, err := json.Marshal(ev)
	if err != nil {
		w.err = err
		return
	}
	w.buf.Write(line)
	w.buf.WriteByte('\n')
	w.segBytes += int64(len(line) + 1)
	w.ringAdd(ev)
	if w.segBytes >= w.opts.MaxSegmentBytes {
		w.rotateLocked()
	} else if w.buf.Len() >= 64<<10 {
		w.flushLocked()
	}
}

func (w *Writer) flushLocked() {
	if w.err != nil || w.buf.Len() == 0 {
		return
	}
	if _, err := w.f.Write(w.buf.Bytes()); err != nil {
		w.err = err
		return
	}
	w.buf.Reset()
}

// rotateLocked seals the active segment and opens the next one, then
// prunes the oldest segments past the retention cap. Rotation is
// atomic from a reader's perspective: the old segment is complete
// before the new name exists.
func (w *Writer) rotateLocked() {
	w.flushLocked()
	if w.err != nil {
		return
	}
	if err := w.f.Close(); err != nil {
		w.err = err
		return
	}
	w.segIdx++
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.segIdx)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.err = err
		return
	}
	w.f = f
	w.segBytes = 0
	if segs, lerr := listSegments(w.dir); lerr == nil && len(segs) > w.opts.MaxSegments {
		for _, s := range segs[:len(segs)-w.opts.MaxSegments] {
			os.Remove(filepath.Join(w.dir, s))
		}
	}
}

// Flush pushes buffered events to the OS. The campaign checkpoint path
// calls it so every event preceding a checkpoint is durable before the
// checkpoint claims the state it describes.
func (w *Writer) Flush() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked()
}

// Close flushes and closes the active segment.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked()
	err := w.err
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	if w.err == nil {
		w.err = fmt.Errorf("journal: writer closed")
	}
	return err
}

// Seq returns the last assigned sequence number.
func (w *Writer) Seq() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Err returns the sticky degradation error, if any.
func (w *Writer) Err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Dir returns the journal directory.
func (w *Writer) Dir() string {
	if w == nil {
		return ""
	}
	return w.dir
}

// TruncateTo drops every event with sequence number greater than n —
// the resume contract: a campaign restored from a checkpoint taken at
// journal sequence n replays the exact executions that produced the
// dropped tail, re-emitting identical events with identical sequence
// numbers, so an interrupted-and-resumed journal is byte-identical to
// an uninterrupted one. If the journal holds fewer than n events
// (journaling was enabled mid-campaign), the sequence counter jumps to
// n so future numbering still matches the uninterrupted stream.
func (w *Writer) TruncateTo(n uint64) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	// Resumed replay re-emits the dropped events; stale ring contents
	// from the abandoned timeline must not leak into flight dumps.
	w.rings = make(map[int]*flightRing)
	if w.seq <= n {
		w.seq = n
		return nil
	}
	w.flushLocked()
	if w.err != nil {
		return w.err
	}
	if err := w.f.Close(); err != nil {
		w.err = err
		return err
	}
	w.f = nil
	segs, err := listSegments(w.dir)
	if err != nil {
		w.err = err
		return err
	}
	reopen := func(idx int, size int64) error {
		f, oerr := os.OpenFile(filepath.Join(w.dir, segName(idx)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if oerr != nil {
			w.err = oerr
			return oerr
		}
		w.f, w.segIdx, w.segBytes, w.seq = f, idx, size, n
		return nil
	}
	for i := len(segs) - 1; i >= 0; i-- {
		idx, _ := segIndex(segs[i])
		path := filepath.Join(w.dir, segs[i])
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			w.err = rerr
			return rerr
		}
		// Keep the prefix of lines with Seq <= n; the scan-validated
		// journal is strictly increasing, so the prefix is contiguous.
		keep := int64(0)
		rest := data
		for len(rest) > 0 {
			nl := bytes.IndexByte(rest, '\n')
			if nl < 0 {
				break
			}
			var ev Event
			if jerr := json.Unmarshal(rest[:nl], &ev); jerr != nil || ev.Seq > n {
				break
			}
			keep += int64(nl + 1)
			rest = rest[nl+1:]
		}
		if keep == 0 && i > 0 {
			// Whole segment is post-checkpoint: delete it and keep
			// walking back.
			if rmerr := os.Remove(path); rmerr != nil {
				w.err = rmerr
				return rmerr
			}
			continue
		}
		// Rewrite via temp+rename so a crash mid-truncation leaves
		// either the old or the new segment, never a torn one.
		tmp := path + ".tmp"
		if werr := os.WriteFile(tmp, data[:keep], 0o644); werr != nil {
			w.err = werr
			return werr
		}
		if rerr := os.Rename(tmp, path); rerr != nil {
			w.err = rerr
			return rerr
		}
		return reopen(idx, keep)
	}
	return reopen(1, 0)
}

// flightRing is one worker's fixed-size recent-event buffer.
type flightRing struct {
	buf  []Event
	next int
	full bool
}

func (w *Writer) ringAdd(ev Event) {
	r := w.rings[ev.Worker]
	if r == nil {
		r = &flightRing{buf: make([]Event, w.opts.RingSize)}
		w.rings[ev.Worker] = r
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

func (r *flightRing) list() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// FlightEvents returns a copy of worker's flight-recorder ring, oldest
// first.
func (w *Writer) FlightEvents(worker int) []Event {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rings[worker].list()
}

// DumpFlight persists worker's flight-recorder ring as
// <dir>/flight/<name>.jsonl — the last-N-events context shipped with
// every finding. The first dump per name wins (matching the findings
// directory, which keeps the first crash input per key), and the
// journal is flushed first so the on-disk stream contains everything
// the dump refers to.
func (w *Writer) DumpFlight(name string, worker int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	w.flushLocked()
	events := w.rings[worker].list()
	dir := filepath.Join(w.dir, FlightDir)
	path := filepath.Join(dir, SanitizeName(name)+".jsonl")
	if _, err := os.Stat(path); err == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	var buf bytes.Buffer
	for _, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			continue
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return
	}
	os.Rename(tmp, path)
}
