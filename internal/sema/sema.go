// Package sema implements semantic analysis for MiniC programs: name
// resolution (binding identifiers to function-local slots), call
// checking against declared functions and builtins, and structural
// checks such as break/continue placement.
//
// Analysis mutates the AST in place, filling the Slot fields consumed
// by the CFG builder, and FuncDecl.NumSlots consumed by the VM.
package sema

import (
	"errors"
	"fmt"

	"repro/internal/lang"
)

// Builtin describes a builtin function callable from MiniC.
type Builtin struct {
	Name  string
	Arity int
}

// Builtins lists the functions provided by the runtime. Arity -1 would
// mean variadic; all current builtins are fixed-arity.
var Builtins = map[string]Builtin{
	"len":    {Name: "len", Arity: 1},    // array length
	"alloc":  {Name: "alloc", Arity: 1},  // new zeroed array
	"assert": {Name: "assert", Arity: 1}, // crash if arg == 0
	"abort":  {Name: "abort", Arity: 0},  // unconditional crash
	"abs":    {Name: "abs", Arity: 1},
	"min":    {Name: "min", Arity: 2},
	"max":    {Name: "max", Arity: 2},
	"out":    {Name: "out", Arity: 1}, // append value to the VM output log
}

// IsBuiltin reports whether name is a builtin function.
func IsBuiltin(name string) bool {
	_, ok := Builtins[name]
	return ok
}

type checker struct {
	prog  *lang.Program
	funcs map[string]*lang.FuncDecl
	errs  []error

	// Per-function state.
	scopes    []map[string]int
	nextSlot  int
	maxSlot   int
	loopDepth int
}

// Check analyses prog, mutating it in place. It returns an error joining
// every diagnostic found, or nil if the program is well formed.
func Check(prog *lang.Program) error {
	c := &checker{prog: prog, funcs: make(map[string]*lang.FuncDecl)}
	for _, f := range prog.Funcs {
		if IsBuiltin(f.Name) {
			c.errorf(f.Pos, "function %q shadows a builtin", f.Name)
			continue
		}
		if prev, dup := c.funcs[f.Name]; dup {
			c.errorf(f.Pos, "function %q redeclared (previous at %s)", f.Name, prev.Pos)
			continue
		}
		c.funcs[f.Name] = f
	}
	for _, f := range prog.Funcs {
		c.checkFunc(f)
	}
	if len(c.errs) > 0 {
		return errors.Join(c.errs...)
	}
	return nil
}

func (c *checker) errorf(pos lang.Pos, format string, args ...any) {
	c.errs = append(c.errs, &lang.Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]int)) }
func (c *checker) popScope() {
	top := c.scopes[len(c.scopes)-1]
	c.scopes = c.scopes[:len(c.scopes)-1]
	// Slots from the closed scope can be reused by sibling scopes.
	c.nextSlot -= len(top)
}

func (c *checker) declare(pos lang.Pos, name string) int {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errorf(pos, "variable %q redeclared in this scope", name)
		return top[name]
	}
	slot := c.nextSlot
	c.nextSlot++
	if c.nextSlot > c.maxSlot {
		c.maxSlot = c.nextSlot
	}
	top[name] = slot
	return slot
}

func (c *checker) lookup(pos lang.Pos, name string) int {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if slot, ok := c.scopes[i][name]; ok {
			return slot
		}
	}
	c.errorf(pos, "undefined variable %q", name)
	return 0
}

func (c *checker) checkFunc(f *lang.FuncDecl) {
	c.scopes = nil
	c.nextSlot = 0
	c.maxSlot = 0
	c.loopDepth = 0
	c.pushScope()
	for _, p := range f.Params {
		c.declare(f.Pos, p)
	}
	c.checkBlock(f.Body)
	c.popScope()
	f.NumSlots = c.maxSlot
}

func (c *checker) checkBlock(b *lang.BlockStmt) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.BlockStmt:
		c.checkBlock(s)
	case *lang.VarStmt:
		// The initialiser is resolved before the new name is visible,
		// matching C scoping for `var x = x;` misuse.
		if s.Init != nil {
			c.checkExpr(s.Init)
		}
		s.Slot = c.declare(s.Pos, s.Name)
	case *lang.AssignStmt:
		c.checkExpr(s.Val)
		s.Slot = c.lookup(s.Pos, s.Name)
	case *lang.StoreStmt:
		c.checkExpr(s.Idx)
		c.checkExpr(s.Val)
		s.Slot = c.lookup(s.Pos, s.Name)
	case *lang.IfStmt:
		c.checkExpr(s.Cond)
		c.checkBlock(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *lang.WhileStmt:
		c.checkExpr(s.Cond)
		c.loopDepth++
		c.checkBlock(s.Body)
		c.loopDepth--
	case *lang.ForStmt:
		// The init clause introduces a scope covering cond/post/body.
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond)
		}
		c.loopDepth++
		c.checkBlock(s.Body)
		c.loopDepth--
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.popScope()
	case *lang.ReturnStmt:
		if s.Val != nil {
			c.checkExpr(s.Val)
		}
	case *lang.BreakStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos, "break outside loop")
		}
	case *lang.ContinueStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos, "continue outside loop")
		}
	case *lang.ExprStmt:
		c.checkExpr(s.X)
	default:
		c.errorf(s.NodePos(), "unhandled statement %T", s)
	}
}

func (c *checker) checkExpr(e lang.Expr) {
	switch e := e.(type) {
	case *lang.IntLit, *lang.StrLit:
	case *lang.Ident:
		e.Slot = c.lookup(e.Pos, e.Name)
	case *lang.IndexExpr:
		c.checkExpr(e.X)
		c.checkExpr(e.Idx)
	case *lang.CallExpr:
		for _, a := range e.Args {
			c.checkExpr(a)
		}
		if b, ok := Builtins[e.Name]; ok {
			if len(e.Args) != b.Arity {
				c.errorf(e.Pos, "builtin %q takes %d argument(s), got %d", e.Name, b.Arity, len(e.Args))
			}
			return
		}
		f, ok := c.funcs[e.Name]
		if !ok {
			c.errorf(e.Pos, "call to undefined function %q", e.Name)
			return
		}
		if len(e.Args) != len(f.Params) {
			c.errorf(e.Pos, "function %q takes %d argument(s), got %d", e.Name, len(f.Params), len(e.Args))
		}
	case *lang.UnaryExpr:
		c.checkExpr(e.X)
	case *lang.BinaryExpr:
		c.checkExpr(e.X)
		c.checkExpr(e.Y)
	default:
		c.errorf(e.NodePos(), "unhandled expression %T", e)
	}
}
