package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/vm"
)

// testSrc has a shallow magic-byte abort plus a deeper out-of-bounds
// write, so campaigns accumulate both bugs and queue structure.
const testSrc = `
func main(input) {
    if (len(input) < 4) { return 0; }
    if (input[0] == 'A' && input[1] == 'B') {
        abort();
    }
    var arr = alloc(16);
    if (input[2] == 'C') {
        arr[input[3] - 100] = 1;
    }
    return 0;
}`

const (
	testBudget   = 20000
	testInterval = 2500
	testStop     = 9000
)

func compileT(t testing.TB) *cfg.Program {
	t.Helper()
	p, err := cfg.Compile(testSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func testOpts() fuzz.Options {
	return fuzz.Options{
		Feedback:        instrument.FeedbackPath,
		Seed:            7,
		MapSize:         1 << 12,
		Entry:           "main",
		Limits:          vm.DefaultLimits(),
		KeepCrashInputs: true,
	}
}

func testMeta() Meta {
	return Meta{Fuzzer: "path", Seed: 7, Budget: testBudget, MapSize: 1 << 12, Entry: "main"}
}

var testSeeds = [][]byte{[]byte("xxxx"), []byte("good")}

// baseline runs the same campaign uninterrupted on a plain fuzzer and
// returns its canonical report bytes — the reference every durability
// test compares against.
func baseline(t *testing.T, opts fuzz.Options) []byte {
	t.Helper()
	f, err := fuzz.New(compileT(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range testSeeds {
		f.AddSeed(s)
	}
	f.Fuzz(testBudget)
	rep := f.Report()
	if len(rep.Bugs) == 0 {
		t.Fatalf("baseline found no bugs in %d execs; the test program is too hard", rep.Stats.Execs)
	}
	data, err := CanonicalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// interruptedStart runs a durable campaign that stops at testStop execs
// and returns the state dir, asserting the interruption happened.
func interruptedStart(t *testing.T, fs FS, dir string, opts fuzz.Options) {
	t.Helper()
	r := NewRunner(dir, Config{FS: fs, Interval: testInterval, Keep: 3, StopAfter: testStop})
	if err := r.Start(compileT(t), opts, testMeta(), testSeeds); err != nil {
		t.Fatal(err)
	}
	rep, interrupted, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted || rep != nil {
		t.Fatalf("expected interruption at %d execs, got interrupted=%v rep=%v", testStop, interrupted, rep)
	}
	if got := r.Fuzzer().Execs(); got < testStop || got >= testBudget {
		t.Fatalf("stopped at %d execs, want in [%d, %d)", got, testStop, testBudget)
	}
}

// resumeToEnd loads the latest checkpoint from dir and runs the
// campaign to completion, returning the canonical report and any load
// warnings.
func resumeToEnd(t *testing.T, fs FS, dir string, opts fuzz.Options) ([]byte, []string) {
	t.Helper()
	ck, warns, err := LoadLatest(fs, dir)
	if err != nil {
		t.Fatalf("LoadLatest: %v (warnings: %v)", err, warns)
	}
	r := NewRunner(dir, Config{FS: fs, Interval: testInterval, Keep: 3})
	if err := r.Attach(compileT(t), opts, ck); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	rep, interrupted, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if interrupted || rep == nil {
		t.Fatalf("resumed run did not complete: interrupted=%v", interrupted)
	}
	data, err := CanonicalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data, warns
}

// TestResumeDeterminism is the core durability guarantee: a campaign
// interrupted mid-run and resumed from its checkpoint produces a final
// report byte-identical to the same campaign run uninterrupted.
func TestResumeDeterminism(t *testing.T) {
	opts := testOpts()
	want := baseline(t, opts)

	dir := t.TempDir()
	interruptedStart(t, OSFS{}, dir, opts)
	got, _ := resumeToEnd(t, OSFS{}, dir, opts)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed report differs from uninterrupted baseline (%d vs %d canonical bytes)", len(got), len(want))
	}

	// Crash inputs were persisted, named by sanitized bug key.
	names, err := os.ReadDir(filepath.Join(dir, "crashes"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no crash inputs persisted: %v", err)
	}
}

// TestDoubleResumeDeterminism interrupts twice: once via StopAfter on
// the fresh campaign and once via StopAfter on the first resume.
func TestDoubleResumeDeterminism(t *testing.T) {
	opts := testOpts()
	want := baseline(t, opts)

	dir := t.TempDir()
	interruptedStart(t, OSFS{}, dir, opts)

	// First resume, interrupted again further in.
	ck, _, err := LoadLatest(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(dir, Config{FS: OSFS{}, Interval: testInterval, Keep: 3, StopAfter: 15000})
	if err := r.Attach(compileT(t), opts, ck); err != nil {
		t.Fatal(err)
	}
	if _, interrupted, err := r.Run(); err != nil || !interrupted {
		t.Fatalf("second interruption: interrupted=%v err=%v", interrupted, err)
	}

	got, _ := resumeToEnd(t, OSFS{}, dir, opts)
	if !bytes.Equal(got, want) {
		t.Fatal("doubly-resumed report differs from uninterrupted baseline")
	}
}

// newestCheckpoint returns the path of the newest checkpoint file.
func newestCheckpoint(t *testing.T, dir string) string {
	t.Helper()
	names, err := listCheckpoints(OSFS{}, dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("no checkpoints in %s: %v", dir, err)
	}
	return filepath.Join(dir, checkpointsDir, names[0])
}

// TestResumeFallbackTruncated truncates the newest checkpoint (a torn
// write) and verifies resume falls back to the previous one and still
// reproduces the baseline exactly.
func TestResumeFallbackTruncated(t *testing.T) {
	opts := testOpts()
	want := baseline(t, opts)

	dir := t.TempDir()
	interruptedStart(t, OSFS{}, dir, opts)

	path := newestCheckpoint(t, dir)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	got, warns := resumeToEnd(t, OSFS{}, dir, opts)
	if len(warns) == 0 {
		t.Error("expected a warning about the truncated checkpoint")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resume after truncated checkpoint differs from baseline")
	}
}

// TestResumeFallbackCorrupt flips a payload byte in the newest
// checkpoint and verifies the checksum rejects it, the previous
// checkpoint is used, and the final report still matches the baseline.
func TestResumeFallbackCorrupt(t *testing.T) {
	opts := testOpts()
	want := baseline(t, opts)

	dir := t.TempDir()
	interruptedStart(t, OSFS{}, dir, opts)

	path := newestCheckpoint(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen+len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, warns := resumeToEnd(t, OSFS{}, dir, opts)
	found := false
	for _, w := range warns {
		if strings.Contains(w, "checksum") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a checksum warning, got %v", warns)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resume after corrupt checkpoint differs from baseline")
	}
}

// TestResumeAllCorrupt corrupts every checkpoint: LoadLatest must
// return ErrNoCheckpoint rather than resurrecting bad state.
func TestResumeAllCorrupt(t *testing.T) {
	opts := testOpts()
	dir := t.TempDir()
	interruptedStart(t, OSFS{}, dir, opts)

	names, err := listCheckpoints(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if err := os.Truncate(filepath.Join(dir, checkpointsDir, n), 10); err != nil {
			t.Fatal(err)
		}
	}
	_, warns, err := LoadLatest(OSFS{}, dir)
	if err != ErrNoCheckpoint {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
	if len(warns) != len(names) {
		t.Fatalf("want %d warnings, got %v", len(names), warns)
	}
}

// TestCheckpointShortWrite exhausts the filesystem write budget
// mid-campaign: periodic checkpoints short-write and fail, but the
// campaign itself must complete with a baseline-identical report, and
// the surviving checkpoints must stay valid (torn temp files are never
// renamed over good state).
func TestCheckpointShortWrite(t *testing.T) {
	opts := testOpts()
	want := baseline(t, opts)

	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	var log bytes.Buffer
	r := NewRunner(dir, Config{FS: ffs, Interval: testInterval, Keep: 3, Log: &log})
	if err := r.Start(compileT(t), opts, testMeta(), testSeeds); err != nil {
		t.Fatal(err)
	}
	// Everything after the initial checkpoint hits a nearly-full disk.
	ffs.WriteBudget = 512
	rep, interrupted, err := r.Run()
	if err != nil || interrupted {
		t.Fatalf("campaign should survive checkpoint failures: interrupted=%v err=%v", interrupted, err)
	}
	got, err := CanonicalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("report after checkpoint write failures differs from baseline")
	}
	if !strings.Contains(log.String(), "failed") {
		t.Errorf("expected failure warnings in log, got %q", log.String())
	}
	// Whatever checkpoints remain must be loadable without warnings.
	if _, warns, err := LoadLatest(OSFS{}, dir); err != nil || len(warns) != 0 {
		t.Fatalf("surviving checkpoints not clean: warns=%v err=%v", warns, err)
	}
}

// TestCheckpointRenameAndSyncFailures fails renames and syncs for a few
// periodic checkpoints; the campaign completes and later checkpoints
// succeed.
func TestCheckpointRenameAndSyncFailures(t *testing.T) {
	opts := testOpts()
	want := baseline(t, opts)

	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	ffs.FailRenames = 1
	ffs.FailSyncs = 1
	var log bytes.Buffer
	r := NewRunner(dir, Config{FS: ffs, Interval: testInterval, Keep: 3, Log: &log})
	if err := r.Start(compileT(t), opts, testMeta(), testSeeds); err == nil {
		t.Fatal("initial checkpoint should fail under an armed rename fault")
	}

	// Re-arm: let the initial checkpoint through, fail two periodic ones.
	ffs = NewFaultFS(OSFS{})
	r = NewRunner(dir, Config{FS: ffs, Interval: testInterval, Keep: 3, Log: &log})
	if err := r.Start(compileT(t), opts, testMeta(), testSeeds); err != nil {
		t.Fatal(err)
	}
	ffs.FailRenames = 1
	ffs.FailSyncs = 1
	rep, interrupted, err := r.Run()
	if err != nil || interrupted {
		t.Fatalf("campaign should survive rename/sync faults: interrupted=%v err=%v", interrupted, err)
	}
	got, err := CanonicalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("report after rename/sync faults differs from baseline")
	}
	if ck, warns, err := LoadLatest(OSFS{}, dir); err != nil || len(warns) != 0 {
		t.Fatalf("checkpoints not clean after faults: warns=%v err=%v", warns, err)
	} else if ck.Snap.Stats.Execs != testBudget {
		t.Fatalf("final checkpoint at %d execs, want %d", ck.Snap.Stats.Execs, testBudget)
	}
}

// TestInjectedVMPanicDeterminism runs the whole interrupt/resume cycle
// with a deterministic execution-fault injector: panics are quarantined
// as internal faults, the campaign reaches its full budget, and resume
// determinism still holds.
func TestInjectedVMPanicDeterminism(t *testing.T) {
	opts := testOpts()
	opts.FaultInjector = func(execs int64, _ []byte) bool { return execs%251 == 13 }
	want := baseline(t, opts)

	dir := t.TempDir()
	interruptedStart(t, OSFS{}, dir, opts)
	got, _ := resumeToEnd(t, OSFS{}, dir, opts)
	if !bytes.Equal(got, want) {
		t.Fatal("resumed faulting campaign differs from uninterrupted baseline")
	}

	// The injector fired and was quarantined, not fatal.
	ck, _, err := LoadLatest(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Snap.Stats.InternalFaults == 0 {
		t.Fatal("no internal faults recorded despite injector")
	}
	if ck.Snap.Stats.Execs != testBudget {
		t.Fatalf("faulting campaign stopped at %d execs, want %d", ck.Snap.Stats.Execs, testBudget)
	}
	if len(ck.Snap.Bugs) == 0 {
		t.Fatal("crash state lost under fault injection")
	}
	names, err := os.ReadDir(filepath.Join(dir, "faults"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fault inputs persisted: %v", err)
	}
}

// TestVMStepPanicQuarantine injects a panic inside the interpreter
// itself (not the fuzz layer) on long executions and checks the fuzzer
// quarantines it and keeps finding the shallow bug.
func TestVMStepPanicQuarantine(t *testing.T) {
	opts := testOpts()
	lim := vm.DefaultLimits()
	lim.InjectPanicAtStep = 25 // deep enough that only some inputs reach it
	opts.Limits = lim

	f, err := fuzz.New(compileT(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range testSeeds {
		f.AddSeed(s)
	}
	f.Fuzz(testBudget)
	rep := f.Report()
	if rep.Stats.Execs != testBudget {
		t.Fatalf("fuzzer stopped early at %d execs", rep.Stats.Execs)
	}
	if rep.Stats.InternalFaults == 0 {
		t.Fatal("interpreter panics were not recorded as internal faults")
	}
	if len(rep.Faults) == 0 {
		t.Fatal("no fault records in report")
	}
	if len(rep.Bugs) == 0 {
		t.Fatal("quarantine cost the fuzzer its real findings")
	}
}

// TestSealOpenRejects covers the frame validator's corruption modes
// directly.
func TestSealOpenRejects(t *testing.T) {
	payload := []byte("state")
	sealed := Seal(payload)

	if got, err := Open(sealed); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %v", err)
	}
	if _, err := Open(sealed[:headerLen-1]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Open(sealed[:len(sealed)-2]); err == nil {
		t.Error("truncated payload accepted")
	}
	bad := append([]byte{}, sealed...)
	bad[headerLen] ^= 1
	if _, err := Open(bad); err == nil {
		t.Error("corrupt payload accepted")
	}
	bad = append([]byte{}, sealed...)
	bad[0] = 'X'
	if _, err := Open(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte{}, sealed...)
	bad[11] = 99 // version field
	if _, err := Open(bad); err == nil {
		t.Error("bad version accepted")
	}
}

// TestSanitizeName pins the filename mapping.
func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"oob-write:main:3:5": "oob-write_main_3_5",
		"":                   "_",
		"a b/c":              "a_b_c",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := SanitizeName(strings.Repeat("x", 300)); len(got) != 128 {
		t.Errorf("long name not capped: %d", len(got))
	}
}
