package campaign

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/fuzz"
)

func gobStats(t *testing.T, s fuzz.Stats) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStatsRoundTripAudit is the counter-integrity audit behind the
// observability work: every Stats field — including the per-stage
// execution split the telemetry layer reports — must survive the
// checkpoint/resume cycle byte-identically, and a resumed campaign's
// final counters must equal an uninterrupted run's.
func TestStatsRoundTripAudit(t *testing.T) {
	opts := testOpts()

	// Uninterrupted reference campaign.
	f, err := fuzz.New(compileT(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range testSeeds {
		f.AddSeed(s)
	}
	f.Fuzz(testBudget)
	want := f.Report().Stats

	// Sanity: the reference run exercises the stage counters the audit
	// is about.
	if want.SeedExecs == 0 || want.HavocExecs == 0 {
		t.Fatalf("reference run has empty stage counters: %+v", want)
	}
	if sum := want.SeedExecs + want.HavocExecs + want.SpliceExecs + want.CmplogExecs; sum != want.Execs {
		t.Fatalf("stage execs sum %d != total %d", sum, want.Execs)
	}

	// Interrupted campaign: stop mid-run, checkpoint, resume to the end.
	dir := t.TempDir()
	interruptedStart(t, OSFS{}, dir, opts)

	ck, warns, err := LoadLatest(OSFS{}, dir)
	if err != nil {
		t.Fatalf("LoadLatest: %v (warnings %v)", err, warns)
	}
	// Mid-campaign audit: restoring the checkpoint and snapshotting
	// again must reproduce the checkpointed Stats byte-for-byte.
	mid, err := fuzz.Restore(compileT(t), opts, ck.Snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := gobStats(t, mid.Snapshot().Stats), gobStats(t, ck.Snap.Stats); !bytes.Equal(got, want) {
		t.Fatalf("Stats not byte-identical across restore+snapshot: %d vs %d bytes", len(got), len(want))
	}

	r := NewRunner(dir, Config{FS: OSFS{}, Interval: testInterval, Keep: 3})
	if err := r.Attach(compileT(t), opts, ck); err != nil {
		t.Fatal(err)
	}
	rep, interrupted, err := r.Run()
	if err != nil || interrupted || rep == nil {
		t.Fatalf("resumed run did not complete: err=%v interrupted=%v", err, interrupted)
	}

	if !reflect.DeepEqual(rep.Stats, want) {
		t.Errorf("resumed final Stats differ from uninterrupted run:\nresumed: %+v\nwant:    %+v", rep.Stats, want)
	}
	if !bytes.Equal(gobStats(t, rep.Stats), gobStats(t, want)) {
		t.Error("resumed final Stats not byte-identical to uninterrupted run")
	}
}
