package instrument

import "repro/internal/cfg"

// This file exports the cell-index layout of the exact feedbacks for
// coverage cartography (package covmap): the reverse map from coverage
// cells to program meaning needs the same global ID bases the tracers
// and the bytecode lowering use. Nothing here changes instrumentation
// semantics.

// EdgeBases returns, per function, the offset of its edges in the
// global edge ID space used by the edge and pathafl feedbacks: edge e
// of function f writes map cell (EdgeBases(p)[f.ID] + e) & (mapSize-1).
func EdgeBases(p *cfg.Program) []uint32 { return edgeBase(p) }

// BlockBases returns, per function, the offset of its blocks in the
// global block ID space used by the block feedback (function entry
// writes the base itself; edge e writes base + Edges[e].To) and as the
// n-gram feedback's block locations.
func BlockBases(p *cfg.Program) []uint32 { return blockBase(p) }

// NGramDefault returns the n-gram window width the ngram feedback uses
// for this configuration (the withDefaults value), so offline tools
// describe hashed cells with the width that actually ran.
func NGramDefault(c Config) int { return c.withDefaults().NGram }

// PathAFLTrackedFns reports which functions the pathafl feedback
// instruments with segment hashing (small functions are pruned), using
// the same threshold the tracer applies.
func PathAFLTrackedFns(p *cfg.Program, c Config) []bool {
	c = c.withDefaults()
	tracked := make([]bool, len(p.Funcs))
	for i, f := range p.Funcs {
		tracked[i] = len(f.Blocks) >= c.PathAFLMinBlocks
	}
	return tracked
}
