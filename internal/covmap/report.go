package covmap

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/analysis/interproc"
	"repro/internal/cfg"
	"repro/internal/instrument"
)

// Options tunes report construction.
type Options struct {
	// Label names the campaign in report headers (subject/fuzzer).
	Label string
	// Facts, when set, joins the frontier report against interprocedural
	// input-dependency analysis: each frontier branch shows which input
	// bytes govern it.
	Facts *interproc.Facts
	// MaxFrontier caps the rendered frontier rows (0 = 50).
	MaxFrontier int
}

// FuncCov is one function's row of the coverage table.
type FuncCov struct {
	Fn                        int
	Name                      string
	BlocksCovered, Blocks     int
	EdgesCovered, Edges       int
	PathsSeen, PathsAmbiguous int
	NumPaths                  uint64
	// PathMode: "exact", "hash", "overflow", or "" when the report's
	// feedback does not observe paths.
	PathMode string
}

// Line is one annotated source line. Covered: 0 uncovered, 1 possibly
// covered (only via ambiguous cells), 2 definitely covered.
type Line struct {
	No         int
	Text       string
	Executable bool
	Covered    int
	Buckets    uint8
}

// Frontier is one reached-but-unexplored branch.
type Frontier struct {
	Fn             int
	FnName         string
	Block          int
	Line           int
	Unexplored     string // "then" or "else"
	UnexploredLine int
	// Rarity is the AFL hit-bucket class (1-8) of the branch's explored
	// side — lower is rarer; 0 when the observation source records
	// presence only.
	Rarity int
	// Dep describes the input bytes governing the branch per the
	// interproc facts ("" when no facts were supplied).
	Dep string
}

// Report is the rendered cartography of one campaign's coverage.
type Report struct {
	Label    string
	Feedback string
	MapSize  int

	Observed   int
	Resolved   int
	Exact      int
	Ambiguous  int
	BucketOnly int
	Collisions int
	Unresolved []uint32

	Funcs        []FuncCov
	Lines        []Line
	Frontier     []Frontier
	FrontierNote string
}

// coverageSets tracks definite/possible coverage at block and edge
// granularity, globally indexed.
type coverageSets struct {
	defBlock, posBlock [][]bool
	defEdge, posEdge   [][]bool
}

func newCoverageSets(p *cfg.Program) *coverageSets {
	cs := &coverageSets{}
	for _, f := range p.Funcs {
		cs.defBlock = append(cs.defBlock, make([]bool, len(f.Blocks)))
		cs.posBlock = append(cs.posBlock, make([]bool, len(f.Blocks)))
		cs.defEdge = append(cs.defEdge, make([]bool, len(f.Edges)))
		cs.posEdge = append(cs.posEdge, make([]bool, len(f.Edges)))
	}
	return cs
}

func (cs *coverageSets) block(fn, b int, definite bool) {
	cs.posBlock[fn][b] = true
	if definite {
		cs.defBlock[fn][b] = true
	}
}

func (cs *coverageSets) edge(fn, e int, definite bool) {
	cs.posEdge[fn][e] = true
	if definite {
		cs.defEdge[fn][e] = true
	}
}

// BuildReport resolves every observation against the index and renders
// the three cartography artifacts' data: summary counts, per-function
// and per-line coverage, and the frontier.
func (ix *Index) BuildReport(obs []Obs, opt Options) *Report {
	r := &Report{
		Label:    opt.Label,
		Feedback: ix.Feedback.String(),
		MapSize:  ix.MapSize,
	}
	cs := newCoverageSets(ix.Prog)
	// Per-line bucket attribution, filled as meanings resolve.
	lineBuckets := make(map[int]uint8)
	lineCovered := make(map[int]int)
	noteLines := func(fn, block int, buckets uint8, definite bool) {
		lo, hi, ok := ix.BlockLines(fn, block)
		if !ok {
			return
		}
		covered := 1
		if definite {
			covered = 2
		}
		for l := lo; l <= hi; l++ {
			lineBuckets[l] |= buckets
			if covered > lineCovered[l] {
				lineCovered[l] = covered
			}
		}
	}
	pathsSeen := make(map[int]map[uint64]bool)
	pathsAmb := make(map[int]map[uint64]bool)

	for _, o := range obs {
		ms := ix.Resolve(o.Cell)
		if len(ms) == 0 {
			r.Unresolved = append(r.Unresolved, o.Cell)
			continue
		}
		r.Observed++
		r.Resolved++
		exact := 0
		for _, m := range ms {
			if m.Kind.Exact() {
				exact++
			}
		}
		definite := len(ms) == 1
		switch {
		case exact == 0:
			r.BucketOnly++
		case definite:
			r.Exact++
		default:
			r.Ambiguous++
		}
		if exact > 1 {
			r.Collisions++
		}
		for _, m := range ms {
			switch m.Kind {
			case KindEdge:
				ed := ix.Prog.Funcs[m.Fn].Edges[m.Edge]
				cs.edge(m.Fn, m.Edge, definite)
				cs.block(m.Fn, ed.From, definite)
				cs.block(m.Fn, ed.To, definite)
				noteLines(m.Fn, ed.From, o.Buckets, definite)
				noteLines(m.Fn, ed.To, o.Buckets, definite)
			case KindEntry, KindBlock:
				cs.block(m.Fn, m.Block, definite)
				noteLines(m.Fn, m.Block, o.Buckets, definite)
			case KindPath:
				set := pathsSeen
				if !definite {
					set = pathsAmb
				}
				if set[m.Fn] == nil {
					set[m.Fn] = make(map[uint64]bool)
				}
				set[m.Fn][m.PathID] = true
				steps, err := ix.Decode(m)
				if err != nil {
					continue
				}
				prev := -1
				for _, s := range steps {
					cs.block(m.Fn, s.Block, definite)
					noteLines(m.Fn, s.Block, o.Buckets, definite)
					if prev >= 0 {
						if e := ix.edgeIndex(m.Fn, prev, s.Block); e >= 0 {
							cs.edge(m.Fn, e, definite)
						}
					}
					prev = s.Block
				}
				// Acyclic paths end AT back edges: a path whose last
				// step exits via a back edge proves that back edge ran,
				// but the edge itself is outside the decoded sequence.
				// Credit it here — definitely when the latch has a
				// single back edge, tentatively when several could have
				// fired. (Back-edge *entries* need no handling: every
				// enter pairs with some path's marked exit.)
				if len(steps) > 0 && steps[len(steps)-1].ExitViaBackEdge {
					backs := ix.backEdgesFrom(m.Fn, steps[len(steps)-1].Block)
					for _, e := range backs {
						cs.edge(m.Fn, e, definite && len(backs) == 1)
					}
				}
			}
		}
	}
	r.Observed += len(r.Unresolved)

	r.buildFuncs(ix, cs, pathsSeen, pathsAmb)
	r.buildLines(ix, lineBuckets, lineCovered)
	r.buildFrontier(ix, cs, obs, opt)
	return r
}

func (r *Report) buildFuncs(ix *Index, cs *coverageSets, seen, amb map[int]map[uint64]bool) {
	for fi, f := range ix.Prog.Funcs {
		fc := FuncCov{Fn: fi, Name: f.Name, Blocks: len(f.Blocks), Edges: len(f.Edges)}
		for b := range f.Blocks {
			if cs.posBlock[fi][b] {
				fc.BlocksCovered++
			}
		}
		for e := range f.Edges {
			if cs.posEdge[fi][e] {
				fc.EdgesCovered++
			}
		}
		if ix.Feedback == instrument.FeedbackPath {
			fc.PathMode = "exact"
			fc.NumPaths = ix.NumPaths(fi)
			if ix.encs[fi] == nil {
				fc.PathMode = "hash"
			} else {
				for _, ofn := range ix.OverflowFns {
					if ofn == fi {
						fc.PathMode = "overflow"
					}
				}
			}
			fc.PathsSeen = len(seen[fi])
			for id := range amb[fi] {
				if !seen[fi][id] {
					fc.PathsAmbiguous++
				}
			}
		}
		r.Funcs = append(r.Funcs, fc)
	}
}

func (r *Report) buildLines(ix *Index, buckets map[int]uint8, covered map[int]int) {
	src := strings.Split(ix.Prog.Source, "\n")
	executable := make(map[int]bool)
	for fi := range ix.Prog.Funcs {
		for bi := range ix.Prog.Funcs[fi].Blocks {
			if lo, hi, ok := ix.BlockLines(fi, bi); ok {
				for l := lo; l <= hi; l++ {
					executable[l] = true
				}
			}
		}
	}
	for i, text := range src {
		no := i + 1
		r.Lines = append(r.Lines, Line{
			No:         no,
			Text:       text,
			Executable: executable[no],
			Covered:    covered[no],
			Buckets:    buckets[no],
		})
	}
}

// buildFrontier lists reached branches with exactly one unexplored
// side. The unexplored side is sound for every feedback that attributes
// edges or blocks: its cell (or any path containing it) was never
// consumed, so no recorded execution took it. For the block feedback
// the explored side is block-granular (a target block reachable from
// elsewhere over-approximates "explored"); for hashed feedbacks
// (ngram) no frontier can be derived and FrontierNote says so.
func (r *Report) buildFrontier(ix *Index, cs *coverageSets, obs []Obs, opt Options) {
	switch ix.Feedback {
	case instrument.FeedbackNGram:
		r.FrontierNote = "frontier unavailable: ngram cells are hash buckets with no block attribution"
		return
	}
	bucketOf := make(map[uint32]uint8, len(obs))
	for _, o := range obs {
		bucketOf[o.Cell] |= o.Buckets
	}
	mask := uint32(ix.MapSize - 1)
	eb, bb := instrument.EdgeBases(ix.Prog), instrument.BlockBases(ix.Prog)
	blockGranular := ix.Feedback == instrument.FeedbackBlock
	var rows []Frontier
	for fi, f := range ix.Prog.Funcs {
		if ix.Feedback == instrument.FeedbackPath {
			if ix.encs == nil || ix.encs[fi] == nil {
				continue // hash-mode: cells are buckets, no attribution
			}
			skip := false
			for _, ofn := range ix.OverflowFns {
				if ofn == fi {
					skip = true
				}
			}
			if skip {
				continue
			}
		}
		for bi := range f.Blocks {
			blk := &f.Blocks[bi]
			if blk.Term.Kind != cfg.TermBr || blk.Term.Then == blk.Term.Else {
				continue
			}
			if !cs.posBlock[fi][bi] {
				continue
			}
			var thenCov, elseCov bool
			if blockGranular {
				thenCov = cs.posBlock[fi][blk.Term.Then]
				elseCov = cs.posBlock[fi][blk.Term.Else]
			} else {
				thenCov = cs.posEdge[fi][blk.EdgeThen]
				elseCov = cs.posEdge[fi][blk.EdgeElse]
			}
			if thenCov == elseCov {
				continue
			}
			fr := Frontier{Fn: fi, FnName: f.Name, Block: bi, Line: blk.Term.Pos.Line}
			exploredEdge, exploredBlock, missBlock := blk.EdgeThen, blk.Term.Then, blk.Term.Else
			fr.Unexplored = "else"
			if elseCov {
				fr.Unexplored = "then"
				exploredEdge, exploredBlock, missBlock = blk.EdgeElse, blk.Term.Else, blk.Term.Then
			}
			if lo, _, ok := ix.BlockLines(fi, missBlock); ok {
				fr.UnexploredLine = lo
			}
			// Rarity: hit bucket of the explored side's own cell (only
			// the feedbacks whose cells are edge/block indexed have one;
			// path-feedback rarity would need per-path aggregation and
			// stays 0 = unknown).
			switch ix.Feedback {
			case instrument.FeedbackEdge, instrument.FeedbackPathAFL:
				cell := (eb[fi] + uint32(exploredEdge)) & mask
				fr.Rarity = bucketClass(bucketOf[cell])
			case instrument.FeedbackBlock:
				cell := (bb[fi] + uint32(exploredBlock)) & mask
				fr.Rarity = bucketClass(bucketOf[cell])
			}
			if opt.Facts != nil && fi < len(opt.Facts.Fns) {
				for _, bf := range opt.Facts.Fns[fi].Branches {
					if bf.Block == bi {
						if !bf.Dep {
							fr.Dep = "input-independent"
						} else {
							fr.Dep = bf.Bytes.String()
							if fr.Dep == "-" {
								fr.Dep = "length-only"
							}
						}
						break
					}
				}
			}
			rows = append(rows, fr)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ri, rj := rows[i].Rarity, rows[j].Rarity
		if ri == 0 {
			ri = 9
		}
		if rj == 0 {
			rj = 9
		}
		if ri != rj {
			return ri < rj
		}
		if rows[i].Fn != rows[j].Fn {
			return rows[i].Fn < rows[j].Fn
		}
		return rows[i].Block < rows[j].Block
	})
	max := opt.MaxFrontier
	if max <= 0 {
		max = 50
	}
	if len(rows) > max {
		r.FrontierNote = fmt.Sprintf("showing %d of %d frontier branches", max, len(rows))
		rows = rows[:max]
	}
	r.Frontier = rows
}

// bucketClass returns the highest AFL hit-count class present in a
// bucket bitmask (1-8; 0 for an empty mask).
func bucketClass(b uint8) int {
	for c := 8; c >= 1; c-- {
		if b&(1<<(c-1)) != 0 {
			return c
		}
	}
	return 0
}

// marker renders a line's two-character coverage marker.
func (l Line) marker() string {
	if !l.Executable {
		return "  "
	}
	switch {
	case l.Covered == 0:
		return " -"
	case l.Covered == 1:
		return " ?"
	case l.Buckets == 0:
		return " +"
	default:
		return fmt.Sprintf("%2d", bucketClass(l.Buckets))
	}
}

// WriteText renders the full text report: summary, per-function table,
// frontier, annotated source. The summary line "unresolved cells: N"
// and the "frontier branches: N" line are stable grep targets for CI.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "coverage cartography: %s feedback=%s map=%d\n", r.Label, r.Feedback, r.MapSize)
	fmt.Fprintf(w, "observed cells: %d  resolved: %d (exact %d, ambiguous %d, hash-bucket %d, collisions %d)\n",
		r.Observed, r.Resolved, r.Exact, r.Ambiguous, r.BucketOnly, r.Collisions)
	fmt.Fprintf(w, "unresolved cells: %d", len(r.Unresolved))
	if len(r.Unresolved) > 0 {
		fmt.Fprintf(w, " %v", r.Unresolved)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "\nper-function coverage:\n")
	fmt.Fprintf(w, "  %-20s %9s %9s  %s\n", "function", "blocks", "edges", "paths")
	for _, fc := range r.Funcs {
		paths := ""
		switch fc.PathMode {
		case "exact":
			paths = fmt.Sprintf("%d of %d paths seen", fc.PathsSeen, fc.NumPaths)
			if fc.PathsAmbiguous > 0 {
				paths += fmt.Sprintf(" (+%d ambiguous)", fc.PathsAmbiguous)
			}
		case "hash":
			paths = "hash mode (buckets only)"
		case "overflow":
			paths = fmt.Sprintf("%d paths: beyond enumeration cap", fc.NumPaths)
		}
		fmt.Fprintf(w, "  %-20s %4d/%-4d %4d/%-4d  %s\n",
			fc.Name, fc.BlocksCovered, fc.Blocks, fc.EdgesCovered, fc.Edges, paths)
	}

	fmt.Fprintf(w, "\nfrontier branches: %d\n", len(r.Frontier))
	if r.FrontierNote != "" {
		fmt.Fprintf(w, "  (%s)\n", r.FrontierNote)
	}
	if len(r.Frontier) > 0 {
		fmt.Fprintf(w, "  %-6s %-16s %-6s %-5s %-10s %-6s %s\n", "rarity", "function", "block", "line", "unexplored", "@line", "input-bytes")
		for _, fr := range r.Frontier {
			rar := "?"
			if fr.Rarity > 0 {
				rar = fmt.Sprintf("b%d", fr.Rarity)
			}
			fmt.Fprintf(w, "  %-6s %-16s b%-5d %-5d %-10s %-6d %s\n",
				rar, fr.FnName, fr.Block, fr.Line, fr.Unexplored, fr.UnexploredLine, fr.Dep)
		}
	}

	fmt.Fprintf(w, "\nannotated source (%s: '-' uncovered, '+' covered, digit = max hit bucket, '?' ambiguous):\n", r.Feedback)
	for _, l := range r.Lines {
		fmt.Fprintf(w, "%5d %s| %s\n", l.No, l.marker(), l.Text)
	}
}
