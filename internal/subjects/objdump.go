package subjects

import "repro/internal/vm"

// objdump models an instruction-stream disassembler: prefix-driven
// decode state, escape opcodes, ModRM/SIB addressing, a label table
// that accumulates across branches, and section alignment. It is one of
// the bug-densest subjects, and its cull-favored profile mirrors the
// paper (cull found 12 objdump bugs vs pcguard's 8): several bugs are
// reachable only after the decoder state machine is driven through
// particular prefix paths or accumulates state across many
// instructions.
const objdumpSrc = `
// objdump: byte-code disassembler.
// Layout: "OD" align(1) code bytes...
// Decode state st: st[0]=opsize prefix, st[1]=segment prefix,
// st[2]=label count, st[3]=instruction count.

func decode_escape(input, pos, st) {
    // 0x0F escape: second opcode byte selects an extended table.
    var ext_tab = alloc(32);
    var op2 = 0;
    if (pos < len(input)) { op2 = input[pos]; }
    var group = op2 >> 3;
    ext_tab[group * 5] = op2; // BUG ob-1: group*5 reaches 155 for op2 255
    return pos + 1;
}

func decode_modrm(input, pos, st) {
    if (pos >= len(input)) { return pos; }
    var modrm = input[pos];
    pos = pos + 1;
    var mode = modrm >> 6;
    var rm = modrm & 7;
    if (mode != 3 && rm == 4) {
        // SIB byte follows.
        if (pos < len(input)) {
            var sib = input[pos];
            pos = pos + 1;
            var scale_tab = alloc(4);
            scale_tab[0] = 1; scale_tab[1] = 2; scale_tab[2] = 4; scale_tab[3] = 8;
            var sc = scale_tab[sib >> 5]; // BUG ob-2: 3-bit shift indexes a 4-entry table
            out(sc);
        }
    }
    if (mode == 1) { pos = pos + 1; }
    if (mode == 2) { pos = pos + 4; }
    return pos;
}

func decode_imm(input, pos, st) {
    var width = 1;
    if (st[0] == 1) { width = 2; }
    // BUG ob-3 (path-dependent): the operand-size-prefix path reads a
    // 2-byte immediate without re-checking the buffer end.
    var v = input[pos];
    if (width == 2) {
        v = v | (input[pos + 1] << 8);
    }
    out(v);
    return pos + width;
}

func record_label(labels, st, target) {
    labels[st[2]] = target; // BUG ob-4: label count creeps past 24 across many branches
    st[2] = st[2] + 1;
    return 0;
}

func align_section(pos, align) {
    var pad = pos % align; // BUG ob-5: zero alignment byte
    return pos + pad;
}

func read_symbol(input, pos, strtab_off) {
    // Symbol names live at strtab_off + index.
    var idx = input[pos];
    return input[strtab_off + idx]; // BUG ob-6: unchecked string table offset
}

func main(input) {
    if (len(input) < 4) { return 1; }
    if (input[0] != 'O' || input[1] != 'D') { return 1; }
    var align = input[2];
    var st = alloc(4);
    var labels = alloc(24);
    var pos = 3;
    while (pos < len(input)) {
        var op = input[pos];
        pos = pos + 1;
        if (op == 0x66) {
            st[0] = 1;
        } else if (op == 0x2E) {
            st[1] = 1;
        } else if (op == 0x0F) {
            pos = decode_escape(input, pos, st);
            st[0] = 0;
        } else if (op == 0x89 || op == 0x8B) {
            pos = decode_modrm(input, pos, st);
            st[0] = 0;
        } else if (op == 0xB8) {
            if (pos < len(input)) {
                pos = decode_imm(input, pos, st);
            }
            st[0] = 0;
        } else if (op == 0xEB) {
            if (pos < len(input)) {
                record_label(labels, st, pos + input[pos]);
                pos = pos + 1;
            }
            st[0] = 0;
        } else if (op == 0x90) {
            pos = align_section(pos, align);
        } else if (op == 0xA1) {
            if (pos + 1 < len(input)) {
                out(read_symbol(input, pos, input[pos + 1]));
            }
            pos = pos + 2;
            st[0] = 0;
        } else if (op == 0x06) {
            abort(); // BUG ob-7: reserved opcode hits an internal abort
        } else {
            st[0] = 0;
        }
        st[3] = st[3] + 1;
    }
    return st[3];
}
`

func init() {
	// ob-4 witness: 25 short-jump instructions creep the label counter
	// past the 24-entry table.
	ob4 := []byte{'O', 'D', 1}
	for i := 0; i < 25; i++ {
		ob4 = append(ob4, 0xEB, 1)
	}

	register(&Subject{
		Name:      "objdump",
		TypeLabel: "C",
		Source:    objdumpSrc,
		Seeds: [][]byte{
			{'O', 'D', 4, 0x90, 0xB8, 7, 0x89, 0xC3, 0xEB, 2, 0x90},
			{'O', 'D', 1, 0x66, 0xB8, 1, 2, 0x8B, 0x04, 0x25},
		},
		Bugs: []Bug{
			{
				ID:       "ob-1-escape-oob",
				Witness:  []byte{'O', 'D', 1, 0x0F, 0xFF},
				WantKind: vm.KindOOBWrite,
				WantFunc: "decode_escape",
				Comment:  "extended-opcode group index group*5 overruns the 32-entry table",
			},
			{
				ID:       "ob-2-sib-scale-oob",
				Witness:  []byte{'O', 'D', 1, 0x8B, 0x04, 0x80},
				WantKind: vm.KindOOBRead,
				WantFunc: "decode_modrm",
				Comment:  "SIB scale uses a 3-bit shift against a 4-entry table",
			},
			{
				ID:            "ob-3-imm16-oob",
				Witness:       []byte{'O', 'D', 1, 0x66, 0xB8, 5},
				WantKind:      vm.KindOOBRead,
				WantFunc:      "decode_imm",
				PathDependent: true,
				Comment: "the 0x66 operand-size prefix path reads a 2-byte immediate; the " +
					"buffer check upstream only covers 1 byte",
			},
			{
				ID:            "ob-4-label-creep",
				Witness:       ob4,
				WantKind:      vm.KindOOBWrite,
				WantFunc:      "record_label",
				PathDependent: true,
				Comment: "each short-jump decode path appends to the label table unchecked; " +
					"25 branches creep past its 24 cells (the cflow pattern)",
			},
			{
				ID:       "ob-5-align-div",
				Witness:  []byte{'O', 'D', 0, 0x90},
				WantKind: vm.KindDivByZero,
				WantFunc: "align_section",
				Comment:  "zero section alignment divides in the padding computation",
			},
			{
				ID:       "ob-6-strtab-oob",
				Witness:  []byte{'O', 'D', 1, 0xA1, 200, 100},
				WantKind: vm.KindOOBRead,
				WantFunc: "read_symbol",
				Comment:  "symbol name lookup adds an unchecked string-table offset",
			},
			{
				ID:       "ob-7-reserved-abort",
				Witness:  []byte{'O', 'D', 1, 0x06},
				WantKind: vm.KindAbort,
				WantFunc: "main",
				Comment:  "reserved opcode 0x06 aborts the disassembler",
			},
		},
	})
}
