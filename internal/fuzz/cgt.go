package fuzz

import (
	"repro/internal/bytecode"
	"repro/internal/coverage"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// This file is the fuzzing side of the coverage-guided tracing (CGT)
// engine (-engine=cgt): tracing-on-demand execution with self-patching
// probe elision and coverage-preserving retrace.
//
// The fast path runs a patched clone of the compiled program in which
// every probe whose coverage-map cell is consumed has been rewritten
// to a non-probing variant — statically for probes with compile-time
// map cells (bytecode.Patchable), record-side for dynamic-index probes
// (Machine.SetElide). A cell is consumed once every hit-count bucket
// any execution can still produce there has been observed in the
// virgin map: all eight buckets under the baseline rule, or just the
// reachable ones when the static hit-count bound analysis applies
// (edge and block feedback; see bytecode.CellHitBounds). A fast run
// therefore produces a partial coverage map: exact counts on live
// cells, zero on consumed cells.
//
// Why that partial map decides novelty exactly: a consumed cell's
// remaining virgin bits, if any, correspond to buckets no execution
// can reach, so a full run's writes there can never clear another bit;
// and live cells receive exactly the same counts under both programs
// (elision removes writes, it never reroutes control flow or perturbs
// hit counts elsewhere). Hence MergeSparse(partial) returns the same
// Novelty verdict and performs the same virgin mutation as
// MergeSparse(full) — the elision rule of coverage-preserving
// coverage-guided tracing (Nagy et al.), tightened by loop-bound
// reasoning.
//
// The merge verdict is also the retrace trigger. Whenever the campaign
// needs the canonical full classified map — a novel input about to be
// queued, a crash to deduplicate against the crash-virgin map, or the
// very first seed (whose coverage is read back unconditionally) — the
// input is re-executed once under the pristine fully-instrumented
// machine. Everything downstream (calibration, queue entries, novelty
// decisions, crash records, reports) consumes only retraced maps or
// merge verdicts, so campaign results are byte-identical to
// EngineBytecode; the retrace/elision counters live here, not in
// Stats, to keep Report comparisons exact.
//
// The patch plan is recomputed only at deterministic boundaries —
// queue-cycle starts (right after the favored-corpus cull) and
// checkpoint restore — never mid-cycle, and always as a pure function
// of the current virgin map, so resumed and fleet-synced campaigns
// derive their plans from identical state.

// cgtState carries the CGT engine's machinery and its private
// counters. All counters are engine-internal: they never appear in
// Stats, Report, or Snapshot (reports must be byte-identical to
// EngineBytecode, and a restored campaign simply replans from the
// restored virgin map).
type cgtState struct {
	patch    *bytecode.Patchable
	fast     *bytecode.Machine
	consumed *coverage.Bitset
	// fastExecs counts fast-path executions, retraces the full-
	// instrumentation re-executions among them, replans the plan
	// recomputations; elided mirrors the current plan's elided-site
	// count (a gauge).
	fastExecs int64
	retraces  int64
	replans   int64
	elided    int
}

// CGTInfo is the CGT engine's observability snapshot, surfaced for
// telemetry and the benchmark harness.
type CGTInfo struct {
	// FastExecs counts executions dispatched to the patched machine;
	// Retraces counts how many of them were re-executed under full
	// instrumentation. The steady-state retrace rate is
	// Retraces/FastExecs over a trailing window.
	FastExecs int64
	Retraces  int64
	// Replans counts patch-plan recomputations (cycle starts and
	// checkpoint restores).
	Replans int64
	// ElidedSites of PatchSites statically patchable probe sites are
	// currently patched out; ConsumedCells is the map-wide count of
	// consumed cells (dynamic-probe elision uses it too).
	ElidedSites   int
	PatchSites    int
	ConsumedCells int
}

// CGTInfo reports the coverage-guided tracing engine's internal
// counters; ok is false for other engines.
func (f *Fuzzer) CGTInfo() (info CGTInfo, ok bool) {
	if f.cgt == nil {
		return CGTInfo{}, false
	}
	return CGTInfo{
		FastExecs:     f.cgt.fastExecs,
		Retraces:      f.cgt.retraces,
		Replans:       f.cgt.replans,
		ElidedSites:   f.cgt.elided,
		PatchSites:    f.cgt.patch.NumSites(),
		ConsumedCells: f.cgt.consumed.Count(),
	}, true
}

// replanCGT recomputes the probe-elision plan from the virgin map. It
// is called only at queue-cycle starts and checkpoint restore, so the
// plan is a deterministic function of campaign state at well-defined
// boundaries — the property the snapshot/fleet byte-identity suites
// pin down.
func (f *Fuzzer) replanCGT() {
	if f.cgt == nil {
		return
	}
	f.virgin.ConsumedInto(f.cgt.consumed, f.cgt.patch.CellMasks())
	if f.guide != nil {
		// Analysis-guided tightening: cells only statically-infeasible
		// path IDs can write are never touched by any execution, so
		// marking them consumed up front cannot suppress novelty — it
		// only lets elision start before the virgin map proves the same
		// thing dynamically.
		for _, c := range f.guide.deadCells {
			f.cgt.consumed.Set(c)
		}
	}
	f.cgt.elided = f.cgt.patch.Replan(f.cgt.consumed)
	f.cgt.replans++
}

// executeCGT is execute for the CGT engine: run the patched fast
// machine, decide novelty from the partial map, and retrace under full
// instrumentation only when the canonical map is actually needed. It
// must mutate Stats and the virgin maps exactly as execute does.
func (f *Fuzzer) executeCGT(data []byte) execOutcome {
	f.cov.Reset()
	res, faultMsg, ok := f.runProtectedOn(f.cgt.fast, data, true)
	f.stats.Execs++
	switch f.curStage {
	case stageSeed:
		f.stats.SeedExecs++
	case stageHavoc:
		f.stats.HavocExecs++
	case stageSplice:
		f.stats.SpliceExecs++
	case stageCmplog:
		f.stats.CmplogExecs++
	}
	if !ok {
		// Quarantined like execute: injected faults fire before the
		// fast run (same pre-increment exec index as the other
		// engines), and mid-run injected panics abort the fast run at
		// the exact step they would abort the pristine one — patched
		// opcodes charge no steps. No retrace: the execution
		// contributes nothing to the campaign.
		f.recordFault(data, faultMsg)
		f.cov.Reset()
		return execOutcome{res: vm.Result{Status: vm.StatusOK}}
	}
	f.cgt.fastExecs++
	f.stats.TotalSteps += res.Steps
	f.cov.ClassifySparse()
	nov := f.virgin.MergeSparse(f.cov)

	// Retrace when the campaign will read the map itself rather than
	// just the merge verdict: novelty (the input is being queued and
	// its classified indices recorded), any crash (crash-virgin
	// dedup needs full-map bits), or an empty queue (AddSeed reads
	// the map back unconditionally for the first seed). A timeout
	// without novelty needs none — probes charge no steps, so the
	// fast run timed out at the identical step and only the Timeouts
	// counter is touched.
	if nov != coverage.NoNew || res.Status == vm.StatusCrash || len(f.queue) == 0 {
		f.cgt.retraces++
		var endSpan func()
		if f.tel != nil {
			endSpan = f.tel.StartSpan(telemetry.StageRetrace)
		}
		f.cov.Reset()
		// No fault injection on the retrace: the injector already
		// passed for this exec index, and charging it twice would
		// desync the fault schedule from the other engines.
		full, _, fullOK := f.runProtectedOn(f.mach, data, false)
		if endSpan != nil {
			endSpan()
		}
		if fullOK {
			res = full
			f.cov.ClassifySparse()
			// No virgin re-merge: the partial merge above already
			// cleared every bit the full map could (an elided cell's
			// remaining virgin bits are unreachable by construction).
			// Steps were counted once; the retrace's are identical.
		}
	}

	out := execOutcome{res: res, novelty: nov}
	if nov != coverage.NoNew {
		out.cov = f.cov.Indices()
	}
	switch res.Status {
	case vm.StatusTimeout:
		f.stats.Timeouts++
	case vm.StatusCrash:
		f.stats.CrashExecs++
		if f.crashVirgin.MergeSparse(f.cov) != coverage.NoNew {
			f.stats.AFLUniqueCrashes++
		}
		f.recordCrash(data, res.Crash)
	}
	return out
}
