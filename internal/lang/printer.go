package lang

import (
	"fmt"
	"strings"
)

// Print renders a program back to MiniC source. The output reparses to a
// structurally identical AST (a property the tests verify), which makes
// Print useful both for diagnostics and for the random-program
// generators used in property-based testing.
func Print(p *Program) string {
	var b strings.Builder
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		printFunc(&b, f)
	}
	return b.String()
}

func printFunc(b *strings.Builder, f *FuncDecl) {
	fmt.Fprintf(b, "func %s(%s) ", f.Name, strings.Join(f.Params, ", "))
	printBlock(b, f.Body, 0)
	b.WriteByte('\n')
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func printBlock(b *strings.Builder, blk *BlockStmt, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		indent(b, depth+1)
		printStmt(b, s, depth+1)
		b.WriteByte('\n')
	}
	indent(b, depth)
	b.WriteByte('}')
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	switch s := s.(type) {
	case *BlockStmt:
		printBlock(b, s, depth)
	case *VarStmt:
		fmt.Fprintf(b, "var %s", s.Name)
		if s.Init != nil {
			b.WriteString(" = ")
			printExpr(b, s.Init, 0)
		}
		b.WriteByte(';')
	case *AssignStmt:
		fmt.Fprintf(b, "%s = ", s.Name)
		printExpr(b, s.Val, 0)
		b.WriteByte(';')
	case *StoreStmt:
		fmt.Fprintf(b, "%s[", s.Name)
		printExpr(b, s.Idx, 0)
		b.WriteString("] = ")
		printExpr(b, s.Val, 0)
		b.WriteByte(';')
	case *IfStmt:
		b.WriteString("if (")
		printExpr(b, s.Cond, 0)
		b.WriteString(") ")
		printBlock(b, s.Then, depth)
		if s.Else != nil {
			b.WriteString(" else ")
			printStmt(b, s.Else, depth)
		}
	case *WhileStmt:
		b.WriteString("while (")
		printExpr(b, s.Cond, 0)
		b.WriteString(") ")
		printBlock(b, s.Body, depth)
	case *ForStmt:
		b.WriteString("for (")
		if s.Init != nil {
			printSimple(b, s.Init)
		}
		b.WriteString("; ")
		if s.Cond != nil {
			printExpr(b, s.Cond, 0)
		}
		b.WriteString("; ")
		if s.Post != nil {
			printSimple(b, s.Post)
		}
		b.WriteString(") ")
		printBlock(b, s.Body, depth)
	case *ReturnStmt:
		b.WriteString("return")
		if s.Val != nil {
			b.WriteByte(' ')
			printExpr(b, s.Val, 0)
		}
		b.WriteByte(';')
	case *BreakStmt:
		b.WriteString("break;")
	case *ContinueStmt:
		b.WriteString("continue;")
	case *ExprStmt:
		printExpr(b, s.X, 0)
		b.WriteByte(';')
	default:
		fmt.Fprintf(b, "/* unknown stmt %T */", s)
	}
}

// printSimple prints a simple statement without a trailing semicolon,
// for use inside for-clauses.
func printSimple(b *strings.Builder, s Stmt) {
	var tmp strings.Builder
	printStmt(&tmp, s, 0)
	b.WriteString(strings.TrimSuffix(tmp.String(), ";"))
}

func printExpr(b *strings.Builder, e Expr, parentPrec int) {
	switch e := e.(type) {
	case *IntLit:
		fmt.Fprintf(b, "%d", e.Val)
	case *StrLit:
		fmt.Fprintf(b, "%q", e.Val)
	case *Ident:
		b.WriteString(e.Name)
	case *IndexExpr:
		printExpr(b, e.X, 6)
		b.WriteByte('[')
		printExpr(b, e.Idx, 0)
		b.WriteByte(']')
	case *CallExpr:
		b.WriteString(e.Name)
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, a, 0)
		}
		b.WriteByte(')')
	case *UnaryExpr:
		switch e.Op {
		case MINUS:
			b.WriteByte('-')
		case NOT:
			b.WriteByte('!')
		case TILDE:
			b.WriteByte('~')
		}
		// Parenthesise the operand unless it is primary-like, so that
		// --x never prints as an invalid token sequence.
		b.WriteByte('(')
		printExpr(b, e.X, 0)
		b.WriteByte(')')
	case *BinaryExpr:
		prec := precedence(e.Op)
		if prec < parentPrec {
			b.WriteByte('(')
		}
		printExpr(b, e.X, prec)
		fmt.Fprintf(b, " %s ", e.Op)
		printExpr(b, e.Y, prec+1)
		if prec < parentPrec {
			b.WriteByte(')')
		}
	default:
		fmt.Fprintf(b, "/* unknown expr %T */", e)
	}
}
