package analysis

import "repro/internal/cfg"

// GenKill is a bit-vector dataflow problem in gen/kill form. The
// transfer function of every block b is out = Gen[b] ∪ (in \ Kill[b])
// (forward) or in = Gen[b] ∪ (out \ Kill[b]) (backward).
type GenKill struct {
	// Bits is the lattice width.
	Bits int
	// Forward selects the propagation direction.
	Forward bool
	// May selects union joins (may problems); false means intersection
	// joins (must problems).
	May bool
	// Boundary is the entry set (forward) or the set flowing out of
	// every return block (backward). Nil means empty.
	Boundary BitSet
	// Gen and Kill are the per-block transfer sets. Nil entries mean
	// empty.
	Gen, Kill []BitSet
}

// Solve runs the worklist iteration to fixpoint and returns the in/out
// set of every block. Blocks unreachable in the propagation direction
// keep the initial value (empty for may problems, full for must
// problems), which is the sound answer for both.
func (p GenKill) Solve(f *cfg.Func) (in, out []BitSet) {
	n := len(f.Blocks)
	in = make([]BitSet, n)
	out = make([]BitSet, n)
	for b := 0; b < n; b++ {
		in[b] = NewBitSet(p.Bits)
		out[b] = NewBitSet(p.Bits)
		if !p.May {
			in[b].SetFirstN(p.Bits)
			out[b].SetFirstN(p.Bits)
		}
	}
	preds := Preds(f)
	succs := Succs(f)
	order := ReversePostorder(f)
	if !p.Forward {
		rev := make([]int, len(order))
		for i, b := range order {
			rev[len(order)-1-i] = b
		}
		order = rev
	}
	// src/dst select the join input and transfer output per direction.
	join, res := in, out
	joinEdges, boundaryAt := preds, func(b int) bool { return b == 0 }
	if !p.Forward {
		join, res = out, in
		joinEdges = succs
		boundaryAt = func(b int) bool { return f.Blocks[b].Term.Kind == cfg.TermRet }
	}
	tmp := NewBitSet(p.Bits)
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			// Join.
			j := join[b]
			if boundaryAt(b) || len(joinEdges[b]) > 0 {
				if p.May {
					clear(j)
				} else {
					j.SetFirstN(p.Bits)
				}
				if boundaryAt(b) && p.Boundary != nil {
					if p.May {
						j.UnionWith(p.Boundary)
					} else {
						j.IntersectWith(p.Boundary)
					}
				} else if boundaryAt(b) && !p.May {
					clear(j)
				}
				for _, o := range joinEdges[b] {
					if p.May {
						j.UnionWith(res[o])
					} else {
						j.IntersectWith(res[o])
					}
				}
			}
			// Transfer.
			tmp.CopyFrom(j)
			if p.Kill != nil && p.Kill[b] != nil {
				for i, w := range p.Kill[b] {
					tmp[i] &^= w
				}
			}
			if p.Gen != nil && p.Gen[b] != nil {
				tmp.UnionWith(p.Gen[b])
			}
			if !tmp.Equal(res[b]) {
				res[b].CopyFrom(tmp)
				changed = true
			}
		}
	}
	return in, out
}

// InstrUses appends the slots read by in to buf and returns it.
func InstrUses(in *cfg.Instr, buf []int) []int {
	switch in.Op {
	case cfg.OpConst, cfg.OpStr:
	case cfg.OpMove, cfg.OpUn:
		buf = append(buf, in.A)
	case cfg.OpBin, cfg.OpLoad:
		buf = append(buf, in.A, in.B)
	case cfg.OpStore:
		buf = append(buf, in.A, in.B, in.C)
	case cfg.OpCall, cfg.OpBuiltin:
		buf = append(buf, in.Args...)
	}
	return buf
}

// InstrDef returns the slot written by in, or -1 (stores write the
// heap, not a slot; nops write nothing).
func InstrDef(in *cfg.Instr) int {
	if in.Op == cfg.OpStore || in.Op == cfg.OpNop {
		return -1
	}
	return in.Dst
}

// TermUses appends the slots read by t to buf and returns it.
func TermUses(t *cfg.Term, buf []int) []int {
	switch t.Kind {
	case cfg.TermBr:
		buf = append(buf, t.Cond)
	case cfg.TermRet:
		if t.Val >= 0 {
			buf = append(buf, t.Val)
		}
	}
	return buf
}

// Liveness computes per-block live-in/live-out slot sets (a backward
// may problem over FrameSize bits). A slot is live at a point when some
// path from that point reads it before writing it.
func Liveness(f *cfg.Func) (liveIn, liveOut []BitSet) {
	n := len(f.Blocks)
	p := GenKill{
		Bits: f.FrameSize,
		May:  true,
		Gen:  make([]BitSet, n),
		Kill: make([]BitSet, n),
	}
	var buf []int
	for b := 0; b < n; b++ {
		gen := NewBitSet(f.FrameSize)
		kill := NewBitSet(f.FrameSize)
		blk := &f.Blocks[b]
		for i := range blk.Instrs {
			buf = InstrUses(&blk.Instrs[i], buf[:0])
			for _, s := range buf {
				if !kill.Has(s) {
					gen.Set(s) // upward-exposed use
				}
			}
			if d := InstrDef(&blk.Instrs[i]); d >= 0 {
				kill.Set(d)
			}
		}
		buf = TermUses(&blk.Term, buf[:0])
		for _, s := range buf {
			if !kill.Has(s) {
				gen.Set(s)
			}
		}
		p.Gen[b], p.Kill[b] = gen, kill
	}
	return p.Solve(f)
}

// DefSite identifies one definition for ReachingDefs: instruction Index
// of block Block writes Slot. Index -1 denotes the implicit entry
// definition of a parameter (Block 0).
type DefSite struct {
	Block int
	Index int
	Slot  int
}

// ReachingDefs computes the classic reaching-definitions problem (a
// forward may problem over definition sites). It returns the site
// table plus per-block in/out sets indexed by site.
func ReachingDefs(f *cfg.Func) (sites []DefSite, in, out []BitSet) {
	for s := 0; s < f.NParams; s++ {
		sites = append(sites, DefSite{Block: 0, Index: -1, Slot: s})
	}
	for b := range f.Blocks {
		for i := range f.Blocks[b].Instrs {
			if d := InstrDef(&f.Blocks[b].Instrs[i]); d >= 0 {
				sites = append(sites, DefSite{Block: b, Index: i, Slot: d})
			}
		}
	}
	bySlot := make([][]int, f.FrameSize)
	for i, s := range sites {
		bySlot[s.Slot] = append(bySlot[s.Slot], i)
	}
	n := len(f.Blocks)
	p := GenKill{
		Bits:     len(sites),
		Forward:  true,
		May:      true,
		Boundary: NewBitSet(len(sites)),
		Gen:      make([]BitSet, n),
		Kill:     make([]BitSet, n),
	}
	p.Boundary.SetFirstN(f.NParams)
	for b := 0; b < n; b++ {
		gen := NewBitSet(len(sites))
		kill := NewBitSet(len(sites))
		for i, s := range sites {
			if s.Block != b || s.Index < 0 {
				continue
			}
			// A later definition of the same slot kills all others
			// (including earlier gens of this block).
			for _, o := range bySlot[s.Slot] {
				kill.Set(o)
				gen.Unset(o)
			}
			kill.Unset(i)
			gen.Set(i)
		}
		p.Gen[b], p.Kill[b] = gen, kill
	}
	in, out = p.Solve(f)
	return sites, in, out
}

// definitelyAssigned computes, per block, the set of slots assigned on
// every path from the entry to the block's start (a forward must
// problem). Parameters are assigned at entry.
func definitelyAssigned(f *cfg.Func) (in []BitSet) {
	n := len(f.Blocks)
	p := GenKill{
		Bits:     f.FrameSize,
		Forward:  true,
		Boundary: NewBitSet(f.FrameSize),
		Gen:      make([]BitSet, n),
	}
	p.Boundary.SetFirstN(f.NParams)
	for b := 0; b < n; b++ {
		gen := NewBitSet(f.FrameSize)
		for i := range f.Blocks[b].Instrs {
			if d := InstrDef(&f.Blocks[b].Instrs[i]); d >= 0 {
				gen.Set(d)
			}
		}
		p.Gen[b] = gen
	}
	in, _ = p.Solve(f)
	return in
}
