package campaign

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

func gobStats(t *testing.T, s fuzz.Stats) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStatsRoundTripAudit is the counter-integrity audit behind the
// observability work: every Stats field — including the per-stage
// execution split the telemetry layer reports — must survive the
// checkpoint/resume cycle byte-identically, and a resumed campaign's
// final counters must equal an uninterrupted run's.
func TestStatsRoundTripAudit(t *testing.T) {
	opts := testOpts()

	// Uninterrupted reference campaign.
	f, err := fuzz.New(compileT(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range testSeeds {
		f.AddSeed(s)
	}
	f.Fuzz(testBudget)
	want := f.Report().Stats

	// Sanity: the reference run exercises the stage counters the audit
	// is about.
	if want.SeedExecs == 0 || want.HavocExecs == 0 {
		t.Fatalf("reference run has empty stage counters: %+v", want)
	}
	if sum := want.SeedExecs + want.HavocExecs + want.SpliceExecs + want.CmplogExecs; sum != want.Execs {
		t.Fatalf("stage execs sum %d != total %d", sum, want.Execs)
	}

	// Interrupted campaign: stop mid-run, checkpoint, resume to the end.
	dir := t.TempDir()
	interruptedStart(t, OSFS{}, dir, opts)

	ck, warns, err := LoadLatest(OSFS{}, dir)
	if err != nil {
		t.Fatalf("LoadLatest: %v (warnings %v)", err, warns)
	}
	// Mid-campaign audit: restoring the checkpoint and snapshotting
	// again must reproduce the checkpointed Stats byte-for-byte.
	mid, err := fuzz.Restore(compileT(t), opts, ck.Snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := gobStats(t, mid.Snapshot().Stats), gobStats(t, ck.Snap.Stats); !bytes.Equal(got, want) {
		t.Fatalf("Stats not byte-identical across restore+snapshot: %d vs %d bytes", len(got), len(want))
	}

	r := NewRunner(dir, Config{FS: OSFS{}, Interval: testInterval, Keep: 3})
	if err := r.Attach(compileT(t), opts, ck); err != nil {
		t.Fatal(err)
	}
	rep, interrupted, err := r.Run()
	if err != nil || interrupted || rep == nil {
		t.Fatalf("resumed run did not complete: err=%v interrupted=%v", err, interrupted)
	}

	if !reflect.DeepEqual(rep.Stats, want) {
		t.Errorf("resumed final Stats differ from uninterrupted run:\nresumed: %+v\nwant:    %+v", rep.Stats, want)
	}
	if !bytes.Equal(gobStats(t, rep.Stats), gobStats(t, want)) {
		t.Error("resumed final Stats not byte-identical to uninterrupted run")
	}
}

// statExecsDone parses execs_done out of a fuzzer_stats file.
func statExecsDone(t *testing.T, dir string) int64 {
	t.Helper()
	data, err := OSFS{}.ReadFile(filepath.Join(dir, "fuzzer_stats"))
	if err != nil {
		t.Fatalf("fuzzer_stats: %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		k, v, ok := strings.Cut(line, ":")
		if !ok || strings.TrimSpace(k) != "execs_done" {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		if err != nil {
			t.Fatalf("execs_done %q: %v", v, err)
		}
		return n
	}
	t.Fatalf("no execs_done in fuzzer_stats:\n%s", data)
	return 0
}

// TestStatsJournalAgreeOnResume is the journal/stats cross-audit: after
// an interrupted campaign resumes to completion with both the AFL stats
// emitter and the event journal attached, all three exec ledgers must
// agree — fuzzer_stats' execs_done, the journal's finish event, and the
// report itself. A disagreement means a counter was restored along one
// path but not the other.
func TestStatsJournalAgreeOnResume(t *testing.T) {
	opts := testOpts()
	dir := t.TempDir()

	// Interrupted leg, journaled.
	w := openJournalT(t, dir)
	o := opts
	o.Journal = w
	r := NewRunner(dir, Config{FS: OSFS{}, Interval: testInterval, Keep: 3, StopAfter: testStop})
	if err := r.Start(compileT(t), o, testMeta(), testSeeds); err != nil {
		t.Fatal(err)
	}
	if _, interrupted, err := r.Run(); err != nil || !interrupted {
		t.Fatalf("expected interruption: err=%v interrupted=%v", err, interrupted)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Resumed leg, with telemetry + fuzzer_stats attached on top.
	ck, warns, err := LoadLatest(OSFS{}, dir)
	if err != nil {
		t.Fatalf("LoadLatest: %v (warnings %v)", err, warns)
	}
	rec := telemetry.New(telemetry.Config{})
	if err := rec.AttachAFLOutput(dir); err != nil {
		t.Fatal(err)
	}
	w2 := openJournalT(t, dir)
	o2 := opts
	o2.Journal = w2
	o2.Telemetry = rec
	r2 := NewRunner(dir, Config{FS: OSFS{}, Interval: testInterval, Keep: 3})
	if err := r2.Attach(compileT(t), o2, ck); err != nil {
		t.Fatal(err)
	}
	rep, interrupted, err := r2.Run()
	if err != nil || interrupted || rep == nil {
		t.Fatalf("resumed run did not complete: err=%v interrupted=%v", err, interrupted)
	}
	if _, ok := rec.Sample(); !ok {
		t.Fatal("final telemetry sample recorded nothing")
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	if got := statExecsDone(t, dir); got != rep.Stats.Execs {
		t.Errorf("fuzzer_stats execs_done %d != report execs %d", got, rep.Stats.Execs)
	}
	events, diag, err := journal.ReadDir(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !diag.OK() {
		t.Fatalf("journal not OK: errors=%v gaps=%v", diag.Errors, diag.Gaps)
	}
	var finish *journal.Event
	for i := range events {
		if events[i].Kind == journal.KindFinish {
			finish = &events[i]
		}
	}
	if finish == nil {
		t.Fatal("no finish event in resumed journal")
	}
	if finish.Execs != rep.Stats.Execs {
		t.Errorf("journal finish execs %d != report execs %d", finish.Execs, rep.Stats.Execs)
	}
	if finish.Bugs != len(rep.Bugs) || finish.Queue != rep.QueueLen {
		t.Errorf("finish event (bugs=%d queue=%d) disagrees with report (bugs=%d queue=%d)",
			finish.Bugs, finish.Queue, len(rep.Bugs), rep.QueueLen)
	}
}
