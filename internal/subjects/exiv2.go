package subjects

import "repro/internal/vm"

// exiv2 models a TIFF/EXIF metadata parser: byte-order-aware IFD
// walking with typed tag entries and sub-IFD recursion. Bug ex-3 is
// path-dependent: a resolution-unit value is left unclamped only on the
// big-endian SHORT decoding path, and a later XResolution entry indexes
// a table with it.
const exiv2Src = `
// exiv2: TIFF/EXIF IFD parser.
// Header: byte order ("II"=little, "MM"=big), 42, ifd offset (1 byte).
// IFD: count(1) then 8-byte entries: tag(2) type(1) cnt(2) val(2) pad(1).
// Types: 2=ASCII 3=SHORT 4=LONG 5=RATIONAL.

func read16(input, pos, bo) {
    if (bo == 1) {
        return (input[pos] << 8) | input[pos + 1];
    }
    return input[pos] | (input[pos + 1] << 8);
}

func parse_ascii(input, valoff, cnt) {
    var sum = 0;
    var i = 0;
    while (i < cnt) {
        sum = sum + input[valoff + i]; // BUG ex-2: valoff unchecked against input
        i = i + 1;
    }
    return sum;
}

func parse_entry(input, pos, bo, state) {
    var tag = read16(input, pos, bo);
    var typ = input[pos + 2];
    var cnt = read16(input, pos + 3, bo);
    var val = read16(input, pos + 5, bo);
    if (tag == 0x112) { // Orientation
        if (typ == 3 && val < 9) {
            state[0] = val;
        } else {
            state[0] = 1;
        }
    } else if (tag == 0x128) { // ResolutionUnit
        if (bo == 1 && typ == 3) {
            // BUG ex-3 (setup): the big-endian SHORT path skips the
            // clamp the other paths apply.
            state[1] = val;
        } else {
            state[1] = min(val, 3);
        }
    } else if (tag == 0x11A) { // XResolution
        if (typ == 5) {
            var num = input[pos + 5];
            var den = input[pos + 6];
            var ratio = num / den; // BUG ex-4: zero denominator
            out(ratio);
        } else {
            var fact = alloc(4);
            fact[state[1]] = val; // BUG ex-3 (trigger): unit > 3 only via the BE path
            out(fact[state[1]]);
        }
    } else if (tag == 0x100) { // ImageWidth
        if (typ == 4) {
            var strip = alloc(cnt * 64); // BUG ex-5: cnt*64 can exceed the allocator cap
            strip[0] = val;
        }
    } else if (tag == 0x10F) { // Make (ASCII)
        if (typ == 2) {
            out(parse_ascii(input, val, cnt));
        }
    } else if (tag == 0x8769) { // EXIF sub-IFD pointer
        parse_ifd(input, val, bo, state); // BUG ex-1: unbounded recursion on self-pointing IFDs
    }
    return 0;
}

func parse_ifd(input, off, bo, state) {
    if (off + 1 > len(input)) { return 0; }
    var count = input[off];
    var i = 0;
    while (i < count) {
        var pos = off + 1 + i * 8;
        if (pos + 8 > len(input)) { return 0; }
        parse_entry(input, pos, bo, state);
        i = i + 1;
    }
    return count;
}

func main(input) {
    if (len(input) < 5) { return 1; }
    var bo = 0;
    if (input[0] == 'M' && input[1] == 'M') {
        bo = 1;
    } else if (input[0] == 'I' && input[1] == 'I') {
        bo = 0;
    } else {
        return 1;
    }
    if (input[2] != 42) { return 2; }
    var state = alloc(2);
    state[0] = 1;
    state[1] = 2;
    return parse_ifd(input, input[3], bo, state);
}
`

func init() {
	register(&Subject{
		Name:      "exiv2",
		TypeLabel: "C++",
		Source:    exiv2Src,
		Seeds: [][]byte{
			// II header, one orientation entry.
			{'I', 'I', 42, 4, 1, 0x12, 0x01, 3, 0, 0, 3, 0, 0},
			// MM header, one clamped resolution-unit entry.
			{'M', 'M', 42, 4, 1, 0x01, 0x28, 4, 0, 0, 0, 2, 0},
		},
		Bugs: []Bug{
			{
				ID:       "ex-1-ifd-recursion",
				Witness:  []byte{'I', 'I', 42, 4, 1, 0x69, 0x87, 4, 0, 0, 4, 0, 0},
				WantKind: vm.KindStackOverflow,
				WantFunc: "parse_ifd",
				Comment:  "EXIF sub-IFD pointer aimed back at its own IFD recurses unboundedly",
			},
			{
				ID:       "ex-2-ascii-oob-read",
				Witness:  []byte{'I', 'I', 42, 4, 1, 0x0F, 0x01, 2, 8, 0, 200, 0, 0},
				WantKind: vm.KindOOBRead,
				WantFunc: "parse_ascii",
				Comment:  "ASCII value offset points past the buffer",
			},
			{
				ID: "ex-3-unit-oob-write",
				Witness: []byte{'M', 'M', 42, 4, 2,
					0x01, 0x28, 3, 0, 0, 0, 9, 0, // BE SHORT ResolutionUnit = 9 (unclamped path)
					0x01, 0x1A, 3, 0, 0, 0, 1, 0}, // XResolution (non-rational) indexes fact[9]
				WantKind:      vm.KindOOBWrite,
				WantFunc:      "parse_entry",
				PathDependent: true,
				Comment: "ResolutionUnit is clamped on every decoding path except big-endian " +
					"SHORT; a later XResolution entry indexes a 4-slot table with it",
			},
			{
				ID:       "ex-4-rational-div-zero",
				Witness:  []byte{'I', 'I', 42, 4, 1, 0x1A, 0x01, 5, 0, 0, 7, 0, 0},
				WantKind: vm.KindDivByZero,
				WantFunc: "parse_entry",
				Comment:  "rational XResolution with zero denominator",
			},
			{
				ID:       "ex-5-strip-bad-alloc",
				Witness:  []byte{'I', 'I', 42, 4, 1, 0x00, 0x01, 4, 0, 0x80, 1, 0, 0},
				WantKind: vm.KindBadAlloc,
				WantFunc: "parse_entry",
				Comment:  "strip table allocation cnt*64 exceeds the allocator cap",
			},
		},
	})
}
