// Package fleet runs N independent fuzz.Fuzzer workers under one
// supervisor with full fault containment: a heartbeat watchdog that
// declares wedged workers and recycles them, crash-loop handling with
// exponential backoff and poison-input quarantine, deterministic
// periodic corpus sync at exec-count boundaries, and fleet-level
// checkpoint/resume composing the campaign package's per-worker
// snapshots with a fleet manifest.
//
// Determinism model: each worker is a fully deterministic campaign
// (seeded RNG, exec-count budget). Corpus sync happens at epoch
// boundaries — epoch e is the first queue-entry boundary where the
// worker's exec counter reaches e*SyncEvery — through a publication
// board: a worker arriving at epoch e publishes the queue entries it
// added since its previous sync, parks at a barrier until every live
// worker has arrived at (or passed) e, then imports the other workers'
// publications for the epochs it crossed, in (epoch, worker) order.
// Publications are a pure function of worker state, so a worker
// replaying after a crash republishes identical content, and what a
// worker imports depends only on epoch tags, never on goroutine
// scheduling. The final merged report is therefore a deterministic
// function of (seed, budget, workers, sync cadence) — as long as no
// worker is retired, retirement being the one wall-clock-driven
// (graceful-degradation) transition.
package fleet

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/cfg"
	"repro/internal/fuzz"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// ChaosAction is what the chaos hook may inject at a worker boundary.
type ChaosAction int

// Chaos actions.
const (
	// ChaosNone injects nothing.
	ChaosNone ChaosAction = iota
	// ChaosPanic panics on the worker goroutine — a failure the
	// fuzzer's own per-execution quarantine cannot contain, modeling a
	// corrupted worker.
	ChaosPanic
	// ChaosWedge blocks the worker until the watchdog abandons it,
	// modeling a hung execution.
	ChaosWedge
)

// Options tunes a fleet Supervisor.
type Options struct {
	// Workers is the number of parallel fuzzing workers (default 2).
	Workers int
	// SyncEvery is the per-worker exec-count sync cadence: workers
	// exchange corpus entries at multiples of this counter. 0 disables
	// corpus sync (workers run fully independently); the pafuzz CLI
	// defaults its -sync-every flag to 20000.
	SyncEvery int64
	// Watchdog is the wall-clock deadline after which a worker that has
	// not reached a queue-entry boundary is declared wedged and
	// recycled. 0 disables the watchdog.
	Watchdog time.Duration
	// MaxRestarts is how many consecutive failures (panics or wedges
	// without durable progress in between) a worker survives before it
	// is retired (default 3).
	MaxRestarts int
	// BackoffBase/BackoffMax bound the exponential restart backoff
	// (defaults 50ms and 2s). Jitter is derived deterministically from
	// the fleet seed so backoff timing never consumes campaign
	// randomness.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// CkptEvery is each worker's periodic checkpoint interval in execs
	// (campaign.Config.Interval; default 25000).
	CkptEvery int64
	// Keep is per-worker checkpoint retention (default 2).
	Keep int
	// FS is the filesystem for all fleet state (default campaign.OSFS).
	FS campaign.FS
	// Log receives supervisor warnings and lifecycle notes.
	Log io.Writer
	// Telemetry, when non-nil, receives per-worker snapshots
	// (PublishWorker) and fleet aggregates (Publish).
	Telemetry *telemetry.Recorder
	// Journal, when non-nil, is the supervisor-owned event journal every
	// worker shares (fuzz.Options.JournalShared): worker events carry
	// their worker id, supervision events (sync, recycle, retire, wedge,
	// quarantine) interleave under the writer's own lock, and worker
	// restores never truncate the shared stream.
	Journal *journal.Writer
	// Status, when non-nil, receives a wall-clock fleet status line
	// (aggregate execs, exec rate, novelty, crashes, worker liveness)
	// every StatusEvery (default 1s). Observation only.
	Status      io.Writer
	StatusEvery time.Duration
	// StopAfter, when positive, interrupts the fleet once any worker's
	// exec counter reaches it — the reproducible mid-run (and, chosen
	// near a sync boundary, mid-sync) interruption the resume tests use.
	StopAfter int64
	// Chaos, when non-nil, is consulted at every worker queue-entry
	// boundary and may inject a panic or a wedge. Keyed by (worker,
	// generation, execs): faults keyed to a generation do not re-fire
	// on the restarted generation, which is what makes a chaos run's
	// final report byte-identical to a clean run's.
	Chaos func(worker, gen int, execs int64) ChaosAction
	// Sleep is injectable for tests (default time.Sleep).
	Sleep func(time.Duration)
	// Exit is called on a forced (second) Signal. Defaults to os.Exit.
	Exit func(code int)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.SyncEvery < 0 {
		o.SyncEvery = 0
	}
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.CkptEvery <= 0 {
		o.CkptEvery = 25000
	}
	if o.Keep <= 0 {
		o.Keep = 2
	}
	if o.FS == nil {
		o.FS = campaign.OSFS{}
	}
	if o.StatusEvery <= 0 {
		o.StatusEvery = time.Second
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.Exit == nil {
		o.Exit = os.Exit
	}
	return o
}

// WorkerSeed derives worker i's RNG seed from the fleet seed. Worker 0
// keeps the fleet seed unchanged — a 1-worker fleet is byte-identical
// to the single-fuzzer campaign with the same seed — and the others get
// independent streams via splitmix64.
func WorkerSeed(seed int64, worker int) int64 {
	if worker == 0 {
		return seed
	}
	z := uint64(seed) + uint64(worker)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z &^ (1 << 63)) // keep seeds non-negative for readability
}

// Worker lifecycle states (supervisor-side; guarded by Supervisor.mu).
type workerState int

const (
	stIdle workerState = iota
	stRunning
	stBackoff
	stDone
	stRetired
	stStopped
)

func (s workerState) String() string {
	switch s {
	case stIdle:
		return "idle"
	case stRunning:
		return "running"
	case stBackoff:
		return "backoff"
	case stDone:
		return "done"
	case stRetired:
		return "retired"
	case stStopped:
		return "stopped"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// worker is the supervisor-side record of one fuzzing worker.
type worker struct {
	id   int
	dir  string
	seed int64

	// Guarded by Supervisor.mu.
	gen       int         // current attempt generation; bumped to abandon stale attempts
	state     workerState //
	fails     int         // consecutive failures without durable progress
	arrived   int         // highest sync epoch this worker has published for
	lastStart int64       // exec counter the current/last attempt resumed from
	runner    *campaign.Runner
	abandon   chan struct{} // closed to release a wedged (chaos-blocked) attempt
	wedged    chan struct{} // closed by the watchdog to wake the manage loop
	report    *fuzz.Report  // final report once state == stDone

	// Watchdog heartbeat, written lock-free from the worker goroutine.
	beat      atomic.Int64 // unix nanos of the last boundary
	beatExecs atomic.Int64 // exec counter at the last boundary
	parked    atomic.Bool  // parked at a sync barrier (watchdog-exempt)
	curInput  atomic.Pointer[[]byte]
	lastTelem atomic.Int64 // exec counter at the last telemetry publish
}

// attemptResult is what one worker attempt reports back to its manage
// loop.
type attemptResult struct {
	gen         int
	rep         *fuzz.Report
	interrupted bool
	err         error
	panicked    bool
	panicMsg    string
	input       []byte
	execs       int64
}

// Supervisor owns a fleet of workers over one campaign.
type Supervisor struct {
	dir  string
	opts Options

	prog *cfg.Program
	base fuzz.Options
	meta campaign.Meta
	sigs atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	board    *board
	workers  []*worker
	seeded   []int
	stopping bool
	quar     []fuzz.PoisonRec
	restarts int
	wedges   int

	stopCh    chan struct{}
	watchStop chan struct{}
	watchDone chan struct{}
	wg        sync.WaitGroup
}

// New builds a supervisor rooted at the fleet state directory dir.
func New(dir string, opts Options) *Supervisor {
	s := &Supervisor{dir: dir, opts: opts.withDefaults(), stopCh: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// workerDir is worker i's campaign state directory.
func (s *Supervisor) workerDir(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("worker-%d", i))
}

// workerOpts derives worker i's fuzz options from the base options:
// its own RNG stream, no status writer or recorder (the supervisor owns
// observability — per-worker recorders would clobber each other's
// single publish slot).
func (s *Supervisor) workerOpts(i int) fuzz.Options {
	o := s.base
	o.Seed = WorkerSeed(s.meta.Seed, i)
	o.Status = nil
	o.Telemetry = nil
	o.KeepCrashInputs = true
	// All workers append to the one supervisor-owned journal; the shared
	// flag stops a worker restore from truncating its peers' events.
	// JournalWorker is set even without a writer — it also stamps corpus
	// provenance (Report.Corpus).
	o.Journal = s.opts.Journal
	o.JournalShared = true
	o.JournalWorker = i
	return o
}

// emit writes one supervisor-level journal event (nil-safe). The
// writer assigns the sequence number under its own lock, so supervisor
// and worker events interleave without extra coordination.
func (s *Supervisor) emit(ev journal.Event) {
	s.opts.Journal.Emit(ev)
}

// Start begins a fresh fleet campaign: every worker executes the seed
// corpus, writes checkpoint zero, and the initial manifest is
// persisted. meta.Budget is the per-worker execution budget;
// meta.Seed the fleet seed.
func (s *Supervisor) Start(prog *cfg.Program, base fuzz.Options, meta campaign.Meta, seeds [][]byte) error {
	if err := base.Validate(); err != nil {
		return err
	}
	s.prog, s.base, s.meta = prog, base, meta
	if err := s.opts.FS.MkdirAll(s.dir); err != nil {
		return err
	}
	s.board = newBoard()
	s.seeded = make([]int, s.opts.Workers)
	for i := 0; i < s.opts.Workers; i++ {
		w := &worker{id: i, dir: s.workerDir(i), seed: WorkerSeed(meta.Seed, i)}
		wm := meta
		wm.Seed = w.seed
		r := campaign.NewRunner(w.dir, campaign.Config{
			FS: s.opts.FS, Interval: s.opts.CkptEvery, Keep: s.opts.Keep, Log: s.opts.Log,
		})
		if err := r.Start(prog, s.workerOpts(i), wm, seeds); err != nil {
			return fmt.Errorf("fleet: worker %d: %w", i, err)
		}
		s.seeded[i] = r.Fuzzer().QueueLen()
		s.workers = append(s.workers, w)
	}
	s.mu.Lock()
	err := s.persistManifestLocked()
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("fleet: initial manifest: %w", err)
	}
	return nil
}

// Attach resumes a fleet from its manifest and the workers' own
// checkpoints. base must reproduce the original campaign's options
// (the caller derives them from man.Meta, exactly as single-campaign
// resume does).
func (s *Supervisor) Attach(prog *cfg.Program, base fuzz.Options, man *Manifest) error {
	if man.Workers != s.opts.Workers && s.opts.Workers != 2 { // 2 is the default: adopt silently
		s.logf("fleet: manifest has %d workers, overriding -workers %d", man.Workers, s.opts.Workers)
	}
	s.opts.Workers = man.Workers
	s.opts.SyncEvery = man.SyncEvery
	s.opts.MaxRestarts = man.MaxRestarts
	s.prog, s.base, s.meta = prog, base, man.Meta
	s.board = boardFromManifest(man)
	s.seeded = append([]int(nil), man.Seeded...)
	s.quar = append([]fuzz.PoisonRec(nil), man.Quarantine...)
	s.restarts, s.wedges = man.Restarts, man.Wedges
	for i := 0; i < man.Workers; i++ {
		w := &worker{id: i, dir: s.workerDir(i), seed: WorkerSeed(man.Meta.Seed, i)}
		if i < len(man.Retired) && man.Retired[i] {
			w.state = stRetired
		}
		// Re-derive the barrier arrival watermark: the highest epoch the
		// worker has published for. Waiting peers released by those
		// arrivals stay released across the resume.
		for _, p := range man.Pubs {
			if p.Worker == i && p.Epoch > w.arrived {
				w.arrived = p.Epoch
			}
		}
		s.workers = append(s.workers, w)
	}
	return nil
}

// Result is a finished (or interrupted) fleet campaign.
type Result struct {
	// Merged folds every worker's report: crash/bug dedup via BugKeys,
	// poison quarantine attached, Queue the concatenation of worker
	// queues. Nil when Interrupted.
	Merged *fuzz.Report
	// Workers holds the per-worker final reports (nil entries for
	// workers interrupted mid-run — impossible unless Interrupted).
	Workers []*fuzz.Report
	// Quarantined lists the poison-input findings (also merged into
	// Merged.Poison).
	Quarantined []fuzz.PoisonRec
	// Lifecycle counters.
	Restarts int
	Wedges   int
	Retired  []int
	// Interrupted reports a stop (signal or StopAfter) before every
	// worker finished; resume with Attach.
	Interrupted bool
}

// Run drives the fleet to completion (every worker done or retired) or
// interruption. It is not reentrant.
func (s *Supervisor) Run() (*Result, error) {
	if s.prog == nil {
		return nil, fmt.Errorf("fleet: Run before Start/Attach")
	}
	s.startWatchdog()
	stopStatus := s.startStatus()
	for _, w := range s.workers {
		s.wg.Add(1)
		go s.manage(w)
	}
	s.wg.Wait()
	stopStatus()
	s.stopWatchdog()

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.persistManifestLocked(); err != nil {
		s.logf("fleet: final manifest: %v", err)
	}
	res := &Result{
		Quarantined: append([]fuzz.PoisonRec(nil), s.quar...),
		Restarts:    s.restarts,
		Wedges:      s.wedges,
	}
	if s.stopping {
		res.Interrupted = true
		return res, nil
	}
	reports := make([]*fuzz.Report, len(s.workers))
	for i, w := range s.workers {
		switch w.state {
		case stDone:
			reports[i] = w.report
		case stRetired:
			res.Retired = append(res.Retired, w.id)
			rep, err := s.harvest(w)
			if err != nil {
				s.logf("fleet: harvesting retired worker %d: %v", w.id, err)
				continue
			}
			reports[i] = rep
		default:
			return nil, fmt.Errorf("fleet: worker %d ended in state %v", w.id, w.state)
		}
	}
	// Attach each worker's quarantined poison findings to its report so
	// MergeReports folds and canonically sorts them.
	for _, p := range s.quar {
		if p.Worker >= 0 && p.Worker < len(reports) && reports[p.Worker] != nil {
			reports[p.Worker].Poison = append(reports[p.Worker].Poison, p)
		}
	}
	res.Workers = reports
	merged := fuzz.MergeReports(reports...)
	// The merged corpus is the union of worker queues, not the last
	// worker's queue.
	merged.Queue = nil
	for _, rep := range reports {
		if rep != nil {
			merged.Queue = append(merged.Queue, rep.Queue...)
		}
	}
	merged.QueueLen = len(merged.Queue)
	res.Merged = merged
	s.publishAggregateLocked()
	return res, nil
}

// startStatus launches the wall-clock status-line printer and returns
// its stop function (a no-op when no Status writer is configured). Each
// tick prints the fleet aggregate — total execs, exec rate over the
// tick, novelty (queue adds), queue depth, crash counters — plus worker
// liveness. Observation only: it reads telemetry snapshots and
// heartbeat counters, never campaign state.
func (s *Supervisor) startStatus() func() {
	if s.opts.Status == nil {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(s.opts.StatusEvery)
		defer t.Stop()
		start := time.Now()
		var lastExecs int64
		lastTick := start
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				c := s.statusCounters()
				dt := now.Sub(lastTick).Seconds()
				var rate float64
				if dt > 0 {
					rate = float64(c.Execs-lastExecs) / dt
				}
				lastExecs, lastTick = c.Execs, now
				live, total := s.liveWorkers()
				fmt.Fprintf(s.opts.Status,
					"fleet %s | execs %d (%.0f/s) | new %d | queue %d | crashes %d | bugs %d | workers %d/%d\n",
					now.Sub(start).Truncate(time.Second), c.Execs, rate,
					c.Added, c.QueueLen, c.UniqueCrashes, c.UniqueBugs, live, total)
			}
		}
	}()
	return func() { close(stop); <-done }
}

// statusCounters returns the freshest fleet aggregate available: summed
// telemetry worker snapshots when a recorder is attached, else just the
// heartbeat exec counters (the other fields read zero).
func (s *Supervisor) statusCounters() telemetry.Counters {
	if rec := s.opts.Telemetry; rec != nil {
		if c := rec.AggregateWorkers(); c.Execs > 0 {
			return c
		}
	}
	var c telemetry.Counters
	s.mu.Lock()
	for _, w := range s.workers {
		c.Execs += w.beatExecs.Load()
	}
	s.mu.Unlock()
	return c
}

// liveWorkers counts workers still participating (not done, retired, or
// stopped).
func (s *Supervisor) liveWorkers() (live, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.workers {
		switch w.state {
		case stIdle, stRunning, stBackoff:
			live++
		}
	}
	return live, len(s.workers)
}

// harvest restores a retired worker's last checkpoint and reports its
// partial campaign — retirement degrades throughput, it never loses
// corpus entries or findings.
func (s *Supervisor) harvest(w *worker) (*fuzz.Report, error) {
	ck, warns, err := campaign.LoadLatest(s.opts.FS, w.dir)
	for _, warn := range warns {
		s.logf("fleet: worker %d: %s", w.id, warn)
	}
	if err != nil {
		return nil, err
	}
	f, err := fuzz.Restore(s.prog, s.workerOpts(w.id), ck.Snap)
	if err != nil {
		return nil, err
	}
	return f.Report(), nil
}

// Stop requests a graceful fleet shutdown: each worker checkpoints at
// its next safe boundary (or falls back to its last checkpoint when a
// sync is pending) and Run returns Interrupted. Safe from any
// goroutine; repeated calls are no-ops.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	s.setStoppingLocked()
	s.mu.Unlock()
}

func (s *Supervisor) setStoppingLocked() {
	if s.stopping {
		return
	}
	s.stopping = true
	for _, w := range s.workers {
		if w.runner != nil {
			w.runner.RequestStop()
		}
	}
	select {
	case <-s.stopCh:
	default:
		close(s.stopCh)
	}
	s.cond.Broadcast()
}

// Signal handles one delivered interrupt, idempotently across repeats:
// first — graceful Stop; second — forced exit (state already on disk:
// checkpoints and manifest are written as the fleet runs, and sealed
// frames make torn writes detectable on resume); further — no-op.
func (s *Supervisor) Signal() {
	switch s.sigs.Add(1) {
	case 1:
		s.Stop()
	case 2:
		s.opts.Exit(130)
	}
}

// manage is worker w's supervision loop: it runs attempts, classifies
// their endings (done, stopped, panicked, wedged), quarantines poison
// inputs, applies backoff, and retires the worker after MaxRestarts
// consecutive failures without durable progress.
func (s *Supervisor) manage(w *worker) {
	defer s.wg.Done()
	defer s.cond.Broadcast() // whatever state we end in, wake barrier waiters
	for {
		s.mu.Lock()
		if s.stopping {
			w.state = stStopped
			s.mu.Unlock()
			return
		}
		if w.state == stRetired { // resumed-as-retired
			s.mu.Unlock()
			return
		}
		gen := w.gen
		w.state = stRunning
		// A zero heartbeat marks the attempt's startup phase (checkpoint
		// load, RNG fast-forward, corpus re-calibration — proportional to
		// prior campaign progress, so no fixed deadline fits it). The
		// watchdog arms only once the first boundary stores a real beat.
		w.beat.Store(0)
		w.beatExecs.Store(0)
		w.abandon = make(chan struct{})
		w.wedged = make(chan struct{})
		wedgedCh := w.wedged
		s.mu.Unlock()

		done := make(chan attemptResult, 1)
		go s.attempt(w, gen, done)

		var res attemptResult
		wedge := false
		select {
		case res = <-done:
		case <-wedgedCh:
			wedge = true
		}

		s.mu.Lock()
		if s.stopping {
			w.state = stStopped
			s.mu.Unlock()
			return
		}
		switch {
		case wedge || (res.interrupted && w.gen != gen):
			// Watchdog declared the attempt wedged (it already recorded
			// the poison input, bumped the generation, and released any
			// chaos block). The interrupted case is the benign race where
			// the abandoned attempt finished before our select noticed.
			w.fails++
			s.restarts++
		case res.panicked:
			s.addPoisonLocked(fuzz.PoisonRec{
				Worker: w.id, Gen: gen, Msg: res.panicMsg,
				Input: res.input, Execs: res.execs, Count: 1,
			})
			w.gen++ // generation-keyed chaos must not re-fire on replay
			w.fails++
			s.restarts++
			s.logf("fleet: worker %d panicked at %d execs: %s", w.id, res.execs, res.panicMsg)
		case res.err != nil:
			w.gen++
			w.fails++
			s.restarts++
			s.logf("fleet: worker %d attempt failed: %v", w.id, res.err)
		case res.interrupted:
			// Interrupted without stopping and with a current generation:
			// StopAfter fired inside this worker's runner (checkpoint
			// already written). Interrupt the whole fleet.
			s.setStoppingLocked()
			w.state = stStopped
			s.mu.Unlock()
			return
		default:
			w.report = res.rep
			w.state = stDone
			s.cond.Broadcast()
			if err := s.persistManifestLocked(); err != nil {
				s.logf("fleet: manifest after worker %d done: %v", w.id, err)
			}
			s.mu.Unlock()
			return
		}
		if w.fails >= s.opts.MaxRestarts {
			w.state = stRetired
			s.cond.Broadcast()
			if err := s.persistManifestLocked(); err != nil {
				s.logf("fleet: manifest after worker %d retired: %v", w.id, err)
			}
			s.logf("fleet: worker %d retired after %d consecutive failures", w.id, w.fails)
			s.emit(journal.Event{
				Kind: journal.KindRetire, Worker: w.id, Gen: w.gen,
				Execs: res.execs, Msg: fmt.Sprintf("retired after %d consecutive failures", w.fails),
			})
			s.mu.Unlock()
			return
		}
		w.state = stBackoff
		if err := s.persistManifestLocked(); err != nil {
			s.logf("fleet: manifest after worker %d failure: %v", w.id, err)
		}
		s.emit(journal.Event{
			Kind: journal.KindRecycle, Worker: w.id, Gen: w.gen,
			Execs: res.execs, Msg: fmt.Sprintf("restart %d/%d", w.fails, s.opts.MaxRestarts),
		})
		delay := s.backoff(w.id, w.fails)
		s.mu.Unlock()
		s.logf("fleet: worker %d restarting from last checkpoint in %v (failure %d/%d)",
			w.id, delay, w.fails, s.opts.MaxRestarts)
		s.opts.Sleep(delay)
	}
}

// backoff is the restart delay before failure number fails (1-based):
// BackoffBase doubling per failure, capped at BackoffMax, plus up to
// 50% deterministic jitter derived from the fleet seed — decorrelating
// worker restarts without consuming campaign randomness.
func (s *Supervisor) backoff(workerID, fails int) time.Duration {
	d := s.opts.BackoffBase << (fails - 1)
	if d > s.opts.BackoffMax || d <= 0 {
		d = s.opts.BackoffMax
	}
	z := uint64(s.meta.Seed)*0x9E3779B97F4A7C15 + uint64(workerID)<<32 + uint64(fails)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	jitter := time.Duration(z % uint64(d/2+1))
	return d + jitter
}

// attempt runs one worker generation: resume from the latest
// checkpoint, fuzz under the fleet boundary hook, and report the
// ending. Panics (chaos injection, corrupted state) are recovered here
// with the poison input captured on this same goroutine.
func (s *Supervisor) attempt(w *worker, gen int, out chan<- attemptResult) {
	res := attemptResult{gen: gen}
	var f *fuzz.Fuzzer
	defer func() {
		if p := recover(); p != nil {
			res.panicked = true
			res.panicMsg = fmt.Sprint(p)
			if f != nil {
				res.input = f.CurrentInput()
				res.execs = f.Execs()
			}
		}
		out <- res
	}()

	ck, warns, err := campaign.LoadLatest(s.opts.FS, w.dir)
	for _, warn := range warns {
		s.logf("fleet: worker %d: %s", w.id, warn)
	}
	if err != nil {
		res.err = err
		return
	}
	st := &syncState{}
	if s.opts.SyncEvery > 0 {
		st.lastSynced = int(ck.Snap.Stats.Execs / s.opts.SyncEvery)
	}
	st.pubIndex = s.pubIndexFor(w.id, st.lastSynced)

	r := campaign.NewRunner(w.dir, campaign.Config{
		FS: s.opts.FS, Interval: s.opts.CkptEvery, Keep: s.opts.Keep, Log: s.opts.Log,
		StopAfter: s.opts.StopAfter,
		Boundary:  func(f *fuzz.Fuzzer) bool { return s.boundary(w, gen, st, f) },
	})
	wopts := s.workerOpts(w.id)
	wopts.JournalGen = gen // journal events name the attempt that emitted them
	if err := r.Attach(s.prog, wopts, ck); err != nil {
		res.err = err
		return
	}
	f = r.Fuzzer()

	s.mu.Lock()
	if w.gen != gen {
		s.mu.Unlock()
		res.interrupted = true
		return
	}
	w.runner = r
	// Durable progress since the previous attempt started resets the
	// consecutive-failure count: the worker is flapping only if it keeps
	// dying without ever checkpointing further.
	if ck.Snap.Stats.Execs > w.lastStart {
		w.fails = 0
	}
	w.lastStart = ck.Snap.Stats.Execs
	if s.stopping {
		r.RequestStop()
	}
	s.mu.Unlock()

	rep, interrupted, err := r.Run()
	res.rep, res.interrupted, res.err = rep, interrupted, err
	res.execs = f.Execs()
}

// pubIndexFor derives a worker's publication start index on resume: its
// queue length at the end of its last completed sync — recorded on the
// publication record — or its seeded queue length before any sync.
// Guarded internally.
func (s *Supervisor) pubIndexFor(workerID, lastSynced int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lastSynced <= 0 {
		return s.seeded[workerID]
	}
	if p := s.board.get(workerID, lastSynced); p != nil && p.QLen > 0 {
		return p.QLen
	}
	// The sync completed (the checkpoint proves it) but its QLen write
	// was lost. Conservative fallback: republish from the seeded index;
	// importers dedup re-sent inputs by novelty.
	s.logf("fleet: worker %d: missing publication watermark for epoch %d", workerID, lastSynced)
	return s.seeded[workerID]
}

// addPoisonLocked quarantines one poison-input finding, deduplicated by
// (worker, message, input). A fresh quarantine is journaled and gets the
// worker's flight-recorder ring dumped — the events leading up to the
// kill are the forensic record of what the worker was doing.
func (s *Supervisor) addPoisonLocked(p fuzz.PoisonRec) {
	for i := range s.quar {
		if s.quar[i].Worker == p.Worker && s.quar[i].Msg == p.Msg && bytesEqual(s.quar[i].Input, p.Input) {
			s.quar[i].Count += p.Count
			return
		}
	}
	s.quar = append(s.quar, p)
	s.emit(journal.Event{
		Kind: journal.KindQuarantine, Worker: p.Worker, Gen: p.Gen,
		Execs: p.Execs, Msg: p.Msg, Len: len(p.Input),
	})
	s.opts.Journal.DumpFlight(fmt.Sprintf("poison-w%d-%s", p.Worker, journal.SanitizeName(p.Msg)), p.Worker)
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// persistManifestLocked atomically rewrites the fleet manifest from
// current supervisor state. Publication records must be persisted
// before any barrier release that could let a consumer import them —
// every sync calls this right after adding its publication.
func (s *Supervisor) persistManifestLocked() error {
	m := &Manifest{
		Workers:     s.opts.Workers,
		SyncEvery:   s.opts.SyncEvery,
		MaxRestarts: s.opts.MaxRestarts,
		Meta:        s.meta,
		Seeded:      append([]int(nil), s.seeded...),
		Pubs:        s.board.list(),
		Quarantine:  append([]fuzz.PoisonRec(nil), s.quar...),
		Restarts:    s.restarts,
		Wedges:      s.wedges,
		Retired:     make([]bool, len(s.workers)),
		Done:        make([]bool, len(s.workers)),
	}
	for i, w := range s.workers {
		m.Retired[i] = w.state == stRetired
		m.Done[i] = w.state == stDone
	}
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return campaign.WriteFileAtomic(s.opts.FS, filepath.Join(s.dir, ManifestName), data)
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.opts.Log != nil {
		fmt.Fprintf(s.opts.Log, format+"\n", args...)
	}
}
