package subjects

import "repro/internal/vm"

// infotocap models a compiled-terminfo converter (the ncurses tool).
// Its capability-classification loops contain dense chains of
// independent conditions — the shape that makes intra-procedural path
// counts explode (the paper's Table I shows infotocap with a 62x queue
// blow-up under path feedback), while its deeper bugs sit behind the
// sequential section structure, which is why the paper's pcguard beats
// the baseline path fuzzer here.
const infotocapSrc = `
// infotocap: compiled terminfo reader.
// Layout: 1A 01 name_len names[name_len] bool_count bools[bool_count]
//         num_count nums[num_count*2 LE] str_count offs[str_count*2 LE] strings...

// classify_bool is deliberately branch-dense: six independent tests on
// each capability byte yield 64 distinct intra-procedural paths per
// call.
func classify_bool(v) {
    var class = 0;
    if ((v & 1) != 0) { class = class + 1; } else { class = class + 2; }
    if ((v & 2) != 0) { class = class * 2; } else { class = class + 3; }
    if ((v & 4) != 0) { class = class ^ 5; } else { class = class + 7; }
    if ((v & 8) != 0) { class = class + 11; } else { class = class * 3; }
    if ((v & 16) != 0) { class = class ^ 9; } else { class = class + 13; }
    if ((v & 32) != 0) { class = class + 17; } else { class = class ^ 21; }
    return class;
}

func read_names(input, buf) {
    var name_len = input[2];
    var i = 0;
    while (i < name_len && 3 + i < len(input)) {
        buf[i] = input[3 + i]; // BUG it-1: name_len can exceed the 128-cell buffer
        i = i + 1;
    }
    return 3 + name_len;
}

func read_bools(input, pos) {
    if (pos >= len(input)) { return pos; }
    var bool_count = input[pos];
    var bools = alloc(64);
    var i = 0;
    while (i < bool_count && pos + 1 + i < len(input)) {
        var v = classify_bool(input[pos + 1 + i]);
        bools[i] = v; // BUG it-2: bool_count can exceed the fixed 64-entry table
        i = i + 1;
    }
    return pos + 1 + bool_count;
}

func read_nums(input, pos, numtable) {
    if (pos >= len(input)) { return pos; }
    var num_count = input[pos];
    var i = 0;
    while (i < num_count && pos + 1 + i * 2 + 1 < len(input)) {
        var v = input[pos + 1 + i * 2] | (input[pos + 2 + i * 2] << 8);
        if (v == 0xFFFF) { v = -1; } // "absent" capability marker
        if (v < 16) {
            numtable[v] = numtable[v] + 1; // BUG it-3: -1 passes the upper-bound-only check
        }
        i = i + 1;
    }
    return pos + 1 + num_count * 2;
}

func read_strings(input, pos) {
    if (pos >= len(input)) { return 0; }
    var str_count = input[pos];
    var table_start = pos + 1 + str_count * 2;
    var sum = 0;
    var i = 0;
    while (i < str_count && pos + 1 + i * 2 + 1 < len(input)) {
        var off = input[pos + 1 + i * 2] | (input[pos + 2 + i * 2] << 8);
        if (off != 0xFFFF) {
            sum = sum + input[table_start + off]; // BUG it-4: offset unchecked vs input
        }
        i = i + 1;
    }
    return sum;
}

func main(input) {
    if (len(input) < 4) { return 1; }
    if (input[0] != 0x1A || input[1] != 0x01) { return 1; }
    var names = alloc(128);
    var numtable = alloc(16);
    var pos = read_names(input, names);
    pos = read_bools(input, pos);
    pos = read_nums(input, pos, numtable);
    return read_strings(input, pos);
}
`

func init() {
	// it-1 witness: name_len 200 with enough trailing bytes to reach
	// buf[128].
	it1 := append([]byte{0x1A, 0x01, 200}, make([]byte, 140)...)

	// it-2 witness: empty names, bool_count 100 with 70 capability
	// bytes: bools[64] is written at i=64.
	it2 := append([]byte{0x1A, 0x01, 0, 100}, make([]byte, 70)...)

	// it-3 witness: empty names, zero bools, one num = 0xFFFF.
	it3 := []byte{0x1A, 0x01, 0, 0, 1, 0xFF, 0xFF}

	// it-4 witness: empty names/bools/nums, one string with offset 500.
	it4 := []byte{0x1A, 0x01, 0, 0, 0, 1, 0xF4, 0x01}

	register(&Subject{
		Name:      "infotocap",
		TypeLabel: "C",
		Source:    infotocapSrc,
		Seeds: [][]byte{
			{0x1A, 0x01, 2, 'v', 't', 3, 1, 0, 37, 2, 5, 0, 7, 0, 1, 0, 0, 'h', 'i', 0},
			{0x1A, 0x01, 1, 'x', 1, 255, 0, 0},
		},
		Bugs: []Bug{
			{
				ID:       "it-1-names-oob",
				Witness:  it1,
				WantKind: vm.KindOOBWrite,
				WantFunc: "read_names",
				Comment:  "terminal name length field exceeds the 128-cell name buffer",
			},
			{
				ID:       "it-2-bools-oob",
				Witness:  it2,
				WantKind: vm.KindOOBWrite,
				WantFunc: "read_bools",
				Comment:  "boolean capability count exceeds the fixed 64-entry table",
			},
			{
				ID:            "it-3-absent-num-oob",
				Witness:       it3,
				WantKind:      vm.KindOOBRead,
				WantFunc:      "read_nums",
				PathDependent: true,
				Comment: "the absent-capability marker 0xFFFF is mapped to -1 on its own " +
					"decode path and then passes the upper-bound-only table check",
			},
			{
				ID:       "it-4-string-offset-oob",
				Witness:  it4,
				WantKind: vm.KindOOBRead,
				WantFunc: "read_strings",
				Comment:  "string capability offset runs past the end of the input",
			},
		},
	})
}
