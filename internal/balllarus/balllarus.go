// Package balllarus implements the Ball-Larus efficient path profiling
// algorithm (Ball & Larus, MICRO 1996) over MiniC CFGs, adapted for use
// as a fuzzing coverage feedback as described in the reproduced paper.
//
// The algorithm numbers the acyclic paths of a function 0..n-1 by
// assigning an increment value to each edge of a DAG derived from the
// CFG; the sum of increments along any ENTRY->EXIT DAG path is a unique
// path identifier. Loops are handled by the classic provision: each back
// edge v->w contributes two pseudo edges, ENTRY->w (a path may begin at
// a loop header) and v->EXIT (a path may end at a back edge source). At
// run time the profiler keeps one word-sized register r per activation:
//
//	function entry:  r = 0
//	edge e:          r += inc(e)
//	back edge v->w:  record(r + endInc); r = startVal
//	return in b:     record(r + retInc(b))
//
// Two instrumentation plans are provided. The naive plan places Val(e)
// on every DAG edge. The optimized plan reproduces the paper's probe
// minimisation: a maximum-weight spanning tree (weights from loop-depth
// frequency estimates) is chosen on the underlying undirected graph
// augmented with an EXIT->ENTRY link edge, and only chord edges receive
// increments, computed as signed sums of Val around each chord's
// fundamental cycle. Both plans yield identical path identifiers — a
// property the test suite checks exhaustively and randomly.
package balllarus

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/cfg"
)

// ErrPathOutOfRange is returned (wrapped) by Regenerate when the
// requested path identifier is not in [0, NumPaths). Consumers
// inverting a coverage map use it to distinguish a stale or colliding
// map cell — an ID that simply does not belong to this function — from
// a corrupt encoding, which reports a different error.
var ErrPathOutOfRange = errors.New("path id out of range")

// MaxPaths bounds the number of acyclic paths per function the encoder
// accepts. Functions exceeding it (pathological branch ladders) cannot
// be numbered in a word-sized register without risking overflow; callers
// are expected to fall back to a hashed path feedback for them.
const MaxPaths = uint64(1) << 48

// EdgeKind classifies DAG edges.
type EdgeKind int

// DAG edge kinds.
const (
	// Real is a CFG edge that is not a back edge; Ref is its index in
	// Func.Edges.
	Real EdgeKind = iota
	// BackStart is the pseudo edge ENTRY->w for back edge Ref.
	BackStart
	// BackEnd is the pseudo edge v->EXIT for back edge Ref.
	BackEnd
	// RetEdge is the structural edge b->EXIT for return block Ref.
	RetEdge
)

// DAGEdge is an edge of the acyclic path-numbering graph.
type DAGEdge struct {
	From, To int
	Kind     EdgeKind
	Ref      int
	// Val is the Ball-Larus edge value (prefix sums of successor path
	// counts).
	Val int64
	// Weight is the spanning-tree frequency estimate.
	Weight int64
	// InTree marks maximum-spanning-tree membership; chords carry Inc.
	InTree bool
	// Inc is the chord increment of the optimized placement (0 for
	// tree edges).
	Inc int64
}

// BackAction is the runtime action attached to a back edge: record the
// completed path as r+EndInc, then start a new path with r=StartVal.
type BackAction struct {
	EndInc   int64
	StartVal int64
}

// Plan is a runtime instrumentation plan for one function.
type Plan struct {
	// EdgeInc maps each CFG edge index to the increment applied when
	// it is traversed. Back edges hold 0 here; their action is in Back.
	EdgeInc []int64
	// Back maps back-edge CFG indices to their record/reset action.
	Back map[int]BackAction
	// RetInc maps each block index to the increment added to r before
	// recording when the block returns.
	RetInc []int64
	// Probes counts the non-zero increments the plan needs (a proxy
	// for instrumentation cost, reported by the ablation bench).
	Probes int
}

// Encoding is the full Ball-Larus numbering of one function.
type Encoding struct {
	Fn *cfg.Func
	// NumPaths is the number of acyclic paths (valid IDs are
	// 0..NumPaths-1).
	NumPaths uint64
	// Dag lists the numbering graph's edges (excluding the EXIT->ENTRY
	// link, which exists only for spanning-tree construction).
	Dag []DAGEdge
	// nodePaths[v] is the number of DAG paths from v to EXIT.
	nodePaths []uint64
	exit      int
	// out[v] lists indices into Dag of v's outgoing DAG edges, in the
	// deterministic order used for Val assignment.
	out [][]int
}

// Encode numbers the acyclic paths of f.
func Encode(f *cfg.Func) (*Encoding, error) {
	order, err := f.TopoOrder()
	if err != nil {
		return nil, err
	}
	e := &Encoding{Fn: f, exit: len(f.Blocks)}

	// Assemble the DAG edge set.
	for i, edge := range f.Edges {
		if f.BackEdge[i] {
			e.Dag = append(e.Dag,
				DAGEdge{From: 0, To: edge.To, Kind: BackStart, Ref: i},
				DAGEdge{From: edge.From, To: e.exit, Kind: BackEnd, Ref: i})
		} else {
			e.Dag = append(e.Dag, DAGEdge{From: edge.From, To: edge.To, Kind: Real, Ref: i})
		}
	}
	for _, b := range f.RetBlocks() {
		e.Dag = append(e.Dag, DAGEdge{From: b, To: e.exit, Kind: RetEdge, Ref: b})
	}

	e.out = make([][]int, e.exit+1)
	for i := range e.Dag {
		e.out[e.Dag[i].From] = append(e.out[e.Dag[i].From], i)
	}

	// NumPaths in reverse topological order (EXIT last).
	e.nodePaths = make([]uint64, e.exit+1)
	e.nodePaths[e.exit] = 1
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		var sum uint64
		for _, de := range e.out[v] {
			to := e.Dag[de].To
			np := e.nodePaths[to]
			if np == 0 {
				return nil, fmt.Errorf("function %s: node b%d path count not yet computed (bad topo order)", f.Name, to)
			}
			sum += np
			if sum > MaxPaths {
				return nil, fmt.Errorf("function %s: more than %d acyclic paths", f.Name, MaxPaths)
			}
		}
		e.nodePaths[v] = sum
	}
	e.NumPaths = e.nodePaths[0]

	// Val assignment: prefix sums over each node's ordered successors.
	for _, v := range order {
		var prefix uint64
		for _, de := range e.out[v] {
			e.Dag[de].Val = int64(prefix)
			prefix += e.nodePaths[e.Dag[de].To]
		}
	}

	e.assignWeights()
	e.buildSpanningTree()
	e.computeChordIncrements()
	return e, nil
}

// assignWeights estimates edge execution frequencies from loop depth:
// an edge whose source sits inside d nested loops is assumed to run
// ~10^d times more often than a depth-0 edge. Back-edge pseudo edges
// inherit the back edge's (high) frequency, so they gravitate into the
// spanning tree and loops pay no extra probes.
func (e *Encoding) assignWeights() {
	depthOf := func(b int) int {
		if b == e.exit {
			return 0
		}
		d := e.Fn.LoopDepth[b]
		if d > 6 {
			d = 6
		}
		return d
	}
	for i := range e.Dag {
		de := &e.Dag[i]
		var d int
		switch de.Kind {
		case Real, RetEdge:
			d = depthOf(de.From)
		case BackStart, BackEnd:
			// Frequency of the underlying back edge.
			d = depthOf(e.Fn.Edges[de.Ref].From)
		}
		de.Weight = int64(math.Pow10(d))
	}
}

// buildSpanningTree runs Kruskal's algorithm for a maximum-weight
// spanning tree over the undirected view of the DAG plus the EXIT->ENTRY
// link edge (which is forced into the tree so that every ENTRY->EXIT
// path closes into a cycle through tree edges only).
func (e *Encoding) buildSpanningTree() {
	parent := make([]int, e.exit+1)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return false
		}
		parent[ra] = rb
		return true
	}

	// Force the link edge first.
	union(e.exit, 0)

	idx := make([]int, len(e.Dag))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return e.Dag[idx[a]].Weight > e.Dag[idx[b]].Weight
	})
	for _, i := range idx {
		de := &e.Dag[i]
		if union(de.From, de.To) {
			de.InTree = true
		}
	}
}

// computeChordIncrements assigns each chord c the signed sum of Val
// around its fundamental cycle in the spanning tree, so that summing
// chord increments along any ENTRY->EXIT path reproduces the path's
// Val sum exactly (the correctness property the tests verify).
func (e *Encoding) computeChordIncrements() {
	// Tree adjacency: node -> list of (neighbor, dagIndex, forward?).
	type adj struct {
		to      int
		idx     int
		forward bool
	}
	tree := make([][]adj, e.exit+1)
	addTree := func(idx int) {
		de := &e.Dag[idx]
		tree[de.From] = append(tree[de.From], adj{to: de.To, idx: idx, forward: true})
		tree[de.To] = append(tree[de.To], adj{to: de.From, idx: idx, forward: false})
	}
	for i := range e.Dag {
		if e.Dag[i].InTree {
			addTree(i)
		}
	}
	// The link edge EXIT->ENTRY is in the tree with Val 0; represent it
	// with idx -1 so its (zero) value never contributes.
	tree[e.exit] = append(tree[e.exit], adj{to: 0, idx: -1, forward: true})
	tree[0] = append(tree[0], adj{to: e.exit, idx: -1, forward: false})

	// signedPathSum walks the unique tree path src->dst and returns the
	// signed Val sum (+Val when a tree edge is traversed along its
	// direction, -Val against).
	signedPathSum := func(src, dst int) int64 {
		if src == dst {
			return 0
		}
		type state struct {
			node int
			sum  int64
		}
		prev := make([]bool, e.exit+1)
		prev[src] = true
		stack := []state{{node: src}}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, a := range tree[s.node] {
				if prev[a.to] {
					continue
				}
				var v int64
				if a.idx >= 0 {
					v = e.Dag[a.idx].Val
				}
				if !a.forward {
					v = -v
				}
				ns := state{node: a.to, sum: s.sum + v}
				if a.to == dst {
					return ns.sum
				}
				prev[a.to] = true
				stack = append(stack, ns)
			}
		}
		// Unreachable: spanning trees connect all nodes.
		panic("balllarus: disconnected spanning tree")
	}

	for i := range e.Dag {
		de := &e.Dag[i]
		if de.InTree {
			de.Inc = 0
			continue
		}
		// Cycle: chord From->To (forward, +Val), then tree path back
		// To -> ... -> From.
		de.Inc = de.Val + signedPathSum(de.To, de.From)
	}
}

// NaivePlan returns the unoptimized placement: every DAG edge carries
// its Val.
func (e *Encoding) NaivePlan() Plan { return e.plan(func(d *DAGEdge) int64 { return d.Val }) }

// OptimizedPlan returns the spanning-tree-minimised placement: only
// chords carry increments.
func (e *Encoding) OptimizedPlan() Plan {
	return e.plan(func(d *DAGEdge) int64 {
		if d.InTree {
			return 0
		}
		return d.Inc
	})
}

func (e *Encoding) plan(incOf func(*DAGEdge) int64) Plan {
	p := Plan{
		EdgeInc: make([]int64, len(e.Fn.Edges)),
		Back:    make(map[int]BackAction),
		RetInc:  make([]int64, len(e.Fn.Blocks)),
	}
	for i := range e.Dag {
		de := &e.Dag[i]
		inc := incOf(de)
		switch de.Kind {
		case Real:
			p.EdgeInc[de.Ref] = inc
		case BackStart:
			a := p.Back[de.Ref]
			a.StartVal = inc
			p.Back[de.Ref] = a
		case BackEnd:
			a := p.Back[de.Ref]
			a.EndInc = inc
			p.Back[de.Ref] = a
		case RetEdge:
			p.RetInc[de.Ref] = inc
		}
	}
	for _, v := range p.EdgeInc {
		if v != 0 {
			p.Probes++
		}
	}
	for _, a := range p.Back {
		if a.EndInc != 0 {
			p.Probes++
		}
		if a.StartVal != 0 {
			p.Probes++
		}
	}
	for _, v := range p.RetInc {
		if v != 0 {
			p.Probes++
		}
	}
	return p
}

// PathStep describes one element of a regenerated path.
type PathStep struct {
	Block int
	// EnterViaBackEdge marks a path that begins at a loop header
	// (first step only).
	EnterViaBackEdge bool
	// ExitViaBackEdge marks a path that ends at a back edge source
	// (last step only).
	ExitViaBackEdge bool
}

// Regenerate reconstructs the block sequence of the acyclic path with
// the given identifier, inverting the numbering. IDs outside
// [0, NumPaths) return an error wrapping ErrPathOutOfRange.
//
// Caveat for hashed path modes: functions whose path count exceeds
// MaxPaths are never encoded — the tracer falls back to a rolling hash
// over edge indices, and the values it records are hash buckets, not
// Ball-Larus identifiers. Such values must not be passed here: they are
// either out of range (reported honestly via ErrPathOutOfRange) or,
// worse, collide with a legitimate ID of some other function and decode
// to an unrelated path. Callers inverting a shared coverage map must
// track which functions are in hash mode and treat their cells as
// buckets, not decodable paths.
func (e *Encoding) Regenerate(id uint64) ([]PathStep, error) {
	if id >= e.NumPaths {
		return nil, fmt.Errorf("path id %d not in [0,%d): %w", id, e.NumPaths, ErrPathOutOfRange)
	}
	rem := int64(id)
	node := 0
	var steps []PathStep
	first := true
	for node != e.exit {
		// Choose the outgoing edge with the largest Val <= rem.
		var chosen = -1
		for _, de := range e.out[node] {
			if e.Dag[de].Val <= rem && (chosen < 0 || e.Dag[de].Val > e.Dag[chosen].Val) {
				chosen = de
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("regenerate: stuck at node b%d with remainder %d", node, rem)
		}
		d := &e.Dag[chosen]
		rem -= d.Val
		switch d.Kind {
		case BackStart:
			// Path begins at the loop header, not at the entry block.
			steps = steps[:0]
			steps = append(steps, PathStep{Block: d.To, EnterViaBackEdge: true})
		case BackEnd:
			steps = append(steps, PathStep{Block: d.From, ExitViaBackEdge: true})
		case RetEdge:
			steps = append(steps, PathStep{Block: d.From})
		case Real:
			if first {
				steps = append(steps, PathStep{Block: d.From})
			}
			steps = append(steps, PathStep{Block: d.To})
		}
		first = false
		node = d.To
	}
	if rem != 0 {
		return nil, fmt.Errorf("regenerate: nonzero remainder %d at exit", rem)
	}
	return dedupeSteps(steps), nil
}

// dedupeSteps removes consecutive duplicate blocks that arise from the
// step-recording scheme above.
func dedupeSteps(steps []PathStep) []PathStep {
	var out []PathStep
	for _, s := range steps {
		if n := len(out); n > 0 && out[n-1].Block == s.Block {
			out[n-1].ExitViaBackEdge = out[n-1].ExitViaBackEdge || s.ExitViaBackEdge
			continue
		}
		out = append(out, s)
	}
	return out
}
