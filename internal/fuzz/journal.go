// Journal emission: the fuzzer's side of the campaign forensics layer.
// Events are emitted at the same deterministic points whether or not a
// writer is attached — the emitted-event counter (f.events) always
// advances, only the I/O is conditional — so attaching a journal can
// never change campaign behaviour, and a checkpoint's JournalSeq lets
// resume truncate the journal to exactly the events the restored state
// has "already emitted" and replay the rest byte-identically.
package fuzz

import (
	"fmt"

	"repro/internal/journal"
)

// emit records one campaign lifecycle event. The first event of a
// fresh campaign is preceded by a synthetic start event identifying
// the campaign (feedback, engine, seed); resumed campaigns restore
// f.events > 0 and never re-emit it.
func (f *Fuzzer) emit(ev journal.Event) {
	if f.events == 0 {
		f.events++
		f.write(journal.Event{
			Kind:     journal.KindStart,
			Feedback: f.opts.Feedback.String(),
			Engine:   f.EngineName(),
			Seed:     f.opts.Seed,
		})
	}
	f.events++
	f.write(ev)
}

// write tags and forwards one event to the attached writer, if any.
func (f *Fuzzer) write(ev journal.Event) {
	if f.jrnl == nil {
		return
	}
	ev.Worker = f.opts.JournalWorker
	ev.Gen = f.opts.JournalGen
	ev.Execs = f.stats.Execs
	f.jrnl.Emit(ev)
}

// Journal returns the attached journal writer (nil when journaling is
// off).
func (f *Fuzzer) Journal() *journal.Writer { return f.jrnl }

// JournalEvents returns the campaign's emitted-event counter — the
// value checkpointed as Snapshot.JournalSeq.
func (f *Fuzzer) JournalEvents() uint64 { return f.events }

// FlightEvents returns this worker's flight-recorder ring (the last N
// journal events), oldest first; nil when journaling is off. The fleet
// supervisor calls it from a worker attempt's recover to ship crash
// context with poison findings — same goroutine as the fuzz loop, so
// the read is safe.
func (f *Fuzzer) FlightEvents() []journal.Event {
	if f.jrnl == nil {
		return nil
	}
	return f.jrnl.FlightEvents(f.opts.JournalWorker)
}

// CorpusProvenance renders the queue's provenance metadata — parent
// edges, discovery stage, exec index, first-discovered cells — as the
// journal package's shared vocabulary. Reports carry it so paprof,
// evalharness, and the fleet merge agree on one representation.
func (f *Fuzzer) CorpusProvenance() []journal.CorpusMeta {
	out := make([]journal.CorpusMeta, 0, len(f.queue))
	for _, e := range f.queue {
		out = append(out, journal.CorpusMeta{
			Worker:     f.opts.JournalWorker,
			ID:         e.ID,
			Parent:     e.Parent,
			Stage:      stageName(e.Stage),
			Depth:      e.Depth,
			Steps:      e.Steps,
			FoundAt:    e.FoundAt,
			Len:        len(e.Data),
			CovCount:   len(e.Cov),
			FirstCells: append([]uint32(nil), e.FirstCells...),
		})
	}
	return out
}

// SnapshotProvenance renders a checkpoint's corpus provenance without
// restoring the campaign — what `paprof -genealogy` reads from sealed
// checkpoints alone. Entry IDs are snapshot indices; pre-provenance
// checkpoints (Parent gob-decoded as 0 on seed entries) get the same
// seed rewrite Restore applies.
func SnapshotProvenance(snap *Snapshot, worker int) []journal.CorpusMeta {
	if snap == nil {
		return nil
	}
	out := make([]journal.CorpusMeta, 0, len(snap.Entries))
	for i, se := range snap.Entries {
		parent := se.Parent
		if se.IsSeed && parent == 0 {
			parent = -1
		}
		out = append(out, journal.CorpusMeta{
			Worker:     worker,
			ID:         i,
			Parent:     parent,
			Stage:      stageName(se.Stage),
			Depth:      se.Depth,
			Steps:      se.Steps,
			FoundAt:    se.FoundAt,
			Len:        len(se.Data),
			CovCount:   len(se.Cov),
			FirstCells: append([]uint32(nil), se.FirstCells...),
		})
	}
	return out
}

// crashHashName formats a stack hash for journal events and flight
// dump filenames.
func crashHashName(h uint64) string { return fmt.Sprintf("%016x", h) }
