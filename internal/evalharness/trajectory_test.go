package evalharness

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/strategy"
)

func histRun(subject string, f strategy.Name, run int, hist []fuzz.HistPoint) *RunResult {
	return &RunResult{
		Subject: subject, Fuzzer: f, Run: run,
		Report: &fuzz.Report{History: hist},
	}
}

func TestCurveCSV(t *testing.T) {
	rr := histRun("flvmeta", strategy.Path, 0, []fuzz.HistPoint{
		{Execs: 100, QueueLen: 2, CovCount: 5, Crashes: 0, UniqBugs: 0, Favored: 1, PathCount: 3},
		{Execs: 200, QueueLen: 4, CovCount: 9, Crashes: 1, UniqBugs: 1, Favored: 2, PathCount: 7},
	})
	lines := strings.Split(strings.TrimSpace(string(CurveCSV(rr))), "\n")
	if len(lines) != 3 {
		t.Fatalf("curve has %d lines, want header + 2 rows", len(lines))
	}
	if lines[0] != "execs,queue_len,coverage,crashes,unique_bugs,favored,paths_total" {
		t.Errorf("header drifted: %q", lines[0])
	}
	if lines[2] != "200,4,9,1,1,2,7" {
		t.Errorf("row = %q, want 200,4,9,1,1,2,7", lines[2])
	}
	// Nil report renders just the header instead of panicking.
	if got := string(CurveCSV(&RunResult{})); !strings.HasPrefix(got, "execs,") || strings.Count(got, "\n") != 1 {
		t.Errorf("nil-report curve = %q", got)
	}
}

func TestCoverageAt(t *testing.T) {
	rr := histRun("s", strategy.Path, 0, []fuzz.HistPoint{
		{Execs: 100, CovCount: 5},
		{Execs: 200, CovCount: 9},
		{Execs: 300, CovCount: 12},
	})
	for _, c := range []struct {
		at   int64
		want int
	}{{50, 0}, {100, 5}, {250, 9}, {300, 12}, {9999, 12}} {
		if got := coverageAt(rr, c.at); got != c.want {
			t.Errorf("coverageAt(%d) = %d, want %d", c.at, got, c.want)
		}
	}
	if coverageAt(nil, 100) != 0 || coverageAt(&RunResult{}, 100) != 0 {
		t.Error("nil guards broken")
	}
}

func TestTrajectoryTable(t *testing.T) {
	cfg := Config{
		Subjects: []string{"s"},
		Fuzzers:  []strategy.Name{strategy.Path},
		Runs:     1,
		Budget:   1000,
	}
	sr := &SuiteResult{Cfg: cfg, Results: map[string]map[strategy.Name][]*RunResult{
		"s": {strategy.Path: {histRun("s", strategy.Path, 0, []fuzz.HistPoint{
			{Execs: 100, CovCount: 5},
			{Execs: 500, CovCount: 9},
			{Execs: 1000, CovCount: 12},
		})}},
	}}
	var b strings.Builder
	sr.Trajectory(&b)
	out := b.String()
	if !strings.Contains(out, "TRAJECTORY") || !strings.Contains(out, "path") {
		t.Fatalf("trajectory output missing parts:\n%s", out)
	}
	// At 10% of budget (100 execs) coverage is 5; at 100% it is 12.
	fields := strings.Fields(strings.Split(out, "path")[1])
	if len(fields) < 6 {
		t.Fatalf("trajectory row too short: %q", fields)
	}
	if fields[0] != "5" || fields[4] != "12" {
		t.Errorf("trajectory row = %v, want 10%%=5 and 100%%=12", fields[:5])
	}
}

// TestSuiteWritesCurves runs a tiny durable suite and checks each run's
// coverage curve lands in StateDir/curves as parseable CSV.
func TestSuiteWritesCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	dir := t.TempDir()
	sr, err := RunSuite(durableCfg(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(filepath.Join(dir, curvesDir))
	if err != nil {
		t.Fatalf("no curves directory: %v", err)
	}
	// 1 subject x 2 fuzzers x 2 runs.
	if len(names) != 4 {
		t.Fatalf("found %d curve files, want 4: %v", len(names), names)
	}
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, curvesDir, n.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 2 {
			t.Fatalf("curve %s has no samples", n.Name())
		}
		last := strings.Split(lines[len(lines)-1], ",")
		execs, err := strconv.ParseInt(last[0], 10, 64)
		if err != nil || execs <= 0 {
			t.Fatalf("curve %s last row unparseable: %q", n.Name(), lines[len(lines)-1])
		}
	}
	// Provenance satellite: the suite records environment + duration.
	if sr.GoVersion == "" || sr.Elapsed <= 0 {
		t.Errorf("suite provenance missing: goversion=%q elapsed=%v", sr.GoVersion, sr.Elapsed)
	}
	var b strings.Builder
	sr.Summary(&b)
	if !strings.Contains(b.String(), "environment: go") {
		t.Errorf("summary does not report environment:\n%s", b.String())
	}
}
