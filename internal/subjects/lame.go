package subjects

import "repro/internal/vm"

// lame models a WAV-to-MP3 encoder front end: format parsing, a
// branch-dense per-sample quantizer (the path-explosion driver — the
// paper's Table I shows lame at 37x queue growth under path feedback),
// joint-stereo mid/side encoding, and a psychoacoustic gain tracker
// whose bug needs gain to accumulate across loud frames.
const lameSrc = `
// lame: WAV encoder model.
// Layout: "WV" channels(1) rate(1) bits(1) mode(1) samples...

// quantize is deliberately branch-dense: six independent range tests
// per sample multiply intra-procedural paths.
func quantize(v) {
    var q = 0;
    if (v > 200) { q = q + 8; } else { q = q + 1; }
    if ((v & 3) == 0) { q = q * 2; } else { q = q + 3; }
    if (v > 100 && v < 180) { q = q ^ 7; } else { q = q + 2; }
    if ((v & 16) != 0) { q = q + 5; } else { q = q * 3; }
    if (v < 32) { q = q - 4; } else { q = q + 6; }
    if ((v & 64) != 0) { q = q ^ 12; } else { q = q + 9; }
    return q;
}

func encode_mono(input, pos, bps, gains) {
    var n = (len(input) - pos) / bps; // BUG lm-1: zero bits -> zero bytes-per-sample
    var g = 0;
    var i = 0;
    while (i < n) {
        var v = input[pos + i * bps];
        var q = quantize(v);
        if (v > 240 && (q & 1) == 1) {
            // BUG lm-4 (setup): loud samples on the odd-quantum path
            // accumulate gain without a cap.
            g = g + 1;
        }
        i = i + 1;
    }
    var gain_lut = alloc(16);
    gain_lut[g] = n; // BUG lm-4 (trigger): g exceeds 15 after 16 loud odd-quantum samples
    gains[0] = gain_lut[g];
    return n;
}

func encode_joint(input, pos, bps, channels, gains) {
    var n = (len(input) - pos) / bps;
    var mid = alloc(n * channels);
    var i = 0;
    while (i < n) {
        var v = input[pos + i * bps];
        // Mid/side needs a stereo pair; BUG lm-2: the mono+joint
        // header combination still indexes the pair slot.
        mid[i * channels + 1] = quantize(v);
        i = i + 1;
    }
    gains[0] = n;
    return n;
}

func pick_rate(rate) {
    var rate_tab = alloc(8);
    rate_tab[0] = 8;  rate_tab[1] = 11; rate_tab[2] = 12; rate_tab[3] = 16;
    rate_tab[4] = 22; rate_tab[5] = 24; rate_tab[6] = 32; rate_tab[7] = 44;
    return rate_tab[rate >> 4]; // BUG lm-3: rate byte >= 128 indexes past the table
}

func main(input) {
    if (len(input) < 6) { return 1; }
    if (input[0] != 'W' || input[1] != 'V') { return 1; }
    var channels = input[2];
    var rate = input[3];
    var bits = input[4];
    var mode = input[5];
    if (channels == 0 || channels > 2) { return 2; }
    var khz = pick_rate(rate);
    out(khz);
    var bps = bits / 8;
    var gains = alloc(1);
    var n = 0;
    if (mode == 1 && channels >= 1) {
        n = encode_joint(input, 6, max(bps, 1), channels, gains);
    } else {
        n = encode_mono(input, 6, bps, gains);
    }
    return n + gains[0];
}
`

func init() {
	// lm-2 witness: mono + joint-stereo mode; mid[i*1+1] at i=n-1
	// writes mid[n], the pair slot that does not exist for mono.
	lm2 := append([]byte{'W', 'V', 1, 0, 8, 1}, []byte{10, 20, 30}...)

	// lm-4 witness: 17 loud samples whose quantum is odd.
	// quantize(255): 255>200 -> 8; 255&3=3 -> +3 = 11; !(100<255<180) -> +2 = 13;
	// 255&16 -> +5 = 18; !(<32) -> +6 = 24; 255&64 -> ^12 = 20 ... even.
	// quantize(243): 243>200 -> 8; 243&3=3 -> +3 = 11; no -> +2 = 13; 243&16=16
	// -> +5 = 18; no -> +6 = 24; 243&64=64 -> ^12 = 20 ... also even.
	// quantize(241): 8; 241&3=1 -> +3 = 11; no -> +2 = 13; 241&16=16 -> +5 = 18;
	// no -> +6 = 24; 241&64=64 -> ^12 = 20. Even again: pick a value whose
	// final XOR lands odd: quantize(253): 8; 253&3=1 -> 11; no -> 13; 253&16
	// -> 18; no -> 24; 253&64 -> 20. All 240+ values with bit6 set end even;
	// use 191-wait v must be >240. v=241..255 all have bit6+bit4 set. Use the
	// bit4-clear value 0xE1=225 <= 240. So odd parity needs the &16==0 path:
	// impossible above 240 unless bit4 clear: 0xF0..0xFF all have bit4 set...
	// 0xE?-range is <=240 except none. The test below derives a working
	// witness by brute force in Go instead.
	lm4 := lm4Witness()

	register(&Subject{
		Name:      "lame",
		TypeLabel: "C/C++",
		Source:    lameSrc,
		Seeds: [][]byte{
			append([]byte{'W', 'V', 2, 0x30, 16, 0}, []byte{1, 2, 3, 4, 5, 6, 7, 8}...),
			append([]byte{'W', 'V', 1, 0x10, 8, 0}, []byte{100, 120, 140}...),
		},
		Bugs: []Bug{
			{
				ID:       "lm-1-zero-bits",
				Witness:  append([]byte{'W', 'V', 1, 0, 0, 0}, []byte{1, 2, 3}...),
				WantKind: vm.KindDivByZero,
				WantFunc: "encode_mono",
				Comment:  "zero bits-per-sample yields a zero divisor in the sample count",
			},
			{
				ID:            "lm-2-joint-mono-oob",
				Witness:       lm2,
				WantKind:      vm.KindOOBWrite,
				WantFunc:      "encode_joint",
				PathDependent: true,
				Comment:       "joint-stereo encoding of a mono stream writes the missing pair slot",
			},
			{
				ID:       "lm-3-rate-oob",
				Witness:  []byte{'W', 'V', 1, 0x80, 8, 0},
				WantKind: vm.KindOOBRead,
				WantFunc: "pick_rate",
				Comment:  "sample-rate class >= 8 indexes past the rate table",
			},
			{
				ID:            "lm-4-gain-creep",
				Witness:       lm4,
				WantKind:      vm.KindOOBWrite,
				WantFunc:      "encode_mono",
				PathDependent: true,
				Comment: "gain accumulates only on the loud+odd-quantum sample path; 16 such " +
					"samples push the LUT index past its 16 cells (the cflow-creep pattern)",
			},
		},
	})
}

// lm4Witness brute-forces a sample value v > 240 with odd quantize(v),
// then builds a mono WAV with 17 such samples. quantize is mirrored
// here; the subject test validates the witness against the real
// implementation.
func lm4Witness() []byte {
	quant := func(v int) int {
		q := 0
		if v > 200 {
			q += 8
		} else {
			q++
		}
		if v&3 == 0 {
			q *= 2
		} else {
			q += 3
		}
		if v > 100 && v < 180 {
			q ^= 7
		} else {
			q += 2
		}
		if v&16 != 0 {
			q += 5
		} else {
			q *= 3
		}
		if v < 32 {
			q -= 4
		} else {
			q += 6
		}
		if v&64 != 0 {
			q ^= 12
		} else {
			q += 9
		}
		return q
	}
	loud := -1
	for v := 241; v <= 255; v++ {
		if quant(v)&1 == 1 {
			loud = v
			break
		}
	}
	if loud < 0 {
		// No loud odd value exists for this quantizer shape; fall back
		// to a header-only input (the subject test will flag it).
		return []byte{'W', 'V', 1, 0, 8, 0}
	}
	w := []byte{'W', 'V', 1, 0, 8, 0}
	for i := 0; i < 17; i++ {
		w = append(w, byte(loud))
	}
	return w
}
