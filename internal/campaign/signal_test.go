package campaign

import (
	"testing"

	"repro/internal/fuzz"
)

// TestSignalIdempotent pins the interrupt protocol: the first signal
// requests a graceful stop (final checkpoint at the next boundary),
// the second forces exit 130 after a best-effort checkpoint, and any
// further signals are no-ops.
func TestSignalIdempotent(t *testing.T) {
	dir := t.TempDir()
	var exits []int
	r := NewRunner(dir, Config{
		Interval: testInterval,
		Exit:     func(code int) { exits = append(exits, code) },
	})
	if err := r.Start(compileT(t), testOpts(), testMeta(), testSeeds); err != nil {
		t.Fatal(err)
	}

	// First signal before the run: the stop request makes Run return
	// interrupted at its first boundary, with a shutdown checkpoint.
	r.Signal()
	rep, interrupted, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted || rep != nil {
		t.Fatalf("first signal did not interrupt the run (interrupted=%v rep=%v)", interrupted, rep)
	}
	if len(exits) != 0 {
		t.Fatalf("first signal exited the process: %v", exits)
	}
	stopped := r.Fuzzer().Execs()

	// Second signal: best-effort checkpoint, then forced exit 130.
	r.Signal()
	if len(exits) != 1 || exits[0] != 130 {
		t.Fatalf("second signal exits = %v, want [130]", exits)
	}
	ck, _, err := LoadLatest(OSFS{}, dir)
	if err != nil {
		t.Fatalf("no checkpoint after forced exit: %v", err)
	}
	if ck.Snap.Stats.Execs != stopped {
		t.Fatalf("forced-exit checkpoint at %d execs, want %d", ck.Snap.Stats.Execs, stopped)
	}

	// Further signals are no-ops: the exit is already in flight.
	r.Signal()
	r.Signal()
	if len(exits) != 1 {
		t.Fatalf("repeated signals exited again: %v", exits)
	}
}

// TestBoundaryAbandon pins the fleet seam: a Boundary hook returning
// false stops the campaign immediately WITHOUT writing a checkpoint —
// the state directory still holds only what was durable before.
func TestBoundaryAbandon(t *testing.T) {
	dir := t.TempDir()
	var boundaries int
	r := NewRunner(dir, Config{
		Interval: 1 << 40, // no periodic checkpoints: only checkpoint zero
		Boundary: func(f *fuzz.Fuzzer) bool {
			boundaries++
			return f.Execs() < testStop
		},
	})
	if err := r.Start(compileT(t), testOpts(), testMeta(), testSeeds); err != nil {
		t.Fatal(err)
	}
	rep, interrupted, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted || rep != nil {
		t.Fatalf("boundary=false did not interrupt (interrupted=%v rep=%v)", interrupted, rep)
	}
	if boundaries == 0 {
		t.Fatal("boundary hook never ran")
	}
	ck, _, err := LoadLatest(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := ck.Snap.Stats.Execs; got >= testStop {
		t.Fatalf("abandonment wrote a checkpoint at %d execs; only checkpoint zero should exist", got)
	}
}
