package instrument

import (
	"repro/internal/balllarus"
	"repro/internal/cfg"
	"repro/internal/coverage"
)

// This file implements the extensions the paper sketches but does not
// evaluate:
//
//   - §VII: "we foresee an opportunity in extending our method to track
//     2-grams of specific acyclic paths, as when exiting loops or
//     crossing function boundaries (as a partial form of
//     context-sensitivity)" — PathNGramTracer.
//   - §VI: "selective forms of path sensitivity where only some program
//     regions get accurate path coverage information" —
//     SelectivePathTracer.
//
// Both reuse the Ball-Larus runtime plans of PathTracer and differ only
// in how completed path IDs reach the coverage map.

// Extension feedbacks (continuing the Feedback enumeration).
const (
	// FeedbackPath2 tracks 2-grams of consecutive acyclic paths within
	// an activation (across back edges) and across call boundaries.
	FeedbackPath2 Feedback = iota + 100
	// FeedbackSelective applies path feedback to functions whose
	// acyclic path count is at most Config.SelectiveMaxPaths and edge
	// feedback elsewhere.
	FeedbackSelective
)

func init() {
	feedbackNames[FeedbackPath2] = "path2"
	feedbackNames[FeedbackSelective] = "selective"
}

// PathNGramTracer implements the §VII extension: every completed
// acyclic path is recorded both individually (like PathTracer) and as a
// 2-gram with the previously completed path in the same activation
// context. Crossing a function boundary links the caller's last path
// with the callee's first, giving a partial form of
// context-sensitivity.
type PathNGramTracer struct {
	m     *coverage.Map
	plans []pathRuntime
	mix   MixMode
	regs  []uint64
	fns   []int
	// last[i] is the previous completed path's mixed ID in stack frame
	// i (0 when none yet).
	last []uint32
	// Records counts map updates (paths + 2-grams).
	Records uint64
}

// NewPathNGramTracer builds the 2-gram-of-paths tracer.
func NewPathNGramTracer(p *cfg.Program, m *coverage.Map, cfg Config) (*PathNGramTracer, error) {
	base, err := NewPathTracer(p, m, cfg)
	if err != nil {
		return nil, err
	}
	return &PathNGramTracer{m: m, plans: base.plans, mix: cfg.Mix}, nil
}

// Begin implements vm.Tracer.
func (t *PathNGramTracer) Begin() {
	t.regs = t.regs[:0]
	t.fns = t.fns[:0]
	t.last = t.last[:0]
}

// EnterFunc implements vm.Tracer.
func (t *PathNGramTracer) EnterFunc(f *cfg.Func) {
	// The callee's context seeds from the caller's last path: a crossed
	// function boundary forms a 2-gram, per the paper's sketch.
	seed := uint32(0)
	if n := len(t.last); n > 0 {
		seed = t.last[n-1]
	}
	t.regs = append(t.regs, 0)
	t.fns = append(t.fns, f.ID)
	t.last = append(t.last, seed)
}

func (t *PathNGramTracer) record(fnID int, pathID uint64) {
	var idx uint32
	switch t.mix {
	case MixXOR:
		idx = uint32(pathID) ^ t.plans[fnID].salt
	case MixHash:
		idx = uint32(splitmix64(pathID ^ (uint64(t.plans[fnID].salt) << 32)))
	}
	t.m.Add(idx)
	t.Records++
	top := len(t.last) - 1
	if prev := t.last[top]; prev != 0 {
		// The 2-gram entry: previous path x current path.
		t.m.Add(uint32(splitmix64(uint64(prev)<<32 | uint64(idx))))
		t.Records++
	}
	t.last[top] = idx | 1 // never zero, so chains continue
}

// Edge implements vm.Tracer.
func (t *PathNGramTracer) Edge(f *cfg.Func, e int) {
	rt := &t.plans[f.ID]
	top := len(t.regs) - 1
	if rt.hashMode {
		if rt.backIdx[e] >= 0 {
			t.record(f.ID, t.regs[top])
			t.regs[top] = 0
			return
		}
		t.regs[top] = splitmix64(t.regs[top] ^ uint64(e+1))
		return
	}
	if bi := rt.backIdx[e]; bi >= 0 {
		act := rt.backs[bi]
		t.record(f.ID, t.regs[top]+uint64(act.EndInc))
		t.regs[top] = uint64(act.StartVal)
		return
	}
	t.regs[top] += uint64(rt.edgeInc[e])
}

// Ret implements vm.Tracer.
func (t *PathNGramTracer) Ret(f *cfg.Func, b int) {
	rt := &t.plans[f.ID]
	top := len(t.regs) - 1
	r := t.regs[top]
	if !rt.hashMode {
		r += uint64(rt.retInc[b])
	}
	t.record(f.ID, r)
	t.regs = t.regs[:top]
	t.fns = t.fns[:len(t.fns)-1]
	t.last = t.last[:top]
}

// SelectivePathTracer implements the §VI extension: functions whose
// acyclic path counts stay at or below a threshold get full path
// feedback; larger functions (where path feedback would dominate the
// map and the queue) fall back to plain edge coverage. The threshold
// trades sensitivity against queue explosion per function rather than
// globally.
type SelectivePathTracer struct {
	path *PathTracer
	edge *EdgeTracer
	// usePath[fnID] selects the feedback per function.
	usePath []bool
	// Selected counts path-instrumented functions.
	Selected int
}

// NewSelectivePathTracer builds the selective tracer. Threshold zero
// defaults to 256 paths.
func NewSelectivePathTracer(p *cfg.Program, m *coverage.Map, cfg Config) (*SelectivePathTracer, error) {
	if cfg.SelectiveMaxPaths == 0 {
		cfg.SelectiveMaxPaths = 256
	}
	pt, err := NewPathTracer(p, m, cfg)
	if err != nil {
		return nil, err
	}
	t := &SelectivePathTracer{
		path:    pt,
		edge:    NewEdgeTracer(p, m),
		usePath: make([]bool, len(p.Funcs)),
	}
	for i, f := range p.Funcs {
		if enc, err := balllarus.Encode(f); err == nil && enc.NumPaths <= uint64(cfg.SelectiveMaxPaths) {
			t.usePath[i] = true
			t.Selected++
		}
	}
	return t, nil
}

// Begin implements vm.Tracer.
func (t *SelectivePathTracer) Begin() { t.path.Begin() }

// EnterFunc implements vm.Tracer. The path register stack must stay
// aligned with the call stack, so every function pushes.
func (t *SelectivePathTracer) EnterFunc(f *cfg.Func) { t.path.EnterFunc(f) }

// Edge implements vm.Tracer.
func (t *SelectivePathTracer) Edge(f *cfg.Func, e int) {
	if t.usePath[f.ID] {
		t.path.Edge(f, e)
		return
	}
	t.edge.Edge(f, e)
	// Keep the register stack consistent across back edges even for
	// edge-mode functions (cheap: backIdx lookup only).
	rt := &t.path.plans[f.ID]
	if rt.backIdx[e] >= 0 {
		t.path.regs[len(t.path.regs)-1] = 0
	}
}

// Ret implements vm.Tracer.
func (t *SelectivePathTracer) Ret(f *cfg.Func, b int) {
	if t.usePath[f.ID] {
		t.path.Ret(f, b)
		return
	}
	// Pop without recording a path.
	t.path.regs = t.path.regs[:len(t.path.regs)-1]
	t.path.fns = t.path.fns[:len(t.path.fns)-1]
}
