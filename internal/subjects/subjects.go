// Package subjects provides the benchmark suite of the reproduction: 18
// MiniC programs named after the UNIFUZZ subjects the paper evaluates
// on. Each is a small but realistic parser for a format in its
// namesake's domain, with a documented inventory of planted bugs —
// several reachable only through path-dependent program state, the
// phenomenon the paper's feedback targets.
//
// Every planted bug carries a witness input; the test suite executes
// all witnesses and asserts the expected fault, so the ground-truth bug
// inventory stays honest as subjects evolve.
package subjects

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cfg"
	"repro/internal/vm"
)

// Bug documents one planted bug.
type Bug struct {
	// ID is a stable short name, e.g. "stack-ovf-token".
	ID string
	// Witness triggers the bug directly.
	Witness []byte
	// WantKind is the expected sanitizer fault.
	WantKind vm.CrashKind
	// WantFunc is the function the fault occurs in.
	WantFunc string
	// PathDependent marks bugs whose trigger requires program state set
	// by a specific intra-procedural path (the Fig. 1 pattern).
	PathDependent bool
	// Comment explains the trigger condition.
	Comment string
	// Unreachable marks bugs guarded so strongly no fuzzer is expected
	// to reach them (the nm-new case); their witnesses still work.
	Unreachable bool
}

// Subject is one benchmark program.
type Subject struct {
	// Name matches the UNIFUZZ subject it stands in for.
	Name string
	// TypeLabel mirrors Table I's language column (cosmetic).
	TypeLabel string
	// Source is the MiniC program text.
	Source string
	// Seeds is the initial corpus.
	Seeds [][]byte
	// Bugs inventories the planted bugs.
	Bugs []Bug

	compileOnce sync.Once
	prog        *cfg.Program
	compileErr  error
}

// Program compiles the subject (cached).
func (s *Subject) Program() (*cfg.Program, error) {
	s.compileOnce.Do(func() {
		s.prog, s.compileErr = cfg.Compile(s.Source)
		if s.compileErr != nil {
			s.compileErr = fmt.Errorf("subject %s: %w", s.Name, s.compileErr)
		}
	})
	return s.prog, s.compileErr
}

// MustProgram compiles the subject, panicking on error.
func (s *Subject) MustProgram() *cfg.Program {
	p, err := s.Program()
	if err != nil {
		panic(err)
	}
	return p
}

var (
	mu       sync.Mutex
	registry = make(map[string]*Subject)
)

func register(s *Subject) *Subject {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic("subjects: duplicate " + s.Name)
	}
	registry[s.Name] = s
	return s
}

// Get returns the named subject, or nil.
func Get(name string) *Subject {
	mu.Lock()
	defer mu.Unlock()
	return registry[name]
}

// Names returns all subject names in the paper's (alphabetical) order.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every subject in name order.
func All() []*Subject {
	names := Names()
	out := make([]*Subject, len(names))
	for i, n := range names {
		out[i] = Get(n)
	}
	return out
}
