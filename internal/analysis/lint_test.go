package analysis

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/subjects"
)

func lintSrc(t *testing.T, src string) []Finding {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return Lint(ast, prog)
}

// badSrc seeds one instance of every defect class palint reports.
const badSrc = `func helper(a) {
	var unused = 3;
	var size = 4;
	var buf = alloc(size);
	return buf[size + 1];
}
func main(input) {
	var n = 10;
	var m = n - 10;
	if (m) {
		out(1);
	}
	if (len(input) > 3) {
		return helper(len(input)) / m;
	}
	return 0;
	out(2);
}`

func TestLintSeededDefects(t *testing.T) {
	findings := lintSrc(t, badSrc)
	if len(findings) == 0 {
		t.Fatal("no findings on the seeded bad program")
	}
	for _, f := range findings {
		t.Logf("finding: %s", f)
	}
	want := []struct {
		check, msgPart, fn string
	}{
		{"unused-var", `"unused"`, "helper"},
		{"guaranteed-fault", "out-of-bounds load", "helper"},
		{"const-branch", "always false", "main"},
		{"unreachable", "no feasible path", "main"},
		{"guaranteed-fault", "division or modulo by zero", "main"},
		{"unreachable", "never falls through", "main"},
	}
	for _, w := range want {
		found := false
		for _, f := range findings {
			if f.Check == w.check && f.Func == w.fn && strings.Contains(f.Msg, w.msgPart) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing finding: check=%s func=%s msg~%q", w.check, w.fn, w.msgPart)
		}
	}
}

// TestLintDeliberateIdiomsSuppressed checks that literal-constant
// conditions and assertions — the idiomatic forms of infinite loops and
// planted aborts — produce no findings.
func TestLintNoFalsePositiveIdioms(t *testing.T) {
	src := `func main(input) {
		var i = 0;
		while (1) {
			if (i >= len(input)) { break; }
			i = i + 1;
		}
		if (len(input) > 90) { assert(0); }
		return i;
	}`
	for _, f := range lintSrc(t, src) {
		t.Errorf("unexpected finding on idiomatic program: %s", f)
	}
}

// TestLintSubjectsClean asserts zero findings across all embedded
// benchmark subjects: their planted bugs are input-dependent, so a
// sound "fires on every execution" analysis must stay silent.
func TestLintSubjectsClean(t *testing.T) {
	for _, name := range subjects.Names() {
		sub := subjects.Get(name)
		ast, err := lang.Parse(sub.Source)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, f := range Lint(ast, sub.MustProgram()) {
			t.Errorf("false positive on subject %s: %s", name, f)
		}
	}
}
