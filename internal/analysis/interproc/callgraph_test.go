package interproc

import (
	"testing"

	"repro/internal/cfg"
)

const cgSrc = `
func leaf(x) {
    return x * 2;
}
func a(input, n) {
    if (n < 1) { return 0; }
    return b(input, n - 1) + leaf(n);
}
func b(input, n) {
    if (n < 1) { return 0; }
    return a(input, n - 1);
}
func orphan(x) {
    return x;
}
func main(input) {
    return a(input, len(input));
}
`

func TestCallGraphStructure(t *testing.T) {
	prog, err := cfg.Compile(cgSrc)
	if err != nil {
		t.Fatal(err)
	}
	g := NewCallGraph(prog)
	id := func(name string) int { return prog.ByName[name] }

	// a <-> b is one SCC; it must come before main's (bottom-up order)
	// and after leaf's.
	if g.SCCOf[id("a")] != g.SCCOf[id("b")] {
		t.Error("a and b should share an SCC")
	}
	if g.SCCOf[id("leaf")] >= g.SCCOf[id("a")] {
		t.Error("leaf's SCC should precede the a/b cycle (callee-first)")
	}
	if g.SCCOf[id("a")] >= g.SCCOf[id("main")] {
		t.Error("the a/b cycle should precede main (callee-first)")
	}
	for _, scc := range g.SCCs {
		for _, f := range scc {
			if g.SCCOf[f] != g.SCCOf[scc[0]] {
				t.Error("SCCOf inconsistent with SCCs")
			}
		}
	}

	if !g.Recursive(id("a")) || !g.Recursive(id("b")) {
		t.Error("a and b are mutually recursive")
	}
	if g.Recursive(id("leaf")) || g.Recursive(id("main")) {
		t.Error("leaf/main are not recursive")
	}

	reach := g.ReachableFrom(id("main"))
	for _, name := range []string{"main", "a", "b", "leaf"} {
		if !reach[id(name)] {
			t.Errorf("%s should be reachable from main", name)
		}
	}
	if reach[id("orphan")] {
		t.Error("orphan should be unreachable")
	}

	// Callers are the transpose of Callees.
	foundMain := false
	for _, c := range g.Callers[id("a")] {
		if c == id("main") {
			foundMain = true
		}
	}
	if !foundMain {
		t.Error("main should be a caller of a")
	}
}

func TestCallGraphSelfRecursion(t *testing.T) {
	prog, err := cfg.Compile(`
func f(input, n) {
    if (n < 1) { return 0; }
    return f(input, n - 1);
}
func main(input) {
    return f(input, 3);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	g := NewCallGraph(prog)
	if !g.Recursive(prog.ByName["f"]) {
		t.Error("self-calling f should be recursive")
	}
}
