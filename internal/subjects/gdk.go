package subjects

import "repro/internal/vm"

// gdk models a gdk-pixbuf-style bitmap loader: signed dimensions,
// palette decoding, 4-bit unpacking with a flip transform, stride
// alignment, cropping statistics and icon scaling. It is the most
// bug-dense subject after pdftotext/objdump, as in the paper's Table
// II. Bug gdk-3 is path-dependent: the flip flag is set only on the
// 4bpp+palette parsing path.
const gdkSrc = `
// gdk: bitmap loader.
// Layout: "BM" w_lo w_hi h bpp mode pal_count palette[pal_count*3] pixels...

func load_header(input, hdr) {
    // hdr[0]=w hdr[1]=h hdr[2]=bpp hdr[3]=mode hdr[4]=pal_count hdr[5]=flip
    var w = input[2] | (input[3] << 8);
    if (w >= 32768) { w = w - 65536; } // signed 16-bit width
    hdr[0] = w;
    hdr[1] = input[4];
    hdr[2] = input[5];
    hdr[3] = input[6];
    hdr[4] = input[7];
    hdr[5] = 0;
    if (hdr[2] == 4 && hdr[4] > 0 && hdr[3] == 2) {
        // BUG gdk-3 (setup): 4bpp palette images in mode 2 take the
        // flip path; no other path sets this flag.
        hdr[5] = 1;
    }
    return 0;
}

func load_pixels(input, hdr) {
    var w = hdr[0];
    var h = hdr[1];
    if (w == 0 || h == 0) { return 0; }
    var buf = alloc(w * 3 * h); // BUG gdk-1: negative width flows into the allocation
    var stride = ((w * 3 + 3) / 4) * 4;
    var base = 8 + hdr[4] * 3;
    var y = 0;
    while (y < h) {
        var x = 0;
        while (x < w * 3) {
            var src = base + y * stride + x;
            var v = 0;
            if (src < len(input)) { v = input[src]; }
            buf[y * stride + x] = v; // BUG gdk-2: aligned stride overruns the w*3*h buffer
            x = x + 1;
        }
        y = y + 1;
    }
    return h;
}

func decode_palette(input, hdr, pix_off) {
    var pc = hdr[4];
    if (pc == 0) { return 0; }
    var pal = alloc(pc * 3);
    var i = 0;
    while (i < pc * 3 && 8 + i < len(input)) {
        pal[i] = input[8 + i];
        i = i + 1;
    }
    var sum = 0;
    var p = pix_off;
    while (p < len(input)) {
        var idx = input[p];
        sum = sum + pal[idx * 3]; // BUG gdk-4: pixel index unchecked against pal_count
        p = p + 1;
    }
    return sum;
}

func flip_row(input, hdr, row_off) {
    var w = hdr[0];
    var dst = alloc(w);
    var x = 0;
    while (x < w) {
        var v = 0;
        if (row_off + x < len(input)) { v = input[row_off + x]; }
        dst[w - x] = v; // BUG gdk-5: writes dst[w] at x=0, one past the end
        x = x + 1;
    }
    return dst[0];
}

func crop_stats(input, hdr, crop) {
    var w = hdr[0];
    var h = hdr[1];
    var visible = w * h / (h - crop); // BUG gdk-6: crop == h divides by zero
    out(visible);
    return visible;
}

func main(input) {
    if (len(input) < 8) { return 1; }
    if (input[0] != 'B' || input[1] != 'M') { return 1; }
    var hdr = alloc(6);
    load_header(input, hdr);
    var w = hdr[0];
    var h = hdr[1];
    if (w < -32768 || h < 0) { return 2; }
    load_pixels(input, hdr);
    var pix_off = 8 + hdr[4] * 3;
    if (hdr[2] == 8) {
        decode_palette(input, hdr, pix_off);
    }
    if (hdr[5] == 1 && w > 0) {
        flip_row(input, hdr, pix_off);
    }
    if (hdr[3] == 5 && h > 0) {
        crop_stats(input, hdr, input[7] & 127);
    }
    return 0;
}
`

func init() {
	register(&Subject{
		Name:      "gdk",
		TypeLabel: "C",
		Source:    gdkSrc,
		Seeds: [][]byte{
			// 1x1 truecolor image.
			{'B', 'M', 1, 0, 1, 24, 0, 0, 10, 20, 30},
			// 2x1 8bpp with a 2-entry palette.
			{'B', 'M', 2, 0, 1, 8, 0, 2, 1, 2, 3, 4, 5, 6, 0, 1},
		},
		Bugs: []Bug{
			{
				ID:       "gdk-1-neg-width-alloc",
				Witness:  []byte{'B', 'M', 0, 0x80, 1, 24, 0, 0},
				WantKind: vm.KindBadAlloc,
				WantFunc: "load_pixels",
				Comment:  "signed width -32768 flows into the row-buffer allocation",
			},
			{
				ID: "gdk-2-stride-oob",
				// w=1,h=2: buf=6 cells, stride=((3+3)/4)*4=4; y=1,x=2 writes index 6.
				Witness:  []byte{'B', 'M', 1, 0, 2, 24, 0, 0},
				WantKind: vm.KindOOBWrite,
				WantFunc: "load_pixels",
				Comment:  "rows are written at 4-byte-aligned stride into a tightly sized buffer",
			},
			{
				ID: "gdk-4-palette-oob",
				// 8bpp, pal_count=1, pixel byte 5 -> pal[15] with pal size 3.
				Witness:  []byte{'B', 'M', 1, 0, 0, 8, 0, 1, 9, 9, 9, 5},
				WantKind: vm.KindOOBRead,
				WantFunc: "decode_palette",
				Comment:  "pixel bytes index the palette without a pal_count check",
			},
			{
				ID: "gdk-3-flip-oob",
				// 4bpp + palette + mode 2 sets the flip flag; flip_row
				// writes dst[w]. h=0 keeps load_pixels inert.
				Witness:       []byte{'B', 'M', 2, 0, 0, 4, 2, 1, 9, 9, 9, 1, 2},
				WantKind:      vm.KindOOBWrite,
				WantFunc:      "flip_row",
				PathDependent: true,
				Comment: "the flip flag is set only on the 4bpp+palette+mode-2 header path; " +
					"the mirrored store then writes one cell past the row buffer",
			},
			{
				ID: "gdk-6-crop-div-zero",
				// mode 5, crop byte (input[7]&127) == h. Width 4 keeps
				// the stride aligned so load_pixels stays clean.
				Witness:  []byte{'B', 'M', 4, 0, 3, 24, 5, 3},
				WantKind: vm.KindDivByZero,
				WantFunc: "crop_stats",
				Comment:  "cropping the full height divides by zero in the visibility stat",
			},
		},
	})
}
