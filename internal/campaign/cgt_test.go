package campaign

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/subjects"
	"repro/internal/vm"
)

// cgtFeedbacks are the feedback mechanisms with a bytecode lowering —
// the ones the CGT engine supports (it refuses the rest, like
// EngineBytecode).
var cgtFeedbacks = []instrument.Feedback{
	instrument.FeedbackEdge,
	instrument.FeedbackPath,
	instrument.FeedbackBlock,
	instrument.FeedbackNGram,
	instrument.FeedbackPathAFL,
}

// runEngineCampaign runs one campaign and returns its canonical report
// bytes — the byte-level identity currency of the differential suite.
func runEngineCampaign(t *testing.T, sub *subjects.Subject, fb instrument.Feedback, engine fuzz.Engine, budget int64, lim vm.Limits, inj func(int64, []byte) bool) []byte {
	t.Helper()
	prog, err := sub.Program()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fuzz.New(prog, fuzz.Options{
		Feedback:        fb,
		Seed:            11,
		MapSize:         1 << 12,
		Entry:           "main",
		Limits:          lim,
		KeepCrashInputs: true,
		Engine:          engine,
		FaultInjector:   inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sub.Seeds {
		f.AddSeed(s)
	}
	f.Fuzz(budget)
	data, err := CanonicalReport(f.Report())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCGTReportByteIdentityAllSubjects is the engine-level contract at
// full breadth: on every benchmark subject, under every supported
// feedback, a CGT campaign's canonical report bytes are identical to
// the EngineBytecode campaign with the same seed and budget.
func TestCGTReportByteIdentityAllSubjects(t *testing.T) {
	const budget = 1500
	for _, sub := range subjects.All() {
		sub := sub
		t.Run(sub.Name, func(t *testing.T) {
			t.Parallel()
			for _, fb := range cgtFeedbacks {
				want := runEngineCampaign(t, sub, fb, fuzz.EngineBytecode, budget, vm.DefaultLimits(), nil)
				got := runEngineCampaign(t, sub, fb, fuzz.EngineCGT, budget, vm.DefaultLimits(), nil)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s/%v: cgt report differs from bytecode (%d vs %d canonical bytes)",
						sub.Name, fb, len(got), len(want))
				}
			}
		})
	}
}

// TestCGTReportByteIdentityFaultsAndLimits drives the quarantine and
// resource-exhaustion paths: a periodic pre-execution fault injector, a
// mid-run injected panic, and tight step/heap limits — each must leave
// the CGT report byte-identical to the bytecode one.
func TestCGTReportByteIdentityFaultsAndLimits(t *testing.T) {
	const budget = 1000
	inj := func(execs int64, data []byte) bool { return execs > 0 && execs%401 == 0 }
	injected := vm.DefaultLimits()
	injected.InjectPanicAtStep = 300
	variants := []struct {
		name string
		lim  vm.Limits
		inj  func(int64, []byte) bool
	}{
		{"fault-injector", vm.DefaultLimits(), inj},
		{"mid-run-panic", injected, nil},
		{"tight-limits", vm.Limits{MaxSteps: 400, MaxDepth: 8, MaxHeapCells: 512, MaxAlloc: 128, MaxCmpObs: 16}, nil},
	}
	for _, name := range []string{"cflow", "flvmeta", "jq"} {
		sub := subjects.Get(name)
		if sub == nil {
			t.Fatalf("unknown subject %s", name)
		}
		for _, v := range variants {
			for _, fb := range cgtFeedbacks {
				want := runEngineCampaign(t, sub, fb, fuzz.EngineBytecode, budget, v.lim, v.inj)
				got := runEngineCampaign(t, sub, fb, fuzz.EngineCGT, budget, v.lim, v.inj)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s/%s/%v: cgt report differs from bytecode", name, v.name, fb)
				}
			}
		}
	}
}

// TestCGTResumeDeterminism runs the campaign durability contract on the
// CGT engine: interrupt, checkpoint, resume — the resumed report must
// be byte-identical to an uninterrupted CGT campaign AND to the
// EngineBytecode baseline (the patch plan is rebuilt from the restored
// virgin map, never checkpointed).
func TestCGTResumeDeterminism(t *testing.T) {
	bytecodeOpts := testOpts()
	bytecodeOpts.Engine = fuzz.EngineBytecode
	wantBytecode := baseline(t, bytecodeOpts)

	opts := testOpts()
	opts.Engine = fuzz.EngineCGT
	want := baseline(t, opts)
	if !bytes.Equal(want, wantBytecode) {
		t.Fatalf("uninterrupted cgt baseline differs from bytecode baseline (%d vs %d bytes)", len(want), len(wantBytecode))
	}

	dir := t.TempDir()
	interruptedStart(t, OSFS{}, dir, opts)
	got, warns := resumeToEnd(t, OSFS{}, dir, opts)
	if len(warns) != 0 {
		t.Fatalf("unexpected load warnings: %v", warns)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed cgt campaign differs from uninterrupted (%d vs %d bytes)", len(got), len(want))
	}
}

// TestCGTMetaEngineRoundTrip guards the provenance path: an -engine cgt
// campaign records a meta string that parses back to the same engine.
func TestCGTMetaEngineRoundTrip(t *testing.T) {
	for _, e := range []fuzz.Engine{fuzz.EngineAuto, fuzz.EngineBytecode, fuzz.EngineInterp, fuzz.EngineCGT} {
		back, err := fuzz.ParseEngine(e.String())
		if err != nil || back != e {
			t.Errorf("engine %v round-trip: got %v, %v", e, back, err)
		}
	}
	if fmt.Sprint(fuzz.EngineCGT) != "cgt" {
		t.Errorf("EngineCGT prints %q", fmt.Sprint(fuzz.EngineCGT))
	}
}
