package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"repro/internal/fuzz"
	"repro/internal/journal"
)

// Version is the checkpoint format version; a bump invalidates older
// checkpoints (Open rejects them, and resume falls back to a fresh
// campaign).
const Version = 1

// magic identifies sealed campaign files. 8 bytes, never reused across
// incompatible layouts.
var magic = []byte("PAFCKPT\x00")

// Frame layout: magic (8) | version (4, BE) | payload length (8, BE) |
// SHA-256 of payload (32) | payload. The length field detects
// truncation before the checksum is even computed; the checksum detects
// corruption anywhere in the payload.
const headerLen = 8 + 4 + 8 + sha256.Size

// Seal frames payload with magic, version, length, and checksum. The
// output is what gets written to disk; Open is its inverse.
func Seal(payload []byte) []byte {
	buf := make([]byte, 0, headerLen+len(payload))
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint32(buf, Version)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)
	return buf
}

// Open validates a sealed file and returns its payload. It fails on a
// wrong magic, an unsupported version, a truncated or over-long file,
// and a checksum mismatch — every corruption mode the fault-injection
// tests produce.
func Open(data []byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("campaign: sealed file truncated: %d bytes, want at least %d", len(data), headerLen)
	}
	if !bytes.Equal(data[:8], magic) {
		return nil, errors.New("campaign: bad magic (not a campaign checkpoint)")
	}
	ver := binary.BigEndian.Uint32(data[8:12])
	if ver != Version {
		return nil, fmt.Errorf("campaign: unsupported checkpoint version %d (want %d)", ver, Version)
	}
	plen := binary.BigEndian.Uint64(data[12:20])
	payload := data[headerLen:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("campaign: payload is %d bytes, header says %d (truncated or overwritten)", len(payload), plen)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[20:20+sha256.Size]) {
		return nil, errors.New("campaign: checksum mismatch (corrupt checkpoint)")
	}
	return payload, nil
}

// Meta identifies the campaign a checkpoint belongs to, with enough
// information for `pafuzz -resume` to reconstruct the target and
// options without re-specifying flags.
type Meta struct {
	// Subject is the benchmark subject name ("" when fuzzing a source
	// file).
	Subject string
	// Source is the path of the fuzzed MiniC source file ("" for
	// subjects); SourceSum is the hex SHA-256 of its contents, checked
	// on resume so a silently edited source is rejected.
	Source    string
	SourceSum string
	// Fuzzer is the strategy configuration name.
	Fuzzer string
	// Campaign options that must match for a resume to be
	// deterministic.
	Seed    int64
	Budget  int64
	MapSize int
	Entry   string
	// Guide records whether the campaign ran analysis-guided
	// (fuzz.Options.AnalysisGuide); a resume must re-enable it to
	// reproduce the guided mutation and scheduling decisions. Old
	// checkpoints decode it as false (gob zero value), matching the
	// option's default.
	Guide bool
}

// Checkpoint bundles campaign identity and a full state snapshot.
type Checkpoint struct {
	Meta Meta
	Snap *fuzz.Snapshot
}

// Encode serializes the checkpoint into a sealed frame.
func (c *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, err
	}
	return Seal(buf.Bytes()), nil
}

// DecodeCheckpoint validates and decodes one sealed checkpoint file.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	payload, err := Open(data)
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&c); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint payload undecodable: %w", err)
	}
	if c.Snap == nil {
		return nil, errors.New("campaign: checkpoint has no snapshot")
	}
	return &c, nil
}

// checkpointsDir is the subdirectory of a campaign state dir holding
// sealed checkpoints.
const checkpointsDir = "checkpoints"

func checkpointName(execs int64) string {
	return fmt.Sprintf("ckpt-%016d.pafc", execs)
}

// writeCheckpoint seals and atomically writes ck under dir, then prunes
// old checkpoints down to keep (newest first). Prune failures are
// ignored: stale checkpoints are harmless, a failed write is not.
func writeCheckpoint(fs FS, dir string, ck *Checkpoint, keep int) error {
	data, err := ck.Encode()
	if err != nil {
		return err
	}
	cdir := join(dir, checkpointsDir)
	if err := fs.MkdirAll(cdir); err != nil {
		return err
	}
	path := join(cdir, checkpointName(ck.Snap.Stats.Execs))
	if err := WriteFileAtomic(fs, path, data); err != nil {
		return err
	}
	if names, err := listCheckpoints(fs, dir); err == nil && len(names) > keep {
		for _, name := range names[keep:] {
			fs.Remove(join(cdir, name))
		}
	}
	return nil
}

// listCheckpoints returns checkpoint filenames under dir, newest (by
// exec count, which the zero-padded name sorts by) first.
func listCheckpoints(fs FS, dir string) ([]string, error) {
	names, err := fs.ReadDir(join(dir, checkpointsDir))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range names {
		if len(n) > 5 && n[:5] == "ckpt-" && n[len(n)-5:] == ".pafc" {
			out = append(out, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	return out, nil
}

// ErrNoCheckpoint reports that a state directory holds no usable
// checkpoint (none written yet, or every one corrupt).
var ErrNoCheckpoint = errors.New("campaign: no usable checkpoint in state directory")

// LoadLatest returns the newest valid checkpoint under dir. Truncated,
// corrupt, or unreadable checkpoints are skipped — with a human-readable
// note appended to warnings — and the next older one is tried, so a
// crash during (or just after) a checkpoint write never strands the
// campaign. ErrNoCheckpoint is returned when nothing valid remains.
func LoadLatest(fs FS, dir string) (ck *Checkpoint, warnings []string, err error) {
	names, err := listCheckpoints(fs, dir)
	if err != nil {
		return nil, nil, fmt.Errorf("%w (%v)", ErrNoCheckpoint, err)
	}
	for _, name := range names {
		path := join(dir, checkpointsDir, name)
		data, rerr := fs.ReadFile(path)
		if rerr != nil {
			warnings = append(warnings, fmt.Sprintf("skipping %s: %v", name, rerr))
			continue
		}
		c, derr := DecodeCheckpoint(data)
		if derr != nil {
			warnings = append(warnings, fmt.Sprintf("skipping %s: %v", name, derr))
			continue
		}
		return c, warnings, nil
	}
	return nil, warnings, ErrNoCheckpoint
}

// CanonicalReport encodes a report into deterministic bytes: map-typed
// fields are flattened in sorted key order. Two campaigns are
// byte-identical — the determinism guarantee checkpoint/resume makes —
// exactly when their canonical encodings are equal.
func CanonicalReport(r *fuzz.Report) ([]byte, error) {
	type bugRec struct {
		Key string
		Rec *fuzz.CrashRec
	}
	flat := struct {
		Stats      fuzz.Stats
		QueueLen   int
		Queue      [][]byte
		FavoredLen int
		Crashes    []*fuzz.CrashRec
		Bugs       []bugRec
		History    []fuzz.HistPoint
		MapCount   int
		Faults     []fuzz.InternalFault
		Poison     []fuzz.PoisonRec
		Corpus     []journal.CorpusMeta
	}{}
	if r != nil {
		flat.Stats = r.Stats
		flat.QueueLen = r.QueueLen
		flat.Queue = r.Queue
		flat.FavoredLen = r.FavoredLen
		flat.Crashes = r.Crashes
		flat.History = r.History
		flat.MapCount = r.MapCount
		flat.Faults = r.Faults
		flat.Poison = r.Poison
		flat.Corpus = r.Corpus
		for _, k := range r.BugKeys() {
			flat.Bugs = append(flat.Bugs, bugRec{Key: k, Rec: r.Bugs[k]})
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&flat); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
