// Package coverage implements the AFL-style coverage map machinery
// shared by every feedback mechanism in this reproduction: a fixed-size
// byte map of hit counts, power-of-two hit-count bucketing, and virgin
// bit tracking for novelty detection.
package coverage

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// DefaultMapSize is the default number of coverage map entries. The
// paper configures AFL++'s map to 2^18 entries; the default here is
// smaller because MiniC subjects are smaller, and it is configurable
// everywhere.
const DefaultMapSize = 1 << 16

// Map is a hit-count coverage map. Alongside the byte array it keeps
// the list of touched entries, so the per-execution bookkeeping
// (classification, novelty scan, reset) costs O(touched) instead of
// O(map size) — small MiniC executions touch a few hundred entries of a
// 64k map, making this the difference between a usable and an unusable
// single-core evaluation. (AFL attacks the same cost with vectorised
// full-map scans; sparsity is the natural equivalent here.)
type Map struct {
	bits  []uint8
	dirty []uint32
}

// NewMap returns a map with the given number of entries (which must be
// a power of two).
func NewMap(size int) *Map {
	if size <= 0 || size&(size-1) != 0 {
		panic("coverage: map size must be a positive power of two")
	}
	return &Map{bits: make([]uint8, size)}
}

// Len returns the number of entries.
func (m *Map) Len() int { return len(m.bits) }

// Add increments the entry for index (mod size), saturating at 255.
func (m *Map) Add(index uint32) {
	i := index & uint32(len(m.bits)-1)
	switch m.bits[i] {
	case 0:
		m.dirty = append(m.dirty, i)
		m.bits[i] = 1
	case 255:
	default:
		m.bits[i]++
	}
}

// Reset zeroes the map (touched entries only).
func (m *Map) Reset() {
	for _, i := range m.dirty {
		m.bits[i] = 0
	}
	m.dirty = m.dirty[:0]
}

// Bytes exposes the underlying storage (shared, not a copy).
func (m *Map) Bytes() []uint8 { return m.bits }

// Dirty exposes the touched-entry list in touch order (shared, not a
// copy; invalidated by Reset).
func (m *Map) Dirty() []uint32 { return m.dirty }

// CountNonZero returns the number of touched entries.
func (m *Map) CountNonZero() int { return len(m.dirty) }

// Indices returns the sorted list of touched entry indices. This sparse
// form is what queue entries retain (the analogue of AFL's trace_mini).
func (m *Map) Indices() []uint32 {
	out := append([]uint32(nil), m.dirty...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClassifySparse rewrites the map's raw hit counts into bucket masks in
// place, touching only dirty entries.
func (m *Map) ClassifySparse() {
	for _, i := range m.dirty {
		m.bits[i] = bucketLUT[m.bits[i]]
	}
}

// bucket maps a raw hit count to its AFL count class.
func bucket(c uint8) uint8 {
	switch {
	case c == 0:
		return 0
	case c == 1:
		return 1
	case c == 2:
		return 2
	case c == 3:
		return 4
	case c <= 7:
		return 8
	case c <= 15:
		return 16
	case c <= 31:
		return 32
	case c <= 127:
		return 64
	default:
		return 128
	}
}

var bucketLUT = func() [256]uint8 {
	var lut [256]uint8
	for i := 0; i < 256; i++ {
		lut[i] = bucket(uint8(i))
	}
	return lut
}()

// bucketLUT16 classifies two adjacent counts at once, AFL's
// count_class_lookup16 trick: a full-map classification becomes four
// table lookups per 8-byte word instead of eight branchy byte steps.
var bucketLUT16 = func() []uint16 {
	lut := make([]uint16, 1<<16)
	for i := range lut {
		lut[i] = uint16(bucketLUT[i&0xff]) | uint16(bucketLUT[i>>8])<<8
	}
	return lut
}()

// Classify rewrites raw hit counts into bucket masks in place, the
// normalization step the paper describes ("power-of-two buckets") that
// keeps hit-count-only variation from exploding the queue.
//
// The scan is word-at-a-time: read 8 counts as one uint64, skip the
// (overwhelmingly common) all-zero words, and classify the rest
// branch-free through the 16-bit lookup table.
func Classify(bits []uint8) {
	i := 0
	for ; i+8 <= len(bits); i += 8 {
		w := binary.LittleEndian.Uint64(bits[i:])
		if w == 0 {
			continue
		}
		w = uint64(bucketLUT16[w&0xffff]) |
			uint64(bucketLUT16[(w>>16)&0xffff])<<16 |
			uint64(bucketLUT16[(w>>32)&0xffff])<<32 |
			uint64(bucketLUT16[w>>48])<<48
		binary.LittleEndian.PutUint64(bits[i:], w)
	}
	for ; i < len(bits); i++ {
		if b := bits[i]; b != 0 {
			bits[i] = bucketLUT[b]
		}
	}
}

// Novelty describes the outcome of a virgin-map comparison.
type Novelty int

// Novelty levels, ordered: NoNew < NewCounts < NewTuples.
const (
	NoNew     Novelty = 0
	NewCounts Novelty = 1 // a known entry reached a new hit-count bucket
	NewTuples Novelty = 2 // a never-seen map entry was touched
)

// Virgin tracks which (entry, bucket) pairs have ever been seen. It
// follows AFL's representation: all bits start set and are cleared as
// behaviour is observed.
type Virgin struct {
	bits []uint8
	// consumed counts entries no longer fully virgin (bits != 0xff),
	// maintained incrementally so Count is O(1) — it is the "coverage
	// bits" gauge telemetry samples on every collector tick, where an
	// O(map size) rescan would not be free.
	consumed int
}

// NewVirgin returns a fresh virgin map of the given size.
func NewVirgin(size int) *Virgin {
	v := &Virgin{bits: make([]uint8, size)}
	for i := range v.bits {
		v.bits[i] = 0xff
	}
	return v
}

// Len returns the number of entries.
func (v *Virgin) Len() int { return len(v.bits) }

// Count returns the number of consumed entries — map cells where some
// behaviour has been observed. O(1).
func (v *Virgin) Count() int { return v.consumed }

// Untouched reports whether cell i is still fully virgin — no
// behaviour has ever been observed there. The index is masked exactly
// as Map.Add masks, so callers can pass unmasked probe indices.
func (v *Virgin) Untouched(i uint32) bool {
	return v.bits[i&uint32(len(v.bits)-1)] == 0xff
}

// Merge checks classified trace bits against the virgin map, consumes
// any new bits, and reports the highest novelty found.
//
// The scan skims 8 entries per step: a word of trace bits that is zero,
// or whose bitwise AND with the corresponding virgin word is zero,
// cannot contain novelty in any byte lane and is skipped without
// touching individual bytes (AFL's has_new_bits discover_word skim).
func (v *Virgin) Merge(classified []uint8) Novelty {
	if len(classified) != len(v.bits) {
		panic("coverage: size mismatch")
	}
	ret := NoNew
	i := 0
	for ; i+8 <= len(classified); i += 8 {
		cw := binary.LittleEndian.Uint64(classified[i:])
		if cw == 0 {
			continue
		}
		vw := binary.LittleEndian.Uint64(v.bits[i:])
		if cw&vw == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			c := classified[j]
			if c == 0 {
				continue
			}
			vb := v.bits[j]
			if vb&c != 0 {
				if vb == 0xff {
					ret = NewTuples
					v.consumed++
				} else if ret < NewCounts {
					ret = NewCounts
				}
				v.bits[j] = vb &^ c
			}
		}
	}
	for ; i < len(classified); i++ {
		c := classified[i]
		if c == 0 {
			continue
		}
		vb := v.bits[i]
		if vb&c != 0 {
			if vb == 0xff {
				ret = NewTuples
				v.consumed++
			} else if ret < NewCounts {
				ret = NewCounts
			}
			v.bits[i] = vb &^ c
		}
	}
	return ret
}

// MergeSparse is Merge over a map's dirty entries only; the map must
// already be classified (ClassifySparse).
func (v *Virgin) MergeSparse(m *Map) Novelty {
	if m.Len() != len(v.bits) {
		panic("coverage: size mismatch")
	}
	ret := NoNew
	bits := m.bits
	for _, i := range m.dirty {
		c := bits[i]
		vb := v.bits[i]
		if vb&c != 0 {
			if vb == 0xff {
				ret = NewTuples
				v.consumed++
			} else if ret < NewCounts {
				ret = NewCounts
			}
			v.bits[i] = vb &^ c
		}
	}
	return ret
}

// VirginCell is one consumed virgin-map entry (bits != 0xff), the
// sparse unit campaign checkpoints serialize: a fresh virgin map plus
// the cell list reconstructs the exact novelty state.
type VirginCell struct {
	Index uint32
	Bits  uint8
}

// Cells returns the consumed entries in index order. A fresh map
// returns nil.
func (v *Virgin) Cells() []VirginCell {
	var out []VirginCell
	for i, b := range v.bits {
		if b != 0xff {
			out = append(out, VirginCell{Index: uint32(i), Bits: b})
		}
	}
	return out
}

// SetCells resets the map to all-virgin and applies cells, the inverse
// of Cells. Out-of-range indices are rejected (a corrupt or
// wrong-map-size checkpoint).
func (v *Virgin) SetCells(cells []VirginCell) error {
	for i := range v.bits {
		v.bits[i] = 0xff
	}
	v.consumed = 0
	for _, c := range cells {
		if int(c.Index) >= len(v.bits) {
			return fmt.Errorf("coverage: virgin cell index %d out of range for map size %d", c.Index, len(v.bits))
		}
		if v.bits[c.Index] == 0xff && c.Bits != 0xff {
			v.consumed++
		}
		v.bits[c.Index] = c.Bits
	}
	return nil
}

// Bitset is a fixed-size bit vector over coverage map cells, sized to a
// power-of-two map. It is the consumed-cell mask the coverage-guided
// tracing engine hands to the bytecode machine: Has masks its index
// exactly as Map.Add does, so the two agree on which cell any probe
// index lands in.
type Bitset struct {
	words []uint64
	mask  uint32
}

// NewBitset returns an empty bitset over size cells (a positive power
// of two, matching the coverage map it shadows).
func NewBitset(size int) *Bitset {
	if size <= 0 || size&(size-1) != 0 {
		panic("coverage: bitset size must be a positive power of two")
	}
	return &Bitset{words: make([]uint64, (size+63)/64), mask: uint32(size - 1)}
}

// Len returns the number of cells the bitset covers.
func (b *Bitset) Len() int { return int(b.mask) + 1 }

// Has reports whether the cell for index (mod size) is set.
func (b *Bitset) Has(index uint32) bool {
	i := index & b.mask
	return b.words[i>>6]>>(i&63)&1 != 0
}

// Set marks the cell for index (mod size).
func (b *Bitset) Set(index uint32) {
	i := index & b.mask
	b.words[i>>6] |= 1 << (i & 63)
}

// Clear resets every cell.
func (b *Bitset) Clear() {
	clear(b.words)
}

// Count returns the number of set cells.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// ConsumedInto is FullyConsumedInto under a per-cell reachability
// mask: cell i is consumed once its remaining virgin bits are all
// outside masks[i] — every bucket that any execution can still produce
// there has been observed. A static hit-count bound analysis supplies
// the masks (an all-ones mask degenerates to the full-consumption
// rule, and masks == nil delegates to FullyConsumedInto wholesale); a
// zero mask marks a cell no probe can ever write, consumed from the
// start. Returns the number of consumed cells.
func (v *Virgin) ConsumedInto(bs *Bitset, masks []uint8) int {
	if masks == nil {
		return v.FullyConsumedInto(bs)
	}
	if bs.Len() != len(v.bits) || len(masks) != len(v.bits) {
		panic("coverage: bitset size mismatch")
	}
	bs.Clear()
	n := 0
	for i, b := range v.bits {
		if b&masks[i] == 0 {
			bs.Set(uint32(i))
			n++
		}
	}
	return n
}

// FullyConsumedInto sets bs's bit for every fully consumed virgin cell —
// one whose bits are all cleared (bits[i] == 0), meaning every hit-count
// bucket has been observed there and no execution can ever produce
// novelty at that cell again. This is the elision soundness criterion of
// coverage-preserving coverage-guided tracing (Nagy et al.): a probe
// whose cell is fully consumed can be removed without changing any
// future novelty decision. bs must match the virgin map's size; it is
// cleared first. Returns the number of fully consumed cells.
//
// The scan is word-at-a-time: eight all-virgin (0xff) or mixed bytes per
// load, with the per-byte path only for words containing at least one
// zero byte.
func (v *Virgin) FullyConsumedInto(bs *Bitset) int {
	if bs.Len() != len(v.bits) {
		panic("coverage: bitset size mismatch")
	}
	bs.Clear()
	n := 0
	i := 0
	for ; i+8 <= len(v.bits); i += 8 {
		w := binary.LittleEndian.Uint64(v.bits[i:])
		if w == 0 {
			// All eight cells fully consumed.
			bs.words[i>>6] |= 0xff << (uint(i) & 63)
			n += 8
			continue
		}
		// hasZeroByte: standard SWAR zero-byte detector.
		if (w-0x0101010101010101)&^w&0x8080808080808080 == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			if v.bits[j] == 0 {
				bs.Set(uint32(j))
				n++
			}
		}
	}
	for ; i < len(v.bits); i++ {
		if v.bits[i] == 0 {
			bs.Set(uint32(i))
			n++
		}
	}
	return n
}

// Peek is Merge without consuming: it reports novelty but leaves the
// virgin map untouched. It uses the same word skim as Merge and can
// additionally return as soon as NewTuples is established.
func (v *Virgin) Peek(classified []uint8) Novelty {
	if len(classified) != len(v.bits) {
		// Preserve the scalar semantics for mismatched lengths (a prefix
		// scan, historically) rather than reading past either slice.
		return v.peekScalar(classified)
	}
	ret := NoNew
	i := 0
	for ; i+8 <= len(classified); i += 8 {
		cw := binary.LittleEndian.Uint64(classified[i:])
		if cw == 0 {
			continue
		}
		vw := binary.LittleEndian.Uint64(v.bits[i:])
		if cw&vw == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			c := classified[j]
			if c == 0 {
				continue
			}
			vb := v.bits[j]
			if vb&c != 0 {
				if vb == 0xff {
					return NewTuples
				}
				ret = NewCounts
			}
		}
	}
	for ; i < len(classified); i++ {
		c := classified[i]
		if c == 0 {
			continue
		}
		vb := v.bits[i]
		if vb&c != 0 {
			if vb == 0xff {
				return NewTuples
			}
			ret = NewCounts
		}
	}
	return ret
}

func (v *Virgin) peekScalar(classified []uint8) Novelty {
	ret := NoNew
	for i, c := range classified {
		if c == 0 {
			continue
		}
		vb := v.bits[i]
		if vb&c != 0 {
			if vb == 0xff {
				return NewTuples
			}
			ret = NewCounts
		}
	}
	return ret
}

// Hash64 returns a 64-bit FNV-1a hash of the classified trace, used to
// cheaply compare executions for identity.
func Hash64(bits []uint8) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range bits {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// SparseHash64 hashes only touched entries (index and bucket), which is
// considerably faster for mostly-empty maps and equally discriminating.
func SparseHash64(bits []uint8) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i, b := range bits {
		if b == 0 {
			continue
		}
		h ^= uint64(i)
		h *= prime
		h ^= uint64(b)
		h *= prime
	}
	return h
}
