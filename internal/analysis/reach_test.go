package analysis

import (
	"math"
	"testing"

	"repro/internal/cfg"
)

func mustProg(t *testing.T, src string) *cfg.Program {
	t.Helper()
	prog, err := cfg.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// retInterval replays block b's instructions from its recorded entry
// state and returns the interval of the value it returns.
func retInterval(ii *Intervals, f *cfg.Func, b int) Interval {
	env := NewEnv(f.FrameSize)
	env.CopyFrom(&ii.In[b])
	blk := &f.Blocks[b]
	for i := range blk.Instrs {
		ii.StepInstr(&env, &blk.Instrs[i])
	}
	return env.Val[blk.Term.Val]
}

func TestCrashSiteKinds(t *testing.T) {
	prog := mustProg(t, `
func main(input) {
    var a = alloc(4);
    a[0] = input[0];
    var d = 10 / (a[0] + 1);
    var m = d % 3;
    assert(m < 3);
    if (m == 2) { abort(); }
    return m;
}`)
	fi := prog.ByName["main"]
	kinds := map[string]int{}
	for _, s := range CrashSites(fi, prog.Funcs[fi]) {
		kinds[s.Kind]++
	}
	for _, want := range []string{"alloc", "load", "store", "div", "assert", "abort"} {
		if kinds[want] == 0 {
			t.Errorf("no %q site found (got %v)", want, kinds)
		}
	}
	if kinds["div"] < 2 {
		t.Errorf("division and modulo should both classify as div, got %d", kinds["div"])
	}
}

// TestReachRecursionTerminates pins the call-graph fixpoint: a
// recursive function must reach its own sites without the closure
// looping forever, and the caller inherits them.
func TestReachRecursionTerminates(t *testing.T) {
	prog := mustProg(t, `
func walk(a, i) {
    if (i >= len(a)) { return 0; }
    return a[i] + walk(a, i + 1);
}
func main(input) {
    return walk(input, 0);
}`)
	r := NewReach(prog)
	if n := r.Func(prog.ByName["walk"]); n == 0 {
		t.Fatal("recursive walk reaches none of its own load sites")
	}
	if r.Func(prog.ByName["main"]) < r.Func(prog.ByName["walk"]) {
		t.Fatalf("main (calls walk) reaches %d sites, walk itself %d",
			r.Func(prog.ByName["main"]), r.Func(prog.ByName["walk"]))
	}
}

// TestReachBranchAsymmetry: past the branch, only the arm containing
// the crash site still reaches it, and counts never grow along the
// CFG (a successor reaches a subset of what its predecessor does).
func TestReachBranchAsymmetry(t *testing.T) {
	prog := mustProg(t, `
func main(input) {
    var x = 0;
    if (len(input) > 0) {
        x = input[0];
    } else {
        x = 7;
    }
    return x;
}`)
	fi := prog.ByName["main"]
	f := prog.Funcs[fi]
	r := NewReach(prog)
	entry := r.Block(fi, f.Entry())
	if entry == 0 {
		t.Fatal("entry reaches no sites despite the input[0] load")
	}
	zero := false
	for b := range f.Blocks {
		if r.Block(fi, b) == 0 {
			zero = true
		}
		for _, e := range f.Successors(b) {
			if succ := r.Block(fi, f.Edges[e].To); succ > r.Block(fi, b) {
				t.Errorf("block b%d reaches %d sites but successor b%d reaches %d",
					b, r.Block(fi, b), f.Edges[e].To, succ)
			}
		}
	}
	if !zero {
		t.Error("no block is past every crash site; else-arm should reach 0")
	}
}

// TestWidenNestedLoops: two nested counting loops grow two slots every
// sweep; without widening the analysis would iterate bound-many times
// (or forever on symbolic bounds). It must terminate quickly and keep a
// sound (containing) interval for the counters.
func TestWidenNestedLoops(t *testing.T) {
	prog := mustProg(t, `
func main(input) {
    var acc = 0;
    var i = 0;
    while (i < 1000000) {
        var j = 0;
        while (j < 1000000) {
            acc = acc + 1;
            j = j + 1;
        }
        i = i + 1;
    }
    return acc;
}`)
	f := prog.Func("main")
	done := make(chan *Intervals, 1)
	go func() { done <- IntervalsOf(f) }()
	ii := <-done // deadline enforced by go test's timeout; widening keeps this instant
	// Soundness: the return block is reached and every feasible exit
	// interval contains the concrete final value of acc (10^12).
	ret := -1
	for b := range f.Blocks {
		if f.Blocks[b].Term.Kind == cfg.TermRet && ii.Reached[b] {
			ret = b
		}
	}
	if ret < 0 {
		t.Fatal("no reached return block")
	}
	iv := retInterval(ii, f, ret)
	if !iv.Contains(1000000 * 1000000) {
		t.Fatalf("widened interval %v excludes the concrete loop result", iv)
	}
}

// TestWidenSaturatingBounds: a loop that doubles a slot overflows any
// finite bound; widening must saturate to ±∞ ends rather than cycle
// through ever-larger bounds, and must not invent a tighter-than-sound
// range.
func TestWidenSaturatingBounds(t *testing.T) {
	prog := mustProg(t, `
func main(input) {
    var x = 1;
    var i = 0;
    while (i < len(input)) {
        x = x * 2;
        i = i + 1;
    }
    return x;
}`)
	f := prog.Func("main")
	ii := IntervalsOf(f)
	ret := -1
	for b := range f.Blocks {
		if f.Blocks[b].Term.Kind == cfg.TermRet && ii.Reached[b] {
			ret = b
		}
	}
	if ret < 0 {
		t.Fatal("no reached return block")
	}
	iv := retInterval(ii, f, ret)
	for _, v := range []int64{1, 2, 1 << 40, math.MaxInt64} {
		if !iv.Contains(v) {
			t.Fatalf("saturated interval %v excludes reachable value %d", iv, v)
		}
	}
}

// TestWidenSparesAcyclicJoins: widening fires only after repeated
// visits, which acyclic code never accumulates — a diamond join must
// keep the precise finite hull of its arms, not jump to ±∞.
func TestWidenSparesAcyclicJoins(t *testing.T) {
	prog := mustProg(t, `
func main(input) {
    var x = 2;
    if (len(input) > 0) { x = 5; }
    return x;
}`)
	f := prog.Func("main")
	ii := IntervalsOf(f)
	ret := -1
	for b := range f.Blocks {
		if f.Blocks[b].Term.Kind == cfg.TermRet && ii.Reached[b] {
			ret = b
		}
	}
	if ret < 0 {
		t.Fatal("no reached return block")
	}
	iv := retInterval(ii, f, ret)
	if !iv.Contains(2) || !iv.Contains(5) {
		t.Fatalf("join interval %v misses an arm value", iv)
	}
	if iv.Lo < 2 || iv.Hi > 5 {
		t.Fatalf("acyclic join lost precision: %v, want within [2,5]", iv)
	}
}
