package subjects

import "repro/internal/vm"

// cflow models a C call-graph extractor: it tokenizes C-like source and
// parses function declarations, tracking a token stack. The headline
// bug reproduces the paper's §V-A cflow case study: an out-of-bounds
// store to token_stack[curs] where curs creeps to its limit only
// through repeated executions of the token-skipping path inside
// declaration parsing — a state progression edge coverage cannot
// retain.
const cflowSrc = `
// cflow: call-graph extractor model.
// Token kinds: 1=ident 2='(' 3=')' 4='{' 5='}' 6=';' 7='func' keyword.

func is_letter(c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

// tokenize fills toks with token kinds and returns the count.
func tokenize(input, toks) {
    var n = 0;
    var i = 0;
    while (i < len(input)) {
        var c = input[i];
        if (is_letter(c)) {
            var start = i;
            while (i < len(input) && is_letter(input[i])) {
                i = i + 1;
            }
            var kind = 1;
            // The 4-letter keyword "func" introduces a declaration.
            if (i - start == 4 && input[start] == 'f' && input[start+1] == 'u'
                && input[start+2] == 'n' && input[start+3] == 'c') {
                kind = 7;
            }
            if (n < len(toks)) { toks[n] = kind; n = n + 1; }
        } else if (c == '(') {
            if (n < len(toks)) { toks[n] = 2; n = n + 1; }
            i = i + 1;
        } else if (c == ')') {
            if (n < len(toks)) { toks[n] = 3; n = n + 1; }
            i = i + 1;
        } else if (c == '{') {
            if (n < len(toks)) { toks[n] = 4; n = n + 1; }
            i = i + 1;
        } else if (c == '}') {
            if (n < len(toks)) { toks[n] = 5; n = n + 1; }
            i = i + 1;
        } else if (c == ';') {
            if (n < len(toks)) { toks[n] = 6; n = n + 1; }
            i = i + 1;
        } else {
            i = i + 1;
        }
    }
    return n;
}

// push_checked grows the token stack defensively.
func push_checked(stack, state, tok) {
    if (state[0] < len(stack)) {
        stack[state[0]] = tok;
        state[0] = state[0] + 1;
    }
    return 0;
}

// push_fast is the paper's buggy push: no bounds check. It is reached
// only from the token-skipping path of parse_decl.
func push_fast(stack, state, tok) {
    stack[state[0]] = tok; // BUG cflow-1: OOB write when curs == len(stack)
    state[0] = state[0] + 1;
    return 0;
}

// parse_decl consumes one declaration: func ident ( idents ) { body }.
// pos is carried in state[1]; curs (token stack cursor) in state[0].
func parse_decl(toks, n, stack, state) {
    state[1] = state[1] + 1; // skip the 'func' token
    if (state[1] < n && toks[state[1]] == 1) {
        state[1] = state[1] + 1;
        push_checked(stack, state, 1);
    }
    if (state[1] < n && toks[state[1]] == 2) {
        state[1] = state[1] + 1;
        // Parameter list: idents until ')'.
        while (state[1] < n && toks[state[1]] != 3) {
            if (toks[state[1]] == 1) {
                push_checked(stack, state, 1);
                state[1] = state[1] + 1;
            } else {
                // Skip unexpected tokens in the stack, as the paper's
                // parse_function_declaration() does: each skip pushes a
                // marker WITHOUT a bounds check.
                push_fast(stack, state, 9);
                state[1] = state[1] + 1;
            }
        }
        if (state[1] < n) { state[1] = state[1] + 1; }
    }
    return 0;
}

// count_calls scans a function body for ident '(' pairs.
func count_calls(toks, n, state) {
    var calls = 0;
    var depth = 0;
    if (state[1] < n && toks[state[1]] == 4) {
        depth = 1;
        state[1] = state[1] + 1;
        while (state[1] < n && depth > 0) {
            var t = toks[state[1]];
            if (t == 4) { depth = depth + 1; }
            if (t == 5) { depth = depth - 1; }
            if (t == 1 && state[1] + 1 < n && toks[state[1]+1] == 2) {
                calls = calls + 1;
            }
            state[1] = state[1] + 1;
        }
    }
    return calls;
}

func main(input) {
    var toks = alloc(256);
    var n = tokenize(input, toks);
    var stack = alloc(16);
    var state = alloc(4); // state[0]=curs, state[1]=pos
    var funcs = 0;
    var calls = 0;
    var parens = 0;
    var i = 0;
    while (i < n) {
        if (toks[i] == 2) { parens = parens + 1; }
        i = i + 1;
    }
    while (state[1] < n) {
        var t = toks[state[1]];
        if (t == 7) {
            funcs = funcs + 1;
            parse_decl(toks, n, stack, state);
            calls = calls + count_calls(toks, n, state);
        } else {
            state[1] = state[1] + 1;
        }
    }
    if (funcs > 2 && n > funcs * 4) {
        // Call density report: tokens per paren pair. BUG cflow-2:
        // parens is zero for paren-free declaration streams.
        var density = n / parens;
        out(density);
    }
    if (funcs > 0 && n > 128) {
        // Summary table indexing: one slot per 8 tokens.
        var slots = alloc(16);
        var idx = n / 8;
        slots[idx] = funcs; // BUG cflow-3: n can be up to 256 -> idx 32
        out(slots[idx]);
    }
    return calls;
}
`

func init() {
	register(&Subject{
		Name:      "cflow",
		TypeLabel: "C",
		Source:    cflowSrc,
		Seeds: [][]byte{
			[]byte("func add(a b) { sub(x); } func sub(q) { add(y); } func top() { add(z); sub(w); }"),
			[]byte("func one() { two(a); }"),
		},
		Bugs: []Bug{
			{
				ID:            "cflow-1-stack-oob",
				Witness:       []byte("func f(" + ";;;;;;;;;;;;;;;;;;" + ") { }"),
				WantKind:      vm.KindOOBWrite,
				WantFunc:      "push_fast",
				PathDependent: true,
				Comment: "curs reaches the 16-slot token stack limit only via repeated " +
					"executions of the unexpected-token skip path inside a parameter list " +
					"(the paper's cflow zero-day pattern)",
			},
			{
				ID:       "cflow-2-div-zero",
				Witness:  []byte("func a func b func c d e f g h i j k l m"),
				WantKind: vm.KindDivByZero,
				WantFunc: "main",
				Comment:  "token/paren density report divides by zero when '(' never appears",
			},
			{
				ID: "cflow-3-slot-oob",
				// >128 tokens with at least one func: 200 semicolons
				// after a declaration gives idx = n/8 >= 16.
				Witness:       []byte("func f(a) { } " + string(make129Semis())),
				WantKind:      vm.KindOOBWrite,
				WantFunc:      "main",
				PathDependent: false,
				Comment:       "summary slot index n/8 overflows the 16-slot table once n > 128",
			},
		},
	})
}

func make129Semis() []byte {
	b := make([]byte, 150)
	for i := range b {
		b[i] = ';'
	}
	return b
}
