package fuzz

import (
	"testing"

	"repro/internal/instrument"
)

// TestReportNilGuards: BugKeys and MergeReports must tolerate nil
// receivers, nil arguments, and empty merges — the round drivers and
// the campaign runner feed them partial inputs on failure paths.
func TestReportNilGuards(t *testing.T) {
	var nilRep *Report
	if keys := nilRep.BugKeys(); keys != nil {
		t.Errorf("nil receiver BugKeys = %v, want nil", keys)
	}
	if keys := (&Report{}).BugKeys(); keys != nil {
		t.Errorf("empty report BugKeys = %v, want nil", keys)
	}

	if m := MergeReports(); m == nil || m.Bugs == nil {
		t.Fatal("empty merge returned nil report or nil bug map")
	}
	if m := MergeReports(nil, nil); m == nil || len(m.Bugs) != 0 {
		t.Fatal("all-nil merge not empty")
	}
}

// TestMergeReportsSkipsNil merges real reports around nils and checks
// the aggregates survive.
func TestMergeReportsSkipsNil(t *testing.T) {
	p := compileT(t, `
func main(input) {
    if (len(input) >= 2 && input[0] == 'A' && input[1] == 'B') { abort(); }
    return 0;
}`)
	f, err := New(p, Options{Feedback: instrument.FeedbackEdge, Seed: 1, MapSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	f.AddSeed([]byte("xx"))
	f.Fuzz(30000)
	rep := f.Report()
	if len(rep.Bugs) == 0 {
		t.Fatal("no bugs to merge")
	}

	m := MergeReports(nil, rep, nil)
	if m.Stats.Execs != rep.Stats.Execs {
		t.Errorf("execs %d, want %d", m.Stats.Execs, rep.Stats.Execs)
	}
	if len(m.Bugs) != len(rep.Bugs) {
		t.Errorf("bugs %d, want %d", len(m.Bugs), len(rep.Bugs))
	}
	if m.QueueLen != rep.QueueLen {
		t.Errorf("queue len %d, want %d", m.QueueLen, rep.QueueLen)
	}

	// Merging the same report twice sums counts per bug.
	m2 := MergeReports(rep, rep)
	for k, rec := range m2.Bugs {
		if want := rep.Bugs[k].Count * 2; rec.Count != want {
			t.Errorf("bug %s count %d, want %d", k, rec.Count, want)
		}
	}
}
