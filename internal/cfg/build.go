package cfg

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/sema"
)

// Build lowers a parsed and checked program into CFG form. It runs
// semantic analysis itself if the caller has not (calling sema.Check
// twice is harmless), so Build(lang.MustParse(src)) is a complete
// frontend invocation.
func Build(prog *lang.Program) (*Program, error) {
	if err := sema.Check(prog); err != nil {
		return nil, err
	}
	p := &Program{ByName: make(map[string]int)}
	for i, f := range prog.Funcs {
		p.ByName[f.Name] = i
	}
	for i, f := range prog.Funcs {
		lf, err := lowerFunc(f, i, p.ByName)
		if err != nil {
			return nil, err
		}
		p.Funcs = append(p.Funcs, lf)
	}
	return p, nil
}

// Compile parses, checks, and lowers MiniC source in one call.
func Compile(src string) (*Program, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	p, err := Build(ast)
	if err != nil {
		return nil, err
	}
	p.Source = src
	return p, nil
}

// MustCompile is Compile panicking on error, for embedded subjects and
// tests.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

type loopCtx struct {
	breakTo    int
	continueTo int
}

type lowerer struct {
	fd      *lang.FuncDecl
	f       *Func
	byName  map[string]int
	cur     int // current block index; -1 while in dead code
	tempTop int
	maxTemp int
	loops   []loopCtx
}

func lowerFunc(fd *lang.FuncDecl, id int, byName map[string]int) (*Func, error) {
	l := &lowerer{
		fd: fd,
		f: &Func{
			ID:       id,
			Name:     fd.Name,
			NParams:  len(fd.Params),
			NumSlots: fd.NumSlots,
			Pos:      fd.Pos,
		},
		byName: byName,
	}
	l.cur = l.newBlock()
	l.stmt(fd.Body)
	// Fall off the end: implicit `return 0`.
	if l.cur >= 0 {
		l.setTerm(Term{Kind: TermRet, Val: -1, Pos: fd.Pos})
	}
	l.f.FrameSize = l.f.NumSlots + l.maxTemp
	pruneUnreachable(l.f)
	if err := analyze(l.f); err != nil {
		return nil, fmt.Errorf("function %s: %w", fd.Name, err)
	}
	return l.f, nil
}

func (l *lowerer) newBlock() int {
	l.f.Blocks = append(l.f.Blocks, Block{Term: Term{Kind: TermRet, Val: -1}, EdgeThen: -1, EdgeElse: -1})
	return len(l.f.Blocks) - 1
}

func (l *lowerer) emit(in Instr) {
	if l.cur < 0 {
		return // dead code after return/break/continue
	}
	b := &l.f.Blocks[l.cur]
	b.Instrs = append(b.Instrs, in)
}

func (l *lowerer) setTerm(t Term) {
	if l.cur < 0 {
		return
	}
	l.f.Blocks[l.cur].Term = t
	l.cur = -1
}

// jumpTo terminates the current block with a jump to target and makes
// target current.
func (l *lowerer) jumpTo(target int, pos lang.Pos) {
	l.setTerm(Term{Kind: TermJmp, Then: target, Pos: pos})
	l.cur = target
}

func (l *lowerer) temp() int {
	s := l.f.NumSlots + l.tempTop
	l.tempTop++
	if l.tempTop > l.maxTemp {
		l.maxTemp = l.tempTop
	}
	return s
}

func (l *lowerer) stmt(s lang.Stmt) {
	savedTemps := l.tempTop
	defer func() { l.tempTop = savedTemps }()
	switch s := s.(type) {
	case *lang.BlockStmt:
		for _, inner := range s.Stmts {
			l.stmt(inner)
		}
	case *lang.VarStmt:
		if s.Init != nil {
			v := l.expr(s.Init)
			l.emit(Instr{Op: OpMove, Pos: s.Pos, Dst: s.Slot, A: v})
		} else {
			l.emit(Instr{Op: OpConst, Pos: s.Pos, Dst: s.Slot, Imm: 0})
		}
	case *lang.AssignStmt:
		v := l.expr(s.Val)
		l.emit(Instr{Op: OpMove, Pos: s.Pos, Dst: s.Slot, A: v})
	case *lang.StoreStmt:
		idx := l.expr(s.Idx)
		val := l.expr(s.Val)
		l.emit(Instr{Op: OpStore, Pos: s.Pos, A: s.Slot, B: idx, C: val})
	case *lang.IfStmt:
		cond := l.expr(s.Cond)
		thenB := l.newBlock()
		var elseB int
		join := l.newBlock()
		if s.Else != nil {
			elseB = l.newBlock()
		} else {
			elseB = join
		}
		l.setTerm(Term{Kind: TermBr, Pos: s.Pos, Cond: cond, Then: thenB, Else: elseB})
		l.cur = thenB
		l.stmt(s.Then)
		if l.cur >= 0 {
			l.setTerm(Term{Kind: TermJmp, Then: join, Pos: s.Pos})
		}
		if s.Else != nil {
			l.cur = elseB
			l.stmt(s.Else)
			if l.cur >= 0 {
				l.setTerm(Term{Kind: TermJmp, Then: join, Pos: s.Pos})
			}
		}
		l.cur = join
	case *lang.WhileStmt:
		header := l.newBlock()
		l.jumpTo(header, s.Pos)
		cond := l.expr(s.Cond)
		body := l.newBlock()
		exit := l.newBlock()
		l.setTerm(Term{Kind: TermBr, Pos: s.Pos, Cond: cond, Then: body, Else: exit})
		l.cur = body
		l.loops = append(l.loops, loopCtx{breakTo: exit, continueTo: header})
		l.stmt(s.Body)
		l.loops = l.loops[:len(l.loops)-1]
		if l.cur >= 0 {
			l.setTerm(Term{Kind: TermJmp, Then: header, Pos: s.Pos}) // back edge
		}
		l.cur = exit
	case *lang.ForStmt:
		if s.Init != nil {
			l.stmt(s.Init)
		}
		header := l.newBlock()
		l.jumpTo(header, s.Pos)
		var cond int
		if s.Cond != nil {
			cond = l.expr(s.Cond)
		} else {
			cond = l.temp()
			l.emit(Instr{Op: OpConst, Pos: s.Pos, Dst: cond, Imm: 1})
		}
		body := l.newBlock()
		post := l.newBlock()
		exit := l.newBlock()
		l.setTerm(Term{Kind: TermBr, Pos: s.Pos, Cond: cond, Then: body, Else: exit})
		l.cur = body
		l.loops = append(l.loops, loopCtx{breakTo: exit, continueTo: post})
		l.stmt(s.Body)
		l.loops = l.loops[:len(l.loops)-1]
		if l.cur >= 0 {
			l.setTerm(Term{Kind: TermJmp, Then: post, Pos: s.Pos})
		}
		l.cur = post
		if s.Post != nil {
			l.stmt(s.Post)
		}
		l.setTerm(Term{Kind: TermJmp, Then: header, Pos: s.Pos}) // back edge
		l.cur = exit
	case *lang.ReturnStmt:
		val := -1
		if s.Val != nil {
			val = l.expr(s.Val)
		}
		l.setTerm(Term{Kind: TermRet, Pos: s.Pos, Val: val})
	case *lang.BreakStmt:
		l.setTerm(Term{Kind: TermJmp, Pos: s.Pos, Then: l.loops[len(l.loops)-1].breakTo})
	case *lang.ContinueStmt:
		l.setTerm(Term{Kind: TermJmp, Pos: s.Pos, Then: l.loops[len(l.loops)-1].continueTo})
	case *lang.ExprStmt:
		l.expr(s.X)
	default:
		panic(fmt.Sprintf("cfg: unhandled statement %T", s))
	}
}

// expr lowers an expression, returning the slot holding its value.
// Identifiers return their variable slot directly (safe: MiniC has no
// aliasing of locals); everything else lands in a fresh temporary.
func (l *lowerer) expr(e lang.Expr) int {
	switch e := e.(type) {
	case *lang.IntLit:
		t := l.temp()
		l.emit(Instr{Op: OpConst, Pos: e.Pos, Dst: t, Imm: e.Val})
		return t
	case *lang.StrLit:
		t := l.temp()
		l.emit(Instr{Op: OpStr, Pos: e.Pos, Dst: t, Str: e.Val})
		return t
	case *lang.Ident:
		return e.Slot
	case *lang.IndexExpr:
		arr := l.expr(e.X)
		idx := l.expr(e.Idx)
		t := l.temp()
		l.emit(Instr{Op: OpLoad, Pos: e.Pos, Dst: t, A: arr, B: idx})
		return t
	case *lang.CallExpr:
		args := make([]int, len(e.Args))
		for i, a := range e.Args {
			args[i] = l.expr(a)
		}
		t := l.temp()
		if bid, ok := BuiltinIDs[e.Name]; ok {
			l.emit(Instr{Op: OpBuiltin, Pos: e.Pos, Dst: t, Callee: bid, Args: args})
		} else {
			l.emit(Instr{Op: OpCall, Pos: e.Pos, Dst: t, Callee: l.byName[e.Name], Args: args})
		}
		return t
	case *lang.UnaryExpr:
		x := l.expr(e.X)
		t := l.temp()
		l.emit(Instr{Op: OpUn, Pos: e.Pos, Dst: t, Sub: e.Op, A: x})
		return t
	case *lang.BinaryExpr:
		if e.Op == lang.LAND || e.Op == lang.LOR {
			return l.shortCircuit(e)
		}
		a := l.expr(e.X)
		b := l.expr(e.Y)
		t := l.temp()
		l.emit(Instr{Op: OpBin, Pos: e.Pos, Dst: t, Sub: e.Op, A: a, B: b})
		return t
	default:
		panic(fmt.Sprintf("cfg: unhandled expression %T", e))
	}
}

// shortCircuit lowers && and || into control flow, the same shape a C
// compiler produces at -O0. This matters for the reproduction: boolean
// connectives are a major source of intra-procedural path diversity.
func (l *lowerer) shortCircuit(e *lang.BinaryExpr) int {
	res := l.temp()
	a := l.expr(e.X)
	rhs := l.newBlock()
	short := l.newBlock()
	join := l.newBlock()
	if e.Op == lang.LAND {
		// a != 0 ? evaluate b : result 0
		l.setTerm(Term{Kind: TermBr, Pos: e.Pos, Cond: a, Then: rhs, Else: short})
	} else {
		// a != 0 ? result 1 : evaluate b
		l.setTerm(Term{Kind: TermBr, Pos: e.Pos, Cond: a, Then: short, Else: rhs})
	}
	l.cur = rhs
	b := l.expr(e.Y)
	// Normalise the RHS value to 0/1.
	zero := l.temp()
	l.emit(Instr{Op: OpConst, Pos: e.Pos, Dst: zero, Imm: 0})
	l.emit(Instr{Op: OpBin, Pos: e.Pos, Dst: res, Sub: lang.NE, A: b, B: zero})
	l.setTerm(Term{Kind: TermJmp, Then: join, Pos: e.Pos})
	l.cur = short
	imm := int64(0)
	if e.Op == lang.LOR {
		imm = 1
	}
	l.emit(Instr{Op: OpConst, Pos: e.Pos, Dst: res, Imm: imm})
	l.setTerm(Term{Kind: TermJmp, Then: join, Pos: e.Pos})
	l.cur = join
	return res
}

// pruneUnreachable removes blocks not reachable from the entry and
// remaps terminator targets.
func pruneUnreachable(f *Func) {
	n := len(f.Blocks)
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t := f.Blocks[b].Term
		switch t.Kind {
		case TermJmp:
			if !seen[t.Then] {
				seen[t.Then] = true
				stack = append(stack, t.Then)
			}
		case TermBr:
			for _, s := range []int{t.Then, t.Else} {
				if !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
	}
	remap := make([]int, n)
	var kept []Block
	for i := 0; i < n; i++ {
		if seen[i] {
			remap[i] = len(kept)
			kept = append(kept, f.Blocks[i])
		} else {
			remap[i] = -1
		}
	}
	for i := range kept {
		t := &kept[i].Term
		switch t.Kind {
		case TermJmp:
			t.Then = remap[t.Then]
		case TermBr:
			t.Then = remap[t.Then]
			t.Else = remap[t.Else]
		}
	}
	f.Blocks = kept
}
