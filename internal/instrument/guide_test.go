package instrument_test

import (
	"math/rand"
	"testing"

	"repro/internal/analysis/interproc"
	"repro/internal/coverage"
	"repro/internal/instrument"
	"repro/internal/vm"
)

// contradictory has a provably infeasible path suffix (x > 100 then
// x < 50 both-then), so the facts mark path IDs dead for the guide.
const contradictory = `
func main(input) {
    if (len(input) < 1) { return 0; }
    var x = input[0];
    var r = 0;
    if (x > 100) { r = 1; }
    if (x < 50) { r = r + 2; }
    return r;
}
`

// TestDeadPathCellsNeverWritten is the property that makes pre-marking
// dead cells consumed sound: across many executions, no coverage cell
// DeadPathCells returns is ever written by the path tracer — in either
// index-mixing mode.
func TestDeadPathCellsNeverWritten(t *testing.T) {
	const mapSize = 1 << 12
	p := compile(t, contradictory)
	facts := interproc.ForProgram(p)
	for _, mix := range []instrument.MixMode{instrument.MixXOR, instrument.MixHash} {
		c := instrument.Config{Mix: mix}
		dead := instrument.DeadPathCells(instrument.FeedbackPath, facts, c, mapSize)
		if len(dead) == 0 {
			t.Fatalf("mix=%v: no dead cells despite an infeasible path", mix)
		}
		deadSet := make(map[uint32]bool, len(dead))
		for _, d := range dead {
			deadSet[d] = true
		}

		m := coverage.NewMap(mapSize)
		tr, err := instrument.New(instrument.FeedbackPath, p, m, c)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		for i := 0; i < 512; i++ {
			in := make([]byte, rng.Intn(6))
			rng.Read(in)
			m.Reset()
			vm.Run(p, "main", in, tr, vm.DefaultLimits())
			m.ClassifySparse()
			for _, idx := range m.Indices() {
				if deadSet[idx] {
					t.Fatalf("mix=%v: dead cell %d written by input %v", mix, idx, in)
				}
			}
		}
	}
}

// TestDeadPathCellsGating: the elision list must be empty for non-path
// feedback, for absent facts, and for programs where a hashed fallback
// makes cell prediction unreliable.
func TestDeadPathCellsGating(t *testing.T) {
	const mapSize = 1 << 12
	p := compile(t, contradictory)
	facts := interproc.ForProgram(p)
	c := instrument.Config{}
	if got := instrument.DeadPathCells(instrument.FeedbackEdge, facts, c, mapSize); got != nil {
		t.Errorf("edge feedback produced dead cells: %v", got)
	}
	if got := instrument.DeadPathCells(instrument.FeedbackPath, nil, c, mapSize); got != nil {
		t.Errorf("nil facts produced dead cells: %v", got)
	}
	if !facts.AllEnumerable {
		t.Fatal("test program should be fully enumerable")
	}
}

// TestPathCellIndexMatchesTracer: the cell predictor must agree with
// the live tracer's mixing for every function and path ID, else dead
// cells could collide with live ones. Indirectly covered by the
// never-written test above; here the predictor is checked against the
// recorded cells of concrete executions.
func TestPathCellIndexMatchesTracer(t *testing.T) {
	const mapSize = 1 << 12
	p := compile(t, contradictory)
	for _, mix := range []instrument.MixMode{instrument.MixXOR, instrument.MixHash} {
		c := instrument.Config{Mix: mix}
		// Predict the cells of every enumerable path of main.
		facts := interproc.ForProgram(p)
		mi := p.ByName["main"]
		ff := facts.Fns[mi]
		if !ff.Walked {
			t.Fatal("main not enumerable")
		}
		predicted := make(map[uint32]bool)
		for id := uint64(0); id < ff.NumPaths; id++ {
			predicted[instrument.PathCellIndex(c, mi, id, mapSize)] = true
		}

		m := coverage.NewMap(mapSize)
		tr, err := instrument.New(instrument.FeedbackPath, p, m, c)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < 256; b += 3 {
			m.Reset()
			vm.Run(p, "main", []byte{byte(b)}, tr, vm.DefaultLimits())
			m.ClassifySparse()
			for _, idx := range m.Indices() {
				if !predicted[idx] {
					t.Fatalf("mix=%v: tracer wrote cell %d outside the predicted set", mix, idx)
				}
			}
		}
	}
}
